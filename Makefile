GO ?= go

.PHONY: all build vet staticcheck test race bench bench-all verify verify-faults results clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs only when the binary is installed — CI images without
# it skip the target instead of failing (nothing is downloaded here).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The parallel experiment engine makes the race detector part of tier-1:
# every campaign fan-out and merge path runs under -race.
race:
	$(GO) test -race ./...

# bench focuses on the two performance contracts: the parallel engine's
# scaling (BenchmarkExperimentSweep) and the telemetry subsystem's
# near-zero disabled cost (BenchmarkProbeOverhead).
bench:
	$(GO) test -bench='BenchmarkExperimentSweep|BenchmarkProbeOverhead' -benchmem

# bench-all regenerates every reconstructed figure/table as a benchmark.
bench-all:
	$(GO) test -bench=. -benchmem

# verify is the tier-1 gate: build, vet (+staticcheck when present),
# plain tests, race tests.
verify: build vet staticcheck test race

# verify-faults focuses the fault-injection contracts: the golden
# byte-identity and fault-flavor digests, and the faults + hardened
# engine packages under the race detector.
verify-faults:
	$(GO) test ./internal/campaign -run 'Golden|Fault|EmptyPlan' -count=1
	$(GO) test -race ./internal/faults/... ./internal/experiments/engine/... ./internal/campaign/world/...

results:
	$(GO) run ./cmd/experiments -out results/

clean:
	rm -rf results/
