GO ?= go

# Benchmarks that gate in CI: the parallel engine's sweep throughput,
# the end-to-end campaign hot path (including the death-heavy 10k scale
# configs), the incremental routing recompute against its full-rebuild
# twin, the snapshot/fork seed sweep against its rebuild baseline
# (BenchmarkSeedSweep matches both), and the live-checkpoint capture
# cost that bounds how aggressive -checkpoint-every can be.
GATED_BENCH = BenchmarkExperimentSweep|BenchmarkCampaignRun|BenchmarkSeedSweep|BenchmarkRecomputeIncremental|BenchmarkCheckpointCapture
BENCH_PKGS = . ./internal/campaign ./internal/wrsn
BENCH_SHA = $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all build vet fmt-check staticcheck test race bench bench-all bench-json bench-gate bench-baseline verify verify-faults verify-daemon verify-snapshot verify-checkpoint verify-scale verify-dist results clean

all: verify

build:
	$(GO) build ./...

vet: fmt-check
	$(GO) vet ./...

# fmt-check fails if any tracked Go file is not gofmt-clean, printing the
# offending paths.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# staticcheck runs only when the binary is installed — local images
# without it skip the target instead of failing (nothing is downloaded
# here). CI installs a pinned version so the soft-skip never fires there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The parallel experiment engine makes the race detector part of tier-1:
# every campaign fan-out and merge path runs under -race.
race:
	$(GO) test -race ./...

# bench focuses on the performance contracts: the parallel engine's
# scaling (BenchmarkExperimentSweep), the end-to-end campaign hot path
# (BenchmarkCampaignRun), and the telemetry subsystem's near-zero
# disabled cost (BenchmarkProbeOverhead).
bench:
	$(GO) test -run '^$$' -bench='$(GATED_BENCH)|BenchmarkProbeOverhead' -benchmem $(BENCH_PKGS)

# bench-all regenerates every reconstructed figure/table as a benchmark.
bench-all:
	$(GO) test -bench=. -benchmem

# bench-json measures the gated benchmarks and writes BENCH_<sha>.json.
bench-json:
	$(GO) test -run '^$$' -bench='$(GATED_BENCH)' -benchmem -json $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_SHA).json

# bench-gate fails if a gated benchmark regressed >15% (ns/op or
# allocs/op) against the committed baseline. CI runs this on every PR.
bench-gate: bench-json
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json -against BENCH_$(BENCH_SHA).json \
		-max-regress 0.15 -match '$(GATED_BENCH)'

# bench-baseline refreshes the committed baseline from the current tree.
# Run on a quiet machine and commit the result alongside the change that
# justifies it.
bench-baseline:
	$(GO) test -run '^$$' -bench='$(GATED_BENCH)' -benchmem -json $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -out BENCH_baseline.json

# verify is the tier-1 gate: build, vet (+gofmt, +staticcheck when
# present), plain tests, race tests.
verify: build vet staticcheck test race

# verify-faults focuses the fault-injection contracts: the golden
# byte-identity and fault-flavor digests, and the faults + hardened
# engine packages under the race detector.
verify-faults:
	$(GO) test ./internal/campaign -run 'Golden|Fault|EmptyPlan' -count=1
	$(GO) test -race ./internal/faults/... ./internal/experiments/engine/... ./internal/campaign/world/...

# verify-daemon exercises the campaign-as-a-service path: the service and
# client suites (HTTP determinism fence, backpressure, drain) under the
# race detector, then the daemon's end-to-end -smoke self-test — a real
# loopback HTTP server whose job digests must match the library path.
verify-daemon:
	$(GO) test -race -count=1 ./internal/service/... ./internal/jobspec/... ./client/...
	$(GO) run ./cmd/wrsncsad -smoke -workers 4

# verify-snapshot focuses the snapshot/fork contracts: the golden fork
# fence (every pinned digest reproduced from a fork, and from an
# encode→decode→fork), the snapshot package's round-trip and concurrency
# suite under the race detector, and the jobspec snapshot-spec
# determinism fence.
verify-snapshot:
	$(GO) test ./internal/campaign -run 'GoldenForked|GoldenDecodedFork|ForkSpecsCover' -count=1
	$(GO) test -race -count=1 ./internal/snapshot/...
	$(GO) test -count=1 ./internal/jobspec -run 'Snapshot'

# verify-checkpoint is the kill-and-resume fence: EVERY golden flavor is
# stopped at a deterministic pseudo-random barrier, serialized, decoded,
# and resumed — and must reproduce its exact golden Outcome digest —
# under the race detector; then the service-layer drill (daemon drain
# parks jobs at checkpoints, a restarted daemon resumes them to the same
# digest) runs the same way.
verify-checkpoint:
	WRSN_VERIFY_CHECKPOINT=1 $(GO) test -race -count=1 ./internal/campaign -run 'TestCheckpointResumeGolden|TestCheckpointResumeShardInvariance|TestCheckpointPeriodicCapture' -timeout 20m
	$(GO) test -race -count=1 ./internal/service -run 'Checkpoint|Drain|Restart|Healthz'

# verify-scale focuses the large-network contracts: the incremental
# shortest-path-tree oracle (exact equality with a brute-force canonical
# Dijkstra through randomized fail/repair/depletion sequences and an
# exact-tie lattice), the region partitioner, the sharded-stepping digest
# invariance under the race detector, and a 10k-node campaign smoke on
# the sharded path.
verify-scale:
	$(GO) test ./internal/wrsn -run 'Incremental|RegionShards' -count=1
	$(GO) test -race ./internal/campaign -run 'ShardedSteppingDigest' -count=1
	$(GO) test ./internal/campaign -run 'ShardedScaleSmoke' -count=1 -timeout 10m

# verify-dist is the distributed byte-identity fence: every golden
# flavor is re-run through real worker processes — exec mode (the test
# binary re-execed as a worker over stdin/stdout) and TCP mode — at
# shards 1, 2 and 8, each digest compared bit-for-bit against the
# pinned golden, plus the worker-killed-mid-job failover drill, all
# under the race detector. Then an end-to-end CLI smoke: the same
# experiment regenerated in-process and sharded across two spawned
# wrsnworker processes must emit byte-identical stdout.
verify-dist:
	WRSN_VERIFY_DIST=1 $(GO) test -race -count=1 ./internal/distengine -timeout 30m
	rm -rf .distwork && mkdir -p .distwork
	$(GO) build -o .distwork/wrsnworker ./cmd/wrsnworker
	$(GO) run ./cmd/experiments -quick -seeds 2 -only rtab6 > .distwork/local.txt
	$(GO) run ./cmd/experiments -quick -seeds 2 -only rtab6 \
		-shards 2 -worker-cmd .distwork/wrsnworker > .distwork/dist.txt
	cmp .distwork/local.txt .distwork/dist.txt
	rm -rf .distwork

results:
	mkdir -p results
	$(GO) run ./cmd/experiments -out results/

# clean removes generated results, scratch benchmark manifests (keeping
# the committed BENCH_baseline.json), and distributed-worker scratch —
# the .distwork/ build-and-smoke directory and any stray worker sockets.
clean:
	rm -rf results/ .distwork/
	find . -maxdepth 1 -name 'BENCH_*.json' ! -name 'BENCH_baseline.json' -delete
	find . -maxdepth 2 -name '*.worker.sock' -delete
