GO ?= go

.PHONY: all build vet test race bench verify results clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel experiment engine makes the race detector part of tier-1:
# every campaign fan-out and merge path runs under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# verify is the tier-1 gate: build, vet, plain tests, race tests.
verify: build vet test race

results:
	$(GO) run ./cmd/experiments -out results/

clean:
	rm -rf results/
