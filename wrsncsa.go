// Package wrsncsa is the public API of the charging spoofing attack (CSA)
// reproduction: a complete wireless-rechargeable-sensor-network (WRSN)
// stack — WPT physics with coherent superposition and nonlinear
// rectification, network/routing/key-node analysis, on-demand charging, a
// mobile charger, TIDE attack planning, a detector suite, and end-to-end
// campaign simulation.
//
// The fastest way in:
//
//	nw, _, err := wrsncsa.BuildScenario(42, 200)
//	ch := wrsncsa.NewCharger(nw)
//	outcome, err := wrsncsa.Attack(nw, ch, wrsncsa.CampaignConfig{Seed: 42})
//	fmt.Println(outcome.KeyExhaustRatio(), outcome.Detected)
//
// The re-exported subpackage types keep the full surface available:
// construct custom deployments with trace, inspect topology with wrsn,
// plan raw TIDE instances with attack, and judge audits with detect.
package wrsncsa

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/testbed"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Re-exported core types. Each alias is the complete type; see the
// internal package documentation reachable through the alias for details.
type (
	// Network is a deployed WRSN with routing and key-node analysis.
	Network = wrsn.Network
	// NodeID identifies a sensor node.
	NodeID = wrsn.NodeID
	// KeyNode is a sink separator and its severance count.
	KeyNode = wrsn.KeyNode
	// Scenario reproducibly describes a deployment.
	Scenario = trace.Scenario
	// Charger is the mobile charger.
	Charger = mc.Charger
	// ChargerParams configures the charger.
	ChargerParams = mc.Params
	// CampaignConfig parameterizes campaign runs.
	CampaignConfig = campaign.Config
	// Outcome is a campaign result.
	Outcome = campaign.Outcome
	// Instance is a TIDE problem.
	Instance = attack.Instance
	// PlanResult is a solved TIDE instance.
	PlanResult = attack.Result
	// Detector judges charging audits.
	Detector = detect.Detector
	// Audit is the sink-side evidence a detector judges.
	Audit = detect.Audit
	// Array is a coherent multi-emitter WPT front end.
	Array = wpt.Array
	// SpoofBand is the RF interval a spoof must land in.
	SpoofBand = wpt.SpoofBand
)

// Solver names for CampaignConfig.Solver.
const (
	SolverCSA           = campaign.SolverCSA
	SolverRandom        = campaign.SolverRandom
	SolverGreedyNearest = campaign.SolverGreedyNearest
	SolverDirect        = campaign.SolverDirect
)

// BuildScenario constructs the standard evaluation scenario: n nodes
// uniformly deployed around a centered sink, fully connected, seeded
// reproducibly. The returned stream carries the scenario's remaining
// randomness budget.
func BuildScenario(seed uint64, n int) (*Network, *rng.Stream, error) {
	return trace.DefaultScenario(seed, n).Build()
}

// NewCharger parks a default-parameterized mobile charger at the
// network's sink.
func NewCharger(nw *Network) *Charger {
	return mc.New(nw.Sink(), mc.DefaultParams())
}

// Attack runs the full charging spoofing attack campaign on the network:
// TIDE planning, adaptive spoof execution, opportunistic cover service,
// live audits. See campaign.RunAttack. It is AttackContext with a
// background context; prefer AttackContext when the caller may need to
// cancel.
func Attack(nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunAttack(nw, ch, cfg)
}

// AttackContext is Attack with cancellation: the campaign checkpoints ctx
// at every world-step and service boundary and returns ctx.Err() promptly
// once the context is canceled. See campaign.RunAttackContext.
func AttackContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunAttackContext(ctx, nw, ch, cfg)
}

// Legit runs the uncompromised on-demand charging baseline. See
// campaign.RunLegit. It is LegitContext with a background context.
func Legit(nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunLegit(nw, ch, cfg)
}

// LegitContext is Legit with cancellation; see campaign.RunLegitContext.
func LegitContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunLegitContext(ctx, nw, ch, cfg)
}

// PlanTIDE builds the TIDE instance for the network's current state and
// solves it with CSA, returning both.
func PlanTIDE(nw *Network, ch *Charger) (*Instance, PlanResult, error) {
	in, err := attack.BuildInstance(nw, ch, attack.BuilderConfig{})
	if err != nil {
		return nil, PlanResult{}, err
	}
	res, err := attack.SolveCSA(in)
	if err != nil {
		return nil, PlanResult{}, err
	}
	return in, res, nil
}

// DetectorSuite returns the standard network-side detector set.
func DetectorSuite() []Detector { return detect.Suite() }

// ROCPoint is one detector operating point.
type ROCPoint = detect.ROCPoint

// ROC computes a detector's ROC curve from attack (positive) and
// legitimate (negative) score samples. See detect.ROC.
func ROC(positives, negatives []float64) ([]ROCPoint, error) {
	return detect.ROC(positives, negatives)
}

// AUC integrates a ROC curve. See detect.AUC.
func AUC(pts []ROCPoint) float64 { return detect.AUC(pts) }

// Testbed re-exports the software-in-the-loop TCP test bed.
type (
	// TestbedConfig parameterizes a test-bed run.
	TestbedConfig = testbed.RunConfig
	// TestbedReport is a test-bed outcome.
	TestbedReport = testbed.Report
	// TestbedNode describes one emulated node.
	TestbedNode = testbed.NodeSetup
)

// RunTestbed executes a complete TCP software-in-the-loop experiment.
func RunTestbed(cfg TestbedConfig) (*TestbedReport, error) {
	return testbed.Run(cfg)
}

// DefaultTestbedNodes returns the canonical 12-node test bed.
func DefaultTestbedNodes() []TestbedNode { return testbed.DefaultNodes() }

// DefenseConfig re-exports the countermeasure configuration (harvest
// verification, neighbor witnessing); set it on CampaignConfig.Defense.
type DefenseConfig = defense.Config

// Exposure is a countermeasure catch.
type Exposure = defense.Exposure

// FleetOutcome is a multi-charger run result.
type FleetOutcome = campaign.FleetOutcome

// LegitFleet runs K honest chargers over the shared request queue. See
// campaign.RunLegitFleet. It is LegitFleetContext with a background
// context.
func LegitFleet(nw *Network, chargers []*Charger, cfg CampaignConfig) (*FleetOutcome, error) {
	return campaign.RunLegitFleet(nw, chargers, cfg)
}

// LegitFleetContext is LegitFleet with cancellation; see
// campaign.RunLegitFleetContext.
func LegitFleetContext(ctx context.Context, nw *Network, chargers []*Charger, cfg CampaignConfig) (*FleetOutcome, error) {
	return campaign.RunLegitFleetContext(ctx, nw, chargers, cfg)
}
