// Package wrsncsa is the public API of the charging spoofing attack (CSA)
// reproduction: a complete wireless-rechargeable-sensor-network (WRSN)
// stack — WPT physics with coherent superposition and nonlinear
// rectification, network/routing/key-node analysis, on-demand charging, a
// mobile charger, TIDE attack planning, a detector suite, and end-to-end
// campaign simulation.
//
// The fastest way in:
//
//	nw, _, err := wrsncsa.BuildScenario(42, 200)
//	ch := wrsncsa.NewCharger(nw)
//	outcome, err := wrsncsa.Attack(ctx, nw, ch, wrsncsa.CampaignConfig{Seed: 42})
//	fmt.Println(outcome.KeyExhaustRatio(), outcome.Detected)
//
// # API conventions
//
// Run entry points (Attack, Legit, LegitFleet, RunJob) are
// context-first: ctx is the first parameter, the campaign checkpoints
// it at every world-step and service boundary, and ctx.Err() is
// returned promptly after cancellation. Pass context.Background() when
// cancellation is not needed.
//
// Every constructor and entry point that takes variation does so
// through a trailing variadic option family named after the call it
// configures — ScenarioOption for BuildScenario, ChargerOption for
// NewCharger, PlanOption for PlanTIDE, RunOption for the run entry
// points. All options are WithX functions; the zero-option call always
// reproduces the evaluation default.
//
// # Snapshots
//
// A Snapshot freezes a built world (deployment, routing, charger) so
// seed sweeps pay scenario construction once and fork per run:
//
//	snap, err := wrsncsa.BuildSnapshot(42, 200)
//	for seed := uint64(0); seed < 100; seed++ {
//		out, err := wrsncsa.Attack(ctx, nil, nil,
//			wrsncsa.CampaignConfig{Seed: seed}, wrsncsa.WithSnapshot(snap))
//		...
//	}
//
// Forked runs are byte-identical to rebuilding the scenario from
// scratch, and snapshots serialize (Encode/DecodeSnapshot), so a warm
// world can cross process boundaries — JobSpec.WithSnapshot embeds one
// in a daemon job.
//
// The re-exported subpackage types keep the full surface available:
// construct custom deployments with trace, inspect topology with wrsn,
// plan raw TIDE instances with attack, and judge audits with detect.
package wrsncsa

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/testbed"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Re-exported core types. Each alias is the complete type; see the
// internal package documentation reachable through the alias for details.
type (
	// Network is a deployed WRSN with routing and key-node analysis.
	Network = wrsn.Network
	// NodeID identifies a sensor node.
	NodeID = wrsn.NodeID
	// KeyNode is a sink separator and its severance count.
	KeyNode = wrsn.KeyNode
	// Scenario reproducibly describes a deployment.
	Scenario = trace.Scenario
	// Charger is the mobile charger.
	Charger = mc.Charger
	// ChargerParams configures the charger.
	ChargerParams = mc.Params
	// CampaignConfig parameterizes campaign runs.
	CampaignConfig = campaign.Config
	// Outcome is a campaign result.
	Outcome = campaign.Outcome
	// Instance is a TIDE problem.
	Instance = attack.Instance
	// PlanResult is a solved TIDE instance.
	PlanResult = attack.Result
	// Detector judges charging audits.
	Detector = detect.Detector
	// Audit is the sink-side evidence a detector judges.
	Audit = detect.Audit
	// Array is a coherent multi-emitter WPT front end.
	Array = wpt.Array
	// SpoofBand is the RF interval a spoof must land in.
	SpoofBand = wpt.SpoofBand
	// BuilderConfig parameterizes TIDE instance construction.
	BuilderConfig = attack.BuilderConfig
	// Deployment selects a node-placement pattern for BuildScenario.
	Deployment = trace.Deployment
	// RoutingPolicy selects the routing objective.
	RoutingPolicy = wrsn.RoutingPolicy
)

// Deployment patterns and routing policies for scenario options.
const (
	DeployUniform   = trace.DeployUniform
	DeployClustered = trace.DeployClustered
	DeployGrid      = trace.DeployGrid
	DeployCorridor  = trace.DeployCorridor

	PolicyShortestDistance = wrsn.PolicyShortestDistance
	PolicyHopCount         = wrsn.PolicyHopCount
	PolicyEnergyAware      = wrsn.PolicyEnergyAware
)

// Telemetry re-exports: the campaign telemetry subsystem (see the
// internal obs package). Attach a probe via CampaignConfig.Probe,
// experiment WithProbe options, or NewCharger's WithProbe option.
type (
	// Probe is the telemetry hook every simulation layer accepts:
	// counters, gauges, histograms and a structured event stream.
	Probe = obs.Probe
	// Recorder is the in-memory recording Probe.
	Recorder = obs.Recorder
	// TelemetrySnapshot is a deterministic point-in-time Recorder view
	// with CSV/JSON export methods.
	TelemetrySnapshot = obs.Snapshot
	// TelemetryEvent is one structured timestamped event.
	TelemetryEvent = obs.Event
)

// NewRecorder returns an empty recording probe.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NopProbe returns the zero-overhead disabled probe (the default
// everywhere a probe is accepted).
func NopProbe() Probe { return obs.Nop() }

// Solver names for CampaignConfig.Solver.
const (
	SolverCSA           = campaign.SolverCSA
	SolverRandom        = campaign.SolverRandom
	SolverGreedyNearest = campaign.SolverGreedyNearest
	SolverDirect        = campaign.SolverDirect
)

// ScenarioOption customizes the scenario BuildScenario assembles before
// building it; the zero-option call reproduces the evaluation default.
type ScenarioOption func(*Scenario)

// WithDeployPattern selects the node-placement pattern (DeployUniform,
// DeployClustered, DeployGrid, DeployCorridor).
func WithDeployPattern(p Deployment) ScenarioOption {
	return func(s *Scenario) { s.Deploy.Pattern = p }
}

// WithCommRange overrides the radio range in meters (non-positive keeps
// the default).
func WithCommRange(r float64) ScenarioOption {
	return func(s *Scenario) { s.CommRange = r }
}

// WithRoutingPolicy selects the routing objective.
func WithRoutingPolicy(p RoutingPolicy) ScenarioOption {
	return func(s *Scenario) { s.Policy = p }
}

// BuildScenario constructs the standard evaluation scenario: n nodes
// uniformly deployed around a centered sink, fully connected, seeded
// reproducibly. Options adjust the scenario before building:
//
//	nw, _, err := wrsncsa.BuildScenario(42, 200,
//		wrsncsa.WithDeployPattern(wrsncsa.DeployClustered))
//
// The returned stream carries the scenario's remaining randomness
// budget.
func BuildScenario(seed uint64, n int, opts ...ScenarioOption) (*Network, *rng.Stream, error) {
	sc := trace.DefaultScenario(seed, n)
	for _, opt := range opts {
		opt(&sc)
	}
	return sc.Build()
}

// DefaultChargerParams returns the evaluation-default charger
// parameters — the starting point for WithChargerParams tweaks.
func DefaultChargerParams() ChargerParams { return mc.DefaultParams() }

// ChargerOption customizes NewCharger.
type ChargerOption func(*chargerOptions)

type chargerOptions struct {
	params mc.Params
	probe  Probe
}

// WithChargerParams replaces the default charger parameters (zero-valued
// fields still get defaults).
func WithChargerParams(p ChargerParams) ChargerOption {
	return func(o *chargerOptions) { o.params = p }
}

// WithProbe attaches a telemetry probe to the charger: travel distance
// and energy, radiated energy and tour resets accumulate into it.
func WithProbe(p Probe) ChargerOption {
	return func(o *chargerOptions) { o.probe = p }
}

// NewCharger parks a mobile charger at the network's sink,
// default-parameterized unless options say otherwise:
//
//	ch := wrsncsa.NewCharger(nw,
//		wrsncsa.WithChargerParams(wrsncsa.ChargerParams{SpeedMps: 8}),
//		wrsncsa.WithProbe(recorder))
func NewCharger(nw *Network, opts ...ChargerOption) *Charger {
	o := chargerOptions{params: mc.DefaultParams()}
	for _, opt := range opts {
		opt(&o)
	}
	ch := mc.New(nw.Sink(), o.params)
	if o.probe != nil {
		ch.Instrument(o.probe)
	}
	return ch
}

// RunOption adjusts one campaign run (Attack, Legit, LegitFleet).
type RunOption func(*runOptions)

type runOptions struct {
	snap  *Snapshot
	fleet int
}

// WithSnapshot runs the campaign on a fresh fork of snap instead of the
// network and charger arguments, which may then be nil. Forking is
// cheap (no placement, no routing convergence) and byte-identical to
// rebuilding the snapshot's scenario, so a single warm snapshot can
// back an entire seed sweep — including concurrent runs; forking is
// safe from multiple goroutines.
func WithSnapshot(snap *Snapshot) RunOption {
	return func(o *runOptions) { o.snap = snap }
}

// WithFleetSize sets how many chargers LegitFleet forks when running
// from a snapshot (default 1). Attack and Legit ignore it.
func WithFleetSize(k int) RunOption {
	return func(o *runOptions) { o.fleet = k }
}

// forkRun resolves the (nw, ch) pair a run executes on: the caller's
// arguments, or forks of the run's snapshot when WithSnapshot is set.
func (o *runOptions) forkRun(nw *Network, ch *Charger) (*Network, *Charger, error) {
	if o.snap == nil {
		return nw, ch, nil
	}
	fnw, fch, _, err := o.snap.Fork()
	if err != nil {
		return nil, nil, err
	}
	if fch == nil {
		fch = mc.New(fnw.Sink(), mc.DefaultParams())
	}
	return fnw, fch, nil
}

func applyRunOptions(opts []RunOption) runOptions {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Attack runs the full charging spoofing attack campaign on the
// network: TIDE planning, adaptive spoof execution, opportunistic cover
// service, live audits. See campaign.RunAttack. The campaign
// checkpoints ctx at every world-step and service boundary and returns
// ctx.Err() promptly once the context is canceled.
//
//	out, err := wrsncsa.Attack(ctx, nw, ch, wrsncsa.CampaignConfig{Seed: 42})
//
// With WithSnapshot, nw and ch may be nil; the run forks the snapshot.
func Attack(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig, opts ...RunOption) (*Outcome, error) {
	o := applyRunOptions(opts)
	nw, ch, err := o.forkRun(nw, ch)
	if err != nil {
		return nil, err
	}
	return campaign.RunAttack(ctx, nw, ch, cfg)
}

// AttackContext is Attack under its pre-context-first name.
//
// Deprecated: call Attack, which now takes ctx first.
func AttackContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return Attack(ctx, nw, ch, cfg)
}

// Legit runs the uncompromised on-demand charging baseline. See
// campaign.RunLegit. Context and options behave as in Attack.
func Legit(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig, opts ...RunOption) (*Outcome, error) {
	o := applyRunOptions(opts)
	nw, ch, err := o.forkRun(nw, ch)
	if err != nil {
		return nil, err
	}
	return campaign.RunLegit(ctx, nw, ch, cfg)
}

// LegitContext is Legit under its pre-context-first name.
//
// Deprecated: call Legit, which now takes ctx first.
func LegitContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return Legit(ctx, nw, ch, cfg)
}

// PlanOption customizes PlanTIDE.
type PlanOption func(*planOptions)

type planOptions struct {
	builder BuilderConfig
	polish  bool
}

// WithBuilderConfig replaces the default TIDE instance construction
// parameters (horizon, request threshold, cover cap, budget override).
func WithBuilderConfig(cfg BuilderConfig) PlanOption {
	return func(o *planOptions) { o.builder = cfg }
}

// WithPolish enables the 2-opt polishing pass on the CSA solution.
func WithPolish(polish bool) PlanOption {
	return func(o *planOptions) { o.polish = polish }
}

// PlanTIDE builds the TIDE instance for the network's current state and
// solves it with CSA, returning both:
//
//	in, res, err := wrsncsa.PlanTIDE(nw, ch,
//		wrsncsa.WithBuilderConfig(wrsncsa.BuilderConfig{MaxCovers: 10}))
func PlanTIDE(nw *Network, ch *Charger, opts ...PlanOption) (*Instance, PlanResult, error) {
	var o planOptions
	for _, opt := range opts {
		opt(&o)
	}
	in, err := attack.BuildInstance(nw, ch, o.builder)
	if err != nil {
		return nil, PlanResult{}, err
	}
	solve := attack.SolveCSA
	if o.polish {
		solve = attack.SolveCSAPolished
	}
	res, err := solve(in)
	if err != nil {
		return nil, PlanResult{}, err
	}
	return in, res, nil
}

// DetectorSuite returns the standard network-side detector set.
func DetectorSuite() []Detector { return detect.Suite() }

// ROCPoint is one detector operating point.
type ROCPoint = detect.ROCPoint

// ROC computes a detector's ROC curve from attack (positive) and
// legitimate (negative) score samples. See detect.ROC.
func ROC(positives, negatives []float64) ([]ROCPoint, error) {
	return detect.ROC(positives, negatives)
}

// AUC integrates a ROC curve. See detect.AUC.
func AUC(pts []ROCPoint) float64 { return detect.AUC(pts) }

// Testbed re-exports the software-in-the-loop TCP test bed.
type (
	// TestbedConfig parameterizes a test-bed run.
	TestbedConfig = testbed.RunConfig
	// TestbedReport is a test-bed outcome.
	TestbedReport = testbed.Report
	// TestbedNode describes one emulated node.
	TestbedNode = testbed.NodeSetup
)

// RunTestbed executes a complete TCP software-in-the-loop experiment.
func RunTestbed(cfg TestbedConfig) (*TestbedReport, error) {
	return testbed.Run(cfg)
}

// DefaultTestbedNodes returns the canonical 12-node test bed.
func DefaultTestbedNodes() []TestbedNode { return testbed.DefaultNodes() }

// DefenseConfig re-exports the countermeasure configuration (harvest
// verification, neighbor witnessing); set it on CampaignConfig.Defense.
type DefenseConfig = defense.Config

// Exposure is a countermeasure catch.
type Exposure = defense.Exposure

// FleetOutcome is a multi-charger run result.
type FleetOutcome = campaign.FleetOutcome

// Fault-injection re-exports (see the internal faults package): a
// deterministic, seed-driven fault plan — node hardware failures,
// charging-request loss, charger breakdowns, sink outages — set on
// CampaignConfig.Faults. Plans are single-use: build a fresh one per
// campaign run.
type (
	// FaultSpec parameterizes fault-plan generation.
	FaultSpec = faults.Spec
	// FaultPlan is a compiled, seed-deterministic fault schedule.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault transition.
	FaultEvent = faults.Event
	// FaultReport is a campaign's fault ledger: injected vs. survived
	// vs. fatal. Read it from Outcome.FaultReport().
	FaultReport = faults.Report
)

// DefaultFaultSpec returns the evaluation-default fault load for the
// horizon (non-positive horizonSec gets the default 14-day horizon).
// Scale it for harsher or gentler worlds:
//
//	spec := wrsncsa.DefaultFaultSpec(42, 0).Scale(2)
//	cfg.Faults = wrsncsa.NewFaultPlan(spec, nw.Len())
func DefaultFaultSpec(seed uint64, horizonSec float64) FaultSpec {
	return faults.DefaultSpec(seed, horizonSec)
}

// NewFaultPlan compiles a spec into a deterministic fault plan for a
// network of n nodes. The same spec and n always yield the same plan.
func NewFaultPlan(spec FaultSpec, n int) *FaultPlan { return faults.New(spec, n) }

// LegitFleet runs K honest chargers over the shared request queue. See
// campaign.RunLegitFleet. Context and options behave as in Attack; from
// a snapshot, WithFleetSize sets how many chargers are forked:
//
//	o, err := wrsncsa.LegitFleet(ctx, nil, nil, cfg,
//		wrsncsa.WithSnapshot(snap), wrsncsa.WithFleetSize(3))
func LegitFleet(ctx context.Context, nw *Network, chargers []*Charger, cfg CampaignConfig, opts ...RunOption) (*FleetOutcome, error) {
	o := applyRunOptions(opts)
	if o.snap != nil {
		fnw, ch, err := o.forkRun(nil, nil)
		if err != nil {
			return nil, err
		}
		nw = fnw
		k := o.fleet
		if k < 1 {
			k = 1
		}
		chargers = make([]*Charger, k)
		chargers[0] = ch
		for i := 1; i < k; i++ {
			chargers[i] = ch.Fork()
		}
	}
	return campaign.RunLegitFleet(ctx, nw, chargers, cfg)
}

// LegitFleetContext is LegitFleet under its pre-context-first name.
//
// Deprecated: call LegitFleet, which now takes ctx first.
func LegitFleetContext(ctx context.Context, nw *Network, chargers []*Charger, cfg CampaignConfig) (*FleetOutcome, error) {
	return LegitFleet(ctx, nw, chargers, cfg)
}

// Snapshot re-exports (see the internal snapshot package): a versioned,
// deterministic serialization of a built world — deployment, batteries,
// converged routing, charger, remaining randomness — captured at the
// campaign barrier (before any event runs). Fork() peels off
// independent copies; Encode/Digest give canonical bytes.
type Snapshot = snapshot.Snapshot

// SnapshotVersion is the wire-format version DecodeSnapshot accepts.
const SnapshotVersion = snapshot.Version

// BuildSnapshot builds the standard evaluation scenario (as
// BuildScenario, same options) plus a default charger and freezes the
// result. One BuildSnapshot then N cheap Fork()s — via
// WithSnapshot(snap) on the run entry points — replaces N full
// scenario builds in a seed sweep.
func BuildSnapshot(seed uint64, n int, opts ...ScenarioOption) (*Snapshot, error) {
	sc := trace.DefaultScenario(seed, n)
	for _, opt := range opts {
		opt(&sc)
	}
	return snapshot.Build(sc, mc.DefaultParams())
}

// CaptureSnapshot freezes an already-built world: the scenario recipe,
// its network, an optional charger, and the scenario's remaining
// randomness stream (both returned by BuildScenario; ch and rest may be
// nil). The capture only reads its arguments.
func CaptureSnapshot(sc Scenario, nw *Network, ch *Charger, rest *rng.Stream) (*Snapshot, error) {
	return snapshot.Capture(sc, nw, ch, rest)
}

// DecodeSnapshot parses snapshot bytes produced by Snapshot.Encode,
// rejecting unknown wire versions. Decode → Fork → run is
// byte-identical to running from the originally captured snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return snapshot.Decode(data) }

// Job-spec re-exports (see the internal jobspec package): the
// serializable description of one campaign job, shared by the wrsncsad
// daemon, the CLIs and this library. The same JobSpec always produces
// the same result — in-process via RunJob or behind a daemon via the
// client package — because every piece of randomness derives from seeds
// carried in the spec.
type (
	// JobSpec is one complete campaign job: kind, scenario, campaign
	// knobs, fault load, fleet size.
	JobSpec = jobspec.Spec
	// JobCampaign is the serializable mirror of CampaignConfig used
	// inside a JobSpec (scheduler by name, faults as a spec).
	JobCampaign = jobspec.Campaign
	// JobResult is a run's result: Outcome or Fleet, with canonical
	// JSON and digest accessors.
	JobResult = jobspec.Result
)

// Job kinds for JobSpec.Kind.
const (
	JobKindAttack = jobspec.KindAttack
	JobKindLegit  = jobspec.KindLegit
	JobKindFleet  = jobspec.KindFleet
)

// DefaultJobSpec returns the evaluation-default legit job at the given
// scenario seed and node count; set Kind/Solver/etc. from there.
func DefaultJobSpec(seed uint64, n int) JobSpec { return jobspec.Default(seed, n) }

// RunJob executes a JobSpec in-process: build the scenario — or fork
// the spec's embedded snapshot, if JobSpec.WithSnapshot attached one —
// run the campaign, return the result. This is exactly the computation
// a wrsncsad daemon performs for the same spec — byte-identical
// digests. probe may be nil.
func RunJob(ctx context.Context, spec JobSpec, probe Probe) (*JobResult, error) {
	return jobspec.Run(ctx, spec, probe)
}

// TelemetryWindow is an incremental telemetry view: the deltas since the
// previous window cut from the same Recorder (counters as deltas, gauge
// levels, histograms when moved, the event tail). Cut one with
// Recorder.WindowSnapshot; the daemon's /stream endpoint serves these.
type TelemetryWindow = obs.Window
