// Package wrsncsa is the public API of the charging spoofing attack (CSA)
// reproduction: a complete wireless-rechargeable-sensor-network (WRSN)
// stack — WPT physics with coherent superposition and nonlinear
// rectification, network/routing/key-node analysis, on-demand charging, a
// mobile charger, TIDE attack planning, a detector suite, and end-to-end
// campaign simulation.
//
// The fastest way in:
//
//	nw, _, err := wrsncsa.BuildScenario(42, 200)
//	ch := wrsncsa.NewCharger(nw)
//	outcome, err := wrsncsa.Attack(nw, ch, wrsncsa.CampaignConfig{Seed: 42})
//	fmt.Println(outcome.KeyExhaustRatio(), outcome.Detected)
//
// The re-exported subpackage types keep the full surface available:
// construct custom deployments with trace, inspect topology with wrsn,
// plan raw TIDE instances with attack, and judge audits with detect.
package wrsncsa

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/testbed"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Re-exported core types. Each alias is the complete type; see the
// internal package documentation reachable through the alias for details.
type (
	// Network is a deployed WRSN with routing and key-node analysis.
	Network = wrsn.Network
	// NodeID identifies a sensor node.
	NodeID = wrsn.NodeID
	// KeyNode is a sink separator and its severance count.
	KeyNode = wrsn.KeyNode
	// Scenario reproducibly describes a deployment.
	Scenario = trace.Scenario
	// Charger is the mobile charger.
	Charger = mc.Charger
	// ChargerParams configures the charger.
	ChargerParams = mc.Params
	// CampaignConfig parameterizes campaign runs.
	CampaignConfig = campaign.Config
	// Outcome is a campaign result.
	Outcome = campaign.Outcome
	// Instance is a TIDE problem.
	Instance = attack.Instance
	// PlanResult is a solved TIDE instance.
	PlanResult = attack.Result
	// Detector judges charging audits.
	Detector = detect.Detector
	// Audit is the sink-side evidence a detector judges.
	Audit = detect.Audit
	// Array is a coherent multi-emitter WPT front end.
	Array = wpt.Array
	// SpoofBand is the RF interval a spoof must land in.
	SpoofBand = wpt.SpoofBand
	// BuilderConfig parameterizes TIDE instance construction.
	BuilderConfig = attack.BuilderConfig
	// Deployment selects a node-placement pattern for BuildScenario.
	Deployment = trace.Deployment
	// RoutingPolicy selects the routing objective.
	RoutingPolicy = wrsn.RoutingPolicy
)

// Deployment patterns and routing policies for scenario options.
const (
	DeployUniform   = trace.DeployUniform
	DeployClustered = trace.DeployClustered
	DeployGrid      = trace.DeployGrid
	DeployCorridor  = trace.DeployCorridor

	PolicyShortestDistance = wrsn.PolicyShortestDistance
	PolicyHopCount         = wrsn.PolicyHopCount
	PolicyEnergyAware      = wrsn.PolicyEnergyAware
)

// Telemetry re-exports: the campaign telemetry subsystem (see the
// internal obs package). Attach a probe via CampaignConfig.Probe,
// experiment WithProbe options, or NewCharger's WithProbe option.
type (
	// Probe is the telemetry hook every simulation layer accepts:
	// counters, gauges, histograms and a structured event stream.
	Probe = obs.Probe
	// Recorder is the in-memory recording Probe.
	Recorder = obs.Recorder
	// TelemetrySnapshot is a deterministic point-in-time Recorder view
	// with CSV/JSON export methods.
	TelemetrySnapshot = obs.Snapshot
	// TelemetryEvent is one structured timestamped event.
	TelemetryEvent = obs.Event
)

// NewRecorder returns an empty recording probe.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NopProbe returns the zero-overhead disabled probe (the default
// everywhere a probe is accepted).
func NopProbe() Probe { return obs.Nop() }

// Solver names for CampaignConfig.Solver.
const (
	SolverCSA           = campaign.SolverCSA
	SolverRandom        = campaign.SolverRandom
	SolverGreedyNearest = campaign.SolverGreedyNearest
	SolverDirect        = campaign.SolverDirect
)

// ScenarioOption customizes the scenario BuildScenario assembles before
// building it; the zero-option call reproduces the evaluation default.
type ScenarioOption func(*Scenario)

// WithDeployPattern selects the node-placement pattern (DeployUniform,
// DeployClustered, DeployGrid, DeployCorridor).
func WithDeployPattern(p Deployment) ScenarioOption {
	return func(s *Scenario) { s.Deploy.Pattern = p }
}

// WithCommRange overrides the radio range in meters (non-positive keeps
// the default).
func WithCommRange(r float64) ScenarioOption {
	return func(s *Scenario) { s.CommRange = r }
}

// WithRoutingPolicy selects the routing objective.
func WithRoutingPolicy(p RoutingPolicy) ScenarioOption {
	return func(s *Scenario) { s.Policy = p }
}

// BuildScenario constructs the standard evaluation scenario: n nodes
// uniformly deployed around a centered sink, fully connected, seeded
// reproducibly. Options adjust the scenario before building:
//
//	nw, _, err := wrsncsa.BuildScenario(42, 200,
//		wrsncsa.WithDeployPattern(wrsncsa.DeployClustered))
//
// The returned stream carries the scenario's remaining randomness
// budget.
func BuildScenario(seed uint64, n int, opts ...ScenarioOption) (*Network, *rng.Stream, error) {
	sc := trace.DefaultScenario(seed, n)
	for _, opt := range opts {
		opt(&sc)
	}
	return sc.Build()
}

// DefaultChargerParams returns the evaluation-default charger
// parameters — the starting point for WithChargerParams tweaks.
func DefaultChargerParams() ChargerParams { return mc.DefaultParams() }

// ChargerOption customizes NewCharger.
type ChargerOption func(*chargerOptions)

type chargerOptions struct {
	params mc.Params
	probe  Probe
}

// WithChargerParams replaces the default charger parameters (zero-valued
// fields still get defaults).
func WithChargerParams(p ChargerParams) ChargerOption {
	return func(o *chargerOptions) { o.params = p }
}

// WithProbe attaches a telemetry probe to the charger: travel distance
// and energy, radiated energy and tour resets accumulate into it.
func WithProbe(p Probe) ChargerOption {
	return func(o *chargerOptions) { o.probe = p }
}

// NewCharger parks a mobile charger at the network's sink,
// default-parameterized unless options say otherwise:
//
//	ch := wrsncsa.NewCharger(nw,
//		wrsncsa.WithChargerParams(wrsncsa.ChargerParams{SpeedMps: 8}),
//		wrsncsa.WithProbe(recorder))
func NewCharger(nw *Network, opts ...ChargerOption) *Charger {
	o := chargerOptions{params: mc.DefaultParams()}
	for _, opt := range opts {
		opt(&o)
	}
	ch := mc.New(nw.Sink(), o.params)
	if o.probe != nil {
		ch.Instrument(o.probe)
	}
	return ch
}

// Attack runs the full charging spoofing attack campaign on the network:
// TIDE planning, adaptive spoof execution, opportunistic cover service,
// live audits. See campaign.RunAttack. It is AttackContext with a
// background context; prefer AttackContext when the caller may need to
// cancel.
func Attack(nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunAttack(context.Background(), nw, ch, cfg)
}

// AttackContext is Attack with cancellation: the campaign checkpoints ctx
// at every world-step and service boundary and returns ctx.Err() promptly
// once the context is canceled. See campaign.RunAttack.
func AttackContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunAttack(ctx, nw, ch, cfg)
}

// Legit runs the uncompromised on-demand charging baseline. See
// campaign.RunLegit. It is LegitContext with a background context.
func Legit(nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunLegit(context.Background(), nw, ch, cfg)
}

// LegitContext is Legit with cancellation; see campaign.RunLegit.
func LegitContext(ctx context.Context, nw *Network, ch *Charger, cfg CampaignConfig) (*Outcome, error) {
	return campaign.RunLegit(ctx, nw, ch, cfg)
}

// PlanOption customizes PlanTIDE.
type PlanOption func(*planOptions)

type planOptions struct {
	builder BuilderConfig
	polish  bool
}

// WithBuilderConfig replaces the default TIDE instance construction
// parameters (horizon, request threshold, cover cap, budget override).
func WithBuilderConfig(cfg BuilderConfig) PlanOption {
	return func(o *planOptions) { o.builder = cfg }
}

// WithPolish enables the 2-opt polishing pass on the CSA solution.
func WithPolish(polish bool) PlanOption {
	return func(o *planOptions) { o.polish = polish }
}

// PlanTIDE builds the TIDE instance for the network's current state and
// solves it with CSA, returning both:
//
//	in, res, err := wrsncsa.PlanTIDE(nw, ch,
//		wrsncsa.WithBuilderConfig(wrsncsa.BuilderConfig{MaxCovers: 10}))
func PlanTIDE(nw *Network, ch *Charger, opts ...PlanOption) (*Instance, PlanResult, error) {
	var o planOptions
	for _, opt := range opts {
		opt(&o)
	}
	in, err := attack.BuildInstance(nw, ch, o.builder)
	if err != nil {
		return nil, PlanResult{}, err
	}
	solve := attack.SolveCSA
	if o.polish {
		solve = attack.SolveCSAPolished
	}
	res, err := solve(in)
	if err != nil {
		return nil, PlanResult{}, err
	}
	return in, res, nil
}

// DetectorSuite returns the standard network-side detector set.
func DetectorSuite() []Detector { return detect.Suite() }

// ROCPoint is one detector operating point.
type ROCPoint = detect.ROCPoint

// ROC computes a detector's ROC curve from attack (positive) and
// legitimate (negative) score samples. See detect.ROC.
func ROC(positives, negatives []float64) ([]ROCPoint, error) {
	return detect.ROC(positives, negatives)
}

// AUC integrates a ROC curve. See detect.AUC.
func AUC(pts []ROCPoint) float64 { return detect.AUC(pts) }

// Testbed re-exports the software-in-the-loop TCP test bed.
type (
	// TestbedConfig parameterizes a test-bed run.
	TestbedConfig = testbed.RunConfig
	// TestbedReport is a test-bed outcome.
	TestbedReport = testbed.Report
	// TestbedNode describes one emulated node.
	TestbedNode = testbed.NodeSetup
)

// RunTestbed executes a complete TCP software-in-the-loop experiment.
func RunTestbed(cfg TestbedConfig) (*TestbedReport, error) {
	return testbed.Run(cfg)
}

// DefaultTestbedNodes returns the canonical 12-node test bed.
func DefaultTestbedNodes() []TestbedNode { return testbed.DefaultNodes() }

// DefenseConfig re-exports the countermeasure configuration (harvest
// verification, neighbor witnessing); set it on CampaignConfig.Defense.
type DefenseConfig = defense.Config

// Exposure is a countermeasure catch.
type Exposure = defense.Exposure

// FleetOutcome is a multi-charger run result.
type FleetOutcome = campaign.FleetOutcome

// Fault-injection re-exports (see the internal faults package): a
// deterministic, seed-driven fault plan — node hardware failures,
// charging-request loss, charger breakdowns, sink outages — set on
// CampaignConfig.Faults. Plans are single-use: build a fresh one per
// campaign run.
type (
	// FaultSpec parameterizes fault-plan generation.
	FaultSpec = faults.Spec
	// FaultPlan is a compiled, seed-deterministic fault schedule.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault transition.
	FaultEvent = faults.Event
	// FaultReport is a campaign's fault ledger: injected vs. survived
	// vs. fatal. Read it from Outcome.FaultReport().
	FaultReport = faults.Report
)

// DefaultFaultSpec returns the evaluation-default fault load for the
// horizon (non-positive horizonSec gets the default 14-day horizon).
// Scale it for harsher or gentler worlds:
//
//	spec := wrsncsa.DefaultFaultSpec(42, 0).Scale(2)
//	cfg.Faults = wrsncsa.NewFaultPlan(spec, nw.Len())
func DefaultFaultSpec(seed uint64, horizonSec float64) FaultSpec {
	return faults.DefaultSpec(seed, horizonSec)
}

// NewFaultPlan compiles a spec into a deterministic fault plan for a
// network of n nodes. The same spec and n always yield the same plan.
func NewFaultPlan(spec FaultSpec, n int) *FaultPlan { return faults.New(spec, n) }

// LegitFleet runs K honest chargers over the shared request queue. See
// campaign.RunLegitFleet. It is LegitFleetContext with a background
// context.
func LegitFleet(nw *Network, chargers []*Charger, cfg CampaignConfig) (*FleetOutcome, error) {
	return campaign.RunLegitFleet(context.Background(), nw, chargers, cfg)
}

// LegitFleetContext is LegitFleet with cancellation; see
// campaign.RunLegitFleet.
func LegitFleetContext(ctx context.Context, nw *Network, chargers []*Charger, cfg CampaignConfig) (*FleetOutcome, error) {
	return campaign.RunLegitFleet(ctx, nw, chargers, cfg)
}

// Job-spec re-exports (see the internal jobspec package): the
// serializable description of one campaign job, shared by the wrsncsad
// daemon, the CLIs and this library. The same JobSpec always produces
// the same result — in-process via RunJob or behind a daemon via the
// client package — because every piece of randomness derives from seeds
// carried in the spec.
type (
	// JobSpec is one complete campaign job: kind, scenario, campaign
	// knobs, fault load, fleet size.
	JobSpec = jobspec.Spec
	// JobCampaign is the serializable mirror of CampaignConfig used
	// inside a JobSpec (scheduler by name, faults as a spec).
	JobCampaign = jobspec.Campaign
	// JobResult is a run's result: Outcome or Fleet, with canonical
	// JSON and digest accessors.
	JobResult = jobspec.Result
)

// Job kinds for JobSpec.Kind.
const (
	JobKindAttack = jobspec.KindAttack
	JobKindLegit  = jobspec.KindLegit
	JobKindFleet  = jobspec.KindFleet
)

// DefaultJobSpec returns the evaluation-default legit job at the given
// scenario seed and node count; set Kind/Solver/etc. from there.
func DefaultJobSpec(seed uint64, n int) JobSpec { return jobspec.Default(seed, n) }

// RunJob executes a JobSpec in-process: build the scenario, run the
// campaign, return the result. This is exactly the computation a
// wrsncsad daemon performs for the same spec — byte-identical digests.
// probe may be nil.
func RunJob(ctx context.Context, spec JobSpec, probe Probe) (*JobResult, error) {
	return jobspec.Run(ctx, spec, probe)
}

// TelemetryWindow is an incremental telemetry view: the deltas since the
// previous window cut from the same Recorder (counters as deltas, gauge
// levels, histograms when moved, the event tail). Cut one with
// Recorder.WindowSnapshot; the daemon's /stream endpoint serves these.
type TelemetryWindow = obs.Window
