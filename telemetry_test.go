package wrsncsa_test

// Telemetry contract tests at the public API level: a recording probe
// observes the campaign without perturbing it, and the functional
// options compose with the quickstart flow.

import (
	"context"
	"reflect"
	"testing"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

// TestProbeOutcomeDeterminism is the subsystem's core promise: attaching
// a recording probe leaves the campaign Outcome deeply identical to the
// unobserved run, while the recorder itself fills up.
func TestProbeOutcomeDeterminism(t *testing.T) {
	runOnce := func(probe wrsncsa.Probe) *wrsncsa.Outcome {
		t.Helper()
		nw, _, err := wrsncsa.BuildScenario(42, 120)
		if err != nil {
			t.Fatal(err)
		}
		ch := wrsncsa.NewCharger(nw)
		if probe != nil {
			ch = wrsncsa.NewCharger(nw, wrsncsa.WithProbe(probe))
		}
		out, err := wrsncsa.Attack(context.Background(), nw, ch,
			wrsncsa.CampaignConfig{Seed: 42, Probe: probe})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	plain := runOnce(nil)
	rec := wrsncsa.NewRecorder()
	probed := runOnce(rec)
	if !reflect.DeepEqual(plain, probed) {
		t.Error("Outcome differs with a recording probe attached; telemetry must be strictly observational")
	}

	if n := rec.Counter("campaign.requests.issued"); n == 0 {
		t.Error("recorder saw no campaign.requests.issued")
	}
	if n := rec.Counter("charger.travel_m"); n == 0 {
		t.Error("recorder saw no charger travel")
	}
	if len(rec.Events()) == 0 {
		t.Error("recorder saw no events")
	}
	snap := rec.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("snapshot incomplete: %d counters, %d histograms",
			len(snap.Counters), len(snap.Histograms))
	}
}

// TestScenarioOptions checks the BuildScenario options change the built
// network the way their names promise.
func TestScenarioOptions(t *testing.T) {
	uniform, _, err := wrsncsa.BuildScenario(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	grid, _, err := wrsncsa.BuildScenario(7, 100, wrsncsa.WithDeployPattern(wrsncsa.DeployGrid))
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Len() != grid.Len() {
		t.Errorf("node counts differ: uniform %d, grid %d", uniform.Len(), grid.Len())
	}
	same := true
	for i, n := range uniform.Nodes() {
		if n.Pos != grid.Nodes()[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("WithDeployPattern(DeployGrid) produced the uniform layout")
	}

	if _, _, err := wrsncsa.BuildScenario(7, 100,
		wrsncsa.WithCommRange(250),
		wrsncsa.WithRoutingPolicy(wrsncsa.PolicyEnergyAware),
	); err != nil {
		t.Fatalf("combined scenario options: %v", err)
	}
}

// TestChargerOptions checks WithChargerParams and WithProbe take effect.
func TestChargerOptions(t *testing.T) {
	nw, _, err := wrsncsa.BuildScenario(7, 80)
	if err != nil {
		t.Fatal(err)
	}
	params := wrsncsa.DefaultChargerParams()
	params.BudgetJ *= 2
	rec := wrsncsa.NewRecorder()
	ch := wrsncsa.NewCharger(nw, wrsncsa.WithChargerParams(params), wrsncsa.WithProbe(rec))
	if got := ch.Params().BudgetJ; got != params.BudgetJ {
		t.Errorf("charger budget %.0f J, want %.0f J", got, params.BudgetJ)
	}
	if _, err := wrsncsa.Legit(context.Background(), nw, ch, wrsncsa.CampaignConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if rec.Counter("charger.travel_m") == 0 {
		t.Error("WithProbe recorder saw no charger travel")
	}
}

// TestPlanOptions checks PlanTIDE's functional options.
func TestPlanOptions(t *testing.T) {
	nw, _, err := wrsncsa.BuildScenario(42, 120)
	if err != nil {
		t.Fatal(err)
	}
	ch := wrsncsa.NewCharger(nw)
	baseIn, base, err := wrsncsa.PlanTIDE(nw, ch)
	if err != nil {
		t.Fatal(err)
	}
	shortIn, _, err := wrsncsa.PlanTIDE(nw, ch,
		wrsncsa.WithBuilderConfig(wrsncsa.BuilderConfig{HorizonSec: 4 * 86400}))
	if err != nil {
		t.Fatal(err)
	}
	if len(shortIn.Sites) >= len(baseIn.Sites) {
		t.Errorf("4-day horizon yields %d sites, 14-day default %d; shorter horizon should forecast fewer cover requests",
			len(shortIn.Sites), len(baseIn.Sites))
	}
	if _, polished, err := wrsncsa.PlanTIDE(nw, ch, wrsncsa.WithPolish(true)); err != nil {
		t.Fatal(err)
	} else if polished.Plan.UtilityJ < base.Plan.UtilityJ {
		t.Errorf("polished utility %.0f below unpolished %.0f", polished.Plan.UtilityJ, base.Plan.UtilityJ)
	}
}

// TestContextCancellation checks the ctx-first entry points honor an
// already-canceled context.
func TestContextCancellation(t *testing.T) {
	nw, _, err := wrsncsa.BuildScenario(42, 80)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := wrsncsa.Legit(ctx, nw, wrsncsa.NewCharger(nw),
		wrsncsa.CampaignConfig{Seed: 42}); err == nil {
		t.Error("canceled context accepted")
	}
}
