package wrsncsa_test

import (
	"context"
	"testing"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

// The public API smoke test: the quickstart flow end to end.
func TestPublicAPIFlow(t *testing.T) {
	nw, _, err := wrsncsa.BuildScenario(42, 120)
	if err != nil {
		t.Fatal(err)
	}
	keys := nw.KeyNodes()
	if len(keys) == 0 {
		t.Fatal("scenario has no key nodes")
	}

	ch := wrsncsa.NewCharger(nw)
	in, plan, err := wrsncsa.PlanTIDE(nw, ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Mandatories()) != len(keys) {
		t.Errorf("instance targets %d, key nodes %d", len(in.Mandatories()), len(keys))
	}
	if plan.Plan.SpoofCount == 0 {
		t.Error("plan spoofs nothing")
	}

	out, err := wrsncsa.Attack(context.Background(), nw, ch, wrsncsa.CampaignConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if out.KeyExhaustRatio() < 0.8 {
		t.Errorf("exhaustion %.2f < 0.8", out.KeyExhaustRatio())
	}
	if out.Detected {
		t.Error("attack detected")
	}

	nw2, _, err := wrsncsa.BuildScenario(42, 120)
	if err != nil {
		t.Fatal(err)
	}
	legit, err := wrsncsa.Legit(context.Background(), nw2, wrsncsa.NewCharger(nw2), wrsncsa.CampaignConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if legit.DeadTotal != 0 {
		t.Errorf("legit run lost %d nodes", legit.DeadTotal)
	}

	if len(wrsncsa.DetectorSuite()) == 0 {
		t.Error("empty detector suite")
	}
	pts, err := wrsncsa.ROC([]float64{0.9}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if wrsncsa.AUC(pts) != 1 {
		t.Error("trivial ROC broken")
	}
}

func TestFleetAPI(t *testing.T) {
	nw, _, err := wrsncsa.BuildScenario(3, 80)
	if err != nil {
		t.Fatal(err)
	}
	fleet := []*wrsncsa.Charger{wrsncsa.NewCharger(nw), wrsncsa.NewCharger(nw)}
	o, err := wrsncsa.LegitFleet(context.Background(), nw, fleet, wrsncsa.CampaignConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if o.Chargers != 2 || o.DeadTotal != 0 {
		t.Errorf("fleet outcome %+v", o)
	}
}

func TestTestbedAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test bed")
	}
	rep, err := wrsncsa.RunTestbed(wrsncsa.TestbedConfig{
		Nodes:          wrsncsa.DefaultTestbedNodes(),
		DurationRealMs: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Error("legit test bed flagged")
	}
}
