// Package client is the Go client for the wrsncsad campaign daemon: a
// thin typed wrapper over its HTTP/JSON API, so tools target a running
// daemon instead of linking the simulation library. The wire types are
// the daemon's own (aliased), keeping the two ends structurally
// identical by construction.
//
//	c := client.New("http://127.0.0.1:8077")
//	st, err := c.Submit(ctx, spec)            // 429-aware: returns *BusyError
//	st, err = c.Wait(ctx, st.ID, time.Second) // poll to terminal state
//	env, err := c.Outcome(ctx, st.ID)         // canonical JSON + digest
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/service"
)

// Wire types, shared with the daemon.
type (
	// JobSpec is the serializable job description POST /v1/jobs accepts.
	JobSpec = jobspec.Spec
	// JobStatus is one job's lifecycle snapshot.
	JobStatus = service.JobStatus
	// OutcomeEnvelope is the /outcome body: digest + canonical JSON.
	OutcomeEnvelope = service.OutcomeEnvelope
	// StreamFrame is one NDJSON frame of the /stream endpoint.
	StreamFrame = service.StreamFrame
	// Health is the /healthz body.
	Health = service.Health
	// TelemetrySnapshot is the cumulative telemetry view.
	TelemetrySnapshot = obs.Snapshot
)

// BusyError reports queue-full backpressure (HTTP 429): retry after the
// indicated delay.
type BusyError struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("daemon busy: retry after %s", e.RetryAfter)
}

// APIError is any other non-2xx daemon response.
type APIError struct {
	StatusCode int
	Kind       string
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("daemon: %d %s: %s", e.StatusCode, e.Kind, e.Message)
}

// Client talks to one daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8077"), using http.DefaultClient.
func New(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
}

// WithHTTPClient swaps the underlying *http.Client (timeouts, proxies).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Submit posts a job. A full queue returns *BusyError with the daemon's
// Retry-After hint; the caller owns the retry loop (or use SubmitWait).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("client: encode spec: %w", err)
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// SubmitWait is Submit with the backpressure loop built in: on 429 it
// sleeps the daemon's Retry-After hint and tries again until ctx ends.
func (c *Client) SubmitWait(ctx context.Context, spec JobSpec) (JobStatus, error) {
	for {
		st, err := c.Submit(ctx, spec)
		var busy *BusyError
		if err == nil || !errors.As(err, &busy) {
			return st, err
		}
		t := time.NewTimer(busy.RetryAfter)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return JobStatus{}, ctx.Err()
		}
	}
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation and returns the updated status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Outcome fetches a done job's canonical outcome JSON and digest.
func (c *Client) Outcome(ctx context.Context, id string) (OutcomeEnvelope, error) {
	var env OutcomeEnvelope
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/outcome", nil, &env)
	return env, err
}

// Telemetry fetches a job's cumulative telemetry snapshot.
func (c *Client) Telemetry(ctx context.Context, id string) (*TelemetrySnapshot, error) {
	var snap TelemetrySnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/telemetry", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Health fetches the daemon health summary.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

// Wait polls the job at the given cadence until it reaches a terminal
// state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Stream consumes the job's NDJSON telemetry stream, invoking fn per
// frame until the terminal frame, an fn error, or ctx ends. interval is
// the server-side frame cadence (0 = the daemon default).
func (c *Client) Stream(ctx context.Context, id string, interval time.Duration, fn func(StreamFrame) error) error {
	url := c.base + "/v1/jobs/" + id + "/stream"
	if interval > 0 {
		url += "?interval=" + interval.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var frame StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return fmt.Errorf("client: decode stream frame: %w", err)
		}
		if err := fn(frame); err != nil {
			return err
		}
		if frame.Last {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: stream: %w", err)
	}
	return fmt.Errorf("client: stream ended without a terminal frame")
}

// do performs one JSON request/response cycle.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// decodeError maps a non-2xx response to *BusyError (429) or *APIError.
func decodeError(resp *http.Response) error {
	var body struct {
		Error service.ErrorInfo `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		return &BusyError{RetryAfter: retry}
	}
	return &APIError{StatusCode: resp.StatusCode, Kind: body.Error.Kind, Message: body.Error.Message}
}
