package client_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/client"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/service"
)

// quickSpec builds a fast-but-real campaign: the seed selects the
// scenario, and the index rotates through job kinds and solvers so the
// determinism sweep covers attack, legit and fleet paths.
func quickSpec(i int) jobspec.Spec {
	seed := uint64(1000 + i%25) // 25 distinct specs; duplicates must collide on digest
	s := jobspec.Default(seed, 60)
	s.Campaign.HorizonSec = 2 * 86400
	switch i % 25 % 3 {
	case 0:
		s.Kind = jobspec.KindAttack
		s.Campaign.Solver = "CSA"
	case 1:
		s.Kind = jobspec.KindLegit
	case 2:
		s.Kind = jobspec.KindFleet
		s.Chargers = 2
	}
	return s
}

// reference runs the in-process library path for each distinct spec and
// returns digest + canonical outcome bytes keyed by spec index mod 25.
func reference(t *testing.T, n int) (map[int]string, map[int][]byte) {
	t.Helper()
	digests := make(map[int]string)
	bodies := make(map[int][]byte)
	for i := 0; i < n && i < 25; i++ {
		res, err := jobspec.Run(context.Background(), quickSpec(i), obs.Nop())
		if err != nil {
			t.Fatalf("library path spec %d: %v", i, err)
		}
		dig, err := res.Digest()
		if err != nil {
			t.Fatal(err)
		}
		body, err := res.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = dig
		bodies[i] = body
	}
	return digests, bodies
}

// TestHTTPDeterminismMatchesLibrary is the PR's correctness fence: ≥100
// jobs submitted concurrently over real HTTP must produce Outcome
// digests (and canonical bytes) identical to the in-process library
// path, regardless of worker count or scheduling order.
func TestHTTPDeterminismMatchesLibrary(t *testing.T) {
	const jobs = 100
	wantDig, wantBody := reference(t, jobs)

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			svc := service.New(service.Options{QueueDepth: 24, Workers: workers, RetryAfter: 50 * time.Millisecond})
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				if err := svc.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
			}()

			c := client.New(srv.URL)
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()

			ids := make([]string, jobs)
			var wg sync.WaitGroup
			errs := make(chan error, jobs)
			for i := 0; i < jobs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// SubmitWait rides the 429 backpressure loop; the
					// shallow queue guarantees it actually triggers.
					st, err := c.SubmitWait(ctx, quickSpec(i))
					if err != nil {
						errs <- fmt.Errorf("job %d: submit: %w", i, err)
						return
					}
					ids[i] = st.ID
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			for i, id := range ids {
				st, err := c.Wait(ctx, id, 20*time.Millisecond)
				if err != nil {
					t.Fatalf("job %d: wait: %v", i, err)
				}
				if st.State != service.StateDone {
					t.Fatalf("job %d: state %s, error %+v", i, st.State, st.Error)
				}
				ref := i % 25
				if st.Digest != wantDig[ref] {
					t.Errorf("job %d: HTTP digest %s != library digest %s", i, st.Digest, wantDig[ref])
				}
				env, err := c.Outcome(ctx, id)
				if err != nil {
					t.Fatalf("job %d: outcome: %v", i, err)
				}
				if env.Digest != wantDig[ref] {
					t.Errorf("job %d: envelope digest mismatch", i)
				}
				if !bytes.Equal(env.Outcome, wantBody[ref]) {
					t.Errorf("job %d: canonical outcome bytes differ from library path", i)
				}
			}
		})
	}
}

// TestClientBackpressureAndErrors covers the client-visible error
// surfaces: 429 → *BusyError with the daemon's Retry-After, 404 →
// *APIError, invalid spec → *APIError(400).
func TestClientBackpressureAndErrors(t *testing.T) {
	gate := make(chan struct{})
	block := func(ctx context.Context, _ jobspec.Spec, _ jobspec.RunOptions) (*jobspec.Result, error) {
		select {
		case <-gate:
			return nil, errors.New("unused")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	svc := service.New(service.Options{QueueDepth: 1, Workers: 1, RetryAfter: 3 * time.Second, Runner: block})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	c := client.New(srv.URL)
	ctx := context.Background()

	// Fill the worker and the 1-deep queue; submit until the full
	// queue pushes back (the worker may dequeue the first job at any
	// point, so the third or fourth submit is the one that must bounce).
	var busy *client.BusyError
	var err error
	for i := 0; i < 4; i++ {
		_, err = c.Submit(ctx, quickSpec(0))
		if err != nil {
			break
		}
	}
	if !errors.As(err, &busy) {
		t.Fatalf("overfull submit returned %v, want *BusyError", err)
	}
	if busy.RetryAfter != 3*time.Second {
		t.Errorf("Retry-After %s did not round-trip the daemon's 3s hint", busy.RetryAfter)
	}

	var apiErr *client.APIError
	if _, err := c.Job(ctx, "no-such-job"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("missing job returned %v, want 404 *APIError", err)
	}

	bad := quickSpec(0)
	bad.Campaign.Solver = "definitely-not-a-solver"
	if _, err := c.Submit(ctx, bad); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("invalid spec returned %v, want 400 *APIError", err)
	}

	if h, err := c.Health(ctx); err != nil || h.Workers != 1 {
		t.Errorf("health = %+v, %v", h, err)
	}
}

// TestClientStream consumes the NDJSON stream end to end: frames until
// the terminal one, which must carry the digest of a done job.
func TestClientStream(t *testing.T) {
	svc := service.New(service.Options{QueueDepth: 4, Workers: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	c := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, quickSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	var last client.StreamFrame
	err = c.Stream(ctx, st.ID, 20*time.Millisecond, func(f client.StreamFrame) error {
		frames++
		last = f
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if frames == 0 || !last.Last {
		t.Fatalf("stream ended after %d frames, last-marker %v", frames, last.Last)
	}
	if last.Job.State != service.StateDone || last.Job.Digest == "" {
		t.Errorf("terminal frame job = %s digest %q, want done with digest", last.Job.State, last.Job.Digest)
	}
}
