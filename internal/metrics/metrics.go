// Package metrics provides the statistics utilities experiments use:
// streaming mean/variance (Welford), min/max tracking, percentiles,
// confidence intervals, and labeled time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations with numerically stable
// single-pass mean and variance. The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean, or 0 when empty.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of the 95% confidence interval on the mean
// under the normal approximation (1.96·σ/√n), or 0 with fewer than two
// observations.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]", s.n, s.Mean(), s.CI95(), s.min, s.max)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation between closest ranks. It copies and sorts; xs is not
// modified. An empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is a labeled sequence of (x, y) pairs — one figure line.
type Series struct {
	Label string
	X, Y  []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// Ratio returns a/b, or 0 when b is 0 — the safe division experiments use
// for rates and normalized utilities.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
