package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryAgainstNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		tol := 1e-6 * (1 + math.Abs(mean) + variance)
		return math.Abs(s.Mean()-mean) < tol && math.Abs(s.Var()-variance) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryMinMaxN(t *testing.T) {
	var s Summary
	for _, x := range []float64{3, -1, 7, 2} {
		s.Add(x)
	}
	if s.N() != 4 || s.Min() != -1 || s.Max() != 7 {
		t.Errorf("n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	if s.Mean() != 2.75 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("empty summary not zero")
	}
	s.Add(5)
	if s.Var() != 0 || s.CI95() != 0 {
		t.Error("single observation has nonzero spread")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Summary
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", small.CI95(), large.CI95())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("P50 of {0,10} = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// The input must not be reordered.
	ys := []float64{5, 1, 3}
	Percentile(ys, 50)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSeries(t *testing.T) {
	s := Series{Label: "x"}
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 || s.X[1] != 2 || s.Y[1] != 20 {
		t.Errorf("series = %+v", s)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Error("division by zero not guarded")
	}
}
