package wrsn

import (
	"fmt"
	"math"
)

// Depletion forecasting. Under the steady-state load model each node drains
// at a constant power, so request and death times are closed-form. The
// attack planner uses these forecasts to derive each key node's time
// window: the interval between "the node asks to be charged" and "the node
// dies", inside which a spoofed charging visit is both expected by the
// network and fatal to the node.

// DefaultRequestFraction is the battery fraction at which a node issues a
// charging request, the standard on-demand-charging trigger.
const DefaultRequestFraction = 0.30

// Forecast is a node's projected energy trajectory under current loads.
type Forecast struct {
	ID NodeID
	// DrainWatts is the projected constant drain.
	DrainWatts float64
	// RequestAt is the absolute time (seconds from now's origin) at which
	// the battery crosses the request threshold; 0 when already below,
	// +Inf when it never will (no drain).
	RequestAt float64
	// DeathAt is the absolute time at which the battery empties; +Inf when
	// it never will.
	DeathAt float64
}

// Window returns the charging window [RequestAt, DeathAt] length. A dead or
// drainless node reports 0.
func (f Forecast) Window() float64 {
	if math.IsInf(f.DeathAt, 1) {
		return 0
	}
	w := f.DeathAt - f.RequestAt
	if w < 0 {
		return 0
	}
	return w
}

// ForecastAt projects node id's trajectory starting at absolute time now,
// with requests issued at the given battery fraction. Fractions outside
// (0,1) get DefaultRequestFraction.
func (nw *Network) ForecastAt(id NodeID, now, requestFrac float64) (Forecast, error) {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return Forecast{}, fmt.Errorf("wrsn: forecast for node %d out of range", id)
	}
	if requestFrac <= 0 || requestFrac >= 1 {
		requestFrac = DefaultRequestFraction
	}
	drain := nw.DrainWatts(id)
	f := Forecast{ID: id, DrainWatts: drain}
	if !nw.aliveIdx(int(id)) {
		f.RequestAt, f.DeathAt = now, now
		return f, nil
	}
	if drain <= 0 {
		f.RequestAt, f.DeathAt = math.Inf(1), math.Inf(1)
		return f, nil
	}
	level := nw.bats[id].Level()
	threshold := requestFrac * nw.bats[id].Capacity()
	if level <= threshold {
		f.RequestAt = now
	} else {
		f.RequestAt = now + (level-threshold)/drain
	}
	f.DeathAt = now + level/drain
	return f, nil
}

// ForecastAll projects every node; see ForecastAt.
func (nw *Network) ForecastAll(now, requestFrac float64) []Forecast {
	out := make([]Forecast, len(nw.nodes))
	for i := range nw.nodes {
		f, err := nw.ForecastAt(NodeID(i), now, requestFrac)
		if err != nil {
			// Unreachable: i is always in range. Keep the zero Forecast
			// rather than panicking in library code.
			continue
		}
		out[i] = f
	}
	return out
}

// AdvanceEnergy drains every alive node for dt seconds at its current
// steady-state rate and returns the IDs of nodes that died during the
// interval. It does not recompute routing; callers decide when topology
// changes warrant a Recompute.
func (nw *Network) AdvanceEnergy(dt float64) []NodeID {
	if dt <= 0 {
		return nil
	}
	var died []NodeID
	for i := range nw.bats {
		if !nw.aliveIdx(i) {
			continue
		}
		nw.bats[i].Drain(nw.drainW[i] * dt)
		if nw.bats[i].Depleted() {
			died = append(died, NodeID(i))
		}
	}
	return died
}

// AdvanceEnergyIn is AdvanceEnergy restricted to the given node IDs,
// appending deaths to died (in ids order) and returning it. It touches
// only those nodes' dense slots and no shared scratch, so concurrent
// calls over disjoint ID sets are race-free — the sharded world stepper
// drains grid-region shards in parallel this way and merges the per-shard
// death lists deterministically.
func (nw *Network) AdvanceEnergyIn(ids []NodeID, dt float64, died []NodeID) []NodeID {
	if dt <= 0 {
		return died
	}
	for _, id := range ids {
		i := int(id)
		if !nw.aliveIdx(i) {
			continue
		}
		nw.bats[i].Drain(nw.drainW[i] * dt)
		if nw.bats[i].Depleted() {
			died = append(died, id)
		}
	}
	return died
}

// NextDepletion returns the soonest projected death time among alive nodes
// starting from now, and the node that dies then. When no node will die it
// returns (+Inf, ParentNone). Ties go to the lowest ID (strict < over an
// ascending scan).
func (nw *Network) NextDepletion(now float64) (float64, NodeID) {
	best := math.Inf(1)
	who := ParentNone
	for i := range nw.bats {
		if !nw.aliveIdx(i) {
			continue
		}
		drain := nw.drainW[i]
		if drain <= 0 {
			continue
		}
		t := now + nw.bats[i].Level()/drain
		if t < best {
			best, who = t, NodeID(i)
		}
	}
	return best, who
}

// NextDepletionIn is NextDepletion restricted to the given node IDs
// (which must be ascending for the lowest-ID tie rule to match the full
// scan). It performs only reads of the nodes' dense slots, so concurrent
// calls over disjoint ID sets are race-free.
func (nw *Network) NextDepletionIn(ids []NodeID, now float64) (float64, NodeID) {
	best := math.Inf(1)
	who := ParentNone
	for _, id := range ids {
		i := int(id)
		if !nw.aliveIdx(i) {
			continue
		}
		drain := nw.drainW[i]
		if drain <= 0 {
			continue
		}
		t := now + nw.bats[i].Level()/drain
		if t < best {
			best, who = t, id
		}
	}
	return best, who
}
