package wrsn

// Key-node analysis. A key node is one whose death cuts other alive nodes
// off from the sink: an articulation point of the connectivity graph whose
// removal separates part of the network from the base station. These are
// the targets of the charging spoofing attack — exhausting them partitions
// the network far beyond their own loss.

import "sort"

// KeyNode describes one sink-separator node.
type KeyNode struct {
	// ID is the node.
	ID NodeID
	// Severed is the number of other alive nodes that lose their route to
	// the sink when this node dies.
	Severed int
}

// KeyNodes returns the sink-separator nodes of the current alive topology,
// sorted by decreasing Severed (ties by ascending ID). It runs a single
// DFS rooted at the sink (Tarjan lowpoint computation): a node v separates
// exactly the DFS subtrees of children c with low(c) ≥ disc(v), and the
// Severed count is the total size of those subtrees.
func (nw *Network) KeyNodes() []KeyNode {
	n := len(nw.nodes)
	adj := nw.aliveAdjacency()
	const unvisited = -1
	disc := make([]int, n+1)
	low := make([]int, n+1)
	sub := make([]int, n+1) // DFS subtree sizes (alive sensor nodes only)
	sever := make([]int, n+1)
	for i := range disc {
		disc[i] = unvisited
	}

	// Iterative DFS from the sink (index n) to survive deep topologies
	// (chains of thousands of nodes would overflow the goroutine stack
	// with recursion).
	type frame struct {
		v, parent, edge int
	}
	timer := 0
	stack := []frame{{v: n, parent: -1}}
	disc[n] = timer
	low[n] = timer
	timer++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.edge < len(adj[f.v]) {
			w := adj[f.v][f.edge]
			f.edge++
			switch {
			case disc[w] == unvisited:
				disc[w] = timer
				low[w] = timer
				timer++
				stack = append(stack, frame{v: w, parent: f.v})
			case w != f.parent && disc[w] < low[f.v]:
				low[f.v] = disc[w]
			}
			continue
		}
		// Post-order: fold this vertex into its parent.
		v := f.v
		stack = stack[:len(stack)-1]
		if v != n {
			sub[v]++ // count v itself
		}
		if len(stack) > 0 {
			p := &stack[len(stack)-1]
			if low[v] < low[p.v] {
				low[p.v] = low[v]
			}
			sub[p.v] += sub[v]
			// p.v (if not the sink) separates subtree v when no back edge
			// from the subtree climbs above p.v.
			if p.v != n && low[v] >= disc[p.v] {
				sever[p.v] += sub[v]
			}
		}
	}

	keys := make([]KeyNode, 0, 8)
	for i := 0; i < n; i++ {
		if sever[i] > 0 {
			keys = append(keys, KeyNode{ID: NodeID(i), Severed: sever[i]})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Severed != keys[b].Severed {
			return keys[a].Severed > keys[b].Severed
		}
		return keys[a].ID < keys[b].ID
	})
	return keys
}

// SeveredByDeath returns how many other alive, currently connected nodes
// would lose their sink route if node id died, computed by brute force
// (re-running reachability without the node). It is the reference
// implementation KeyNodes is validated against and is also used by
// simulation code for one-off queries.
func (nw *Network) SeveredByDeath(id NodeID) int {
	n := len(nw.nodes)
	adj := nw.aliveAdjacency()
	if !nw.nodes[id].Alive() {
		return 0
	}
	reach := func(skip int) (int, []bool) {
		seen := make([]bool, n+1)
		queue := []int{n}
		seen[n] = true
		count := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if w == skip || seen[w] {
					continue
				}
				seen[w] = true
				if w < n {
					count++
				}
				queue = append(queue, w)
			}
		}
		return count, seen
	}
	base, seen := reach(-1)
	if base == 0 || !seen[id] {
		// A node the sink cannot reach severs nothing by dying.
		return 0
	}
	after, _ := reach(int(id))
	// Exclude the node itself from the difference: dying removes it too,
	// but Severed counts only *other* nodes cut off.
	return base - 1 - after
}

// SeveredSet returns the IDs of the alive, currently connected nodes that
// would lose their sink route if node id died (excluding id itself),
// computed by reachability difference. Attack planning uses it to prune
// subsumed targets: a key node inside another target's severed set dies of
// the partition for free.
func (nw *Network) SeveredSet(id NodeID) []NodeID {
	n := len(nw.nodes)
	if !nw.nodes[id].Alive() {
		return nil
	}
	adj := nw.aliveAdjacency()
	reach := func(skip int) []bool {
		seen := make([]bool, n+1)
		queue := []int{n}
		seen[n] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if w == skip || seen[w] {
					continue
				}
				seen[w] = true
				queue = append(queue, w)
			}
		}
		return seen
	}
	base := reach(-1)
	after := reach(int(id))
	var severed []NodeID
	for i := 0; i < n; i++ {
		if i != int(id) && base[i] && !after[i] {
			severed = append(severed, NodeID(i))
		}
	}
	return severed
}

// Betweenness returns the shortest-path betweenness centrality of every
// node in the alive topology (Brandes' algorithm over unweighted hops,
// sink included as a vertex but not reported). Betweenness ranks
// near-critical nodes that articulation analysis misses — nodes carrying
// most routes without being strict separators — and feeds the attack's
// secondary target scoring.
func (nw *Network) Betweenness() []float64 {
	n := len(nw.nodes)
	adj := nw.aliveAdjacency()
	cb := make([]float64, n+1)
	// Scratch buffers reused across sources.
	sigma := make([]float64, n+1)
	dist := make([]int, n+1)
	delta := make([]float64, n+1)
	preds := make([][]int, n+1)
	order := make([]int, 0, n+1)
	queue := make([]int, 0, n+1)

	for s := 0; s <= n; s++ {
		if s < n && !nw.nodes[s].Alive() {
			continue
		}
		for i := 0; i <= n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = append(queue[:0], s)
		sigma[s] = 1
		dist[s] = 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	// Undirected graph: each pair counted twice.
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = cb[i] / 2
	}
	return out
}
