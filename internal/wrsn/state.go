package wrsn

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// NodeState is the serializable state of one sensor node: everything needed
// to reconstruct the node exactly, including the true (un-metered) battery
// level and the hardware-fault flag.
type NodeState struct {
	Pos       geom.Point `json:"pos"`
	GenBps    float64    `json:"gen_bps"`
	CapacityJ float64    `json:"capacity_j"`
	LevelJ    float64    `json:"level_j"`
	QuantumJ  float64    `json:"quantum_j"`
	Failed    bool       `json:"failed,omitempty"`
}

// State is the serializable form of a Network. It carries only primary
// state — node specs, sink, radio, policy — not the derived routing tree:
// Recompute is deterministic, so FromState rebuilds routing, loads, and
// drains bit-identically from the primary state alone. The wire format is
// storage-layout agnostic: it reads per-node rows out of the dense
// struct-of-arrays block and writes them back, so snapshots taken before
// the SoA refactor decode into identical networks.
type State struct {
	Sink      geom.Point        `json:"sink"`
	CommRange float64           `json:"comm_range"`
	Radio     energy.RadioModel `json:"radio"`
	Policy    RoutingPolicy     `json:"policy"`
	Nodes     []NodeState       `json:"nodes"`
}

// State captures the network's current primary state. The result is
// self-contained: mutating the network afterwards does not alter it.
func (nw *Network) State() State {
	st := State{
		Sink:      nw.sink,
		CommRange: nw.commRange,
		Radio:     nw.radio,
		Policy:    nw.policy,
		Nodes:     make([]NodeState, len(nw.nodes)),
	}
	for i := range nw.nodes {
		st.Nodes[i] = NodeState{
			Pos:       nw.pos[i],
			GenBps:    nw.genBps[i],
			CapacityJ: nw.bats[i].Capacity(),
			LevelJ:    nw.bats[i].Level(),
			QuantumJ:  nw.bats[i].Quantum(),
			Failed:    nw.failed.get(i),
		}
	}
	return st
}

// FromState reconstructs a network from captured state and recomputes
// routing. Because Recompute is a pure function of the primary state, the
// result is indistinguishable from the network State was called on:
// identical routing tree, loads, and drain rates.
func FromState(st State) (*Network, error) {
	if len(st.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	if st.CommRange <= 0 {
		return nil, fmt.Errorf("wrsn: state has non-positive comm range %v", st.CommRange)
	}
	if err := st.Radio.Validate(); err != nil {
		return nil, err
	}
	nw := &Network{
		sink:      st.Sink,
		commRange: st.CommRange,
		radio:     st.Radio,
		policy:    st.Policy,
	}
	nw.grow(len(st.Nodes))
	for i, ns := range st.Nodes {
		bat, err := energy.NewBattery(ns.CapacityJ, ns.LevelJ, ns.QuantumJ)
		if err != nil {
			return nil, fmt.Errorf("wrsn: node %d: %w", i, err)
		}
		nw.bats[i] = *bat
		nw.pos[i] = ns.Pos
		nw.genBps[i] = ns.GenBps
		if ns.Failed {
			nw.failed.set(i)
		}
		nw.nodes[i] = Node{ID: NodeID(i), Pos: ns.Pos, Battery: &nw.bats[i], GenBps: ns.GenBps, net: nw}
		nw.ptrs[i] = &nw.nodes[i]
	}
	nw.grid = geom.NewGrid(nw.pos, st.CommRange)
	nw.Recompute()
	return nw, nil
}

// Fork returns an independent copy-on-write copy of the network: the dense
// primary state is block-copied (batteries are one memcpy instead of
// per-node clones) so the fork's energy dynamics never touch the original,
// while the position grid — immutable after construction — is shared. The
// derived routing state and the persisted shortest-path state (distances,
// predecessors, the alive set the tree was computed over) are copied
// rather than recomputed, so forking skips the Dijkstra pass the original
// already paid for and the fork's first Recompute can continue
// incrementally.
//
// Fork performs only pure reads of the receiver, so many goroutines may
// fork the same template network concurrently as long as none of them
// mutates it.
func (nw *Network) Fork() *Network {
	n := len(nw.nodes)
	f := &Network{
		sink:      nw.sink,
		commRange: nw.commRange,
		radio:     nw.radio,
		policy:    nw.policy,
		grid:      nw.grid,
	}
	f.grow(n)
	copy(f.pos, nw.pos)
	copy(f.genBps, nw.genBps)
	copy(f.bats, nw.bats)
	f.failed.copyFrom(nw.failed)
	for i := range f.nodes {
		f.nodes[i] = Node{ID: NodeID(i), Pos: f.pos[i], Battery: &f.bats[i], GenBps: f.genBps[i], net: f}
		f.ptrs[i] = &f.nodes[i]
	}
	copy(f.parent, nw.parent)
	copy(f.hopDist, nw.hopDist)
	copy(f.loads, nw.loads)
	copy(f.drainW, nw.drainW)
	copy(f.dist, nw.dist)
	copy(f.pred, nw.pred)
	f.prevLive.copyFrom(nw.prevLive)
	f.treeValid = nw.treeValid
	f.fullOnly = nw.fullOnly
	f.order = append(f.order, nw.order...)
	for i, c := range nw.children {
		if len(c) > 0 {
			f.children[i] = append([]NodeID(nil), c...)
		}
	}
	return f
}
