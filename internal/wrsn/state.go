package wrsn

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// NodeState is the serializable state of one sensor node: everything needed
// to reconstruct the node exactly, including the true (un-metered) battery
// level and the hardware-fault flag.
type NodeState struct {
	Pos       geom.Point `json:"pos"`
	GenBps    float64    `json:"gen_bps"`
	CapacityJ float64    `json:"capacity_j"`
	LevelJ    float64    `json:"level_j"`
	QuantumJ  float64    `json:"quantum_j"`
	Failed    bool       `json:"failed,omitempty"`
}

// State is the serializable form of a Network. It carries only primary
// state — node specs, sink, radio, policy — not the derived routing tree:
// Recompute is deterministic, so FromState rebuilds routing, loads, and
// drains bit-identically from the primary state alone.
type State struct {
	Sink      geom.Point        `json:"sink"`
	CommRange float64           `json:"comm_range"`
	Radio     energy.RadioModel `json:"radio"`
	Policy    RoutingPolicy     `json:"policy"`
	Nodes     []NodeState       `json:"nodes"`
}

// State captures the network's current primary state. The result is
// self-contained: mutating the network afterwards does not alter it.
func (nw *Network) State() State {
	st := State{
		Sink:      nw.sink,
		CommRange: nw.commRange,
		Radio:     nw.radio,
		Policy:    nw.policy,
		Nodes:     make([]NodeState, len(nw.nodes)),
	}
	for i, n := range nw.nodes {
		st.Nodes[i] = NodeState{
			Pos:       n.Pos,
			GenBps:    n.GenBps,
			CapacityJ: n.Battery.Capacity(),
			LevelJ:    n.Battery.Level(),
			QuantumJ:  n.Battery.Quantum(),
			Failed:    n.failed,
		}
	}
	return st
}

// FromState reconstructs a network from captured state and recomputes
// routing. Because Recompute is a pure function of the primary state, the
// result is indistinguishable from the network State was called on:
// identical routing tree, loads, and drain rates.
func FromState(st State) (*Network, error) {
	if len(st.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	if st.CommRange <= 0 {
		return nil, fmt.Errorf("wrsn: state has non-positive comm range %v", st.CommRange)
	}
	if err := st.Radio.Validate(); err != nil {
		return nil, err
	}
	nw := &Network{
		nodes:     make([]*Node, len(st.Nodes)),
		sink:      st.Sink,
		commRange: st.CommRange,
		radio:     st.Radio,
		policy:    st.Policy,
	}
	pts := make([]geom.Point, len(st.Nodes))
	for i, ns := range st.Nodes {
		bat, err := energy.NewBattery(ns.CapacityJ, ns.LevelJ, ns.QuantumJ)
		if err != nil {
			return nil, fmt.Errorf("wrsn: node %d: %w", i, err)
		}
		nw.nodes[i] = &Node{
			ID:      NodeID(i),
			Pos:     ns.Pos,
			Battery: bat,
			GenBps:  ns.GenBps,
			failed:  ns.Failed,
		}
		pts[i] = ns.Pos
	}
	nw.grid = geom.NewGrid(pts, st.CommRange)
	nw.Recompute()
	return nw, nil
}

// Fork returns an independent copy-on-write copy of the network: nodes and
// batteries are deep-copied so the fork's energy dynamics never touch the
// original, while the position grid — immutable after construction — is
// shared. The derived routing state (parents, loads, children, drains) is
// copied rather than recomputed, so forking skips the Dijkstra pass the
// original already paid for.
//
// Fork performs only pure reads of the receiver, so many goroutines may
// fork the same template network concurrently as long as none of them
// mutates it.
func (nw *Network) Fork() *Network {
	n := len(nw.nodes)
	f := &Network{
		nodes:     make([]*Node, n),
		sink:      nw.sink,
		commRange: nw.commRange,
		radio:     nw.radio,
		policy:    nw.policy,
		grid:      nw.grid,
	}
	for i, src := range nw.nodes {
		f.nodes[i] = &Node{
			ID:      src.ID,
			Pos:     src.Pos,
			Battery: src.Battery.Clone(),
			GenBps:  src.GenBps,
			failed:  src.failed,
		}
	}
	if len(nw.parent) == n {
		// Recompute allocates the whole derived+Dijkstra block together
		// when len(parent) != n, so a fork that copies parent must also
		// provide dist/pred at their invariant sizes.
		f.parent = append([]NodeID(nil), nw.parent...)
		f.hopDist = append([]float64(nil), nw.hopDist...)
		f.loads = append([]energy.Load(nil), nw.loads...)
		f.drainW = append([]float64(nil), nw.drainW...)
		f.children = make([][]NodeID, n)
		for i, c := range nw.children {
			if len(c) > 0 {
				f.children[i] = append([]NodeID(nil), c...)
			}
		}
		f.dist = make([]float64, n+1)
		f.pred = make([]int, n+1)
	}
	return f
}
