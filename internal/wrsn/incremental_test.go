package wrsn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// bruteSPT is the specification oracle for the shortest-path tree: an
// independent O(V²) Dijkstra over the brute-force adjacency, followed by
// a from-scratch predecessor derivation that implements the canonical
// tie-break directly — pred[v] is the (distance, index)-lexicographically
// smallest alive neighbor u with dist[u] + w(u→v) == dist[v]. The
// production code (full and incremental alike) must agree with this pure
// characterization bit for bit; agreement proves the predecessor array is
// a function of the final distances alone, which is exactly the property
// incremental maintenance relies on.
func bruteSPT(nw *Network) ([]float64, []int) {
	n := len(nw.nodes)
	adj := bruteAdjacency(nw)
	dist := make([]float64, n+1)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[n] = 0
	done := make([]bool, n+1)
	for {
		u := -1
		for i := 0; i <= n; i++ {
			if !done[i] && !math.IsInf(dist[i], 1) && (u < 0 || dist[i] < dist[u]) {
				u = i
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		from := nw.sink
		if u < n {
			from = nw.pos[u]
		}
		for _, v := range adj[u] {
			if v == n {
				continue // never route through the sink
			}
			if nd := dist[u] + nw.edgeWeight(from, v); nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	pred := make([]int, n+1)
	for i := range pred {
		pred[i] = predNone
	}
	for v := 0; v < n; v++ {
		if math.IsInf(dist[v], 1) {
			continue
		}
		best := predNone
		for _, u := range adj[v] {
			from := nw.sink
			if u < n {
				from = nw.pos[u]
			}
			if dist[u]+nw.edgeWeight(from, v) != dist[v] {
				continue
			}
			if best == predNone || dist[u] < dist[best] || (dist[u] == dist[best] && u < best) {
				best = u
			}
		}
		pred[v] = best
	}
	return dist, pred
}

// checkAgainstOracles compares the network's live shortest-path and
// derived state against (a) the bruteSPT specification and (b) a fresh
// from-scratch rebuild of the same primary state, requiring exact
// (bit-level) equality everywhere: distances, predecessors, parents,
// children order, loads, and drains.
func checkAgainstOracles(t *testing.T, nw *Network, tag string) {
	t.Helper()
	n := len(nw.nodes)
	dist, pred := bruteSPT(nw)
	for i := 0; i <= n; i++ {
		if nw.dist[i] != dist[i] && !(math.IsInf(nw.dist[i], 1) && math.IsInf(dist[i], 1)) {
			t.Fatalf("%s: dist[%d] = %v, want %v", tag, i, nw.dist[i], dist[i])
		}
	}
	for i := 0; i < n; i++ {
		if nw.pred[i] != pred[i] {
			t.Fatalf("%s: pred[%d] = %d, want %d (dist %v)", tag, i, nw.pred[i], pred[i], dist[i])
		}
	}
	ref, err := FromState(nw.State())
	if err != nil {
		t.Fatalf("%s: rebuilding reference: %v", tag, err)
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if nw.Parent(id) != ref.Parent(id) {
			t.Fatalf("%s: parent[%d] = %d, want %d", tag, i, nw.Parent(id), ref.Parent(id))
		}
		if nw.hopDist[i] != ref.hopDist[i] && !(math.IsInf(nw.hopDist[i], 1) && math.IsInf(ref.hopDist[i], 1)) {
			t.Fatalf("%s: hopDist[%d] = %v, want %v", tag, i, nw.hopDist[i], ref.hopDist[i])
		}
		if nw.Load(id) != ref.Load(id) {
			t.Fatalf("%s: load[%d] = %+v, want %+v", tag, i, nw.Load(id), ref.Load(id))
		}
		if nw.DrainWatts(id) != ref.DrainWatts(id) {
			t.Fatalf("%s: drain[%d] = %v, want %v", tag, i, nw.DrainWatts(id), ref.DrainWatts(id))
		}
		got, want := nw.Children(id), ref.Children(id)
		if len(got) != len(want) {
			t.Fatalf("%s: children[%d] = %v, want %v", tag, i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: children[%d] = %v, want %v (order matters)", tag, i, got, want)
			}
		}
	}
	if len(nw.order) != len(ref.order) {
		t.Fatalf("%s: load order has %d entries, want %d", tag, len(nw.order), len(ref.order))
	}
	for k := range ref.order {
		if nw.order[k] != ref.order[k] {
			t.Fatalf("%s: load order[%d] = %d, want %d", tag, k, nw.order[k], ref.order[k])
		}
	}
}

// mutate applies one random alive-set event to the network: hardware
// fail/repair, battery depletion or refill, a batch kill (sometimes big
// enough to force the full-rebuild fallback), or a plain energy advance.
func mutate(rng *rand.Rand, nw *Network) {
	n := len(nw.nodes)
	id := rng.Intn(n)
	switch rng.Intn(6) {
	case 0:
		nw.ptrs[id].Fail()
	case 1:
		nw.ptrs[id].Repair()
	case 2:
		nw.bats[id].SetLevel(0)
	case 3:
		nw.bats[id].SetLevel(nw.bats[id].Capacity() * rng.Float64())
	case 4:
		// Batch kill: usually a handful, occasionally most of the field
		// (which must trip the affected-set bound into a full rebuild).
		k := 1 + rng.Intn(4)
		if rng.Intn(8) == 0 {
			k = n/2 + rng.Intn(n/2)
		}
		for j := 0; j < k; j++ {
			nw.bats[rng.Intn(n)].SetLevel(0)
		}
	case 5:
		nw.AdvanceEnergy(600 + rng.Float64()*7200)
	}
}

// TestIncrementalMatchesBruteDijkstra is the incremental-SPT oracle: over
// random topologies and randomized fail/repair/deplete/revive sequences,
// every Recompute — whichever path it takes — must equal both the
// specification Dijkstra (dist, pred, tie-breaks) and a from-scratch
// rebuild (parents, children order, loads, drains) exactly.
func TestIncrementalMatchesBruteDijkstra(t *testing.T) {
	policies := map[string]RoutingPolicy{
		"distance":     PolicyShortestDistance,
		"hopcount":     PolicyHopCount,
		"energy-aware": PolicyEnergyAware,
	}
	for name, policy := range policies {
		rng := rand.New(rand.NewSource(1000 + int64(policy)))
		trials := 12
		if testing.Short() {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			n := 30 + rng.Intn(120)
			specs := make([]NodeSpec, n)
			for i := range specs {
				specs[i] = NodeSpec{
					Pos:         geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
					InitialFrac: 0.3 + rng.Float64()*0.7,
				}
			}
			nw, err := NewNetwork(specs, Config{
				Sink:      geom.Point{X: 150, Y: 150},
				CommRange: 35 + rng.Float64()*40,
				Policy:    policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 25; step++ {
				mutate(rng, nw)
				nw.Recompute()
				checkAgainstOracles(t, nw, name)
			}
		}
	}
}

// TestIncrementalExactTies drives the oracle on an exact integer lattice
// where shortest-path distances tie pervasively (no jitter: every
// orthogonal hop is exactly 30 m, so whole families of routes share
// identical float sums). This is the adversarial case for tie-break
// reproducibility: the canonical (distance, index) rule must make the
// incremental tree land on exactly the tree a full rebuild picks.
func TestIncrementalExactTies(t *testing.T) {
	const side = 10
	specs := make([]NodeSpec, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			specs = append(specs, NodeSpec{Pos: geom.Point{X: float64(x) * 30, Y: float64(y) * 30}})
		}
	}
	nw, err := NewNetwork(specs, Config{
		Sink:      geom.Point{X: 135, Y: 135}, // between the four center nodes
		CommRange: 45,                         // orthogonal (30) and diagonal (42.43) both in range
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracles(t, nw, "lattice initial")
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 60; step++ {
		mutate(rng, nw)
		nw.Recompute()
		checkAgainstOracles(t, nw, "lattice")
	}
}

// TestIncrementalToggleIdentical pins SetIncrementalRouting as a pure
// performance toggle: two networks fed the identical event sequence, one
// forced down the full-Dijkstra path, stay field-for-field identical.
func TestIncrementalToggleIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw := randomNetwork(t, rng, 140, 55)
	full, err := FromState(nw.State())
	if err != nil {
		t.Fatal(err)
	}
	full.SetIncrementalRouting(false)
	for step := 0; step < 40; step++ {
		id := rng.Intn(140)
		switch rng.Intn(4) {
		case 0:
			nw.ptrs[id].Fail()
			full.ptrs[id].Fail()
		case 1:
			nw.ptrs[id].Repair()
			full.ptrs[id].Repair()
		case 2:
			nw.bats[id].SetLevel(0)
			full.bats[id].SetLevel(0)
		case 3:
			lvl := nw.bats[id].Capacity() * rng.Float64()
			nw.bats[id].SetLevel(lvl)
			full.bats[id].SetLevel(lvl)
		}
		nw.Recompute()
		full.Recompute()
		for i := 0; i < 140; i++ {
			id := NodeID(i)
			if nw.Parent(id) != full.Parent(id) || nw.DrainWatts(id) != full.DrainWatts(id) || nw.Load(id) != full.Load(id) {
				t.Fatalf("step %d: node %d diverged between incremental and full paths", step, i)
			}
		}
	}
}

// TestRegionShardsPartition checks the spatial partitioner's contract:
// every node appears in exactly one shard, IDs ascend within a shard,
// shard sizes are balanced, and the partition is deterministic.
func TestRegionShardsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw := randomNetwork(t, rng, 137, 50)
	for _, k := range []int{1, 2, 3, 4, 8, 137, 500} {
		shards := nw.RegionShards(k)
		seen := make(map[NodeID]bool)
		for _, sh := range shards {
			for j, id := range sh {
				if seen[id] {
					t.Fatalf("k=%d: node %d in two shards", k, id)
				}
				seen[id] = true
				if j > 0 && sh[j-1] >= id {
					t.Fatalf("k=%d: shard IDs not ascending: %v", k, sh)
				}
			}
		}
		if len(seen) != 137 {
			t.Fatalf("k=%d: partition covers %d of 137 nodes", k, len(seen))
		}
		want := k
		if want > 137 {
			want = 137
		}
		if want > 1 && len(shards) < 2 {
			t.Fatalf("k=%d: got %d shards", k, len(shards))
		}
		again := nw.RegionShards(k)
		if len(again) != len(shards) {
			t.Fatalf("k=%d: partition not deterministic", k)
		}
		for s := range shards {
			for j := range shards[s] {
				if shards[s][j] != again[s][j] {
					t.Fatalf("k=%d: partition not deterministic", k)
				}
			}
		}
	}
}
