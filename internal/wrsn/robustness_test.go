package wrsn

import (
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

func TestRobustnessSweepRestoresState(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(6, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	before := make([]float64, nw.Len())
	for i, n := range nw.Nodes() {
		before[i] = n.Battery.Level()
	}
	if _, err := nw.RobustnessSweep(RemoveBySeverance, 4, nil); err != nil {
		t.Fatal(err)
	}
	for i, n := range nw.Nodes() {
		if n.Battery.Level() != before[i] {
			t.Fatalf("node %d battery not restored", i)
		}
	}
	if nw.ConnectedCount() != nw.Len() {
		t.Error("connectivity not restored")
	}
}

func TestRobustnessSeveranceBeatsRandomOnChain(t *testing.T) {
	// On a chain, removing the sink-adjacent node disconnects everything
	// in one step; random removals take much longer in expectation.
	nw := mustNetwork(t, lineSpecs(10, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	sev, err := nw.RobustnessSweep(RemoveBySeverance, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sev[1].Connected != 0 {
		t.Errorf("severance removal left %d connected, want 0", sev[1].Connected)
	}
	rand, err := nw.RobustnessSweep(RemoveRandom, 1, rng.New(3).Split("rob"))
	if err != nil {
		t.Fatal(err)
	}
	// Random's single removal disconnects only the suffix behind it (in
	// expectation about half); it can tie severance only by luck (picking
	// node 0, probability 1/10 — not with this seed).
	if rand[1].Connected == 0 {
		t.Skip("random removal got lucky; seed-dependent")
	}
	if rand[1].Connected <= sev[1].Connected {
		t.Errorf("random (%d connected) did not lose to severance (%d)",
			rand[1].Connected, sev[1].Connected)
	}
}

func TestRobustnessMonotoneNonIncreasing(t *testing.T) {
	nw := mustNetwork(t, randomMesh(rand.New(rand.NewSource(20)), 40), Config{Sink: geom.Pt(150, 150), CommRange: 60})
	for _, strat := range []RemovalStrategy{RemoveRandom, RemoveByBetweenness, RemoveBySeverance} {
		pts, err := nw.RobustnessSweep(strat, 15, rng.New(9).Split("rob"))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Connected > pts[i-1].Connected {
				t.Fatalf("%v: connectivity rose after removal at step %d", strat, i)
			}
			if pts[i].Removed != pts[i-1].Removed+1 {
				t.Fatalf("%v: removal count skipped at %d", strat, i)
			}
		}
	}
}

func TestRobustnessValidation(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(3, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	if _, err := nw.RobustnessSweep(RemoveRandom, 0, rng.New(1)); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := nw.RobustnessSweep(RemoveRandom, 2, nil); err == nil {
		t.Error("random sweep without stream accepted")
	}
}

func TestRemovalStrategyString(t *testing.T) {
	if RemoveRandom.String() != "random" || RemoveBySeverance.String() != "severance" {
		t.Error("strategy names wrong")
	}
	if RemovalStrategy(42).String() == "" {
		t.Error("unknown strategy empty")
	}
}
