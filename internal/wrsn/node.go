// Package wrsn models the wireless rechargeable sensor network substrate:
// nodes, the sink, radio connectivity, sink-rooted routing, per-node traffic
// load, key-node analysis (which nodes partition the network when they die),
// and depletion forecasting.
package wrsn

import (
	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// NodeID identifies a sensor node within its network; IDs are dense indices
// assigned at construction.
type NodeID int

// Node is the view over one rechargeable sensor node. The node's primary
// state lives in the network's dense struct-of-arrays storage (positions,
// batteries, generation rates, and the failed bitset are parallel slices
// indexed by NodeID); Node is a stable handle over that storage carrying
// the public per-node API, so callers keep the same contract they had
// when nodes were freestanding structs. Handles are pointer-stable for
// the life of the network and safe to copy.
type Node struct {
	// ID is the node's index within the network.
	ID NodeID
	// Pos is the deployment location in meters.
	Pos geom.Point
	// Battery is the node's energy store; it points into the network's
	// dense battery array.
	Battery *energy.Battery
	// GenBps is the node's locally generated (sensed) data rate in bits
	// per second.
	GenBps float64

	// net backs the hardware-fault bit, which lives in the network's
	// failed bitset rather than in the view.
	net *Network
}

// NodeSpec describes a node to be constructed by NewNetwork.
type NodeSpec struct {
	Pos geom.Point
	// GenBps is the sensed data rate; non-positive values get DefaultGenBps.
	GenBps float64
	// BatteryJ is the battery capacity; non-positive values get
	// DefaultBatteryJ.
	BatteryJ float64
	// InitialFrac is the initial charge as a fraction of capacity; values
	// outside (0,1] get 1 (full).
	InitialFrac float64
}

// Default node parameters: a 10.8 kJ battery (the 2×AA-equivalent constant
// used across the WRSN charging literature) sensing at 2 kbps — low enough
// that sink-adjacent relays stay within what a single mobile charger can
// keep alive, high enough that relay load dominates their drain.
const (
	DefaultBatteryJ = 10800.0
	DefaultGenBps   = 2000.0
	// DefaultMeterQuantumJ is the coulomb-counter resolution of the node's
	// battery gauge.
	DefaultMeterQuantumJ = 0.5
)

// Alive reports whether the node is in service: not hardware-failed and
// not battery-depleted. Routing, drain, and forecasting all key off
// Alive, so a failed node drops out of the network exactly like a dead
// one — but its battery is preserved and it returns on Repair.
func (n *Node) Alive() bool { return !n.net.failed.get(int(n.ID)) && !n.Battery.Depleted() }

// Fail powers the node off with a hardware fault. Idempotent.
func (n *Node) Fail() { n.net.failed.set(int(n.ID)) }

// Repair clears a hardware fault; the node rejoins with whatever charge
// its battery held when it failed. Idempotent.
func (n *Node) Repair() { n.net.failed.clear(int(n.ID)) }

// Failed reports whether the node is hardware-failed (independent of
// battery state).
func (n *Node) Failed() bool { return n.net.failed.get(int(n.ID)) }
