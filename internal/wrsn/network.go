package wrsn

import (
	"errors"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// Sentinel parents in the routing tree.
const (
	// ParentSink marks a node that transmits directly to the sink.
	ParentSink NodeID = -1
	// ParentNone marks a node with no route to the sink (disconnected or
	// dead).
	ParentNone NodeID = -2
)

// ErrNoNodes is returned when a network is constructed without nodes.
var ErrNoNodes = errors.New("wrsn: network requires at least one node")

// Network is a deployed WRSN: sensor nodes, one sink, a disk communication
// model, and a sink-rooted shortest-path routing tree with derived per-node
// traffic loads.
//
// The routing tree and loads are recomputed by Recompute; they reflect only
// nodes that were alive at that call. Network is not safe for concurrent
// mutation.
type Network struct {
	nodes     []*Node
	sink      geom.Point
	commRange float64
	radio     energy.RadioModel
	policy    RoutingPolicy

	// grid indexes node positions (static after construction) for range
	// queries, replacing O(n²) pairwise scans in adjacency builds.
	grid *geom.Grid

	// Derived state, rebuilt by Recompute.
	parent   []NodeID // routing parent per node
	hopDist  []float64
	loads    []energy.Load
	children [][]NodeID
	// drainW caches DrainWatts per node for the current tree; energy
	// advance and depletion forecasting read it every step.
	drainW []float64

	// Scratch buffers reused across Recompute calls so steady-state
	// routing rebuilds stop allocating.
	adj     [][]int
	cand    []int32
	dist    []float64
	pred    []int
	pq      distHeap
	order   []int
	relay   []float64
	nearBuf []NodeID
}

// RoutingPolicy selects the edge-weight objective of the sink-rooted
// routing tree.
type RoutingPolicy int

// Routing policies.
const (
	// PolicyShortestDistance minimizes total Euclidean path length — the
	// energy-per-bit-optimal default under the first-order radio model.
	PolicyShortestDistance RoutingPolicy = iota + 1
	// PolicyHopCount minimizes hop count (distance breaks ties), the
	// classic minimum-hop tree.
	PolicyHopCount
	// PolicyEnergyAware penalizes routing through low-residual relays:
	// edge weight grows as the receiving node's battery drains, shifting
	// load away from the weak. It mitigates uneven depletion — but it
	// cannot conjure alternative paths where none exist, which is exactly
	// what makes articulation points attackable.
	PolicyEnergyAware
)

// String implements fmt.Stringer.
func (p RoutingPolicy) String() string {
	switch p {
	case PolicyShortestDistance:
		return "shortest-distance"
	case PolicyHopCount:
		return "hop-count"
	case PolicyEnergyAware:
		return "energy-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes NewNetwork.
type Config struct {
	// Sink is the base-station location.
	Sink geom.Point
	// CommRange is the radio disk radius in meters; non-positive gets the
	// default 50 m.
	CommRange float64
	// Radio overrides the consumption model; the zero value gets
	// energy.DefaultRadioModel.
	Radio energy.RadioModel
	// Policy selects the routing objective; the zero value gets
	// PolicyShortestDistance.
	Policy RoutingPolicy
}

// NewNetwork builds a network from node specs and immediately computes
// routing and loads.
func NewNetwork(specs []NodeSpec, cfg Config) (*Network, error) {
	if len(specs) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.CommRange <= 0 {
		cfg.CommRange = 50
	}
	if cfg.Radio == (energy.RadioModel{}) {
		cfg.Radio = energy.DefaultRadioModel()
	}
	if err := cfg.Radio.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyShortestDistance
	}
	nw := &Network{
		nodes:     make([]*Node, len(specs)),
		sink:      cfg.Sink,
		commRange: cfg.CommRange,
		radio:     cfg.Radio,
		policy:    cfg.Policy,
	}
	for i, s := range specs {
		n, err := newNode(NodeID(i), s)
		if err != nil {
			return nil, err
		}
		nw.nodes[i] = n
	}
	pts := make([]geom.Point, len(nw.nodes))
	for i, n := range nw.nodes {
		pts[i] = n.Pos
	}
	nw.grid = geom.NewGrid(pts, cfg.CommRange)
	nw.Recompute()
	return nw, nil
}

// Len returns the number of nodes (alive or dead).
func (nw *Network) Len() int { return len(nw.nodes) }

// Node returns the node with the given ID, or an error when out of range.
func (nw *Network) Node(id NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return nil, fmt.Errorf("wrsn: node %d out of range [0,%d)", id, len(nw.nodes))
	}
	return nw.nodes[id], nil
}

// Nodes returns the node slice. Callers must not reorder it.
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Sink returns the base-station location.
func (nw *Network) Sink() geom.Point { return nw.sink }

// CommRange returns the radio disk radius in meters.
func (nw *Network) CommRange() float64 { return nw.commRange }

// Radio returns the consumption model.
func (nw *Network) Radio() energy.RadioModel { return nw.radio }

// AliveCount returns the number of nodes with residual energy.
func (nw *Network) AliveCount() int {
	alive := 0
	for _, n := range nw.nodes {
		if n.Alive() {
			alive++
		}
	}
	return alive
}

// linked reports whether two points are within radio range of each other.
func (nw *Network) linked(a, b geom.Point) bool {
	return a.Dist2(b) <= nw.commRange*nw.commRange
}

// aliveAdjacency builds the adjacency lists over alive nodes; index
// len(nodes) stands for the sink. It queries the position grid instead
// of scanning all pairs; candidates are filtered to alive higher-index
// neighbors and sorted ascending before the symmetric append, so the
// resulting lists — and therefore Dijkstra's tie-breaking — are
// identical to the original i<j pairwise scan.
func (nw *Network) aliveAdjacency() [][]int {
	n := len(nw.nodes)
	if cap(nw.adj) < n+1 {
		nw.adj = make([][]int, n+1)
	}
	adj := nw.adj[:n+1]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	for i, a := range nw.nodes {
		if !a.Alive() {
			continue
		}
		all := nw.grid.Candidates(nw.cand[:0], a.Pos, nw.commRange)
		nw.cand = all
		keep := all[:0]
		for _, cj := range all {
			j := int(cj)
			if j <= i {
				continue
			}
			b := nw.nodes[j]
			if b.Alive() && nw.linked(a.Pos, b.Pos) {
				keep = append(keep, cj)
			}
		}
		sort32(keep)
		for _, cj := range keep {
			j := int(cj)
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
		if nw.linked(a.Pos, nw.sink) {
			adj[i] = append(adj[i], n)
			adj[n] = append(adj[n], i)
		}
	}
	return adj
}

// sort32 insertion-sorts a small candidate list ascending; neighbor
// lists are a dozen entries, below the crossover where sort.Slice's
// overhead pays off.
func sort32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NodesNear appends to dst every alive node whose position is within
// rangeM of pos (by the exact Dist ≤ rangeM predicate), in ascending ID
// order. It is the indexed replacement for brute-force witness scans.
func (nw *Network) NodesNear(dst []*Node, pos geom.Point, rangeM float64) []*Node {
	nw.cand = nw.grid.Candidates(nw.cand[:0], pos, rangeM)
	if cap(nw.nearBuf) < len(nw.cand) {
		nw.nearBuf = make([]NodeID, 0, len(nw.cand))
	}
	ids := nw.nearBuf[:0]
	for _, ci := range nw.cand {
		n := nw.nodes[ci]
		if n.Alive() && pos.Dist(n.Pos) <= rangeM {
			ids = append(ids, NodeID(ci))
		}
	}
	nw.nearBuf = ids
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		dst = append(dst, nw.nodes[id])
	}
	return dst
}

// Recompute rebuilds the routing tree and traffic loads over currently
// alive nodes. Call it after node deaths or energy-state changes that
// affect routing. Derived and scratch state is reused across calls, so
// steady-state rebuilds allocate nothing.
func (nw *Network) Recompute() {
	n := len(nw.nodes)
	if len(nw.parent) != n {
		nw.parent = make([]NodeID, n)
		nw.hopDist = make([]float64, n)
		nw.loads = make([]energy.Load, n)
		nw.children = make([][]NodeID, n)
		nw.drainW = make([]float64, n)
		nw.dist = make([]float64, n+1)
		nw.pred = make([]int, n+1)
	}
	for i := range nw.children {
		nw.children[i] = nw.children[i][:0]
	}
	adj := nw.aliveAdjacency()

	// Dijkstra from the sink (index n) under the configured edge-weight
	// policy. Each node's routing parent is its predecessor toward the
	// sink.
	const sinkIdx = -100 // internal marker in pred for "sink is parent"
	dist := nw.dist
	pred := nw.pred
	for i := range dist {
		dist[i] = math.Inf(1)
		pred[i] = int(ParentNone)
	}
	dist[n] = 0
	pq := nw.pq[:0]
	pq.push(distItem{idx: n, d: 0})
	for len(pq) > 0 {
		it := pq.pop()
		if it.d > dist[it.idx] {
			continue
		}
		var from geom.Point
		if it.idx == n {
			from = nw.sink
		} else {
			from = nw.nodes[it.idx].Pos
		}
		for _, next := range adj[it.idx] {
			if next == n {
				continue // never route through the sink
			}
			nd := it.d + nw.edgeWeight(from, next)
			if nd < dist[next] {
				dist[next] = nd
				if it.idx == n {
					pred[next] = sinkIdx
				} else {
					pred[next] = it.idx
				}
				pq.push(distItem{idx: next, d: nd})
			}
		}
	}
	nw.pq = pq[:0]

	for i := range nw.nodes {
		nw.hopDist[i] = dist[i]
		switch {
		case !nw.nodes[i].Alive() || math.IsInf(dist[i], 1):
			nw.parent[i] = ParentNone
		case pred[i] == sinkIdx:
			nw.parent[i] = ParentSink
		default:
			nw.parent[i] = NodeID(pred[i])
			nw.children[pred[i]] = append(nw.children[pred[i]], NodeID(i))
		}
	}
	nw.computeLoads()
}

// edgeWeight prices traversing the edge from a point into node `to` under
// the routing policy. Dijkstra requires non-negative weights; every branch
// guarantees that.
func (nw *Network) edgeWeight(from geom.Point, to int) float64 {
	d := from.Dist(nw.nodes[to].Pos)
	switch nw.policy {
	case PolicyHopCount:
		// One hop dominates any distance within range; distance only
		// breaks ties.
		return 1e6 + d
	case PolicyEnergyAware:
		// Penalize relaying through drained nodes: a nearly-empty relay
		// costs up to 4× its distance, pushing traffic to healthier paths
		// when any exist.
		frac := nw.nodes[to].Battery.Fraction()
		return d * (1 + 3*(1-frac))
	default:
		return d
	}
}

// Policy returns the network's routing policy.
func (nw *Network) Policy() RoutingPolicy { return nw.policy }

// computeLoads derives per-node steady-state loads by aggregating subtree
// traffic bottom-up over the routing tree, then refreshes the per-node
// drain cache.
func (nw *Network) computeLoads() {
	// Topological order: process nodes by decreasing route distance so
	// children precede parents.
	if cap(nw.order) < len(nw.nodes) {
		nw.order = make([]int, 0, len(nw.nodes))
	}
	order := nw.order[:0]
	for i := range nw.nodes {
		if nw.parent[i] != ParentNone {
			order = append(order, i)
		}
	}
	nw.order = order
	// Insertion sort by descending hopDist; n is modest and this avoids an
	// extra allocation-heavy sort.Slice in the hot path of Recompute.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && nw.hopDist[order[j]] > nw.hopDist[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if len(nw.relay) != len(nw.nodes) {
		nw.relay = make([]float64, len(nw.nodes))
	}
	relay := nw.relay
	for i := range relay {
		relay[i] = 0
	}
	for _, i := range order {
		node := nw.nodes[i]
		var hop float64
		if nw.parent[i] == ParentSink {
			hop = node.Pos.Dist(nw.sink)
		} else {
			hop = node.Pos.Dist(nw.nodes[nw.parent[i]].Pos)
		}
		nw.loads[i] = energy.Load{
			GenBps:      node.GenBps,
			RelayBps:    relay[i],
			NextHopDist: hop,
		}
		if p := nw.parent[i]; p >= 0 {
			relay[p] += node.GenBps + relay[i]
		}
	}
	// DrainWatts is a pure function of (parent, load, radio), all fixed
	// until the next Recompute; caching it here turns the per-step energy
	// advance and depletion forecasts into array reads.
	for i := range nw.nodes {
		if nw.parent[i] == ParentNone {
			nw.drainW[i] = nw.radio.SenseW + nw.radio.IdleW
		} else {
			nw.drainW[i] = nw.radio.DrainWatts(nw.loads[i])
		}
	}
}

// Parent returns node id's routing parent: another node, ParentSink, or
// ParentNone when the node is disconnected or dead.
func (nw *Network) Parent(id NodeID) NodeID { return nw.parent[id] }

// Children returns the routing children of node id. The returned slice is
// owned by the network; callers must not modify it.
func (nw *Network) Children(id NodeID) []NodeID { return nw.children[id] }

// Load returns node id's steady-state traffic load from the last Recompute.
func (nw *Network) Load(id NodeID) energy.Load { return nw.loads[id] }

// DrainWatts returns node id's steady-state power draw from the last
// Recompute. Disconnected nodes still pay sensing and idle power.
func (nw *Network) DrainWatts(id NodeID) float64 { return nw.drainW[id] }

// Connected reports whether node id currently has a route to the sink.
func (nw *Network) Connected(id NodeID) bool { return nw.parent[id] != ParentNone }

// ConnectedCount returns the number of alive nodes with a route to the sink.
func (nw *Network) ConnectedCount() int {
	c := 0
	for i := range nw.nodes {
		if nw.parent[i] != ParentNone {
			c++
		}
	}
	return c
}

// distHeap is a min-heap for Dijkstra, stored by value and sifted
// manually so pushes never box through an interface. The sift algorithms
// are element-for-element identical to container/heap's up/down, so the
// pop order — including ties, which Dijkstra's tree construction is
// sensitive to — matches the previous heap.Interface implementation
// exactly.
type distItem struct {
	idx int
	d   float64
}

type distHeap []distItem

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(s[i].d < s[parent].d) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	it := s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		j := left
		if right := left + 1; right < n && s[right].d < s[left].d {
			j = right
		}
		if !(s[j].d < s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	return it
}
