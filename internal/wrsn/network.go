package wrsn

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// Sentinel parents in the routing tree.
const (
	// ParentSink marks a node that transmits directly to the sink.
	ParentSink NodeID = -1
	// ParentNone marks a node with no route to the sink (disconnected or
	// dead).
	ParentNone NodeID = -2
)

// ErrNoNodes is returned when a network is constructed without nodes.
var ErrNoNodes = errors.New("wrsn: network requires at least one node")

// Network is a deployed WRSN: sensor nodes, one sink, a disk communication
// model, and a sink-rooted shortest-path routing tree with derived per-node
// traffic loads.
//
// The routing tree and loads are recomputed by Recompute; they reflect only
// nodes that were alive at that call. Network is not safe for concurrent
// mutation.
type Network struct {
	nodes     []*Node
	sink      geom.Point
	commRange float64
	radio     energy.RadioModel
	policy    RoutingPolicy

	// Derived state, rebuilt by Recompute.
	parent   []NodeID // routing parent per node
	hopDist  []float64
	loads    []energy.Load
	children [][]NodeID
}

// RoutingPolicy selects the edge-weight objective of the sink-rooted
// routing tree.
type RoutingPolicy int

// Routing policies.
const (
	// PolicyShortestDistance minimizes total Euclidean path length — the
	// energy-per-bit-optimal default under the first-order radio model.
	PolicyShortestDistance RoutingPolicy = iota + 1
	// PolicyHopCount minimizes hop count (distance breaks ties), the
	// classic minimum-hop tree.
	PolicyHopCount
	// PolicyEnergyAware penalizes routing through low-residual relays:
	// edge weight grows as the receiving node's battery drains, shifting
	// load away from the weak. It mitigates uneven depletion — but it
	// cannot conjure alternative paths where none exist, which is exactly
	// what makes articulation points attackable.
	PolicyEnergyAware
)

// String implements fmt.Stringer.
func (p RoutingPolicy) String() string {
	switch p {
	case PolicyShortestDistance:
		return "shortest-distance"
	case PolicyHopCount:
		return "hop-count"
	case PolicyEnergyAware:
		return "energy-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes NewNetwork.
type Config struct {
	// Sink is the base-station location.
	Sink geom.Point
	// CommRange is the radio disk radius in meters; non-positive gets the
	// default 50 m.
	CommRange float64
	// Radio overrides the consumption model; the zero value gets
	// energy.DefaultRadioModel.
	Radio energy.RadioModel
	// Policy selects the routing objective; the zero value gets
	// PolicyShortestDistance.
	Policy RoutingPolicy
}

// NewNetwork builds a network from node specs and immediately computes
// routing and loads.
func NewNetwork(specs []NodeSpec, cfg Config) (*Network, error) {
	if len(specs) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.CommRange <= 0 {
		cfg.CommRange = 50
	}
	if cfg.Radio == (energy.RadioModel{}) {
		cfg.Radio = energy.DefaultRadioModel()
	}
	if err := cfg.Radio.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyShortestDistance
	}
	nw := &Network{
		nodes:     make([]*Node, len(specs)),
		sink:      cfg.Sink,
		commRange: cfg.CommRange,
		radio:     cfg.Radio,
		policy:    cfg.Policy,
	}
	for i, s := range specs {
		n, err := newNode(NodeID(i), s)
		if err != nil {
			return nil, err
		}
		nw.nodes[i] = n
	}
	nw.Recompute()
	return nw, nil
}

// Len returns the number of nodes (alive or dead).
func (nw *Network) Len() int { return len(nw.nodes) }

// Node returns the node with the given ID, or an error when out of range.
func (nw *Network) Node(id NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return nil, fmt.Errorf("wrsn: node %d out of range [0,%d)", id, len(nw.nodes))
	}
	return nw.nodes[id], nil
}

// Nodes returns the node slice. Callers must not reorder it.
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Sink returns the base-station location.
func (nw *Network) Sink() geom.Point { return nw.sink }

// CommRange returns the radio disk radius in meters.
func (nw *Network) CommRange() float64 { return nw.commRange }

// Radio returns the consumption model.
func (nw *Network) Radio() energy.RadioModel { return nw.radio }

// AliveCount returns the number of nodes with residual energy.
func (nw *Network) AliveCount() int {
	alive := 0
	for _, n := range nw.nodes {
		if n.Alive() {
			alive++
		}
	}
	return alive
}

// linked reports whether two points are within radio range of each other.
func (nw *Network) linked(a, b geom.Point) bool {
	return a.Dist2(b) <= nw.commRange*nw.commRange
}

// aliveAdjacency builds the adjacency lists over alive nodes; index
// len(nodes) stands for the sink.
func (nw *Network) aliveAdjacency() [][]int {
	n := len(nw.nodes)
	adj := make([][]int, n+1)
	for i, a := range nw.nodes {
		if !a.Alive() {
			continue
		}
		for j := i + 1; j < n; j++ {
			b := nw.nodes[j]
			if b.Alive() && nw.linked(a.Pos, b.Pos) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
		if nw.linked(a.Pos, nw.sink) {
			adj[i] = append(adj[i], n)
			adj[n] = append(adj[n], i)
		}
	}
	return adj
}

// Recompute rebuilds the routing tree and traffic loads over currently
// alive nodes. Call it after node deaths or energy-state changes that
// affect routing.
func (nw *Network) Recompute() {
	n := len(nw.nodes)
	nw.parent = make([]NodeID, n)
	nw.hopDist = make([]float64, n)
	nw.loads = make([]energy.Load, n)
	nw.children = make([][]NodeID, n)
	adj := nw.aliveAdjacency()

	// Dijkstra from the sink (index n) under the configured edge-weight
	// policy. Each node's routing parent is its predecessor toward the
	// sink.
	const sinkIdx = -100 // internal marker in pred for "sink is parent"
	dist := make([]float64, n+1)
	pred := make([]int, n+1)
	for i := range dist {
		dist[i] = math.Inf(1)
		pred[i] = int(ParentNone)
	}
	dist[n] = 0
	pq := &distHeap{{idx: n, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.idx] {
			continue
		}
		var from geom.Point
		if it.idx == n {
			from = nw.sink
		} else {
			from = nw.nodes[it.idx].Pos
		}
		for _, next := range adj[it.idx] {
			if next == n {
				continue // never route through the sink
			}
			nd := it.d + nw.edgeWeight(from, next)
			if nd < dist[next] {
				dist[next] = nd
				if it.idx == n {
					pred[next] = sinkIdx
				} else {
					pred[next] = it.idx
				}
				heap.Push(pq, distItem{idx: next, d: nd})
			}
		}
	}

	for i := range nw.nodes {
		nw.hopDist[i] = dist[i]
		switch {
		case !nw.nodes[i].Alive() || math.IsInf(dist[i], 1):
			nw.parent[i] = ParentNone
		case pred[i] == sinkIdx:
			nw.parent[i] = ParentSink
		default:
			nw.parent[i] = NodeID(pred[i])
			nw.children[pred[i]] = append(nw.children[pred[i]], NodeID(i))
		}
	}
	nw.computeLoads()
}

// edgeWeight prices traversing the edge from a point into node `to` under
// the routing policy. Dijkstra requires non-negative weights; every branch
// guarantees that.
func (nw *Network) edgeWeight(from geom.Point, to int) float64 {
	d := from.Dist(nw.nodes[to].Pos)
	switch nw.policy {
	case PolicyHopCount:
		// One hop dominates any distance within range; distance only
		// breaks ties.
		return 1e6 + d
	case PolicyEnergyAware:
		// Penalize relaying through drained nodes: a nearly-empty relay
		// costs up to 4× its distance, pushing traffic to healthier paths
		// when any exist.
		frac := nw.nodes[to].Battery.Fraction()
		return d * (1 + 3*(1-frac))
	default:
		return d
	}
}

// Policy returns the network's routing policy.
func (nw *Network) Policy() RoutingPolicy { return nw.policy }

// computeLoads derives per-node steady-state loads by aggregating subtree
// traffic bottom-up over the routing tree.
func (nw *Network) computeLoads() {
	// Topological order: process nodes by decreasing route distance so
	// children precede parents.
	order := make([]int, 0, len(nw.nodes))
	for i := range nw.nodes {
		if nw.parent[i] != ParentNone {
			order = append(order, i)
		}
	}
	// Insertion sort by descending hopDist; n is modest and this avoids an
	// extra allocation-heavy sort.Slice in the hot path of Recompute.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && nw.hopDist[order[j]] > nw.hopDist[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	relay := make([]float64, len(nw.nodes))
	for _, i := range order {
		node := nw.nodes[i]
		var hop float64
		if nw.parent[i] == ParentSink {
			hop = node.Pos.Dist(nw.sink)
		} else {
			hop = node.Pos.Dist(nw.nodes[nw.parent[i]].Pos)
		}
		nw.loads[i] = energy.Load{
			GenBps:      node.GenBps,
			RelayBps:    relay[i],
			NextHopDist: hop,
		}
		if p := nw.parent[i]; p >= 0 {
			relay[p] += node.GenBps + relay[i]
		}
	}
}

// Parent returns node id's routing parent: another node, ParentSink, or
// ParentNone when the node is disconnected or dead.
func (nw *Network) Parent(id NodeID) NodeID { return nw.parent[id] }

// Children returns the routing children of node id. The returned slice is
// owned by the network; callers must not modify it.
func (nw *Network) Children(id NodeID) []NodeID { return nw.children[id] }

// Load returns node id's steady-state traffic load from the last Recompute.
func (nw *Network) Load(id NodeID) energy.Load { return nw.loads[id] }

// DrainWatts returns node id's steady-state power draw. Disconnected nodes
// still pay sensing and idle power.
func (nw *Network) DrainWatts(id NodeID) float64 {
	if nw.parent[id] == ParentNone {
		return nw.radio.SenseW + nw.radio.IdleW
	}
	return nw.radio.DrainWatts(nw.loads[id])
}

// Connected reports whether node id currently has a route to the sink.
func (nw *Network) Connected(id NodeID) bool { return nw.parent[id] != ParentNone }

// ConnectedCount returns the number of alive nodes with a route to the sink.
func (nw *Network) ConnectedCount() int {
	c := 0
	for i := range nw.nodes {
		if nw.parent[i] != ParentNone {
			c++
		}
	}
	return c
}

// distHeap is a min-heap for Dijkstra.
type distItem struct {
	idx int
	d   float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
