package wrsn

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/geom"
)

// Sentinel parents in the routing tree.
const (
	// ParentSink marks a node that transmits directly to the sink.
	ParentSink NodeID = -1
	// ParentNone marks a node with no route to the sink (disconnected or
	// dead).
	ParentNone NodeID = -2
)

// predNone marks "no predecessor" in the persisted Dijkstra predecessor
// array. The sink's own graph index (len(nodes)) marks "sink is parent";
// everything else is a node's graph index.
const predNone = -1

// ErrNoNodes is returned when a network is constructed without nodes.
var ErrNoNodes = errors.New("wrsn: network requires at least one node")

// Network is a deployed WRSN: sensor nodes, one sink, a disk communication
// model, and a sink-rooted shortest-path routing tree with derived per-node
// traffic loads.
//
// Primary node state is stored struct-of-arrays: positions, generation
// rates, batteries, and the hardware-fault bits are dense parallel slices
// indexed by NodeID, so the hot loops (adjacency builds, energy advance,
// depletion scans) stream contiguous memory instead of chasing per-node
// pointers. The Node type is a view layer over this storage; Nodes() and
// Node(id) hand out pointer-stable handles with the pre-SoA API.
//
// The routing tree and loads are recomputed by Recompute; they reflect only
// nodes that were alive at that call. Recompute maintains the tree
// incrementally across alive-set changes (see incremental.go) and falls
// back to a full Dijkstra rebuild when that is cheaper or required; both
// paths produce bit-identical results. Network is not safe for concurrent
// mutation.
type Network struct {
	// Struct-of-arrays primary state, all indexed by NodeID.
	pos    []geom.Point
	genBps []float64
	bats   []energy.Battery
	failed bitset

	// nodes is the view layer: stable Node handles over the dense
	// storage; ptrs caches &nodes[i] so the accessor API allocates
	// nothing.
	nodes []Node
	ptrs  []*Node

	sink      geom.Point
	commRange float64
	radio     energy.RadioModel
	policy    RoutingPolicy

	// grid indexes node positions (static after construction) for range
	// queries, replacing O(n²) pairwise scans in adjacency builds.
	grid *geom.Grid

	// Derived state, rebuilt by Recompute.
	parent   []NodeID // routing parent per node
	hopDist  []float64
	loads    []energy.Load
	children [][]NodeID
	// drainW caches DrainWatts per node for the current tree; energy
	// advance and depletion forecasting read it every step.
	drainW []float64

	// Shortest-path state persisted between Recompute calls for
	// incremental maintenance: Dijkstra distances and predecessors (graph
	// indices, sink = len(nodes)), the alive set the current tree was
	// computed over, and whether a tree exists at all.
	dist      []float64
	pred      []int
	prevLive  bitset
	treeValid bool
	fullOnly  bool

	// Scratch buffers reused across Recompute calls so steady-state
	// routing rebuilds stop allocating. All are sized at construction
	// from the node count (see grow), so the first large-N recompute
	// pays no reallocation churn either.
	adj      [][]int
	cand     []int32
	pq       distHeap
	order    []int
	orderTmp []int
	newly    []int
	relay    []float64
	nearBuf  []NodeID
	live     bitset
	inA      bitset
	affected []int32
	stack    []int32
	sorter   loadSorter
}

// RoutingPolicy selects the edge-weight objective of the sink-rooted
// routing tree.
type RoutingPolicy int

// Routing policies.
const (
	// PolicyShortestDistance minimizes total Euclidean path length — the
	// energy-per-bit-optimal default under the first-order radio model.
	PolicyShortestDistance RoutingPolicy = iota + 1
	// PolicyHopCount minimizes hop count (distance breaks ties), the
	// classic minimum-hop tree.
	PolicyHopCount
	// PolicyEnergyAware penalizes routing through low-residual relays:
	// edge weight grows as the receiving node's battery drains, shifting
	// load away from the weak. It mitigates uneven depletion — but it
	// cannot conjure alternative paths where none exist, which is exactly
	// what makes articulation points attackable.
	PolicyEnergyAware
)

// String implements fmt.Stringer.
func (p RoutingPolicy) String() string {
	switch p {
	case PolicyShortestDistance:
		return "shortest-distance"
	case PolicyHopCount:
		return "hop-count"
	case PolicyEnergyAware:
		return "energy-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes NewNetwork.
type Config struct {
	// Sink is the base-station location.
	Sink geom.Point
	// CommRange is the radio disk radius in meters; non-positive gets the
	// default 50 m.
	CommRange float64
	// Radio overrides the consumption model; the zero value gets
	// energy.DefaultRadioModel.
	Radio energy.RadioModel
	// Policy selects the routing objective; the zero value gets
	// PolicyShortestDistance.
	Policy RoutingPolicy
}

// NewNetwork builds a network from node specs and immediately computes
// routing and loads.
func NewNetwork(specs []NodeSpec, cfg Config) (*Network, error) {
	if len(specs) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.CommRange <= 0 {
		cfg.CommRange = 50
	}
	if cfg.Radio == (energy.RadioModel{}) {
		cfg.Radio = energy.DefaultRadioModel()
	}
	if err := cfg.Radio.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyShortestDistance
	}
	nw := &Network{
		sink:      cfg.Sink,
		commRange: cfg.CommRange,
		radio:     cfg.Radio,
		policy:    cfg.Policy,
	}
	nw.grow(len(specs))
	for i, s := range specs {
		if err := nw.initNode(i, s); err != nil {
			return nil, err
		}
	}
	nw.grid = geom.NewGrid(nw.pos, cfg.CommRange)
	nw.Recompute()
	return nw, nil
}

// grow allocates the entire struct-of-arrays block — primary state,
// derived state, persisted shortest-path state, and every scratch buffer
// Recompute touches — from the node count, once. Capacity hints here are
// what keep the first large-N recompute (and everything after it)
// reallocation-free.
func (nw *Network) grow(n int) {
	nw.pos = make([]geom.Point, n)
	nw.genBps = make([]float64, n)
	nw.bats = make([]energy.Battery, n)
	nw.failed = newBitset(n)
	nw.nodes = make([]Node, n)
	nw.ptrs = make([]*Node, n)
	nw.parent = make([]NodeID, n)
	nw.hopDist = make([]float64, n)
	nw.loads = make([]energy.Load, n)
	nw.children = make([][]NodeID, n)
	nw.drainW = make([]float64, n)
	nw.dist = make([]float64, n+1)
	nw.pred = make([]int, n+1)
	nw.prevLive = newBitset(n)
	nw.live = newBitset(n)
	nw.inA = newBitset(n)
	nw.adj = make([][]int, n+1)
	nw.pq = make(distHeap, 0, n+1)
	nw.order = make([]int, 0, n)
	nw.relay = make([]float64, n)
	nw.orderTmp = make([]int, 0, n)
	nw.newly = make([]int, 0, 64)
	nw.affected = make([]int32, 0, 64)
	nw.stack = make([]int32, 0, 64)
}

// initNode validates one spec and writes it into slot i of the dense
// storage, wiring up the view handle.
func (nw *Network) initNode(i int, spec NodeSpec) error {
	capJ := spec.BatteryJ
	if capJ <= 0 {
		capJ = DefaultBatteryJ
	}
	frac := spec.InitialFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	bat, err := energy.NewBattery(capJ, capJ*frac, DefaultMeterQuantumJ)
	if err != nil {
		return fmt.Errorf("node %d: %w", i, err)
	}
	gen := spec.GenBps
	if gen <= 0 {
		gen = DefaultGenBps
	}
	nw.bats[i] = *bat
	nw.pos[i] = spec.Pos
	nw.genBps[i] = gen
	nw.nodes[i] = Node{ID: NodeID(i), Pos: spec.Pos, Battery: &nw.bats[i], GenBps: gen, net: nw}
	nw.ptrs[i] = &nw.nodes[i]
	return nil
}

// Len returns the number of nodes (alive or dead).
func (nw *Network) Len() int { return len(nw.nodes) }

// Node returns the node with the given ID, or an error when out of range.
func (nw *Network) Node(id NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return nil, fmt.Errorf("wrsn: node %d out of range [0,%d)", id, len(nw.nodes))
	}
	return nw.ptrs[id], nil
}

// Nodes returns the node handles. Callers must not reorder the slice.
func (nw *Network) Nodes() []*Node { return nw.ptrs }

// Sink returns the base-station location.
func (nw *Network) Sink() geom.Point { return nw.sink }

// CommRange returns the radio disk radius in meters.
func (nw *Network) CommRange() float64 { return nw.commRange }

// Radio returns the consumption model.
func (nw *Network) Radio() energy.RadioModel { return nw.radio }

// aliveIdx reports whether node i is in service, straight off the dense
// storage.
func (nw *Network) aliveIdx(i int) bool {
	return !nw.failed.get(i) && !nw.bats[i].Depleted()
}

// refreshLive recomputes the alive bitset from the failed bits and
// battery levels. Batteries mutate through shared pointers (drains,
// charging sessions), so the set is re-derived wherever it is read rather
// than maintained event-by-event.
func (nw *Network) refreshLive() {
	nw.live.reset()
	for i := range nw.bats {
		if nw.aliveIdx(i) {
			nw.live.set(i)
		}
	}
}

// AliveCount returns the number of nodes with residual energy.
func (nw *Network) AliveCount() int {
	alive := 0
	for i := range nw.bats {
		if nw.aliveIdx(i) {
			alive++
		}
	}
	return alive
}

// linked reports whether two points are within radio range of each other.
func (nw *Network) linked(a, b geom.Point) bool {
	return a.Dist2(b) <= nw.commRange*nw.commRange
}

// aliveAdjacency builds the adjacency lists over alive nodes; index
// len(nodes) stands for the sink. It queries the position grid instead
// of scanning all pairs; candidates are filtered to alive higher-index
// neighbors and sorted ascending before the symmetric append, so the
// resulting lists — and therefore Dijkstra's tie-breaking — are
// identical to the original i<j pairwise scan.
func (nw *Network) aliveAdjacency() [][]int {
	n := len(nw.nodes)
	nw.refreshLive()
	adj := nw.adj[:n+1]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	for i := 0; i < n; i++ {
		if !nw.live.get(i) {
			continue
		}
		pi := nw.pos[i]
		all := nw.grid.Candidates(nw.cand[:0], pi, nw.commRange)
		nw.cand = all
		keep := all[:0]
		for _, cj := range all {
			j := int(cj)
			if j <= i {
				continue
			}
			if nw.live.get(j) && nw.linked(pi, nw.pos[j]) {
				keep = append(keep, cj)
			}
		}
		sort32(keep)
		for _, cj := range keep {
			j := int(cj)
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
		if nw.linked(pi, nw.sink) {
			adj[i] = append(adj[i], n)
			adj[n] = append(adj[n], i)
		}
	}
	return adj
}

// sort32 insertion-sorts a small candidate list ascending; neighbor
// lists are a dozen entries, below the crossover where sort.Slice's
// overhead pays off.
func sort32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NodesNear appends to dst every alive node whose position is within
// rangeM of pos (by the exact Dist ≤ rangeM predicate), in ascending ID
// order. It is the indexed replacement for brute-force witness scans.
func (nw *Network) NodesNear(dst []*Node, pos geom.Point, rangeM float64) []*Node {
	nw.cand = nw.grid.Candidates(nw.cand[:0], pos, rangeM)
	if cap(nw.nearBuf) < len(nw.cand) {
		nw.nearBuf = make([]NodeID, 0, len(nw.cand))
	}
	ids := nw.nearBuf[:0]
	for _, ci := range nw.cand {
		i := int(ci)
		if nw.aliveIdx(i) && pos.Dist(nw.pos[i]) <= rangeM {
			ids = append(ids, NodeID(ci))
		}
	}
	nw.nearBuf = ids
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		dst = append(dst, nw.ptrs[id])
	}
	return dst
}

// Recompute rebuilds the routing tree and traffic loads over currently
// alive nodes. Call it after node deaths or energy-state changes that
// affect routing. Derived and scratch state is reused across calls, so
// steady-state rebuilds allocate nothing.
//
// When a valid tree exists and the alive set changed by a few nodes,
// Recompute repairs only the invalidated portion of the shortest-path
// tree (see incremental.go); an unchanged alive set is a no-op. Both
// shortcuts are exact: every field a full rebuild would produce —
// distances, parents, tie-breaks, children order, loads, drains — comes
// out bit-identical, which the incremental oracle test pins. Energy-aware
// routing always rebuilds fully, because its edge weights depend on
// battery levels, not just on the alive set.
func (nw *Network) Recompute() {
	nw.refreshLive()
	if nw.treeValid && !nw.fullOnly && nw.policy != PolicyEnergyAware && nw.recomputeIncremental() {
		nw.prevLive.copyFrom(nw.live)
		return
	}
	nw.recomputeFull()
	nw.prevLive.copyFrom(nw.live)
	nw.treeValid = true
}

// recomputeFull runs Dijkstra from the sink (graph index n) under the
// configured edge-weight policy over the whole alive topology.
func (nw *Network) recomputeFull() {
	n := len(nw.nodes)
	adj := nw.aliveAdjacency()
	dist := nw.dist
	pred := nw.pred
	for i := range dist {
		dist[i] = math.Inf(1)
		pred[i] = predNone
	}
	dist[n] = 0
	nw.pq = nw.pq[:0]
	nw.pq.push(distItem{idx: n, d: 0})
	for len(nw.pq) > 0 {
		it := nw.pq.pop()
		if it.d > dist[it.idx] {
			continue
		}
		var from geom.Point
		if it.idx == n {
			from = nw.sink
		} else {
			from = nw.pos[it.idx]
		}
		for _, next := range adj[it.idx] {
			if next == n {
				continue // never route through the sink
			}
			nw.relax(it.idx, it.d, from, next)
		}
	}
	nw.deriveTree(nil)
}

// relax offers node v the path through u (graph index; n means the sink)
// at settled distance du, reporting whether v's distance strictly
// improved. A strictly shorter path updates distance and predecessor and
// enqueues v; an exactly equal path updates only the predecessor when u
// orders before the incumbent under the canonical (distance, index) key.
// The equal branch is what makes the final predecessor of every node a
// pure function of the final distances — the lexicographically smallest
// optimal parent — independent of relaxation order, so the incremental
// rebuild reproduces the full rebuild's tree bit for bit even through
// ties.
func (nw *Network) relax(u int, du float64, from geom.Point, v int) bool {
	nd := du + nw.edgeWeight(from, v)
	switch {
	case nd < nw.dist[v]:
		nw.dist[v] = nd
		nw.pred[v] = u
		nw.pq.push(distItem{idx: v, d: nd})
		return true
	case nd == nw.dist[v] && nw.predLess(du, u, v):
		nw.pred[v] = u
	}
	return false
}

// predLess reports whether candidate parent u (at distance du) orders
// strictly before v's current predecessor under the (distance, index)
// key.
func (nw *Network) predLess(du float64, u, v int) bool {
	p := nw.pred[v]
	if p == predNone {
		return true
	}
	dp := nw.dist[p]
	return du < dp || (du == dp && u < p)
}

// deriveTree rebuilds parent, hopDist, children, loads, and drains from
// the settled dist/pred arrays. Both the full and incremental recompute
// paths end here, so every derived field is produced by the same code on
// the same inputs — exactness of the incremental path reduces to
// exactness of dist and pred. aff is the incremental path's affected set
// (the only nodes whose distances may have changed, with membership
// mirrored in nw.inA); nil means any distance may have changed and the
// load-propagation order must be rebuilt from scratch.
func (nw *Network) deriveTree(aff []int32) {
	n := len(nw.nodes)
	for i := range nw.children {
		nw.children[i] = nw.children[i][:0]
	}
	for i := 0; i < n; i++ {
		nw.hopDist[i] = nw.dist[i]
		switch {
		case !nw.live.get(i) || math.IsInf(nw.dist[i], 1):
			nw.parent[i] = ParentNone
			// Clear rather than leave the load a node carried while it was
			// last connected, so aged and freshly rebuilt networks hold
			// identical state.
			nw.loads[i] = energy.Load{}
		case nw.pred[i] == n:
			nw.parent[i] = ParentSink
		default:
			nw.parent[i] = NodeID(nw.pred[i])
			nw.children[nw.pred[i]] = append(nw.children[nw.pred[i]], NodeID(i))
		}
	}
	nw.computeLoads(aff)
}

// edgeWeight prices traversing the edge from a point into node `to` under
// the routing policy. Dijkstra requires non-negative weights; every branch
// guarantees that.
func (nw *Network) edgeWeight(from geom.Point, to int) float64 {
	d := from.Dist(nw.pos[to])
	switch nw.policy {
	case PolicyHopCount:
		// One hop dominates any distance within range; distance only
		// breaks ties.
		return 1e6 + d
	case PolicyEnergyAware:
		// Penalize relaying through drained nodes: a nearly-empty relay
		// costs up to 4× its distance, pushing traffic to healthier paths
		// when any exist.
		frac := nw.bats[to].Fraction()
		return d * (1 + 3*(1-frac))
	default:
		return d
	}
}

// Policy returns the network's routing policy.
func (nw *Network) Policy() RoutingPolicy { return nw.policy }

// computeLoads derives per-node steady-state loads by aggregating subtree
// traffic bottom-up over the routing tree, then refreshes the per-node
// drain cache. The propagation order — by decreasing route distance so
// children precede parents, (distance, ID) ties broken by ascending ID —
// is a strict total order, so the sorted permutation is unique and every
// way of producing it yields the same float accumulation order (which the
// golden digests pin). The full path sorts from scratch; the incremental
// path splices the affected nodes out of the previous sorted order and
// merges them back, skipping the O(n log n) comparison pass whose
// indirect loads would otherwise dominate small-patch recomputes.
func (nw *Network) computeLoads(aff []int32) {
	if aff == nil {
		order := nw.order[:0]
		for i := range nw.nodes {
			if nw.parent[i] != ParentNone {
				order = append(order, i)
			}
		}
		// The comparator is the full (descending distance, ascending ID)
		// key and the sorter is a reusable field, so the sort needs
		// neither stability nor allocation. Element for element this is
		// the order the previous stable insertion sort produced.
		nw.sorter.order = order
		nw.sorter.hop = nw.hopDist
		sort.Sort(&nw.sorter)
		nw.order = order
	} else {
		nw.spliceOrder(aff)
	}
	order := nw.order
	relay := nw.relay
	for i := range relay {
		relay[i] = 0
	}
	for _, i := range order {
		var hop float64
		if nw.parent[i] == ParentSink {
			hop = nw.pos[i].Dist(nw.sink)
		} else {
			hop = nw.pos[i].Dist(nw.pos[nw.parent[i]])
		}
		nw.loads[i] = energy.Load{
			GenBps:      nw.genBps[i],
			RelayBps:    relay[i],
			NextHopDist: hop,
		}
		if p := nw.parent[i]; p >= 0 {
			relay[p] += nw.genBps[i] + relay[i]
		}
	}
	// DrainWatts is a pure function of (parent, load, radio), all fixed
	// until the next Recompute; caching it here turns the per-step energy
	// advance and depletion forecasts into array reads.
	for i := range nw.nodes {
		if nw.parent[i] == ParentNone {
			nw.drainW[i] = nw.radio.SenseW + nw.radio.IdleW
		} else {
			nw.drainW[i] = nw.radio.DrainWatts(nw.loads[i])
		}
	}
}

// loadSorter orders the load propagation by the canonical (descending
// route distance, ascending ID) key. It lives on the Network so sorting
// allocates nothing.
type loadSorter struct {
	order []int
	hop   []float64
}

func (s *loadSorter) Len() int { return len(s.order) }

func (s *loadSorter) Less(i, j int) bool {
	a, b := s.order[i], s.order[j]
	ha, hb := s.hop[a], s.hop[b]
	return ha > hb || (ha == hb && a < b)
}

func (s *loadSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }

// Parent returns node id's routing parent: another node, ParentSink, or
// ParentNone when the node is disconnected or dead.
func (nw *Network) Parent(id NodeID) NodeID { return nw.parent[id] }

// Children returns the routing children of node id. The returned slice is
// owned by the network; callers must not modify it.
func (nw *Network) Children(id NodeID) []NodeID { return nw.children[id] }

// Load returns node id's steady-state traffic load from the last Recompute.
func (nw *Network) Load(id NodeID) energy.Load { return nw.loads[id] }

// DrainWatts returns node id's steady-state power draw from the last
// Recompute. Disconnected nodes still pay sensing and idle power.
func (nw *Network) DrainWatts(id NodeID) float64 { return nw.drainW[id] }

// Connected reports whether node id currently has a route to the sink.
func (nw *Network) Connected(id NodeID) bool { return nw.parent[id] != ParentNone }

// ConnectedCount returns the number of alive nodes with a route to the sink.
func (nw *Network) ConnectedCount() int {
	c := 0
	for i := range nw.nodes {
		if nw.parent[i] != ParentNone {
			c++
		}
	}
	return c
}

// distHeap is a min-heap for Dijkstra, stored by value and sifted
// manually so pushes never box through an interface. Items order by the
// canonical (distance, index) key: lexicographic ordering makes the pop
// sequence — and therefore every tie-break the tree construction is
// sensitive to — a pure function of the key set, independent of insertion
// history, which the incremental rebuild relies on to reproduce the full
// rebuild exactly.
type distItem struct {
	idx int
	d   float64
}

// less orders heap items by (distance, index).
func (a distItem) less(b distItem) bool {
	return a.d < b.d || (a.d == b.d && a.idx < b.idx)
}

type distHeap []distItem

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	it := s[n]
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		j := left
		if right := left + 1; right < n && s[right].less(s[left]) {
			j = right
		}
		if !s[j].less(s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	return it
}
