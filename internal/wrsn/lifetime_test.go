package wrsn

import (
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func TestForecastClosedForm(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(1, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	node, err := nw.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	drain := nw.DrainWatts(0)
	f, err := nw.ForecastAt(0, 100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	level := node.Battery.Level()
	threshold := 0.3 * node.Battery.Capacity()
	wantReq := 100 + (level-threshold)/drain
	wantDeath := 100 + level/drain
	if math.Abs(f.RequestAt-wantReq) > 1e-9 {
		t.Errorf("RequestAt = %v, want %v", f.RequestAt, wantReq)
	}
	if math.Abs(f.DeathAt-wantDeath) > 1e-9 {
		t.Errorf("DeathAt = %v, want %v", f.DeathAt, wantDeath)
	}
	if w := f.Window(); math.Abs(w-(wantDeath-wantReq)) > 1e-9 {
		t.Errorf("Window = %v", w)
	}
}

func TestForecastBelowThreshold(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(1, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	node, _ := nw.Node(0)
	node.Battery.SetLevel(0.1 * node.Battery.Capacity())
	f, err := nw.ForecastAt(0, 500, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if f.RequestAt != 500 {
		t.Errorf("below-threshold RequestAt = %v, want now (500)", f.RequestAt)
	}
}

func TestForecastDeadNode(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(1, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	node, _ := nw.Node(0)
	node.Battery.SetLevel(0)
	f, err := nw.ForecastAt(0, 7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if f.RequestAt != 7 || f.DeathAt != 7 {
		t.Errorf("dead forecast = %+v", f)
	}
}

func TestForecastErrors(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(1, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	if _, err := nw.ForecastAt(5, 0, 0.3); err == nil {
		t.Error("out-of-range forecast accepted")
	}
	// Invalid fraction falls back to the default rather than erroring.
	f, err := nw.ForecastAt(0, 0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(f.RequestAt, 1) {
		t.Error("fallback fraction produced no request")
	}
}

func TestAdvanceEnergy(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(2, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	n0, _ := nw.Node(0)
	before := n0.Battery.Level()
	died := nw.AdvanceEnergy(1000)
	if len(died) != 0 {
		t.Fatalf("unexpected deaths: %v", died)
	}
	drained := before - n0.Battery.Level()
	want := nw.DrainWatts(0) * 1000
	if math.Abs(drained-want) > 1e-9 {
		t.Errorf("drained %v, want %v", drained, want)
	}
	if nw.AdvanceEnergy(0) != nil || nw.AdvanceEnergy(-5) != nil {
		t.Error("non-positive dt advanced energy")
	}
}

func TestAdvanceEnergyDeath(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(2, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	n1, _ := nw.Node(1)
	n1.Battery.SetLevel(nw.DrainWatts(1) * 10) // 10 seconds of life
	died := nw.AdvanceEnergy(11)
	if len(died) != 1 || died[0] != 1 {
		t.Fatalf("died = %v, want [1]", died)
	}
}

func TestNextDepletion(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(3, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	// Node 0 relays the most, so with equal batteries it dies first.
	at, who := nw.NextDepletion(50)
	if who != 0 {
		t.Errorf("first to die = %v, want 0", who)
	}
	n0, _ := nw.Node(0)
	want := 50 + n0.Battery.Level()/nw.DrainWatts(0)
	if math.Abs(at-want) > 1e-6 {
		t.Errorf("depletion at %v, want %v", at, want)
	}
	// Exact consistency: advancing to just before must kill nobody;
	// crossing it must kill node 0.
	if died := nw.AdvanceEnergy(at - 50 - 1); len(died) != 0 {
		t.Fatalf("premature deaths: %v", died)
	}
	if died := nw.AdvanceEnergy(2); len(died) != 1 || died[0] != 0 {
		t.Fatalf("died = %v, want [0]", died)
	}
	// After everyone dies, NextDepletion reports +Inf.
	for _, n := range nw.Nodes() {
		n.Battery.SetLevel(0)
	}
	at, who = nw.NextDepletion(0)
	if !math.IsInf(at, 1) || who != ParentNone {
		t.Errorf("NextDepletion on dead network = %v, %v", at, who)
	}
}

func TestForecastAllCoversEveryNode(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(4, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	fs := nw.ForecastAll(0, 0.3)
	if len(fs) != 4 {
		t.Fatalf("forecast count = %d", len(fs))
	}
	for i, f := range fs {
		if f.ID != NodeID(i) {
			t.Errorf("forecast %d has ID %v", i, f.ID)
		}
		if f.DeathAt <= f.RequestAt {
			t.Errorf("node %d: death %v before request %v", i, f.DeathAt, f.RequestAt)
		}
	}
}
