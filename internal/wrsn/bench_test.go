package wrsn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// benchNetwork builds a uniform deployment scaled so node density (and
// hence mean degree) stays constant as n grows: side 36·√n with a 50 m
// comm range gives the same neighborhood structure at 1k and 100k nodes.
func benchNetwork(b *testing.B, n int) *Network {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	side := 36 * math.Sqrt(float64(n))
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Pos: geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}}
	}
	nw, err := NewNetwork(specs, Config{
		Sink:      geom.Point{X: side / 2, Y: side / 2},
		CommRange: 50,
	})
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// benchVictim picks a connected relay (a node with routing children) so
// each kill/repair cycle invalidates a real subtree rather than a leaf.
func benchVictim(b *testing.B, nw *Network) int {
	b.Helper()
	n := len(nw.nodes)
	for i := n / 2; i < n; i++ {
		if nw.Parent(NodeID(i)) != ParentNone && len(nw.Children(NodeID(i))) > 0 {
			return i
		}
	}
	for i := 0; i < n; i++ {
		if nw.Parent(NodeID(i)) != ParentNone {
			return i
		}
	}
	b.Fatal("no connected node to use as victim")
	return -1
}

// BenchmarkRecomputeIncremental measures the routing recompute that
// follows a node death or repair — the dominant cost of death-heavy
// campaign runs — comparing incremental subtree patching against the
// full-Dijkstra rebuild at matched topology. Each iteration alternates
// failing and repairing one mid-field relay, so both the deletion
// (subtree invalidation) and insertion (boundary re-relaxation) paths are
// on the clock.
func BenchmarkRecomputeIncremental(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, mode := range []string{"incr", "full"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				nw := benchNetwork(b, n)
				nw.SetIncrementalRouting(mode == "incr")
				victim := benchVictim(b, nw)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%2 == 0 {
						nw.ptrs[victim].Fail()
					} else {
						nw.ptrs[victim].Repair()
					}
					nw.Recompute()
				}
			})
		}
	}
}
