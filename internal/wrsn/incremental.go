package wrsn

import (
	"math"
	"sort"
)

// Incremental shortest-path-tree maintenance.
//
// Between two Recompute calls only the alive set can change (edge weights
// are pure functions of position except under PolicyEnergyAware, which
// always rebuilds fully). The invalidation rule:
//
//   - A node that left the alive set invalidates exactly its own SPT
//     subtree: every other node's tree path avoids it, so removing it
//     cannot change their distances — and cannot change their
//     predecessors either, because the canonical tie-break (below) makes
//     each predecessor a pure function of the final distances.
//   - A node that joined the alive set invalidates only itself; any
//     improvement it offers the rest of the graph propagates outward
//     through ordinary relaxation from the re-run's frontier.
//
// The affected set A is therefore (removed nodes ∪ their descendants in
// the previous tree) ∪ added nodes. Members of A are reset to
// (+Inf, no-pred), seeded by relaxing every edge from a settled non-A
// neighbor (and the sink) into them, and Dijkstra runs over that frontier,
// relaxing all alive neighbors of each popped node so improvements may
// spill out of A. Everything outside A keeps its settled distance.
//
// Exactness through ties is what makes this reproduce a full rebuild bit
// for bit. The heap orders by the (distance, index) key, and relax applies
// an equal-distance rule: a parent with the lexicographically smaller
// (distance, index) key wins. At termination every node's predecessor is
// the key-minimal element of its optimal-parent set — a local property of
// the final distances, independent of relaxation order or of which subset
// of the graph was re-run. The incremental oracle test pins this equality
// (distances, predecessors, parents, children order, loads, drains)
// against a from-scratch reference over randomized fail/repair/depletion
// sequences.
//
// A full rebuild remains the fallback: when no valid tree exists, when the
// policy is energy-aware, when incremental maintenance is toggled off, or
// when A grows past half the network (patching would cost more than
// rebuilding).

// incrementalMaxAffectedFrac bounds the affected set; past this fraction
// of the network a full rebuild is cheaper than patching.
const incrementalMaxAffectedFrac = 0.5

// SetIncrementalRouting toggles incremental tree maintenance (on by
// default). Off forces every Recompute down the full-Dijkstra path. The
// results are bit-identical either way; the toggle exists to benchmark
// the full-rebuild baseline and as an operational escape hatch.
func (nw *Network) SetIncrementalRouting(on bool) { nw.fullOnly = !on }

// recomputeIncremental patches the shortest-path tree after an alive-set
// change, assuming nw.live is fresh and a valid tree exists. It returns
// false when the caller must run a full rebuild instead (the affected set
// is too large). An unchanged alive set returns true immediately: the
// tree, loads, and drains are already exact.
func (nw *Network) recomputeIncremental() bool {
	n := len(nw.nodes)
	nw.inA.reset()
	aff := nw.affected[:0]
	stack := nw.stack[:0]

	// Removed nodes (alive before, not now) seed the subtree walk; added
	// nodes (alive now, not before) join the affected set directly.
	removed := nw.prevLive.appendAndNot(stack, nw.live)
	stack = removed
	for _, v := range removed {
		nw.inA.set(int(v))
	}
	aff = append(aff, removed...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range nw.children[v] {
			if !nw.inA.get(int(c)) {
				nw.inA.set(int(c))
				aff = append(aff, int32(c))
				stack = append(stack, int32(c))
			}
		}
	}
	addedFrom := len(aff)
	aff = nw.live.appendAndNot(aff, nw.prevLive)
	for _, v := range aff[addedFrom:] {
		nw.inA.set(int(v))
	}

	nw.affected = aff[:0]
	nw.stack = stack[:0]
	if len(aff) == 0 {
		return true // alive set unchanged: the tree is already exact
	}
	if float64(len(aff)) > incrementalMaxAffectedFrac*float64(n) {
		return false
	}

	// Invalidate the affected set, then seed it: every edge from a
	// settled (finite-distance, non-affected, alive) neighbor — or from
	// the sink — into an affected alive node is a candidate first hop.
	for _, v := range aff {
		nw.dist[v] = math.Inf(1)
		nw.pred[v] = predNone
	}
	nw.pq = nw.pq[:0]
	for _, v32 := range aff {
		v := int(v32)
		if !nw.live.get(v) {
			continue
		}
		pv := nw.pos[v]
		nw.cand = nw.grid.Candidates(nw.cand[:0], pv, nw.commRange)
		for _, cu := range nw.cand {
			u := int(cu)
			if u == v || nw.inA.get(u) || !nw.live.get(u) {
				continue
			}
			if math.IsInf(nw.dist[u], 1) || !nw.linked(pv, nw.pos[u]) {
				continue
			}
			nw.relax(u, nw.dist[u], nw.pos[u], v)
		}
		if nw.linked(pv, nw.sink) {
			nw.relax(n, 0, nw.sink, v)
		}
	}

	// Dijkstra over the frontier. Popped nodes relax every alive
	// neighbor, not just affected ones, so a path improvement introduced
	// by a repaired node propagates beyond A; unaffected neighbors whose
	// settled distance is already optimal reject the offer and the wave
	// dies out at A's boundary. Any node the wave does improve has, by
	// that fact, a changed distance — it joins the affected set so the
	// derived-order splice sees every moved node, not just the invalidated
	// ones.
	for len(nw.pq) > 0 {
		it := nw.pq.pop()
		if it.d > nw.dist[it.idx] {
			continue
		}
		u := it.idx
		pu := nw.pos[u]
		nw.cand = nw.grid.Candidates(nw.cand[:0], pu, nw.commRange)
		for _, cv := range nw.cand {
			v := int(cv)
			if v == u || !nw.live.get(v) || !nw.linked(pu, nw.pos[v]) {
				continue
			}
			if nw.relax(u, it.d, pu, v) && !nw.inA.get(v) {
				nw.inA.set(v)
				aff = append(aff, int32(v))
			}
		}
	}

	nw.deriveTree(aff)
	nw.affected = aff[:0]
	return true
}

// spliceOrder patches the persistent load-propagation order after an
// incremental recompute. Only affected nodes can have entered, left, or
// moved within the order (everything else kept its distance), so the new
// order is the old one with affected entries removed, merged against the
// affected nodes that are currently connected, sorted by the same
// canonical key. The key is a strict total order, so this merge produces
// exactly the permutation a from-scratch sort would.
func (nw *Network) spliceOrder(aff []int32) {
	newly := nw.newly[:0]
	for _, v := range aff {
		i := int(v)
		if nw.parent[i] != ParentNone {
			newly = append(newly, i)
		}
	}
	nw.sorter.order = newly
	nw.sorter.hop = nw.hopDist
	sort.Sort(&nw.sorter)
	nw.newly = newly

	old := nw.order
	out := nw.orderTmp[:0]
	k := 0
	for _, i := range old {
		if nw.inA.get(i) {
			continue // stale entry: removed or re-positioned below
		}
		for k < len(newly) && orderKeyLess(nw.hopDist, newly[k], i) {
			out = append(out, newly[k])
			k++
		}
		out = append(out, i)
	}
	out = append(out, newly[k:]...)
	nw.orderTmp = nw.order[:0]
	nw.order = out
}

// orderKeyLess is the load-propagation order's canonical key: descending
// route distance, ascending ID.
func orderKeyLess(hop []float64, a, b int) bool {
	return hop[a] > hop[b] || (hop[a] == hop[b] && a < b)
}
