package wrsn

import "math/bits"

// bitset is a dense bit vector over node indices, sized once at network
// construction. The alive and failed sets live here instead of in
// per-node structs: a 100k-node membership scan touches ~1.5 KB of
// contiguous words instead of 100k scattered struct fields, and set
// differences (the incremental router's dirty detection) become word-wise
// AND-NOTs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

// appendAndNot appends to dst the indices present in b but not in other
// (b &^ other), ascending. Words are scanned via trailing-zero counts, so
// the cost is proportional to the word count plus the population of the
// difference.
func (b bitset) appendAndNot(dst []int32, other bitset) []int32 {
	for w, word := range b {
		diff := word &^ other[w]
		base := int32(w << 6)
		for diff != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(diff)))
			diff &= diff - 1
		}
	}
	return dst
}
