package wrsn

// Network robustness analysis: how fast does sink connectivity collapse as
// nodes are removed in a given order? The classic random-vs-targeted
// curves motivate the attack — removing a handful of articulation points
// does what dozens of random failures cannot — and quantify a deployment's
// exposure before any attack runs.

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/rng"
)

// RemovalStrategy orders nodes for a robustness sweep.
type RemovalStrategy int

// Removal strategies.
const (
	// RemoveRandom removes alive nodes uniformly at random.
	RemoveRandom RemovalStrategy = iota + 1
	// RemoveByBetweenness removes the highest-betweenness alive node
	// first, recomputing after each removal.
	RemoveByBetweenness
	// RemoveBySeverance removes the alive node severing the most others
	// first (the attack's target order), recomputing after each removal.
	RemoveBySeverance
)

// String implements fmt.Stringer.
func (s RemovalStrategy) String() string {
	switch s {
	case RemoveRandom:
		return "random"
	case RemoveByBetweenness:
		return "betweenness"
	case RemoveBySeverance:
		return "severance"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// RobustnessPoint is one step of a removal sweep.
type RobustnessPoint struct {
	// Removed is the cumulative number of removed nodes.
	Removed int
	// Connected is the number of alive nodes still routed to the sink.
	Connected int
}

// RobustnessSweep removes up to steps nodes in the strategy's order and
// records connectivity after each removal. The network is restored to its
// prior battery state afterward (removal is simulated by zeroing
// batteries and undone before returning); the sweep must not be run
// concurrently with other use of the network. The stream drives
// RemoveRandom and is ignored otherwise.
func (nw *Network) RobustnessSweep(strategy RemovalStrategy, steps int, r *rng.Stream) ([]RobustnessPoint, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("wrsn: steps must be positive, got %d", steps)
	}
	if strategy == RemoveRandom && r == nil {
		return nil, fmt.Errorf("wrsn: RemoveRandom needs a random stream")
	}
	// Save battery levels to restore the network afterward.
	saved := make([]float64, len(nw.nodes))
	for i, n := range nw.nodes {
		saved[i] = n.Battery.Level()
	}
	defer func() {
		for i, n := range nw.nodes {
			n.Battery.SetLevel(saved[i])
		}
		nw.Recompute()
	}()

	points := make([]RobustnessPoint, 0, steps+1)
	points = append(points, RobustnessPoint{Removed: 0, Connected: nw.ConnectedCount()})
	for k := 1; k <= steps; k++ {
		victim, ok := nw.pickRemoval(strategy, r)
		if !ok {
			break // nobody left to remove
		}
		nw.nodes[victim].Battery.SetLevel(0)
		nw.Recompute()
		points = append(points, RobustnessPoint{Removed: k, Connected: nw.ConnectedCount()})
	}
	return points, nil
}

// pickRemoval chooses the next node to remove under the strategy.
func (nw *Network) pickRemoval(strategy RemovalStrategy, r *rng.Stream) (NodeID, bool) {
	var alive []NodeID
	for i, n := range nw.nodes {
		if n.Alive() {
			alive = append(alive, NodeID(i))
		}
	}
	if len(alive) == 0 {
		return 0, false
	}
	switch strategy {
	case RemoveRandom:
		return alive[r.Intn(len(alive))], true
	case RemoveByBetweenness:
		bc := nw.Betweenness()
		best := alive[0]
		for _, id := range alive[1:] {
			if bc[id] > bc[best] {
				best = id
			}
		}
		return best, true
	case RemoveBySeverance:
		keys := nw.KeyNodes()
		if len(keys) > 0 {
			return keys[0].ID, true
		}
		// No separators left: fall back to highest betweenness, which is
		// what an attacker would escalate to.
		bc := nw.Betweenness()
		best := alive[0]
		for _, id := range alive[1:] {
			if bc[id] > bc[best] {
				best = id
			}
		}
		return best, true
	default:
		return 0, false
	}
}
