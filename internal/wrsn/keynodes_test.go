package wrsn

import (
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func randomMesh(r *rand.Rand, n int) []NodeSpec {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Pos: geom.Pt(r.Float64()*300, r.Float64()*300)}
	}
	return specs
}

// KeyNodes (single Tarjan DFS) must agree exactly with the brute-force
// severance computation on arbitrary topologies.
func TestKeyNodesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nw := mustNetwork(t, randomMesh(r, 40), Config{Sink: geom.Pt(150, 150), CommRange: 60})
		keys := nw.KeyNodes()
		bySeverance := make(map[NodeID]int, len(keys))
		for _, k := range keys {
			bySeverance[k.ID] = k.Severed
		}
		for i := 0; i < nw.Len(); i++ {
			id := NodeID(i)
			want := nw.SeveredByDeath(id)
			if got := bySeverance[id]; got != want {
				t.Fatalf("trial %d node %d: KeyNodes severed=%d, brute force=%d", trial, i, got, want)
			}
		}
	}
}

func TestKeyNodesChain(t *testing.T) {
	// In a chain of 5 every non-leaf is a separator; node i severs the
	// 4−(i+1) nodes behind it... node 0 severs 4? No: node 0 is adjacent
	// to the sink; its death severs nodes 1..4 unless they reach the sink
	// another way — with 40 m spacing and 50 m range they cannot.
	nw := mustNetwork(t, lineSpecs(5, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	keys := nw.KeyNodes()
	if len(keys) != 4 {
		t.Fatalf("chain key count = %d, want 4", len(keys))
	}
	// Sorted by decreasing severance: node 0 severs 4, node 1 severs 3…
	for i, k := range keys {
		wantID, wantSev := NodeID(i), 4-i
		if k.ID != wantID || k.Severed != wantSev {
			t.Errorf("keys[%d] = {%d %d}, want {%d %d}", i, k.ID, k.Severed, wantID, wantSev)
		}
	}
}

func TestKeyNodesNoneInClique(t *testing.T) {
	// A tight cluster where everyone hears everyone: no key nodes.
	specs := []NodeSpec{
		{Pos: geom.Pt(10, 0)}, {Pos: geom.Pt(0, 10)}, {Pos: geom.Pt(10, 10)},
	}
	nw := mustNetwork(t, specs, Config{Sink: geom.Pt(0, 0), CommRange: 50})
	if keys := nw.KeyNodes(); len(keys) != 0 {
		t.Errorf("clique produced key nodes: %v", keys)
	}
}

func TestSeveredSetMatchesCount(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		nw := mustNetwork(t, randomMesh(r, 35), Config{Sink: geom.Pt(150, 150), CommRange: 60})
		for i := 0; i < nw.Len(); i++ {
			id := NodeID(i)
			set := nw.SeveredSet(id)
			if len(set) != nw.SeveredByDeath(id) {
				t.Fatalf("trial %d node %d: |SeveredSet|=%d, SeveredByDeath=%d",
					trial, i, len(set), nw.SeveredByDeath(id))
			}
			for _, s := range set {
				if s == id {
					t.Fatalf("SeveredSet contains the node itself")
				}
			}
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star: center node relays every leaf; leaves have betweenness 0 and
	// the center carries all leaf-pair and leaf-sink shortest paths.
	specs := []NodeSpec{
		{Pos: geom.Pt(40, 0)},   // center, links to sink and all leaves
		{Pos: geom.Pt(80, 0)},   // leaf
		{Pos: geom.Pt(40, 40)},  // leaf
		{Pos: geom.Pt(40, -40)}, // leaf
	}
	nw := mustNetwork(t, specs, Config{Sink: geom.Pt(0, 0), CommRange: 50})
	bc := nw.Betweenness()
	if bc[0] <= 0 {
		t.Errorf("center betweenness = %v, want > 0", bc[0])
	}
	for i := 1; i < 4; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf %d betweenness = %v, want 0", i, bc[i])
		}
	}
	// Center lies on all C(4,2)=6 pairs among {sink, 3 leaves}.
	if bc[0] != 6 {
		t.Errorf("center betweenness = %v, want 6", bc[0])
	}
}

func TestBetweennessChain(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(3, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	bc := nw.Betweenness()
	// Chain sink—0—1—2: node 0 on pairs (sink,1),(sink,2); node 1 on
	// (sink,2),(0,2); node 2 on none.
	want := []float64{2, 2, 0}
	for i, w := range want {
		if bc[i] != w {
			t.Errorf("bc[%d] = %v, want %v", i, bc[i], w)
		}
	}
}

func TestKeyNodesIgnoreDead(t *testing.T) {
	nw := mustNetwork(t, lineSpecs(4, 40), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	last, err := nw.Node(3)
	if err != nil {
		t.Fatal(err)
	}
	last.Battery.SetLevel(0)
	nw.Recompute()
	keys := nw.KeyNodes()
	// Node 2 no longer severs anyone (its only child is dead).
	for _, k := range keys {
		if k.ID == 2 {
			t.Errorf("node 2 still a key node after its subtree died: %+v", k)
		}
	}
}

func BenchmarkKeyNodes(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	nw, err := NewNetwork(randomMesh(r, 300), Config{Sink: geom.Pt(150, 150), CommRange: 45})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.KeyNodes()
	}
}
