package wrsn

import "sort"

// RegionShards partitions every node ID into at most k shards of
// near-equal size, grouped by grid region: the position grid is walked in
// row-major bucket order (spatially adjacent nodes land together) and cut
// into contiguous runs, so a shard's nodes cluster in the field and its
// battery/forecast scans stream neighboring rows of the dense storage.
// IDs are ascending within each shard — the order AdvanceEnergyIn and
// NextDepletionIn need for their deterministic merge rules. The
// partition depends only on node positions, so it is stable across runs.
func (nw *Network) RegionShards(k int) [][]NodeID {
	n := len(nw.nodes)
	if k > n {
		k = n
	}
	if k <= 1 {
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		return [][]NodeID{all}
	}
	ordered := nw.grid.AppendAll(make([]int32, 0, n))
	if len(ordered) != n {
		// Degenerate grid (no index built): fall back to ID-order runs.
		ordered = ordered[:0]
		for i := 0; i < n; i++ {
			ordered = append(ordered, int32(i))
		}
	}
	per := (n + k - 1) / k
	shards := make([][]NodeID, 0, k)
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		ids := make([]NodeID, 0, end-start)
		for _, c := range ordered[start:end] {
			ids = append(ids, NodeID(c))
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		shards = append(shards, ids)
	}
	return shards
}
