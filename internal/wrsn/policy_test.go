package wrsn

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// diamondSpecs builds sink—{A,B}—C: two parallel relays A and B, a far
// node C reachable through either. The topology where policies differ.
func diamondSpecs() []NodeSpec {
	return []NodeSpec{
		{Pos: geom.Pt(40, 12)}, // 0: relay A (slightly longer path)
		{Pos: geom.Pt(40, -8)}, // 1: relay B (shorter path)
		{Pos: geom.Pt(80, 0)},  // 2: far node C
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyShortestDistance.String() != "shortest-distance" ||
		PolicyHopCount.String() != "hop-count" ||
		PolicyEnergyAware.String() != "energy-aware" {
		t.Error("policy names wrong")
	}
	if RoutingPolicy(9).String() == "" {
		t.Error("unknown policy empty")
	}
}

func TestShortestDistancePicksShortPath(t *testing.T) {
	nw := mustNetwork(t, diamondSpecs(), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	if nw.Policy() != PolicyShortestDistance {
		t.Fatalf("default policy = %v", nw.Policy())
	}
	// C routes through B (closer to the straight line).
	if p := nw.Parent(2); p != 1 {
		t.Errorf("C's parent = %v, want relay B (1)", p)
	}
}

func TestEnergyAwareAvoidsDrainedRelay(t *testing.T) {
	nw := mustNetwork(t, diamondSpecs(), Config{
		Sink: geom.Pt(0, 0), CommRange: 50, Policy: PolicyEnergyAware,
	})
	// Fresh batteries: B still wins (shorter).
	if p := nw.Parent(2); p != 1 {
		t.Fatalf("fresh: C's parent = %v, want 1", p)
	}
	// Drain B: traffic must shift to A.
	b, err := nw.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	b.Battery.SetLevel(0.05 * b.Battery.Capacity())
	nw.Recompute()
	if p := nw.Parent(2); p != 0 {
		t.Errorf("drained: C's parent = %v, want relay A (0)", p)
	}
	// Shortest-distance routing would NOT shift.
	nw2 := mustNetwork(t, diamondSpecs(), Config{Sink: geom.Pt(0, 0), CommRange: 50})
	b2, err := nw2.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	b2.Battery.SetLevel(0.05 * b2.Battery.Capacity())
	nw2.Recompute()
	if p := nw2.Parent(2); p != 1 {
		t.Errorf("shortest-distance shifted anyway: parent = %v", p)
	}
}

func TestHopCountMinimizesHops(t *testing.T) {
	// A chain where distance-optimal routing uses two short hops but a
	// single long hop exists.
	specs := []NodeSpec{
		{Pos: geom.Pt(24, 10)}, // 0: midpoint relay (two short hops: 26+26 ≈ 52)
		{Pos: geom.Pt(48, 0)},  // 1: target, directly reachable at 48 m
	}
	nw := mustNetwork(t, specs, Config{Sink: geom.Pt(0, 0), CommRange: 50, Policy: PolicyHopCount})
	if p := nw.Parent(1); p != ParentSink {
		t.Errorf("hop-count parent = %v, want direct sink link", p)
	}
	nwD := mustNetwork(t, specs, Config{Sink: geom.Pt(0, 0), CommRange: 50})
	// Distance policy happily relays if it shortens total length... here
	// direct = 48 < 26+26, so both go direct; tweak: move relay to make
	// relayed path shorter in distance.
	_ = nwD
	specs2 := []NodeSpec{
		{Pos: geom.Pt(25, 0)}, // straight-line midpoint: 25+25 = 50 > 48? equal-ish
		{Pos: geom.Pt(48, 0)},
	}
	nw2 := mustNetwork(t, specs2, Config{Sink: geom.Pt(0, 0), CommRange: 50, Policy: PolicyHopCount})
	if p := nw2.Parent(1); p != ParentSink {
		t.Errorf("hop-count chose relay despite direct link: %v", p)
	}
}

// Articulation points are policy-independent: no routing objective changes
// which nodes are sink separators — the negative result behind R-Tab 5.
func TestKeyNodesPolicyIndependent(t *testing.T) {
	specs := lineSpecs(6, 40)
	var sets [][]KeyNode
	for _, pol := range []RoutingPolicy{PolicyShortestDistance, PolicyHopCount, PolicyEnergyAware} {
		nw := mustNetwork(t, specs, Config{Sink: geom.Pt(0, 0), CommRange: 50, Policy: pol})
		sets = append(sets, nw.KeyNodes())
	}
	for i := 1; i < len(sets); i++ {
		if len(sets[i]) != len(sets[0]) {
			t.Fatalf("key count differs across policies: %v vs %v", sets[i], sets[0])
		}
		for j := range sets[i] {
			if sets[i][j] != sets[0][j] {
				t.Fatalf("key sets differ: %v vs %v", sets[i], sets[0])
			}
		}
	}
}
