package wrsn

import (
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func randomNetwork(t *testing.T, rng *rand.Rand, n int, commRange float64) *Network {
	t.Helper()
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Pos: geom.Point{X: rng.Float64() * 250, Y: rng.Float64() * 250}}
	}
	nw, err := NewNetwork(specs, Config{
		Sink:      geom.Point{X: 125, Y: 125},
		CommRange: commRange,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// bruteAdjacency is the original O(n²) pairwise scan, kept as the
// equivalence oracle: the grid-backed aliveAdjacency must reproduce its
// lists element for element, because Dijkstra's tie-breaking — and
// through it the golden Outcome digests — depends on adjacency order.
func bruteAdjacency(nw *Network) [][]int {
	n := len(nw.nodes)
	adj := make([][]int, n+1)
	for i, a := range nw.nodes {
		if !a.Alive() {
			continue
		}
		for j := i + 1; j < n; j++ {
			b := nw.nodes[j]
			if b.Alive() && nw.linked(a.Pos, b.Pos) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
		if nw.linked(a.Pos, nw.sink) {
			adj[i] = append(adj[i], n)
			adj[n] = append(adj[n], i)
		}
	}
	return adj
}

// TestGridAdjacencyMatchesBrute compares the indexed adjacency against
// the brute-force scan across random topologies and alive subsets,
// requiring exact element order.
func TestGridAdjacencyMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nw := randomNetwork(t, rng, 1+rng.Intn(150), 30+rng.Float64()*60)
		// Kill a random subset (battery depletion and hardware faults).
		for _, n := range nw.nodes {
			switch rng.Intn(5) {
			case 0:
				n.Battery.Drain(n.Battery.Level() + 1)
			case 1:
				n.Fail()
			}
		}
		got := nw.aliveAdjacency()
		want := bruteAdjacency(nw)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d lists, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("trial %d: adj[%d] = %v, want %v", trial, i, got[i], want[i])
			}
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("trial %d: adj[%d] = %v, want %v (order matters)", trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNodesNearMatchesBrute compares the indexed witness scan against
// the brute-force ID-order scan it replaces, including its exact
// Dist ≤ r predicate, for query centers on and off the field.
func TestNodesNearMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := randomNetwork(t, rng, 120, 50)
	for _, n := range nw.nodes {
		if rng.Intn(6) == 0 {
			n.Fail()
		}
	}
	for q := 0; q < 50; q++ {
		pos := geom.Point{X: rng.Float64()*350 - 50, Y: rng.Float64()*350 - 50}
		r := rng.Float64() * 100
		var want []*Node
		for i := range nw.nodes {
			if n := &nw.nodes[i]; n.Alive() && pos.Dist(n.Pos) <= r {
				want = append(want, n)
			}
		}
		got := nw.NodesNear(nil, pos, r)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d nodes, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: node %d is %d, want %d (ascending ID order)", q, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestRecomputeSteadyStateAllocFree proves repeated routing rebuilds on
// a stable topology reuse their buffers.
func TestRecomputeSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := randomNetwork(t, rng, 120, 50)
	nw.Recompute() // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		nw.Recompute()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Recompute allocates %v times, want 0", allocs)
	}
}

// TestRecomputeAfterDeathsStillCorrect drains nodes between rebuilds and
// checks parents and drains agree with a fresh network in the same state.
func TestRecomputeAfterDeathsStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	specs := make([]NodeSpec, 80)
	for i := range specs {
		specs[i] = NodeSpec{Pos: geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}}
	}
	cfg := Config{Sink: geom.Point{X: 100, Y: 100}, CommRange: 45}
	nw, err := NewNetwork(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i, n := range nw.nodes {
			if (i+round)%7 == 0 {
				n.Battery.Drain(n.Battery.Level() + 1)
			}
		}
		nw.Recompute()
		// A fresh network with identical alive state is the oracle.
		ref, err := NewNetwork(specs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range nw.nodes {
			if !n.Alive() {
				ref.nodes[i].Battery.Drain(ref.nodes[i].Battery.Level() + 1)
			}
		}
		ref.Recompute()
		for i := range nw.nodes {
			if nw.Parent(NodeID(i)) != ref.Parent(NodeID(i)) {
				t.Fatalf("round %d: parent[%d] = %d, want %d", round, i, nw.Parent(NodeID(i)), ref.Parent(NodeID(i)))
			}
			if nw.DrainWatts(NodeID(i)) != ref.DrainWatts(NodeID(i)) {
				t.Fatalf("round %d: drain[%d] = %v, want %v", round, i, nw.DrainWatts(NodeID(i)), ref.DrainWatts(NodeID(i)))
			}
		}
	}
}
