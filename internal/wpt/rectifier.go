package wpt

import "fmt"

// Rectifier models the nonlinear RF-to-DC conversion stage of a sensor
// node's energy harvester. Three regimes matter for the attack:
//
//   - Dead zone: below DeadZoneW of RF input the rectifying diode does not
//     conduct and DC output is exactly zero. Commodity rectennas have dead
//     zones around −10 dBm (0.1 mW).
//   - Conversion region: between DeadZoneW and SaturationW the conversion
//     efficiency rises with input power toward PeakEfficiency.
//   - Saturation: above SaturationW the DC output is clamped at
//     PeakEfficiency × SaturationW (the regulator limits harvest current).
//
// The efficiency curve in the conversion region follows the logistic shape
// fitted to published P1110/P2110 evaluation-board measurements.
type Rectifier struct {
	// DeadZoneW is the RF input power below which the DC output is zero.
	DeadZoneW float64
	// SaturationW is the RF input power above which DC output stops rising.
	SaturationW float64
	// PeakEfficiency is the asymptotic RF→DC conversion efficiency in (0,1].
	PeakEfficiency float64
	// Knee shapes how fast efficiency ramps after the dead zone; larger is
	// steeper. Dimensionless, must be positive.
	Knee float64
}

// DefaultRectifier returns the rectifier parameterization used throughout
// the reproduction: a −10 dBm dead zone, 20 W saturation (resonant-coupling
// harvesting front end, sized so a single mobile charger can sustain the
// largest evaluated networks), and 62% peak conversion efficiency.
func DefaultRectifier() Rectifier {
	return Rectifier{
		DeadZoneW:      1e-4, // −10 dBm
		SaturationW:    20,
		PeakEfficiency: 0.62,
		Knee:           1.8,
	}
}

// Validate reports whether the rectifier constants are meaningful.
func (r Rectifier) Validate() error {
	switch {
	case r.DeadZoneW < 0:
		return fmt.Errorf("wpt: DeadZoneW must be non-negative, got %v", r.DeadZoneW)
	case r.SaturationW <= r.DeadZoneW:
		return fmt.Errorf("wpt: SaturationW (%v) must exceed DeadZoneW (%v)", r.SaturationW, r.DeadZoneW)
	case r.PeakEfficiency <= 0 || r.PeakEfficiency > 1:
		return fmt.Errorf("wpt: PeakEfficiency must be in (0,1], got %v", r.PeakEfficiency)
	case r.Knee <= 0:
		return fmt.Errorf("wpt: Knee must be positive, got %v", r.Knee)
	}
	return nil
}

// Efficiency returns the RF→DC conversion efficiency at RF input power
// rfW. It is exactly zero in the dead zone, rises smoothly, and approaches
// PeakEfficiency near saturation.
func (r Rectifier) Efficiency(rfW float64) float64 {
	if rfW <= r.DeadZoneW {
		return 0
	}
	// Normalized position within the conversion region on a log-ish ramp:
	// u = (rf − dead) / (sat − dead), clamped at 1 past saturation.
	u := (rfW - r.DeadZoneW) / (r.SaturationW - r.DeadZoneW)
	if u > 1 {
		u = 1
	}
	// Saturating rational ramp: rises with slope controlled by Knee,
	// reaching PeakEfficiency × u(1+k)/(u+k)·... Simpler: eta = peak · u(1+k)/(u·k+1)
	// monotone in u, 0 at u=0, peak at u=1.
	eta := r.PeakEfficiency * u * (1 + r.Knee) / (u*r.Knee + 1)
	return eta
}

// DCOutput returns the harvested DC power for RF input power rfW. Output is
// zero in the dead zone and clamps at the saturation output.
func (r Rectifier) DCOutput(rfW float64) float64 {
	if rfW <= r.DeadZoneW {
		return 0
	}
	in := rfW
	if in > r.SaturationW {
		in = r.SaturationW
	}
	return r.Efficiency(in) * in
}

// MaxDCOutput returns the DC output at saturation, the ceiling of what any
// RF input can harvest.
func (r Rectifier) MaxDCOutput() float64 {
	return r.DCOutput(r.SaturationW)
}
