package wpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChargeModelValidate(t *testing.T) {
	if err := DefaultChargeModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []ChargeModel{
		{Alpha: 0, Beta: 0.2, Range: 5},
		{Alpha: 1, Beta: -1, Range: 5},
		{Alpha: 1, Beta: 0.2, Range: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d passed validation", i)
		}
	}
}

func TestPowerMonotoneDecreasing(t *testing.T) {
	m := DefaultChargeModel()
	prev := math.Inf(1)
	for d := 0.0; d <= m.Range; d += 0.1 {
		p := m.Power(d)
		if p > prev {
			t.Fatalf("power increased with distance at d=%v", d)
		}
		prev = p
	}
}

func TestPowerRangeCutoff(t *testing.T) {
	m := DefaultChargeModel()
	if p := m.Power(m.Range + 0.01); p != 0 {
		t.Errorf("power beyond range = %v, want 0", p)
	}
	if p := m.Power(-1); p != 0 {
		t.Errorf("power at negative distance = %v, want 0", p)
	}
	if p := m.Power(m.Range); p <= 0 {
		t.Errorf("power at range edge = %v, want > 0", p)
	}
}

func TestAmplitudePowerConsistency(t *testing.T) {
	m := DefaultChargeModel()
	f := func(dRaw float64) bool {
		d := math.Mod(math.Abs(dRaw), m.Range)
		a := m.Amplitude(d)
		return math.Abs(a*a-m.Power(d)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceForPowerRoundTrip(t *testing.T) {
	m := DefaultChargeModel()
	for _, d := range []float64{0.1, 0.5, 1, 3, 7.9} {
		p := m.Power(d)
		back, err := m.DistanceForPower(p)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if math.Abs(back-d) > 1e-9 {
			t.Errorf("round trip d=%v -> %v", d, back)
		}
	}
}

func TestDistanceForPowerErrors(t *testing.T) {
	m := DefaultChargeModel()
	if _, err := m.DistanceForPower(0); err == nil {
		t.Error("zero power accepted")
	}
	if _, err := m.DistanceForPower(m.Alpha/(m.Beta*m.Beta) + 1); err == nil {
		t.Error("super-contact power accepted")
	}
	if _, err := m.DistanceForPower(1e-12); err == nil {
		t.Error("beyond-range power accepted")
	}
}

func TestCarrier(t *testing.T) {
	c := DefaultCarrier()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 915 MHz → ~32.8 cm.
	if wl := c.Wavelength(); wl < 0.32 || wl > 0.34 {
		t.Errorf("wavelength = %v m, want ≈0.328", wl)
	}
	if err := (Carrier{}).Validate(); err == nil {
		t.Error("zero-frequency carrier accepted")
	}
}
