package wpt

import (
	"errors"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func TestSteerFocusAlignsPhases(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(1.1, 2.3)
	if err := SteerFocus(a, victim); err != nil {
		t.Fatal(err)
	}
	// Focused power equals (ΣAᵢ)².
	var ampSum float64
	for _, e := range a.Emitters {
		ampSum += e.Gain * a.Model.Amplitude(e.Pos.Dist(victim))
	}
	if p := a.RFPowerAt(victim); math.Abs(p-ampSum*ampSum) > 1e-9*p {
		t.Errorf("focused power %v, want %v", p, ampSum*ampSum)
	}
}

func TestSteerNullRequiresTwoEmitters(t *testing.T) {
	a := NewArray(geom.Pt(0, 0))
	err := SteerNull(a, geom.Pt(0, 1))
	if !errors.Is(err, ErrNeedTwoEmitters) {
		t.Errorf("err = %v, want ErrNeedTwoEmitters", err)
	}
}

func TestSteerNullOutOfRange(t *testing.T) {
	a := twoEmitterArray()
	err := SteerNull(a, geom.Pt(0, a.Model.Range+5))
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
}

func TestSteerNullEqualizesOffAxis(t *testing.T) {
	// An off-axis victim has unequal element distances; the steerer must
	// equalize amplitudes via gains and still null exactly.
	a := twoEmitterArray()
	victim := geom.Pt(1.7, 0.9)
	if err := SteerNull(a, victim); err != nil {
		t.Fatal(err)
	}
	if p := a.RFPowerAt(victim); p > 1e-18 {
		t.Errorf("off-axis residual %v", p)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("steered array invalid: %v", err)
	}
}

func TestSteerResidualPlacesPower(t *testing.T) {
	for _, target := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		a := twoEmitterArray()
		victim := geom.Pt(0, 1.2)
		if err := SteerResidual(a, victim, target); err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if p := a.RFPowerAt(victim); math.Abs(p-target) > 0.01*target {
			t.Errorf("target %v: residual %v", target, p)
		}
	}
}

func TestSteerResidualRejectsImpossible(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(0, 1)
	if err := SteerResidual(a, victim, 1e9); err == nil {
		t.Error("unachievable residual accepted")
	}
	if err := SteerResidual(a, victim, -1); err == nil {
		t.Error("negative residual accepted")
	}
}

func TestExpectedNullResidual(t *testing.T) {
	// 2·amp²·σ² by definition.
	if got := ExpectedNullResidual(2, 0.01); math.Abs(got-2*4*1e-4) > 1e-15 {
		t.Errorf("ExpectedNullResidual = %v", got)
	}
}

func TestNullDepthDB(t *testing.T) {
	if d := NullDepthDB(100, 1); math.Abs(d-20) > 1e-9 {
		t.Errorf("depth = %v, want 20 dB", d)
	}
	if d := NullDepthDB(100, 0); !math.IsInf(d, 1) {
		t.Errorf("perfect null depth = %v, want +Inf", d)
	}
}

func TestSpoofBand(t *testing.T) {
	b := DefaultSpoofBand()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(b.Target()) {
		t.Error("band target outside band")
	}
	if b.Contains(b.DeadZoneW) {
		t.Error("dead-zone edge must be exclusive")
	}
	if !b.Contains(b.CarrierDetectW) {
		t.Error("carrier edge must be inclusive")
	}
	if err := (SpoofBand{CarrierDetectW: 1, DeadZoneW: 0.5}).Validate(); err == nil {
		t.Error("inverted band accepted")
	}
}

// With precision jitter the spoof runs at full drive and its expected
// residual sits inside the band.
func TestSteerSpoofFullDriveAtPrecisionJitter(t *testing.T) {
	a := twoEmitterArray()
	band := DefaultSpoofBand()
	victim := geom.Pt(0, 0.5)
	scale, err := SteerSpoof(a, victim, band)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1 {
		t.Fatalf("gain scale = %v, want 1 at precision jitter", scale)
	}
	amp := a.Emitters[0].Gain * a.Model.Amplitude(a.Emitters[0].Pos.Dist(victim))
	expected := ExpectedNullResidual(amp, a.PhaseJitterRad) + a.RFPowerAt(victim)
	if !band.Contains(expected) {
		t.Errorf("expected residual %v outside band [%v, %v)", expected, band.CarrierDetectW, band.DeadZoneW)
	}
}

// Commodity-grade jitter forces a gain reduction to keep the leakage
// under the dead zone — the observable fingerprint that makes the attack
// impractical without precision hardware.
func TestSteerSpoofScalesDownAtCommodityJitter(t *testing.T) {
	a := twoEmitterArray()
	a.PhaseJitterRad = 2 * math.Pi / 180 // 2°
	band := DefaultSpoofBand()
	victim := geom.Pt(0, 0.5)
	scale, err := SteerSpoof(a, victim, band)
	if err != nil {
		t.Fatal(err)
	}
	if scale >= 1 {
		t.Fatalf("gain scale = %v, want < 1 at 2° jitter", scale)
	}
	amp := a.Emitters[0].Gain * a.Model.Amplitude(a.Emitters[0].Pos.Dist(victim))
	if res := ExpectedNullResidual(amp, a.PhaseJitterRad); res > band.DeadZoneW/3+1e-12 {
		t.Errorf("scaled expected residual %v above safety ceiling", res)
	}
}

// Deep-null detuning: with essentially ideal hardware the steerer must
// detune deliberately so the victim's carrier detector still sees power.
func TestSteerSpoofDetunesTooDeepNull(t *testing.T) {
	a := twoEmitterArray()
	a.PhaseJitterRad = 1e-6
	band := DefaultSpoofBand()
	victim := geom.Pt(0, 3)
	if _, err := SteerSpoof(a, victim, band); err != nil {
		t.Fatal(err)
	}
	p := a.RFPowerAt(victim)
	if !band.Contains(p) {
		t.Errorf("deterministic residual %v outside band", p)
	}
}

func TestSteerSpoofValidatesBand(t *testing.T) {
	a := twoEmitterArray()
	if _, err := SteerSpoof(a, geom.Pt(0, 1), SpoofBand{}); err == nil {
		t.Error("zero band accepted")
	}
}
