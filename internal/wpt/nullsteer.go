package wpt

import (
	"errors"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// This file implements the phase/gain solvers that turn a coherent array
// into either a legitimate beamforming charger (SteerFocus) or a spoofing
// charger (SteerNull / SteerResidual). Null steering is the attack
// primitive: the array's superposed field is driven to (near) zero at the
// victim's rectenna, so the victim harvests nothing while the charger is
// parked next to it, visibly "charging".

// ErrNeedTwoEmitters is returned when a null is requested from an array
// with fewer than two active elements; a single coherent source cannot
// cancel itself.
var ErrNeedTwoEmitters = errors.New("wpt: null steering requires at least two emitters")

// ErrOutOfRange is returned when the steering target is outside the
// charging range of the emitters involved.
var ErrOutOfRange = errors.New("wpt: steering target out of charging range")

// ErrGainInfeasible is returned when amplitude equalization at the victim
// would require a drive gain outside [0, MaxGain].
var ErrGainInfeasible = errors.New("wpt: amplitude equalization exceeds gain limits")

// SteerFocus configures all emitters for constructive interference at the
// target: each element's electrical phase cancels its propagation phase so
// every contribution arrives in phase. This is legitimate beamforming; with
// k equal-amplitude elements the received RF power is k² times a single
// element's (array gain). All gains are set to 1.
func SteerFocus(a *Array, target geom.Point) error {
	a.invalidate()
	k := 2 * math.Pi / a.Carrier.Wavelength()
	inRange := false
	for i := range a.Emitters {
		d := a.Emitters[i].Pos.Dist(target)
		a.Emitters[i].Gain = 1
		a.Emitters[i].PhaseRad = normPhase(k * d)
		if d <= a.Model.Range {
			inRange = true
		}
	}
	if !inRange {
		return fmt.Errorf("steer focus at %v: %w", target, ErrOutOfRange)
	}
	return nil
}

// SteerNull configures the array for destructive interference at the
// victim: the first two emitters are driven in exact anti-phase with
// amplitudes equalized at the victim, and any further elements are muted.
// After a successful call the noise-free superposed field at the victim is
// exactly zero; hardware phase jitter leaves the small residual predicted
// by ExpectedNullResidual.
func SteerNull(a *Array, victim geom.Point) error {
	return SteerResidual(a, victim, 0)
}

// SteerResidual configures a detuned null that leaves approximately
// targetRF watts of RF power at the victim. The attack uses this to park
// the residual inside the spoofing band: above the node's carrier-presence
// threshold (so the node sees an active charger) yet below the rectifier
// dead zone (so it harvests nothing). targetRF = 0 requests an exact null.
//
// Construction: with amplitudes equalized to A at the victim and a phase
// offset of π+δ between the two elements, the residual power is
// 4A²·sin²(δ/2); solving for δ places the residual. targetRF above 4A²
// (the constructive maximum) is an error.
func SteerResidual(a *Array, victim geom.Point, targetRF float64) error {
	if len(a.Emitters) < 2 {
		return ErrNeedTwoEmitters
	}
	if targetRF < 0 {
		return fmt.Errorf("wpt: negative target residual %v", targetRF)
	}
	a.invalidate()
	e0, e1 := &a.Emitters[0], &a.Emitters[1]
	d0, d1 := e0.Pos.Dist(victim), e1.Pos.Dist(victim)
	if d0 > a.Model.Range || d1 > a.Model.Range {
		return fmt.Errorf("steer null at %v: %w", victim, ErrOutOfRange)
	}
	a0, a1 := a.Model.Amplitude(d0), a.Model.Amplitude(d1)

	// Equalize amplitudes at the victim. Drive the stronger path at gain 1
	// and boost the weaker; if the required boost exceeds MaxGain, instead
	// attenuate the stronger path (always feasible since gains may be < 1).
	g0, g1 := 1.0, 1.0
	switch {
	case a0 > a1:
		if need := a0 / a1; need <= a.MaxGain {
			g1 = need
		} else {
			g0 = a1 / a0
		}
	case a1 > a0:
		if need := a1 / a0; need <= a.MaxGain {
			g0 = need
		} else {
			g1 = a0 / a1
		}
	}
	amp := g0 * a0 // equalized per-element amplitude at the victim
	if amp <= 0 {
		return ErrGainInfeasible
	}

	// Detune angle for the requested residual: targetRF = 4·amp²·sin²(δ/2).
	maxRF := 4 * amp * amp
	if targetRF > maxRF {
		return fmt.Errorf("wpt: target residual %v exceeds achievable %v at victim", targetRF, maxRF)
	}
	delta := 2 * math.Asin(math.Sqrt(targetRF/maxRF))

	k := 2 * math.Pi / a.Carrier.Wavelength()
	e0.Gain, e1.Gain = g0, g1
	// Zero total phase for element 0 at the victim; element 1 arrives at
	// π+δ relative to it.
	e0.PhaseRad = normPhase(k * d0)
	e1.PhaseRad = normPhase(k*d1 + math.Pi + delta)
	for i := 2; i < len(a.Emitters); i++ {
		a.Emitters[i].Gain = 0
	}
	return nil
}

// ExpectedNullResidual returns the expected residual RF power at a nulled
// victim caused by phase jitter: for two equalized elements of amplitude
// amp with independent phase errors of RMS sigma radians, the mean residual
// is 2·amp²·sigma² to second order.
func ExpectedNullResidual(amp, sigma float64) float64 {
	return 2 * amp * amp * sigma * sigma
}

// NullDepthDB returns the achieved null depth in dB: the ratio of the
// constructive-focus RF power at the victim to the actual (residual) RF
// power, 10·log10(P_focus / P_null). Deeper (larger) is better for the
// attacker. Residuals at or below zero report +Inf (a perfect null).
func NullDepthDB(focusPower, nullPower float64) float64 {
	if nullPower <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(focusPower/nullPower)
}

// SpoofBand is the RF power interval at the victim within which the
// charging spoof is invisible to the node: the carrier detector sees an
// active charger while the rectifier harvests nothing.
type SpoofBand struct {
	// CarrierDetectW is the node's carrier-presence detection threshold in
	// watts. Envelope detectors are far more sensitive than harvesting
	// rectifiers; −40 dBm is typical.
	CarrierDetectW float64
	// DeadZoneW mirrors the rectifier dead zone; residual RF strictly
	// below it harvests zero DC.
	DeadZoneW float64
}

// DefaultSpoofBand pairs a −40 dBm carrier detector with the default
// rectifier's −10 dBm dead zone.
func DefaultSpoofBand() SpoofBand {
	return SpoofBand{CarrierDetectW: 1e-7, DeadZoneW: DefaultRectifier().DeadZoneW}
}

// Validate reports whether the band is well formed.
func (b SpoofBand) Validate() error {
	if b.CarrierDetectW <= 0 || b.DeadZoneW <= b.CarrierDetectW {
		return fmt.Errorf("wpt: spoof band requires 0 < CarrierDetectW (%v) < DeadZoneW (%v)", b.CarrierDetectW, b.DeadZoneW)
	}
	return nil
}

// Contains reports whether RF power p sits inside the spoofing band.
func (b SpoofBand) Contains(p float64) bool {
	return p >= b.CarrierDetectW && p < b.DeadZoneW
}

// Target returns the residual power the attacker should steer for: the
// geometric middle of the band, maximizing margin against both edges.
func (b SpoofBand) Target() float64 {
	return math.Sqrt(b.CarrierDetectW * b.DeadZoneW)
}

// SteerSpoof configures the array for a stealthy charging spoof at the
// victim: amplitudes equalized, phases in exact anti-phase, so the only
// residual RF at the victim's rectenna is the phase-jitter leakage — which
// keeps the victim's carrier detector satisfied (an active charger is
// present) while staying under the rectifier dead zone (nothing harvests).
//
// The attacker prefers to drive at full gain: neighbors and spectrum
// monitors can observe emission levels, and a full-power charger is
// indistinguishable from a genuine one. Gains are scaled down only when
// the hardware's jitter would leak past a third of the dead zone — the
// precision of the phase shifters, not transmit power, is what buys
// stealth. The applied gain scale in (0,1] is returned; the session's
// electrical cost is proportional to its square.
func SteerSpoof(a *Array, victim geom.Point, band SpoofBand) (float64, error) {
	if err := band.Validate(); err != nil {
		return 0, err
	}
	if err := SteerNull(a, victim); err != nil {
		return 0, err
	}
	// Per-element amplitude at the victim after equalization (full drive).
	amp := a.Emitters[0].Gain * a.Model.Amplitude(a.Emitters[0].Pos.Dist(victim))
	sigma := a.PhaseJitterRad
	expected := ExpectedNullResidual(amp, sigma)

	// Hardware too coarse: jitter leaks past the safety ceiling under the
	// dead zone, and only a gain reduction saves the spoof (at the price
	// of an observably weak emission).
	ceiling := band.DeadZoneW / 3
	scale := 1.0
	if expected > ceiling {
		scale = math.Sqrt(ceiling / expected)
		expected = ceiling
	}
	// Null too deep: the victim's carrier detector would see nothing and
	// the node would treat the session as failed. Detune the anti-phase
	// deliberately so the deterministic residual tops the expected jitter
	// leakage up to the band's sweet spot.
	if target := band.Target(); expected < target {
		// SteerResidual works at its own (unscaled) equalized amplitude;
		// pre-divide so the residual lands right after scaling.
		if err := SteerResidual(a, victim, (target-expected)/(scale*scale)); err != nil {
			return 0, err
		}
	}
	if scale != 1 {
		a.Emitters[0].Gain *= scale
		a.Emitters[1].Gain *= scale
	}
	return scale, nil
}

// normPhase wraps a phase into (−π, π] for numeric hygiene.
func normPhase(phi float64) float64 {
	phi = math.Mod(phi, 2*math.Pi)
	if phi > math.Pi {
		phi -= 2 * math.Pi
	} else if phi <= -math.Pi {
		phi += 2 * math.Pi
	}
	return phi
}
