package wpt

import (
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func twoEmitterArray() *Array {
	return NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
}

func TestArrayValidate(t *testing.T) {
	a := twoEmitterArray()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.Emitters[0].Gain = a.MaxGain + 1
	if err := a.Validate(); err == nil {
		t.Error("over-gain emitter accepted")
	}
	a.Emitters[0].Gain = 1
	a.Emitters[1].PhaseRad = math.NaN()
	if err := a.Validate(); err == nil {
		t.Error("NaN phase accepted")
	}
	if err := (&Array{Model: DefaultChargeModel(), Carrier: DefaultCarrier(), MaxGain: 1}).Validate(); err == nil {
		t.Error("empty array accepted")
	}
}

// Coherent gain: k equal in-phase contributions at the same point give k²
// times a single element's power — the superposition is in amplitude.
func TestCoherentGainIsQuadratic(t *testing.T) {
	target := geom.Pt(0, 2)
	for k := 1; k <= 4; k++ {
		positions := make([]geom.Point, k)
		for i := range positions {
			// All elements at the same spot so distances are equal.
			positions[i] = geom.Pt(0, 0)
		}
		a := NewArray(positions...)
		if err := SteerFocus(a, target); err != nil {
			t.Fatal(err)
		}
		single := a.Model.Power(2.0)
		got := a.RFPowerAt(target)
		want := float64(k*k) * single
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("k=%d: power %v, want %v", k, got, want)
		}
		// The incoherent model predicts only k×, not k².
		inc := a.IncoherentPowerAt(target)
		if math.Abs(inc-float64(k)*single) > 1e-9*inc {
			t.Errorf("k=%d: incoherent power %v, want %v", k, inc, float64(k)*single)
		}
	}
}

// Anti-phase equal-amplitude pair nulls exactly, regardless of position.
func TestAntiPhaseNullsExactly(t *testing.T) {
	for _, victim := range []geom.Point{geom.Pt(0, 1), geom.Pt(2, 3), geom.Pt(-1, 0.6)} {
		a := twoEmitterArray()
		if err := SteerNull(a, victim); err != nil {
			t.Fatalf("victim %v: %v", victim, err)
		}
		if p := a.RFPowerAt(victim); p > 1e-20 {
			t.Errorf("victim %v: residual %v, want ≈0", victim, p)
		}
	}
}

// The null is local: a monitor a few wavelengths away still sees strong
// field — the property that makes the spoof invisible to neighbors.
func TestNullIsLocal(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(0, 1.5)
	if err := SteerNull(a, victim); err != nil {
		t.Fatal(err)
	}
	monitor := geom.Pt(2.0, 1.5) // 2 m to the side, ~6 wavelengths
	pm := a.RFPowerAt(monitor)
	single := a.Model.Power(monitor.Dist(a.Emitters[0].Pos))
	if pm < single/10 {
		t.Errorf("monitor power %v collapsed with the null (single-element %v)", pm, single)
	}
}

func TestFieldRangeCutoff(t *testing.T) {
	a := twoEmitterArray()
	far := geom.Pt(0, a.Model.Range+1)
	if p := a.RFPowerAt(far); p != 0 {
		t.Errorf("power beyond range = %v", p)
	}
	if err := SteerFocus(a, far); err == nil {
		t.Error("focus beyond range accepted")
	}
}

func TestMutedEmitterContributesNothing(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(0, 1)
	if err := SteerFocus(a, victim); err != nil {
		t.Fatal(err)
	}
	full := a.RFPowerAt(victim)
	a.Emitters[1].Gain = 0
	solo := a.RFPowerAt(victim)
	if solo >= full {
		t.Errorf("muting an emitter did not reduce power: %v -> %v", full, solo)
	}
	want := math.Pow(a.Emitters[0].Gain*a.Model.Amplitude(a.Emitters[0].Pos.Dist(victim)), 2)
	if math.Abs(solo-want) > 1e-12 {
		t.Errorf("solo power %v, want %v", solo, want)
	}
}

func TestRFPowerWithJitter(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(0, 1)
	if err := SteerNull(a, victim); err != nil {
		t.Fatal(err)
	}
	// Zero errors reproduce the noise-free value.
	p, err := a.RFPowerAtWithJitter(victim, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-20 {
		t.Errorf("zero-jitter residual %v", p)
	}
	// Jitter breaks the null by roughly amp²·Δε².
	amp := a.Emitters[0].Gain * a.Model.Amplitude(a.Emitters[0].Pos.Dist(victim))
	eps := 1e-3
	p, err = a.RFPowerAtWithJitter(victim, []float64{eps, -eps})
	if err != nil {
		t.Fatal(err)
	}
	want := amp * amp * (2 * eps) * (2 * eps)
	if math.Abs(p-want) > 0.01*want {
		t.Errorf("jitter residual %v, want ≈%v", p, want)
	}
	// Wrong error count must error.
	if _, err := a.RFPowerAtWithJitter(victim, []float64{0}); err == nil {
		t.Error("mismatched jitter slice accepted")
	}
}

func TestTranslateAndMoveTo(t *testing.T) {
	a := twoEmitterArray()
	a.MoveTo(geom.Pt(10, 20))
	c := a.Centroid()
	if math.Abs(c.X-10) > 1e-12 || math.Abs(c.Y-20) > 1e-12 {
		t.Errorf("centroid after MoveTo = %v", c)
	}
	// Element geometry preserved.
	spacing := a.Emitters[0].Pos.Dist(a.Emitters[1].Pos)
	if math.Abs(spacing-0.6) > 1e-12 {
		t.Errorf("element spacing after MoveTo = %v", spacing)
	}
}
