package wpt_test

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// The spoofing primitive in three lines: focus delivers watts, the null
// delivers nothing, and the rectifier's dead zone makes "almost nothing"
// into exactly nothing.
func ExampleSteerNull() {
	victim := geom.Pt(0, 1)
	rect := wpt.DefaultRectifier()

	arr := wpt.NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
	if err := wpt.SteerFocus(arr, victim); err != nil {
		fmt.Println(err)
		return
	}
	focused := rect.DCOutput(arr.RFPowerAt(victim))

	if err := wpt.SteerNull(arr, victim); err != nil {
		fmt.Println(err)
		return
	}
	nulled := rect.DCOutput(arr.RFPowerAt(victim))

	fmt.Printf("focused harvest > 1 W: %v\n", focused > 1)
	fmt.Printf("nulled harvest: %v W\n", nulled)
	// Output:
	// focused harvest > 1 W: true
	// nulled harvest: 0 W
}

// A spoof keeps the victim's carrier detector satisfied while staying
// under the rectifier dead zone.
func ExampleSteerSpoof() {
	victim := geom.Pt(0, 1)
	band := wpt.DefaultSpoofBand()
	arr := wpt.NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
	scale, err := wpt.SteerSpoof(arr, victim, band)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("full drive: %v\n", scale == 1)
	fmt.Printf("harvest: %v W\n", wpt.DefaultRectifier().DCOutput(arr.RFPowerAt(victim)))
	// Output:
	// full drive: true
	// harvest: 0 W
}

// With three or more elements the attacker can null the victim AND keep
// the field silent at a would-be witness.
func ExampleSteerNullKeeping() {
	victim := geom.Pt(0, 0.8)
	witness := geom.Pt(2.5, 1.2)
	arr := wpt.NewArray(wpt.LinearArray(geom.Pt(0, 0), 4, 0.4)...)
	if _, err := wpt.SteerNullKeeping(arr, victim, witness, 1e-5); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("victim harvest: %v W\n", wpt.DefaultRectifier().DCOutput(arr.RFPowerAt(victim)))
	fmt.Printf("witness silent: %v\n", arr.RFPowerAt(witness) < 1e-3)
	// Output:
	// victim harvest: 0 W
	// witness silent: true
}
