// Package wpt models wireless power transfer: the empirical far-field
// charging model used across the WRSN charging literature, coherent
// multi-emitter superposition of the radiated field, and the nonlinear
// RF-to-DC rectifier at the receiving node.
//
// The charging spoofing attack lives at the intersection of two effects this
// package captures:
//
//  1. Superposition is linear in field amplitude but quadratic in power: two
//     coherent carriers arriving in anti-phase with equal amplitude cancel,
//     and the received RF power collapses to (near) zero even though both
//     emitters radiate at full strength.
//  2. Rectification is nonlinear: below a dead-zone input power the diode
//     does not conduct and the harvested DC output is exactly zero, so even
//     an imperfect null (residual RF above zero) harvests nothing.
//
// A charger that nulls its field at a victim node therefore "charges"
// it — carrier present, session active — while delivering no energy.
package wpt

import (
	"errors"
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed used to convert the carrier
// frequency into a wavelength, in meters per second.
const SpeedOfLight = 299_792_458.0

// ChargeModel is the empirical point-to-point charging model
//
//	P(d) = α / (d + β)²   for d ≤ Range, else 0
//
// with P in watts and d in meters. α captures transmit power and antenna
// gains; β regularizes the near field. These are the constants fitted from
// commodity 915 MHz charger measurements in the WRSN charging literature.
type ChargeModel struct {
	// Alpha is the numerator constant in watts·m².
	Alpha float64
	// Beta is the near-field regularizer in meters.
	Beta float64
	// Range is the effective charging radius in meters; beyond it the
	// received power is treated as zero.
	Range float64
}

// DefaultChargeModel returns the parameterization used throughout the
// reproduction. The β constant is the empirical near-field regularizer
// fitted for commodity chargers; α is scaled to resonant-coupling
// magnitudes (watt-level delivery at sub-meter docking range, a ~20-minute
// full recharge) as assumed across the WRSN mobile-charging literature.
func DefaultChargeModel() ChargeModel {
	return ChargeModel{Alpha: 4.28, Beta: 0.2316, Range: 8}
}

// Validate reports whether the model constants are physically meaningful.
func (m ChargeModel) Validate() error {
	switch {
	case m.Alpha <= 0:
		return fmt.Errorf("wpt: Alpha must be positive, got %v", m.Alpha)
	case m.Beta < 0:
		return fmt.Errorf("wpt: Beta must be non-negative, got %v", m.Beta)
	case m.Range <= 0:
		return fmt.Errorf("wpt: Range must be positive, got %v", m.Range)
	}
	return nil
}

// Power returns the RF power received at distance d from a single emitter,
// in watts. It is zero beyond the model range and for negative d.
func (m ChargeModel) Power(d float64) float64 {
	if d < 0 || d > m.Range {
		return 0
	}
	s := d + m.Beta
	return m.Alpha / (s * s)
}

// Amplitude returns the field amplitude (in √W, so that |amplitude|² is
// power) at distance d, ignoring the range cutoff. Superposition sums
// amplitudes, not powers.
func (m ChargeModel) Amplitude(d float64) float64 {
	return math.Sqrt(m.Alpha) / (d + m.Beta)
}

// DistanceForPower returns the distance at which a single emitter delivers
// the given RF power, or an error if the power is unreachable (greater than
// the contact power or non-positive).
func (m ChargeModel) DistanceForPower(p float64) (float64, error) {
	if p <= 0 {
		return 0, errors.New("wpt: power must be positive")
	}
	max := m.Alpha / (m.Beta * m.Beta)
	if p > max {
		return 0, fmt.Errorf("wpt: power %v exceeds contact power %v", p, max)
	}
	d := math.Sqrt(m.Alpha/p) - m.Beta
	if d > m.Range {
		return 0, fmt.Errorf("wpt: power %v only reachable beyond range %v m", p, m.Range)
	}
	return d, nil
}

// Carrier describes the RF carrier shared by all coherent emitters on a
// charger.
type Carrier struct {
	// FrequencyHz is the carrier frequency. Commodity WRSN chargers
	// operate in the 915 MHz ISM band.
	FrequencyHz float64
}

// DefaultCarrier returns the 915 MHz ISM-band carrier.
func DefaultCarrier() Carrier { return Carrier{FrequencyHz: 915e6} }

// Wavelength returns the carrier wavelength in meters.
func (c Carrier) Wavelength() float64 { return SpeedOfLight / c.FrequencyHz }

// Validate reports whether the carrier is physically meaningful.
func (c Carrier) Validate() error {
	if c.FrequencyHz <= 0 {
		return fmt.Errorf("wpt: carrier frequency must be positive, got %v", c.FrequencyHz)
	}
	return nil
}
