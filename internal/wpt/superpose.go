package wpt

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// Emitter is one coherent radiating element on a charger. All emitters on a
// charger share the carrier; each has its own position (the elements are
// physically separated on the charger chassis), drive gain, and electrical
// phase offset.
type Emitter struct {
	// Pos is the element position in field coordinates, meters.
	Pos geom.Point
	// Gain scales the element's field amplitude relative to the reference
	// charge model; 1 drives the element at nominal power, 0 mutes it.
	// Gain must be in [0, MaxGain] of the owning array.
	Gain float64
	// PhaseRad is the electrical phase offset applied at the element, in
	// radians.
	PhaseRad float64
}

// Array is a coherent multi-emitter charger front end. A conventional
// charger is an Array with a single element; the spoofing attack requires
// at least two.
type Array struct {
	Model    ChargeModel
	Carrier  Carrier
	Emitters []Emitter
	// MaxGain bounds each element's drive gain; nominal hardware allows a
	// small boost above 1 to equalize amplitudes during null steering.
	MaxGain float64
	// PhaseJitterRad is the RMS phase error of the hardware phase shifters,
	// in radians. It bounds the achievable null depth: a perfect null needs
	// exact anti-phase, and jitter leaves residual field.
	PhaseJitterRad float64

	// cache memoizes field probes for the current configuration; see
	// fieldCache. It is owned by this exact *Array value — a copy of the
	// struct shares the pointer but fails the cache's owner check and
	// transparently recomputes.
	cache *fieldCache
}

// DefaultPhaseJitterRad is the RMS phase error of the attack rig's
// precision phase shifters (1 mrad ≈ 0.06°). Null depth degrades as the
// square of this jitter; commodity shifters (~2°) leave residuals above
// the rectifier dead zone and make the spoof infeasible — the evaluation
// sweeps this to map the feasibility boundary.
const DefaultPhaseJitterRad = 1e-3

// NewArray builds an array with the given element positions, nominal gain 1
// and zero phase on every element, default charge model and carrier, a 25%
// gain headroom, and precision-grade phase jitter (DefaultPhaseJitterRad).
func NewArray(positions ...geom.Point) *Array {
	ems := make([]Emitter, len(positions))
	for i, p := range positions {
		ems[i] = Emitter{Pos: p, Gain: 1}
	}
	return &Array{
		Model:          DefaultChargeModel(),
		Carrier:        DefaultCarrier(),
		Emitters:       ems,
		MaxGain:        1.25,
		PhaseJitterRad: DefaultPhaseJitterRad,
	}
}

// Clone returns an independent deep copy of the array: the emitter slice
// is copied so steering or moving the clone never disturbs the original.
// The field cache does not carry over; the clone rebuilds it lazily on
// first probe. Clone reads the source without mutating it, so a shared
// template array may be cloned concurrently.
func (a *Array) Clone() *Array {
	b := *a
	b.Emitters = append([]Emitter(nil), a.Emitters...)
	b.cache = nil
	return &b
}

// Validate reports whether the array configuration is usable.
func (a *Array) Validate() error {
	if err := a.Model.Validate(); err != nil {
		return err
	}
	if err := a.Carrier.Validate(); err != nil {
		return err
	}
	if len(a.Emitters) == 0 {
		return fmt.Errorf("wpt: array has no emitters")
	}
	if a.MaxGain <= 0 {
		return fmt.Errorf("wpt: MaxGain must be positive, got %v", a.MaxGain)
	}
	for i, e := range a.Emitters {
		if e.Gain < 0 || e.Gain > a.MaxGain {
			return fmt.Errorf("wpt: emitter %d gain %v outside [0, %v]", i, e.Gain, a.MaxGain)
		}
		if math.IsNaN(e.PhaseRad) || math.IsInf(e.PhaseRad, 0) {
			return fmt.Errorf("wpt: emitter %d phase is not finite", i)
		}
	}
	return nil
}

// Translate moves every emitter by the same offset, repositioning the
// charger chassis without altering element geometry.
func (a *Array) Translate(offset geom.Point) {
	for i := range a.Emitters {
		a.Emitters[i].Pos = a.Emitters[i].Pos.Add(offset)
	}
	a.invalidate()
}

// MoveTo repositions the array so its centroid sits at dst, preserving the
// relative element layout.
func (a *Array) MoveTo(dst geom.Point) {
	pts := make([]geom.Point, len(a.Emitters))
	for i, e := range a.Emitters {
		pts[i] = e.Pos
	}
	a.Translate(dst.Sub(geom.Centroid(pts)))
}

// Centroid returns the array's chassis position (emitter centroid).
func (a *Array) Centroid() geom.Point {
	pts := make([]geom.Point, len(a.Emitters))
	for i, e := range a.Emitters {
		pts[i] = e.Pos
	}
	return geom.Centroid(pts)
}

// FieldAt returns the complex superposed field amplitude at point x, in √W.
// Each element contributes gain·A(dᵢ)·exp(j(φᵢ − k·dᵢ)) where A is the
// single-emitter amplitude from the charge model, k = 2π/λ the wavenumber,
// and dᵢ the element-to-point distance. Elements beyond the charging range
// contribute nothing.
//
// Repeated probes of an unchanged configuration are served from a
// position-keyed cache; any mutation of the array (steering, movement, a
// direct emitter write) invalidates it. Cached and uncached results are
// bit-identical.
func (a *Array) FieldAt(x geom.Point) complex128 {
	c, warm := a.cacheFor()
	if !warm {
		return c.fieldSum(a, x)
	}
	if c.entries == nil {
		c.entries = make(map[geom.Point]complex128, 8)
	} else if v, ok := c.entries[x]; ok {
		return v
	}
	v := c.fieldSum(a, x)
	c.entries[x] = v
	return v
}

// RFPowerAt returns the superposed RF power at point x in watts: the squared
// magnitude of the coherent field sum.
func (a *Array) RFPowerAt(x geom.Point) float64 {
	f := a.FieldAt(x)
	return real(f)*real(f) + imag(f)*imag(f)
}

// RFPowerAtAll returns the superposed RF power at every point, in watts.
// It is the batch form of RFPowerAt: the cache is validated once for the
// whole batch instead of per probe, which is what campaign witness scans
// and testbed sweeps want. When dst has sufficient capacity the result
// reuses it; otherwise a new slice is allocated.
func (a *Array) RFPowerAtAll(dst []float64, points []geom.Point) []float64 {
	if cap(dst) < len(points) {
		dst = make([]float64, len(points))
	}
	dst = dst[:len(points)]
	c, warm := a.cacheFor()
	if !warm {
		for i, x := range points {
			f := c.fieldSum(a, x)
			dst[i] = real(f)*real(f) + imag(f)*imag(f)
		}
		return dst
	}
	if c.entries == nil {
		c.entries = make(map[geom.Point]complex128, len(points))
	}
	for i, x := range points {
		f, ok := c.entries[x]
		if !ok {
			f = c.fieldSum(a, x)
			c.entries[x] = f
		}
		dst[i] = real(f)*real(f) + imag(f)*imag(f)
	}
	return dst
}

// RFPowerAtWithJitter returns the RF power at x when each element's phase is
// perturbed by the given per-element phase errors (radians). Callers sample
// the errors from N(0, PhaseJitterRad²) to evaluate realistic null depth.
// len(errs) must equal the emitter count.
//
// The jitter-independent geometry terms (per-emitter distance and
// amplitude at x) are memoized for the most recent probe position, so
// Monte-Carlo loops that redraw phase errors at a fixed victim pay only
// the phase rotation per draw.
func (a *Array) RFPowerAtWithJitter(x geom.Point, errs []float64) (float64, error) {
	if len(errs) != len(a.Emitters) {
		return 0, fmt.Errorf("wpt: got %d phase errors for %d emitters", len(errs), len(a.Emitters))
	}
	c, _ := a.cacheFor()
	terms := c.jitterTermsAt(a, x)
	var sum complex128
	for i, e := range a.Emitters {
		t := terms[i]
		if t.skip {
			continue
		}
		sum += cmplx.Rect(t.amp, e.PhaseRad+errs[i]-c.k*t.d)
	}
	return real(sum)*real(sum) + imag(sum)*imag(sum), nil
}

// IncoherentPowerAt returns the power sum Σ|Aᵢ|² at x, the value a naive
// (linear, incoherent) superposition model predicts. The gap between this
// and RFPowerAt is the nonlinear superposition effect the paper exploits.
func (a *Array) IncoherentPowerAt(x geom.Point) float64 {
	var sum float64
	for _, e := range a.Emitters {
		if e.Gain == 0 {
			continue
		}
		d := e.Pos.Dist(x)
		if d > a.Model.Range {
			continue
		}
		amp := e.Gain * a.Model.Amplitude(d)
		sum += amp * amp
	}
	return sum
}
