package wpt

import (
	"errors"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func fourElementArray() *Array {
	return NewArray(LinearArray(geom.Pt(0, 0), 4, 0.4)...)
}

func TestSteerNullKeeping(t *testing.T) {
	a := fourElementArray()
	victim := geom.Pt(0, 0.8)
	witness := geom.Pt(2.5, 1.2)
	const keepRF = 0.05
	scale, err := SteerNullKeeping(a, victim, witness, keepRF)
	if err != nil {
		t.Fatal(err)
	}
	if p := a.RFPowerAt(victim); p > 1e-15 {
		t.Errorf("victim residual %v, want ≈0", p)
	}
	want := keepRF * scale * scale
	if p := a.RFPowerAt(witness); math.Abs(p-want) > 1e-6*math.Max(want, 1) {
		t.Errorf("witness power %v, want %v (scale %v)", p, want, scale)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("steered array invalid: %v", err)
	}
}

func TestSteerNullKeepingThreeElements(t *testing.T) {
	a := NewArray(LinearArray(geom.Pt(0, 0), 3, 0.5)...)
	if _, err := SteerNullKeeping(a, geom.Pt(0, 1), geom.Pt(1.5, 0.5), 0.01); err != nil {
		t.Fatalf("three elements should satisfy two constraints: %v", err)
	}
	if p := a.RFPowerAt(geom.Pt(0, 1)); p > 1e-15 {
		t.Errorf("victim residual %v", p)
	}
}

func TestSteerNullKeepingNeedsThree(t *testing.T) {
	a := twoEmitterArray()
	_, err := SteerNullKeeping(a, geom.Pt(0, 1), geom.Pt(1, 1), 0.01)
	if !errors.Is(err, ErrNeedThreeEmitters) {
		t.Errorf("err = %v", err)
	}
}

func TestSteerNullKeepingOutOfRange(t *testing.T) {
	a := fourElementArray()
	_, err := SteerNullKeeping(a, geom.Pt(0, 100), geom.Pt(1, 1), 0.01)
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
}

func TestSteerNullKeepingDegenerate(t *testing.T) {
	a := fourElementArray()
	p := geom.Pt(0, 1.3)
	if _, err := SteerNullKeeping(a, p, p, 0.01); err == nil {
		t.Error("identical victim and witness accepted")
	}
}

func TestSteerNullKeepingRejectsNegative(t *testing.T) {
	a := fourElementArray()
	if _, err := SteerNullKeeping(a, geom.Pt(0, 1), geom.Pt(1, 1), -1); err == nil {
		t.Error("negative kept power accepted")
	}
}

// The two-element array fundamentally cannot do this: nulling the victim
// pins the witness field — there is no freedom left. The k≥3 solution is
// what changes the game.
func TestTwoElementCannotControlWitness(t *testing.T) {
	a := twoEmitterArray()
	victim := geom.Pt(0, 0.8)
	witness := geom.Pt(2.5, 1.2)
	if err := SteerNull(a, victim); err != nil {
		t.Fatal(err)
	}
	pinned := a.RFPowerAt(witness)
	// Re-steering the null cannot move the witness field (up to gain
	// equalization choices, the null fixes the relative drive).
	if err := SteerNull(a, victim); err != nil {
		t.Fatal(err)
	}
	if again := a.RFPowerAt(witness); math.Abs(again-pinned) > 1e-12 {
		t.Errorf("two-element witness field moved: %v -> %v", pinned, again)
	}
}

func TestLinearArray(t *testing.T) {
	pts := LinearArray(geom.Pt(10, 5), 4, 0.4)
	if len(pts) != 4 {
		t.Fatal("count")
	}
	if c := geom.Centroid(pts); math.Abs(c.X-10) > 1e-12 || math.Abs(c.Y-5) > 1e-12 {
		t.Errorf("centroid = %v", c)
	}
	if d := pts[0].Dist(pts[3]); math.Abs(d-1.2) > 1e-12 {
		t.Errorf("span = %v", d)
	}
}
