package wpt

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// refFieldAt is the pre-cache field expression, kept verbatim as the
// equivalence oracle: cached probes must be bit-identical to it, since
// the golden Outcome digests hash values derived from this sum.
func refFieldAt(a *Array, x geom.Point) complex128 {
	k := 2 * math.Pi / a.Carrier.Wavelength()
	var sum complex128
	for _, e := range a.Emitters {
		if e.Gain == 0 {
			continue
		}
		d := e.Pos.Dist(x)
		if d > a.Model.Range {
			continue
		}
		amp := e.Gain * a.Model.Amplitude(d)
		sum += cmplx.Rect(amp, e.PhaseRad-k*d)
	}
	return sum
}

func refPowerWithJitter(a *Array, x geom.Point, errs []float64) float64 {
	k := 2 * math.Pi / a.Carrier.Wavelength()
	var sum complex128
	for i, e := range a.Emitters {
		if e.Gain == 0 {
			continue
		}
		d := e.Pos.Dist(x)
		if d > a.Model.Range {
			continue
		}
		amp := e.Gain * a.Model.Amplitude(d)
		sum += cmplx.Rect(amp, e.PhaseRad+errs[i]-k*d)
	}
	return real(sum)*real(sum) + imag(sum)*imag(sum)
}

func testArray() *Array {
	a := NewArray(geom.Point{X: 0, Y: 0}, geom.Point{X: 0.5, Y: 0})
	a.Emitters[0].PhaseRad = 0.3
	a.Emitters[1].PhaseRad = -1.1
	a.Emitters[1].Gain = 1.2
	return a
}

func probePoints(n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64()*12 - 2, Y: rng.Float64()*12 - 2}
	}
	return pts
}

// TestFieldCacheBitIdentical probes many positions repeatedly and
// requires exact (==, not tolerance) agreement with the reference
// expression on both cold and warm paths.
func TestFieldCacheBitIdentical(t *testing.T) {
	a := testArray()
	rng := rand.New(rand.NewSource(7))
	pts := probePoints(200, rng)
	for round := 0; round < 3; round++ {
		for _, x := range pts {
			got, want := a.FieldAt(x), refFieldAt(a, x)
			if got != want {
				t.Fatalf("round %d: FieldAt(%v) = %v, want %v (bit-identical)", round, x, got, want)
			}
		}
	}
}

// TestFieldCacheInvalidation mutates the array through every mutation
// route and checks probes track the new configuration exactly.
func TestFieldCacheInvalidation(t *testing.T) {
	a := testArray()
	x := geom.Point{X: 3, Y: 1}
	mutate := []struct {
		name string
		fn   func()
	}{
		{"Translate", func() { a.Translate(geom.Point{X: 0.25, Y: -0.5}) }},
		{"MoveTo", func() { a.MoveTo(geom.Point{X: 2, Y: 2}) }},
		{"SteerFocus", func() {
			if err := SteerFocus(a, x); err != nil {
				t.Fatal(err)
			}
		}},
		{"SteerNull", func() {
			if err := SteerNull(a, x); err != nil {
				t.Fatal(err)
			}
		}},
		{"direct gain write", func() { a.Emitters[0].Gain = 0.7 }},
		{"direct phase write", func() { a.Emitters[1].PhaseRad = 2.2 }},
		{"model change", func() { a.Model.Range = 9 }},
		{"carrier change", func() { a.Carrier.FrequencyHz = 868e6 }},
	}
	for _, m := range mutate {
		// Warm the cache at x, mutate, then require the fresh value.
		a.FieldAt(x)
		a.FieldAt(x)
		m.fn()
		if got, want := a.FieldAt(x), refFieldAt(a, x); got != want {
			t.Fatalf("%s: stale cache: got %v, want %v", m.name, got, want)
		}
	}
}

// TestFieldCacheCopySafety checks that a by-value copy of an Array (the
// mobile charger's scratch-steering pattern) neither reads the
// original's entries nor poisons them.
func TestFieldCacheCopySafety(t *testing.T) {
	a := testArray()
	x := geom.Point{X: 4, Y: 0.5}
	orig := a.FieldAt(x)
	a.FieldAt(x) // warm

	cp := *a
	cp.Emitters = append([]Emitter(nil), a.Emitters...)
	cp.Emitters[0].PhaseRad += 1.5
	if got, want := cp.FieldAt(x), refFieldAt(&cp, x); got != want {
		t.Fatalf("copy served stale value: got %v, want %v", got, want)
	}
	if got := a.FieldAt(x); got != orig {
		t.Fatalf("original poisoned by copy: got %v, want %v", got, orig)
	}
}

// TestRFPowerAtAllMatchesScalar checks the batch probe equals per-point
// probes exactly, with and without a reused destination buffer.
func TestRFPowerAtAllMatchesScalar(t *testing.T) {
	a := testArray()
	rng := rand.New(rand.NewSource(11))
	pts := probePoints(64, rng)
	want := make([]float64, len(pts))
	for i, x := range pts {
		want[i] = a.RFPowerAt(x)
	}
	got := a.RFPowerAtAll(nil, pts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	buf := make([]float64, 0, len(pts))
	got2 := a.RFPowerAtAll(buf, pts)
	if &got2[0] != &buf[:1][0] {
		t.Fatal("batch did not reuse the provided buffer")
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("buffered batch[%d] = %v, want %v", i, got2[i], want[i])
		}
	}
}

// TestJitterMemoBitIdentical redraws phase errors at a fixed victim (the
// Monte-Carlo loop shape) and at moving points, requiring exact
// agreement with the reference.
func TestJitterMemoBitIdentical(t *testing.T) {
	a := testArray()
	rng := rand.New(rand.NewSource(3))
	errs := make([]float64, len(a.Emitters))
	victim := geom.Point{X: 2.5, Y: 0.75}
	for i := 0; i < 100; i++ {
		for j := range errs {
			errs[j] = rng.NormFloat64() * 1e-3
		}
		x := victim
		if i%5 == 4 {
			x = geom.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
		}
		got, err := a.RFPowerAtWithJitter(x, errs)
		if err != nil {
			t.Fatal(err)
		}
		if want := refPowerWithJitter(a, x, errs); got != want {
			t.Fatalf("draw %d at %v: got %v, want %v", i, x, got, want)
		}
	}
	if _, err := a.RFPowerAtWithJitter(victim, errs[:1]); err == nil {
		t.Fatal("mismatched errs length accepted")
	}
}

// TestCachedProbeAllocFree proves warm probes of a fixed position set do
// not allocate.
func TestCachedProbeAllocFree(t *testing.T) {
	a := testArray()
	pts := probePoints(16, rand.New(rand.NewSource(5)))
	for _, x := range pts { // warm every entry
		a.RFPowerAt(x)
		a.RFPowerAt(x)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, x := range pts {
			a.RFPowerAt(x)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm RFPowerAt allocates %v times per sweep, want 0", allocs)
	}
	buf := make([]float64, len(pts))
	allocs = testing.AllocsPerRun(1000, func() {
		buf = a.RFPowerAtAll(buf, pts)
	})
	if allocs != 0 {
		t.Fatalf("warm RFPowerAtAll allocates %v times per batch, want 0", allocs)
	}
}
