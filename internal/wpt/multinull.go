package wpt

// Constrained beamforming for arrays with three or more elements: the
// attacker's answer to neighbor witnessing. Two complex field constraints
// — zero at the victim, a prescribed amplitude at a second point — form a
// 2×k linear system over the element drive weights; with k ≥ 3 it is
// underdetermined and the minimal-power solution comes from the
// pseudoinverse. The attack use is the *double null*: zero at the victim
// AND (near) zero at the witness, so the witness has no field to attest
// and the witnessing countermeasure collects no evidence. (Harvest
// verification, which measures at the victim itself, remains undefeated
// at every array order.)

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// ErrNeedThreeEmitters is returned when a two-point field constraint is
// requested from an array with fewer than three active elements.
var ErrNeedThreeEmitters = errors.New("wpt: constrained null requires at least three emitters")

// SteerNullKeeping drives the array so the superposed field is (exactly)
// zero at victim while the RF power at keep equals keepRF. Requires at
// least three emitters, with both points inside charging range of every
// element used. Drive weights are the minimal-power solution; if any
// element would exceed MaxGain the whole solution is scaled down, which
// preserves the null and reduces the kept power by the square of the
// scale (the returned value).
func SteerNullKeeping(a *Array, victim, keep geom.Point, keepRF float64) (float64, error) {
	k := len(a.Emitters)
	if k < 3 {
		return 0, ErrNeedThreeEmitters
	}
	if keepRF < 0 {
		return 0, fmt.Errorf("wpt: negative kept power %v", keepRF)
	}
	wave := 2 * math.Pi / a.Carrier.Wavelength()

	// Propagation matrix rows: victim, keep.
	row := func(p geom.Point) ([]complex128, error) {
		out := make([]complex128, k)
		for j, e := range a.Emitters {
			d := e.Pos.Dist(p)
			if d > a.Model.Range {
				return nil, fmt.Errorf("wpt: point %v out of range of element %d: %w", p, j, ErrOutOfRange)
			}
			out[j] = cmplx.Rect(a.Model.Amplitude(d), -wave*d)
		}
		return out, nil
	}
	m0, err := row(victim)
	if err != nil {
		return 0, err
	}
	m1, err := row(keep)
	if err != nil {
		return 0, err
	}

	// Minimal-norm c solving M c = b with M ∈ C^{2×k}:
	// c = Mᴴ (M Mᴴ)⁻¹ b. The 2×2 Gram matrix inverts in closed form.
	b0 := complex(0, 0)
	b1 := complex(math.Sqrt(keepRF), 0)
	var g00, g01, g10, g11 complex128
	for j := 0; j < k; j++ {
		g00 += m0[j] * cmplx.Conj(m0[j])
		g01 += m0[j] * cmplx.Conj(m1[j])
		g10 += m1[j] * cmplx.Conj(m0[j])
		g11 += m1[j] * cmplx.Conj(m1[j])
	}
	det := g00*g11 - g01*g10
	if cmplx.Abs(det) < 1e-18 {
		// Victim and witness are (numerically) the same direction; the two
		// constraints conflict.
		return 0, fmt.Errorf("wpt: victim and witness constraints are degenerate")
	}
	// y = (M Mᴴ)⁻¹ b
	y0 := (g11*b0 - g01*b1) / det
	y1 := (-g10*b0 + g00*b1) / det
	c := make([]complex128, k)
	maxAbs := 0.0
	for j := 0; j < k; j++ {
		c[j] = cmplx.Conj(m0[j])*y0 + cmplx.Conj(m1[j])*y1
		if ab := cmplx.Abs(c[j]); ab > maxAbs {
			maxAbs = ab
		}
	}
	scale := 1.0
	if maxAbs > a.MaxGain {
		scale = a.MaxGain / maxAbs
	}
	for j := 0; j < k; j++ {
		w := c[j] * complex(scale, 0)
		a.Emitters[j].Gain = cmplx.Abs(w)
		a.Emitters[j].PhaseRad = normPhase(cmplx.Phase(w))
	}
	return scale, nil
}

// LinearArray returns k emitter positions spaced `spacing` meters apart on
// a horizontal line centered at c — the chassis layouts used for the
// higher-order arrays in the counter-witnessing analysis.
func LinearArray(c geom.Point, k int, spacing float64) []geom.Point {
	pts := make([]geom.Point, k)
	off := -float64(k-1) / 2 * spacing
	for i := range pts {
		pts[i] = geom.Pt(c.X+off+float64(i)*spacing, c.Y)
	}
	return pts
}
