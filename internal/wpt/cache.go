package wpt

import (
	"math"
	"math/cmplx"
	"slices"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// fieldCache memoizes the superposed field at probed positions for one
// array configuration. Campaign sessions and experiment sweeps probe the
// same handful of node positions hundreds of times per steering, so the
// cache turns the per-emitter Hypot/Sqrt/Sincos work into a map hit.
//
// Correctness rests on two validations performed before any hit:
//
//   - owner: the cache belongs to exactly one *Array. Arrays are copied
//     by value in places (the mobile charger steers a scratch copy), and
//     a copy shares the cache pointer — the owner check rejects it, so a
//     copy can never read entries computed for (or poison the cache of)
//     the original. Holding the owner pointer also keeps the original
//     array reachable, so a dangling address can never be reused by a
//     different Array while the cache is alive.
//   - signature: a snapshot of the model, carrier, and emitter
//     configuration taken when the cache was built. Any mutation — the
//     steering solvers, Translate/MoveTo, or a caller writing an emitter
//     field directly — changes the signature and drops every entry.
//
// The entry map materializes lazily on the second probe of an unchanged
// configuration: one-shot probes of a freshly steered array (the mobile
// charger's delivery estimate) pay only the O(emitters) snapshot and
// never allocate a map.
type fieldCache struct {
	owner    *Array
	model    ChargeModel
	carrier  Carrier
	emitters []Emitter

	// k is the carrier wavenumber 2π/λ and sqrtAlpha the model's √α —
	// the per-call invariants of the field sum, precomputed once. Both
	// reproduce the original expression trees exactly (hoisting a pure
	// subexpression does not change IEEE-754 results), so cached and
	// uncached fields are bit-identical.
	k         float64
	sqrtAlpha float64

	entries map[geom.Point]complex128

	// jitterPt/jitterTerms memoize the per-emitter (distance, amplitude)
	// terms of the last jittered probe position. Monte-Carlo jitter loops
	// re-probe one victim position with fresh phase errors; the phase
	// changes every draw but the geometry does not.
	jitterPt    geom.Point
	jitterTerms []jitterTerm
}

// jitterTerm is the jitter-independent part of one emitter's
// contribution at a fixed probe point.
type jitterTerm struct {
	d, amp float64
	skip   bool
}

// matches reports whether the array still has the configuration the
// cache was built for.
func (c *fieldCache) matches(a *Array) bool {
	return c.owner == a && c.model == a.Model && c.carrier == a.Carrier &&
		slices.Equal(c.emitters, a.Emitters)
}

// newFieldCache snapshots the array's current configuration.
func newFieldCache(a *Array) *fieldCache {
	return &fieldCache{
		owner:     a,
		model:     a.Model,
		carrier:   a.Carrier,
		emitters:  slices.Clone(a.Emitters),
		k:         2 * math.Pi / a.Carrier.Wavelength(),
		sqrtAlpha: math.Sqrt(a.Model.Alpha),
	}
}

// cacheFor returns a cache valid for the array's current configuration,
// building a cold one (no entry map yet) when the configuration changed.
// The returned cache is warm — safe for entry lookups — only when warm
// is true.
func (a *Array) cacheFor() (c *fieldCache, warm bool) {
	c = a.cache
	if c == nil || !c.matches(a) {
		c = newFieldCache(a)
		a.cache = c
		return c, false
	}
	return c, true
}

// invalidate drops the cache immediately. Mutators call it so stale
// entries are released without waiting for the signature check.
func (a *Array) invalidate() { a.cache = nil }

// fieldSum computes the superposed field at x using the cache's
// precomputed constants. It is the single source of truth for the field
// expression; FieldAt serves hits from the entry map and misses from
// here.
func (c *fieldCache) fieldSum(a *Array, x geom.Point) complex128 {
	var sum complex128
	for _, e := range a.Emitters {
		if e.Gain == 0 {
			continue
		}
		d := e.Pos.Dist(x)
		if d > c.model.Range {
			continue
		}
		amp := e.Gain * (c.sqrtAlpha / (d + c.model.Beta))
		sum += cmplx.Rect(amp, e.PhaseRad-c.k*d)
	}
	return sum
}

// jitterTermsAt returns the jitter-independent per-emitter terms at x,
// memoizing the most recent probe position.
func (c *fieldCache) jitterTermsAt(a *Array, x geom.Point) []jitterTerm {
	if c.jitterTerms != nil && c.jitterPt == x {
		return c.jitterTerms
	}
	terms := c.jitterTerms[:0]
	for _, e := range a.Emitters {
		t := jitterTerm{skip: true}
		if e.Gain != 0 {
			d := e.Pos.Dist(x)
			if d <= c.model.Range {
				t = jitterTerm{d: d, amp: e.Gain * (c.sqrtAlpha / (d + c.model.Beta))}
			}
		}
		terms = append(terms, t)
	}
	c.jitterPt = x
	c.jitterTerms = terms
	return terms
}
