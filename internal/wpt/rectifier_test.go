package wpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectifierValidate(t *testing.T) {
	if err := DefaultRectifier().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Rectifier{
		{DeadZoneW: -1, SaturationW: 1, PeakEfficiency: 0.5, Knee: 1},
		{DeadZoneW: 1, SaturationW: 0.5, PeakEfficiency: 0.5, Knee: 1},
		{DeadZoneW: 0.1, SaturationW: 1, PeakEfficiency: 0, Knee: 1},
		{DeadZoneW: 0.1, SaturationW: 1, PeakEfficiency: 1.5, Knee: 1},
		{DeadZoneW: 0.1, SaturationW: 1, PeakEfficiency: 0.5, Knee: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rectifier %d passed validation", i)
		}
	}
}

// The dead zone is the attack's core lever: RF at or below it must
// harvest exactly zero, not merely little.
func TestDeadZoneIsExactlyZero(t *testing.T) {
	r := DefaultRectifier()
	for _, rf := range []float64{0, r.DeadZoneW / 2, r.DeadZoneW} {
		if out := r.DCOutput(rf); out != 0 {
			t.Errorf("DCOutput(%v) = %v, want exactly 0", rf, out)
		}
		if eff := r.Efficiency(rf); eff != 0 {
			t.Errorf("Efficiency(%v) = %v, want exactly 0", rf, eff)
		}
	}
	// Just above the dead zone the output must become positive.
	if out := r.DCOutput(r.DeadZoneW * 1.01); out <= 0 {
		t.Errorf("DCOutput just above dead zone = %v, want > 0", out)
	}
}

func TestDCOutputMonotone(t *testing.T) {
	r := DefaultRectifier()
	prev := -1.0
	for rf := 0.0; rf < 2*r.SaturationW; rf += r.SaturationW / 500 {
		out := r.DCOutput(rf)
		if out < prev-1e-12 {
			t.Fatalf("DC output decreased at rf=%v", rf)
		}
		prev = out
	}
}

func TestDCOutputMonotoneProperty(t *testing.T) {
	r := DefaultRectifier()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return r.DCOutput(lo) <= r.DCOutput(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturationClamp(t *testing.T) {
	r := DefaultRectifier()
	max := r.MaxDCOutput()
	for _, rf := range []float64{r.SaturationW, 2 * r.SaturationW, 100 * r.SaturationW} {
		if out := r.DCOutput(rf); math.Abs(out-max) > 1e-12 {
			t.Errorf("DCOutput(%v) = %v, want clamp at %v", rf, out, max)
		}
	}
}

func TestEfficiencyBounded(t *testing.T) {
	r := DefaultRectifier()
	for rf := 0.0; rf < 3*r.SaturationW; rf += r.SaturationW / 100 {
		eff := r.Efficiency(rf)
		if eff < 0 || eff > r.PeakEfficiency+1e-12 {
			t.Fatalf("efficiency %v out of [0, %v] at rf=%v", eff, r.PeakEfficiency, rf)
		}
	}
	// At saturation the efficiency reaches its peak.
	if eff := r.Efficiency(r.SaturationW); math.Abs(eff-r.PeakEfficiency) > 1e-9 {
		t.Errorf("efficiency at saturation = %v, want %v", eff, r.PeakEfficiency)
	}
}

func TestOutputNeverExceedsInput(t *testing.T) {
	r := DefaultRectifier()
	f := func(rfRaw float64) bool {
		rf := math.Abs(rfRaw)
		if math.IsInf(rf, 0) || math.IsNaN(rf) {
			return true
		}
		return r.DCOutput(rf) <= rf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
