package energy

import "fmt"

// RadioModel is the first-order radio energy model standard in the WSN
// literature: transmitting b bits over distance d costs
//
//	E_tx = b·(ElecJPerBit + AmpJPerBitM2·d²)
//
// and receiving b bits costs E_rx = b·ElecJPerBit. Sensing and idle
// listening are modeled as constant powers.
type RadioModel struct {
	// ElecJPerBit is the electronics energy per bit for both TX and RX.
	ElecJPerBit float64
	// AmpJPerBitM2 is the transmit amplifier energy per bit per m².
	AmpJPerBitM2 float64
	// SenseW is the constant sensing/processing power in watts.
	SenseW float64
	// IdleW is the idle listening power in watts.
	IdleW float64
}

// DefaultRadioModel returns the canonical first-order constants
// (50 nJ/bit electronics, 100 pJ/bit/m² amplifier) with the milliwatt-scale
// sensing and idle-listening draws of periodically-sampling motes, tuned so
// that node lifetimes land on the days scale the WRSN charging literature
// evaluates at.
func DefaultRadioModel() RadioModel {
	return RadioModel{
		ElecJPerBit:  50e-9,
		AmpJPerBitM2: 100e-12,
		SenseW:       5e-3,
		IdleW:        5e-3,
	}
}

// Validate reports whether the model constants are meaningful.
func (m RadioModel) Validate() error {
	switch {
	case m.ElecJPerBit < 0, m.AmpJPerBitM2 < 0, m.SenseW < 0, m.IdleW < 0:
		return fmt.Errorf("energy: radio model constants must be non-negative: %+v", m)
	}
	return nil
}

// TxEnergy returns the energy to transmit bits over distance d meters.
func (m RadioModel) TxEnergy(bits float64, d float64) float64 {
	return bits * (m.ElecJPerBit + m.AmpJPerBitM2*d*d)
}

// RxEnergy returns the energy to receive bits.
func (m RadioModel) RxEnergy(bits float64) float64 {
	return bits * m.ElecJPerBit
}

// Load summarizes a node's steady-state traffic duties, from which the
// model derives a constant drain power.
type Load struct {
	// GenBps is the bit rate of locally generated (sensed) data.
	GenBps float64
	// RelayBps is the bit rate of traffic received from children and
	// forwarded toward the sink.
	RelayBps float64
	// NextHopDist is the distance to the routing parent in meters.
	NextHopDist float64
}

// DrainWatts returns the node's steady-state power draw under the given
// load: sensing and idle baselines, reception of relayed traffic, and
// transmission of generated plus relayed traffic to the next hop.
func (m RadioModel) DrainWatts(l Load) float64 {
	tx := m.TxEnergy(l.GenBps+l.RelayBps, l.NextHopDist) // J per second
	rx := m.RxEnergy(l.RelayBps)
	return m.SenseW + m.IdleW + tx + rx
}
