package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func mustBattery(t *testing.T, capacity, level, quantum float64) *Battery {
	t.Helper()
	b, err := NewBattery(capacity, level, quantum)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBattery(t *testing.T) {
	if _, err := NewBattery(0, 0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewBattery(-5, 0, 1); err == nil {
		t.Error("negative capacity accepted")
	}
	b := mustBattery(t, 100, 150, 1)
	if b.Level() != 100 {
		t.Errorf("over-capacity initial level not clamped: %v", b.Level())
	}
	b = mustBattery(t, 100, -5, 1)
	if b.Level() != 0 {
		t.Errorf("negative initial level not clamped: %v", b.Level())
	}
	// Non-positive quantum gets the default.
	b = mustBattery(t, 100, 50, 0)
	if b.Quantum() != 0.5 {
		t.Errorf("default quantum = %v", b.Quantum())
	}
}

func TestChargeDrainConservation(t *testing.T) {
	b := mustBattery(t, 100, 40, 1)
	stored := b.Charge(30)
	if stored != 30 || b.Level() != 70 {
		t.Fatalf("Charge: stored=%v level=%v", stored, b.Level())
	}
	removed := b.Drain(50)
	if removed != 50 || b.Level() != 20 {
		t.Fatalf("Drain: removed=%v level=%v", removed, b.Level())
	}
}

func TestChargeTopsOut(t *testing.T) {
	b := mustBattery(t, 100, 90, 1)
	stored := b.Charge(30)
	if stored != 10 {
		t.Errorf("stored = %v, want 10", stored)
	}
	if b.Level() != 100 {
		t.Errorf("level = %v, want 100", b.Level())
	}
}

func TestDrainBottomsOut(t *testing.T) {
	b := mustBattery(t, 100, 5, 1)
	removed := b.Drain(30)
	if removed != 5 {
		t.Errorf("removed = %v, want 5", removed)
	}
	if !b.Depleted() {
		t.Error("battery should be depleted")
	}
}

func TestNegativeAmountsIgnored(t *testing.T) {
	b := mustBattery(t, 100, 50, 1)
	if b.Charge(-10) != 0 || b.Drain(-10) != 0 || b.Level() != 50 {
		t.Error("negative charge/drain changed state")
	}
}

func TestLevelInvariant(t *testing.T) {
	b := mustBattery(t, 100, 50, 1)
	f := func(ops []float64) bool {
		for _, op := range ops {
			if math.IsNaN(op) || math.IsInf(op, 0) {
				continue
			}
			op = math.Mod(op, 500)
			if op >= 0 {
				b.Charge(op)
			} else {
				b.Drain(-op)
			}
			if b.Level() < 0 || b.Level() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterRead(t *testing.T) {
	b := mustBattery(t, 100, 10.7, 0.5)
	if got := b.MeterRead(); got != 10.5 {
		t.Errorf("MeterRead = %v, want 10.5", got)
	}
	// A gain below the quantum can be invisible to the meter.
	before := b.MeterRead()
	b.Charge(0.2)
	if b.MeterRead() != before {
		t.Errorf("sub-quantum charge visible: %v -> %v", before, b.MeterRead())
	}
}

func TestTimeToDepletion(t *testing.T) {
	b := mustBattery(t, 100, 50, 1)
	if got := b.TimeToDepletion(5); got != 10 {
		t.Errorf("TimeToDepletion = %v, want 10", got)
	}
	if got := b.TimeToDepletion(0); !math.IsInf(got, 1) {
		t.Errorf("TimeToDepletion(0) = %v, want +Inf", got)
	}
}

func TestFractionAndSetLevel(t *testing.T) {
	b := mustBattery(t, 200, 50, 1)
	if f := b.Fraction(); f != 0.25 {
		t.Errorf("Fraction = %v", f)
	}
	b.SetLevel(1000)
	if b.Level() != 200 {
		t.Errorf("SetLevel did not clamp: %v", b.Level())
	}
}

func TestDepletedEpsilon(t *testing.T) {
	b := mustBattery(t, 100, 100, 1)
	b.Drain(100 - 1e-9) // leaves a floating-point crumb
	if !b.Depleted() {
		t.Errorf("crumb level %v should count as depleted", b.Level())
	}
}

func TestRadioModel(t *testing.T) {
	m := DefaultRadioModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (RadioModel{ElecJPerBit: -1}).Validate(); err == nil {
		t.Error("negative constant accepted")
	}
	// TX energy = bits·(elec + amp·d²).
	bits, d := 1000.0, 40.0
	want := bits * (m.ElecJPerBit + m.AmpJPerBitM2*d*d)
	if got := m.TxEnergy(bits, d); math.Abs(got-want) > 1e-15 {
		t.Errorf("TxEnergy = %v, want %v", got, want)
	}
	if got := m.RxEnergy(bits); got != bits*m.ElecJPerBit {
		t.Errorf("RxEnergy = %v", got)
	}
}

func TestDrainWattsComposition(t *testing.T) {
	m := DefaultRadioModel()
	l := Load{GenBps: 2000, RelayBps: 6000, NextHopDist: 30}
	want := m.SenseW + m.IdleW + m.TxEnergy(8000, 30) + m.RxEnergy(6000)
	got := m.DrainWatts(l)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("DrainWatts = %v, want %v", got, want)
	}
	// Relay load strictly increases drain.
	lighter := m.DrainWatts(Load{GenBps: 2000, RelayBps: 0, NextHopDist: 30})
	if lighter >= got {
		t.Error("relay traffic did not increase drain")
	}
}

func TestTxEnergyGrowsWithDistance(t *testing.T) {
	m := DefaultRadioModel()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1000)), math.Abs(math.Mod(b, 1000))
		lo, hi := math.Min(a, b), math.Max(a, b)
		return m.TxEnergy(1000, lo) <= m.TxEnergy(1000, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
