// Package energy models node-side energy: batteries with coulomb-counter
// metering, and the first-order radio consumption model that converts
// traffic load into a drain rate.
package energy

import (
	"fmt"
	"math"
)

// Battery is a sensor node's energy store. Levels are in joules. The zero
// value is a dead battery of zero capacity; construct with NewBattery.
//
// Metering matters for the attack: nodes do not observe their true charge,
// they read a coulomb counter with finite resolution (QuantumJ). A spoofed
// charging session that delivers less than one quantum is indistinguishable
// from an inefficient legitimate session at metering granularity.
type Battery struct {
	capacity float64
	level    float64
	quantum  float64
}

// NewBattery returns a battery with the given capacity (J), initial level
// (J, clamped to [0, capacity]) and meter quantum (J). A non-positive
// quantum gets the default 0.5 J resolution.
func NewBattery(capacity, level, quantum float64) (*Battery, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("energy: capacity must be positive, got %v", capacity)
	}
	if quantum <= 0 {
		quantum = 0.5
	}
	b := &Battery{capacity: capacity, quantum: quantum}
	b.level = clamp(level, 0, capacity)
	return b, nil
}

// Clone returns an independent copy of the battery with identical
// capacity, level, and meter quantum. Snapshot forks use it to give each
// forked world its own energy state.
func (b *Battery) Clone() *Battery {
	c := *b
	return &c
}

// Capacity returns the battery capacity in joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Level returns the true charge level in joules. Simulation code may read
// it; node-side logic should use MeterRead.
func (b *Battery) Level() float64 { return b.level }

// Fraction returns Level/Capacity in [0,1].
func (b *Battery) Fraction() float64 { return b.level / b.capacity }

// depletedEpsJ absorbs floating-point residue when a drain lands exactly on
// empty; levels below it count as dead.
const depletedEpsJ = 1e-6

// Depleted reports whether the battery is empty (the node is dead).
func (b *Battery) Depleted() bool { return b.level <= depletedEpsJ }

// MeterRead returns the level as the node's coulomb counter reports it:
// rounded down to the meter quantum.
func (b *Battery) MeterRead() float64 {
	return math.Floor(b.level/b.quantum) * b.quantum
}

// Quantum returns the meter resolution in joules.
func (b *Battery) Quantum() float64 { return b.quantum }

// Charge adds up to j joules and returns the amount actually stored, which
// is less than j when the battery tops out. Negative j is ignored and
// returns 0.
func (b *Battery) Charge(j float64) float64 {
	if j <= 0 {
		return 0
	}
	stored := min(j, b.capacity-b.level)
	b.level += stored
	return stored
}

// Drain removes up to j joules and returns the amount actually removed,
// which is less than j when the battery empties. Negative j is ignored and
// returns 0.
func (b *Battery) Drain(j float64) float64 {
	if j <= 0 {
		return 0
	}
	removed := min(j, b.level)
	b.level -= removed
	return removed
}

// SetLevel forces the level (clamped to [0, capacity]); used by scenario
// setup and tests, not by simulation dynamics.
func (b *Battery) SetLevel(j float64) { b.level = clamp(j, 0, b.capacity) }

// TimeToDepletion returns how long the battery lasts under a constant drain
// of watts, in seconds. It returns +Inf for a non-positive drain.
func (b *Battery) TimeToDepletion(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(1)
	}
	return b.level / watts
}

func clamp(x, lo, hi float64) float64 {
	return max(lo, min(hi, x))
}
