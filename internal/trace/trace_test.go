package trace

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func TestGenerateCounts(t *testing.T) {
	for _, pat := range []Deployment{DeployUniform, DeployClustered, DeployGrid, DeployCorridor} {
		specs, err := Generate(rng.New(1).Split("gen"), DeployConfig{Pattern: pat, N: 57})
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if len(specs) != 57 {
			t.Errorf("%v: %d specs", pat, len(specs))
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(rng.New(1), DeployConfig{N: 0}); err == nil {
		t.Error("zero N accepted")
	}
	if _, err := Generate(rng.New(1), DeployConfig{N: 5, Pattern: Deployment(99)}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestGenerateInField(t *testing.T) {
	cfg := DeployConfig{Pattern: DeployClustered, N: 80}
	specs, err := Generate(rng.New(2).Split("field"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// applyDefaults sized the field; regenerate the default for checking.
	check := cfg
	if err := (&check).applyDefaults(); err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if !check.Field.Contains(s.Pos) {
			t.Errorf("node %d at %v outside field %+v", i, s.Pos, check.Field)
		}
		if s.GenBps < check.GenBpsMin || s.GenBps > check.GenBpsMax {
			t.Errorf("node %d gen %v outside bounds", i, s.GenBps)
		}
		if s.InitialFrac < check.InitialFracMin || s.InitialFrac > check.InitialFracMax {
			t.Errorf("node %d frac %v outside bounds", i, s.InitialFrac)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(rng.New(3).Split("det"), DeployConfig{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rng.New(3).Split("det"), DeployConfig{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs between identical generations", i)
		}
	}
}

func TestDeploymentString(t *testing.T) {
	if DeployUniform.String() != "uniform" || DeployCorridor.String() != "corridor" {
		t.Error("deployment names wrong")
	}
	if Deployment(42).String() == "" {
		t.Error("unknown deployment empty string")
	}
}

func TestScenarioBuildConnected(t *testing.T) {
	for _, n := range []int{50, 150, 400} {
		nw, _, err := DefaultScenario(11, n).Build()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if nw.ConnectedCount() != nw.Len() {
			t.Errorf("n=%d: %d/%d connected", n, nw.ConnectedCount(), nw.Len())
		}
	}
}

func TestScenarioBuildDeterministic(t *testing.T) {
	a, _, err := DefaultScenario(5, 60).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DefaultScenario(5, 60).Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		na, _ := a.Node(wrsn.NodeID(i))
		nb, _ := b.Node(wrsn.NodeID(i))
		if na.Pos != nb.Pos || na.GenBps != nb.GenBps {
			t.Fatalf("node %d differs across identical builds", i)
		}
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	a, _, err := DefaultScenario(1, 40).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DefaultScenario(2, 40).Build()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < a.Len(); i++ {
		na, _ := a.Node(wrsn.NodeID(i))
		nb, _ := b.Node(wrsn.NodeID(i))
		if na.Pos == nb.Pos {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical placements")
	}
}

func TestCorridorHasKeyNodes(t *testing.T) {
	sc := DefaultScenario(9, 80)
	sc.Deploy.Pattern = DeployCorridor
	nw, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if keys := nw.KeyNodes(); len(keys) < 10 {
		t.Errorf("corridor produced only %d key nodes", len(keys))
	}
}

func TestExplicitSink(t *testing.T) {
	sc := Scenario{
		Seed:   3,
		Deploy: DeployConfig{N: 30},
		Sink:   geom.Pt(0, 0),
	}
	nw, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.Sink() != geom.Pt(0, 0) {
		t.Errorf("sink = %v", nw.Sink())
	}
}
