// Package trace generates reproducible workloads: node deployments with the
// spatial patterns used in the paper's evaluation (uniform, clustered, grid,
// corridor) and heterogeneous sensing-rate assignments. All generation is
// driven by rng.Stream so scenarios replay exactly from a seed.
package trace

import (
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Deployment selects a spatial placement pattern.
type Deployment int

// Deployment patterns. Uniform scatter is the default evaluation setting;
// Clustered concentrates nodes around hotspots with sparse bridges between
// them (rich in articulation points); Grid is the regular testbed layout;
// Corridor is a long thin strip, the pipeline-monitoring topology where
// every interior relay is a key node.
const (
	DeployUniform Deployment = iota + 1
	DeployClustered
	DeployGrid
	DeployCorridor
)

// String implements fmt.Stringer.
func (d Deployment) String() string {
	switch d {
	case DeployUniform:
		return "uniform"
	case DeployClustered:
		return "clustered"
	case DeployGrid:
		return "grid"
	case DeployCorridor:
		return "corridor"
	default:
		return fmt.Sprintf("deployment(%d)", int(d))
	}
}

// DeployConfig parameterizes Generate.
type DeployConfig struct {
	// Pattern selects the placement pattern; the zero value gets
	// DeployUniform.
	Pattern Deployment
	// N is the number of nodes; must be positive.
	N int
	// Field is the deployment area; a zero Rect gets a square sized so the
	// default comm range keeps uniform deployments connected.
	Field geom.Rect
	// Clusters is the hotspot count for DeployClustered; non-positive gets
	// max(2, N/25).
	Clusters int
	// GenBpsMin/Max bound the per-node sensed data rate; unset gets
	// [0.5, 2]× the wrsn default.
	GenBpsMin, GenBpsMax float64
	// InitialFracMin/Max bound the initial battery fraction; unset gets
	// [0.55, 0.95] so depletion times stagger naturally.
	InitialFracMin, InitialFracMax float64
}

func (c *DeployConfig) applyDefaults() error {
	if c.N <= 0 {
		return fmt.Errorf("trace: N must be positive, got %d", c.N)
	}
	if c.Pattern == 0 {
		c.Pattern = DeployUniform
	}
	if c.Field.Width() == 0 && c.Field.Height() == 0 {
		if c.Pattern == DeployCorridor {
			// A corridor is long and thin: ~25 m of pipeline per node keeps
			// consecutive hops linked (50 m radio) while every stretch of
			// the chain stays an articulation point.
			c.Field = geom.NewRect(geom.Pt(0, 0), geom.Pt(25*float64(c.N), 60))
		} else {
			// Scale the field with N to hold density roughly constant:
			// ~36 m spacing keeps a 50 m disk graph connected but sparse.
			side := 36 * math.Sqrt(float64(c.N))
			c.Field = geom.Square(side)
		}
	}
	if c.Clusters <= 0 {
		c.Clusters = c.N / 25
		if c.Clusters < 2 {
			c.Clusters = 2
		}
	}
	if c.GenBpsMin <= 0 {
		c.GenBpsMin = 0.5 * wrsn.DefaultGenBps
	}
	if c.GenBpsMax < c.GenBpsMin {
		c.GenBpsMax = 2 * wrsn.DefaultGenBps
	}
	if c.InitialFracMin <= 0 {
		c.InitialFracMin = 0.55
	}
	if c.InitialFracMax < c.InitialFracMin {
		c.InitialFracMax = 0.95
	}
	return nil
}

// Generate produces node specs under the given pattern. The same stream
// state and config always produce the same deployment.
func Generate(r *rng.Stream, cfg DeployConfig) ([]wrsn.NodeSpec, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	var pts []geom.Point
	switch cfg.Pattern {
	case DeployUniform:
		pts = uniformPoints(r, cfg)
	case DeployClustered:
		pts = clusteredPoints(r, cfg)
	case DeployGrid:
		pts = gridPoints(r, cfg)
	case DeployCorridor:
		pts = corridorPoints(r, cfg)
	default:
		return nil, fmt.Errorf("trace: unknown deployment pattern %v", cfg.Pattern)
	}
	specs := make([]wrsn.NodeSpec, len(pts))
	for i, p := range pts {
		specs[i] = wrsn.NodeSpec{
			Pos:         p,
			GenBps:      r.Uniform(cfg.GenBpsMin, cfg.GenBpsMax),
			InitialFrac: r.Uniform(cfg.InitialFracMin, cfg.InitialFracMax),
		}
	}
	return specs, nil
}

func uniformPoints(r *rng.Stream, cfg DeployConfig) []geom.Point {
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		pts[i] = geom.Pt(
			r.Uniform(cfg.Field.Min.X, cfg.Field.Max.X),
			r.Uniform(cfg.Field.Min.Y, cfg.Field.Max.Y),
		)
	}
	return pts
}

func clusteredPoints(r *rng.Stream, cfg DeployConfig) []geom.Point {
	centers := uniformPoints(r, DeployConfig{
		N: cfg.Clusters, Field: cfg.Field,
		GenBpsMin: 1, GenBpsMax: 1, InitialFracMin: 1, InitialFracMax: 1,
	})
	// Cluster spread: tight enough that clusters stay distinct, wide
	// enough for intra-cluster connectivity.
	spread := math.Min(cfg.Field.Width(), cfg.Field.Height()) / (3 * math.Sqrt(float64(cfg.Clusters)))
	pts := make([]geom.Point, 0, cfg.N)
	// Reserve a slice of nodes as inter-cluster bridges laid on the
	// segments between consecutive cluster centers; these sparse relays
	// are the articulation points the attack targets.
	bridges := cfg.N / 6
	members := cfg.N - bridges
	for i := 0; i < members; i++ {
		c := centers[i%len(centers)]
		p := geom.Pt(c.X+r.NormMeanStd(0, spread), c.Y+r.NormMeanStd(0, spread))
		pts = append(pts, cfg.Field.Clamp(p))
	}
	for i := 0; i < bridges; i++ {
		a := centers[i%len(centers)]
		b := centers[(i+1)%len(centers)]
		t := r.Uniform(0.25, 0.75)
		p := a.Lerp(b, t)
		jitter := spread / 4
		p = geom.Pt(p.X+r.NormMeanStd(0, jitter), p.Y+r.NormMeanStd(0, jitter))
		pts = append(pts, cfg.Field.Clamp(p))
	}
	return pts
}

func gridPoints(r *rng.Stream, cfg DeployConfig) []geom.Point {
	cols := int(math.Ceil(math.Sqrt(float64(cfg.N))))
	rows := (cfg.N + cols - 1) / cols
	dx := cfg.Field.Width() / float64(cols)
	dy := cfg.Field.Height() / float64(rows)
	jitter := math.Min(dx, dy) * 0.1
	pts := make([]geom.Point, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		cx := cfg.Field.Min.X + (float64(i%cols)+0.5)*dx
		cy := cfg.Field.Min.Y + (float64(i/cols)+0.5)*dy
		p := geom.Pt(cx+r.Uniform(-jitter, jitter), cy+r.Uniform(-jitter, jitter))
		pts = append(pts, cfg.Field.Clamp(p))
	}
	return pts
}

func corridorPoints(r *rng.Stream, cfg DeployConfig) []geom.Point {
	// A strip along the field's horizontal midline; the height is capped
	// so consecutive nodes (≈25 m apart along x) stay within the 50 m
	// radio disk even at opposite strip edges.
	height := math.Min(cfg.Field.Height(), 30)
	midY := cfg.Field.Center().Y
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		t := (float64(i) + r.Uniform(0, 0.9)) / float64(cfg.N)
		pts[i] = geom.Pt(
			cfg.Field.Min.X+t*cfg.Field.Width(),
			midY+r.Uniform(-height/2, height/2),
		)
	}
	return pts
}
