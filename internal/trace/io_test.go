package trace

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig := DefaultScenario(77, 60)
	orig.Deploy.Pattern = DeployClustered
	orig.Deploy.Clusters = 4
	orig.CommRange = 45

	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// The round-tripped scenario must build the identical network.
	a, _, err := orig.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Sink() != b.Sink() {
		t.Fatalf("round trip changed the network: %d/%v vs %d/%v",
			a.Len(), a.Sink(), b.Len(), b.Sink())
	}
	for i := 0; i < a.Len(); i++ {
		na, _ := a.Node(wrsn.NodeID(i))
		nb, _ := b.Node(wrsn.NodeID(i))
		if na.Pos != nb.Pos || na.GenBps != nb.GenBps {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
}

func TestScenarioFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	sc := DefaultScenario(5, 30)
	if err := sc.SaveScenario(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 5 || back.Deploy.N != 30 {
		t.Errorf("loaded %+v", back)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"pattern":"hexagonal","n":5}`)); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestExplicitFieldRoundTrip(t *testing.T) {
	orig := DefaultScenario(3, 40)
	orig.Deploy.Pattern = DeployCorridor
	orig.Deploy.Field = fieldFromDims(1000, 30)
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Deploy.Field.Width() != 1000 || back.Deploy.Field.Height() != 30 {
		t.Errorf("field lost in round trip: %+v", back.Deploy.Field)
	}
}
