package trace

import (
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Scenario bundles everything needed to reproduce one experimental setup:
// a seed, a deployment config, and network parameters. Building the same
// scenario twice yields identical networks.
type Scenario struct {
	// Seed drives all randomness for the scenario.
	Seed uint64
	// Deploy parameterizes node placement.
	Deploy DeployConfig
	// CommRange is the radio range; non-positive gets the wrsn default.
	CommRange float64
	// SinkAtCenter places the sink at the field center (the evaluation
	// default); otherwise Sink is used as given.
	SinkAtCenter bool
	// Sink is the explicit sink location when SinkAtCenter is false.
	Sink geom.Point
	// RequireConnected makes Build retry placement until every node routes
	// to the sink (up to MaxPlacementTries), the standard evaluation
	// assumption.
	RequireConnected bool
	// Policy selects the routing objective; zero gets the wrsn default.
	Policy wrsn.RoutingPolicy
}

// MaxPlacementTries bounds the resampling loop for RequireConnected
// scenarios.
const MaxPlacementTries = 64

// DefaultScenario returns the evaluation baseline: n nodes uniformly
// deployed around a centered sink, fully connected.
func DefaultScenario(seed uint64, n int) Scenario {
	return Scenario{
		Seed:             seed,
		Deploy:           DeployConfig{Pattern: DeployUniform, N: n},
		SinkAtCenter:     true,
		RequireConnected: true,
	}
}

// Build constructs the network for the scenario. It also returns the
// stream used, already advanced past placement, so callers can draw
// further scenario randomness (request jitter, detector noise) that stays
// decoupled from placement.
func (s Scenario) Build() (*wrsn.Network, *rng.Stream, error) {
	root := rng.New(s.Seed)
	place := root.Split("placement")
	rest := root.Split("post-placement")

	tries := 1
	if s.RequireConnected {
		tries = MaxPlacementTries
	}
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		cfg := s.Deploy // copy; applyDefaults mutates
		specs, err := Generate(place, cfg)
		if err != nil {
			return nil, nil, err
		}
		sink := s.Sink
		if s.SinkAtCenter {
			pts := make([]geom.Point, len(specs))
			for i := range specs {
				pts[i] = specs[i].Pos
			}
			sink = geom.BoundingBox(pts).Center()
		}
		nw, err := wrsn.NewNetwork(specs, wrsn.Config{Sink: sink, CommRange: s.CommRange, Policy: s.Policy})
		if err != nil {
			return nil, nil, err
		}
		if s.RequireConnected && nw.ConnectedCount() != nw.Len() {
			// Repair rather than resample: pull each stranded node inside
			// radio range of a connected one. Deterministic under the
			// placement stream and convergent, where whole-field
			// resampling becomes hopeless at large N.
			repairPlacement(place, specs, nw)
			nw, err = wrsn.NewNetwork(specs, wrsn.Config{Sink: sink, CommRange: s.CommRange, Policy: s.Policy})
			if err != nil {
				return nil, nil, err
			}
		}
		if !s.RequireConnected || nw.ConnectedCount() == nw.Len() {
			return nw, rest, nil
		}
		lastErr = fmt.Errorf("trace: placement attempt %d left %d/%d nodes disconnected",
			attempt+1, nw.Len()-nw.ConnectedCount(), nw.Len())
	}
	return nil, nil, fmt.Errorf("trace: no connected placement after %d tries: %w", tries, lastErr)
}

// repairPlacement relocates each disconnected node to a random offset
// within 80% of radio range of a random connected node, mutating specs in
// place. One pass usually suffices; chains of stranded nodes resolve over
// the caller's rebuild because newly reachable anchors join the pool.
func repairPlacement(r *rng.Stream, specs []wrsn.NodeSpec, nw *wrsn.Network) {
	var anchors []geom.Point
	for _, n := range nw.Nodes() {
		if nw.Connected(n.ID) {
			anchors = append(anchors, n.Pos)
		}
	}
	if len(anchors) == 0 {
		anchors = []geom.Point{nw.Sink()}
	}
	reach := 0.8 * nw.CommRange()
	for _, n := range nw.Nodes() {
		if nw.Connected(n.ID) {
			continue
		}
		anchor := anchors[r.Intn(len(anchors))]
		angle := r.Uniform(0, 2*math.Pi)
		dist := r.Uniform(0.3, 1) * reach
		p := geom.Pt(anchor.X+dist*math.Cos(angle), anchor.Y+dist*math.Sin(angle))
		specs[n.ID] = wrsn.NodeSpec{
			Pos:         p,
			GenBps:      n.GenBps,
			BatteryJ:    n.Battery.Capacity(),
			InitialFrac: n.Battery.Level() / n.Battery.Capacity(),
		}
		anchors = append(anchors, p)
	}
}
