package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// fieldFromDims rebuilds the deployment rectangle from stored dimensions.
func fieldFromDims(w, h float64) geom.Rect {
	return geom.NewRect(geom.Pt(0, 0), geom.Pt(w, h))
}

// Scenario JSON I/O: scenarios are tiny, fully deterministic descriptions
// (a seed plus configuration), so sharing the JSON reproduces the exact
// network anywhere. cmd/wrsn-sim reads and writes these.

// scenarioJSON is the stable wire format; it mirrors Scenario but keeps
// the deployment pattern symbolic so files stay readable and versionable.
type scenarioJSON struct {
	Seed             uint64  `json:"seed"`
	Pattern          string  `json:"pattern"`
	N                int     `json:"n"`
	FieldW           float64 `json:"field_w,omitempty"`
	FieldH           float64 `json:"field_h,omitempty"`
	Clusters         int     `json:"clusters,omitempty"`
	GenBpsMin        float64 `json:"gen_bps_min,omitempty"`
	GenBpsMax        float64 `json:"gen_bps_max,omitempty"`
	InitialFracMin   float64 `json:"initial_frac_min,omitempty"`
	InitialFracMax   float64 `json:"initial_frac_max,omitempty"`
	CommRange        float64 `json:"comm_range,omitempty"`
	SinkAtCenter     bool    `json:"sink_at_center"`
	SinkX            float64 `json:"sink_x,omitempty"`
	SinkY            float64 `json:"sink_y,omitempty"`
	RequireConnected bool    `json:"require_connected"`
}

func patternName(d Deployment) string {
	if d == 0 {
		return DeployUniform.String()
	}
	return d.String()
}

func patternByName(name string) (Deployment, error) {
	for _, d := range []Deployment{DeployUniform, DeployClustered, DeployGrid, DeployCorridor} {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown deployment pattern %q", name)
}

// WriteJSON serializes the scenario.
func (s Scenario) WriteJSON(w io.Writer) error {
	j := scenarioJSON{
		Seed:             s.Seed,
		Pattern:          patternName(s.Deploy.Pattern),
		N:                s.Deploy.N,
		FieldW:           s.Deploy.Field.Width(),
		FieldH:           s.Deploy.Field.Height(),
		Clusters:         s.Deploy.Clusters,
		GenBpsMin:        s.Deploy.GenBpsMin,
		GenBpsMax:        s.Deploy.GenBpsMax,
		InitialFracMin:   s.Deploy.InitialFracMin,
		InitialFracMax:   s.Deploy.InitialFracMax,
		CommRange:        s.CommRange,
		SinkAtCenter:     s.SinkAtCenter,
		SinkX:            s.Sink.X,
		SinkY:            s.Sink.Y,
		RequireConnected: s.RequireConnected,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(j); err != nil {
		return fmt.Errorf("trace: encode scenario: %w", err)
	}
	return nil
}

// ReadJSON deserializes a scenario.
func ReadJSON(r io.Reader) (Scenario, error) {
	var j scenarioJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return Scenario{}, fmt.Errorf("trace: decode scenario: %w", err)
	}
	pat, err := patternByName(j.Pattern)
	if err != nil {
		return Scenario{}, err
	}
	s := Scenario{
		Seed: j.Seed,
		Deploy: DeployConfig{
			Pattern:        pat,
			N:              j.N,
			Clusters:       j.Clusters,
			GenBpsMin:      j.GenBpsMin,
			GenBpsMax:      j.GenBpsMax,
			InitialFracMin: j.InitialFracMin,
			InitialFracMax: j.InitialFracMax,
		},
		CommRange:        j.CommRange,
		SinkAtCenter:     j.SinkAtCenter,
		RequireConnected: j.RequireConnected,
	}
	if j.FieldW > 0 && j.FieldH > 0 {
		s.Deploy.Field = fieldFromDims(j.FieldW, j.FieldH)
	}
	s.Sink.X, s.Sink.Y = j.SinkX, j.SinkY
	return s, nil
}

// LoadScenario reads a scenario file.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("trace: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadJSON(f)
}

// SaveScenario writes a scenario file.
func (s Scenario) SaveScenario(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer func() { _ = f.Close() }()
	return s.WriteJSON(f)
}
