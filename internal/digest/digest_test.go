package digest

import (
	"math"
	"strings"
	"testing"
)

type inner struct {
	B float64
	A string
}

type outer struct {
	Ptr    *inner
	Nil    *inner
	Slice  []float64
	NilSl  []int
	M      map[string]int
	hidden int
}

func TestCanonicalShape(t *testing.T) {
	v := outer{
		Ptr:   &inner{B: math.Inf(1), A: "x"},
		Slice: []float64{1, math.NaN()},
		M:     map[string]int{"b": 2, "a": 1},
	}
	v.hidden = 7 // must not influence the digest
	b, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"+Inf"`, `"NaN"`, `"Nil":null`, `"NilSl":null`, `{"a":1,"b":2}`} {
		if !strings.Contains(s, want) {
			t.Errorf("canonical form %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "hidden") {
		t.Errorf("canonical form leaked unexported field: %s", s)
	}
}

func TestSumDeterministicAndSensitive(t *testing.T) {
	a := outer{Ptr: &inner{A: "x"}, M: map[string]int{"k": 1}}
	d1, err := Sum(a)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Sum(a)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not deterministic: %s vs %s", d1, d2)
	}
	a.M["k"] = 2
	d3, err := Sum(a)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest insensitive to value change")
	}
	if len(d1) != 64 {
		t.Fatalf("want hex sha256, got %q", d1)
	}
}
