// Package digest reduces outcome-like values to canonical JSON and
// SHA-256 digests. It is the single canonicalization used by the golden
// determinism harness (internal/campaign) and the campaign service
// (internal/service): a daemon-computed digest is comparable, byte for
// byte, with one computed over the in-process library path.
//
// The canonical form rebuilds the value as a tree of maps, slices and
// scalars that encoding/json accepts: non-finite floats (FirstDeathAt is
// +Inf when nobody died) become strings, pointers are followed, nil
// pointers become nil, and map keys sort. Struct fields keep their
// names, so a digest covers every exported field of the value and its
// nested types.
package digest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Canonical returns the canonical JSON encoding of v.
func Canonical(v any) ([]byte, error) {
	return json.Marshal(jsonSafe(reflect.ValueOf(v)))
}

// Sum returns the hex SHA-256 over v's canonical JSON form.
func Sum(v any) (string, error) {
	b, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// jsonSafe rebuilds v as a tree of maps, slices and scalars that
// encoding/json accepts. Unexported struct fields are skipped, matching
// the digest contract: only the exported surface is pinned.
func jsonSafe(v reflect.Value) any {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return jsonSafe(v.Elem())
	case reflect.Struct:
		m := make(map[string]any, v.NumField())
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			m[t.Field(i).Name] = jsonSafe(v.Field(i))
		}
		return m
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return nil
		}
		out := make([]any, v.Len())
		for i := 0; i < v.Len(); i++ {
			out[i] = jsonSafe(v.Index(i))
		}
		return out
	case reflect.Map:
		keys := v.MapKeys()
		sort.Slice(keys, func(i, j int) bool {
			return fmt.Sprint(keys[i].Interface()) < fmt.Sprint(keys[j].Interface())
		})
		m := make(map[string]any, len(keys))
		for _, k := range keys {
			m[fmt.Sprint(k.Interface())] = jsonSafe(v.MapIndex(k))
		}
		return m
	case reflect.Float64, reflect.Float32:
		f := v.Float()
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return fmt.Sprint(f)
		}
		return f
	default:
		return v.Interface()
	}
}
