package cliexport

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

type faultsSpec = faults.Spec

func TestTelemetryDisabled(t *testing.T) {
	var tel Telemetry
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tel.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p := tel.Probe(); p.Enabled() {
		t.Error("probe enabled with no export paths")
	}
	if tel.Recorder() != nil {
		t.Error("recorder exists with no export paths")
	}
	if err := tel.Export(); err != nil {
		t.Errorf("no-op export failed: %v", err)
	}
}

func TestTelemetryExport(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.csv")
	events := filepath.Join(dir, "e.json")

	var tel Telemetry
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tel.Register(fs)
	if err := fs.Parse([]string{"-metrics", metrics, "-events", events}); err != nil {
		t.Fatal(err)
	}
	probe := tel.Probe()
	if !probe.Enabled() {
		t.Fatal("probe disabled despite export paths")
	}
	if tel.Probe() != probe {
		t.Error("Probe not idempotent: second call returned a different recorder")
	}
	probe.Add("jobs", 3)
	probe.Event(obs.Event{T: 1, Kind: "x", Node: -1})
	if err := tel.Export(); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(m), "counter,jobs,,3") {
		t.Errorf("metrics CSV missing counter: %s", m)
	}
	e, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(e), `"kind": "x"`) {
		t.Errorf("events JSON missing event: %s", e)
	}
}

func TestFaultLoad(t *testing.T) {
	var fl FaultLoad
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fl.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if fl.Spec(42, 86400) != nil || fl.Plan(42, 86400, 50) != nil {
		t.Error("zero load produced a fault spec/plan")
	}
	if err := fs.Parse([]string{"-faults", "2"}); err != nil {
		t.Fatal(err)
	}
	spec := fl.Spec(42, 86400)
	if spec == nil {
		t.Fatal("load 2 produced no spec")
	}
	base := FaultLoad{Load: 1}.mustSpec(t)
	if spec.NodeFailures <= base.NodeFailures {
		t.Errorf("scale 2 node failures %d not above scale 1's %d", spec.NodeFailures, base.NodeFailures)
	}
	if fl.Plan(42, 86400, 50) == nil {
		t.Error("load 2 produced no plan")
	}
}

func (f FaultLoad) mustSpec(t *testing.T) *faultsSpec {
	t.Helper()
	s := f.Spec(42, 86400)
	if s == nil {
		t.Fatal("expected a spec")
	}
	return s
}
