// Package cliexport centralizes the telemetry-export and fault-load flag
// wiring previously duplicated across cmd/experiments, cmd/csa-attack
// and cmd/wrsn-sim (and now shared by cmd/wrsncsad): register the flags
// on a FlagSet, get a probe for the run, export the recording at the
// end.
package cliexport

import (
	"flag"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// Telemetry owns the -metrics/-events export flags and the recorder
// behind them. The zero value is ready to Register.
type Telemetry struct {
	// MetricsPath and EventsPath are the flag values (.json for JSON,
	// CSV otherwise; empty disables that export).
	MetricsPath string
	EventsPath  string

	rec *obs.Recorder
}

// Register installs the -metrics and -events flags on fs.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.MetricsPath, "metrics", "", "export run telemetry metrics to this file (.json for JSON, CSV otherwise)")
	fs.StringVar(&t.EventsPath, "events", "", "export the telemetry event stream to this file (.json for JSON, CSV otherwise)")
}

// Probe returns the probe for the run: a recorder when any export path
// is set (created once; later calls return the same recorder), the
// no-op probe otherwise. Call it after flag parsing.
func (t *Telemetry) Probe() obs.Probe {
	if t.MetricsPath == "" && t.EventsPath == "" {
		return obs.Nop()
	}
	if t.rec == nil {
		t.rec = obs.NewRecorder()
	}
	return t.rec
}

// Recorder returns the recorder behind Probe, or nil when no export path
// was requested.
func (t *Telemetry) Recorder() *obs.Recorder {
	t.Probe()
	if t.MetricsPath == "" && t.EventsPath == "" {
		return nil
	}
	return t.rec
}

// Export snapshots the recorder and writes the requested files. With no
// export paths (or before Probe) it is a no-op, so commands call it
// unconditionally on every exit path.
func (t *Telemetry) Export() error {
	if t.rec == nil {
		return nil
	}
	snap := t.rec.Snapshot()
	if t.MetricsPath != "" {
		if err := snap.ExportMetrics(t.MetricsPath); err != nil {
			return fmt.Errorf("export metrics: %w", err)
		}
	}
	if t.EventsPath != "" {
		if err := snap.ExportEvents(t.EventsPath); err != nil {
			return fmt.Errorf("export events: %w", err)
		}
	}
	return nil
}

// FaultLoad owns the -faults intensity flag: a scale factor over the
// default deterministic fault plan.
type FaultLoad struct {
	// Load is the flag value; 0 disables fault injection.
	Load float64
}

// Register installs the -faults flag on fs.
func (f *FaultLoad) Register(fs *flag.FlagSet) {
	fs.Float64Var(&f.Load, "faults", 0, "fault-injection intensity: scales the default deterministic fault plan (0 = reliable network)")
}

// Spec returns the scaled fault spec for the seed and horizon, or nil
// when the load is zero — ready to set on a jobspec.Spec.
func (f *FaultLoad) Spec(seed uint64, horizonSec float64) *faults.Spec {
	if f.Load <= 0 {
		return nil
	}
	spec := faults.DefaultSpec(seed, horizonSec).Scale(f.Load)
	return &spec
}

// Plan compiles the scaled spec for an n-node network, or nil when the
// load is zero. Plans are single-use; call Plan once per run.
func (f *FaultLoad) Plan(seed uint64, horizonSec float64, n int) *faults.Plan {
	spec := f.Spec(seed, horizonSec)
	if spec == nil {
		return nil
	}
	return faults.New(*spec, n)
}
