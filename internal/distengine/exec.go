package distengine

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// defaultHandshakeTimeout bounds how long pool construction waits for a
// worker's hello before declaring it broken.
const defaultHandshakeTimeout = 30 * time.Second

// ExecConfig configures an exec-mode pool: the coordinator spawns the
// worker binary itself, one process per shard, and speaks
// length-prefixed JSON over each child's stdin/stdout.
type ExecConfig struct {
	// Shards is the number of worker processes; must be ≥ 1.
	Shards int
	// Command is the worker binary (typically cmd/wrsnworker); Args are
	// passed through to every shard.
	Command string
	Args    []string
	// Dir, when non-empty, is the workers' working directory.
	Dir string
	// Env, when non-nil, replaces the workers' environment (os.Environ()
	// otherwise) — the test harness uses it for the re-exec sentinel.
	Env []string
	// Stderr receives the workers' stderr (os.Stderr when nil), so a
	// crashing worker's last words reach the operator.
	Stderr io.Writer
	// CrashRetries is the failover budget per job; negative gets
	// DefaultCrashRetries, 0 disables failover.
	CrashRetries int
	// HandshakeTimeout bounds each worker's hello; non-positive gets the
	// default.
	HandshakeTimeout time.Duration
}

// NewExecPool spawns cfg.Shards worker processes and returns a Pool over
// them. The processes are tied to ctx via exec.CommandContext, so
// canceling the session context tears every worker down even if the
// coordinator never reaches Close. Construction fails — and already-
// started workers are killed — if any shard fails to start or complete
// its hello handshake.
func NewExecPool(ctx context.Context, cfg ExecConfig) (*Pool, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("distengine: exec pool needs ≥ 1 shard, got %d", cfg.Shards)
	}
	if cfg.Command == "" {
		return nil, fmt.Errorf("distengine: exec pool needs a worker command")
	}
	if cfg.CrashRetries < 0 {
		cfg.CrashRetries = DefaultCrashRetries
	}
	hsTimeout := cfg.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = defaultHandshakeTimeout
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	shards := make([]*shard, 0, cfg.Shards)
	fail := func(err error) (*Pool, error) {
		for _, s := range shards {
			s.kill()
			s.reap()
		}
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		cmd := exec.CommandContext(ctx, cfg.Command, cfg.Args...)
		cmd.Dir = cfg.Dir
		cmd.Env = cfg.Env
		cmd.Stderr = stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(fmt.Errorf("distengine: shard %d stdin: %w", i, err))
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(fmt.Errorf("distengine: shard %d stdout: %w", i, err))
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("distengine: shard %d start %s: %w", i, cfg.Command, err))
		}
		conn := newStreamConn(stdout, stdin, stdin)
		s := &shard{
			idx:  i,
			conn: conn,
			kill: func() {
				if cmd.Process != nil {
					_ = cmd.Process.Kill()
				}
			},
			reap: func() { _ = cmd.Wait() },
		}
		shards = append(shards, s)
		if err := handshakeTimeout(conn, hsTimeout); err != nil {
			return fail(fmt.Errorf("distengine: shard %d: %w", i, err))
		}
	}
	return newPool(shards, cfg.CrashRetries), nil
}

// handshakeTimeout runs the hello exchange under a deadline; a worker
// that never says hello (wrong binary, hung start) fails construction
// instead of hanging it.
func handshakeTimeout(c wireConn, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- handshake(c) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		c.close()
		return fmt.Errorf("distengine: handshake timed out after %v", d)
	}
}
