package distengine

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// Serve runs the worker side of one connection: hello handshake, then a
// loop accepting job frames and answering each with exactly one result
// frame — outcome, error, panic (recovered, with stack), or a
// cancellation ack. Jobs run concurrently (the coordinator leases one
// job per shard, but the protocol does not depend on it); a cancel frame
// aborts the identified job's context, and the job still answers — the
// ack is what lets the coordinator distinguish "worker honored the
// cancel" from "worker is wedged". Serve returns when the peer
// disconnects, a shutdown frame arrives (after in-flight jobs drain), or
// ctx is canceled.
func Serve(ctx context.Context, conn wireConn, probe obs.Probe) error {
	if err := conn.send(frame{Type: frameHello, Proto: ProtoVersion}); err != nil {
		return err
	}
	probe = obs.Or(probe)

	// A canceled worker context must unblock the recv loop: close the
	// connection under it.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-ctx.Done()
		conn.close()
	}()

	var (
		mu      sync.Mutex
		running = make(map[int64]context.CancelFunc)
		wg      sync.WaitGroup
	)
	cancelAll := func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range running {
			c()
		}
	}

	for {
		f, err := conn.recv()
		if err != nil {
			cancelAll()
			wg.Wait()
			if ctx.Err() != nil || err == io.EOF {
				// Deliberate teardown (worker ctx, or the coordinator
				// closing the stream), not a wire fault.
				return nil
			}
			return err
		}
		switch f.Type {
		case frameJob:
			spec, derr := jobspec.Decode(f.Spec)
			if derr != nil {
				if serr := conn.send(frame{
					Type: frameResult, ID: f.ID,
					ErrKind: errKindError, ErrMsg: derr.Error(),
				}); serr != nil {
					cancelAll()
					wg.Wait()
					return serr
				}
				continue
			}
			jctx, jcancel := context.WithCancel(ctx)
			mu.Lock()
			running[f.ID] = jcancel
			mu.Unlock()
			wg.Add(1)
			go func(id int64, spec jobspec.Spec) {
				defer wg.Done()
				defer func() {
					mu.Lock()
					delete(running, id)
					mu.Unlock()
					jcancel()
				}()
				res := runWorkerJob(jctx, spec, probe)
				res.ID = id
				// A send failure here means the connection is gone; the
				// recv loop is about to see the same error and tear down.
				_ = conn.send(res)
			}(f.ID, spec)
		case frameCancel:
			mu.Lock()
			if c, ok := running[f.ID]; ok {
				c()
			}
			mu.Unlock()
		case frameShutdown:
			wg.Wait()
			return nil
		default:
			cancelAll()
			wg.Wait()
			return fmt.Errorf("distengine: worker: unexpected %q frame", f.Type)
		}
	}
}

// runWorkerJob executes one spec and renders the answer frame. A panic
// anywhere in the run — world build, campaign, encoding — is recovered
// into a panic-kind result so one bad job never kills the worker process
// (and with it every other job leased to this shard).
func runWorkerJob(ctx context.Context, spec jobspec.Spec, probe obs.Probe) (res frame) {
	res = frame{Type: frameResult}
	start := time.Now()
	defer func() {
		res.ElapsedSec = time.Since(start).Seconds()
		if r := recover(); r != nil {
			res = frame{
				Type:       frameResult,
				ElapsedSec: time.Since(start).Seconds(),
				ErrKind:    errKindPanic,
				ErrMsg:     fmt.Sprint(r),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	r, err := jobspec.Run(ctx, spec, probe)
	if err != nil {
		if ctx.Err() != nil {
			res.ErrKind = errKindCanceled
		} else {
			res.ErrKind = errKindError
		}
		res.ErrMsg = err.Error()
		return res
	}
	payload, dg, err := encodeResult(r)
	if err != nil {
		res.ErrKind = errKindError
		res.ErrMsg = err.Error()
		return res
	}
	res.Outcome = payload
	res.Digest = dg
	return res
}

// ServeStdio serves one worker session over a byte stream pair —
// length-prefixed JSON framing, the exec transport. cmd/wrsnworker calls
// this with os.Stdin/os.Stdout.
func ServeStdio(ctx context.Context, r io.Reader, w io.Writer, probe obs.Probe) error {
	var closer io.Closer
	if c, ok := r.(io.Closer); ok {
		closer = c
	}
	return Serve(ctx, newStreamConn(r, w, closer), probe)
}

// ListenAndServe accepts coordinator connections on ln and serves each
// with newline-JSON framing (the TCP transport) until ctx is canceled or
// the listener fails. Connections are served concurrently, so one
// listening worker can back several coordinators or reconnects.
func ListenAndServe(ctx context.Context, ln net.Listener, probe obs.Probe) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		c, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("distengine: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Serve's own teardown goroutine closes the conn on ctx.
			_ = Serve(ctx, newLineConn(c), probe)
		}()
	}
}
