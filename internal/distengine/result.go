package distengine

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
)

// resultWire is the gob payload inside a result frame. Gob rather than
// JSON because campaign outcomes legitimately carry non-finite floats
// (FleetOutcome.FirstDeathAt is +Inf when no node dies) that
// encoding/json rejects, and gob round-trips float bits exactly. Exactly
// one of the two fields is non-nil, mirroring jobspec.Result.
type resultWire struct {
	Outcome *campaign.Outcome
	Fleet   *campaign.FleetOutcome
}

// encodeResult renders a job result for the wire: the gob payload plus
// the worker-computed canonical digest the coordinator verifies against.
func encodeResult(r *jobspec.Result) (payload []byte, dg string, err error) {
	dg, err = r.Digest()
	if err != nil {
		return nil, "", fmt.Errorf("distengine: digest result: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resultWire{Outcome: r.Outcome, Fleet: r.Fleet}); err != nil {
		return nil, "", fmt.Errorf("distengine: encode result: %w", err)
	}
	return buf.Bytes(), dg, nil
}

// decodeResult decodes a wire payload and re-verifies its canonical
// digest against the one the worker computed before encoding. A mismatch
// means the transport changed the outcome — the whole point of the
// byte-identity fence — so it fails the job loudly instead of letting a
// lossy encoding shift results silently.
func decodeResult(payload []byte, wantDigest string) (*jobspec.Result, error) {
	var w resultWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, fmt.Errorf("distengine: decode result: %w", err)
	}
	r := &jobspec.Result{Outcome: w.Outcome, Fleet: w.Fleet}
	got, err := r.Digest()
	if err != nil {
		return nil, fmt.Errorf("distengine: digest decoded result: %w", err)
	}
	if got != wantDigest {
		return nil, fmt.Errorf("distengine: wire integrity: decoded outcome digest %s != worker digest %s", got, wantDigest)
	}
	return r, nil
}
