package distengine

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// DefaultCrashRetries is how many times a job whose worker died mid-run
// is re-sent to a surviving shard before the failure surfaces. Specs
// derive all randomness from their own seeds, so a failover re-run is
// bit-identical to what the dead worker would have produced.
const DefaultCrashRetries = 2

// defaultCancelGrace bounds how long Submit waits, after sending a
// cancel frame, for the worker to ack it before declaring the worker
// wedged and killing that shard.
const defaultCancelGrace = 10 * time.Second

// RemoteError is a job failure reported by a worker: an ordinary error,
// a recovered worker-side panic (with its stack), or a worker-initiated
// cancellation. It reaches callers wrapped in the engine's usual
// *engine.JobError, so aggregated keep-going errors stay attributable to
// their job index.
type RemoteError struct {
	// Kind is "error", "panic" or "canceled".
	Kind string
	// Msg is the worker-side error text.
	Msg string
	// Stack is the worker goroutine stack (panic kind only).
	Stack string
}

// Error formats the remote failure; panic kinds include the stack.
func (e *RemoteError) Error() string {
	if e.Kind == errKindPanic {
		return fmt.Sprintf("remote panic: %s\n%s", e.Msg, e.Stack)
	}
	return fmt.Sprintf("remote %s: %s", e.Kind, e.Msg)
}

// WorkerLostError reports a job that could not complete because worker
// processes kept dying under it (or none were left alive to take it).
type WorkerLostError struct {
	// Shard is the index of the last shard that died holding the job,
	// or -1 when no shard could be acquired at all.
	Shard int
	// Attempts is how many shards the job was tried on.
	Attempts int
}

// Error formats the loss.
func (e *WorkerLostError) Error() string {
	if e.Shard < 0 {
		return "distengine: no live workers"
	}
	return fmt.Sprintf("distengine: worker (shard %d) lost mid-job after %d attempt(s)", e.Shard, e.Attempts)
}

// shard is one worker connection plus its coordinator-side bookkeeping.
type shard struct {
	idx  int
	conn wireConn
	// kill force-terminates the worker (process kill or conn close);
	// reap, when non-nil, waits for the worker process to be collected.
	kill func()
	reap func()

	mu      sync.Mutex
	dead    bool
	pending map[int64]chan frame
	// deadCh closes when the shard's read loop exits — every waiter
	// multiplexes it against its own result channel.
	deadCh chan struct{}
}

// Pool shards jobs across worker processes while preserving the
// in-process engine's contracts. Submit is the thread-safe primitive
// (lease a free shard, ship the spec, await the result, fail over on
// worker death); Run layers engine.MapTimedOpts on top of Submit, so
// ordering, fail-fast, keep-going aggregation, timeout and retry
// semantics are the engine's own code, not a re-implementation.
type Pool struct {
	shards       []*shard
	free         chan *shard
	crashRetries int
	cancelGrace  time.Duration

	nextID   atomic.Int64
	alive    atomic.Int32
	allDead  chan struct{}
	deadOnce sync.Once

	closeOnce sync.Once
}

// newPool wires up bookkeeping and starts one read loop per shard. Every
// shard must already have completed its hello handshake.
func newPool(shards []*shard, crashRetries int) *Pool {
	if crashRetries < 0 {
		crashRetries = DefaultCrashRetries
	}
	p := &Pool{
		shards:       shards,
		free:         make(chan *shard, len(shards)),
		crashRetries: crashRetries,
		cancelGrace:  defaultCancelGrace,
		allDead:      make(chan struct{}),
	}
	p.alive.Store(int32(len(shards)))
	for _, s := range shards {
		s.pending = make(map[int64]chan frame)
		s.deadCh = make(chan struct{})
		p.free <- s
		go p.readLoop(s)
	}
	return p
}

// Shards returns the pool's size, live or not.
func (p *Pool) Shards() int { return len(p.shards) }

// Alive returns how many shards are still serving jobs.
func (p *Pool) Alive() int { return int(p.alive.Load()) }

// KillShard force-terminates shard i's worker — the crash-drill hook the
// fence uses to prove failover. The read loop notices the broken
// connection and retires the shard; any job in flight there fails over.
func (p *Pool) KillShard(i int) {
	if i < 0 || i >= len(p.shards) {
		return
	}
	p.shards[i].kill()
}

// readLoop is shard s's single reader: it routes result frames to their
// waiting Submit by job ID and, when the connection dies, retires the
// shard — marking it dead, waking every waiter, and never returning it
// to the free list.
func (p *Pool) readLoop(s *shard) {
	for {
		f, err := s.conn.recv()
		if err != nil {
			p.retire(s)
			return
		}
		if f.Type != frameResult {
			continue
		}
		s.mu.Lock()
		ch, ok := s.pending[f.ID]
		if ok {
			delete(s.pending, f.ID)
		}
		s.mu.Unlock()
		if ok {
			ch <- f // buffered; never blocks
		}
	}
}

// retire marks a shard dead exactly once: kill the worker, wake waiters,
// drop the pool's live count (closing allDead at zero so acquisitions
// fail instead of hanging forever).
func (p *Pool) retire(s *shard) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	close(s.deadCh)
	s.mu.Unlock()
	s.kill()
	if p.alive.Add(-1) == 0 {
		p.deadOnce.Do(func() { close(p.allDead) })
	}
}

// acquire leases a free live shard, or reports why none will ever come.
func (p *Pool) acquire(ctx context.Context) (*shard, error) {
	for {
		select {
		case s := <-p.free:
			s.mu.Lock()
			dead := s.dead
			s.mu.Unlock()
			if dead {
				// Raced with retirement; this shard never re-enters free.
				continue
			}
			return s, nil
		case <-p.allDead:
			return nil, &WorkerLostError{Shard: -1}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// release returns a shard to the free list unless it has died.
func (p *Pool) release(s *shard) {
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if !dead {
		p.free <- s
	}
}

// Submit runs one spec on some worker and returns its result. Safe for
// concurrent use. A worker that dies mid-job gets the job re-sent to a
// surviving shard up to the pool's crash-retry budget; the re-run is
// bit-identical because the spec carries every seed. Context
// cancellation sends the worker a cancel frame and waits (bounded by the
// cancel grace) for the ack before the shard is reused — a worker that
// ignores the cancel is killed as wedged. These crash retries are
// transport-level failover and are invisible to engine.Options.Retries,
// which stays the per-job *attempt* budget.
func (p *Pool) Submit(ctx context.Context, spec jobspec.Spec) (*jobspec.Result, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("distengine: encode spec: %w", err)
	}
	var lastShard int
	for attempt := 0; ; attempt++ {
		res, err, crashed := p.trySubmit(ctx, specJSON, &lastShard)
		if !crashed {
			return res, err
		}
		if attempt >= p.crashRetries {
			return nil, &WorkerLostError{Shard: lastShard, Attempts: attempt + 1}
		}
	}
}

// trySubmit runs the spec on one leased shard. crashed=true means the
// shard died mid-job and the caller may fail over; any other failure is
// final for this attempt.
func (p *Pool) trySubmit(ctx context.Context, specJSON []byte, lastShard *int) (_ *jobspec.Result, _ error, crashed bool) {
	s, err := p.acquire(ctx)
	if err != nil {
		return nil, err, false
	}
	*lastShard = s.idx

	id := p.nextID.Add(1)
	ch := make(chan frame, 1)
	s.mu.Lock()
	s.pending[id] = ch
	s.mu.Unlock()
	unregister := func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}

	if err := s.conn.send(frame{Type: frameJob, ID: id, Spec: specJSON}); err != nil {
		unregister()
		p.retire(s)
		return nil, err, true
	}

	select {
	case f := <-ch:
		p.release(s)
		return decodeResultFrame(ctx, f)
	case <-s.deadCh:
		unregister()
		return nil, nil, true
	case <-ctx.Done():
		// Ask the worker to abandon the job, then wait for the ack (its
		// result frame) so the shard is quiescent before reuse. A worker
		// that never acks within the grace is wedged: kill it rather than
		// lease it out again.
		_ = s.conn.send(frame{Type: frameCancel, ID: id})
		grace := time.NewTimer(p.cancelGrace)
		defer grace.Stop()
		select {
		case <-ch:
			p.release(s)
		case <-s.deadCh:
			unregister()
		case <-grace.C:
			unregister()
			p.retire(s)
		}
		return nil, ctx.Err(), false
	}
}

// decodeResultFrame maps a worker's result frame back into the engine's
// error vocabulary and — for successes — decodes the outcome and
// re-verifies its canonical digest against the worker's.
func decodeResultFrame(ctx context.Context, f frame) (*jobspec.Result, error, bool) {
	switch f.ErrKind {
	case "":
		r, err := decodeResult(f.Outcome, f.Digest)
		return r, err, false
	case errKindCanceled:
		if err := ctx.Err(); err != nil {
			return nil, err, false
		}
		// The worker canceled on its own (its process context died) —
		// not this coordinator's doing, so surface it as a remote error.
		return nil, &RemoteError{Kind: f.ErrKind, Msg: f.ErrMsg}, false
	default:
		return nil, &RemoteError{Kind: f.ErrKind, Msg: f.ErrMsg, Stack: f.Stack}, false
	}
}

// Options configures one Pool.Run sweep.
type Options struct {
	// Job carries the engine's per-job hardening knobs — timeout,
	// retries, backoff, keep-going — applied by engine.MapTimedOpts
	// around Submit exactly as around an in-process job function.
	Job engine.Options
	// Probe receives the engine's pool telemetry (job latency, worker
	// gauge, utilization), same streams as the in-process path.
	Probe obs.Probe
}

// Run executes every spec across the pool's shards and returns timed
// results in spec order. All engine contracts hold by construction —
// Run IS engine.MapTimedOpts with Submit as the job function: results
// merge order-preserving by index, the lowest-indexed failure wins under
// fail-fast, KeepGoing aggregates JobError/PanicError in index order,
// Options.Job.Timeout/Retries bound each job, and canceling ctx tears
// the sweep down (in-flight jobs get cancel frames; exec-mode workers
// die with the context).
func (p *Pool) Run(ctx context.Context, specs []jobspec.Spec, opts Options) ([]engine.Result[*jobspec.Result], error) {
	return engine.MapTimedOpts(ctx, p.Shards(), len(specs), opts.Probe, opts.Job,
		func(ctx context.Context, i int) (*jobspec.Result, error) {
			return p.Submit(ctx, specs[i])
		})
}

// Close tears the pool down: shutdown frames to live workers, streams
// closed, worker processes reaped. Idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, s := range p.shards {
			s.mu.Lock()
			dead := s.dead
			s.mu.Unlock()
			if !dead {
				_ = s.conn.send(frame{Type: frameShutdown})
			}
			s.conn.close()
		}
		for _, s := range p.shards {
			if s.reap != nil {
				s.reap()
			}
		}
	})
}
