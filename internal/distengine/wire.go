// Package distengine extends the in-process experiment engine across
// worker processes: a coordinator-side Pool shards serializable campaign
// jobs (jobspec.Spec) over workers it either spawned itself (exec mode —
// length-prefixed JSON frames over the child's stdin/stdout) or dialed
// over TCP (newline-delimited JSON, the internal/testbed wire idiom),
// while preserving the engine package's contracts exactly: deterministic
// order-preserving merge, lowest-index-error fail-fast, keep-going
// aggregation, per-job timeout/retry, panic capture, and context
// cancellation that tears the workers down.
//
// The preservation is by construction, not re-implementation: Pool.Run
// delegates scheduling, ordering and error semantics to
// engine.MapTimedOpts with Pool.Submit as the job function, so the
// distributed path and the in-process pool share one contract
// implementation. What distengine adds underneath is worker leasing,
// crash failover (a job in flight on a dying worker is re-sent to a
// surviving shard; specs derive all randomness from their own seeds, so
// the re-run is bit-identical), and a wire-integrity check: every result
// crosses the wire with the worker-computed canonical digest, and the
// coordinator re-digests the decoded outcome — a lossy wire format fails
// loudly instead of silently shifting results.
package distengine

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// ProtoVersion is the wire protocol version exchanged in the hello
// handshake; coordinator and worker must agree exactly.
const ProtoVersion = 1

// maxFrame bounds one frame's encoded size (length-prefixed transport).
// Outcomes with full session records reach megabytes; snapshots of large
// worlds more. 256 MiB is far above any real payload while still
// rejecting a corrupt length prefix before it turns into an allocation.
const maxFrame = 256 << 20

// Frame types. Every message in either direction is one frame.
const (
	// frameHello is the worker's first message: its protocol version.
	frameHello = "hello"
	// frameJob carries one job (id + spec) coordinator→worker.
	frameJob = "job"
	// frameCancel asks the worker to abandon the identified job; the
	// worker still answers it with a result frame (kind "canceled").
	frameCancel = "cancel"
	// frameResult is the worker's answer to a job: outcome or error.
	frameResult = "result"
	// frameShutdown asks the worker to exit cleanly.
	frameShutdown = "shutdown"
)

// Remote error kinds carried in result frames.
const (
	// errKindError is an ordinary job failure (jobspec.Run returned err).
	errKindError = "error"
	// errKindPanic is a worker-side panic, recovered with its stack.
	errKindPanic = "panic"
	// errKindCanceled acknowledges a frameCancel (or a dying worker
	// context); the coordinator maps it back to its own ctx error.
	errKindCanceled = "canceled"
)

// frame is the single wire message shape, fields used per type. JSON
// keeps both transports inspectable; the outcome payload inside a result
// frame is gob (see result.go) because campaign outcomes legitimately
// contain non-finite floats that encoding/json refuses.
type frame struct {
	Type string `json:"type"`
	// Proto is the protocol version (hello frames).
	Proto int `json:"proto,omitempty"`
	// ID identifies a job (job, cancel, result frames). IDs are unique
	// per coordinator, so a late result can never be mistaken for the
	// answer to a different job.
	ID int64 `json:"id,omitempty"`
	// Spec is the encoded jobspec.Spec (job frames).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Outcome is the gob-encoded result payload (result frames).
	Outcome []byte `json:"outcome,omitempty"`
	// Digest is the worker-computed canonical-JSON SHA-256 of the
	// outcome; the coordinator recomputes and compares it after decode.
	Digest string `json:"digest,omitempty"`
	// ElapsedSec is the worker-side wall clock of the job.
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	// ErrKind/ErrMsg/Stack report a failed job (result frames).
	ErrKind string `json:"err_kind,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`
	Stack   string `json:"stack,omitempty"`
}

// wireConn is one framed, bidirectional connection. send is safe for
// concurrent use; recv must be called from a single goroutine.
type wireConn interface {
	send(frame) error
	recv() (frame, error)
	close() error
}

// streamConn frames messages with a 4-byte big-endian length prefix —
// the exec transport, where the stream is a child process's
// stdin/stdout and message boundaries must survive arbitrary buffering.
type streamConn struct {
	r      io.Reader
	closer io.Closer

	mu sync.Mutex
	w  io.Writer
}

// newStreamConn wraps a read/write pair with length-prefixed framing.
// closer may be nil (stdio).
func newStreamConn(r io.Reader, w io.Writer, closer io.Closer) *streamConn {
	return &streamConn{r: bufio.NewReader(r), w: w, closer: closer}
}

func (c *streamConn) send(f frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("distengine: encode %s frame: %w", f.Type, err)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(buf); err != nil {
		return fmt.Errorf("distengine: send %s frame: %w", f.Type, err)
	}
	return nil
}

func (c *streamConn) recv() (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return frame{}, fmt.Errorf("distengine: recv: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return frame{}, fmt.Errorf("distengine: recv: frame length %d exceeds %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return frame{}, fmt.Errorf("distengine: recv body: %w", err)
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return frame{}, fmt.Errorf("distengine: decode frame: %w", err)
	}
	return f, nil
}

func (c *streamConn) close() error {
	if c.closer == nil {
		return nil
	}
	return c.closer.Close()
}

// lineConn frames messages as newline-delimited JSON over a net.Conn —
// the TCP transport, reusing the internal/testbed wire idiom (one JSON
// object per line, encoder-serialized sends, single-reader receives).
type lineConn struct {
	raw net.Conn
	r   *bufio.Reader

	mu  sync.Mutex
	enc *json.Encoder
}

// newLineConn wraps a TCP connection with line-oriented JSON framing.
func newLineConn(c net.Conn) *lineConn {
	return &lineConn{raw: c, r: bufio.NewReaderSize(c, 1<<20), enc: json.NewEncoder(c)}
}

func (c *lineConn) send(f frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(f); err != nil {
		return fmt.Errorf("distengine: send %s frame: %w", f.Type, err)
	}
	return nil
}

func (c *lineConn) recv() (frame, error) {
	line, err := readLine(c.r)
	if err != nil {
		return frame{}, fmt.Errorf("distengine: recv: %w", err)
	}
	var f frame
	if err := json.Unmarshal(line, &f); err != nil {
		return frame{}, fmt.Errorf("distengine: decode frame: %w", err)
	}
	return f, nil
}

// readLine reads one \n-terminated line without bufio.Reader's buffer
// cap: result frames carrying large outcomes routinely exceed the
// default 64 KiB scanner limit.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			return line, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
		if len(line) > maxFrame {
			return nil, fmt.Errorf("frame length exceeds %d", maxFrame)
		}
	}
}

func (c *lineConn) close() error { return c.raw.Close() }

// handshake completes the coordinator side of the hello exchange.
func handshake(c wireConn) error {
	f, err := c.recv()
	if err != nil {
		return fmt.Errorf("distengine: handshake: %w", err)
	}
	if f.Type != frameHello {
		return fmt.Errorf("distengine: handshake: got %q frame, want hello", f.Type)
	}
	if f.Proto != ProtoVersion {
		return fmt.Errorf("distengine: handshake: worker speaks protocol %d, coordinator %d", f.Proto, ProtoVersion)
	}
	return nil
}
