package distengine

import (
	"context"
	"fmt"
	"os"
	"testing"
)

// workerSentinel re-execs the test binary as an exec-mode worker: when
// the variable is set the process skips the test runner and serves the
// wire protocol over stdin/stdout, exactly like cmd/wrsnworker. The
// exec-mode fence spawns `os.Executable()` with this sentinel in the
// environment, so the worker side runs the same (race-instrumented,
// coverage-instrumented) build as the coordinator under test.
const workerSentinel = "WRSN_DIST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerSentinel) == "1" {
		if err := ServeStdio(context.Background(), os.Stdin, os.Stdout, nil); err != nil {
			fmt.Fprintln(os.Stderr, "re-exec worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}
