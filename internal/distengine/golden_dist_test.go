package distengine

// The distributed byte-identity fence: every golden campaign flavor
// pinned in internal/campaign/testdata/outcome_digests.json is re-run
// through a real multi-process pool — exec mode (the test binary
// re-execed as a worker, see main_test.go) and TCP mode — and each
// result's canonical digest must equal the pinned golden bit for bit,
// at every shard count. Plain `go test` fences a representative subset
// at 2 shards; WRSN_VERIFY_DIST=1 (wired as `make verify-dist`, with
// -race, in CI) sweeps all flavors at shards 1, 2 and 8 in both modes.
//
// The spec list is kept honest by TestDistCasesCoverGoldenFlavors: it
// must match the golden file's keys exactly in both directions, so a
// flavor added to the campaign harness without a distributed mirror —
// or a stale mirror for a removed flavor — fails loudly.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// distGoldenPath anchors the fence to the campaign package's pinned
// digests — the same file the in-process golden, fork, and checkpoint
// fences verify against, so "distributed equals in-process" reduces to
// "distributed equals the one recorded truth".
const distGoldenPath = "../campaign/testdata/outcome_digests.json"

func loadDistGolden(t *testing.T) map[string]string {
	t.Helper()
	b, err := os.ReadFile(distGoldenPath)
	if err != nil {
		t.Fatalf("golden digests missing (%v); regenerate with WRSN_REGEN_GOLDEN=1 in internal/campaign", err)
	}
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parse %s: %v", distGoldenPath, err)
	}
	return m
}

// distCase is one golden flavor in wire form: the jobspec.Spec a
// coordinator would ship to a worker process.
type distCase struct {
	name string
	spec jobspec.Spec
}

func attackSpec(seed uint64, n int, cc jobspec.Campaign) jobspec.Spec {
	cc.Seed = seed
	return jobspec.Spec{Kind: jobspec.KindAttack, Scenario: trace.DefaultScenario(seed, n), Campaign: cc}
}

func legitSpec(seed uint64, n int, cc jobspec.Campaign) jobspec.Spec {
	cc.Seed = seed
	return jobspec.Spec{Kind: jobspec.KindLegit, Scenario: trace.DefaultScenario(seed, n), Campaign: cc}
}

func fleetSpec(seed uint64, n, k int) jobspec.Spec {
	return jobspec.Spec{Kind: jobspec.KindFleet, Scenario: trace.DefaultScenario(seed, n),
		Campaign: jobspec.Campaign{Seed: seed}, Chargers: k}
}

func faultSpec(seed uint64, n int, fs faults.Spec) jobspec.Spec {
	s := attackSpec(seed, n, jobspec.Campaign{})
	s.Faults = &fs
	return s
}

// distCases mirrors internal/campaign's goldenCases() flavor for
// flavor, translated into serializable specs. Interface-valued knobs
// ride their canonical wire forms (the EDF scheduler by name); every
// other knob is the same literal the golden harness pins.
func distCases() []distCase {
	cases := []distCase{}
	for _, seed := range []uint64{42, 1000, 8919} {
		cases = append(cases,
			distCase{fmt.Sprintf("legit/seed%d", seed), legitSpec(seed, 120, jobspec.Campaign{})},
			distCase{fmt.Sprintf("csa/seed%d", seed), attackSpec(seed, 120, jobspec.Campaign{})},
			distCase{fmt.Sprintf("greedy/seed%d", seed), attackSpec(seed, 120, jobspec.Campaign{Solver: campaign.SolverGreedyNearest})},
		)
	}
	cases = append(cases,
		distCase{"random/seed42", attackSpec(42, 120, jobspec.Campaign{Solver: campaign.SolverRandom})},
		distCase{"polished/seed42", attackSpec(42, 120, jobspec.Campaign{Solver: campaign.SolverCSAPolished})},
		distCase{"direct-nofill/seed42", attackSpec(42, 120, jobspec.Campaign{Solver: campaign.SolverDirect, NoFill: true})},
		distCase{"progressive/seed42", attackSpec(42, 150, jobspec.Campaign{Progressive: true})},
		distCase{"defense-verify/seed100", attackSpec(100, 120, jobspec.Campaign{Defense: defense.Config{VerifyProb: 0.5}})},
		distCase{"defense-witness/seed42", attackSpec(42, 120, jobspec.Campaign{Defense: defense.Config{WitnessDutyCycle: 1}})},
		distCase{"sampled/seed42", attackSpec(42, 100, jobspec.Campaign{SampleEverySec: 6 * 3600})},
		distCase{"legit-edf/seed42", legitSpec(42, 120, jobspec.Campaign{Scheduler: charging.EDF{}.Name()})},
		distCase{"fleet2/seed42", fleetSpec(42, 150, 2)},
		distCase{"fleet3/seed11", fleetSpec(11, 150, 3)},
		distCase{"faults-node/seed42", faultSpec(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, NodeFailures: 5})},
		distCase{"faults-loss/seed42", faultSpec(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, RequestLossProb: 0.3})},
		distCase{"faults-breakdown/seed42", faultSpec(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, ChargerBreakdowns: 3})},
	)
	return cases
}

// distSubset is the plain-`go test` slice of the matrix: one attack,
// one scheduler-by-name legit (exercises charging.ByName resolution in
// the worker), one fleet (exercises the +Inf-carrying FleetOutcome gob
// path), one fault flavor (exercises per-run plan compilation).
var distSubset = map[string]bool{
	"csa/seed42":         true,
	"legit-edf/seed42":   true,
	"fleet2/seed42":      true,
	"faults-loss/seed42": true,
}

// TestDistCasesCoverGoldenFlavors pins the fence's coverage: the spec
// list and the golden file must name exactly the same flavors.
func TestDistCasesCoverGoldenFlavors(t *testing.T) {
	want := loadDistGolden(t)
	seen := make(map[string]bool)
	for _, c := range distCases() {
		if seen[c.name] {
			t.Errorf("duplicate distributed case %q", c.name)
		}
		seen[c.name] = true
		if _, ok := want[c.name]; !ok {
			t.Errorf("distributed case %q has no pinned golden digest", c.name)
		}
		if err := c.spec.Validate(); err != nil {
			t.Errorf("case %q: invalid spec: %v", c.name, err)
		}
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("golden flavor %q has no distributed mirror — the byte-identity fence no longer covers it", name)
		}
	}
	for name := range distSubset {
		if !seen[name] {
			t.Errorf("plain-test subset names unknown case %q", name)
		}
	}
}

// newExecTestPool spawns shard worker processes by re-execing this test
// binary (see main_test.go) and returns a pool over them.
func newExecTestPool(t *testing.T, ctx context.Context, shards, crashRetries int) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locate test binary: %v", err)
	}
	pool, err := NewExecPool(ctx, ExecConfig{
		Shards:       shards,
		Command:      exe,
		Env:          append(os.Environ(), workerSentinel+"=1"),
		CrashRetries: crashRetries,
	})
	if err != nil {
		t.Fatalf("exec pool: %v", err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// newTCPTestPool starts an in-process ListenAndServe worker (one
// listener, served concurrently) and dials it once per shard — each
// connection is an independent shard speaking the TCP wire format.
func newTCPTestPool(t *testing.T, ctx context.Context, shards int) *Pool {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sctx, scancel := context.WithCancel(context.Background())
	t.Cleanup(scancel)
	go func() { _ = ListenAndServe(sctx, ln, nil) }()
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = ln.Addr().String()
	}
	pool, err := Dial(ctx, DialConfig{Addrs: addrs})
	if err != nil {
		t.Fatalf("dial pool: %v", err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// runIdentity sweeps the cases through the pool and verifies every
// result digest against its pinned golden.
func runIdentity(t *testing.T, pool *Pool, cases []distCase, want map[string]string) {
	t.Helper()
	specs := make([]jobspec.Spec, len(cases))
	for i, c := range cases {
		specs[i] = c.spec
	}
	results, err := pool.Run(context.Background(), specs, Options{})
	if err != nil {
		t.Fatalf("pool run: %v", err)
	}
	for i, r := range results {
		name := cases[i].name
		if r.Value == nil {
			t.Errorf("%s: nil result", name)
			continue
		}
		d, err := r.Value.Digest()
		if err != nil {
			t.Errorf("%s: digest: %v", name, err)
			continue
		}
		if d != want[name] {
			t.Errorf("%s: distributed digest drifted from golden:\n got %s\nwant %s", name, d, want[name])
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time recorded", name)
		}
	}
}

// fenceCases returns the flavor set for this run: everything under
// WRSN_VERIFY_DIST=1, the representative subset otherwise.
func fenceCases(t *testing.T) ([]distCase, map[string]string, []int) {
	t.Helper()
	want := loadDistGolden(t)
	if os.Getenv("WRSN_VERIFY_DIST") != "" {
		return distCases(), want, []int{1, 2, 8}
	}
	var cases []distCase
	for _, c := range distCases() {
		if distSubset[c.name] {
			cases = append(cases, c)
		}
	}
	return cases, want, []int{2}
}

// TestExecPoolGoldenIdentity: worker processes spawned from this test
// binary must reproduce every pinned digest at every shard count.
func TestExecPoolGoldenIdentity(t *testing.T) {
	cases, want, shardCounts := fenceCases(t)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pool := newExecTestPool(t, ctx, shards, 0)
			runIdentity(t, pool, cases, want)
		})
	}
}

// TestTCPPoolGoldenIdentity: the newline-JSON TCP transport must be
// just as lossless as exec mode at every shard count.
func TestTCPPoolGoldenIdentity(t *testing.T) {
	cases, want, shardCounts := fenceCases(t)
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pool := newTCPTestPool(t, ctx, shards)
			runIdentity(t, pool, cases, want)
		})
	}
}

// TestExecPoolSnapshotSpecIdentity ships a snapshot-carrying spec: the
// worker forks the captured world instead of rebuilding the scenario,
// and the digest must still equal the scenario-built golden — the
// coordinator-side forge dedup must be invisible in results.
func TestExecPoolSnapshotSpecIdentity(t *testing.T) {
	want := loadDistGolden(t)
	snap, err := snapshot.Build(trace.DefaultScenario(42, 120), mc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := attackSpec(42, 120, jobspec.Campaign{}).WithSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := newExecTestPool(t, ctx, 1, 0)
	res, err := pool.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if exp := want["csa/seed42"]; d != exp {
		t.Errorf("snapshot-carrying spec drifted from golden:\n got %s\nwant %s", d, exp)
	}
}

// TestWorkerCrashMidJobFailsOver is the crash drill of the acceptance
// bar: a worker process killed while holding a job must fail over to
// the surviving shard and still produce a byte-identical result. The
// reference digest is computed by an in-process run of the same spec
// (on a world big enough that the job is reliably still in flight when
// the kill lands), so the drill also re-proves distributed ≡ in-process
// on a flavor outside the golden file.
func TestWorkerCrashMidJobFailsOver(t *testing.T) {
	spec := attackSpec(42, 400, jobspec.Campaign{})
	start := time.Now()
	local, err := jobspec.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	localElapsed := time.Since(start)
	want, err := local.Digest()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := newExecTestPool(t, ctx, 2, DefaultCrashRetries)

	type answer struct {
		res *jobspec.Result
		err error
	}
	done := make(chan answer, 1)
	go func() {
		res, err := pool.Submit(context.Background(), spec)
		done <- answer{res, err}
	}()

	// Wait for the job to be leased to a shard, let the worker get about
	// a quarter of the way through it, then kill that exact process.
	victim := -1
	deadline := time.Now().Add(10 * time.Second)
	for victim < 0 && time.Now().Before(deadline) {
		for _, s := range pool.shards {
			s.mu.Lock()
			if len(s.pending) > 0 {
				victim = s.idx
			}
			s.mu.Unlock()
		}
		if victim < 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if victim < 0 {
		t.Fatal("job never landed on a shard")
	}
	midJob := localElapsed / 4
	if midJob > 2*time.Second {
		midJob = 2 * time.Second
	}
	time.Sleep(midJob)
	pool.KillShard(victim)

	a := <-done
	if a.err != nil {
		t.Fatalf("submit after crash failover: %v", a.err)
	}
	d, err := a.res.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d != want {
		t.Errorf("failover re-run drifted from the in-process digest:\n got %s\nwant %s", d, want)
	}
	for i := 0; pool.Alive() != 1 && i < 200; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if got := pool.Alive(); got != 1 {
		t.Errorf("Alive() = %d after killing one of two shards, want 1", got)
	}

	// The surviving shard keeps serving: the same spec resubmitted must
	// reproduce the digest again without any failover left to lean on.
	res, err := pool.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit on surviving shard: %v", err)
	}
	if d, err := res.Digest(); err != nil || d != want {
		t.Errorf("surviving shard digest = %s (err %v), want %s", d, err, want)
	}
}
