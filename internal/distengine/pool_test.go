package distengine

// Contract unit tests against scripted in-memory workers: each test
// wires the coordinator Pool to goroutine "workers" speaking the real
// wire format over net.Pipe, so engine-contract preservation (fail-fast
// lowest index, keep-going aggregation, cancellation, timeouts), crash
// failover, wedged-worker handling, and the wire-integrity check are
// all exercised without spawning processes or running campaigns.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
)

// scriptedWorker is one fake worker: handle sees every job and cancel
// frame and replies through reply (Type/ID are filled in for it;
// replying nil frames is modeled by simply not calling reply). die
// severs the connection from the worker side, simulating a crash.
type scriptedWorker struct {
	conn wireConn // coordinator side
	die  func()
}

// startScriptedWorker runs handle over an in-memory pipe and returns
// the coordinator-side connection, already past the hello handshake.
func startScriptedWorker(t *testing.T, handle func(f frame, reply func(frame))) *scriptedWorker {
	t.Helper()
	cside, wside := net.Pipe()
	coord, worker := newLineConn(cside), newLineConn(wside)
	go func() {
		if err := worker.send(frame{Type: frameHello, Proto: ProtoVersion}); err != nil {
			return
		}
		for {
			f, err := worker.recv()
			if err != nil {
				return
			}
			switch f.Type {
			case frameJob, frameCancel:
				go handle(f, func(res frame) {
					res.Type = frameResult
					if res.ID == 0 {
						res.ID = f.ID
					}
					_ = worker.send(res)
				})
			case frameShutdown:
				worker.close()
				return
			}
		}
	}()
	if err := handshake(coord); err != nil {
		t.Fatalf("scripted handshake: %v", err)
	}
	return &scriptedWorker{conn: coord, die: func() { _ = wside.Close() }}
}

// scriptedPool builds a Pool over scripted workers.
func scriptedPool(t *testing.T, crashRetries int, handlers ...func(frame, func(frame))) *Pool {
	t.Helper()
	shards := make([]*shard, len(handlers))
	for i, h := range handlers {
		w := startScriptedWorker(t, h)
		conn := w.conn
		shards[i] = &shard{idx: i, conn: conn, kill: func() { _ = conn.close() }}
	}
	p := newPool(shards, crashRetries)
	t.Cleanup(p.Close)
	return p
}

// markedSpec tags a spec with its job index via the campaign seed, so a
// scripted worker can decide per-job behavior and echo the index back.
func markedSpec(i int) jobspec.Spec {
	s := jobspec.Default(uint64(i), 10)
	return s
}

func specIndex(t *testing.T, f frame) int {
	t.Helper()
	s, err := jobspec.Decode(f.Spec)
	if err != nil {
		t.Errorf("scripted worker: decode spec: %v", err)
		return -1
	}
	return int(s.Campaign.Seed)
}

// okReply renders a success result whose Outcome.KeyDead echoes the job
// index, so merge-order assertions can read it back.
func okReply(t *testing.T, idx int) frame {
	t.Helper()
	payload, dg, err := encodeResult(&jobspec.Result{Outcome: &campaign.Outcome{KeyDead: idx}})
	if err != nil {
		t.Errorf("encode scripted result: %v", err)
	}
	return frame{Outcome: payload, Digest: dg}
}

// ackCancel answers a cancel frame the way a live worker does, so
// engine-driven cancellations (fail-fast, timeouts) never stall a test
// on the wedged-worker grace period. Reports whether f was a cancel.
func ackCancel(f frame, reply func(frame)) bool {
	if f.Type != frameCancel {
		return false
	}
	reply(frame{ErrKind: errKindCanceled, ErrMsg: "canceled"})
	return true
}

// echoWorker answers every job with a success echoing its index.
func echoWorker(t *testing.T) func(frame, func(frame)) {
	return func(f frame, reply func(frame)) {
		if ackCancel(f, reply) || f.Type != frameJob {
			return
		}
		reply(okReply(t, specIndex(t, f)))
	}
}

func runSpecs(p *Pool, n int, opts Options) ([]engine.Result[*jobspec.Result], error) {
	specs := make([]jobspec.Spec, n)
	for i := range specs {
		specs[i] = markedSpec(i)
	}
	return p.Run(context.Background(), specs, opts)
}

// TestRunPreservesOrder: results land at their spec's index no matter
// which shard served them or in what order they finished.
func TestRunPreservesOrder(t *testing.T) {
	p := scriptedPool(t, 0, echoWorker(t), echoWorker(t), echoWorker(t))
	results, err := runSpecs(p, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value == nil || r.Value.Outcome == nil {
			t.Fatalf("result %d missing", i)
		}
		if got := r.Value.Outcome.KeyDead; got != i {
			t.Errorf("result at index %d came from job %d; merge order broken", i, got)
		}
	}
}

// failOn makes a worker that errors on the given job indices and
// succeeds otherwise.
func failOn(t *testing.T, bad map[int]bool) func(frame, func(frame)) {
	return func(f frame, reply func(frame)) {
		if ackCancel(f, reply) || f.Type != frameJob {
			return
		}
		idx := specIndex(t, f)
		if bad[idx] {
			reply(frame{ErrKind: errKindError, ErrMsg: fmt.Sprintf("scripted failure %d", idx)})
			return
		}
		reply(okReply(t, idx))
	}
}

// TestRunFailFastLowestIndex: with KeepGoing unset, the sweep's error
// is the lowest-indexed failure — the engine's classic contract,
// reaching through Submit to a remote error.
func TestRunFailFastLowestIndex(t *testing.T) {
	bad := map[int]bool{0: true, 5: true}
	p := scriptedPool(t, 0, failOn(t, bad), failOn(t, bad))
	_, err := runSpecs(p, 8, Options{})
	if err == nil {
		t.Fatal("sweep with failing jobs returned nil error")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a *RemoteError", err)
	}
	if !strings.Contains(re.Msg, "scripted failure 0") {
		t.Errorf("fail-fast surfaced %q, want the job-0 failure", re.Msg)
	}
}

// TestRunKeepGoingAggregates: KeepGoing runs everything, returns the
// partial results, and joins one index-tagged JobError per failure.
func TestRunKeepGoingAggregates(t *testing.T) {
	bad := map[int]bool{2: true, 6: true}
	p := scriptedPool(t, 0, failOn(t, bad), failOn(t, bad))
	results, err := runSpecs(p, 8, Options{Job: engine.Options{KeepGoing: true}})
	if err == nil {
		t.Fatal("keep-going sweep with failures returned nil error")
	}
	for i, r := range results {
		if bad[i] {
			if r.Value != nil {
				t.Errorf("failed job %d has a value", i)
			}
			continue
		}
		if r.Value == nil || r.Value.Outcome.KeyDead != i {
			t.Errorf("job %d result missing or misplaced despite keep-going", i)
		}
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("aggregate error %v is not an errors.Join of job failures", err)
	}
	attributed := make(map[int]bool)
	for _, e := range joined.Unwrap() {
		var je *engine.JobError
		if errors.As(e, &je) {
			attributed[je.Job] = true
		}
	}
	for idx := range bad {
		if !attributed[idx] {
			t.Errorf("aggregate error %v does not attribute a JobError to job %d", err, idx)
		}
	}
}

// TestRemotePanicSurfacesWithStack: a worker-side panic arrives as a
// *RemoteError of panic kind carrying the remote stack.
func TestRemotePanicSurfacesWithStack(t *testing.T) {
	p := scriptedPool(t, 0, func(f frame, reply func(frame)) {
		if f.Type == frameJob {
			reply(frame{ErrKind: errKindPanic, ErrMsg: "boom", Stack: "goroutine 1 [running]:\nworker.crash()"})
		}
	})
	_, err := p.Submit(context.Background(), markedSpec(0))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if re.Kind != errKindPanic || !strings.Contains(re.Error(), "worker.crash()") {
		t.Errorf("panic error %q lost its kind or stack", re.Error())
	}
}

// TestSubmitCancelAcked: canceling the submit context sends a cancel
// frame; once the worker acks it the shard goes back into rotation and
// serves the next job normally.
func TestSubmitCancelAcked(t *testing.T) {
	jobSeen := make(chan struct{}, 1)
	var held atomic.Bool
	p := scriptedPool(t, 0, func(f frame, reply func(frame)) {
		if ackCancel(f, reply) || f.Type != frameJob {
			return
		}
		if held.CompareAndSwap(false, true) {
			jobSeen <- struct{}{} // hold the first job until canceled
			return
		}
		reply(okReply(t, specIndex(t, f)))
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, markedSpec(1))
		errc <- err
	}()
	<-jobSeen
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := p.Alive(); got != 1 {
		t.Fatalf("Alive() = %d after acked cancel, want 1", got)
	}
	// The shard must be reusable: a fresh submit on the same worker
	// completes.
	res, err := p.Submit(context.Background(), markedSpec(2))
	if err != nil {
		t.Fatalf("submit after acked cancel: %v", err)
	}
	if res.Outcome == nil || res.Outcome.KeyDead != 2 {
		t.Errorf("post-cancel result = %+v, want the job-2 echo", res.Outcome)
	}
}

// TestSubmitWedgedWorkerKilled: a worker that ignores cancel frames is
// retired after the grace period instead of being leased out again.
func TestSubmitWedgedWorkerKilled(t *testing.T) {
	jobSeen := make(chan struct{}, 1)
	p := scriptedPool(t, 0, func(f frame, reply func(frame)) {
		if f.Type == frameJob {
			jobSeen <- struct{}{}
		}
		// cancels are ignored: the wedge.
	})
	p.cancelGrace = 50 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, markedSpec(1))
		errc <- err
	}()
	<-jobSeen
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; p.Alive() != 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.Alive(); got != 0 {
		t.Fatalf("Alive() = %d, want 0: the wedged worker was not retired", got)
	}
	// With no live workers left, submits fail loudly instead of hanging.
	_, err := p.Submit(context.Background(), markedSpec(2))
	var lost *WorkerLostError
	if !errors.As(err, &lost) || lost.Shard != -1 {
		t.Fatalf("err = %v, want WorkerLostError{Shard: -1}", err)
	}
}

// TestCrashFailover: a worker dying mid-job gets the job re-sent to a
// surviving shard, invisibly to the caller.
func TestCrashFailover(t *testing.T) {
	var crasher *scriptedWorker
	crashed := make(chan struct{})
	crasherHandler := func(f frame, reply func(frame)) {
		if f.Type == frameJob {
			crasher.die()
			close(crashed)
		}
	}
	healthy := echoWorker(t)

	shards := make([]*shard, 2)
	crasher = startScriptedWorker(t, crasherHandler)
	cconn := crasher.conn
	shards[0] = &shard{idx: 0, conn: cconn, kill: func() { _ = cconn.close() }}
	w := startScriptedWorker(t, healthy)
	hconn := w.conn
	shards[1] = &shard{idx: 1, conn: hconn, kill: func() { _ = hconn.close() }}
	p := newPool(shards, DefaultCrashRetries)
	t.Cleanup(p.Close)

	// Two jobs: whichever shard order the free list hands out, the
	// crasher dies on its first job and that job must fail over.
	results, err := runSpecs(p, 2, Options{})
	if err != nil {
		t.Fatalf("run with crash failover: %v", err)
	}
	<-crashed
	for i, r := range results {
		if r.Value == nil || r.Value.Outcome.KeyDead != i {
			t.Errorf("job %d lost or misplaced after failover", i)
		}
	}
	if got := p.Alive(); got != 1 {
		t.Errorf("Alive() = %d, want 1", got)
	}
}

// TestCrashRetriesExhausted: with no failover budget, a dying worker
// surfaces as a WorkerLostError naming the shard.
func TestCrashRetriesExhausted(t *testing.T) {
	var w *scriptedWorker
	w = startScriptedWorker(t, func(f frame, reply func(frame)) {
		if f.Type == frameJob {
			w.die()
		}
	})
	conn := w.conn
	p := newPool([]*shard{{idx: 0, conn: conn, kill: func() { _ = conn.close() }}}, 0)
	t.Cleanup(p.Close)
	_, err := p.Submit(context.Background(), markedSpec(0))
	var lost *WorkerLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want *WorkerLostError", err)
	}
	if lost.Shard != 0 || lost.Attempts != 1 {
		t.Errorf("WorkerLostError = %+v, want shard 0, 1 attempt", lost)
	}
}

// TestWireIntegrityMismatch: a result whose decoded digest disagrees
// with the worker's claimed digest fails the job loudly.
func TestWireIntegrityMismatch(t *testing.T) {
	p := scriptedPool(t, 0, func(f frame, reply func(frame)) {
		if f.Type != frameJob {
			return
		}
		res := okReply(t, 7)
		res.Digest = strings.Repeat("0", 64) // claim a different outcome
		reply(res)
	})
	_, err := p.Submit(context.Background(), markedSpec(0))
	if err == nil || !strings.Contains(err.Error(), "wire integrity") {
		t.Fatalf("err = %v, want a wire-integrity failure", err)
	}
}

// TestRunJobTimeout: engine.Options.Timeout bounds a job even when the
// worker sits on it; the worker gets a cancel frame it can ack.
func TestRunJobTimeout(t *testing.T) {
	var canceled atomic.Bool
	p := scriptedPool(t, 0, func(f frame, reply func(frame)) {
		switch f.Type {
		case frameJob:
			// never answer
		case frameCancel:
			canceled.Store(true)
			reply(frame{ErrKind: errKindCanceled, ErrMsg: "canceled"})
		}
	})
	_, err := runSpecs(p, 1, Options{Job: engine.Options{Timeout: 50 * time.Millisecond}})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline-exceeded timeout", err)
	}
	for i := 0; !canceled.Load() && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if !canceled.Load() {
		t.Error("timed-out job never sent the worker a cancel frame")
	}
}

// TestHandshakeRejectsVersionMismatch: a worker speaking another
// protocol version fails pool construction, not the first job.
func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	cside, wside := net.Pipe()
	defer cside.Close()
	go func() {
		w := newLineConn(wside)
		_ = w.send(frame{Type: frameHello, Proto: ProtoVersion + 1})
	}()
	err := handshake(newLineConn(cside))
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("err = %v, want a protocol-version mismatch", err)
	}
}

// TestHandshakeRejectsNonHello: anything but a hello first is refused.
func TestHandshakeRejectsNonHello(t *testing.T) {
	cside, wside := net.Pipe()
	defer cside.Close()
	go func() {
		w := newLineConn(wside)
		_ = w.send(frame{Type: frameResult, ID: 1})
	}()
	err := handshake(newLineConn(cside))
	if err == nil || !strings.Contains(err.Error(), "hello") {
		t.Fatalf("err = %v, want a not-hello rejection", err)
	}
}

// TestStreamConnRoundTrip: the length-prefixed transport preserves
// frames byte for byte, including binary outcome payloads.
func TestStreamConnRoundTrip(t *testing.T) {
	pr, pw := io.Pipe()
	a := newStreamConn(nil, pw, nil)
	b := newStreamConn(pr, nil, nil)
	sent := frame{Type: frameResult, ID: 42, Outcome: []byte{0, 1, 2, 0xff, '\n', 0x80}, Digest: "abc", ElapsedSec: 1.5}
	go func() {
		if err := a.send(sent); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err := b.recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != sent.Type || got.ID != sent.ID || !bytes.Equal(got.Outcome, sent.Outcome) ||
		got.Digest != sent.Digest || got.ElapsedSec != sent.ElapsedSec {
		t.Errorf("round trip mangled the frame: %+v != %+v", got, sent)
	}
}

// TestStreamConnOversizeFrame: a corrupt length prefix is rejected
// before it becomes an allocation.
func TestStreamConnOversizeFrame(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	c := newStreamConn(bytes.NewReader(hdr), nil, nil)
	if _, err := c.recv(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want an oversize-frame rejection", err)
	}
}

// TestServeAnswersBadSpec: a job frame carrying undecodable spec JSON
// gets an error result, not a dead worker.
func TestServeAnswersBadSpec(t *testing.T) {
	cside, wside := net.Pipe()
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	go func() { _ = Serve(sctx, newLineConn(wside), nil) }()
	coord := newLineConn(cside)
	defer coord.close()
	if err := handshake(coord); err != nil {
		t.Fatal(err)
	}
	if err := coord.send(frame{Type: frameJob, ID: 9, Spec: []byte(`{"kind": [42]}`)}); err != nil {
		t.Fatal(err)
	}
	res, err := coord.recv()
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != frameResult || res.ID != 9 || res.ErrKind != errKindError {
		t.Fatalf("bad spec answered with %+v, want an error result for job 9", res)
	}
}

// TestServeRejectsUnknownFrame: an off-protocol frame tears the session
// down with a named error rather than being silently ignored.
func TestServeRejectsUnknownFrame(t *testing.T) {
	cside, wside := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(context.Background(), newLineConn(wside), nil) }()
	coord := newLineConn(cside)
	defer coord.close()
	if err := handshake(coord); err != nil {
		t.Fatal(err)
	}
	if err := coord.send(frame{Type: "gossip"}); err != nil {
		t.Fatal(err)
	}
	err := <-served
	if err == nil || !strings.Contains(err.Error(), "gossip") {
		t.Fatalf("Serve returned %v, want an unexpected-frame error naming the type", err)
	}
}
