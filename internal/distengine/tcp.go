package distengine

import (
	"context"
	"fmt"
	"net"
	"time"
)

// DialConfig configures a TCP-mode pool: the workers are already running
// (cmd/wrsnworker -listen, possibly on other hosts) and the coordinator
// dials one connection per address, speaking newline-delimited JSON —
// the internal/testbed wire idiom.
type DialConfig struct {
	// Addrs are the worker endpoints, one shard each; must be non-empty.
	Addrs []string
	// CrashRetries is the failover budget per job; negative gets
	// DefaultCrashRetries, 0 disables failover.
	CrashRetries int
	// Timeout bounds each dial + hello handshake; non-positive gets the
	// default handshake timeout.
	Timeout time.Duration
}

// Dial connects to every configured worker and returns a Pool over the
// connections. Construction fails — closing whatever was already
// connected — if any endpoint is unreachable or fails the handshake.
// Canceling ctx after construction closes the connections, which the
// serving workers observe as a disconnect and abandon in-flight jobs.
func Dial(ctx context.Context, cfg DialConfig) (*Pool, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("distengine: dial pool needs ≥ 1 worker address")
	}
	if cfg.CrashRetries < 0 {
		cfg.CrashRetries = DefaultCrashRetries
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = defaultHandshakeTimeout
	}

	shards := make([]*shard, 0, len(cfg.Addrs))
	fail := func(err error) (*Pool, error) {
		for _, s := range shards {
			s.kill()
		}
		return nil, err
	}
	dialer := net.Dialer{Timeout: timeout}
	for i, addr := range cfg.Addrs {
		raw, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			return fail(fmt.Errorf("distengine: dial shard %d (%s): %w", i, addr, err))
		}
		conn := newLineConn(raw)
		s := &shard{
			idx:  i,
			conn: conn,
			kill: func() { _ = raw.Close() },
		}
		shards = append(shards, s)
		if err := handshakeTimeout(conn, timeout); err != nil {
			return fail(fmt.Errorf("distengine: shard %d (%s): %w", i, addr, err))
		}
	}
	p := newPool(shards, cfg.CrashRetries)
	// Tie the connections to the session context, mirroring the exec
	// mode's CommandContext teardown: cancellation severs every shard.
	go func() {
		<-ctx.Done()
		for _, s := range p.shards {
			s.kill()
		}
	}()
	return p, nil
}
