// Package faults is the deterministic fault-injection subsystem: a
// seed-driven Spec expands into a Plan — node hardware
// failure/recovery pairs, charging-request message loss, charger
// breakdown/repair windows, and sink outage windows — whose events are
// compiled onto a campaign's discrete-event engine. The plan draws from
// its own rng stream (split off the fault seed, never the campaign
// stream), so injecting faults perturbs the simulated world without
// perturbing any draw the fault-free run would have made: an empty plan
// is byte-identical to no plan at all.
//
// Determinism contract: New(spec, nodes) is a pure function of its
// arguments — the same spec always yields the same event list. A Plan
// carries run-local state (the message-loss stream), so it is
// single-use: build a fresh Plan from the same Spec to reproduce a run
// exactly.
package faults

import (
	"fmt"
	"math"
	"sort"

	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/sim"
)

// Kind classifies one fault event.
type Kind int

// Fault event kinds. Down kinds carry the matching recovery time in
// Event.Until; Up kinds restore the faulted component.
const (
	// NodeDown powers a sensor node off (hardware fault): it stops
	// sensing, relaying, and draining until NodeUp repairs it.
	NodeDown Kind = iota + 1
	NodeUp
	// ChargerDown opens a charger breakdown window: sessions suspend and
	// policies park until ChargerUp.
	ChargerDown
	ChargerUp
	// SinkDown opens a sink outage window: charging requests cannot
	// reach the sink and audits pause until SinkUp.
	SinkDown
	SinkUp
)

// String implements fmt.Stringer with stable dot-scoped names (they
// become engine event names and telemetry event kinds).
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node.down"
	case NodeUp:
		return "node.up"
	case ChargerDown:
		return "charger.down"
	case ChargerUp:
		return "charger.up"
	case SinkDown:
		return "sink.down"
	case SinkUp:
		return "sink.up"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// T is when the fault fires, in simulated seconds.
	T float64
	// Kind classifies the fault.
	Kind Kind
	// Node is the subject node id for NodeDown/NodeUp; -1 otherwise.
	Node int
	// Until is the scheduled recovery time for Down kinds (the matching
	// Up event, which is omitted from the plan when it falls beyond the
	// horizon); 0 for Up kinds.
	Until float64
}

// Spec parameterizes plan generation. Counts are totals over the
// horizon; durations are means of exponential draws.
type Spec struct {
	// Seed drives the fault streams (independent of the campaign seed).
	Seed uint64
	// HorizonSec bounds event generation; non-positive yields a plan
	// with no scheduled events (request loss still applies).
	HorizonSec float64
	// NodeFailures is the number of node hardware failures to inject at
	// uniform times on uniformly drawn nodes.
	NodeFailures int
	// NodeRepairMeanSec is the mean hardware-repair delay; non-positive
	// gets 12 h.
	NodeRepairMeanSec float64
	// RequestLossProb is the probability an issued charging request is
	// lost in transit (the node retransmits with capped exponential
	// backoff); clamped to [0, 0.95].
	RequestLossProb float64
	// ChargerBreakdowns is the number of charger breakdown windows.
	ChargerBreakdowns int
	// ChargerRepairMeanSec is the mean breakdown duration; non-positive
	// gets 6 h.
	ChargerRepairMeanSec float64
	// SinkOutages is the number of sink outage windows.
	SinkOutages int
	// SinkOutageMeanSec is the mean outage duration; non-positive gets
	// 2 h.
	SinkOutageMeanSec float64
}

// DefaultSpec returns the reference fault load at intensity 1: a few
// node failures, 5% request loss, a couple of charger breakdowns, and
// one sink outage over the horizon (non-positive horizonSec gets the
// campaign default of 14 days).
func DefaultSpec(seed uint64, horizonSec float64) Spec {
	if horizonSec <= 0 {
		horizonSec = 14 * 24 * 3600
	}
	return Spec{
		Seed:                 seed,
		HorizonSec:           horizonSec,
		NodeFailures:         4,
		NodeRepairMeanSec:    12 * 3600,
		RequestLossProb:      0.05,
		ChargerBreakdowns:    2,
		ChargerRepairMeanSec: 6 * 3600,
		SinkOutages:          1,
		SinkOutageMeanSec:    2 * 3600,
	}
}

// Scale multiplies the spec's fault load by intensity: event counts
// round to the nearest integer and the loss probability clamps at its
// ceiling. Intensity 0 (or negative) yields the empty spec — the
// reliable network.
func (s Spec) Scale(intensity float64) Spec {
	if intensity <= 0 {
		return Spec{Seed: s.Seed, HorizonSec: s.HorizonSec}
	}
	s.NodeFailures = int(math.Round(float64(s.NodeFailures) * intensity))
	s.ChargerBreakdowns = int(math.Round(float64(s.ChargerBreakdowns) * intensity))
	s.SinkOutages = int(math.Round(float64(s.SinkOutages) * intensity))
	s.RequestLossProb = clampLoss(s.RequestLossProb * intensity)
	return s
}

func clampLoss(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// Plan is a compiled fault schedule plus the message-loss channel. The
// zero value (and nil) is the empty plan: no events, no loss.
type Plan struct {
	// Events is the time-sorted fault schedule.
	Events []Event
	// RequestLossProb is the per-transmission request loss probability.
	RequestLossProb float64

	// loss is the plan's private loss stream; draws happen only when
	// RequestLossProb > 0, so an empty plan consumes nothing.
	loss *rng.Stream
}

// New expands a spec into a plan for a network of the given node count.
// Each fault family draws from its own child stream, so changing one
// family's count never shifts another family's times. Node failure
// windows never overlap on the same node, and charger/sink windows are
// merged when the draws overlap, so the runtime state machine is a
// simple open/closed toggle.
func New(spec Spec, nodes int) *Plan {
	root := rng.New(spec.Seed).Split("faults")
	nodeR := root.Split("node")
	chR := root.Split("charger")
	sinkR := root.Split("sink")
	p := &Plan{
		RequestLossProb: clampLoss(spec.RequestLossProb),
		loss:            root.Split("loss"),
	}
	h := spec.HorizonSec
	if h <= 0 {
		return p
	}

	// Node hardware failures: uniform failure times, exponential repair
	// delays. A failure drawn inside an earlier window on the same node
	// is skipped (its draws are still consumed, keeping the sequence a
	// pure function of the spec).
	repairMean := spec.NodeRepairMeanSec
	if repairMean <= 0 {
		repairMean = 12 * 3600
	}
	busy := make(map[int]float64)
	for i := 0; i < spec.NodeFailures && nodes > 0; i++ {
		t := nodeR.Uniform(0, h)
		id := nodeR.Intn(nodes)
		d := nodeR.Exp(1 / repairMean)
		if t < busy[id] {
			continue
		}
		end := t + d
		busy[id] = end
		p.Events = append(p.Events, Event{T: t, Kind: NodeDown, Node: id, Until: end})
		if end < h {
			p.Events = append(p.Events, Event{T: end, Kind: NodeUp, Node: id})
		}
	}

	chMean := spec.ChargerRepairMeanSec
	if chMean <= 0 {
		chMean = 6 * 3600
	}
	p.Events = append(p.Events, windows(chR, spec.ChargerBreakdowns, chMean, h, ChargerDown, ChargerUp)...)
	sinkMean := spec.SinkOutageMeanSec
	if sinkMean <= 0 {
		sinkMean = 2 * 3600
	}
	p.Events = append(p.Events, windows(sinkR, spec.SinkOutages, sinkMean, h, SinkDown, SinkUp)...)

	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].T < p.Events[j].T })
	return p
}

// windows draws k (start, duration) windows, merges overlaps, and emits
// the Down/Up event pairs (the Up is omitted when it falls beyond the
// horizon — the window stays open to the end of the run).
func windows(r *rng.Stream, k int, meanSec, horizon float64, down, up Kind) []Event {
	type win struct{ from, to float64 }
	ws := make([]win, 0, k)
	for i := 0; i < k; i++ {
		t := r.Uniform(0, horizon)
		d := r.Exp(1 / meanSec)
		ws = append(ws, win{from: t, to: t + d})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
	merged := ws[:0]
	for _, w := range ws {
		if n := len(merged); n > 0 && w.from <= merged[n-1].to {
			if w.to > merged[n-1].to {
				merged[n-1].to = w.to
			}
			continue
		}
		merged = append(merged, w)
	}
	evs := make([]Event, 0, 2*len(merged))
	for _, w := range merged {
		evs = append(evs, Event{T: w.from, Kind: down, Node: -1, Until: w.to})
		if w.to < horizon {
			evs = append(evs, Event{T: w.to, Kind: up, Node: -1})
		}
	}
	return evs
}

// Empty reports whether the plan injects nothing: no scheduled events
// and no request loss. A nil plan is empty.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && p.RequestLossProb <= 0)
}

// LoseRequest draws whether one request transmission is lost. It is
// nil-safe and consumes no randomness when the loss probability is zero,
// so the fault-free request path makes exactly the draws it always did.
func (p *Plan) LoseRequest() bool {
	if p == nil || p.RequestLossProb <= 0 || p.loss == nil {
		return false
	}
	return p.loss.Bool(p.RequestLossProb)
}

// Hooks receives compiled fault events. Sync, when set, runs before
// every hook with the event's timestamp — the world uses it to catch
// its clock up to the fault instant before applying it. Nil hooks are
// skipped.
type Hooks struct {
	Sync        func(now float64)
	NodeDown    func(id int)
	NodeUp      func(id int)
	ChargerDown func(until float64)
	ChargerUp   func()
	SinkDown    func(until float64)
	SinkUp      func()
}

// EventKind is the keyed-event kind fault events schedule under; the
// event argument is the index into Plan.Events.
const EventKind = "fault"

// Bind registers the plan's dispatch handler on the engine without
// scheduling anything. Compile calls it before scheduling; the resume
// path calls it alone and restores the recorded pending events instead.
// A nil plan binds nothing.
func Bind(p *Plan, eng *sim.Engine, h Hooks) {
	if p == nil {
		return
	}
	eng.Bind(EventKind, func(e *sim.Engine, arg int) {
		if arg < 0 || arg >= len(p.Events) {
			return
		}
		ev := p.Events[arg]
		if h.Sync != nil {
			h.Sync(e.Now())
		}
		switch ev.Kind {
		case NodeDown:
			if h.NodeDown != nil {
				h.NodeDown(ev.Node)
			}
		case NodeUp:
			if h.NodeUp != nil {
				h.NodeUp(ev.Node)
			}
		case ChargerDown:
			if h.ChargerDown != nil {
				h.ChargerDown(ev.Until)
			}
		case ChargerUp:
			if h.ChargerUp != nil {
				h.ChargerUp()
			}
		case SinkDown:
			if h.SinkDown != nil {
				h.SinkDown(ev.Until)
			}
		case SinkUp:
			if h.SinkUp != nil {
				h.SinkUp()
			}
		}
	})
}

// Compile schedules every event of the plan onto the engine as keyed
// events (kind EventKind, arg = event index), so an in-flight plan
// serializes into a live snapshot and re-binds on resume. Events
// interleave with the world's own stepping in timestamp order (ties
// break by scheduling sequence, so faults compiled at construction run
// before same-instant world steps). A nil or empty plan compiles to
// nothing.
func Compile(p *Plan, eng *sim.Engine, h Hooks) error {
	if p == nil {
		return nil
	}
	Bind(p, eng, h)
	for i, ev := range p.Events {
		if err := eng.AtKeyed(ev.T, EventKind, i, "fault."+ev.Kind.String()); err != nil {
			return err
		}
	}
	return nil
}

// LossState returns the message-loss stream's generator position, or nil
// when the plan draws no loss randomness. The captured state feeds
// RestoreLoss on resume so loss draws continue the original sequence.
func (p *Plan) LossState() *[4]uint64 {
	if p == nil || p.loss == nil {
		return nil
	}
	st := p.loss.State()
	return &st
}

// RestoreLoss positions the message-loss stream at a captured state.
func (p *Plan) RestoreLoss(st [4]uint64) {
	if p == nil {
		return
	}
	p.loss = rng.FromState(st)
}

// Window is one closed downtime interval of the sink.
type Window struct {
	From float64
	To   float64
}

// Report is the fault ledger of one run: what was injected, what the
// system absorbed, and what stuck. The campaign's ledger accumulates it
// and the Outcome exposes it through FaultReport.
type Report struct {
	// NodeFailures counts hardware failures applied (a draw landing on
	// an already-dead node is a no-op and does not count);
	// NodeRecoveries counts repairs that returned a node to service.
	NodeFailures   int
	NodeRecoveries int
	// RequestsLost counts lost request transmissions; RequestsRecovered
	// counts requests that got through on a retransmission after at
	// least one loss.
	RequestsLost      int
	RequestsRecovered int
	// ChargerBreakdowns / ChargerRepairs count breakdown windows opened
	// and closed; ChargerDownSec is the cumulative downtime.
	ChargerBreakdowns int
	ChargerRepairs    int
	ChargerDownSec    float64
	// SinkOutages / SinkRestores count outage windows opened and
	// closed; SinkDownSec is the cumulative unreachable time and
	// SinkWindows marks the intervals themselves.
	SinkOutages  int
	SinkRestores int
	SinkDownSec  float64
	SinkWindows  []Window
}

// Injected counts every fault applied to the run.
func (r Report) Injected() int {
	return r.NodeFailures + r.RequestsLost + r.ChargerBreakdowns + r.SinkOutages
}

// Survived counts faults the system absorbed: repaired nodes, requests
// that got through on retransmission, repaired chargers, restored sinks.
func (r Report) Survived() int {
	return r.NodeRecoveries + r.RequestsRecovered + r.ChargerRepairs + r.SinkRestores
}

// Fatal counts faults never recovered from by the end of the run.
func (r Report) Fatal() int {
	if f := r.Injected() - r.Survived(); f > 0 {
		return f
	}
	return 0
}
