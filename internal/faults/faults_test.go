package faults

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/sim"
)

func TestNewIsDeterministic(t *testing.T) {
	spec := DefaultSpec(42, 14*24*3600)
	a := New(spec, 100)
	b := New(spec, 100)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("same spec produced different plans:\n%v\nvs\n%v", a.Events, b.Events)
	}
	if len(a.Events) == 0 {
		t.Fatal("default spec produced no events")
	}
	// The loss streams must agree draw-for-draw too.
	for i := 0; i < 1000; i++ {
		if a.LoseRequest() != b.LoseRequest() {
			t.Fatalf("loss streams diverged at draw %d", i)
		}
	}
}

func TestPlanEventsSortedAndBounded(t *testing.T) {
	const horizon = 7 * 24 * 3600
	p := New(DefaultSpec(7, horizon), 50)
	for i, ev := range p.Events {
		if ev.T < 0 || ev.T >= horizon {
			// Up events land exactly at Until < horizon; Down events are
			// uniform in [0, horizon).
			t.Errorf("event %d at %v outside [0,%v)", i, ev.T, horizon)
		}
		if i > 0 && p.Events[i-1].T > ev.T {
			t.Errorf("events out of order at %d: %v > %v", i, p.Events[i-1].T, ev.T)
		}
	}
}

func TestDownUpPairing(t *testing.T) {
	p := New(DefaultSpec(123, 30*24*3600), 80)
	// Every NodeUp must follow a NodeDown for the same node at the down's
	// Until; node windows on the same node must not overlap.
	lastEnd := map[int]float64{}
	pendingUp := map[int]float64{}
	for _, ev := range p.Events {
		switch ev.Kind {
		case NodeDown:
			if ev.T < lastEnd[ev.Node] {
				t.Errorf("node %d fails at %v inside earlier window ending %v", ev.Node, ev.T, lastEnd[ev.Node])
			}
			lastEnd[ev.Node] = ev.Until
			pendingUp[ev.Node] = ev.Until
		case NodeUp:
			want, ok := pendingUp[ev.Node]
			if !ok {
				t.Errorf("NodeUp for %d without a pending NodeDown", ev.Node)
			} else if ev.T != want {
				t.Errorf("NodeUp for %d at %v, want %v", ev.Node, ev.T, want)
			}
			delete(pendingUp, ev.Node)
		}
	}
}

func TestWindowsMergeOverlaps(t *testing.T) {
	// Charger/sink windows must toggle strictly down, up, down, up…
	p := New(Spec{Seed: 5, HorizonSec: 14 * 24 * 3600, ChargerBreakdowns: 20, ChargerRepairMeanSec: 24 * 3600}, 10)
	downOpen := false
	for _, ev := range p.Events {
		switch ev.Kind {
		case ChargerDown:
			if downOpen {
				t.Fatalf("nested ChargerDown at %v", ev.T)
			}
			downOpen = true
		case ChargerUp:
			if !downOpen {
				t.Fatalf("ChargerUp without open window at %v", ev.T)
			}
			downOpen = false
		}
	}
}

func TestScale(t *testing.T) {
	base := DefaultSpec(1, 1e6)
	zero := base.Scale(0)
	if zero.NodeFailures != 0 || zero.ChargerBreakdowns != 0 || zero.SinkOutages != 0 || zero.RequestLossProb != 0 {
		t.Fatalf("Scale(0) not empty: %+v", zero)
	}
	if zero.Seed != base.Seed || zero.HorizonSec != base.HorizonSec {
		t.Fatalf("Scale(0) lost seed/horizon: %+v", zero)
	}
	if !New(zero, 100).Empty() {
		t.Fatal("plan from Scale(0) spec not Empty")
	}
	x2 := base.Scale(2)
	if x2.NodeFailures != 2*base.NodeFailures {
		t.Errorf("Scale(2) NodeFailures = %d, want %d", x2.NodeFailures, 2*base.NodeFailures)
	}
	if x2.RequestLossProb != 2*base.RequestLossProb {
		t.Errorf("Scale(2) RequestLossProb = %v, want %v", x2.RequestLossProb, 2*base.RequestLossProb)
	}
	if got := base.Scale(100).RequestLossProb; got != 0.95 {
		t.Errorf("loss probability not clamped: %v", got)
	}
}

func TestNilAndEmptyPlanNoOps(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not Empty")
	}
	if nilPlan.LoseRequest() {
		t.Error("nil plan lost a request")
	}
	empty := New(Spec{Seed: 9}, 100)
	if !empty.Empty() {
		t.Errorf("zero-load spec plan not Empty: %+v", empty.Events)
	}
	for i := 0; i < 100; i++ {
		if empty.LoseRequest() {
			t.Fatal("empty plan lost a request")
		}
	}
	eng := sim.New()
	if err := Compile(nilPlan, eng, Hooks{}); err != nil {
		t.Fatalf("Compile(nil): %v", err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("nil plan scheduled %d events", eng.Pending())
	}
}

func TestCompileFiresHooksInOrder(t *testing.T) {
	p := &Plan{Events: []Event{
		{T: 10, Kind: ChargerDown, Node: -1, Until: 20},
		{T: 15, Kind: NodeDown, Node: 3, Until: 40},
		{T: 20, Kind: ChargerUp, Node: -1},
		{T: 25, Kind: SinkDown, Node: -1, Until: 30},
		{T: 30, Kind: SinkUp, Node: -1},
		{T: 40, Kind: NodeUp, Node: 3},
	}}
	eng := sim.New()
	var trace []string
	var syncTimes []float64
	h := Hooks{
		Sync:        func(now float64) { syncTimes = append(syncTimes, now) },
		NodeDown:    func(id int) { trace = append(trace, "node.down") },
		NodeUp:      func(id int) { trace = append(trace, "node.up") },
		ChargerDown: func(until float64) { trace = append(trace, "charger.down") },
		ChargerUp:   func() { trace = append(trace, "charger.up") },
		SinkDown:    func(until float64) { trace = append(trace, "sink.down") },
		SinkUp:      func() { trace = append(trace, "sink.up") },
	}
	if err := Compile(p, eng, h); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"node.down", "node.up", "charger.down", "charger.up", "sink.down", "sink.up"}
	sort.Strings(want)
	got := append([]string(nil), trace...)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hook kinds = %v", trace)
	}
	wantOrder := []string{"charger.down", "node.down", "charger.up", "sink.down", "sink.up", "node.up"}
	if !reflect.DeepEqual(trace, wantOrder) {
		t.Fatalf("hook order = %v, want %v", trace, wantOrder)
	}
	if !reflect.DeepEqual(syncTimes, []float64{10, 15, 20, 25, 30, 40}) {
		t.Fatalf("sync times = %v", syncTimes)
	}
}

func TestLossRate(t *testing.T) {
	p := New(Spec{Seed: 77, HorizonSec: 1e6, RequestLossProb: 0.3}, 10)
	lost := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.LoseRequest() {
			lost++
		}
	}
	if rate := float64(lost) / n; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical loss rate %v, want ≈0.3", rate)
	}
}

func TestReportArithmetic(t *testing.T) {
	r := Report{
		NodeFailures: 4, NodeRecoveries: 3,
		RequestsLost: 10, RequestsRecovered: 8,
		ChargerBreakdowns: 2, ChargerRepairs: 1,
		SinkOutages: 1, SinkRestores: 1,
	}
	if got := r.Injected(); got != 17 {
		t.Errorf("Injected = %d, want 17", got)
	}
	if got := r.Survived(); got != 13 {
		t.Errorf("Survived = %d, want 13", got)
	}
	if got := r.Fatal(); got != 4 {
		t.Errorf("Fatal = %d, want 4", got)
	}
	if got := (Report{}).Fatal(); got != 0 {
		t.Errorf("zero report Fatal = %d", got)
	}
}
