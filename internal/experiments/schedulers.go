package experiments

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// RunSchedulers is R-Tab 6 (extension): the on-demand scheduling policies
// compared as legitimate baselines — queueing delay, travel, service rate
// and deaths under a single charger. It grounds the evaluation's choice
// of NJNP and quantifies the latency/travel trade the tour-based policy
// makes. The policy × seed grid fans out over the worker pool; each job
// constructs its own scheduler instance, since tour-based policies carry
// state.
func RunSchedulers(ctx context.Context, cfg Config) (*Output, error) {
	// Policies only differentiate under queue contention; size the
	// network so a single charger runs at high utilization.
	n := 500
	if cfg.Quick {
		n = 250
	}
	// Schedulers ride by name: each job's run resolves the name to a
	// fresh instance (charging.ByName), which matters for tour-based
	// policies that carry state — and makes the job spec serializable,
	// so the sweep can ship to worker processes unchanged.
	schedulers := []string{
		charging.NJNP{}.Name(),
		charging.FCFS{}.Name(),
		charging.EDF{}.Name(),
		(&charging.PeriodicTSP{}).Name(),
	}
	seeds := cfg.seeds()

	type job struct {
		sched int
		seed  uint64
	}
	jobs := make([]job, 0, len(schedulers)*seeds)
	for si := range schedulers {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{sched: si, seed: cfg.seed(s)})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		return runOneLegit(ctx, cfg, j.seed, n, jobspec.Campaign{Scheduler: schedulers[j.sched]})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Tab 6 — on-demand scheduling policies (legitimate service)",
		"scheduler", "mean_wait_h", "served_frac", "dead", "energy_mj", "utility_mj")
	waitSeries := &metrics.Series{Label: "mean_wait_h"}
	var points []PointTiming
	k := 0
	for si, name := range schedulers {
		var wait, served, dead, energy, util metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			o := outs[k].Value
			k++
			wait.Add(o.MeanWaitSec / 3600)
			served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
			dead.Add(float64(o.DeadTotal))
			energy.Add(o.EnergySpentJ / 1e6)
			util.Add(o.CoverUtilityJ / 1e6)
		}
		tbl.AddRowf(name, wait.Mean(), served.Mean(), dead.Mean(), energy.Mean(), util.Mean())
		waitSeries.Append(float64(si), wait.Mean())
		points = append(points, PointTiming{Label: name, Elapsed: sumElapsed(outs, row, k)})
	}
	return &Output{
		ID: "rtab6", Title: "Scheduler comparison (extension)",
		Table: tbl, XName: "scheduler_index",
		Series: []*metrics.Series{waitSeries},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension: legitimate on-demand policies under one saturated charger.",
			"Expected shape: at saturation the policies separate sharply — NJNP's travel thrift wins (fewest deaths, shortest waits); FCFS squanders the budget criss-crossing the field and collapses; EDF saves urgent nodes at the cost of long average waits; PeriodicTSP sits between.",
		},
	}, nil
}
