package experiments

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// RunLifetime reproduces R-Fig 8: the time series of connected (alive and
// sink-reachable) nodes and surviving key nodes over the horizon, under
// legitimate service versus the CSA attack. The gap between the two
// connected-node curves is the damage the attack inflicts while staying
// invisible to the charging telemetry. The two campaigns are independent
// and run concurrently on the worker pool.
func RunLifetime(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	sampleEvery := 6 * 3600.0
	seed := cfg.seed(0)

	outs, err := mapTimed(ctx, cfg, 2, func(ctx context.Context, i int) (*campaign.Outcome, error) {
		if i == 0 {
			return runOneLegit(ctx, cfg, seed, n, jobspec.Campaign{SampleEverySec: sampleEvery})
		}
		return runOneAttack(ctx, cfg, seed, n, jobspec.Campaign{
			Solver: campaign.SolverCSA, SampleEverySec: sampleEvery,
		})
	})
	if err != nil {
		return nil, err
	}
	legit, att := outs[0].Value, outs[1].Value

	connLegit := &metrics.Series{Label: "connected_legit"}
	connAtt := &metrics.Series{Label: "connected_csa"}
	keyLegit := &metrics.Series{Label: "keys_alive_legit"}
	keyAtt := &metrics.Series{Label: "keys_alive_csa"}
	tbl := report.NewTable("R-Fig 8 — network lifetime, attack vs legitimate",
		"day", "connected_legit", "connected_csa", "keys_alive_legit", "keys_alive_csa")
	steps := len(legit.Samples)
	if len(att.Samples) < steps {
		steps = len(att.Samples)
	}
	for i := 0; i < steps; i++ {
		l, a := legit.Samples[i], att.Samples[i]
		day := l.T / 86400
		tbl.AddRowf(day, l.Connected, a.Connected, l.KeyAlive, a.KeyAlive)
		connLegit.Append(day, float64(l.Connected))
		connAtt.Append(day, float64(a.Connected))
		keyLegit.Append(day, float64(l.KeyAlive))
		keyAtt.Append(day, float64(a.KeyAlive))
	}
	return &Output{
		ID: "rfig8", Title: "Network lifetime under attack",
		Table: tbl, XName: "day",
		Series: []*metrics.Series{connLegit, connAtt, keyLegit, keyAtt},
		Timing: Timing{Points: []PointTiming{
			{Label: "legit", Elapsed: outs[0].Elapsed},
			{Label: "csa", Elapsed: outs[1].Elapsed},
		}},
		Notes: []string{
			"Expected shape: legitimate service holds connectivity ≈ N for the whole horizon; under CSA, key-node deaths produce cliff-shaped connectivity collapses while the charging telemetry stays clean.",
		},
	}, nil
}
