package experiments

import (
	"context"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast: smallest sweeps, one seed.
var quickCfg = Config{Quick: true, Seeds: 1}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("experiment count = %d, want 20", len(all))
	}
	seen := make(map[string]bool, len(all))
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRectifierCurveShape(t *testing.T) {
	out, err := RunRectifierCurve(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	dc := out.Series[0]
	if dc.Len() == 0 {
		t.Fatal("empty series")
	}
	// Zero below the dead zone, monotone overall.
	sawZero, sawPositive := false, false
	for i := 0; i < dc.Len(); i++ {
		if dc.X[i] <= 1e-4 && dc.Y[i] == 0 {
			sawZero = true
		}
		if dc.Y[i] > 0 {
			sawPositive = true
		}
		if i > 0 && dc.Y[i] < dc.Y[i-1]-1e-12 {
			t.Fatalf("DC curve decreased at %v", dc.X[i])
		}
	}
	if !sawZero || !sawPositive {
		t.Error("curve lacks dead zone or conversion region")
	}
}

func TestSuperpositionShape(t *testing.T) {
	out, err := RunSuperpositionSweep(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	rf := out.Series[0]
	// Maximum at phase 0, collapse at π.
	var atPi, at0 float64
	for i := 0; i < rf.Len(); i++ {
		if rf.X[i] == 0 {
			at0 = rf.Y[i]
		}
		if rf.X[i] > 3.14 && rf.X[i] < 3.15 {
			atPi = rf.Y[i]
		}
	}
	if at0 <= 0 {
		t.Fatal("no power at phase 0")
	}
	if atPi > at0/1e6 {
		t.Errorf("no collapse at π: %v vs %v", atPi, at0)
	}
}

func TestNullSteeringShape(t *testing.T) {
	out, err := RunNullSteering(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Precision jitter (series index 1 = 1e-3) must succeed everywhere;
	// commodity jitter (last sigma) must fail everywhere.
	var precision, commodity *seriesRef
	for _, s := range out.Series {
		if s.Label == "success_sigma_1e-3" {
			precision = &seriesRef{s.Y}
		}
		if s.Label == "success_sigma_2deg" {
			commodity = &seriesRef{s.Y}
		}
	}
	if precision == nil || commodity == nil {
		t.Fatal("expected success series missing")
	}
	// Close to the charger the jitter leakage dominates the band target
	// and single-draw carrier misses cost a few percent; success must
	// still be high everywhere and very high on average.
	var sum float64
	for _, y := range precision.y {
		sum += y
		if y < 0.7 {
			t.Errorf("precision-jitter success %v < 0.7", y)
		}
	}
	if mean := sum / float64(len(precision.y)); mean < 0.85 {
		t.Errorf("precision-jitter mean success %v < 0.85", mean)
	}
	for _, y := range commodity.y {
		if y != 0 {
			t.Errorf("commodity-jitter success %v, want 0", y)
		}
	}
}

type seriesRef struct{ y []float64 }

func TestExhaustionVsN(t *testing.T) {
	out, err := RunExhaustionVsN(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Rows() == 0 || len(out.Series) != 4 {
		t.Fatalf("table rows=%d series=%d", out.Table.Rows(), len(out.Series))
	}
	// The CSA series carries the headline: stealthy exhaustion ≥ 0.8.
	for _, s := range out.Series {
		if s.Label != "CSA" {
			continue
		}
		for i := 0; i < s.Len(); i++ {
			if s.Y[i] < 0.8 {
				t.Errorf("CSA stealthy exhaustion %.2f at n=%v", s.Y[i], s.X[i])
			}
		}
	}
}

func TestUtilityVsBudget(t *testing.T) {
	out, err := RunUtilityVsBudget(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Utility must be non-decreasing in budget for CSA, and Direct flat 0.
	for _, s := range out.Series {
		switch s.Label {
		case "CSA":
			for i := 1; i < s.Len(); i++ {
				if s.Y[i] < s.Y[i-1]-1e-9 {
					t.Errorf("CSA utility fell with budget: %v", s.Y)
				}
			}
		case "Direct":
			for _, y := range s.Y {
				if y != 0 {
					t.Errorf("Direct earned utility %v", y)
				}
			}
		}
	}
}

func TestDetectionROC(t *testing.T) {
	out, err := RunDetectionROC(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Rows() == 0 {
		t.Fatal("empty ROC table")
	}
	txt := out.Table.String()
	if !strings.Contains(txt, "utility-shortfall") {
		t.Error("detector rows missing")
	}
}

func TestApproxRatio(t *testing.T) {
	out, err := RunApproxRatio(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := out.Series[0]
	for i := 0; i < mean.Len(); i++ {
		if mean.Y[i] < 0.7 {
			t.Errorf("mean ratio %.3f at %v sites", mean.Y[i], mean.X[i])
		}
	}
}

func TestLifetime(t *testing.T) {
	out, err := RunLifetime(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 4 {
		t.Fatalf("series = %d", len(out.Series))
	}
	// Legit connectivity stays flat; attacked connectivity must collapse
	// below it by the horizon.
	legit, att := out.Series[0], out.Series[1]
	last := legit.Len() - 1
	if att.Y[last] >= legit.Y[last] {
		t.Errorf("no connectivity damage: attack %v vs legit %v", att.Y[last], legit.Y[last])
	}
}

func TestRuntime(t *testing.T) {
	out, err := RunRuntime(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Series[0]
	for i := 0; i < s.Len(); i++ {
		if s.Y[i] <= 0 {
			t.Errorf("non-positive runtime at n=%v", s.X[i])
		}
		if s.Y[i] > 5000 {
			t.Errorf("CSA planning took %.0f ms at n=%v", s.Y[i], s.X[i])
		}
	}
}

func TestHeadlineTable(t *testing.T) {
	out, err := RunHeadline(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Rows() != 6 {
		t.Fatalf("rows = %d, want 3 deployments × 2 solvers", out.Table.Rows())
	}
}

func TestAblationsTable(t *testing.T) {
	out, err := RunAblations(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Rows() != 7 {
		t.Fatalf("rows = %d", out.Table.Rows())
	}
}

func TestTestbedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	out, err := RunTestbed(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.Rows() != 2 {
		t.Fatalf("rows = %d", out.Table.Rows())
	}
}

func TestRandomInstanceValid(t *testing.T) {
	in := RandomInstance(rngFor(1), 10, 2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Mandatories()) != 2 {
		t.Errorf("targets = %d", len(in.Mandatories()))
	}
}

func TestCounterWitnessShape(t *testing.T) {
	out, err := RunCounterWitness(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// k=2 floods witnesses; k≥3 silences them.
	for _, s := range out.Series {
		switch s.Label {
		case "witness_rf_k2":
			for i := 0; i < s.Len(); i++ {
				if s.Y[i] < 1e-3 {
					t.Errorf("k=2 witness field %v unexpectedly silent", s.Y[i])
				}
			}
		case "witness_rf_k4":
			for i := 0; i < s.Len(); i++ {
				if s.Y[i] >= 1e-3 {
					t.Errorf("k=4 witness field %v above attestation floor", s.Y[i])
				}
			}
		}
	}
}

func TestDefenseVerificationShape(t *testing.T) {
	// One quick seed can legitimately have a single spoof that dodges a
	// 40% check; average over a few seeds for a stable shape.
	out, err := RunDefenseVerification(context.Background(), Config{Quick: true, Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	exposed := out.Series[1]
	// No verification → no exposure; heavy verification → usually exposed.
	if exposed.Y[0] != 0 {
		t.Errorf("exposed at q=0: %v", exposed.Y[0])
	}
	last := exposed.Len() - 1
	if exposed.X[last] >= 0.4 && exposed.Y[last] == 0 {
		t.Errorf("never exposed at q=%v", exposed.X[last])
	}
}

func TestFleetShape(t *testing.T) {
	out, err := RunFleet(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	busy := out.Series[1]
	for i := 1; i < busy.Len(); i++ {
		if busy.Y[i] >= busy.Y[i-1] {
			t.Errorf("busy fraction did not drop with fleet size: %v", busy.Y)
		}
	}
}
