package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/testbed"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// RunHeadline reproduces R-Tab 1: the paper's headline claim across
// deployment patterns — exhaustion ratio, stealth, and how much genuine
// charging service the network still received, for the CSA attacker
// against the no-cover Direct attacker. The pattern × solver × seed grid
// fans out over the worker pool.
func RunHeadline(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	patterns := []trace.Deployment{trace.DeployUniform, trace.DeployClustered, trace.DeployCorridor}
	specs := []struct {
		solver string
		noFill bool
	}{{campaign.SolverCSA, false}, {campaign.SolverDirect, true}}
	seeds := cfg.seeds()

	type job struct {
		pat  trace.Deployment
		spec int
		seed uint64
	}
	jobs := make([]job, 0, len(patterns)*len(specs)*seeds)
	for _, pat := range patterns {
		for si := range specs {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{pat: pat, spec: si, seed: cfg.seed(s)})
			}
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		sc := trace.DefaultScenario(j.seed, n)
		sc.Deploy.Pattern = j.pat
		return runAttackOnScenario(ctx, cfg, sc, jobspec.Campaign{
			Seed: j.seed, Solver: specs[j.spec].solver, NoFill: specs[j.spec].noFill,
		})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Tab 1 — headline: exhaustion and stealth by scenario",
		"deployment", "solver", "keys", "exhaust_ratio", "detected_frac", "served_frac", "util_mj")
	var points []PointTiming
	k := 0
	for _, pat := range patterns {
		for _, spec := range specs {
			var keys, ratio, det, served, util metrics.Summary
			row := k
			for s := 0; s < seeds; s++ {
				o := outs[k].Value
				k++
				if len(o.KeyNodes) == 0 {
					continue // no separators: exhaustion is vacuous
				}
				keys.Add(float64(len(o.KeyNodes)))
				ratio.Add(o.KeyExhaustRatio())
				det.Add(b2f(o.Detected))
				served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
				util.Add(o.CoverUtilityJ / 1e6)
			}
			tbl.AddRowf(pat.String(), spec.solver, keys.Mean(), ratio.Mean(), det.Mean(), served.Mean(), util.Mean())
			points = append(points, PointTiming{
				Label:   fmt.Sprintf("%s/%s", pat, spec.solver),
				Elapsed: sumElapsed(outs, row, k),
			})
		}
	}
	return &Output{
		ID: "rtab1", Title: "Headline table",
		Table:  tbl,
		Timing: Timing{Points: points},
		Notes: []string{
			"Paper claim: CSA exhausts ≥80% of key nodes undetected; expect exhaust_ratio ≥ 0.8 with detected_frac 0 for CSA, and detected_frac ≈ 1 with low exhaustion for Direct.",
		},
	}, nil
}

// RunTestbed reproduces R-Tab 2: the TCP software-in-the-loop test bed —
// real node and charger agents exchanging protocol messages over loopback
// TCP — under attack and under legitimate service. The test bed runs real
// agents against the wall clock, so the two modes execute sequentially;
// parallelizing them would contend for CPU inside their real-time windows.
func RunTestbed(ctx context.Context, cfg Config) (*Output, error) {
	duration := 4000
	if cfg.Quick {
		duration = 1500
	}
	tbl := report.NewTable("R-Tab 2 — TCP software-in-the-loop test bed",
		"mode", "sessions", "deaths", "key_dead", "key_total", "detected")
	for _, mode := range []struct {
		name   string
		attack bool
	}{{"attack(CSA)", true}, {"legitimate", false}} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := testbed.Run(testbed.RunConfig{
			Nodes:          testbed.DefaultNodes(),
			Attack:         mode.attack,
			DurationRealMs: duration,
		})
		if err != nil {
			return nil, err
		}
		if len(rep.AgentErrs) > 0 {
			return nil, rep.AgentErrs[0]
		}
		tbl.AddRowf(mode.name, rep.Sessions, rep.NodesDead, rep.KeyDead, rep.KeyTotal, rep.Detected)
	}
	return &Output{
		ID: "rtab2", Title: "Software-in-the-loop test bed",
		Table: tbl,
		Notes: []string{
			"Substitute for the paper's physical test bed (see DESIGN.md): same protocol path over a real TCP stack.",
			"Expected: attack kills both key relays undetected; legitimate mode keeps every node alive.",
		},
	}, nil
}

// RunAblations reproduces R-Tab 3: removing one attack ingredient at a
// time shows why each exists. no-cover (Direct) and no-fill lose stealth;
// a single emitter cannot create the null, so the 'spoof' genuinely
// charges its victims; commodity phase jitter leaves residuals the
// rectifier harvests. The variant × seed grid fans out over the worker
// pool.
func RunAblations(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	variants := []struct {
		name string
		mut  func(*jobspec.Campaign)
	}{
		{"CSA (full)", func(*jobspec.Campaign) {}},
		{"no-cover (Direct)", func(c *jobspec.Campaign) { c.Solver = campaign.SolverDirect; c.NoFill = true }},
		{"no-fill (plan only)", func(c *jobspec.Campaign) { c.NoFill = true }},
		{"single-emitter", func(c *jobspec.Campaign) { c.SingleEmitter = true }},
		{"no-live-audit", func(c *jobspec.Campaign) { c.AuditEverySec = -1 }},
		{"progressive (extension)", func(c *jobspec.Campaign) { c.Progressive = true }},
		{"CSA+polish (extension)", func(c *jobspec.Campaign) { c.Solver = campaign.SolverCSAPolished }},
	}
	seeds := cfg.seeds()

	type job struct {
		variant int
		seed    uint64
	}
	jobs := make([]job, 0, len(variants)*seeds)
	for vi := range variants {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{variant: vi, seed: cfg.seed(s)})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		cc := jobspec.Campaign{Seed: j.seed, Solver: campaign.SolverCSA}
		variants[j.variant].mut(&cc)
		return runOneAttack(ctx, cfg, j.seed, n, cc)
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Tab 3 — ablations",
		"variant", "exhaust_ratio", "detected_frac", "caught_day_mean", "served_frac")
	var points []PointTiming
	k := 0
	for _, v := range variants {
		var ratio, det, caughtDay, served metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			o := outs[k].Value
			k++
			if len(o.KeyNodes) == 0 {
				continue // no separators: exhaustion is vacuous
			}
			ratio.Add(o.KeyExhaustRatio())
			det.Add(b2f(o.Detected))
			served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
			if o.Caught {
				caughtDay.Add(o.CaughtAt / 86400)
			}
		}
		tbl.AddRowf(v.name, ratio.Mean(), det.Mean(), caughtDay.Mean(), served.Mean())
		points = append(points, PointTiming{Label: v.name, Elapsed: sumElapsed(outs, row, k)})
	}
	return &Output{
		ID: "rtab3", Title: "Ablations",
		Table:  tbl,
		Timing: Timing{Points: points},
		Notes: []string{
			"Expected: full CSA ≈ 1.0 exhaustion, 0 detection. no-cover/no-fill get caught (shortfall). single-emitter cannot null — victims get genuinely charged and survive.",
		},
	}, nil
}
