package experiments

import (
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/testbed"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// RunHeadline reproduces R-Tab 1: the paper's headline claim across
// deployment patterns — exhaustion ratio, stealth, and how much genuine
// charging service the network still received, for the CSA attacker
// against the no-cover Direct attacker.
func RunHeadline(cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	patterns := []trace.Deployment{trace.DeployUniform, trace.DeployClustered, trace.DeployCorridor}
	tbl := report.NewTable("R-Tab 1 — headline: exhaustion and stealth by scenario",
		"deployment", "solver", "keys", "exhaust_ratio", "detected_frac", "served_frac", "util_mj")
	for _, pat := range patterns {
		for _, spec := range []struct {
			solver string
			noFill bool
		}{{campaign.SolverCSA, false}, {campaign.SolverDirect, true}} {
			var keys, ratio, det, served, util metrics.Summary
			for s := 0; s < cfg.seeds(); s++ {
				sc := trace.DefaultScenario(cfg.seed(s), n)
				sc.Deploy.Pattern = pat
				o, err := runAttackOnScenario(sc, campaign.Config{
					Seed: cfg.seed(s), Solver: spec.solver, NoFill: spec.noFill,
				})
				if err != nil {
					return nil, err
				}
				if len(o.KeyNodes) == 0 {
					continue // no separators: exhaustion is vacuous
				}
				keys.Add(float64(len(o.KeyNodes)))
				ratio.Add(o.KeyExhaustRatio())
				det.Add(b2f(o.Detected))
				served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
				util.Add(o.CoverUtilityJ / 1e6)
			}
			tbl.AddRowf(pat.String(), spec.solver, keys.Mean(), ratio.Mean(), det.Mean(), served.Mean(), util.Mean())
		}
	}
	return &Output{
		ID: "rtab1", Title: "Headline table",
		Table: tbl,
		Notes: []string{
			"Paper claim: CSA exhausts ≥80% of key nodes undetected; expect exhaust_ratio ≥ 0.8 with detected_frac 0 for CSA, and detected_frac ≈ 1 with low exhaustion for Direct.",
		},
	}, nil
}

// RunTestbed reproduces R-Tab 2: the TCP software-in-the-loop test bed —
// real node and charger agents exchanging protocol messages over loopback
// TCP — under attack and under legitimate service.
func RunTestbed(cfg Config) (*Output, error) {
	duration := 4000
	if cfg.Quick {
		duration = 1500
	}
	tbl := report.NewTable("R-Tab 2 — TCP software-in-the-loop test bed",
		"mode", "sessions", "deaths", "key_dead", "key_total", "detected")
	for _, mode := range []struct {
		name   string
		attack bool
	}{{"attack(CSA)", true}, {"legitimate", false}} {
		rep, err := testbed.Run(testbed.RunConfig{
			Nodes:          testbed.DefaultNodes(),
			Attack:         mode.attack,
			DurationRealMs: duration,
		})
		if err != nil {
			return nil, err
		}
		if len(rep.AgentErrs) > 0 {
			return nil, rep.AgentErrs[0]
		}
		tbl.AddRowf(mode.name, rep.Sessions, rep.NodesDead, rep.KeyDead, rep.KeyTotal, rep.Detected)
	}
	return &Output{
		ID: "rtab2", Title: "Software-in-the-loop test bed",
		Table: tbl,
		Notes: []string{
			"Substitute for the paper's physical test bed (see DESIGN.md): same protocol path over a real TCP stack.",
			"Expected: attack kills both key relays undetected; legitimate mode keeps every node alive.",
		},
	}, nil
}

// RunAblations reproduces R-Tab 3: removing one attack ingredient at a
// time shows why each exists. no-cover (Direct) and no-fill lose stealth;
// a single emitter cannot create the null, so the 'spoof' genuinely
// charges its victims; commodity phase jitter leaves residuals the
// rectifier harvests.
func RunAblations(cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	variants := []struct {
		name string
		mut  func(*campaign.Config)
	}{
		{"CSA (full)", func(*campaign.Config) {}},
		{"no-cover (Direct)", func(c *campaign.Config) { c.Solver = campaign.SolverDirect; c.NoFill = true }},
		{"no-fill (plan only)", func(c *campaign.Config) { c.NoFill = true }},
		{"single-emitter", func(c *campaign.Config) { c.SingleEmitter = true }},
		{"no-live-audit", func(c *campaign.Config) { c.AuditEverySec = -1 }},
		{"progressive (extension)", func(c *campaign.Config) { c.Progressive = true }},
		{"CSA+polish (extension)", func(c *campaign.Config) { c.Solver = campaign.SolverCSAPolished }},
	}
	tbl := report.NewTable("R-Tab 3 — ablations",
		"variant", "exhaust_ratio", "detected_frac", "caught_day_mean", "served_frac")
	for _, v := range variants {
		var ratio, det, caughtDay, served metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			ccfg := campaign.Config{Seed: cfg.seed(s), Solver: campaign.SolverCSA}
			v.mut(&ccfg)
			o, err := runOneAttack(cfg.seed(s), n, ccfg)
			if err != nil {
				return nil, err
			}
			if len(o.KeyNodes) == 0 {
				continue // no separators: exhaustion is vacuous
			}
			ratio.Add(o.KeyExhaustRatio())
			det.Add(b2f(o.Detected))
			served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
			if o.Caught {
				caughtDay.Add(o.CaughtAt / 86400)
			}
		}
		tbl.AddRowf(v.name, ratio.Mean(), det.Mean(), caughtDay.Mean(), served.Mean())
	}
	return &Output{
		ID: "rtab3", Title: "Ablations",
		Table: tbl,
		Notes: []string{
			"Expected: full CSA ≈ 1.0 exhaustion, 0 detection. no-cover/no-fill get caught (shortfall). single-emitter cannot null — victims get genuinely charged and survive.",
		},
	}, nil
}

// runAttackOnScenario runs an attack campaign on an explicit scenario.
func runAttackOnScenario(sc trace.Scenario, ccfg campaign.Config) (*campaign.Outcome, error) {
	nw, _, err := sc.Build()
	if err != nil {
		return nil, err
	}
	ch := newDefaultCharger(nw)
	return campaign.RunAttack(nw, ch, ccfg)
}
