package experiments

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// RunCounterWitness is R-Fig 12 (extension): the arms race closes one more
// step. Neighbor witnessing (R-Fig 11) exposes a spoof when the witness
// attests a strong field during a zero-gain session. A two-element array
// cannot help it — the victim null pins the field everywhere else, and a
// nearby witness sees full-strength radiation. With k ≥ 3 elements the
// attacker solves a constrained beamforming problem — a *double null*,
// zero at the victim and silence at the witness — so the witness has
// nothing to attest and the countermeasure starves of evidence. Harvest
// verification, which measures at the victim itself, survives every array
// order.
func RunCounterWitness(_ context.Context, cfg Config) (*Output, error) {
	rect := wpt.DefaultRectifier()
	witnessThreshold := (defense.Config{}).WitnessThreshold()
	victim := geom.Pt(0, 0.8)
	witnessXs := []float64{1.5, 2.5, 4, 6}
	if cfg.Quick {
		witnessXs = []float64{2.5, 6}
	}
	orders := []int{2, 3, 4, 6}

	tbl := report.NewTable("R-Fig 12 — double nulls starve the witness (k ≥ 3 elements)",
		"elements", "witness_x_m", "victim_dc_w", "witness_rf_w", "witness_blinded")
	series := make([]*metrics.Series, 0, len(orders))
	for _, k := range orders {
		sr := &metrics.Series{Label: "witness_rf_k" + itoa(k)}
		for _, wx := range witnessXs {
			witness := geom.Pt(wx, 1.2)
			arr := wpt.NewArray(wpt.LinearArray(geom.Pt(0, 0), k, 0.4)...)
			if k == 2 {
				if err := wpt.SteerNull(arr, victim); err != nil {
					return nil, err
				}
			} else {
				// Double null: silence at the witness, well under its
				// attestation floor.
				if _, err := wpt.SteerNullKeeping(arr, victim, witness, witnessThreshold/100); err != nil {
					return nil, err
				}
			}
			victimDC := rect.DCOutput(arr.RFPowerAt(victim))
			witnessRF := arr.RFPowerAt(witness)
			blinded := victimDC == 0 && witnessRF < witnessThreshold
			tbl.AddRowf(k, wx, victimDC, witnessRF, blinded)
			sr.Append(wx, witnessRF)
		}
		series = append(series, sr)
	}
	return &Output{
		ID: "rfig12", Title: "Constrained-null counter-countermeasure",
		Table: tbl, XName: "witness_x_m", Series: series,
		Notes: []string{
			"Extension beyond the paper: with ≥3 coherent elements the attacker nulls the victim AND the witness simultaneously, leaving the witnessing countermeasure without evidence.",
			"Expected shape: k=2 floods the witness (≈0.1 W — it attests and the spoof is exposed, cf. R-Fig 11); k≥3 holds the witness below its 1 mW attestation floor at every position while the victim's rectifier still sees an exact null.",
		},
	}, nil
}

func itoa(k int) string {
	return string(rune('0' + k))
}
