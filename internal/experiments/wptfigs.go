package experiments

import (
	"context"
	"math"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// RunRectifierCurve reproduces R-Fig 1: the nonlinear RF→DC curve — the
// dead zone below −10 dBm, the rising conversion region, and saturation.
// The dead zone is the attack's lever: any residual RF under it harvests
// exactly zero.
func RunRectifierCurve(_ context.Context, cfg Config) (*Output, error) {
	rect := wpt.DefaultRectifier()
	tbl := report.NewTable("R-Fig 1 — rectifier transfer curve", "rf_in_w", "efficiency", "dc_out_w")
	dc := &metrics.Series{Label: "dc_out_w"}
	eff := &metrics.Series{Label: "efficiency"}
	steps := 60
	if cfg.Quick {
		steps = 20
	}
	// Log sweep from 1 µW to 20 W.
	lo, hi := math.Log10(1e-6), math.Log10(20)
	for i := 0; i <= steps; i++ {
		rf := math.Pow(10, lo+(hi-lo)*float64(i)/float64(steps))
		e := rect.Efficiency(rf)
		out := rect.DCOutput(rf)
		tbl.AddRowf(rf, e, out)
		dc.Append(rf, out)
		eff.Append(rf, e)
	}
	return &Output{
		ID: "rfig1", Title: "Rectifier nonlinearity",
		Table: tbl, XName: "rf_in_w", Series: []*metrics.Series{dc, eff},
		Notes: []string{
			"Expected shape: zero output below the dead zone (1e-4 W), monotone rise, clamp at saturation.",
		},
	}, nil
}

// RunSuperpositionSweep reproduces R-Fig 2: received RF and harvested DC at
// a fixed victim as the phase offset between two coherent emitters sweeps
// 0..2π, against the incoherent (power-additive) prediction. The collapse
// at π — invisible to the incoherent model — is the nonlinear superposition
// effect the attack is built on.
func RunSuperpositionSweep(_ context.Context, cfg Config) (*Output, error) {
	arr := wpt.NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
	rect := wpt.DefaultRectifier()
	victim := geom.Pt(0, 1.5)
	if err := wpt.SteerFocus(arr, victim); err != nil {
		return nil, err
	}
	base0 := arr.Emitters[0].PhaseRad
	base1 := arr.Emitters[1].PhaseRad
	incoherent := arr.IncoherentPowerAt(victim)

	tbl := report.NewTable("R-Fig 2 — superposition at the victim", "phase_offset_rad", "rf_w", "dc_w", "incoherent_rf_w")
	rf := &metrics.Series{Label: "rf_w"}
	dc := &metrics.Series{Label: "dc_w"}
	inc := &metrics.Series{Label: "incoherent_rf_w"}
	steps := 72
	if cfg.Quick {
		steps = 24
	}
	for i := 0; i <= steps; i++ {
		dphi := 2 * math.Pi * float64(i) / float64(steps)
		arr.Emitters[0].PhaseRad = base0
		arr.Emitters[1].PhaseRad = base1 + dphi
		p := arr.RFPowerAt(victim)
		tbl.AddRowf(dphi, p, rect.DCOutput(p), incoherent)
		rf.Append(dphi, p)
		dc.Append(dphi, rect.DCOutput(p))
		inc.Append(dphi, incoherent)
	}
	return &Output{
		ID: "rfig2", Title: "Coherent superposition",
		Table: tbl, XName: "phase_offset_rad", Series: []*metrics.Series{rf, dc, inc},
		Notes: []string{
			"Expected shape: RF follows 2A²(1+cosΔφ); at Δφ=π both RF and DC collapse to ~0 while the incoherent model predicts a constant 2A².",
		},
	}, nil
}

// RunNullSteering reproduces R-Fig 3: achieved null depth (dB below the
// focused power) and spoof feasibility at increasing victim distance, for
// several phase-jitter grades. It maps the hardware-precision boundary of
// the attack: commodity-grade jitter leaves residuals above the rectifier
// dead zone and the spoof fails. The Monte Carlo draws consume a single
// sequential RNG stream, so this driver stays sequential by design (a
// parallel split would change the drawn samples and the output bytes).
func RunNullSteering(ctx context.Context, cfg Config) (*Output, error) {
	sigmas := []float64{1e-4, 1e-3, 5e-3, 0.035} // rad RMS; 0.035 ≈ 2° commodity
	band := wpt.DefaultSpoofBand()
	rect := wpt.DefaultRectifier()
	draws := 300
	if cfg.Quick {
		draws = 50
	}
	r := rng.New(cfg.seed(0)).Split("nullsteer")

	tbl := report.NewTable("R-Fig 3 — null depth vs distance and jitter",
		"dist_m", "sigma_rad", "gain_scale", "mean_residual_w", "null_depth_db", "spoof_success")
	series := make([]*metrics.Series, 0, 2*len(sigmas))
	depthBySigma := make([]*metrics.Series, len(sigmas))
	succBySigma := make([]*metrics.Series, len(sigmas))
	for i, s := range sigmas {
		depthBySigma[i] = &metrics.Series{Label: "depth_db_sigma_" + formatSigma(s)}
		succBySigma[i] = &metrics.Series{Label: "success_sigma_" + formatSigma(s)}
	}
	steps := 16
	if cfg.Quick {
		steps = 6
	}
	for i := 0; i <= steps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := 0.5 + 7.0*float64(i)/float64(steps)
		victim := geom.Pt(0, d)
		for si, sigma := range sigmas {
			arr := wpt.NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
			arr.PhaseJitterRad = sigma
			scale, err := wpt.SteerSpoof(arr, victim, band)
			if err != nil {
				return nil, err
			}
			var sum metrics.Summary
			success := 0
			for k := 0; k < draws; k++ {
				errs := []float64{r.NormMeanStd(0, sigma), r.NormMeanStd(0, sigma)}
				p, err := arr.RFPowerAtWithJitter(victim, errs)
				if err != nil {
					return nil, err
				}
				sum.Add(p)
				// A successful spoof harvests nothing, keeps the victim's
				// carrier detector on, AND radiates at full drive — a
				// scaled-down emission is visible to spectrum monitors.
				if rect.DCOutput(p) == 0 && p >= band.CarrierDetectW && scale == 1 {
					success++
				}
			}
			// Focused reference power at the same geometry.
			focus := wpt.NewArray(geom.Pt(-0.3, 0), geom.Pt(0.3, 0))
			if err := wpt.SteerFocus(focus, victim); err != nil {
				return nil, err
			}
			depth := wpt.NullDepthDB(focus.RFPowerAt(victim), sum.Mean())
			rate := float64(success) / float64(draws)
			tbl.AddRowf(d, sigma, scale, sum.Mean(), depth, rate)
			depthBySigma[si].Append(d, depth)
			succBySigma[si].Append(d, rate)
		}
	}
	series = append(series, depthBySigma...)
	series = append(series, succBySigma...)
	return &Output{
		ID: "rfig3", Title: "Null depth vs distance and jitter",
		Table: tbl, XName: "dist_m", Series: series,
		Notes: []string{
			"Expected shape: spoof success ≈ 1 at precision jitter (≤1e-3 rad) and 0 at commodity 2° jitter, where only an observable gain reduction (gain_scale < 1) keeps the residual under the dead zone.",
			"The steerer detunes deliberately into the spoof band, so the mean residual sits near the band target (≈3e-6 W) whenever the raw jitter leakage is below it.",
		},
	}, nil
}

func formatSigma(s float64) string {
	switch {
	case s >= 1e-2:
		return "2deg"
	case s >= 5e-3:
		return "5e-3"
	case s >= 1e-3:
		return "1e-3"
	default:
		return "1e-4"
	}
}
