package experiments

import (
	"context"
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// RunRoutingMitigation is R-Tab 5 (extension): does smarter routing blunt
// the attack? Energy-aware routing shifts load off draining relays and is
// the folklore remedy for uneven depletion — but articulation points have
// no alternative paths by definition, so the attack's targets and their
// fate barely move. A negative result worth measuring. Each (policy,
// seed) cell needs an attack run and a legitimate baseline; both fan out
// over the worker pool.
func RunRoutingMitigation(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	policies := []wrsn.RoutingPolicy{
		wrsn.PolicyShortestDistance,
		wrsn.PolicyHopCount,
		wrsn.PolicyEnergyAware,
	}
	seeds := cfg.seeds()

	// Two campaigns per (policy, seed) cell, adjacent in job order: the
	// attack run and the legitimate health baseline.
	const runsPerCell = 2
	type job struct {
		policy wrsn.RoutingPolicy
		seed   uint64
		attack bool
	}
	jobs := make([]job, 0, len(policies)*seeds*runsPerCell)
	for _, pol := range policies {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{policy: pol, seed: cfg.seed(s), attack: true})
			jobs = append(jobs, job{policy: pol, seed: cfg.seed(s), attack: false})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		sc := trace.DefaultScenario(j.seed, n)
		sc.Policy = j.policy
		if j.attack {
			return runAttackOnScenario(ctx, cfg, sc, jobspec.Campaign{
				Seed: j.seed, Solver: campaign.SolverCSA,
			})
		}
		return runLegitOnScenario(ctx, cfg, sc, jobspec.Campaign{Seed: j.seed})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Tab 5 — routing policy vs the attack",
		"policy", "keys", "exhaust_ratio", "detected_frac", "legit_dead", "legit_first_death_day")
	exhaustSeries := &metrics.Series{Label: "exhaust_ratio"}
	var points []PointTiming
	k := 0
	for pi, pol := range policies {
		var keys, ratio, det, legitDead, firstDeath metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			o := outs[k].Value
			lg := outs[k+1].Value
			k += runsPerCell
			if len(o.KeyNodes) == 0 {
				continue
			}
			keys.Add(float64(len(o.KeyNodes)))
			ratio.Add(o.KeyExhaustRatio())
			det.Add(b2f(o.Detected))
			legitDead.Add(float64(lg.DeadTotal))
			if !math.IsInf(lg.FirstDeathAt, 1) {
				firstDeath.Add(lg.FirstDeathAt / 86400)
			}
		}
		tbl.AddRowf(pol.String(), keys.Mean(), ratio.Mean(), det.Mean(), legitDead.Mean(), firstDeath.Mean())
		exhaustSeries.Append(float64(pi), ratio.Mean())
		points = append(points, PointTiming{Label: pol.String(), Elapsed: sumElapsed(outs, row, k)})
	}
	return &Output{
		ID: "rtab5", Title: "Routing-policy mitigation (extension)",
		Table: tbl, XName: "policy_index",
		Series: []*metrics.Series{exhaustSeries},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension: articulation points are a property of the connectivity graph, not of the routing objective — energy-aware routing rebalances depletion but cannot create alternative paths, so CSA's exhaustion barely moves.",
			"Expected shape: similar key counts and ≥0.8 exhaustion under every policy; the legitimate columns confirm each policy is a healthy baseline.",
		},
	}, nil
}
