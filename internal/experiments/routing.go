package experiments

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// RunRoutingMitigation is R-Tab 5 (extension): does smarter routing blunt
// the attack? Energy-aware routing shifts load off draining relays and is
// the folklore remedy for uneven depletion — but articulation points have
// no alternative paths by definition, so the attack's targets and their
// fate barely move. A negative result worth measuring.
func RunRoutingMitigation(cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	policies := []wrsn.RoutingPolicy{
		wrsn.PolicyShortestDistance,
		wrsn.PolicyHopCount,
		wrsn.PolicyEnergyAware,
	}
	tbl := report.NewTable("R-Tab 5 — routing policy vs the attack",
		"policy", "keys", "exhaust_ratio", "detected_frac", "legit_dead", "legit_first_death_day")
	exhaustSeries := &metrics.Series{Label: "exhaust_ratio"}
	for pi, pol := range policies {
		var keys, ratio, det, legitDead, firstDeath metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			sc := trace.DefaultScenario(cfg.seed(s), n)
			sc.Policy = pol
			o, err := runAttackOnScenario(sc, campaign.Config{
				Seed: cfg.seed(s), Solver: campaign.SolverCSA,
			})
			if err != nil {
				return nil, err
			}
			if len(o.KeyNodes) == 0 {
				continue
			}
			keys.Add(float64(len(o.KeyNodes)))
			ratio.Add(o.KeyExhaustRatio())
			det.Add(b2f(o.Detected))

			nw, _, err := sc.Build()
			if err != nil {
				return nil, err
			}
			lg, err := campaign.RunLegit(nw, newDefaultCharger(nw), campaign.Config{Seed: cfg.seed(s)})
			if err != nil {
				return nil, err
			}
			legitDead.Add(float64(lg.DeadTotal))
			if !math.IsInf(lg.FirstDeathAt, 1) {
				firstDeath.Add(lg.FirstDeathAt / 86400)
			}
		}
		tbl.AddRowf(pol.String(), keys.Mean(), ratio.Mean(), det.Mean(), legitDead.Mean(), firstDeath.Mean())
		exhaustSeries.Append(float64(pi), ratio.Mean())
	}
	return &Output{
		ID: "rtab5", Title: "Routing-policy mitigation (extension)",
		Table: tbl, XName: "policy_index",
		Series: []*metrics.Series{exhaustSeries},
		Notes: []string{
			"Extension: articulation points are a property of the connectivity graph, not of the routing objective — energy-aware routing rebalances depletion but cannot create alternative paths, so CSA's exhaustion barely moves.",
			"Expected shape: similar key counts and ≥0.8 exhaustion under every policy; the legitimate columns confirm each policy is a healthy baseline.",
		},
	}, nil
}
