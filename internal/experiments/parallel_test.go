package experiments

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/report"
)

// renderAll captures everything the CLI derives from an Output that must
// be worker-count-invariant: the rendered table, the note order, and the
// CSV series bytes.
func renderAll(t *testing.T, out *Output) (table string, csv []byte) {
	t.Helper()
	var sb strings.Builder
	if err := out.Table.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, note := range out.Notes {
		sb.WriteString("note: " + note + "\n")
	}
	var buf bytes.Buffer
	if len(out.Series) > 0 {
		if err := report.WriteCSV(&buf, out.XName, out.Series...); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String(), buf.Bytes()
}

// TestParallelMergeDeterminism is the core contract of the engine
// redesign: for a fixed BaseSeed, tables, notes and CSV series are
// byte-identical at any worker count.
func TestParallelMergeDeterminism(t *testing.T) {
	e, err := ByID("rfig4")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (string, []byte) {
		cfg := NewConfig(WithQuick(true), WithSeeds(2), WithWorkers(workers))
		out, err := Run(context.Background(), e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Timing.Workers != workers {
			t.Errorf("Timing.Workers = %d, want %d", out.Timing.Workers, workers)
		}
		if out.Timing.Wall <= 0 {
			t.Error("Timing.Wall not recorded")
		}
		return renderAll(t, out)
	}
	seqTbl, seqCSV := run(1)
	parTbl, parCSV := run(4)
	if seqTbl != parTbl {
		t.Errorf("rendered output differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqTbl, parTbl)
	}
	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("CSV differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqCSV, parCSV)
	}
}

// TestRunCanceled: a pre-canceled context must surface context.Canceled
// from a campaign-heavy experiment instead of running it.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"rfig4", "rfig13", "rtab6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(ctx, e, NewConfig(WithQuick(true), WithSeeds(1))); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
}

func TestByIDNormalization(t *testing.T) {
	for _, id := range []string{"rfig4", "RFIG4", " rFig4\t"} {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("ByID(%q): %v", id, err)
			continue
		}
		if e.ID != "rfig4" {
			t.Errorf("ByID(%q).ID = %q", id, e.ID)
		}
	}
}

func TestByIDUnknownSentinel(t *testing.T) {
	_, err := ByID("rfig999")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
	if !strings.Contains(err.Error(), "rfig999") {
		t.Errorf("error %q does not name the bad id", err)
	}
}

func TestNewConfigOptions(t *testing.T) {
	cfg := NewConfig(WithQuick(true), WithSeeds(7), WithBaseSeed(99), WithWorkers(3))
	if !cfg.Quick || cfg.Seeds != 7 || cfg.BaseSeed != 99 || cfg.Workers != 3 {
		t.Errorf("NewConfig mis-applied options: %+v", cfg)
	}
	// Config now carries func-typed fields (Dispatch), so compare the
	// zero-ness of the comparable knobs plus the funcs' nil-ness.
	got := NewConfig()
	if got.Quick || got.Seeds != 0 || got.BaseSeed != 0 || got.Workers != 0 ||
		got.Probe != nil || got.JobTimeout != 0 || got.JobRetries != 0 || got.Dispatch != nil {
		t.Errorf("NewConfig() = %+v, want zero Config", got)
	}
}

func TestConfigWorkersDefault(t *testing.T) {
	if got := (Config{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero-config workers() = %d, want GOMAXPROCS", got)
	}
	if got := (Config{Workers: 2}).workers(); got != 2 {
		t.Errorf("workers() = %d, want 2", got)
	}
}
