package experiments

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// RunFleet is R-Tab 4 (extension): charging capacity scaling with a
// multi-charger fleet, at a network size that saturates a single charger.
// It quantifies the substrate assumption behind the whole evaluation —
// that the charger fleet is sized to its network — and shows what
// saturation looks like (missed requests, first deaths, busy fractions).
func RunFleet(cfg Config) (*Output, error) {
	n := 800
	fleets := []int{1, 2, 3, 4}
	if cfg.Quick {
		n = 400
		fleets = []int{1, 2}
	}
	tbl := report.NewTable("R-Tab 4 — fleet scaling at saturation",
		"chargers", "dead", "first_death_day", "served_frac", "busy_frac", "utility_mj")
	deadSeries := &metrics.Series{Label: "dead"}
	busySeries := &metrics.Series{Label: "busy_frac"}
	for _, k := range fleets {
		var dead, firstDeath, served, busy, util metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			nw, _, err := trace.DefaultScenario(cfg.seed(s), n).Build()
			if err != nil {
				return nil, err
			}
			chargers := make([]*mc.Charger, k)
			for i := range chargers {
				chargers[i] = mc.New(nw.Sink(), mc.DefaultParams())
			}
			o, err := campaign.RunLegitFleet(nw, chargers, campaign.Config{Seed: cfg.seed(s)})
			if err != nil {
				return nil, err
			}
			dead.Add(float64(o.DeadTotal))
			if !math.IsInf(o.FirstDeathAt, 1) {
				firstDeath.Add(o.FirstDeathAt / 86400)
			}
			served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
			busy.Add(o.BusyFrac)
			util.Add(o.CoverUtilityJ / 1e6)
		}
		tbl.AddRowf(k, dead.Mean(), firstDeath.Mean(), served.Mean(), busy.Mean(), util.Mean())
		deadSeries.Append(float64(k), dead.Mean())
		busySeries.Append(float64(k), busy.Mean())
	}
	return &Output{
		ID: "rtab4", Title: "Fleet scaling (extension)",
		Table: tbl, XName: "chargers",
		Series: []*metrics.Series{deadSeries, busySeries},
		Notes: []string{
			"Extension: multi-charger on-demand service over the shared queue, driven by the discrete-event engine.",
			"Expected shape: a single charger cannot absorb the initial request wave — a mass die-off follows, after which the survivors match its capacity (low average busy over the whole horizon). Adding chargers moves the first death out and then eliminates deaths entirely.",
		},
	}, nil
}
