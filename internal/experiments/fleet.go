package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// RunFleet is R-Tab 4 (extension): charging capacity scaling with a
// multi-charger fleet, at a network size that saturates a single charger.
// It quantifies the substrate assumption behind the whole evaluation —
// that the charger fleet is sized to its network — and shows what
// saturation looks like (missed requests, first deaths, busy fractions).
// The fleet-size × seed grid fans out over the worker pool.
func RunFleet(ctx context.Context, cfg Config) (*Output, error) {
	n := 800
	fleets := []int{1, 2, 3, 4}
	if cfg.Quick {
		n = 400
		fleets = []int{1, 2}
	}
	seeds := cfg.seeds()

	type job struct {
		chargers int
		seed     uint64
	}
	jobs := make([]job, 0, len(fleets)*seeds)
	for _, k := range fleets {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{chargers: k, seed: cfg.seed(s)})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.FleetOutcome, error) {
		j := jobs[i]
		return runOneFleet(ctx, cfg, j.seed, n, j.chargers, jobspec.Campaign{})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Tab 4 — fleet scaling at saturation",
		"chargers", "dead", "first_death_day", "served_frac", "busy_frac", "utility_mj")
	deadSeries := &metrics.Series{Label: "dead"}
	busySeries := &metrics.Series{Label: "busy_frac"}
	var points []PointTiming
	idx := 0
	for _, k := range fleets {
		var dead, firstDeath, served, busy, util metrics.Summary
		row := idx
		for s := 0; s < seeds; s++ {
			o := outs[idx].Value
			idx++
			dead.Add(float64(o.DeadTotal))
			if !math.IsInf(o.FirstDeathAt, 1) {
				firstDeath.Add(o.FirstDeathAt / 86400)
			}
			served.Add(metrics.Ratio(float64(o.RequestsServed), float64(o.RequestsIssued)))
			busy.Add(o.BusyFrac)
			util.Add(o.CoverUtilityJ / 1e6)
		}
		tbl.AddRowf(k, dead.Mean(), firstDeath.Mean(), served.Mean(), busy.Mean(), util.Mean())
		deadSeries.Append(float64(k), dead.Mean())
		busySeries.Append(float64(k), busy.Mean())
		points = append(points, PointTiming{
			Label:   fmt.Sprintf("chargers=%d", k),
			Elapsed: sumElapsed(outs, row, idx),
		})
	}
	return &Output{
		ID: "rtab4", Title: "Fleet scaling (extension)",
		Table: tbl, XName: "chargers",
		Series: []*metrics.Series{deadSeries, busySeries},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension: multi-charger on-demand service over the shared queue, driven by the discrete-event engine.",
			"Expected shape: a single charger cannot absorb the initial request wave — a mass die-off follows, after which the survivors match its capacity (low average busy over the whole horizon). Adding chargers moves the first death out and then eliminates deaths entirely.",
		},
	}, nil
}
