package experiments

import (
	"context"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

// RandomInstance synthesizes a small TIDE instance for approximation
// studies: sites scattered in a square field, a couple of mandatory
// targets with staggered windows, covers with utilities proportional to
// their needs, and a budget tight enough to force choices.
func RandomInstance(r *rng.Stream, sites, targets int) *attack.Instance {
	const (
		field   = 400.0 // m
		speed   = 5.0
		moveJ   = 50.0
		radiate = 50.0
		dayS    = 86400.0
	)
	in := &attack.Instance{
		Depot:     geom.Pt(field/2, field/2),
		SpeedMps:  speed,
		MoveJPerM: moveJ,
		RadiateW:  radiate,
	}
	for i := 0; i < sites; i++ {
		pos := geom.Pt(r.Uniform(0, field), r.Uniform(0, field))
		dur := r.Uniform(600, 1800)
		release := r.Uniform(0, 1.5*dayS)
		width := r.Uniform(2*3600, 12*3600)
		s := attack.Site{
			Pos:    pos,
			Window: attack.Window{R: release, D: release + width + dur},
			Dur:    dur,
			Kind:   attack.VisitCover,
		}
		if i < targets {
			s.Mandatory = true
			s.Kind = attack.VisitSpoof
		} else {
			s.UtilJ = dur * 6.2 // delivered at the nominal contact rate
		}
		in.Sites = append(in.Sites, s)
	}
	// Budget: roughly enough for the targets plus half the covers.
	var radiateAll float64
	for _, s := range in.Sites {
		radiateAll += s.Dur * radiate
	}
	in.BudgetJ = 0.55*radiateAll + 2*field*moveJ
	return in
}

// RunApproxRatio reproduces R-Fig 7: the empirical approximation ratio of
// CSA against the exact Pareto-DP optimum on instances small enough to
// solve exactly. The paper claims a bounded performance guarantee; the
// figure shows how far above the worst-case bound the algorithm actually
// operates. Instance synthesis consumes a single sequential RNG stream,
// so this driver stays sequential by design.
func RunApproxRatio(ctx context.Context, cfg Config) (*Output, error) {
	sizes := []int{6, 8, 10, 12}
	trials := 20
	if cfg.Quick {
		sizes = []int{6, 8}
		trials = 5
	}
	r := rng.New(cfg.seed(0)).Split("approx")
	tbl := report.NewTable("R-Fig 7 — CSA vs exact optimum",
		"sites", "ratio_mean", "ratio_min", "ratio_ci95", "polished_mean", "spoof_match_frac")
	mean := &metrics.Series{Label: "ratio_mean"}
	min := &metrics.Series{Label: "ratio_min"}
	polishedMean := &metrics.Series{Label: "polished_mean"}
	for _, n := range sizes {
		var ratio, polished metrics.Summary
		var spoofMatch metrics.Summary
		worst := 1.0
		for t := 0; t < trials; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			in := RandomInstance(r, n, 2)
			got, err := attack.SolveCSA(in)
			if err != nil {
				return nil, err
			}
			pol, err := attack.SolveCSAPolished(in)
			if err != nil {
				return nil, err
			}
			opt, err := attack.SolveExact(in)
			if err != nil {
				return nil, err
			}
			spoofMatch.Add(b2f(got.Plan.SpoofCount >= opt.Plan.SpoofCount))
			if opt.Plan.UtilityJ <= 0 {
				continue // nothing schedulable: ratio undefined, skip
			}
			rr := got.Plan.UtilityJ / opt.Plan.UtilityJ
			ratio.Add(rr)
			polished.Add(pol.Plan.UtilityJ / opt.Plan.UtilityJ)
			if rr < worst {
				worst = rr
			}
		}
		tbl.AddRowf(n, ratio.Mean(), worst, ratio.CI95(), polished.Mean(), spoofMatch.Mean())
		mean.Append(float64(n), ratio.Mean())
		min.Append(float64(n), worst)
		polishedMean.Append(float64(n), polished.Mean())
	}
	return &Output{
		ID: "rfig7", Title: "Empirical approximation ratio",
		Table: tbl, XName: "sites", Series: []*metrics.Series{mean, min, polishedMean},
		Notes: []string{
			"Theory: cost-benefit greedy with the best-single safeguard guarantees ≥ (1−1/e)/2 ≈ 0.316 of the optimal cover utility for the fixed skeleton.",
			"Expected shape: empirical mean well above 0.9, worst case comfortably above the bound; CSA matches OPT's spoof coverage; the local-search polish (extension) closes part of the remaining gap.",
		},
	}, nil
}
