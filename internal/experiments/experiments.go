// Package experiments implements one driver per reconstructed figure and
// table of the evaluation (see DESIGN.md for the R-Fig/R-Tab index). Each
// driver returns a text table plus the CSV series behind the figure, so
// cmd/experiments can regenerate the full evaluation from scratch.
package experiments

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// Config scopes an experiment run.
type Config struct {
	// Quick shrinks sweeps and seed counts for CI/tests; the full runs
	// reproduce the evaluation at paper scale.
	Quick bool
	// Seeds is the number of independent seeds averaged per point;
	// non-positive gets 5 (2 when Quick).
	Seeds int
	// BaseSeed offsets the seed sequence for independent replications.
	BaseSeed uint64
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 2
	}
	return 5
}

func (c Config) seed(i int) uint64 { return c.BaseSeed + 1000 + uint64(i)*7919 }

// Output is one experiment's result bundle.
type Output struct {
	// ID and Title identify the reconstructed figure/table.
	ID, Title string
	// Table is the human-readable result.
	Table *report.Table
	// XName and Series carry the figure's data for CSV export (may be
	// empty for pure tables).
	XName  string
	Series []*metrics.Series
	// Notes records caveats and the expected shape from the paper.
	Notes []string
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Output, error)

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in the reconstructed evaluation, in
// presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "rfig1", Title: "Rectifier nonlinearity: DC out vs RF in", Run: RunRectifierCurve},
		{ID: "rfig2", Title: "Coherent superposition: received power vs phase offset", Run: RunSuperpositionSweep},
		{ID: "rfig3", Title: "Null depth vs distance and phase jitter", Run: RunNullSteering},
		{ID: "rfig4", Title: "Key-node exhaustion vs network size (solver comparison)", Run: RunExhaustionVsN},
		{ID: "rfig5", Title: "Cover utility vs charger budget", Run: RunUtilityVsBudget},
		{ID: "rfig6", Title: "Detection ROC: CSA vs Direct attacker", Run: RunDetectionROC},
		{ID: "rfig7", Title: "Empirical approximation ratio: CSA vs exact OPT", Run: RunApproxRatio},
		{ID: "rfig8", Title: "Network lifetime under attack vs legitimate service", Run: RunLifetime},
		{ID: "rfig9", Title: "CSA planning runtime vs instance size", Run: RunRuntime},
		{ID: "rtab1", Title: "Headline: exhaustion and stealth across scenarios", Run: RunHeadline},
		{ID: "rtab2", Title: "TCP software-in-the-loop test bed", Run: RunTestbed},
		{ID: "rtab3", Title: "Ablations: which attack ingredients matter", Run: RunAblations},
		{ID: "rfig10", Title: "Extension: harvest-verification countermeasure", Run: RunDefenseVerification},
		{ID: "rfig11", Title: "Extension: neighbor-witnessing countermeasure", Run: RunDefenseWitness},
		{ID: "rtab4", Title: "Extension: multi-charger fleet scaling", Run: RunFleet},
		{ID: "rfig12", Title: "Extension: constrained-null counter-countermeasure", Run: RunCounterWitness},
		{ID: "rtab5", Title: "Extension: routing-policy mitigation", Run: RunRoutingMitigation},
		{ID: "rfig13", Title: "Extension: structural robustness under removal", Run: RunRobustness},
		{ID: "rtab6", Title: "Extension: on-demand scheduler comparison", Run: RunSchedulers},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
