// Package experiments implements one driver per reconstructed figure and
// table of the evaluation (see DESIGN.md for the R-Fig/R-Tab index). Each
// driver returns a text table plus the CSV series behind the figure, so
// cmd/experiments can regenerate the full evaluation from scratch.
//
// Drivers are context-aware — `func(ctx, cfg) (*Output, error)` — and the
// campaign-heavy sweeps fan their seed replications and sweep points out
// over a bounded worker pool (see the engine subpackage). Parallel runs
// are deterministic: for a fixed BaseSeed the rendered tables, CSV series
// and notes are byte-identical at any worker count.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// Config scopes an experiment run. Construct it with NewConfig and
// functional options; direct struct literals remain valid for existing
// callers but new code should prefer the options.
type Config struct {
	// Quick shrinks sweeps and seed counts for CI/tests; the full runs
	// reproduce the evaluation at paper scale.
	Quick bool
	// Seeds is the number of independent seeds averaged per point;
	// non-positive gets 5 (2 when Quick).
	Seeds int
	// BaseSeed offsets the seed sequence for independent replications.
	BaseSeed uint64
	// Workers bounds the experiment worker pool; non-positive sizes the
	// pool to the hardware (GOMAXPROCS). Workers=1 reproduces the
	// sequential execution exactly — and any other value produces
	// byte-identical output anyway; only the wall clock changes.
	Workers int
	// Probe receives run telemetry (per-job latency, pool utilization;
	// see the engine package). Nil gets the no-op probe. Telemetry is
	// observability only: rendered tables, notes and CSV series stay
	// byte-identical with or without a recording probe.
	Probe obs.Probe
	// JobTimeout bounds each campaign job of a sweep; zero means none. A
	// job that overruns fails with a timeout error carrying its index;
	// the rest of the sweep still completes (jobs run keep-going).
	JobTimeout time.Duration
	// JobRetries grants each failed job this many additional attempts
	// (exponential backoff between attempts). Jobs derive all randomness
	// from their index, so retries re-seed identically.
	JobRetries int
	// Dispatch, when non-nil, ships each campaign job to a worker
	// process (see internal/distengine) instead of running it
	// in-process: the sweep's serializable job specs — carrying cached
	// world snapshots — go through this function one at a time, under
	// the same engine pool that schedules in-process jobs. Rendered
	// output is byte-identical either way; only where the CPU burns
	// changes. Analytic drivers (pure planning, the real-time testbed)
	// ignore it and stay local.
	Dispatch Dispatcher
}

// Dispatcher executes one serializable campaign job somewhere else — a
// worker process, a remote host — and returns its result.
// (*distengine.Pool).Submit satisfies this signature.
type Dispatcher func(ctx context.Context, spec jobspec.Spec) (*jobspec.Result, error)

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config)

// NewConfig assembles a Config from functional options:
//
//	cfg := experiments.NewConfig(
//		experiments.WithQuick(true),
//		experiments.WithWorkers(8),
//	)
func NewConfig(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithQuick shrinks sweeps and seed counts for CI/tests.
func WithQuick(quick bool) Option { return func(c *Config) { c.Quick = quick } }

// WithSeeds sets the number of independent seeds averaged per point
// (non-positive keeps the default).
func WithSeeds(n int) Option { return func(c *Config) { c.Seeds = n } }

// WithBaseSeed offsets the seed sequence for independent replications.
func WithBaseSeed(seed uint64) Option { return func(c *Config) { c.BaseSeed = seed } }

// WithWorkers bounds the worker pool (non-positive: GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithProbe attaches a telemetry probe to the run (nil: disabled).
func WithProbe(p obs.Probe) Option { return func(c *Config) { c.Probe = p } }

// WithJobTimeout bounds each sweep job's wall clock (zero: unbounded).
func WithJobTimeout(d time.Duration) Option { return func(c *Config) { c.JobTimeout = d } }

// WithJobRetries grants failed jobs bounded retries with backoff;
// retried jobs re-seed identically from their job index.
func WithJobRetries(n int) Option { return func(c *Config) { c.JobRetries = n } }

// WithDispatch routes campaign jobs through a distributed dispatcher
// (nil: run in-process).
func WithDispatch(d Dispatcher) Option { return func(c *Config) { c.Dispatch = d } }

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 2
	}
	return 5
}

func (c Config) seed(i int) uint64 { return c.BaseSeed + 1000 + uint64(i)*7919 }

// workers resolves the configured pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// probe resolves the configured probe (never nil).
func (c Config) probe() obs.Probe { return obs.Or(c.Probe) }

// PointTiming is the wall-clock cost of one merged sweep point (typically
// one table row: every seed replication behind it, summed).
type PointTiming struct {
	Label   string
	Elapsed time.Duration
}

// Timing is the performance telemetry of one experiment run. It is
// observability only — never rendered into the deterministic table/CSV
// output (wall clocks vary run to run; the results must not).
type Timing struct {
	// Wall is the experiment's end-to-end wall clock (filled by Run).
	Wall time.Duration
	// Workers is the pool size the run used (filled by Run).
	Workers int
	// Points carries per-sweep-point campaign timing for drivers that
	// fan out over the engine; empty for cheap analytic drivers.
	Points []PointTiming
}

// Output is one experiment's result bundle.
type Output struct {
	// ID and Title identify the reconstructed figure/table.
	ID, Title string
	// Table is the human-readable result.
	Table *report.Table
	// XName and Series carry the figure's data for CSV export (may be
	// empty for pure tables).
	XName  string
	Series []*metrics.Series
	// Notes records caveats and the expected shape from the paper.
	Notes []string
	// Timing is the run's performance telemetry (not part of the
	// deterministic output).
	Timing Timing
}

// Runner executes one experiment. Implementations must honor ctx
// cancellation promptly (campaign loops checkpoint it) and must keep
// their rendered output independent of Config.Workers.
type Runner func(ctx context.Context, cfg Config) (*Output, error)

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// Run executes one experiment with wall-clock accounting: the elapsed
// time and effective worker count land in Output.Timing.
func Run(ctx context.Context, e Experiment, cfg Config) (*Output, error) {
	start := time.Now()
	out, err := e.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out.Timing.Wall = time.Since(start)
	out.Timing.Workers = cfg.workers()
	return out, nil
}

// All returns every experiment in the reconstructed evaluation, in
// presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "rfig1", Title: "Rectifier nonlinearity: DC out vs RF in", Run: RunRectifierCurve},
		{ID: "rfig2", Title: "Coherent superposition: received power vs phase offset", Run: RunSuperpositionSweep},
		{ID: "rfig3", Title: "Null depth vs distance and phase jitter", Run: RunNullSteering},
		{ID: "rfig4", Title: "Key-node exhaustion vs network size (solver comparison)", Run: RunExhaustionVsN},
		{ID: "rfig5", Title: "Cover utility vs charger budget", Run: RunUtilityVsBudget},
		{ID: "rfig6", Title: "Detection ROC: CSA vs Direct attacker", Run: RunDetectionROC},
		{ID: "rfig7", Title: "Empirical approximation ratio: CSA vs exact OPT", Run: RunApproxRatio},
		{ID: "rfig8", Title: "Network lifetime under attack vs legitimate service", Run: RunLifetime},
		{ID: "rfig9", Title: "CSA planning runtime vs instance size", Run: RunRuntime},
		{ID: "rtab1", Title: "Headline: exhaustion and stealth across scenarios", Run: RunHeadline},
		{ID: "rtab2", Title: "TCP software-in-the-loop test bed", Run: RunTestbed},
		{ID: "rtab3", Title: "Ablations: which attack ingredients matter", Run: RunAblations},
		{ID: "rfig10", Title: "Extension: harvest-verification countermeasure", Run: RunDefenseVerification},
		{ID: "rfig11", Title: "Extension: neighbor-witnessing countermeasure", Run: RunDefenseWitness},
		{ID: "rtab4", Title: "Extension: multi-charger fleet scaling", Run: RunFleet},
		{ID: "rfig12", Title: "Extension: constrained-null counter-countermeasure", Run: RunCounterWitness},
		{ID: "rtab5", Title: "Extension: routing-policy mitigation", Run: RunRoutingMitigation},
		{ID: "rfig13", Title: "Extension: structural robustness under removal", Run: RunRobustness},
		{ID: "rtab6", Title: "Extension: on-demand scheduler comparison", Run: RunSchedulers},
		{ID: "rfig14", Title: "Extension: attack resilience under injected faults", Run: RunFaultTolerance},
	}
}

// ErrUnknownExperiment reports a ByID lookup that matched no experiment.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// byIDIndex is the lookup table behind ByID, built once.
var byIDIndex = sync.OnceValue(func() map[string]Experiment {
	all := All()
	m := make(map[string]Experiment, len(all))
	for _, e := range all {
		m[normalizeID(e.ID)] = e
	}
	return m
})

// normalizeID canonicalizes a user-supplied experiment ID: IDs are
// case-insensitive and tolerate surrounding whitespace.
func normalizeID(id string) string { return strings.ToLower(strings.TrimSpace(id)) }

// ByID returns the experiment with the given ID (case-insensitive,
// whitespace-tolerant). Unknown IDs report ErrUnknownExperiment.
func ByID(id string) (Experiment, error) {
	if e, ok := byIDIndex()[normalizeID(id)]; ok {
		return e, nil
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}

// mapTimed fans n jobs out over the configured worker pool with
// deterministic result order, wiring the run's probe and hardening knobs
// into the pool. Jobs run keep-going: a panic, timeout, or error in one
// job is reported (with its index and, for panics, the stack) without
// losing the other jobs' work; see engine.MapTimedOpts.
func mapTimed[T any](ctx context.Context, cfg Config, n int, fn func(ctx context.Context, i int) (T, error)) ([]engine.Result[T], error) {
	results, err := engine.MapTimedOpts(ctx, cfg.workers(), n, cfg.probe(), engine.Options{
		Timeout:   cfg.JobTimeout,
		Retries:   cfg.JobRetries,
		KeepGoing: true,
	}, fn)
	if err != nil {
		// Drivers merge results positionally and cannot use a sweep with
		// holes; the aggregate error still names every failed job.
		return nil, err
	}
	return results, nil
}

// sumElapsed totals the wall clock of a contiguous job range [lo, hi) —
// the per-point cost of one merged table row.
func sumElapsed[T any](results []engine.Result[T], lo, hi int) time.Duration {
	var d time.Duration
	for _, r := range results[lo:hi] {
		d += r.Elapsed
	}
	return d
}
