package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// runSpec is the chokepoint every campaign-backed sweep job goes
// through: one serializable jobspec.Spec in, one Result out. With a
// Dispatcher configured the spec ships to a worker process — carrying
// the forge's cached world snapshot, so remote workers skip placement
// and routing convergence exactly like local forks do. Without one it
// runs in-process on the forge's forked world, the same fast path the
// sweeps have always used. Both paths produce byte-identical outcomes:
// every piece of randomness derives from seeds inside the spec, and
// fork ≡ rebuild is pinned by the snapshot golden fence.
func runSpec(ctx context.Context, cfg Config, spec jobspec.Spec) (*jobspec.Result, error) {
	if cfg.Dispatch != nil {
		snap, err := forge.encoded(spec.Scenario)
		if err != nil {
			return nil, err
		}
		spec.Snapshot = snap
		return cfg.Dispatch(ctx, spec)
	}
	nw, ch, err := forge.fork(spec.Scenario)
	if err != nil {
		return nil, err
	}
	ccfg, err := spec.Config(cfg.probe(), nw.Len())
	if err != nil {
		return nil, err
	}
	switch spec.Kind {
	case jobspec.KindFleet:
		fleet := make([]*mc.Charger, spec.Chargers)
		fleet[0] = ch
		for i := 1; i < len(fleet); i++ {
			fleet[i] = ch.Fork()
		}
		fo, err := campaign.RunLegitFleet(ctx, nw, fleet, ccfg)
		if err != nil {
			return nil, err
		}
		return &jobspec.Result{Fleet: fo}, nil
	case jobspec.KindAttack:
		o, err := campaign.RunAttack(ctx, nw, ch, ccfg)
		if err != nil {
			return nil, err
		}
		return &jobspec.Result{Outcome: o}, nil
	case jobspec.KindLegit:
		o, err := campaign.RunLegit(ctx, nw, ch, ccfg)
		if err != nil {
			return nil, err
		}
		return &jobspec.Result{Outcome: o}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown job kind %q", spec.Kind)
	}
}

// runOutcomeSpec runs a single-charger spec and unwraps the Outcome.
func runOutcomeSpec(ctx context.Context, cfg Config, spec jobspec.Spec) (*campaign.Outcome, error) {
	r, err := runSpec(ctx, cfg, spec)
	if err != nil {
		return nil, err
	}
	return r.Outcome, nil
}

// runAttackOnScenario runs an attack campaign on an explicit scenario.
// The campaign knobs ride in wire form (jobspec.Campaign) so the same
// call serves the in-process pool and the distributed dispatcher.
func runAttackOnScenario(ctx context.Context, cfg Config, sc trace.Scenario, cc jobspec.Campaign) (*campaign.Outcome, error) {
	return runOutcomeSpec(ctx, cfg, jobspec.Spec{Kind: jobspec.KindAttack, Scenario: sc, Campaign: cc})
}

// runLegitOnScenario runs the legitimate baseline on an explicit
// scenario.
func runLegitOnScenario(ctx context.Context, cfg Config, sc trace.Scenario, cc jobspec.Campaign) (*campaign.Outcome, error) {
	return runOutcomeSpec(ctx, cfg, jobspec.Spec{Kind: jobspec.KindLegit, Scenario: sc, Campaign: cc})
}

// runOneAttack runs an attack campaign on the (seed, n) baseline world.
// The campaign seed follows the world seed, as everywhere in the
// evaluation.
func runOneAttack(ctx context.Context, cfg Config, seed uint64, n int, cc jobspec.Campaign) (*campaign.Outcome, error) {
	cc.Seed = seed
	return runAttackOnScenario(ctx, cfg, trace.DefaultScenario(seed, n), cc)
}

// runOneLegit runs the legitimate baseline on the (seed, n) baseline
// world.
func runOneLegit(ctx context.Context, cfg Config, seed uint64, n int, cc jobspec.Campaign) (*campaign.Outcome, error) {
	cc.Seed = seed
	return runLegitOnScenario(ctx, cfg, trace.DefaultScenario(seed, n), cc)
}

// runOneFleet runs the legitimate multi-charger fleet on the (seed, n)
// baseline world with k chargers parked at the sink.
func runOneFleet(ctx context.Context, cfg Config, seed uint64, n, k int, cc jobspec.Campaign) (*campaign.FleetOutcome, error) {
	cc.Seed = seed
	r, err := runSpec(ctx, cfg, jobspec.Spec{
		Kind:     jobspec.KindFleet,
		Scenario: trace.DefaultScenario(seed, n),
		Campaign: cc,
		Chargers: k,
	})
	if err != nil {
		return nil, err
	}
	return r.Fleet, nil
}
