package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// RunRobustness is R-Fig 13 (extension): the structural motivation figure.
// Sink connectivity vs nodes removed, for random failures, targeted
// betweenness removal, and severance-ordered removal (the attack's target
// order). The severance curve's cliff after a handful of removals is why
// the attack only needs to exhaust the key nodes. Seeds fan out over the
// worker pool; each job owns its network replica and sweeps all three
// strategies on it, exactly as the sequential loop did.
func RunRobustness(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	steps := 25
	if cfg.Quick {
		n = 100
		steps = 12
	}
	strategies := []wrsn.RemovalStrategy{
		wrsn.RemoveRandom, wrsn.RemoveByBetweenness, wrsn.RemoveBySeverance,
	}
	seeds := cfg.seeds()

	outs, err := mapTimed(ctx, cfg, seeds, func(ctx context.Context, s int) ([][]wrsn.RobustnessPoint, error) {
		nw, _, err := forkDefaultWorld(cfg.seed(s), n)
		if err != nil {
			return nil, err
		}
		sweeps := make([][]wrsn.RobustnessPoint, len(strategies))
		for si, strat := range strategies {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pts, err := nw.RobustnessSweep(strat, steps, rng.New(cfg.seed(s)).Split("robust"))
			if err != nil {
				return nil, err
			}
			sweeps[si] = pts
		}
		return sweeps, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 13 — connectivity under node removal",
		"removed", "random", "betweenness", "severance")
	series := make([]*metrics.Series, len(strategies))
	curves := make([][]metrics.Summary, len(strategies))
	for i, s := range strategies {
		series[i] = &metrics.Series{Label: s.String()}
		curves[i] = make([]metrics.Summary, steps+1)
	}
	var points []PointTiming
	for s := 0; s < seeds; s++ {
		for si := range strategies {
			for _, p := range outs[s].Value[si] {
				curves[si][p.Removed].Add(float64(p.Connected) / float64(n))
			}
		}
		points = append(points, PointTiming{
			Label:   fmt.Sprintf("seed#%d", s),
			Elapsed: outs[s].Elapsed,
		})
	}
	for k := 0; k <= steps; k++ {
		vals := make([]float64, len(strategies))
		for si := range strategies {
			vals[si] = curves[si][k].Mean()
			series[si].Append(float64(k), vals[si])
		}
		tbl.AddRowf(k, vals[0], vals[1], vals[2])
	}
	return &Output{
		ID: "rfig13", Title: "Structural robustness (extension)",
		Table: tbl, XName: "removed", Series: series,
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension: the structural case for key-node targeting. Severance-ordered removal is exactly the attack's kill order.",
			"Expected shape: random removals erode connectivity roughly linearly; severance-ordered removal produces cliffs, stranding large fractions within the first handful of kills; betweenness sits between.",
		},
	}, nil
}
