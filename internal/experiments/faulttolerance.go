package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// RunFaultTolerance is R-Fig 14, the robustness extension: the CSA
// attack executed on an unreliable network. A deterministic fault plan —
// node hardware failures, lost charging requests, charger breakdowns,
// sink outages — is scaled by an intensity factor and injected into the
// campaign; the figure tracks how the attack's stealthy exhaustion and
// the sink's detection rate degrade as the world gets less reliable.
// Intensity 0 is the reliable-network control and must match R-Fig 4's
// corresponding cell exactly.
func RunFaultTolerance(ctx context.Context, cfg Config) (*Output, error) {
	n := 120
	intensities := []float64{0, 0.5, 1, 2, 4}
	if cfg.Quick {
		n = 80
		intensities = []float64{0, 1, 2}
	}
	seeds := cfg.seeds()

	type job struct {
		intensity float64
		seed      uint64
	}
	jobs := make([]job, 0, len(intensities)*seeds)
	for _, f := range intensities {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{intensity: f, seed: cfg.seed(s)})
		}
	}
	type res struct {
		out *campaign.Outcome
		rep *faults.Report
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*res, error) {
		j := jobs[i]
		nw, ch, err := forkDefaultWorld(j.seed, n)
		if err != nil {
			return nil, err
		}
		ccfg := campaign.Config{Seed: j.seed, Solver: campaign.SolverCSA}
		if j.intensity > 0 {
			// The fault seed is the campaign seed: reliability varies with
			// the replication, but identically across intensities' shared
			// base load. Plans are single-use, so each job builds its own.
			spec := faults.DefaultSpec(j.seed, attack.DefaultHorizonSec).Scale(j.intensity)
			ccfg.Faults = faults.New(spec, nw.Len())
		}
		o, err := campaign.RunAttack(ctx, nw, ch, ccfg)
		if err != nil {
			return nil, err
		}
		return &res{out: o, rep: o.FaultReport()}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 14 — attack resilience vs fault intensity",
		"intensity", "exhaust_ratio", "stealthy_exhaust", "ci95", "detected_frac",
		"injected", "survived", "fatal")
	stealthySeries := &metrics.Series{Label: "stealthy_exhaust"}
	detectedSeries := &metrics.Series{Label: "detected_frac"}
	var points []PointTiming
	k := 0
	for _, f := range intensities {
		var ratio, stealthy, det, injected, survived, fatal metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			r := outs[k].Value
			k++
			o := r.out
			if len(o.KeyNodes) == 0 {
				continue // no separators: exhaustion is vacuous
			}
			ratio.Add(o.KeyExhaustRatio())
			det.Add(b2f(o.Detected))
			if o.Detected {
				stealthy.Add(0)
			} else {
				stealthy.Add(o.KeyExhaustRatio())
			}
			if r.rep != nil {
				injected.Add(float64(r.rep.Injected()))
				survived.Add(float64(r.rep.Survived()))
				fatal.Add(float64(r.rep.Fatal()))
			} else {
				injected.Add(0)
				survived.Add(0)
				fatal.Add(0)
			}
		}
		tbl.AddRowf(f, ratio.Mean(), stealthy.Mean(), stealthy.CI95(), det.Mean(),
			injected.Mean(), survived.Mean(), fatal.Mean())
		stealthySeries.Append(f, stealthy.Mean())
		detectedSeries.Append(f, det.Mean())
		points = append(points, PointTiming{
			Label:   fmt.Sprintf("intensity=%g", f),
			Elapsed: sumElapsed(outs, row, k),
		})
	}
	return &Output{
		ID: "rfig14", Title: "Attack resilience under injected faults",
		Table: tbl, XName: "intensity",
		Series: []*metrics.Series{stealthySeries, detectedSeries},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension beyond the paper: the paper's evaluation assumes a perfectly reliable network.",
			"Intensity scales the default fault load (node failures, 5% request loss, charger breakdowns, one sink outage per horizon).",
			"Intensity 0 is the reliable-network control; its row must match the fault-free CSA campaign bit-for-bit.",
			"Expected shape: the attack is robust to moderate unreliability (lost requests and breakdowns delay, not prevent, exhaustion); heavy fault load can starve the cover service and raise detection.",
		},
	}, nil
}
