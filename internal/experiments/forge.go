package experiments

import (
	"encoding/json"
	"sync"

	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// maxForgeWorlds bounds the snapshot cache. A full evaluation touches a
// few dozen distinct (seed, size, policy) worlds; past the cap new
// scenarios build uncached — correctness is unaffected (fork ≡ rebuild,
// pinned by the golden harness), only the warm-up dedup is lost.
const maxForgeWorlds = 128

// worldForge caches one barrier snapshot per scenario so sweep drivers
// pay the warm-up prefix — placement, connectivity repair, routing
// convergence — once per distinct world instead of once per campaign
// cell. rfig4 alone runs 4 solvers × 5 seeds × 5 sizes over 25 distinct
// worlds; without the forge it builds 100.
//
// Forks are independent copies, so concurrent sweep jobs never share
// mutable state; the entry's once makes concurrent first-users of a
// scenario build its snapshot exactly once.
type worldForge struct {
	mu sync.Mutex
	m  map[trace.Scenario]*forgeEntry
}

type forgeEntry struct {
	once sync.Once
	snap *snapshot.Snapshot
	err  error

	// encOnce/enc cache the snapshot's encoded wire form for dispatched
	// sweeps: the coordinator pays the encode once per distinct world and
	// every shipped job spec reuses the bytes.
	encOnce sync.Once
	enc     json.RawMessage
	encErr  error
}

// forge is the package-wide world cache. Experiments are CLI-scoped, so
// process lifetime bounds it alongside maxForgeWorlds.
var forge = &worldForge{m: make(map[trace.Scenario]*forgeEntry)}

// fork returns an independent network and default charger for the
// scenario, building and caching the barrier snapshot on first use.
func (f *worldForge) fork(sc trace.Scenario) (*wrsn.Network, *mc.Charger, error) {
	f.mu.Lock()
	e := f.m[sc]
	if e == nil {
		e = &forgeEntry{}
		if len(f.m) < maxForgeWorlds {
			f.m[sc] = e
		}
	}
	f.mu.Unlock()
	e.once.Do(func() {
		e.snap, e.err = snapshot.Build(sc, mc.DefaultParams())
	})
	if e.err != nil {
		return nil, nil, e.err
	}
	nw, ch, _, err := e.snap.Fork()
	return nw, ch, err
}

// encoded returns the scenario's barrier snapshot in encoded wire form,
// building and encoding it (each at most once per cached scenario) on
// first use. Dispatched job specs carry these bytes so worker processes
// fork the captured world instead of rebuilding it — the same dedup the
// in-process path gets from fork.
func (f *worldForge) encoded(sc trace.Scenario) (json.RawMessage, error) {
	f.mu.Lock()
	e := f.m[sc]
	if e == nil {
		e = &forgeEntry{}
		if len(f.m) < maxForgeWorlds {
			f.m[sc] = e
		}
	}
	f.mu.Unlock()
	e.once.Do(func() {
		e.snap, e.err = snapshot.Build(sc, mc.DefaultParams())
	})
	if e.err != nil {
		return nil, e.err
	}
	e.encOnce.Do(func() {
		e.enc, e.encErr = e.snap.Encode()
	})
	return e.enc, e.encErr
}

// forkDefaultWorld forks the evaluation-baseline scenario for (seed, n).
func forkDefaultWorld(seed uint64, n int) (*wrsn.Network, *mc.Charger, error) {
	return forge.fork(trace.DefaultScenario(seed, n))
}
