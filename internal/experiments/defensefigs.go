package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// fieldRect builds the corridor field for the density variants.
func fieldRect(w, h float64) geom.Rect {
	return geom.NewRect(geom.Pt(0, 0), geom.Pt(w, h))
}

// RunDefenseVerification is R-Fig 10 (extension): sweeping the
// harvest-verification probability against the full CSA attack. A
// verified spoof is physical proof — the interesting questions are how
// little verification suffices, what it costs, and how often benign dead
// sessions raise false alarms. Each (probability, seed) point needs an
// attack run and a legitimate run; both fan out over the worker pool.
func RunDefenseVerification(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	probs := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	if cfg.Quick {
		n = 100
		probs = []float64{0, 0.1, 0.4}
	}
	seeds := cfg.seeds()

	// Two campaigns per (prob, seed) cell: the attack run and the
	// legitimate false-alarm baseline, adjacent in job order.
	const runsPerCell = 2
	type job struct {
		prob   float64
		seed   uint64
		attack bool
	}
	jobs := make([]job, 0, len(probs)*seeds*runsPerCell)
	for _, q := range probs {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{prob: q, seed: cfg.seed(s), attack: true})
			jobs = append(jobs, job{prob: q, seed: cfg.seed(s), attack: false})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		def := defense.Config{VerifyProb: j.prob}
		if j.attack {
			return runOneAttack(ctx, cfg, j.seed, n, jobspec.Campaign{
				Solver: campaign.SolverCSA, Defense: def,
			})
		}
		return runOneLegit(ctx, cfg, j.seed, n, jobspec.Campaign{Defense: def})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 10 — harvest verification vs CSA",
		"verify_prob", "exhaust_ratio", "exposed_frac", "exposed_day_mean", "false_alarms_legit", "verify_cost_kj")
	exhaust := &metrics.Series{Label: "exhaust_ratio"}
	exposed := &metrics.Series{Label: "exposed_frac"}
	var points []PointTiming
	k := 0
	for _, q := range probs {
		var ratio, exp, expDay, alarms, cost metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			o := outs[k].Value
			lg := outs[k+1].Value
			k += runsPerCell
			if len(o.KeyNodes) == 0 {
				continue
			}
			ratio.Add(o.KeyExhaustRatio())
			gotExposed := len(o.Exposures) > 0
			exp.Add(b2f(gotExposed))
			if gotExposed {
				expDay.Add(o.Exposures[0].At / 86400)
			}
			alarms.Add(float64(lg.FalseAlarms))
			// Verification energy across the population: checks ×
			// per-check cost, approximated from session count × q.
			cost.Add(float64(len(lg.Sessions)) * q * defense.DefaultVerifyCostJ / 1000)
		}
		tbl.AddRowf(q, ratio.Mean(), exp.Mean(), expDay.Mean(), alarms.Mean(), cost.Mean())
		exhaust.Append(q, ratio.Mean())
		exposed.Append(q, exp.Mean())
		points = append(points, PointTiming{
			Label:   fmt.Sprintf("q=%.2g", q),
			Elapsed: sumElapsed(outs, row, k),
		})
	}
	return &Output{
		ID: "rfig10", Title: "Harvest verification countermeasure",
		Table: tbl, XName: "verify_prob",
		Series: []*metrics.Series{exhaust, exposed},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension beyond the paper: the node-side countermeasure its threat model implies.",
			"Expected shape: exposure probability ≈ 1−(1−q)^spoofs rises steeply with q; the attacker is typically exposed at its first audited spoofs and exhaustion collapses toward the honest baseline; false alarms scale with q × benign failure rate.",
		},
	}, nil
}

// RunDefenseWitness is R-Fig 11 (extension): neighbor witnessing across
// deployment densities. The spoof's null is local, so any witness inside
// the charger's RF range plus a zero-gain session is damning — but at
// standard densities nobody lives that close, so the countermeasure is
// geometry-limited. The variant × seed grid fans out over the worker
// pool.
func RunDefenseWitness(ctx context.Context, cfg Config) (*Output, error) {
	n := 150
	if cfg.Quick {
		n = 80
	}
	// Density is varied on the corridor topology: a denser *uniform* field
	// stops having articulation points at all (the attack loses its
	// targets), while a corridor stays a chain of key nodes at any pitch —
	// exactly where witnessing coverage matters.
	type variant struct {
		name    string
		pitchM  float64
		heightM float64
	}
	variants := []variant{
		{"corridor 25m pitch", 25, 30},
		{"corridor 12m pitch", 12, 14},
		{"corridor 6m pitch", 6, 8},
	}
	duty := 0.5
	seeds := cfg.seeds()

	type job struct {
		variant int
		seed    uint64
	}
	jobs := make([]job, 0, len(variants)*seeds)
	for vi := range variants {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, job{variant: vi, seed: cfg.seed(s)})
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		v := variants[j.variant]
		sc := trace.DefaultScenario(j.seed, n)
		sc.Deploy.Pattern = trace.DeployCorridor
		sc.Deploy.Field = fieldRect(v.pitchM*float64(n), v.heightM)
		// Dense deployments run short-range radios (otherwise the
		// chain is k-connected and has no key nodes at all); scale
		// the radio with the pitch.
		sc.CommRange = 2 * v.pitchM
		return runAttackOnScenario(ctx, cfg, sc, jobspec.Campaign{
			Seed:   j.seed,
			Solver: campaign.SolverCSA,
			Defense: defense.Config{
				WitnessDutyCycle: duty,
			},
		})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 11 — neighbor witnessing vs deployment density",
		"deployment", "witness_samples_per_session", "exposed_frac", "exhaust_ratio")
	samplesSeries := &metrics.Series{Label: "witness_samples_per_session"}
	exposedSeries := &metrics.Series{Label: "exposed_frac"}
	var points []PointTiming
	k := 0
	for vi, v := range variants {
		var perSession, exp, ratio metrics.Summary
		row := k
		for s := 0; s < seeds; s++ {
			o := outs[k].Value
			k++
			if len(o.KeyNodes) == 0 {
				continue
			}
			perSession.Add(metrics.Ratio(float64(o.WitnessSamples), float64(len(o.Sessions))))
			exp.Add(b2f(len(o.Exposures) > 0))
			ratio.Add(o.KeyExhaustRatio())
		}
		tbl.AddRowf(v.name, perSession.Mean(), exp.Mean(), ratio.Mean())
		samplesSeries.Append(float64(vi), perSession.Mean())
		exposedSeries.Append(float64(vi), exp.Mean())
		points = append(points, PointTiming{Label: v.name, Elapsed: sumElapsed(outs, row, k)})
	}
	return &Output{
		ID: "rfig11", Title: "Neighbor witnessing countermeasure",
		Table: tbl, XName: "density_variant",
		Series: []*metrics.Series{samplesSeries, exposedSeries},
		Timing: Timing{Points: points},
		Notes: []string{
			"Extension beyond the paper. The charger's RF range is ~8 m; at the standard 36 m deployment pitch almost no node can witness a session, so exposure stays near 0 regardless of duty cycle.",
			"Expected shape: witness coverage and exposure probability rise sharply with density; at very dense pitches the first spoof with any awake witness ends the attack.",
		},
	}, nil
}
