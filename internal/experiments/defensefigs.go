package experiments

import (
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// fieldRect builds the corridor field for the density variants.
func fieldRect(w, h float64) geom.Rect {
	return geom.NewRect(geom.Pt(0, 0), geom.Pt(w, h))
}

// RunDefenseVerification is R-Fig 10 (extension): sweeping the
// harvest-verification probability against the full CSA attack. A
// verified spoof is physical proof — the interesting questions are how
// little verification suffices, what it costs, and how often benign dead
// sessions raise false alarms.
func RunDefenseVerification(cfg Config) (*Output, error) {
	n := 200
	probs := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	if cfg.Quick {
		n = 100
		probs = []float64{0, 0.1, 0.4}
	}
	tbl := report.NewTable("R-Fig 10 — harvest verification vs CSA",
		"verify_prob", "exhaust_ratio", "exposed_frac", "exposed_day_mean", "false_alarms_legit", "verify_cost_kj")
	exhaust := &metrics.Series{Label: "exhaust_ratio"}
	exposed := &metrics.Series{Label: "exposed_frac"}
	for _, q := range probs {
		def := defense.Config{VerifyProb: q}
		var ratio, exp, expDay, alarms, cost metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			o, err := runOneAttack(cfg.seed(s), n, campaign.Config{
				Solver: campaign.SolverCSA, Defense: def,
			})
			if err != nil {
				return nil, err
			}
			if len(o.KeyNodes) == 0 {
				continue
			}
			ratio.Add(o.KeyExhaustRatio())
			gotExposed := len(o.Exposures) > 0
			exp.Add(b2f(gotExposed))
			if gotExposed {
				expDay.Add(o.Exposures[0].At / 86400)
			}
			lg, err := runOneLegit(cfg.seed(s), n, campaign.Config{Defense: def})
			if err != nil {
				return nil, err
			}
			alarms.Add(float64(lg.FalseAlarms))
			// Verification energy across the population: checks ×
			// per-check cost, approximated from session count × q.
			cost.Add(float64(len(lg.Sessions)) * q * defense.DefaultVerifyCostJ / 1000)
		}
		tbl.AddRowf(q, ratio.Mean(), exp.Mean(), expDay.Mean(), alarms.Mean(), cost.Mean())
		exhaust.Append(q, ratio.Mean())
		exposed.Append(q, exp.Mean())
	}
	return &Output{
		ID: "rfig10", Title: "Harvest verification countermeasure",
		Table: tbl, XName: "verify_prob",
		Series: []*metrics.Series{exhaust, exposed},
		Notes: []string{
			"Extension beyond the paper: the node-side countermeasure its threat model implies.",
			"Expected shape: exposure probability ≈ 1−(1−q)^spoofs rises steeply with q; the attacker is typically exposed at its first audited spoofs and exhaustion collapses toward the honest baseline; false alarms scale with q × benign failure rate.",
		},
	}, nil
}

// RunDefenseWitness is R-Fig 11 (extension): neighbor witnessing across
// deployment densities. The spoof's null is local, so any witness inside
// the charger's RF range plus a zero-gain session is damning — but at
// standard densities nobody lives that close, so the countermeasure is
// geometry-limited.
func RunDefenseWitness(cfg Config) (*Output, error) {
	n := 150
	if cfg.Quick {
		n = 80
	}
	// Density is varied on the corridor topology: a denser *uniform* field
	// stops having articulation points at all (the attack loses its
	// targets), while a corridor stays a chain of key nodes at any pitch —
	// exactly where witnessing coverage matters.
	type variant struct {
		name    string
		pitchM  float64
		heightM float64
	}
	variants := []variant{
		{"corridor 25m pitch", 25, 30},
		{"corridor 12m pitch", 12, 14},
		{"corridor 6m pitch", 6, 8},
	}
	duty := 0.5
	tbl := report.NewTable("R-Fig 11 — neighbor witnessing vs deployment density",
		"deployment", "witness_samples_per_session", "exposed_frac", "exhaust_ratio")
	samplesSeries := &metrics.Series{Label: "witness_samples_per_session"}
	exposedSeries := &metrics.Series{Label: "exposed_frac"}
	for vi, v := range variants {
		var perSession, exp, ratio metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			sc := trace.DefaultScenario(cfg.seed(s), n)
			sc.Deploy.Pattern = trace.DeployCorridor
			sc.Deploy.Field = fieldRect(v.pitchM*float64(n), v.heightM)
			// Dense deployments run short-range radios (otherwise the
			// chain is k-connected and has no key nodes at all); scale
			// the radio with the pitch.
			sc.CommRange = 2 * v.pitchM
			o, err := runAttackOnScenario(sc, campaign.Config{
				Seed:   cfg.seed(s),
				Solver: campaign.SolverCSA,
				Defense: defense.Config{
					WitnessDutyCycle: duty,
				},
			})
			if err != nil {
				return nil, err
			}
			if len(o.KeyNodes) == 0 {
				continue
			}
			perSession.Add(metrics.Ratio(float64(o.WitnessSamples), float64(len(o.Sessions))))
			exp.Add(b2f(len(o.Exposures) > 0))
			ratio.Add(o.KeyExhaustRatio())
		}
		tbl.AddRowf(v.name, perSession.Mean(), exp.Mean(), ratio.Mean())
		samplesSeries.Append(float64(vi), perSession.Mean())
		exposedSeries.Append(float64(vi), exp.Mean())
	}
	return &Output{
		ID: "rfig11", Title: "Neighbor witnessing countermeasure",
		Table: tbl, XName: "density_variant",
		Series: []*metrics.Series{samplesSeries, exposedSeries},
		Notes: []string{
			"Extension beyond the paper. The charger's RF range is ~8 m; at the standard 36 m deployment pitch almost no node can witness a session, so exposure stays near 0 regardless of duty cycle.",
			"Expected shape: witness coverage and exposure probability rise sharply with density; at very dense pitches the first spoof with any awake witness ends the attack.",
		},
	}, nil
}
