package experiments

import (
	"context"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

// rngFor derives an experiment-local random stream.
func rngFor(seed uint64) *rng.Stream { return rng.New(seed).Split("experiments") }

// RunDetectionROC reproduces R-Fig 6: per-detector ROC curves with attack
// runs (CSA and Direct) as positives and legitimate runs as negatives.
// Scores come from the horizon audit with live impoundment disabled, so
// the full evidence of each behavior is judged. The paper's stealth claim
// corresponds to CSA's AUC sitting near chance while Direct is trivially
// separable. The seed × behavior campaign grid fans out over the worker
// pool; scores are extracted from the outcomes in seed order.
func RunDetectionROC(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	if cfg.Quick {
		n = 100
	}
	seeds := cfg.seeds() * 2 // ROC needs more samples than a mean
	detectors := detect.Suite()

	// Three behaviors per seed: legitimate, CSA, Direct — one job each.
	const behaviors = 3
	outs, err := mapTimed(ctx, cfg, seeds*behaviors, func(ctx context.Context, i int) (*campaign.Outcome, error) {
		seed := cfg.seed(i / behaviors)
		base := jobspec.Campaign{AuditEverySec: -1} // judge only at horizon
		switch i % behaviors {
		case 0:
			return runOneLegit(ctx, cfg, seed, n, base)
		case 1:
			base.Solver = campaign.SolverCSA
			return runOneAttack(ctx, cfg, seed, n, base)
		default:
			base.Solver = campaign.SolverDirect
			base.NoFill = true
			return runOneAttack(ctx, cfg, seed, n, base)
		}
	})
	if err != nil {
		return nil, err
	}

	// Collect per-detector score samples for each behavior, in seed order.
	type sampleSet struct {
		legit, csa, direct []float64
	}
	samples := make([]sampleSet, len(detectors))
	var points []PointTiming
	for s := 0; s < seeds; s++ {
		lg := outs[s*behaviors].Value
		ca := outs[s*behaviors+1].Value
		di := outs[s*behaviors+2].Value
		for i, d := range detectors {
			samples[i].legit = append(samples[i].legit, d.Score(lg.Audit))
			samples[i].csa = append(samples[i].csa, d.Score(ca.Audit))
			samples[i].direct = append(samples[i].direct, d.Score(di.Audit))
		}
		points = append(points, PointTiming{
			Label:   fmt.Sprintf("seed#%d", s),
			Elapsed: sumElapsed(outs, s*behaviors, (s+1)*behaviors),
		})
	}

	tbl := report.NewTable("R-Fig 6 — detector ROC (attack vs legitimate)",
		"detector", "attacker", "auc", "tpr_at_default", "fpr_at_default")
	var series []*metrics.Series
	for i, d := range detectors {
		for _, att := range []struct {
			name   string
			scores []float64
		}{{"CSA", samples[i].csa}, {"Direct", samples[i].direct}} {
			pts, err := detect.ROC(att.scores, samples[i].legit)
			if err != nil {
				return nil, err
			}
			auc := detect.AUC(pts)
			// Operating point at the detector's default threshold.
			var tpr, fpr float64
			thr := d.Threshold()
			tpr = rateAtOrAbove(att.scores, thr)
			fpr = rateAtOrAbove(samples[i].legit, thr)
			tbl.AddRowf(d.Name(), att.name, auc, tpr, fpr)
			sr := &metrics.Series{Label: d.Name() + "_" + att.name}
			for _, p := range pts {
				sr.Append(p.FPR, p.TPR)
			}
			series = append(series, sr)
		}
	}
	return &Output{
		ID: "rfig6", Title: "Detection ROC",
		Table: tbl, XName: "fpr", Series: series,
		Timing: Timing{Points: points},
		Notes: []string{
			"Expected shape: Direct is near-perfectly detectable (AUC ≈ 1, TPR ≈ 1 at default thresholds); CSA sits near chance (AUC ≈ 0.5, TPR ≈ 0).",
		},
	}, nil
}

func rateAtOrAbove(xs []float64, thr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
