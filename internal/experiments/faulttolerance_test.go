package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestFaultToleranceDeterminism: rfig14 builds a fresh fault plan per
// job, so its tables and CSV series must still be byte-identical across
// worker counts for a fixed seed.
func TestFaultToleranceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns; skipped in -short")
	}
	e, err := ByID("rfig14")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (string, []byte) {
		cfg := NewConfig(WithQuick(true), WithSeeds(1), WithWorkers(workers))
		out, err := Run(context.Background(), e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, out)
	}
	seqTbl, seqCSV := run(1)
	parTbl, parCSV := run(4)
	if seqTbl != parTbl {
		t.Errorf("rendered output differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqTbl, parTbl)
	}
	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("CSV differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqCSV, parCSV)
	}
	if !strings.Contains(seqTbl, "injected") {
		t.Errorf("table lacks the fault-ledger columns:\n%s", seqTbl)
	}
}

func TestHardeningOptions(t *testing.T) {
	cfg := NewConfig(WithJobTimeout(3*time.Minute), WithJobRetries(2))
	if cfg.JobTimeout != 3*time.Minute || cfg.JobRetries != 2 {
		t.Errorf("NewConfig mis-applied hardening options: %+v", cfg)
	}
}
