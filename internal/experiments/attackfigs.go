package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/metrics"
	"github.com/reprolab/wrsn-csa/internal/report"
)

// solverSpecs pairs each attack planner with its execution mode: the
// Direct attacker does no cover work at all (that is its definition), the
// others keep their cover with opportunistic fill.
var solverSpecs = []struct {
	name   string
	noFill bool
}{
	{campaign.SolverCSA, false},
	{campaign.SolverGreedyNearest, false},
	{campaign.SolverRandom, false},
	{campaign.SolverDirect, true},
}

// RunExhaustionVsN reproduces R-Fig 4, the headline figure: the fraction
// of key nodes exhausted by the horizon, per planner, as the network
// grows. Live audits impound a flagged charger mid-run, so detection is
// what separates the planners — every attacker that survives undetected
// exhausts its targets eventually. The seed × size × solver campaign
// grid fans out over the worker pool; the merge consumes results in
// sweep order, so the table is identical at any worker count.
func RunExhaustionVsN(ctx context.Context, cfg Config) (*Output, error) {
	sizes := []int{100, 150, 200, 250, 300}
	if cfg.Quick {
		sizes = []int{80, 140}
	}
	seeds := cfg.seeds()

	// One job per (size, solver, seed) cell, laid out in merge order.
	type job struct {
		n    int
		spec int
		seed uint64
	}
	jobs := make([]job, 0, len(sizes)*len(solverSpecs)*seeds)
	for _, n := range sizes {
		for si := range solverSpecs {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{n: n, spec: si, seed: cfg.seed(s)})
			}
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (*campaign.Outcome, error) {
		j := jobs[i]
		spec := solverSpecs[j.spec]
		return runOneAttack(ctx, cfg, j.seed, j.n, jobspec.Campaign{
			Solver: spec.name, NoFill: spec.noFill,
		})
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 4 — key-node exhaustion ratio vs network size",
		"n", "solver", "exhaust_ratio", "stealthy_exhaust", "ci95", "detected_frac", "caught_day_mean")
	series := make([]*metrics.Series, len(solverSpecs))
	for i, s := range solverSpecs {
		series[i] = &metrics.Series{Label: s.name}
	}
	var points []PointTiming
	k := 0
	for _, n := range sizes {
		for si, spec := range solverSpecs {
			var ratio, stealthy, det, caughtDay metrics.Summary
			row := k
			for s := 0; s < seeds; s++ {
				o := outs[k].Value
				k++
				if len(o.KeyNodes) == 0 {
					continue // no separators: exhaustion is vacuous
				}
				ratio.Add(o.KeyExhaustRatio())
				det.Add(b2f(o.Detected))
				// Stealthy exhaustion is the attack's real gain: kills
				// only count while the charger is still trusted.
				if o.Detected {
					stealthy.Add(0)
				} else {
					stealthy.Add(o.KeyExhaustRatio())
				}
				if o.Caught {
					caughtDay.Add(o.CaughtAt / 86400)
				}
			}
			tbl.AddRowf(n, spec.name, ratio.Mean(), stealthy.Mean(), stealthy.CI95(), det.Mean(), caughtDay.Mean())
			series[si].Append(float64(n), stealthy.Mean())
			points = append(points, PointTiming{
				Label:   fmt.Sprintf("n=%d/%s", n, spec.name),
				Elapsed: sumElapsed(outs, row, k),
			})
		}
	}
	return &Output{
		ID: "rfig4", Title: "Key-node exhaustion vs network size",
		Table: tbl, XName: "n", Series: series,
		Timing: Timing{Points: points},
		Notes: []string{
			"Paper claim: CSA exhausts ≥80% of key nodes without being detected.",
			"Series plot stealthy exhaustion (exhaustion achieved while undetected).",
			"Expected shape: CSA ≥0.8 at all sizes with detected_frac ≈ 0; every baseline is caught, so its stealthy exhaustion collapses to ~0.",
		},
	}, nil
}

// RunUtilityVsBudget reproduces R-Fig 5: the planned cover utility of each
// solver as the TIDE instance's energy budget sweeps, on a fixed 200-node
// network. Utility here is the planner-level objective (energy committed
// to genuine requests inside the plan), the quantity TIDE maximizes. The
// build+solve grid fans out over the worker pool.
func RunUtilityVsBudget(ctx context.Context, cfg Config) (*Output, error) {
	n := 200
	budgets := []float64{2e5, 5e5, 1e6, 2e6, 4e6, 8e6}
	if cfg.Quick {
		n = 100
		budgets = []float64{2e5, 1e6, 4e6}
	}
	solvers := []string{campaign.SolverCSA, campaign.SolverGreedyNearest, campaign.SolverRandom, campaign.SolverDirect}
	seeds := cfg.seeds()

	type cell struct {
		res     attack.Result
		targets int
	}
	type job struct {
		budget float64
		solver string
		seed   uint64
	}
	jobs := make([]job, 0, len(budgets)*len(solvers)*seeds)
	for _, b := range budgets {
		for _, solver := range solvers {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{budget: b, solver: solver, seed: cfg.seed(s)})
			}
		}
	}
	outs, err := mapTimed(ctx, cfg, len(jobs), func(ctx context.Context, i int) (cell, error) {
		j := jobs[i]
		if err := ctx.Err(); err != nil {
			return cell{}, err
		}
		in, err := buildInstance(j.seed, n, j.budget)
		if err != nil {
			return cell{}, err
		}
		res, err := solveByName(in, j.solver, j.seed)
		if err != nil {
			return cell{}, err
		}
		return cell{res: res, targets: len(in.Mandatories())}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("R-Fig 5 — planned cover utility vs charger budget",
		"budget_mj", "solver", "utility_mj", "ci95", "spoofs_planned", "targets_total")
	series := make([]*metrics.Series, len(solvers))
	for i, s := range solvers {
		series[i] = &metrics.Series{Label: s}
	}
	var points []PointTiming
	k := 0
	for _, b := range budgets {
		for si, solver := range solvers {
			var util, spoofs, targets metrics.Summary
			row := k
			for s := 0; s < seeds; s++ {
				c := outs[k].Value
				k++
				util.Add(c.res.Plan.UtilityJ / 1e6)
				spoofs.Add(float64(c.res.Plan.SpoofCount))
				targets.Add(float64(c.targets))
			}
			tbl.AddRowf(b/1e6, solver, util.Mean(), util.CI95(), spoofs.Mean(), targets.Mean())
			series[si].Append(b/1e6, util.Mean())
			points = append(points, PointTiming{
				Label:   fmt.Sprintf("budget=%.1fMJ/%s", b/1e6, solver),
				Elapsed: sumElapsed(outs, row, k),
			})
		}
	}
	return &Output{
		ID: "rfig5", Title: "Cover utility vs budget",
		Table: tbl, XName: "budget_mj", Series: series,
		Timing: Timing{Points: points},
		Notes: []string{
			"TIDE is lexicographic: spoof coverage first, cover utility second — compare utility between solvers at equal spoofs_planned.",
			"Expected shape: utility grows with budget and saturates once every cover fits. CSA leads among full-coverage planners; GreedyNearest buys utility by abandoning targets at tight budgets; Direct earns none by construction.",
		},
	}, nil
}

// RunRuntime reproduces R-Fig 9: CSA planning wall-clock time as the
// instance grows, against the exact solver's exponential blowup on the
// sizes it can still handle. This driver stays sequential on purpose:
// its table IS a timing measurement, and co-scheduling the solves would
// contaminate the numbers it reports.
func RunRuntime(ctx context.Context, cfg Config) (*Output, error) {
	sizes := []int{50, 100, 200, 300, 400}
	if cfg.Quick {
		sizes = []int{50, 100}
	}
	tbl := report.NewTable("R-Fig 9 — planning runtime", "n", "sites", "csa_ms")
	csaSeries := &metrics.Series{Label: "csa_ms"}
	for _, n := range sizes {
		var ms, sites metrics.Summary
		for s := 0; s < cfg.seeds(); s++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			in, err := buildInstance(cfg.seed(s), n, 0)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := attack.SolveCSA(in); err != nil {
				return nil, err
			}
			ms.Add(float64(time.Since(start).Microseconds()) / 1000)
			sites.Add(float64(len(in.Sites)))
		}
		tbl.AddRowf(n, sites.Mean(), ms.Mean())
		csaSeries.Append(float64(n), ms.Mean())
	}
	return &Output{
		ID: "rfig9", Title: "CSA planning runtime",
		Table: tbl, XName: "n", Series: []*metrics.Series{csaSeries},
		Notes: []string{
			"Expected shape: low-order polynomial growth; planning stays interactive (well under a second) at evaluation sizes.",
		},
	}, nil
}

// buildInstance constructs the TIDE instance of a forked baseline world.
func buildInstance(seed uint64, n int, budget float64) (*attack.Instance, error) {
	nw, ch, err := forkDefaultWorld(seed, n)
	if err != nil {
		return nil, err
	}
	return attack.BuildInstance(nw, ch, attack.BuilderConfig{BudgetJ: budget})
}

// solveByName dispatches to a planner by campaign solver name.
func solveByName(in *attack.Instance, solver string, seed uint64) (attack.Result, error) {
	switch solver {
	case campaign.SolverCSA:
		return attack.SolveCSA(in)
	case campaign.SolverGreedyNearest:
		return attack.SolveGreedyNearest(in)
	case campaign.SolverRandom:
		return attack.SolveRandom(in, rngFor(seed))
	case campaign.SolverDirect:
		return attack.SolveDirect(in)
	default:
		return attack.Result{}, nil
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
