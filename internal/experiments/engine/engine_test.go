package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderIsDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	// Make the high-index job fail fast and the low-index job fail slow, so
	// a naive first-error-wins pool would report the wrong one.
	_, err := Map(context.Background(), 4, 8, func(_ context.Context, i int) (int, error) {
		switch i {
		case 2:
			time.Sleep(30 * time.Millisecond)
			return 0, errLow
		case 7:
			return 0, errHigh
		default:
			return i, nil
		}
	})
	if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
		t.Fatalf("err = %v", err)
	}
	// Whichever job got to run, the reported error must be the lowest index
	// among those that actually failed; with worker counts ≥ 2 both run.
	if errors.Is(err, errHigh) {
		t.Fatalf("got high-index error %v, want lowest-indexed failure", err)
	}
}

func TestMapCanceledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 10, func(context.Context, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapErrorCancelsPool(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1, 1000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 4 {
		t.Fatalf("pool kept claiming jobs after failure: ran %d", n)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inflight, peak atomic.Int64
	_, err := Map(context.Background(), workers, 64, func(context.Context, int) (int, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d > %d workers", p, workers)
	}
}

func TestMapTimedRecordsElapsed(t *testing.T) {
	res, err := MapTimed(context.Background(), 2, 4, func(context.Context, int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Elapsed <= 0 {
			t.Errorf("job %d elapsed = %v", i, r.Elapsed)
		}
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 50)
	err := ForEach(context.Background(), 8, len(out), func(_ context.Context, i int) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct{ req, jobs, min, max int }{
		{0, 10, 1, 1 << 20}, // GOMAXPROCS-sized, clamped to jobs
		{8, 4, 4, 4},
		{-1, 3, 1, 3},
		{2, 100, 2, 2},
		{5, 0, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.req, c.jobs)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]", c.req, c.jobs, got, c.min, c.max)
		}
	}
}

func ExampleMap() {
	squares, _ := Map(context.Background(), 4, 5, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	fmt.Println(squares)
	// Output: [0 1 4 9 16]
}
