// Package engine is the parallel execution core of the experiment suite:
// a bounded worker pool that fans independent jobs (seed replications,
// sweep points) out over GOMAXPROCS-sized concurrency while keeping the
// result order — and therefore every rendered table and CSV — identical
// to a sequential run.
//
// Determinism contract: jobs are identified by their index in [0, n).
// Results land in a slice at their own index, so the caller's merge loop
// reads them in exactly the order a sequential loop would have produced
// them. When several jobs fail, the error of the lowest-indexed failure
// is returned — again matching what a sequential run would have seen
// first. Cancellation (parent context or first failure) stops workers
// from claiming new jobs; in-flight jobs run to completion.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/wrsn-csa/internal/obs"
)

// Result carries one job's value and its wall-clock cost, so callers can
// report per-point timing without re-instrumenting every driver.
type Result[T any] struct {
	Value   T
	Elapsed time.Duration
}

// Workers normalizes a worker-count request: non-positive means "size to
// the hardware" (GOMAXPROCS), and a pool never needs more workers than
// jobs.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MapTimed runs fn(ctx, i) for every i in [0, n) over a pool of at most
// `workers` goroutines (non-positive: GOMAXPROCS) and returns the results
// indexed by job, each with its elapsed wall clock. The first failure
// cancels the pool's context so outstanding jobs can abort promptly; the
// returned error is the lowest-indexed one, which is what a sequential
// run would have hit first. A canceled parent context surfaces as its
// ctx.Err().
func MapTimed[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	return MapTimedProbed(ctx, workers, n, obs.Nop(), fn)
}

// MapTimedProbed is MapTimed with pool telemetry: each job's latency is
// observed into the "engine.job_sec" histogram and counted into
// "engine.jobs", the resolved pool size lands in the "engine.workers"
// gauge, and the pool's utilization — total job time over workers ×
// wall time, 1.0 meaning every worker was busy the whole run — in
// "engine.pool_utilization". Telemetry never affects job scheduling or
// result order; a nil probe disables it.
func MapTimedProbed[T any](ctx context.Context, workers, n int, probe obs.Probe, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	probe = obs.Or(probe)
	workers = Workers(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	poolStart := time.Now()
	results := make([]Result[T], n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				start := time.Now()
				v, err := fn(ctx, i)
				elapsed := time.Since(start)
				results[i] = Result[T]{Value: v, Elapsed: elapsed}
				if probe.Enabled() {
					probe.Add("engine.jobs", 1)
					probe.Observe("engine.job_sec", elapsed.Seconds())
				}
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if probe.Enabled() {
		var total time.Duration
		for _, r := range results {
			total += r.Elapsed
		}
		probe.Set("engine.workers", float64(workers))
		if wall := time.Since(poolStart); wall > 0 {
			probe.Set("engine.pool_utilization", total.Seconds()/(wall.Seconds()*float64(workers)))
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// No job failed, so the only way ctx can be done here is a parent
	// cancellation (the deferred cancel has not run yet): some jobs were
	// never claimed and the result set is incomplete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Map is MapTimed without the timing data.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	timed, err := MapTimed(ctx, workers, n, fn)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(timed))
	for i, r := range timed {
		out[i] = r.Value
	}
	return out, nil
}

// ForEach runs fn(ctx, i) for every i in [0, n) over the pool, for jobs
// that write their results into caller-owned, per-index storage.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapTimed(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
