// Package engine is the parallel execution core of the experiment suite:
// a bounded worker pool that fans independent jobs (seed replications,
// sweep points) out over GOMAXPROCS-sized concurrency while keeping the
// result order — and therefore every rendered table and CSV — identical
// to a sequential run.
//
// Determinism contract: jobs are identified by their index in [0, n).
// Results land in a slice at their own index, so the caller's merge loop
// reads them in exactly the order a sequential loop would have produced
// them. When several jobs fail, the error of the lowest-indexed failure
// is returned — again matching what a sequential run would have seen
// first. Cancellation (parent context or first failure) stops workers
// from claiming new jobs; in-flight jobs run to completion.
//
// Hardening: a panicking job never kills the process — the worker
// recovers it into a *PanicError carrying the job index and stack.
// MapTimedOpts adds per-attempt timeouts, bounded retry-with-backoff,
// and a keep-going mode that runs every job and aggregates failures
// (errors.Join of JobError/PanicError in index order) alongside the
// partial results.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/wrsn-csa/internal/obs"
)

// Retry backoff bounds: the first retry waits Options.Backoff
// (DefaultBackoff when unset), doubling per attempt up to MaxBackoff.
const (
	DefaultBackoff = 100 * time.Millisecond
	MaxBackoff     = 5 * time.Second
)

// Result carries one job's value and its wall-clock cost, so callers can
// report per-point timing without re-instrumenting every driver.
type Result[T any] struct {
	Value   T
	Elapsed time.Duration
}

// PanicError is a job panic converted to an error: the worker recovers,
// the process survives, and the sweep's merge order is untouched. It
// carries the job index and the goroutine stack at the panic site.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

// Error formats the panic with its stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// JobError tags a job failure with its index, so aggregated keep-going
// errors stay attributable. Unwrap exposes the underlying error to
// errors.Is/As.
type JobError struct {
	Job int
	Err error
}

// Error formats the failure with its job index.
func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Job, e.Err) }

// Unwrap exposes the wrapped error.
func (e *JobError) Unwrap() error { return e.Err }

// Options harden a pool run. The zero value reproduces the classic
// MapTimed behavior exactly (fail-fast, no timeout, no retries) — except
// that a panicking job surfaces as a *PanicError instead of killing the
// process.
type Options struct {
	// Timeout bounds each attempt of each job; 0 means none. A job that
	// overruns fails with a context.DeadlineExceeded-wrapping error (the
	// overrunning attempt is abandoned; its goroutine exits whenever the
	// job function honors its context).
	Timeout time.Duration
	// Retries is how many additional attempts a failed job gets. Job
	// functions derive all randomness from the job index, so a retry
	// re-runs bit-identically — retries only help against environmental
	// failures (timeouts, resource exhaustion), not deterministic bugs.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt up to
	// MaxBackoff; non-positive gets DefaultBackoff.
	Backoff time.Duration
	// KeepGoing runs every job even after failures: the pool is not
	// canceled, partial results are returned alongside an aggregate
	// error (one JobError or PanicError per failed job, joined in index
	// order). Without it the first failure cancels the pool and only the
	// lowest-indexed error returns — the classic fail-fast contract.
	KeepGoing bool
}

// Workers normalizes a worker-count request: non-positive means "size to
// the hardware" (GOMAXPROCS), and a pool never needs more workers than
// jobs.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MapTimed runs fn(ctx, i) for every i in [0, n) over a pool of at most
// `workers` goroutines (non-positive: GOMAXPROCS) and returns the results
// indexed by job, each with its elapsed wall clock. The first failure
// cancels the pool's context so outstanding jobs can abort promptly; the
// returned error is the lowest-indexed one, which is what a sequential
// run would have hit first. A canceled parent context surfaces as its
// ctx.Err().
func MapTimed[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	return MapTimedProbed(ctx, workers, n, obs.Nop(), fn)
}

// MapTimedProbed is MapTimed with pool telemetry: each job's latency is
// observed into the "engine.job_sec" histogram and counted into
// "engine.jobs", the resolved pool size lands in the "engine.workers"
// gauge, and the pool's utilization — total job time over workers ×
// wall time, 1.0 meaning every worker was busy the whole run — in
// "engine.pool_utilization". Telemetry never affects job scheduling or
// result order; a nil probe disables it.
func MapTimedProbed[T any](ctx context.Context, workers, n int, probe obs.Probe, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	return MapTimedOpts(ctx, workers, n, probe, Options{}, fn)
}

// MapTimedOpts is MapTimedProbed hardened by Options: per-job panic
// recovery (always), and optionally per-attempt timeouts, bounded
// retry-with-backoff, and keep-going error aggregation. See Options for
// the exact semantics of each knob; the zero value matches
// MapTimedProbed.
func MapTimedOpts[T any](ctx context.Context, workers, n int, probe obs.Probe, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]Result[T], error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	probe = obs.Or(probe)
	workers = Workers(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	poolStart := time.Now()
	results := make([]Result[T], n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				res, err := runJob(ctx, i, opts, fn)
				results[i] = res
				if probe.Enabled() {
					probe.Add("engine.jobs", 1)
					probe.Observe("engine.job_sec", res.Elapsed.Seconds())
				}
				if err != nil {
					errs[i] = err
					if !opts.KeepGoing {
						cancel()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if probe.Enabled() {
		var total time.Duration
		for _, r := range results {
			total += r.Elapsed
		}
		probe.Set("engine.workers", float64(workers))
		if wall := time.Since(poolStart); wall > 0 {
			probe.Set("engine.pool_utilization", total.Seconds()/(wall.Seconds()*float64(workers)))
		}
	}
	if opts.KeepGoing {
		var joined []error
		for i, err := range errs {
			if err == nil {
				continue
			}
			var pe *PanicError
			if errors.As(err, &pe) {
				// Already carries its job index and stack.
				joined = append(joined, err)
			} else {
				joined = append(joined, &JobError{Job: i, Err: err})
			}
		}
		if len(joined) > 0 {
			// Partial results alongside the aggregate: failed jobs' slots
			// hold zero values, everything else is complete.
			return results, errors.Join(joined...)
		}
	} else {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	// No job failed, so the only way ctx can be done here is a parent
	// cancellation (the deferred cancel has not run yet): some jobs were
	// never claimed and the result set is incomplete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runJob executes one job with the configured retry budget: each failed
// attempt (error, panic, or timeout) is retried after an exponentially
// growing backoff until the budget or the pool context runs out.
func runJob[T any](ctx context.Context, i int, opts Options, fn func(ctx context.Context, i int) (T, error)) (Result[T], error) {
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	for attempt := 0; ; attempt++ {
		res, err := runAttempt(ctx, i, opts.Timeout, fn)
		if err == nil || attempt >= opts.Retries || ctx.Err() != nil {
			return res, err
		}
		if !sleepBackoff(ctx, backoff) {
			return res, err
		}
		if backoff *= 2; backoff > MaxBackoff {
			backoff = MaxBackoff
		}
	}
}

// runAttempt executes one attempt of one job, converting a panic into a
// *PanicError. With a timeout the job function runs on its own goroutine
// under a deadline context; an attempt that overruns is abandoned (its
// goroutine exits when fn next honors its context) and reported as a
// timeout.
func runAttempt[T any](ctx context.Context, i int, timeout time.Duration, fn func(ctx context.Context, i int) (T, error)) (res Result[T], err error) {
	start := time.Now()
	if timeout <= 0 {
		defer func() {
			res.Elapsed = time.Since(start)
			if r := recover(); r != nil {
				err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
			}
		}()
		res.Value, err = fn(ctx, i)
		return res, err
	}

	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &PanicError{Job: i, Value: r, Stack: debug.Stack()}}
			}
		}()
		v, ferr := fn(actx, i)
		ch <- outcome{v: v, err: ferr}
	}()
	select {
	case out := <-ch:
		res = Result[T]{Value: out.v, Elapsed: time.Since(start)}
		err = out.err
		if err != nil && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			err = fmt.Errorf("job %d timed out after %v: %w", i, timeout, err)
		}
		return res, err
	case <-actx.Done():
		res = Result[T]{Elapsed: time.Since(start)}
		if cerr := ctx.Err(); cerr != nil {
			// Pool or parent cancellation, not a per-job timeout.
			return res, cerr
		}
		return res, fmt.Errorf("job %d timed out after %v: %w", i, timeout, context.DeadlineExceeded)
	}
}

// sleepBackoff waits d, or returns false early when ctx is done.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Map is MapTimed without the timing data.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	timed, err := MapTimed(ctx, workers, n, fn)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(timed))
	for i, r := range timed {
		out[i] = r.Value
	}
	return out, nil
}

// ForEach runs fn(ctx, i) for every i in [0, n) over the pool, for jobs
// that write their results into caller-owned, per-index storage.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapTimed(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
