package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPanicRecoveredAsError(t *testing.T) {
	_, err := MapTimed(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("boom at three")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a PanicError: %v", err, err)
	}
	if pe.Job != 3 {
		t.Errorf("PanicError.Job = %d, want 3", pe.Job)
	}
	if pe.Value != "boom at three" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "harden_test.go") {
		t.Error("PanicError.Stack does not point at the panic site")
	}
	if !strings.Contains(err.Error(), "job 3 panicked: boom at three") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestKeepGoingCompletesSweepWithPartialResults(t *testing.T) {
	results, err := MapTimedOpts(context.Background(), 4, 20, nil, Options{KeepGoing: true},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 5:
				return 0, fmt.Errorf("five failed")
			case 11:
				panic("eleven blew up")
			}
			return i * 10, nil
		})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	if results == nil {
		t.Fatal("keep-going mode must return partial results")
	}
	for i, r := range results {
		if i == 5 || i == 11 {
			continue
		}
		if r.Value != i*10 {
			t.Errorf("results[%d] = %d, want %d — a failure cost other jobs their output", i, r.Value, i*10)
		}
	}
	var je *JobError
	if !errors.As(err, &je) || je.Job != 5 {
		t.Errorf("aggregate missing JobError for job 5: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Job != 11 {
		t.Errorf("aggregate missing PanicError for job 11: %v", err)
	}
	if !strings.Contains(err.Error(), "five failed") || !strings.Contains(err.Error(), "eleven blew up") {
		t.Errorf("aggregate error lost detail: %v", err)
	}
}

func TestKeepGoingNoErrors(t *testing.T) {
	results, err := MapTimedOpts(context.Background(), 2, 8, nil, Options{KeepGoing: true},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i {
			t.Errorf("results[%d] = %d", i, r.Value)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	start := time.Now()
	_, err := MapTimedOpts(context.Background(), 2, 3, nil, Options{Timeout: 30 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			if i == 1 {
				// Honors its context: blocks until the deadline.
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "job 1 timed out after 30ms") {
		t.Errorf("timeout error lacks job context: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestJobTimeoutAbandonsHungJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, err := MapTimedOpts(context.Background(), 2, 2, nil,
		Options{Timeout: 20 * time.Millisecond, KeepGoing: true},
		func(_ context.Context, i int) (int, error) {
			if i == 0 {
				// Ignores its context entirely — the attempt must still be
				// abandoned and reported, not block the sweep.
				<-release
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("hung job not reported")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
}

func TestRetriesEventuallySucceed(t *testing.T) {
	var attempts atomic.Int64
	results, err := MapTimedOpts(context.Background(), 1, 1, nil,
		Options{Retries: 3, Backoff: time.Millisecond},
		func(_ context.Context, i int) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, fmt.Errorf("transient")
			}
			return 42, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != 42 {
		t.Errorf("value = %d", results[0].Value)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	_, err := MapTimedOpts(context.Background(), 1, 1, nil,
		Options{Retries: 2, Backoff: time.Millisecond},
		func(_ context.Context, i int) (int, error) {
			attempts.Add(1)
			return 0, fmt.Errorf("permanent")
		})
	if err == nil {
		t.Fatal("expected failure after retry budget")
	}
	if got := attempts.Load(); got != 3 { // 1 initial + 2 retries
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetryRunsIdenticalJobIndex(t *testing.T) {
	// The determinism contract: a retried job sees the same index, so a
	// seed derived from it reproduces the identical job.
	var seen []int
	var mu atomic.Int64
	results, err := MapTimedOpts(context.Background(), 1, 4, nil,
		Options{Retries: 1, Backoff: time.Millisecond},
		func(_ context.Context, i int) (int, error) {
			if i == 2 && mu.Add(1) == 1 {
				seen = append(seen, i)
				return 0, fmt.Errorf("first attempt fails")
			}
			seen = append(seen, i)
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i*i {
			t.Errorf("results[%d] = %d, want %d", i, r.Value, i*i)
		}
	}
	// Single worker: 0, 1, 2 (fail), 2 (retry), 3.
	want := []int{0, 1, 2, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("executions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("executions = %v, want %v", seen, want)
		}
	}
}

func TestFailFastStillCancelsWithOptions(t *testing.T) {
	var ran atomic.Int64
	_, err := MapTimedOpts(context.Background(), 1, 100, nil, Options{},
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 2 {
				return 0, fmt.Errorf("early failure")
			}
			return i, nil
		})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("fail-fast must return the raw error: %v", err)
	}
	if got := ran.Load(); got > 4 {
		t.Errorf("%d jobs ran after the failure should have canceled the pool", got)
	}
}

func TestKeepGoingHonorsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapTimedOpts(ctx, 1, 1000, nil, Options{KeepGoing: true},
		func(_ context.Context, i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 10 {
		t.Errorf("%d jobs ran after parent cancel", got)
	}
}
