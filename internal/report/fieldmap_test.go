package report

import (
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func TestFieldMapMarks(t *testing.T) {
	m := NewFieldMap(geom.Square(100), 40, 20)
	m.Mark(geom.Pt(0, 0), 'A')     // bottom-left of the field
	m.Mark(geom.Pt(100, 100), 'B') // top-right
	m.Mark(geom.Pt(50, 50), 'C')
	out := m.String()
	lines := strings.Split(out, "\n")
	// Frame: first and last map lines are borders.
	if !strings.HasPrefix(lines[0], "+--") {
		t.Fatalf("no top border: %q", lines[0])
	}
	// Screen y is flipped: B (field top) appears before A (field bottom).
	bIdx := strings.Index(out, "B")
	aIdx := strings.Index(out, "A")
	cIdx := strings.Index(out, "C")
	if bIdx < 0 || aIdx < 0 || cIdx < 0 {
		t.Fatal("marks missing from render")
	}
	if !(bIdx < cIdx && cIdx < aIdx) {
		t.Errorf("vertical order wrong: B@%d C@%d A@%d", bIdx, cIdx, aIdx)
	}
}

func TestFieldMapOutOfBounds(t *testing.T) {
	m := NewFieldMap(geom.Square(10), 30, 12)
	m.Mark(geom.Pt(-5, 50), 'X')
	if strings.Contains(m.String(), "X") {
		t.Error("out-of-bounds mark rendered")
	}
}

func TestFieldMapPathPreservesMarks(t *testing.T) {
	m := NewFieldMap(geom.Square(10), 30, 12)
	m.Mark(geom.Pt(5, 5), 'N')
	m.Path([]geom.Point{{X: 0, Y: 5}, {X: 10, Y: 5}}, '.')
	out := m.String()
	if !strings.Contains(out, "N") {
		t.Error("path overwrote a marker")
	}
	if !strings.Contains(out, ".") {
		t.Error("path not drawn")
	}
}

func TestFieldMapLegend(t *testing.T) {
	m := NewFieldMap(geom.Square(10), 30, 12)
	m.Legend('o', "node")
	if !strings.Contains(m.String(), "o  node") {
		t.Error("legend missing")
	}
}

func TestFieldMapMinimumSize(t *testing.T) {
	m := NewFieldMap(geom.Square(10), 1, 1)
	if m.w < 20 || m.h < 10 {
		t.Errorf("minimums not enforced: %dx%d", m.w, m.h)
	}
}

func TestFieldMapDegenerateBounds(t *testing.T) {
	m := NewFieldMap(geom.Rect{}, 30, 12)
	m.Mark(geom.Pt(0, 0), 'X') // must not panic or render
	if strings.Contains(m.String(), "X") {
		t.Error("degenerate bounds rendered a mark")
	}
}
