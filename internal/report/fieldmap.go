package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// FieldMap renders a deployment field as ASCII art: nodes, the sink, key
// nodes, attack targets and a charger route, scaled into a fixed-size
// character grid. It is the console-equivalent of the paper's topology
// figures.
type FieldMap struct {
	bounds geom.Rect
	w, h   int
	cells  [][]rune
	legend []string
}

// NewFieldMap creates a map covering bounds with the given character
// dimensions (minimums are enforced).
func NewFieldMap(bounds geom.Rect, w, h int) *FieldMap {
	if w < 20 {
		w = 20
	}
	if h < 10 {
		h = 10
	}
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &FieldMap{bounds: bounds, w: w, h: h, cells: cells}
}

// cell maps a field point to grid coordinates.
func (m *FieldMap) cell(p geom.Point) (int, int, bool) {
	bw, bh := m.bounds.Width(), m.bounds.Height()
	if bw <= 0 || bh <= 0 {
		return 0, 0, false
	}
	x := int((p.X - m.bounds.Min.X) / bw * float64(m.w-1))
	// Screen y grows downward; field y grows upward.
	y := int((m.bounds.Max.Y - p.Y) / bh * float64(m.h-1))
	if x < 0 || x >= m.w || y < 0 || y >= m.h {
		return 0, 0, false
	}
	return x, y, true
}

// Mark places glyph at the point; later marks overwrite earlier ones, so
// draw in increasing order of importance.
func (m *FieldMap) Mark(p geom.Point, glyph rune) {
	if x, y, ok := m.cell(p); ok {
		m.cells[y][x] = glyph
	}
}

// MarkAll places the glyph at every point.
func (m *FieldMap) MarkAll(pts []geom.Point, glyph rune) {
	for _, p := range pts {
		m.Mark(p, glyph)
	}
}

// Path draws a polyline with the glyph, leaving existing non-space cells
// (markers) intact.
func (m *FieldMap) Path(pts []geom.Point, glyph rune) {
	for i := 1; i < len(pts); i++ {
		m.line(pts[i-1], pts[i], glyph)
	}
}

func (m *FieldMap) line(a, b geom.Point, glyph rune) {
	steps := 2 * (m.w + m.h)
	for s := 0; s <= steps; s++ {
		p := a.Lerp(b, float64(s)/float64(steps))
		if x, y, ok := m.cell(p); ok && m.cells[y][x] == ' ' {
			m.cells[y][x] = glyph
		}
	}
}

// Legend appends one legend line ("* key node").
func (m *FieldMap) Legend(glyph rune, meaning string) {
	m.legend = append(m.legend, fmt.Sprintf("  %c  %s", glyph, meaning))
}

// Render writes the framed map and legend to w.
func (m *FieldMap) Render(out io.Writer) error {
	var sb strings.Builder
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", m.w))
	sb.WriteString("+\n")
	for _, row := range m.cells {
		sb.WriteByte('|')
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", m.w))
	sb.WriteString("+\n")
	for _, l := range m.legend {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(out, sb.String())
	return err
}

// String renders the map to a string.
func (m *FieldMap) String() string {
	var sb strings.Builder
	_ = m.Render(&sb)
	return sb.String()
}
