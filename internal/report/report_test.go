package report

import (
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	// All data rows align: the value column starts at the same offset.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %q vs %q", lines[3], lines[4])
	}
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c", "d")
	tbl.AddRowf("s", 3.14159, 42, true)
	out := tbl.String()
	for _, want := range []string{"s", "3.142", "42", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("t", "a")
	tbl.AddRow("1", "extra", "more")
	tbl.AddRow()
	out := tbl.String()
	if !strings.Contains(out, "extra") {
		t.Error("overlong row truncated")
	}
}

func TestWriteCSV(t *testing.T) {
	s1 := &metrics.Series{Label: "alpha"}
	s1.Append(1, 10)
	s1.Append(2, 20)
	s2 := &metrics.Series{Label: "beta"}
	s2.Append(1, 100)
	s2.Append(2, 200)
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", s1, s2); err != nil {
		t.Fatal(err)
	}
	want := "x,alpha,beta\n1,10,100\n2,20,200\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVUnequalLengths(t *testing.T) {
	s1 := &metrics.Series{Label: "long"}
	s1.Append(1, 10)
	s1.Append(2, 20)
	s2 := &metrics.Series{Label: "short"}
	s2.Append(1, 100)
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", s1, s2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[2] != "2,20," {
		t.Errorf("short series row = %q", lines[2])
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	s := &metrics.Series{Label: `weird,"label"`}
	s.Append(1, 1)
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"weird,""label"""`) {
		t.Errorf("escaping failed: %q", sb.String())
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, "x"); err == nil {
		t.Error("no series accepted")
	}
}
