// Package report renders experiment output: aligned text tables for the
// console and CSV files for each reproduced figure's data series.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/reprolab/wrsn-csa/internal/metrics"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept, short rows
// are padded when rendered.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d, everything else with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case int:
			row[i] = strconv.Itoa(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	// Render to a strings.Builder never fails.
	_ = t.Render(&sb)
	return sb.String()
}

// WriteCSV writes one or more series sharing an x-axis as CSV: a header of
// xName plus one column per series label, then one row per x value. Series
// of unequal length leave blanks past their end; series with mismatched x
// values against the first series return an error.
func WriteCSV(w io.Writer, xName string, series ...*metrics.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	var sb strings.Builder
	sb.WriteString(csvEscape(xName))
	for _, s := range series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Label))
	}
	sb.WriteByte('\n')
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		var x float64
		switch {
		case i < series[0].Len():
			x = series[0].X[i]
		default:
			// Use any series that still has points for the x value.
			for _, s := range series {
				if i < s.Len() {
					x = s.X[i]
					break
				}
			}
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', 8, 64))
		for _, s := range series {
			sb.WriteByte(',')
			if i < s.Len() {
				if s.X[i] != x && s == series[0] {
					return fmt.Errorf("report: series %q x[%d]=%v disagrees with %v", s.Label, i, s.X[i], x)
				}
				sb.WriteString(strconv.FormatFloat(s.Y[i], 'g', 8, 64))
			}
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
