package testbed

import (
	"fmt"
	"sync"
	"time"

	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// NodeSetup describes one test-bed node.
type NodeSetup struct {
	// DrainW is the node's consumption; heavier drains emulate relay
	// duties.
	DrainW float64
	// InitialFrac is the starting battery fraction.
	InitialFrac float64
	// CapacityJ is the battery size; non-positive gets a small test-bed
	// battery (360 J) so dynamics complete within the accelerated run.
	CapacityJ float64
	// Key marks the node as a spoofing target in attack runs.
	Key bool
}

// RunConfig parameterizes a test-bed run.
type RunConfig struct {
	Nodes []NodeSetup
	// Attack enables spoofing of the key nodes; otherwise the charger is
	// legitimate everywhere.
	Attack bool
	// DurationRealMs is the wall-clock run length; non-positive gets 3000.
	DurationRealMs int
	// ScaleSimPerReal is virtual seconds per real second; non-positive
	// gets 2000 (a 3 s run covers ~100 virtual minutes).
	ScaleSimPerReal float64
	// RequestFrac triggers node requests; out-of-range gets the default.
	RequestFrac float64
	// Detectors judges the audit; nil gets detect.Suite().
	Detectors []detect.Detector
	// VerifyProb enables the harvest-verification countermeasure on every
	// node (extension); zero disables.
	VerifyProb float64
}

// Report is the outcome of a test-bed run.
type Report struct {
	// Audit is what the sink observed over TCP.
	Audit detect.Audit
	// Verdicts and Detected summarize the detector suite.
	Verdicts []detect.Verdict
	Detected bool
	// KeyTotal/KeyDead count the spoof-target set and its casualties.
	KeyTotal, KeyDead int
	// NodesDead counts all deaths.
	NodesDead int
	// Sessions counts audited charging sessions.
	Sessions int
	// Alarms counts harvest-verification alarms the sink received; any
	// alarm exposes the charger.
	Alarms int
	// AgentErrs carries any agent failures (nil on a clean run).
	AgentErrs []error
}

// Run executes a complete software-in-the-loop test-bed experiment:
// starts the sink, the node agents, and the charger agent; lets them
// interact over TCP for the configured duration; then tears everything
// down and judges the audit.
func Run(cfg RunConfig) (*Report, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("testbed: no nodes configured")
	}
	if cfg.DurationRealMs <= 0 {
		cfg.DurationRealMs = 3000
	}
	if cfg.ScaleSimPerReal <= 0 {
		cfg.ScaleSimPerReal = 2000
	}
	if cfg.RequestFrac <= 0 || cfg.RequestFrac >= 1 {
		cfg.RequestFrac = wrsn.DefaultRequestFraction
	}
	if cfg.Detectors == nil {
		cfg.Detectors = detect.Suite()
	}

	sink, err := NewSink()
	if err != nil {
		return nil, err
	}
	defer sink.Close()

	model := wpt.DefaultChargeModel()
	rect := wpt.DefaultRectifier()
	band := wpt.DefaultSpoofBand()

	agents := make([]*NodeAgent, len(cfg.Nodes))
	targets := make(map[int]bool)
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		agErrs []error
	)
	recordErr := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		agErrs = append(agErrs, err)
		errMu.Unlock()
	}
	for i, spec := range cfg.Nodes {
		capJ := spec.CapacityJ
		if capJ <= 0 {
			capJ = 360
		}
		frac := spec.InitialFrac
		if frac <= 0 || frac > 1 {
			frac = 0.6
		}
		bat, err := energy.NewBattery(capJ, capJ*frac, 0.5)
		if err != nil {
			return nil, err
		}
		// Cooldown outlasting the post-request residual life (RequestFrac
		// of a full lifetime) is what CSA's window placement guarantees in
		// the full campaign: a spoofed node never re-requests before it
		// dies. The test bed bakes the same relation into the protocol
		// constant instead of re-planning windows.
		cooldown := (cfg.RequestFrac + 0.05) * capJ / spec.DrainW
		agents[i] = &NodeAgent{
			ID:              i,
			DrainW:          spec.DrainW,
			RequestFrac:     cfg.RequestFrac,
			CooldownSimSec:  cooldown,
			Battery:         bat,
			Rect:            rect,
			TickRealMs:      20,
			ScaleSimPerReal: cfg.ScaleSimPerReal,
			VerifyProb:      cfg.VerifyProb,
		}
		if spec.Key && cfg.Attack {
			targets[i] = true
		}
	}
	for _, ag := range agents {
		ag := ag
		wg.Add(1)
		go func() {
			defer wg.Done()
			recordErr(ag.Run(sink.Addr()))
		}()
	}

	charger := &ChargerAgent{
		Targets:         targets,
		Model:           model,
		Rect:            rect,
		Band:            band,
		ServiceDist:     0.5,
		TravelRealMs:    30,
		ScaleSimPerReal: cfg.ScaleSimPerReal,
		PollRealMs:      20,
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		recordErr(charger.Run(sink.Addr(), stop))
	}()

	time.Sleep(time.Duration(cfg.DurationRealMs) * time.Millisecond)
	close(stop)
	sink.Close()
	wg.Wait()

	audit := sink.Audit()
	rep := &Report{
		Audit:     audit,
		Verdicts:  detect.Judge(audit, cfg.Detectors),
		Sessions:  len(audit.Sessions),
		NodesDead: len(audit.Deaths),
		Alarms:    len(sink.Alarms()),
		AgentErrs: agErrs,
	}
	rep.Detected = detect.AnyFlagged(rep.Verdicts) || rep.Alarms > 0
	deadSet := make(map[wrsn.NodeID]bool, len(audit.Deaths))
	for _, d := range audit.Deaths {
		deadSet[d.Node] = true
	}
	for i, spec := range cfg.Nodes {
		if !spec.Key {
			continue
		}
		rep.KeyTotal++
		if deadSet[wrsn.NodeID(i)] {
			rep.KeyDead++
		}
	}
	return rep, nil
}

// DefaultNodes returns the canonical 12-node corridor test bed: two heavy
// relays (the key nodes) and ten ordinary nodes whose genuine sessions
// supply the cover traffic that keeps the failure-ratio detectors quiet.
func DefaultNodes() []NodeSetup {
	nodes := make([]NodeSetup, 0, 12)
	for i := 0; i < 12; i++ {
		s := NodeSetup{DrainW: 0.05, InitialFrac: 0.55}
		if i == 3 || i == 8 {
			s.DrainW = 0.12
			s.Key = true
		}
		nodes = append(nodes, s)
	}
	return nodes
}
