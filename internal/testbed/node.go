package testbed

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// NodeAgent is one emulated sensor node: it owns a battery, drains it on a
// virtual clock, requests charging below threshold, and rectifies whatever
// RF power charge sessions present to it — exactly the node-side logic a
// mote firmware would run.
type NodeAgent struct {
	// ID is the node's identity on the wire.
	ID int
	// DrainW is the node's steady-state consumption.
	DrainW float64
	// RequestFrac triggers charging requests.
	RequestFrac float64
	// CooldownSimSec suppresses re-requests after a session.
	CooldownSimSec float64
	// Battery is the node's store.
	Battery *energy.Battery
	// Rect is the node's harvesting rectifier.
	Rect wpt.Rectifier
	// TickRealMs and ScaleSimPerReal define the virtual clock: every tick
	// advances TickRealMs·Scale/1000 simulated seconds.
	TickRealMs      int
	ScaleSimPerReal float64
	// VerifyProb is the per-session probability of a precise mid-session
	// harvest check (the countermeasure extension); zero disables.
	VerifyProb float64
	// verifySeq drives the node's deterministic verification draws.
	verifySeq uint64

	mu        sync.Mutex
	simNow    float64
	coolUntil float64
	pending   bool
	dead      bool
}

// Run connects to the sink and operates until the battery dies, the sink
// shuts the run down, or the connection drops. It is blocking; callers run
// it in a goroutine and wait on it.
func (n *NodeAgent) Run(addr string) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("testbed: node %d dial: %w", n.ID, err)
	}
	conn := NewConn(raw)
	defer func() { _ = conn.Close() }()
	if err := conn.Send(Message{Type: MsgHello, Node: n.ID}); err != nil {
		return err
	}

	// Reader goroutine: charge sessions arrive asynchronously.
	recvErr := make(chan error, 1)
	go func() {
		for {
			m, err := conn.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			switch m.Type {
			case MsgCharge:
				gain := n.applyCharge(m.RFW, m.DurSimSec)
				if n.shouldVerify() && n.Rect.DCOutput(m.RFW) < 1e-3 && m.DurSimSec > 0 {
					// Mid-session precision check: carrier present, no
					// harvest — report the anomaly before the telemetry.
					if err := conn.Send(Message{
						Type: MsgAlarm, Node: n.ID, RFW: m.RFW, SimSec: n.now(),
					}); err != nil {
						recvErr <- err
						return
					}
				}
				if err := conn.Send(Message{
					Type: MsgTelemetry, Node: n.ID, GainJ: gain, SimSec: n.now(),
				}); err != nil {
					recvErr <- err
					return
				}
			case MsgShutdown:
				recvErr <- nil
				return
			default:
				// Nodes ignore traffic not addressed to their role.
			}
		}
	}()

	ticker := time.NewTicker(time.Duration(n.TickRealMs) * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case err := <-recvErr:
			if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		case <-ticker.C:
			msg, done := n.tick()
			if msg != nil {
				if err := conn.Send(*msg); err != nil {
					return err
				}
			}
			if done {
				// Announced death; linger briefly so in-flight messages
				// flush, then disconnect.
				time.Sleep(time.Duration(n.TickRealMs) * time.Millisecond)
				return nil
			}
		}
	}
}

// tick advances the virtual clock one step and returns a message to emit,
// plus whether the node just died.
func (n *NodeAgent) tick() (*Message, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil, true
	}
	dt := float64(n.TickRealMs) / 1000 * n.ScaleSimPerReal
	n.simNow += dt
	n.Battery.Drain(n.DrainW * dt)
	if n.Battery.Depleted() {
		n.dead = true
		return &Message{Type: MsgDeath, Node: n.ID, SimSec: n.simNow}, true
	}
	threshold := n.RequestFrac * n.Battery.Capacity()
	if !n.pending && n.simNow >= n.coolUntil && n.Battery.Level() <= threshold {
		n.pending = true
		return &Message{
			Type:   MsgRequest,
			Node:   n.ID,
			LevelJ: n.Battery.MeterRead(),
			NeedJ:  n.Battery.Capacity() - n.Battery.MeterRead(),
			SimSec: n.simNow,
		}, false
	}
	return nil, false
}

// applyCharge rectifies the presented RF power over the session duration
// and returns the metered gain. The session also clears the pending flag
// and starts the cooldown — the node believes it has been served.
func (n *NodeAgent) applyCharge(rfW, durSim float64) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return 0
	}
	before := n.Battery.MeterRead()
	n.Battery.Charge(n.Rect.DCOutput(rfW) * durSim)
	n.pending = false
	n.coolUntil = n.simNow + n.CooldownSimSec
	return n.Battery.MeterRead() - before
}

// shouldVerify draws the node's deterministic verification decision: a
// SplitMix64 step over (ID, sequence) compared against VerifyProb.
func (n *NodeAgent) shouldVerify() bool {
	if n.VerifyProb <= 0 {
		return false
	}
	n.mu.Lock()
	n.verifySeq++
	x := uint64(n.ID+1)*0x9e3779b97f4a7c15 + n.verifySeq*0xbf58476d1ce4e5b9
	n.mu.Unlock()
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return float64(x>>11)/(1<<53) < n.VerifyProb
}

// now returns the node's virtual clock.
func (n *NodeAgent) now() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.simNow
}

// Alive reports whether the node still runs.
func (n *NodeAgent) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.dead
}

// Level returns the current true battery level.
func (n *NodeAgent) Level() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Battery.Level()
}

// TimeToDeath returns the projected seconds of virtual time left.
func (n *NodeAgent) TimeToDeath() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return 0
	}
	if n.DrainW <= 0 {
		return math.Inf(1)
	}
	return n.Battery.Level() / n.DrainW
}
