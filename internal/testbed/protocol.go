// Package testbed is the software-in-the-loop substitute for the paper's
// physical test bed: real sensor-node agents and a charger agent running
// as goroutines that talk to a sink broker over TCP with newline-delimited
// JSON, on an accelerated virtual clock. The wireless power "air
// interface" is carried in messages — the charger transmits an RF power,
// the node applies its own nonlinear rectifier — so the spoofing physics
// and the telemetry/detection path are exercised end to end over a real
// network stack.
package testbed

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// MsgType discriminates protocol messages.
type MsgType string

// Protocol message types.
const (
	// MsgHello introduces a connection: a node (ID ≥ 0) or the charger
	// (ID = ChargerID).
	MsgHello MsgType = "hello"
	// MsgRequest is a node's charging request to the sink.
	MsgRequest MsgType = "request"
	// MsgNext is the charger asking the sink for work.
	MsgNext MsgType = "next"
	// MsgAssign is the sink handing the charger a request.
	MsgAssign MsgType = "assign"
	// MsgIdle is the sink telling the charger nothing is pending.
	MsgIdle MsgType = "idle"
	// MsgCharge is the charger's session directed at a node: the RF power
	// its array produces at the node's rectenna, for a duration.
	MsgCharge MsgType = "charge"
	// MsgTelemetry is the node's post-session report: metered energy gain.
	MsgTelemetry MsgType = "telemetry"
	// MsgDeath is a node announcing battery exhaustion.
	MsgDeath MsgType = "death"
	// MsgAlarm is a node reporting a failed harvest verification: the
	// session presented a carrier but the precise DC check measured
	// nothing — the spoof's physical signature.
	MsgAlarm MsgType = "alarm"
	// MsgShutdown ends the run.
	MsgShutdown MsgType = "shutdown"
)

// ChargerID is the hello ID the charger uses.
const ChargerID = -1

// Message is the wire format. Fields are used per type; unused fields are
// omitted from the encoding.
type Message struct {
	Type MsgType `json:"type"`
	// Node is the subject node (requests, charges, telemetry, deaths).
	Node int `json:"node"`
	// LevelJ is the node's reported battery level.
	LevelJ float64 `json:"level_j,omitempty"`
	// NeedJ is the requested energy.
	NeedJ float64 `json:"need_j,omitempty"`
	// RFW is the RF power at the node's rectenna during a charge.
	RFW float64 `json:"rf_w,omitempty"`
	// DurSimSec is the session duration in simulated seconds.
	DurSimSec float64 `json:"dur_sim_sec,omitempty"`
	// GainJ is the metered battery gain a telemetry message reports.
	GainJ float64 `json:"gain_j,omitempty"`
	// SimSec timestamps the message in virtual time.
	SimSec float64 `json:"sim_sec,omitempty"`
}

// Conn wraps a TCP connection with line-oriented JSON framing. Send is
// safe for concurrent use; Recv must be called from a single goroutine.
type Conn struct {
	raw net.Conn
	r   *bufio.Reader

	sendMu sync.Mutex
	enc    *json.Encoder
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn {
	return &Conn{raw: c, r: bufio.NewReader(c), enc: json.NewEncoder(c)}
}

// Send writes one message; concurrent senders are serialized.
func (c *Conn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("testbed: send %s: %w", m.Type, err)
	}
	return nil
}

// Recv reads one message.
func (c *Conn) Recv() (Message, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Message{}, fmt.Errorf("testbed: recv: %w", err)
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("testbed: decode %q: %w", line, err)
	}
	return m, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }
