package testbed

import (
	"fmt"
	"net"
	"time"

	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// ChargerAgent is the mobile charger of the test bed. In legitimate mode
// it serves every assignment with a focused (constructive) session; in
// attack mode it spoofs the nodes in its target set — presenting a
// residual RF power inside the spoofing band so the victim's carrier
// detector stays satisfied while its rectifier harvests nothing — and
// serves everyone else genuinely.
type ChargerAgent struct {
	// Targets is the spoof set (empty for a legitimate charger).
	Targets map[int]bool
	// Model/Rect/Band are the shared physics.
	Model wpt.ChargeModel
	Rect  wpt.Rectifier
	Band  wpt.SpoofBand
	// ServiceDist is the docking distance.
	ServiceDist float64
	// TravelRealMs is the real-time cost of driving to a node between
	// sessions.
	TravelRealMs int
	// ScaleSimPerReal converts session durations to real sleeps.
	ScaleSimPerReal float64
	// PollRealMs is the idle poll interval.
	PollRealMs int
}

// focusedRF returns the RF power a two-element focused array presents at
// the docked node.
func (c *ChargerAgent) focusedRF() float64 {
	// Two coherent equal elements in phase: 4× single-element power.
	return 4 * c.Model.Power(c.ServiceDist)
}

// Run serves assignments until the sink disconnects or stop is closed.
func (c *ChargerAgent) Run(addr string, stop <-chan struct{}) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("testbed: charger dial: %w", err)
	}
	conn := NewConn(raw)
	defer func() { _ = conn.Close() }()
	if err := conn.Send(Message{Type: MsgHello, Node: ChargerID}); err != nil {
		return err
	}
	var simNow float64
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		if err := conn.Send(Message{Type: MsgNext}); err != nil {
			return nil // sink gone: run over
		}
		m, err := conn.Recv()
		if err != nil {
			return nil
		}
		switch m.Type {
		case MsgIdle:
			simNow += float64(c.PollRealMs) / 1000 * c.ScaleSimPerReal
			select {
			case <-stop:
				return nil
			case <-time.After(time.Duration(c.PollRealMs) * time.Millisecond):
			}
		case MsgAssign:
			simNow += float64(c.TravelRealMs) / 1000 * c.ScaleSimPerReal
			time.Sleep(time.Duration(c.TravelRealMs) * time.Millisecond)

			rf := c.focusedRF()
			if c.Targets[m.Node] {
				rf = c.Band.Target()
			}
			// A convincing session always lasts as long as a genuine full
			// charge would.
			dur := m.NeedJ / c.Rect.DCOutput(c.focusedRF())
			if err := conn.Send(Message{
				Type: MsgCharge, Node: m.Node, RFW: rf, DurSimSec: dur,
				NeedJ: m.NeedJ, SimSec: simNow,
			}); err != nil {
				return nil
			}
			simNow += dur
			time.Sleep(time.Duration(dur/c.ScaleSimPerReal*1000) * time.Millisecond)
		case MsgShutdown:
			return nil
		default:
			// Ignore relayed traffic that is not ours.
		}
	}
}
