package testbed

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Sink is the base-station broker: it accepts node and charger
// connections, queues charging requests, relays charge sessions to nodes,
// pairs the resulting telemetry with the charger's claims, and accumulates
// the audit that the detector suite judges at the end of the run.
type Sink struct {
	ln net.Listener

	mu        sync.Mutex
	queue     []Message // pending requests, FIFO
	nodeConns map[int]*Conn
	pending   map[int]Message // charge claims awaiting telemetry
	audit     detect.Audit
	alarms    []Message // harvest-verification alarms
	closed    bool

	wg sync.WaitGroup
}

// NewSink starts a sink listening on 127.0.0.1 (ephemeral port).
func NewSink() (*Sink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("testbed: sink listen: %w", err)
	}
	s := &Sink{
		ln:        ln,
		nodeConns: make(map[int]*Conn),
		pending:   make(map[int]Message),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the sink's listen address for agents to dial.
func (s *Sink) Addr() string { return s.ln.Addr().String() }

func (s *Sink) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := NewConn(raw)
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one connection after its hello.
func (s *Sink) serve(conn *Conn) {
	defer s.wg.Done()
	hello, err := conn.Recv()
	if err != nil || hello.Type != MsgHello {
		_ = conn.Close()
		return
	}
	if hello.Node == ChargerID {
		s.serveCharger(conn)
		return
	}
	s.mu.Lock()
	s.nodeConns[hello.Node] = conn
	s.mu.Unlock()
	s.serveNode(hello.Node, conn)
}

func (s *Sink) serveNode(id int, conn *Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.nodeConns, id)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		m, err := conn.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Node agents disconnect on death; anything else is
				// connection teardown during shutdown.
				return
			}
			return
		}
		switch m.Type {
		case MsgRequest:
			s.mu.Lock()
			s.queue = append(s.queue, m)
			s.mu.Unlock()
		case MsgTelemetry:
			s.recordTelemetry(m)
		case MsgAlarm:
			s.mu.Lock()
			s.alarms = append(s.alarms, m)
			s.mu.Unlock()
		case MsgDeath:
			s.mu.Lock()
			// The test bed has no multi-hop routing; every node reports
			// straight to the sink.
			s.audit.Deaths = append(s.audit.Deaths, detect.DeathObs{
				Node: wrsn.NodeID(m.Node), Time: m.SimSec, Reachable: true,
			})
			// Purge any pending request from the dead node.
			for i, q := range s.queue {
				if q.Node == m.Node {
					s.audit.Unserved = append(s.audit.Unserved, detect.RequestObs{
						Node: wrsn.NodeID(m.Node), IssuedAt: q.SimSec, NeedJ: q.NeedJ,
					})
					s.queue = append(s.queue[:i], s.queue[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		default:
			// Ignore other traffic from nodes.
		}
	}
}

// recordTelemetry pairs a node's session report with the charger's claim.
func (s *Sink) recordTelemetry(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	claim, ok := s.pending[m.Node]
	if !ok {
		return // unsolicited telemetry; nothing to audit against
	}
	delete(s.pending, m.Node)
	s.audit.Sessions = append(s.audit.Sessions, detect.SessionObs{
		Node:       wrsn.NodeID(m.Node),
		Start:      claim.SimSec,
		End:        m.SimSec,
		RequestedJ: claim.NeedJ,
		MeterGainJ: m.GainJ,
		// Test-bed sessions always follow a sink assignment, which in turn
		// follows a node request.
		Solicited: true,
	})
}

func (s *Sink) serveCharger(conn *Conn) {
	defer func() { _ = conn.Close() }()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case MsgNext:
			s.mu.Lock()
			var reply Message
			if len(s.queue) > 0 {
				reply = s.queue[0]
				reply.Type = MsgAssign
				s.queue = s.queue[1:]
			} else {
				reply = Message{Type: MsgIdle}
			}
			s.mu.Unlock()
			if err := conn.Send(reply); err != nil {
				return
			}
		case MsgCharge:
			s.mu.Lock()
			s.pending[m.Node] = m
			node := s.nodeConns[m.Node]
			s.mu.Unlock()
			if node != nil {
				// Relay the session to the node; its telemetry comes back
				// on the node's own connection.
				_ = node.Send(m)
			}
		default:
			// Ignore other charger traffic.
		}
	}
}

// Close shuts the sink down: notifies agents, closes connections, and
// waits for handler goroutines.
func (s *Sink) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.nodeConns))
	for _, c := range s.nodeConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(Message{Type: MsgShutdown})
		_ = c.Close()
	}
	_ = s.ln.Close()
	s.wg.Wait()
}

// Audit returns a snapshot of the evidence collected so far, with any
// still-queued requests counted as unserved.
func (s *Sink) Audit() detect.Audit {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := detect.Audit{
		Sessions: append([]detect.SessionObs(nil), s.audit.Sessions...),
		Deaths:   append([]detect.DeathObs(nil), s.audit.Deaths...),
		Unserved: append([]detect.RequestObs(nil), s.audit.Unserved...),
	}
	for _, q := range s.queue {
		a.Unserved = append(a.Unserved, detect.RequestObs{
			Node: wrsn.NodeID(q.Node), IssuedAt: q.SimSec, NeedJ: q.NeedJ,
		})
	}
	return a
}

// Alarms returns the harvest-verification alarms received so far.
func (s *Sink) Alarms() []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Message(nil), s.alarms...)
}
