package testbed

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/energy"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

func TestConnRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	c1, c2 := NewConn(client), NewConn(server)
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()

	want := Message{Type: MsgRequest, Node: 3, LevelJ: 12.5, NeedJ: 87.5, SimSec: 42}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c1.Send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got != want {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
}

func TestConnConcurrentSend(t *testing.T) {
	client, server := net.Pipe()
	c1, c2 := NewConn(client), NewConn(server)
	defer func() { _ = c1.Close() }()
	defer func() { _ = c2.Close() }()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c1.Send(Message{Type: MsgTelemetry, Node: i})
		}()
	}
	// Every message must arrive intact (framing not interleaved).
	for i := 0; i < n; i++ {
		m, err := c2.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != MsgTelemetry {
			t.Fatalf("corrupted frame: %+v", m)
		}
	}
	wg.Wait()
}

func TestNodeAgentApplyCharge(t *testing.T) {
	bat, err := energy.NewBattery(360, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	agent := &NodeAgent{
		ID: 1, DrainW: 0.05, RequestFrac: 0.3, CooldownSimSec: 100,
		Battery: bat, Rect: wpt.DefaultRectifier(),
		TickRealMs: 10, ScaleSimPerReal: 1000,
	}
	// A genuine charge (focused RF) lands energy.
	gain := agent.applyCharge(4*wpt.DefaultChargeModel().Power(0.5), 10)
	if gain <= 0 {
		t.Errorf("focused charge gained %v", gain)
	}
	// A spoof (in-band residual) lands exactly nothing.
	spoofGain := agent.applyCharge(wpt.DefaultSpoofBand().Target(), 1000)
	if spoofGain != 0 {
		t.Errorf("spoofed charge gained %v", spoofGain)
	}
	if !agent.Alive() {
		t.Error("agent died during charges")
	}
}

func TestNodeAgentTickRequestsAndDies(t *testing.T) {
	bat, err := energy.NewBattery(360, 360*0.31, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	agent := &NodeAgent{
		ID: 2, DrainW: 1, RequestFrac: 0.3,
		Battery: bat, Rect: wpt.DefaultRectifier(),
		TickRealMs: 10, ScaleSimPerReal: 100, // 1 sim-second per tick
	}
	// Within a few ticks the battery crosses the threshold and a request
	// fires exactly once.
	requests := 0
	var died bool
	for i := 0; i < 400 && !died; i++ {
		msg, done := agent.tick()
		if msg != nil {
			switch msg.Type {
			case MsgRequest:
				requests++
			case MsgDeath:
				died = true
			}
		}
		if done && !died {
			t.Fatal("done without death message")
		}
	}
	if requests != 1 {
		t.Errorf("requests = %d, want exactly 1 (no pending re-request)", requests)
	}
	if !died {
		t.Error("agent never died")
	}
	if agent.TimeToDeath() != 0 {
		t.Errorf("dead agent TimeToDeath = %v", agent.TimeToDeath())
	}
}

func TestSinkAuditAssembly(t *testing.T) {
	sink, err := NewSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// A fake node and a fake charger drive the broker directly.
	nodeRaw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	node := NewConn(nodeRaw)
	if err := node.Send(Message{Type: MsgHello, Node: 5}); err != nil {
		t.Fatal(err)
	}
	chargerRaw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	charger := NewConn(chargerRaw)
	if err := charger.Send(Message{Type: MsgHello, Node: ChargerID}); err != nil {
		t.Fatal(err)
	}

	// Node requests; charger polls and gets the assignment.
	if err := node.Send(Message{Type: MsgRequest, Node: 5, NeedJ: 100, SimSec: 10}); err != nil {
		t.Fatal(err)
	}
	var assign Message
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := charger.Send(Message{Type: MsgNext}); err != nil {
			t.Fatal(err)
		}
		assign, err = charger.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if assign.Type == MsgAssign {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("assignment never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if assign.Node != 5 || assign.NeedJ != 100 {
		t.Fatalf("assignment = %+v", assign)
	}

	// Charger charges through the sink; node's telemetry closes the loop.
	if err := charger.Send(Message{Type: MsgCharge, Node: 5, RFW: 1, DurSimSec: 60, NeedJ: 100, SimSec: 20}); err != nil {
		t.Fatal(err)
	}
	chargeMsg, err := node.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if chargeMsg.Type != MsgCharge || chargeMsg.RFW != 1 {
		t.Fatalf("relayed charge = %+v", chargeMsg)
	}
	if err := node.Send(Message{Type: MsgTelemetry, Node: 5, GainJ: 37, SimSec: 80}); err != nil {
		t.Fatal(err)
	}
	// Telemetry is recorded asynchronously; poll the audit.
	deadline = time.Now().Add(2 * time.Second)
	for {
		audit := sink.Audit()
		if len(audit.Sessions) == 1 {
			s := audit.Sessions[0]
			if s.Node != 5 || s.RequestedJ != 100 || s.MeterGainJ != 37 || !s.Solicited {
				t.Fatalf("audited session = %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never audited")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A death with a queued request lands in Deaths and Unserved.
	if err := node.Send(Message{Type: MsgRequest, Node: 5, NeedJ: 50, SimSec: 90}); err != nil {
		t.Fatal(err)
	}
	if err := node.Send(Message{Type: MsgDeath, Node: 5, SimSec: 95}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		audit := sink.Audit()
		if len(audit.Deaths) == 1 && len(audit.Unserved) == 1 {
			if !audit.Deaths[0].Reachable {
				t.Error("testbed death not marked reachable")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("death/unserved never audited: %+v", audit)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = node.Close()
	_ = charger.Close()
}

// End-to-end over real TCP: the attack kills the key relays undetected;
// legitimate operation keeps everyone alive.
func TestRunAttackVsLegit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	attack, err := Run(RunConfig{Nodes: DefaultNodes(), Attack: true, DurationRealMs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(attack.AgentErrs) > 0 {
		t.Fatalf("agent errors: %v", attack.AgentErrs)
	}
	if attack.KeyDead != attack.KeyTotal {
		t.Errorf("attack exhausted %d/%d key relays", attack.KeyDead, attack.KeyTotal)
	}
	if attack.Detected {
		t.Errorf("attack detected: %+v", attack.Verdicts)
	}

	legit, err := Run(RunConfig{Nodes: DefaultNodes(), Attack: false, DurationRealMs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(legit.AgentErrs) > 0 {
		t.Fatalf("agent errors: %v", legit.AgentErrs)
	}
	if legit.NodesDead != 0 {
		t.Errorf("legit run lost %d nodes", legit.NodesDead)
	}
	if legit.Detected {
		t.Error("legit run flagged")
	}
	if legit.Sessions == 0 {
		t.Error("legit run performed no sessions")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty node list accepted")
	}
}

// The harvest-verification extension over the wire: with verification on,
// a spoofing charger raises alarms; an honest one does not.
func TestVerificationOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	attack, err := Run(RunConfig{
		Nodes: DefaultNodes(), Attack: true, DurationRealMs: 3000, VerifyProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if attack.Alarms == 0 {
		t.Error("no alarms despite 100% verification of spoofed sessions")
	}
	if !attack.Detected {
		t.Error("alarmed attack not marked detected")
	}
	legit, err := Run(RunConfig{
		Nodes: DefaultNodes(), Attack: false, DurationRealMs: 3000, VerifyProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if legit.Alarms != 0 {
		t.Errorf("honest charger raised %d alarms", legit.Alarms)
	}
}

// A node connection dying mid-run (crash, radio loss) must not wedge the
// sink or the other agents.
func TestSinkSurvivesConnDrop(t *testing.T) {
	sink, err := NewSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	// One node connects, requests, and abruptly drops.
	raw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	dropper := NewConn(raw)
	if err := dropper.Send(Message{Type: MsgHello, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := dropper.Send(Message{Type: MsgRequest, Node: 1, NeedJ: 10, SimSec: 1}); err != nil {
		t.Fatal(err)
	}
	_ = dropper.Close()

	// A second node keeps working through the sink afterwards.
	raw2, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	survivor := NewConn(raw2)
	defer func() { _ = survivor.Close() }()
	if err := survivor.Send(Message{Type: MsgHello, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Send(Message{Type: MsgRequest, Node: 2, NeedJ: 20, SimSec: 2}); err != nil {
		t.Fatal(err)
	}
	chRaw, err := net.Dial("tcp", sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	charger := NewConn(chRaw)
	defer func() { _ = charger.Close() }()
	if err := charger.Send(Message{Type: MsgHello, Node: ChargerID}); err != nil {
		t.Fatal(err)
	}
	// Both requests must still be assignable (the dropper's request stays
	// queued; charging it will just go nowhere, which is the operator's
	// problem, not a deadlock).
	got := map[int]bool{}
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		if err := charger.Send(Message{Type: MsgNext}); err != nil {
			t.Fatal(err)
		}
		m, err := charger.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == MsgAssign {
			got[m.Node] = true
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !got[1] || !got[2] {
		t.Fatalf("assignments after drop: %v", got)
	}
}
