// Package snapshot captures the deterministic warm-up prefix of a
// Monte-Carlo run — scenario placement, connectivity repair, and routing
// convergence — as a versioned, serializable world state that can be
// forked once per seed instead of rebuilt once per seed.
//
// A Snapshot is taken at the post-build barrier: the network exists and
// routing has converged, but no campaign has started, so the simulation
// clock is zero and no events are queued. The wire format reserves fields
// for mid-run state (clock, pending events) so future versions can
// checkpoint live campaigns; version 1 refuses to fork such snapshots
// because event handlers are closures and cannot be serialized.
//
// Forking is copy-on-write: each fork deep-copies the mutable world
// (nodes, batteries, routing arrays, charger) and shares the immutable
// parts (the position grid). Fork is safe to call from many goroutines.
// Campaign randomness derives from the campaign seed, not from snapshot
// state, so N forks of one snapshot reproduce N fresh builds exactly —
// the golden-digest harness pins this byte-for-byte.
package snapshot

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/policy"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Version is the barrier-snapshot wire version: clock zero, no pending
// events, no campaign state. Barrier snapshots keep writing version 1 so
// every existing consumer decodes them unchanged.
const Version = 1

// VersionLive is the live-checkpoint wire version: the same layout as
// version 1 plus a non-zero clock, the pending (keyed) event queue, and
// the campaign extras. Live decode is strict — unknown fields are a
// versioned error, not a silent misparse — because resuming a campaign
// from a half-understood checkpoint would corrupt results quietly.
const VersionLive = 2

// ErrLiveState is returned by Fork for version-1 snapshots carrying
// mid-run simulation state (non-zero clock or pending events), which
// version 1 captures for inspection but cannot resume. Version-2 live
// snapshots fork normally.
var ErrLiveState = errors.New("snapshot: version 1 forks only barrier snapshots (zero clock, empty event queue)")

// wire is the serialized form. Field order fixes the canonical encoding;
// encoding/json emits struct fields in declaration order. Campaign is
// appended after every version-1 field so barrier snapshots encode to
// exactly the bytes version 1 wrote.
type wire struct {
	Version  int                `json:"version"`
	Scenario trace.Scenario     `json:"scenario"`
	ClockSec float64            `json:"clock_sec"`
	Pending  []sim.PendingEvent `json:"pending_events,omitempty"`
	Network  wrsn.State         `json:"network"`
	Charger  *mc.State          `json:"charger,omitempty"`
	RNG      *[4]uint64         `json:"rng,omitempty"`
	Campaign *CampaignState     `json:"campaign,omitempty"`
}

// CampaignState is the live-campaign payload of a version-2 snapshot:
// everything above the network/charger substrate that a mid-run capture
// must carry to resume byte-identically.
type CampaignState struct {
	// World is the environment layer: clock, request queue, cadence
	// cursors, fault-window state, loss-stream position.
	World world.State `json:"world"`
	// Ledger is the accumulated run record.
	Ledger ledger.State `json:"ledger"`
	// Rand is the single campaign stream's generator position (the
	// session actor and policy Env share one stream).
	Rand [4]uint64 `json:"rand"`
	// Keys lists the plan-time key nodes the campaign marked for
	// lifetime sampling.
	Keys []wrsn.KeyNode `json:"keys,omitempty"`
	// Policy is the single-charger drive state; nil on fleet runs.
	Policy *policy.State `json:"policy,omitempty"`
	// Fleet is the multi-charger state; nil on single-charger runs.
	Fleet *FleetState `json:"fleet,omitempty"`
}

// FleetState is the fleet service's mid-run state: each charger's
// position in its dispatch/arrive/session-end machine plus the shared
// reservation set and busy-time accumulator.
type FleetState struct {
	Chargers []FleetCharger `json:"chargers"`
	Reserved []wrsn.NodeID  `json:"reserved,omitempty"`
	Busy     float64        `json:"busy,omitempty"`
}

// Fleet-charger phases (the position within dispatch→arrive→end that the
// charger's next pending keyed event will execute).
const (
	// FleetIdle: no assignment in flight; the charger's next event is a
	// dispatch (or it parked forever and has none).
	FleetIdle = 0
	// FleetEnRoute: traveling; the next event is the arrival.
	FleetEnRoute = 1
	// FleetServing: radiating; the next event is the session end.
	FleetServing = 2
)

// FleetCharger is one fleet member's state.
type FleetCharger struct {
	Charger mc.State `json:"charger"`
	Phase   int      `json:"phase"`
	// Req is the reserved assignment (EnRoute/Serving phases).
	Req *world.RequestState `json:"req,omitempty"`
	// Session parameters captured across the arrive→end window.
	Rate        float64 `json:"rate,omitempty"`
	Dur         float64 `json:"dur,omitempty"`
	Start       float64 `json:"start,omitempty"`
	MeterBefore float64 `json:"meter_before,omitempty"`
	TravelT     float64 `json:"travel_t,omitempty"`
	Solicited   bool    `json:"solicited,omitempty"`
}

// Snapshot is a captured world state: scenario provenance, the network
// and charger at the barrier, and the post-placement rng position. It is
// immutable after capture; Fork hands out independent copies.
type Snapshot struct {
	w wire

	// The fork template materializes lazily (decoded snapshots rebuild the
	// network once via FromState, captured ones clone the live world at
	// capture time) and is only ever read afterwards; mu guards both the
	// lazy build and the concurrent pure-read forks.
	mu     sync.Mutex
	tmplNW *wrsn.Network
	tmplCH *mc.Charger
}

// CaptureOption configures Capture. Options follow the repo-wide
// convention: With* constructors returning closures over an unexported
// config.
type CaptureOption func(*captureCfg)

type captureCfg struct {
	eng *sim.Engine
}

// WithEngine records the engine's clock and queued events into the
// snapshot. Version 1 cannot resume such state — Fork returns ErrLiveState
// when either is non-zero — but the capture is still useful for
// checkpoint inspection and forward-compatible persistence.
func WithEngine(e *sim.Engine) CaptureOption {
	return func(c *captureCfg) { c.eng = e }
}

// Capture snapshots a built world at the barrier. The scenario records
// provenance (and nothing more — restore never re-runs placement); nw is
// required; ch and rest may be nil when the caller has no charger or
// discarded the post-placement stream. Capture performs only pure reads
// of its arguments, and the snapshot does not alias them: mutating the
// world afterwards does not affect the snapshot or its forks.
func Capture(sc trace.Scenario, nw *wrsn.Network, ch *mc.Charger, rest *rng.Stream, opts ...CaptureOption) (*Snapshot, error) {
	if nw == nil {
		return nil, fmt.Errorf("snapshot: nil network")
	}
	var cfg captureCfg
	for _, o := range opts {
		o(&cfg)
	}
	s := &Snapshot{w: wire{
		Version:  Version,
		Scenario: sc,
		Network:  nw.State(),
	}}
	if cfg.eng != nil {
		s.w.ClockSec = cfg.eng.Now()
		s.w.Pending = cfg.eng.PendingEvents()
	}
	if ch != nil {
		st := ch.State()
		s.w.Charger = &st
	}
	if rest != nil {
		st := rest.State()
		s.w.RNG = &st
	}
	// Seed the fork template from the live world now — cheaper than the
	// FromState+Recompute rebuild a decoded snapshot pays on first Fork.
	s.tmplNW = nw.Fork()
	if ch != nil {
		s.tmplCH = ch.Fork()
	}
	return s, nil
}

// CaptureLive snapshots a mid-run campaign as a version-2 snapshot. The
// engine must be serializable (every pending event keyed); ch may be nil
// — fleet runs carry their chargers inside cs.Fleet. Capture is pure
// reads, so checkpointing never perturbs the run it observes. No fork
// template is primed: a live snapshot is typically forked once, by the
// resuming campaign.
func CaptureLive(sc trace.Scenario, nw *wrsn.Network, ch *mc.Charger, eng *sim.Engine, cs *CampaignState) (*Snapshot, error) {
	if nw == nil {
		return nil, fmt.Errorf("snapshot: nil network")
	}
	if eng == nil || cs == nil {
		return nil, fmt.Errorf("snapshot: live capture needs an engine and campaign state")
	}
	if !eng.Serializable() {
		return nil, fmt.Errorf("snapshot: engine has closure-scheduled pending events; only keyed events checkpoint")
	}
	s := &Snapshot{w: wire{
		Version:  VersionLive,
		Scenario: sc,
		ClockSec: eng.Now(),
		Pending:  eng.PendingEvents(),
		Network:  nw.State(),
		Campaign: cs,
	}}
	if ch != nil {
		st := ch.State()
		s.w.Charger = &st
	}
	return s, nil
}

// Build runs the scenario's warm-up prefix once — placement, connectivity
// repair, routing convergence — parks a fresh charger at the sink (the
// standard evaluation position), and captures the barrier snapshot. It is
// the one-call form sweep drivers use before forking per seed.
func Build(sc trace.Scenario, params mc.Params) (*Snapshot, error) {
	nw, rest, err := sc.Build()
	if err != nil {
		return nil, err
	}
	return Capture(sc, nw, mc.New(nw.Sink(), params), rest)
}

// Fork returns an independent world: a deep copy of the snapshot's
// network and charger (nil if none was captured) plus a post-placement
// rng stream resumed at the captured position (nil if none was captured).
// Forks share no mutable state with each other or with the snapshot, so
// each can be simulated on its own goroutine.
func (s *Snapshot) Fork() (*wrsn.Network, *mc.Charger, *rng.Stream, error) {
	if s.w.Version == Version && (s.w.ClockSec != 0 || len(s.w.Pending) > 0) {
		return nil, nil, nil, ErrLiveState
	}
	s.mu.Lock()
	if s.tmplNW == nil {
		nw, err := wrsn.FromState(s.w.Network)
		if err != nil {
			s.mu.Unlock()
			return nil, nil, nil, fmt.Errorf("snapshot: restoring network: %w", err)
		}
		s.tmplNW = nw
		if s.w.Charger != nil {
			ch, err := mc.FromState(*s.w.Charger)
			if err != nil {
				s.mu.Unlock()
				return nil, nil, nil, fmt.Errorf("snapshot: restoring charger: %w", err)
			}
			s.tmplCH = ch
		}
	}
	nw := s.tmplNW.Fork()
	var ch *mc.Charger
	if s.tmplCH != nil {
		ch = s.tmplCH.Fork()
	}
	s.mu.Unlock()
	var rest *rng.Stream
	if s.w.RNG != nil {
		rest = rng.FromState(*s.w.RNG)
	}
	return nw, ch, rest, nil
}

// Scenario returns the captured scenario, the snapshot's provenance.
func (s *Snapshot) Scenario() trace.Scenario { return s.w.Scenario }

// NodeCount returns the number of nodes in the captured network.
func (s *Snapshot) NodeCount() int { return len(s.w.Network.Nodes) }

// HasCharger reports whether a charger was captured.
func (s *Snapshot) HasCharger() bool { return s.w.Charger != nil }

// Live reports whether this is a version-2 live checkpoint.
func (s *Snapshot) Live() bool { return s.w.Version == VersionLive }

// ClockSec returns the captured simulation clock.
func (s *Snapshot) ClockSec() float64 { return s.w.ClockSec }

// PendingEvents returns a copy of the captured pending event queue in
// execution order. The copy keeps the snapshot immutable: callers (and
// Fork-derived resumes) can never mutate the captured queue.
func (s *Snapshot) PendingEvents() []sim.PendingEvent {
	return append([]sim.PendingEvent(nil), s.w.Pending...)
}

// Campaign returns the live-campaign payload (nil on barrier snapshots).
// The inner slices are shared — treat the result as read-only; resume
// paths copy what they mutate.
func (s *Snapshot) Campaign() *CampaignState { return s.w.Campaign }

// Encode returns the canonical wire encoding: versioned JSON with fixed
// field order. Encoding the same snapshot always yields identical bytes,
// and float64 values survive the round-trip exactly (encoding/json emits
// the shortest representation that parses back to the same value).
func (s *Snapshot) Encode() ([]byte, error) {
	return json.Marshal(&s.w)
}

// Decode reconstructs a snapshot from Encode's output. It rejects
// unknown wire versions. Version 1 decodes leniently, exactly as it
// always has; version 2 decodes strictly — an unknown field means the
// file came from a future format revision, and resuming a live campaign
// from a half-understood checkpoint would corrupt results silently, so
// it fails with a versioned error instead. The fork template is rebuilt
// lazily on first Fork.
func Decode(data []byte) (*Snapshot, error) {
	var ver struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &ver); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	var w wire
	switch ver.Version {
	case Version:
		if err := json.Unmarshal(data, &w); err != nil {
			return nil, fmt.Errorf("snapshot: decode: %w", err)
		}
	case VersionLive:
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("snapshot: decode version %d: %w (a version-%d checkpoint must contain no fields this build does not understand)", VersionLive, err, VersionLive)
		}
		if w.Campaign == nil {
			return nil, fmt.Errorf("snapshot: decode version %d: missing campaign state", VersionLive)
		}
	default:
		return nil, fmt.Errorf("snapshot: unsupported wire version %d (this build reads versions %d and %d)", ver.Version, Version, VersionLive)
	}
	if len(w.Network.Nodes) == 0 {
		return nil, fmt.Errorf("snapshot: decode: no nodes")
	}
	return &Snapshot{w: w}, nil
}

// Digest returns the hex SHA-256 over the snapshot's canonical form. Two
// snapshots with the same digest fork into identical worlds.
func (s *Snapshot) Digest() (string, error) {
	return digest.Sum(&s.w)
}
