package snapshot

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func buildSnap(t *testing.T, seed uint64, n int) *Snapshot {
	t.Helper()
	s, err := Build(trace.DefaultScenario(seed, n), mc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Encode→Decode→Encode must be byte-identical, and the digest must ride
// along: the wire form IS the canonical form.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := buildSnap(t, 42, 60)
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-encoded snapshot differs from original bytes")
	}
	d2, err := s2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("digest drifted across round trip: %s != %s", d1, d2)
	}
	if s2.NodeCount() != s.NodeCount() || s2.HasCharger() != s.HasCharger() || s2.Scenario() != s.Scenario() {
		t.Error("decoded snapshot lost header fields")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	s := buildSnap(t, 7, 40)
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}

	future := strings.Replace(string(b), `"version":1`, `"version":2`, 1)
	if _, err := Decode([]byte(future)); err == nil {
		t.Error("decoded a future wire version")
	}
	if _, err := Decode([]byte(`{"version":1,"network":{"nodes":[]}}`)); err == nil {
		t.Error("decoded a snapshot with no nodes")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("decoded garbage")
	}
}

// A fork is fully detached: running a campaign to exhaustion on one fork
// must leave later forks producing the same outcome as the first.
func TestForkIsolation(t *testing.T) {
	s := buildSnap(t, 42, 60)
	run := func() string {
		nw, ch, _, err := s.Fork()
		if err != nil {
			t.Fatal(err)
		}
		o, err := campaign.RunAttack(context.Background(), nw, ch, campaign.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		d, err := digest.Sum(o)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	first := run()
	if again := run(); again != first {
		t.Errorf("second fork diverged after the first was consumed: %s != %s", again, first)
	}
}

// Forking must be safe from many goroutines over one shared template —
// the whole point of the snapshot is concurrent seed sweeps. Run under
// -race.
func TestConcurrentFork(t *testing.T) {
	s := buildSnap(t, 3, 50)
	const workers = 8
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nw, ch, _, err := s.Fork()
			if err != nil {
				t.Error(err)
				return
			}
			o, err := campaign.RunLegit(context.Background(), nw, ch, campaign.Config{Seed: 3})
			if err != nil {
				t.Error(err)
				return
			}
			d, err := digest.Sum(o)
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if digests[i] != digests[0] {
			t.Errorf("concurrent fork %d diverged: %s != %s", i, digests[i], digests[0])
		}
	}
}

// Version 1 refuses to fork a mid-run capture: the contract is
// barrier-only, and the error names it.
func TestForkRejectsLiveState(t *testing.T) {
	sc := trace.DefaultScenario(5, 40)
	nw, rest, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	if err := e.At(10, "pending", func(*sim.Engine) {}); err != nil {
		t.Fatal(err)
	}
	s, err := Capture(sc, nw, nil, rest, WithEngine(e))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Fork(); !errors.Is(err, ErrLiveState) {
		t.Errorf("fork of live capture: err = %v, want ErrLiveState", err)
	}
	// The live state still serializes (for inspection) and round-trips.
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var w struct {
		Pending []sim.PendingEvent `json:"pending_events"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	if len(w.Pending) != 1 || w.Pending[0].Name != "pending" {
		t.Errorf("pending events not captured: %+v", w.Pending)
	}
}

// Capture without a charger forks a nil charger; the caller supplies its
// own. The RNG tail must still restore exactly.
func TestCaptureWithoutCharger(t *testing.T) {
	sc := trace.DefaultScenario(9, 40)
	nw, rest, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := rest.Uint64() // consume one draw AFTER capture would restore here
	// Rebuild to get an identical stream, capture, then fork.
	nw2, rest2, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Capture(sc, nw2, nil, rest2)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasCharger() {
		t.Error("charger-less capture claims a charger")
	}
	fnw, fch, frest, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fch != nil {
		t.Error("fork invented a charger")
	}
	if fnw.Len() != nw.Len() {
		t.Errorf("forked network has %d nodes, want %d", fnw.Len(), nw.Len())
	}
	if got := frest.Uint64(); got != want {
		t.Errorf("restored rng draw %d != original %d", got, want)
	}
}
