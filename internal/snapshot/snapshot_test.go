package snapshot_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func buildSnap(t *testing.T, seed uint64, n int) *snapshot.Snapshot {
	t.Helper()
	s, err := snapshot.Build(trace.DefaultScenario(seed, n), mc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Encode→Decode→Encode must be byte-identical, and the digest must ride
// along: the wire form IS the canonical form.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := buildSnap(t, 42, 60)
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := snapshot.Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-encoded snapshot differs from original bytes")
	}
	d2, err := s2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("digest drifted across round trip: %s != %s", d1, d2)
	}
	if s2.NodeCount() != s.NodeCount() || s2.HasCharger() != s.HasCharger() || s2.Scenario() != s.Scenario() {
		t.Error("decoded snapshot lost header fields")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	s := buildSnap(t, 7, 40)
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}

	future := strings.Replace(string(b), `"version":1`, `"version":2`, 1)
	if _, err := snapshot.Decode([]byte(future)); err == nil {
		t.Error("decoded a future wire version")
	}
	if _, err := snapshot.Decode([]byte(`{"version":1,"network":{"nodes":[]}}`)); err == nil {
		t.Error("decoded a snapshot with no nodes")
	}
	if _, err := snapshot.Decode([]byte(`not json`)); err == nil {
		t.Error("decoded garbage")
	}
}

// A fork is fully detached: running a campaign to exhaustion on one fork
// must leave later forks producing the same outcome as the first.
func TestForkIsolation(t *testing.T) {
	s := buildSnap(t, 42, 60)
	run := func() string {
		nw, ch, _, err := s.Fork()
		if err != nil {
			t.Fatal(err)
		}
		o, err := campaign.RunAttack(context.Background(), nw, ch, campaign.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		d, err := digest.Sum(o)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	first := run()
	if again := run(); again != first {
		t.Errorf("second fork diverged after the first was consumed: %s != %s", again, first)
	}
}

// Forking must be safe from many goroutines over one shared template —
// the whole point of the snapshot is concurrent seed sweeps. Run under
// -race.
func TestConcurrentFork(t *testing.T) {
	s := buildSnap(t, 3, 50)
	const workers = 8
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nw, ch, _, err := s.Fork()
			if err != nil {
				t.Error(err)
				return
			}
			o, err := campaign.RunLegit(context.Background(), nw, ch, campaign.Config{Seed: 3})
			if err != nil {
				t.Error(err)
				return
			}
			d, err := digest.Sum(o)
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if digests[i] != digests[0] {
			t.Errorf("concurrent fork %d diverged: %s != %s", i, digests[i], digests[0])
		}
	}
}

// Version 1 refuses to fork a mid-run capture: the contract is
// barrier-only, and the error names it.
func TestForkRejectsLiveState(t *testing.T) {
	sc := trace.DefaultScenario(5, 40)
	nw, rest, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	if err := e.At(10, "pending", func(*sim.Engine) {}); err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.Capture(sc, nw, nil, rest, snapshot.WithEngine(e))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Fork(); !errors.Is(err, snapshot.ErrLiveState) {
		t.Errorf("fork of live capture: err = %v, want ErrLiveState", err)
	}
	// The live state still serializes (for inspection) and round-trips.
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var w struct {
		Pending []sim.PendingEvent `json:"pending_events"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	if len(w.Pending) != 1 || w.Pending[0].Name != "pending" {
		t.Errorf("pending events not captured: %+v", w.Pending)
	}
}

// snapshot.Capture without a charger forks a nil charger; the caller supplies its
// own. The RNG tail must still restore exactly.
func TestCaptureWithoutCharger(t *testing.T) {
	sc := trace.DefaultScenario(9, 40)
	nw, rest, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := rest.Uint64() // consume one draw AFTER capture would restore here
	// Rebuild to get an identical stream, capture, then fork.
	nw2, rest2, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.Capture(sc, nw2, nil, rest2)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasCharger() {
		t.Error("charger-less capture claims a charger")
	}
	fnw, fch, frest, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fch != nil {
		t.Error("fork invented a charger")
	}
	if fnw.Len() != nw.Len() {
		t.Errorf("forked network has %d nodes, want %d", fnw.Len(), nw.Len())
	}
	if got := frest.Uint64(); got != want {
		t.Errorf("restored rng draw %d != original %d", got, want)
	}
}

// buildLiveSnap runs a campaign to its first checkpoint barrier and
// returns the live (version-2) snapshot captured there.
func buildLiveSnap(t *testing.T) *snapshot.Snapshot {
	t.Helper()
	sc := trace.DefaultScenario(42, 60)
	nw, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	var (
		snap     *snapshot.Snapshot
		barriers int
	)
	// A fault plan keeps not-yet-fired events in the engine queue for the
	// whole run, so the capture carries a non-empty pending set.
	plan := faults.New(faults.Spec{Seed: 42, HorizonSec: attack.DefaultHorizonSec, NodeFailures: 5}, nw.Len())
	cfg := campaign.Config{Seed: 42, Faults: plan, Checkpoint: &campaign.CheckpointPlan{
		Scenario: sc,
		Sink:     func(s *snapshot.Snapshot) error { snap = s; return nil },
		Stop:     func() bool { barriers++; return barriers == 50 },
	}}
	if _, err := campaign.RunLegit(context.Background(), nw, ch, cfg); !errors.Is(err, campaign.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	return snap
}

// A version-1 snapshot must keep decoding leniently: unknown fields are
// ignored, exactly as every pre-v2 build behaved. Compatibility with
// archived templates depends on this.
func TestDecodeV1ToleratesUnknownFields(t *testing.T) {
	s := buildSnap(t, 7, 40)
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(b), `"version":1`, `"version":1,"future_field":7`, 1)
	s2, err := snapshot.Decode([]byte(patched))
	if err != nil {
		t.Fatalf("v1 decode with unknown field: %v", err)
	}
	if s2.NodeCount() != s.NodeCount() {
		t.Error("v1 decode dropped nodes")
	}
}

// A version-2 checkpoint carrying a field this build does not understand
// must fail loudly with a versioned error: silently dropping live state
// and resuming from it would corrupt the run.
func TestDecodeV2RejectsUnknownFields(t *testing.T) {
	b, err := buildLiveSnap(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(b), `"version":2`, `"version":2,"future_field":7`, 1)
	if patched == string(b) {
		t.Fatal("version marker not found")
	}
	_, err = snapshot.Decode([]byte(patched))
	if err == nil {
		t.Fatal("decoded a v2 snapshot with an unknown field")
	}
	if !strings.Contains(err.Error(), "version 2") {
		t.Errorf("error does not name the version: %v", err)
	}
}

// A wire version beyond this build's horizon fails with the versions the
// build does read, so operators can tell a stale binary from corruption.
func TestDecodeRejectsFutureVersion(t *testing.T) {
	b, err := buildLiveSnap(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(b), `"version":2`, `"version":3`, 1)
	_, err = snapshot.Decode([]byte(patched))
	if err == nil || !strings.Contains(err.Error(), "unsupported wire version 3") {
		t.Errorf("future version error = %v", err)
	}
}

// A live snapshot round-trips byte-identically, and decoded accessors
// hand out defensive copies: mutating the returned pending events must
// not corrupt the snapshot another resume will read.
func TestLiveRoundTripAndPendingIsolation(t *testing.T) {
	s := buildLiveSnap(t)
	if !s.Live() {
		t.Fatal("checkpoint not live")
	}
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := snapshot.Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("live snapshot did not round-trip byte-identically")
	}
	evs := s2.PendingEvents()
	if len(evs) == 0 {
		t.Fatal("live snapshot has no pending events")
	}
	evs[0].Kind = "corrupted"
	evs[0].T = -1
	if again := s2.PendingEvents(); again[0].Kind == "corrupted" || again[0].T == -1 {
		t.Error("PendingEvents returned shared storage; a caller mutation leaked back")
	}
	// Fork of a live v2 snapshot is allowed (that is how resume starts)
	// and must not be perturbed by the mutation above.
	if _, _, _, err := s2.Fork(); err != nil {
		t.Errorf("fork of live v2: %v", err)
	}
}
