package detect

import (
	"math"
	"testing"
)

func TestROCPerfectSeparation(t *testing.T) {
	pos := []float64{0.8, 0.9, 1.0}
	neg := []float64{0.1, 0.2, 0.3}
	pts, err := ROC(pos, neg)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-1) > 1e-9 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	// There must exist a threshold with TPR 1, FPR 0.
	found := false
	for _, p := range pts {
		if p.TPR == 1 && p.FPR == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no perfect operating point on a separable set")
	}
}

func TestROCChance(t *testing.T) {
	same := []float64{0.1, 0.4, 0.7}
	pts, err := ROC(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-0.5) > 1e-9 {
		t.Errorf("identical distributions AUC = %v, want 0.5", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	pts, err := ROC([]float64{0.5, 0.7}, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Lowest threshold flags everything; the sentinel flags nothing.
	first, last := pts[0], pts[len(pts)-1]
	if first.TPR != 1 || first.FPR != 1 {
		t.Errorf("bottom point = %+v", first)
	}
	if last.TPR != 0 || last.FPR != 0 {
		t.Errorf("top point = %+v", last)
	}
	// TPR/FPR must be monotone non-increasing as the threshold rises.
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR > pts[i-1].TPR+1e-12 || pts[i].FPR > pts[i-1].FPR+1e-12 {
			t.Fatalf("non-monotone curve at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, []float64{1}); err == nil {
		t.Error("empty positives accepted")
	}
	if _, err := ROC([]float64{1}, nil); err == nil {
		t.Error("empty negatives accepted")
	}
}

func TestAUCDegenerate(t *testing.T) {
	if a := AUC(nil); a != 0 {
		t.Errorf("nil AUC = %v", a)
	}
	if a := AUC([]ROCPoint{{TPR: 1, FPR: 1}}); a != 0 {
		t.Errorf("single-point AUC = %v", a)
	}
}
