package detect

import (
	"math"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func sess(node wrsn.NodeID, start, req, gain float64, solicited bool) SessionObs {
	return SessionObs{
		Node: node, Start: start, End: start + 100,
		RequestedJ: req, MeterGainJ: gain, Solicited: solicited,
	}
}

func TestUtilityDetector(t *testing.T) {
	d := UtilityDetector{}
	// Full delivery → zero shortfall.
	a := Audit{Sessions: []SessionObs{sess(1, 0, 100, 100, true)}}
	if s := d.Score(a); s != 0 {
		t.Errorf("full-delivery score = %v", s)
	}
	// Half delivered.
	a = Audit{Sessions: []SessionObs{sess(1, 0, 100, 50, true)}}
	if s := d.Score(a); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("half-delivery score = %v", s)
	}
	// Ignored requests count against the charger.
	a.Unserved = []RequestObs{{Node: 2, NeedJ: 100}}
	if s := d.Score(a); math.Abs(s-0.75) > 1e-12 {
		t.Errorf("with-unserved score = %v", s)
	}
	// No demand at all: innocent unless deaths exist.
	if s := d.Score(Audit{}); s != 0 {
		t.Errorf("empty audit score = %v", s)
	}
	if s := d.Score(Audit{Deaths: []DeathObs{{Node: 1}}}); s != 1 {
		t.Errorf("deaths-without-service score = %v", s)
	}
	// Over-delivery clamps at zero.
	a = Audit{Sessions: []SessionObs{sess(1, 0, 100, 150, true)}}
	if s := d.Score(a); s != 0 {
		t.Errorf("over-delivery score = %v", s)
	}
}

func TestGainDetector(t *testing.T) {
	d := GainDetector{}
	a := Audit{Sessions: []SessionObs{
		sess(1, 0, 100, 0, true),
		sess(1, 200, 100, 0, true),
		sess(1, 400, 100, 90, true), // run broken
		sess(1, 600, 100, 0, true),
		sess(2, 100, 100, 0, true), // different node: separate run
	}}
	if s := d.Score(a); s != 2 {
		t.Errorf("longest run = %v, want 2", s)
	}
	// Sessions arrive unsorted; the detector must order them.
	a = Audit{Sessions: []SessionObs{
		sess(1, 400, 100, 0, true),
		sess(1, 0, 100, 0, true),
		sess(1, 200, 100, 0, true),
	}}
	if s := d.Score(a); s != 3 {
		t.Errorf("unsorted run = %v, want 3", s)
	}
	if Flagged(d, a) != true {
		t.Error("run of 3 not flagged at default trigger")
	}
}

func TestDeathDetector(t *testing.T) {
	d := DeathDetector{}
	a := Audit{
		Sessions: []SessionObs{sess(1, 0, 100, 90, true), sess(2, 0, 100, 90, true)},
		Deaths:   []DeathObs{{Node: 1, Time: 120, Reachable: true}},
	}
	// Node 1 died 20 s after its session end (100): implicated.
	if s := d.Score(a); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("score = %v, want 0.5", s)
	}
	// A death long after the window is not implicated.
	a.Deaths[0].Time = 1e9
	if s := d.Score(a); s != 0 {
		t.Errorf("stale death score = %v", s)
	}
	// No sessions → scheduler's fault, not the charger's.
	if s := d.Score(Audit{Deaths: []DeathObs{{Node: 1}}}); s != 0 {
		t.Errorf("no-session score = %v", s)
	}
}

func TestUnsolicitedDetector(t *testing.T) {
	d := UnsolicitedDetector{}
	a := Audit{Sessions: []SessionObs{
		sess(1, 0, 100, 90, true),
		sess(2, 0, 100, 90, false),
		sess(3, 0, 100, 90, false),
		sess(4, 0, 100, 90, true),
	}}
	if s := d.Score(a); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("score = %v, want 0.5", s)
	}
	if s := d.Score(Audit{}); s != 0 {
		t.Errorf("empty score = %v", s)
	}
}

func TestStarvationDetector(t *testing.T) {
	d := StarvationDetector{}
	a := Audit{
		Sessions: []SessionObs{sess(9, 0, 100, 90, true)},
		Deaths: []DeathObs{
			{Node: 1, Time: 100000, Reachable: true},  // starved (pending below)
			{Node: 2, Time: 100000, Reachable: false}, // partitioned: excused
			{Node: 3, Time: 100000, Reachable: true},  // no pending: natural
			{Node: 4, Time: 100000, Reachable: true},  // pending too late to react
		},
		Unserved: []RequestObs{
			{Node: 1, IssuedAt: 0, NeedJ: 100},
			{Node: 2, IssuedAt: 0, NeedJ: 100},
			{Node: 4, IssuedAt: 99950, NeedJ: 100}, // 50 s before death
		},
	}
	if s := d.Score(a); math.Abs(s-0.25) > 1e-12 {
		t.Errorf("score = %v, want 0.25 (1 starved of 4 deaths)", s)
	}
	// No sessions: the charger served nobody; UtilityDetector owns that.
	if s := d.Score(Audit{Deaths: a.Deaths, Unserved: a.Unserved}); s != 0 {
		t.Errorf("no-session score = %v", s)
	}
}

func TestSuiteAndJudge(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite size = %d", len(suite))
	}
	clean := Audit{Sessions: []SessionObs{sess(1, 0, 100, 95, true)}}
	verdicts := Judge(clean, suite)
	if len(verdicts) != len(suite) {
		t.Fatalf("verdict count = %d", len(verdicts))
	}
	if AnyFlagged(verdicts) {
		t.Errorf("clean audit flagged: %v", verdicts)
	}
	dirty := Audit{Sessions: []SessionObs{
		sess(1, 0, 100, 0, true), sess(1, 200, 100, 0, true), sess(1, 400, 100, 0, true),
	}}
	if !AnyFlagged(Judge(dirty, suite)) {
		t.Error("three consecutive zero-gains not flagged")
	}
	// Verdict strings are informative.
	v := Judge(dirty, suite)
	found := false
	for _, x := range v {
		if x.Flagged && strings.Contains(x.String(), "FLAGGED") {
			found = true
		}
	}
	if !found {
		t.Error("flagged verdict string lacks FLAGGED")
	}
}

func TestCustomThresholds(t *testing.T) {
	if got := (UtilityDetector{MaxShortfall: 0.2}).Threshold(); got != 0.2 {
		t.Errorf("custom threshold = %v", got)
	}
	if got := (GainDetector{Trigger: 5}).Threshold(); got != 5 {
		t.Errorf("custom trigger = %v", got)
	}
	if got := (DeathDetector{MaxRatio: 0.5}).Threshold(); got != 0.5 {
		t.Errorf("custom ratio = %v", got)
	}
	if got := (StarvationDetector{MaxRatio: 0.1}).Threshold(); got != 0.1 {
		t.Errorf("custom starvation ratio = %v", got)
	}
}
