// Package detect implements the network-side defenses the spoofing attack
// must evade. The sink audits charging telemetry — the sessions the charger
// performed and the energy gains nodes reported — plus the node-death
// record. Detectors never see simulation ground truth (whether a session
// was a spoof); they judge exactly what a real base station observes.
package detect

import (
	"fmt"
	"sort"

	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// SessionObs is the telemetry one charging session leaves behind: the
// charger's claim (node, interval, requested energy) and the node's
// meter-reported gain.
type SessionObs struct {
	Node       wrsn.NodeID
	Start, End float64
	// RequestedJ is the energy the node's charging request asked for.
	RequestedJ float64
	// MeterGainJ is the battery gain the node's quantized meter reported
	// for the session.
	MeterGainJ float64
	// Solicited reports whether the node had a pending charging request
	// when the session started; the sink knows, since requests flow
	// through it.
	Solicited bool
}

// DeathObs records a node death the sink learned about.
type DeathObs struct {
	Node wrsn.NodeID
	Time float64
	// Reachable reports whether the node still had a route to the sink
	// when it died. Deaths inside a partitioned region are attributed to
	// the partition, not to the charger's scheduling.
	Reachable bool
}

// RequestObs records a charging request that never got a session.
type RequestObs struct {
	Node     wrsn.NodeID
	IssuedAt float64
	// NeedJ is the energy the request asked for.
	NeedJ float64
}

// Audit is the evidence window a detector judges.
type Audit struct {
	Sessions []SessionObs
	Deaths   []DeathObs
	// Unserved lists requests the charger ignored within the audit window;
	// they count against delivered utility.
	Unserved []RequestObs
}

// Detector scores an audit; higher scores are more suspicious, and an
// audit is flagged when the score reaches the detector's threshold.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Score returns the suspicion statistic for the audit.
	Score(a Audit) float64
	// Threshold returns the flagging threshold on Score.
	Threshold() float64
}

// Flagged reports whether the detector fires on the audit.
func Flagged(d Detector, a Audit) bool { return d.Score(a) >= d.Threshold() }

// Compile-time interface compliance checks.
var (
	_ Detector = UtilityDetector{}
	_ Detector = GainDetector{}
	_ Detector = DeathDetector{}
	_ Detector = UnsolicitedDetector{}
	_ Detector = StarvationDetector{}
)

// UtilityDetector audits aggregate charging throughput: a legitimate
// charger delivers most of what was requested, so the shortfall
// 1 − ΣMeterGain/ΣRequested stays small. A charger that skips or spoofs
// much of its workload scores high. This is the detector the TIDE cover
// traffic exists to satisfy.
type UtilityDetector struct {
	// MaxShortfall is the flagging threshold on the shortfall ratio;
	// non-positive gets the default 0.4 (flag when less than 60% of
	// requested energy arrives).
	MaxShortfall float64
}

// Name implements Detector.
func (UtilityDetector) Name() string { return "utility-shortfall" }

// Threshold implements Detector.
func (d UtilityDetector) Threshold() float64 {
	if d.MaxShortfall <= 0 {
		return 0.4
	}
	return d.MaxShortfall
}

// Score implements Detector: the aggregate delivery shortfall in [0,1],
// where the denominator covers both served requests and requests the
// charger ignored. An audit with no demand at all but pending deaths
// scores 1 (a charger that never charges is maximally suspicious); a truly
// empty audit scores 0.
func (d UtilityDetector) Score(a Audit) float64 {
	var req, got float64
	for _, s := range a.Sessions {
		req += s.RequestedJ
		got += s.MeterGainJ
	}
	for _, u := range a.Unserved {
		req += u.NeedJ
	}
	if req <= 0 {
		if len(a.Deaths) > 0 {
			return 1
		}
		return 0
	}
	short := 1 - got/req
	if short < 0 {
		return 0
	}
	return short
}

// GainDetector audits per-node session outcomes: a session whose reported
// meter gain is at or below ZeroGainJ counts as a zero-gain session, and a
// node accumulating Trigger consecutive zero-gain sessions flags the
// charger. One bad session is routine (range, misalignment, meter
// quantization); repetition is not.
type GainDetector struct {
	// ZeroGainJ is the gain at or below which a session counts as failed;
	// non-positive gets 1 J (double the default meter quantum).
	ZeroGainJ float64
	// Trigger is the consecutive-failure count that flags; non-positive
	// gets 3 (two-in-a-row false-positives on benign session failures are
	// too common at realistic failure rates).
	Trigger int
}

// Name implements Detector.
func (GainDetector) Name() string { return "zero-gain-run" }

// Threshold implements Detector.
func (d GainDetector) Threshold() float64 {
	if d.Trigger <= 0 {
		return 3
	}
	return float64(d.Trigger)
}

// Score implements Detector: the longest consecutive zero-gain run at any
// single node.
func (d GainDetector) Score(a Audit) float64 {
	zero := d.ZeroGainJ
	if zero <= 0 {
		zero = 1
	}
	// Order sessions per node by start time.
	byNode := make(map[wrsn.NodeID][]SessionObs)
	for _, s := range a.Sessions {
		byNode[s.Node] = append(byNode[s.Node], s)
	}
	longest := 0
	for _, ss := range byNode {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		run := 0
		for _, s := range ss {
			if s.MeterGainJ <= zero {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
	}
	return float64(longest)
}

// DeathDetector audits the death record against the charging record: a
// node dying within PostChargeSec of a completed charging session is a
// charging failure, and a charger whose failure ratio (such deaths per
// session) exceeds MaxRatio is flagged. Spoof-only attackers have ratio
// ≈ 1; the attack hides key-node deaths among abundant genuine sessions.
type DeathDetector struct {
	// PostChargeSec is how long after a session a death implicates it;
	// non-positive gets 6 hours.
	PostChargeSec float64
	// MaxRatio is the flagging threshold on the failure ratio;
	// non-positive gets 0.25.
	MaxRatio float64
}

// Name implements Detector.
func (DeathDetector) Name() string { return "post-charge-death" }

// Threshold implements Detector.
func (d DeathDetector) Threshold() float64 {
	if d.MaxRatio <= 0 {
		return 0.25
	}
	return d.MaxRatio
}

// Score implements Detector: deaths within PostChargeSec of that node's
// last session, divided by total sessions. No sessions scores 0 — with
// nothing charged, deaths indict the scheduler, not the charger.
func (d DeathDetector) Score(a Audit) float64 {
	if len(a.Sessions) == 0 {
		return 0
	}
	window := d.PostChargeSec
	if window <= 0 {
		window = 6 * 3600
	}
	lastEnd := make(map[wrsn.NodeID]float64, len(a.Sessions))
	for _, s := range a.Sessions {
		if s.End > lastEnd[s.Node] {
			lastEnd[s.Node] = s.End
		}
	}
	implicated := 0
	for _, death := range a.Deaths {
		if end, ok := lastEnd[death.Node]; ok && death.Time >= end && death.Time-end <= window {
			implicated++
		}
	}
	return float64(implicated) / float64(len(a.Sessions))
}

// UnsolicitedDetector audits session provenance: the on-demand protocol
// only dispatches the charger to nodes that asked, so sessions at
// non-requesting nodes are anomalies. A planner that violates key-node
// time windows (visiting before the victim's request) trips this; CSA's
// window constraint R ≥ request time exists precisely to stay under it.
type UnsolicitedDetector struct {
	// MaxRatio is the flagging threshold on unsolicited sessions per
	// session; non-positive gets 0.1.
	MaxRatio float64
}

// Name implements Detector.
func (UnsolicitedDetector) Name() string { return "unsolicited-session" }

// Threshold implements Detector.
func (d UnsolicitedDetector) Threshold() float64 {
	if d.MaxRatio <= 0 {
		return 0.1
	}
	return d.MaxRatio
}

// Score implements Detector: the fraction of sessions with no pending
// request behind them.
func (d UnsolicitedDetector) Score(a Audit) float64 {
	if len(a.Sessions) == 0 {
		return 0
	}
	n := 0
	for _, s := range a.Sessions {
		if !s.Solicited {
			n++
		}
	}
	return float64(n) / float64(len(a.Sessions))
}

// StarvationDetector audits how nodes die: a node that dies while its
// charging request sits unanswered — while the charger is demonstrably
// active elsewhere — was starved. It catches the attacker who simply
// never serves its victims (including the degenerate single-emitter
// "attack", which cannot spoof and must either charge or ignore). The
// real spoofing attack stays under it because every victim's request is
// answered — with a session that delivers nothing.
type StarvationDetector struct {
	// MaxRatio is the flagging threshold on starved deaths per death;
	// non-positive gets 0.3.
	MaxRatio float64
	// ReactSec is the minimum time between request and death for the
	// death to count as starvation — a charger cannot answer a plea made
	// minutes before the battery gives out. Non-positive gets 1 h.
	ReactSec float64
}

// Name implements Detector.
func (StarvationDetector) Name() string { return "died-awaiting-charge" }

// Threshold implements Detector.
func (d StarvationDetector) Threshold() float64 {
	if d.MaxRatio <= 0 {
		return 0.3
	}
	return d.MaxRatio
}

// Score implements Detector: among observed deaths, the fraction that
// died sink-reachable with an unserved request issued before death —
// nodes the charger could have saved and chose not to. Zero when nothing
// died or the charger performed no sessions (with no service at all,
// blame falls on the operator's scheduling, and UtilityDetector covers
// it).
func (d StarvationDetector) Score(a Audit) float64 {
	if len(a.Deaths) == 0 || len(a.Sessions) == 0 {
		return 0
	}
	react := d.ReactSec
	if react <= 0 {
		react = 3600
	}
	starvedReq := make(map[wrsn.NodeID]float64, len(a.Unserved))
	for _, u := range a.Unserved {
		starvedReq[u.Node] = u.IssuedAt
	}
	starved := 0
	for _, death := range a.Deaths {
		if !death.Reachable {
			continue
		}
		if issued, ok := starvedReq[death.Node]; ok && issued <= death.Time-react {
			starved++
		}
	}
	return float64(starved) / float64(len(a.Deaths))
}

// Suite bundles the standard detector set with default thresholds.
func Suite() []Detector {
	return []Detector{
		UtilityDetector{},
		GainDetector{},
		DeathDetector{},
		UnsolicitedDetector{},
		StarvationDetector{},
	}
}

// Verdict is one detector's judgment of an audit.
type Verdict struct {
	Detector  string
	Score     float64
	Threshold float64
	Flagged   bool
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	state := "ok"
	if v.Flagged {
		state = "FLAGGED"
	}
	return fmt.Sprintf("%s: score %.3f vs threshold %.3f → %s", v.Detector, v.Score, v.Threshold, state)
}

// Judge runs every detector over the audit.
func Judge(audit Audit, detectors []Detector) []Verdict {
	return JudgeProbed(audit, detectors, obs.Nop(), 0)
}

// JudgeProbed is Judge with telemetry: each detector's score lands in
// the "detect.score.<name>" histogram, each firing increments
// "detect.flagged.<name>", and every verdict emits a "detect.verdict"
// event stamped with the caller's audit time. The verdicts themselves
// are identical to Judge's — probes observe, never influence.
func JudgeProbed(audit Audit, detectors []Detector, p obs.Probe, now float64) []Verdict {
	out := make([]Verdict, 0, len(detectors))
	for _, d := range detectors {
		s := d.Score(audit)
		v := Verdict{
			Detector:  d.Name(),
			Score:     s,
			Threshold: d.Threshold(),
			Flagged:   s >= d.Threshold(),
		}
		out = append(out, v)
		if p.Enabled() {
			p.Observe("detect.score."+v.Detector, s)
			if v.Flagged {
				p.Add("detect.flagged."+v.Detector, 1)
			}
			p.Event(obs.Event{T: now, Kind: "detect.verdict", Node: -1, Value: s, Detail: v.Detector})
		}
	}
	return out
}

// AnyFlagged reports whether any verdict fired.
func AnyFlagged(vs []Verdict) bool {
	for _, v := range vs {
		if v.Flagged {
			return true
		}
	}
	return false
}
