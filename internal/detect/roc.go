package detect

import (
	"fmt"
	"sort"
)

// ROC machinery for the detection-tradeoff experiments: given suspicion
// scores sampled under attack (positives) and under legitimate operation
// (negatives), sweep the threshold and report the true/false positive
// rates, plus the area under the curve.

// ROCPoint is one operating point of a detector.
type ROCPoint struct {
	Threshold float64
	// TPR is the fraction of attack runs flagged (detection probability).
	TPR float64
	// FPR is the fraction of legitimate runs flagged (false alarms).
	FPR float64
}

// ROC computes the ROC curve from positive (attack) and negative
// (legitimate) score samples. Thresholds sweep over every distinct
// observed score plus a sentinel above the maximum, producing points from
// (1,1) down to (0,0) as the threshold rises. An error is returned when
// either sample set is empty.
func ROC(positives, negatives []float64) ([]ROCPoint, error) {
	if len(positives) == 0 || len(negatives) == 0 {
		return nil, fmt.Errorf("detect: ROC needs both positive (%d) and negative (%d) samples", len(positives), len(negatives))
	}
	thresholds := make([]float64, 0, len(positives)+len(negatives)+1)
	thresholds = append(thresholds, positives...)
	thresholds = append(thresholds, negatives...)
	sort.Float64s(thresholds)
	// Deduplicate and add a top sentinel so the curve reaches (0,0).
	uniq := thresholds[:0]
	for i, t := range thresholds {
		if i == 0 || t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	top := uniq[len(uniq)-1]
	uniq = append(uniq, top+1)

	rate := func(samples []float64, thr float64) float64 {
		n := 0
		for _, s := range samples {
			if s >= thr {
				n++
			}
		}
		return float64(n) / float64(len(samples))
	}
	pts := make([]ROCPoint, 0, len(uniq))
	for _, thr := range uniq {
		pts = append(pts, ROCPoint{
			Threshold: thr,
			TPR:       rate(positives, thr),
			FPR:       rate(negatives, thr),
		})
	}
	return pts, nil
}

// AUC returns the area under the ROC curve by trapezoidal integration over
// FPR. 0.5 is chance; 1.0 is a perfect detector; values near 0.5 mean the
// attack is statistically invisible to the detector.
func AUC(pts []ROCPoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	// Sort by ascending FPR (ties by TPR) for a well-formed integral.
	sorted := append([]ROCPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].FPR != sorted[j].FPR {
			return sorted[i].FPR < sorted[j].FPR
		}
		return sorted[i].TPR < sorted[j].TPR
	})
	var area float64
	for i := 1; i < len(sorted); i++ {
		dx := sorted[i].FPR - sorted[i-1].FPR
		area += dx * (sorted[i].TPR + sorted[i-1].TPR) / 2
	}
	return area
}
