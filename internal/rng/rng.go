// Package rng provides deterministic, splittable pseudo-random streams for
// reproducible experiments. Every simulation component draws from its own
// named stream derived from a single scenario seed, so adding randomness to
// one component never perturbs the draws seen by another.
//
// The generator is SplitMix64 feeding xoshiro256**, the same construction
// used by Go's runtime for its fast rand. It is not cryptographically
// secure; it is designed for statistical quality and reproducibility.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random number generator. The zero value
// is not usable; construct streams with New or Stream.Split.
type Stream struct {
	s [4]uint64
}

// New returns a stream seeded from seed. Two streams built from the same
// seed produce identical sequences.
func New(seed uint64) *Stream {
	var st Stream
	// SplitMix64 expansion of the seed into the xoshiro state, per the
	// reference initialization recommended by the xoshiro authors.
	x := seed
	for i := range st.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	return &st
}

// State returns the stream's exact generator state. Together with
// FromState it lets a snapshot freeze a stream mid-sequence and resume
// it elsewhere: FromState(r.State()) continues with precisely the draws
// r would have produced next.
func (r *Stream) State() [4]uint64 { return r.s }

// FromState reconstructs a stream at an exact captured state; the
// inverse of State.
func FromState(s [4]uint64) *Stream { return &Stream{s: s} }

// Split derives an independent child stream keyed by label. Splitting is
// deterministic — the same parent state and label always yield the same
// child — and does not advance the parent.
func (r *Stream) Split(label string) *Stream {
	h := uint64(0xcbf29ce484222325) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	// Mix the parent state in without consuming from it.
	h ^= bits.RotateLeft64(r.s[0], 7) ^ bits.RotateLeft64(r.s[2], 31)
	return New(h)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers control n and a non-positive value is a
// programming error.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Norm returns a normally distributed float64 with mean 0 and stddev 1,
// using the polar Box–Muller method.
func (r *Stream) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMeanStd returns a normal draw with the given mean and stddev.
func (r *Stream) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	// 1−Float64() is in (0,1], avoiding Log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the Fisher–Yates
// algorithm, calling swap to exchange elements i and j.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}
