package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	c2 := New(7).Split("alpha")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same-label splits diverged")
		}
	}
	// Splitting must not advance the parent.
	p1, p2 := New(7), New(7)
	p1.Split("x")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
	// Different labels give different streams.
	d1, d2 := New(7).Split("a"), New(7).Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("label-distinct splits collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("variance = %v, want ≈1/12", variance)
	}
}

func TestUniform(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(6)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d drawn %d times, want ≈10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNorm(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ≈1", variance)
	}
	if v := r.NormMeanStd(100, 0); v != 100 {
		t.Errorf("NormMeanStd(100,0) = %v", v)
	}
}

func TestExp(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	r.Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBool(t *testing.T) {
	r := New(11)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("Bool(0.25) hit %d/10000, want ≈2500", hits)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
