package charging

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func req(node wrsn.NodeID, x, issued, deadline, need float64) Request {
	return Request{Node: node, Pos: geom.Pt(x, 0), IssuedAt: issued, Deadline: deadline, NeedJ: need}
}

func TestRequestValidate(t *testing.T) {
	if err := req(1, 0, 10, 5, 1).Validate(); err == nil {
		t.Error("deadline before issue accepted")
	}
	if err := req(1, 0, 0, 1, -1).Validate(); err == nil {
		t.Error("negative need accepted")
	}
	if err := req(1, 0, 0, 1, 1).Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestQueueAddReplace(t *testing.T) {
	var q Queue
	if err := q.Add(req(1, 0, 0, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(req(1, 0, 2, 12, 7)); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 {
		t.Fatalf("re-add duplicated: len=%d", q.Len())
	}
	got, ok := q.Get(1)
	if !ok || got.NeedJ != 7 {
		t.Errorf("Get = %+v, %v; want replaced request", got, ok)
	}
}

func TestQueueRemove(t *testing.T) {
	var q Queue
	for i := 1; i <= 3; i++ {
		if err := q.Add(req(wrsn.NodeID(i), float64(i), float64(i), 100, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !q.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if q.Has(2) || q.Len() != 2 {
		t.Error("node 2 still present")
	}
	if q.Remove(2) {
		t.Error("double remove succeeded")
	}
	// The remaining entries must still be addressable (swap-delete bug
	// guard).
	if !q.Has(1) || !q.Has(3) {
		t.Error("swap-delete corrupted the index")
	}
	// Removing the last inserted element (the swap-with-self edge case).
	if !q.Remove(3) || q.Has(3) {
		t.Error("remove-last broke")
	}
	if !q.Has(1) || q.Len() != 1 {
		t.Error("remove-last corrupted remaining entry")
	}
}

func TestQueuePendingSorted(t *testing.T) {
	var q Queue
	_ = q.Add(req(3, 0, 5, 100, 1))
	_ = q.Add(req(1, 0, 2, 100, 1))
	_ = q.Add(req(2, 0, 2, 100, 1))
	p := q.Pending()
	if len(p) != 3 || p[0].Node != 1 || p[1].Node != 2 || p[2].Node != 3 {
		t.Errorf("pending order = %v", p)
	}
}

func TestQueueExpire(t *testing.T) {
	var q Queue
	_ = q.Add(req(1, 0, 0, 10, 1))
	_ = q.Add(req(2, 0, 0, 50, 1))
	dead := q.Expire(20)
	if len(dead) != 1 || dead[0].Node != 1 {
		t.Errorf("expired = %v", dead)
	}
	if q.Has(1) || !q.Has(2) {
		t.Error("expire removed the wrong entries")
	}
}

func TestFCFS(t *testing.T) {
	var q Queue
	_ = q.Add(req(2, 100, 5, 100, 1))
	_ = q.Add(req(1, 1, 3, 100, 1))
	r, ok := FCFS{}.Next(&q, geom.Pt(0, 0), 10)
	if !ok || r.Node != 1 {
		t.Errorf("FCFS picked %v", r.Node)
	}
	var empty Queue
	if _, ok2 := (FCFS{}).Next(&empty, geom.Pt(0, 0), 0); ok2 {
		t.Error("empty queue returned a request")
	}
}

func TestNJNP(t *testing.T) {
	var q Queue
	_ = q.Add(req(1, 100, 0, 100, 1))
	_ = q.Add(req(2, 10, 1, 100, 1))
	_ = q.Add(req(3, 55, 2, 100, 1))
	r, ok := NJNP{}.Next(&q, geom.Pt(50, 0), 10)
	if !ok || r.Node != 3 {
		t.Errorf("NJNP picked %v, want 3 (nearest to x=50)", r.Node)
	}
}

func TestEDF(t *testing.T) {
	var q Queue
	_ = q.Add(req(1, 0, 0, 300, 1))
	_ = q.Add(req(2, 0, 1, 100, 1))
	_ = q.Add(req(3, 0, 2, 200, 1))
	r, ok := EDF{}.Next(&q, geom.Pt(0, 0), 10)
	if !ok || r.Node != 2 {
		t.Errorf("EDF picked %v, want 2", r.Node)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FCFS", "njnp", "EDF"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestSessionUtility(t *testing.T) {
	s := Session{RequestedJ: 100, DeliveredJ: 60}
	if s.Utility() != 60 {
		t.Errorf("utility = %v", s.Utility())
	}
	s.DeliveredJ = 150 // over-delivery earns only the request
	if s.Utility() != 100 {
		t.Errorf("capped utility = %v", s.Utility())
	}
	if (Session{Start: 5, End: 9}).Duration() != 4 {
		t.Error("duration wrong")
	}
}

func TestSessionKindString(t *testing.T) {
	if SessionFocus.String() != "focus" || SessionSpoof.String() != "spoof" {
		t.Error("session kind strings wrong")
	}
	if SessionKind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestPeriodicTSP(t *testing.T) {
	var q Queue
	// Requests placed so a good tour is 1 → 2 → 3 from the charger at 0.
	_ = q.Add(req(3, 90, 0, 1000, 1))
	_ = q.Add(req(1, 10, 1, 1000, 1))
	_ = q.Add(req(2, 50, 2, 1000, 1))
	sched := &PeriodicTSP{}
	var order []wrsn.NodeID
	for {
		r, ok := sched.Next(&q, geom.Pt(0, 0), 0)
		if !ok {
			break
		}
		order = append(order, r.Node)
		q.Remove(r.Node)
	}
	want := []wrsn.NodeID{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("served %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tour order = %v, want %v", order, want)
		}
	}
}

func TestPeriodicTSPSkipsVanishedRequests(t *testing.T) {
	var q Queue
	_ = q.Add(req(1, 10, 0, 1000, 1))
	_ = q.Add(req(2, 20, 1, 1000, 1))
	sched := &PeriodicTSP{}
	r, ok := sched.Next(&q, geom.Pt(0, 0), 0)
	if !ok || r.Node != 1 {
		t.Fatalf("first pick = %v %v", r.Node, ok)
	}
	// Node 2's request expires before its tour stop comes up.
	q.Remove(1)
	q.Remove(2)
	if _, ok := sched.Next(&q, geom.Pt(0, 0), 0); ok {
		t.Error("served a vanished request")
	}
}

func TestPeriodicTSPMinBatch(t *testing.T) {
	var q Queue
	_ = q.Add(req(1, 10, 0, 1000, 1))
	sched := &PeriodicTSP{MinBatch: 3}
	if _, ok := sched.Next(&q, geom.Pt(0, 0), 0); ok {
		t.Error("served below the batch threshold")
	}
	_ = q.Add(req(2, 20, 1, 1000, 1))
	_ = q.Add(req(3, 30, 2, 1000, 1))
	if _, ok := sched.Next(&q, geom.Pt(0, 0), 0); !ok {
		t.Error("batch reached but nothing served")
	}
}

func TestByNamePeriodicTSP(t *testing.T) {
	if _, err := ByName("PeriodicTSP"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("tsp"); err != nil {
		t.Fatal(err)
	}
}
