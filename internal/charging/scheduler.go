package charging

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Scheduler orders the pending request queue: given the charger's position
// and the current time, it picks the next request to serve. Implementations
// must be deterministic.
type Scheduler interface {
	// Next returns the chosen request and true, or false when the queue is
	// empty or no request is worth serving.
	Next(q *Queue, chargerPos geom.Point, now float64) (Request, bool)
	// Name identifies the policy in reports.
	Name() string
}

// Compile-time interface compliance checks.
var (
	_ Scheduler = (*FCFS)(nil)
	_ Scheduler = (*NJNP)(nil)
	_ Scheduler = (*EDF)(nil)
	_ Scheduler = (*PeriodicTSP)(nil)
)

// FCFS serves requests in issue order — the simplest on-demand policy.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Next implements Scheduler.
func (FCFS) Next(q *Queue, _ geom.Point, _ float64) (Request, bool) {
	p := q.Pending()
	if len(p) == 0 {
		return Request{}, false
	}
	return p[0], true
}

// NJNP is Nearest-Job-Next(-with-Preemption): always serve the spatially
// closest pending request. The classic on-demand WRSN policy; this
// implementation is the non-preemptive variant (selection happens between
// sessions, which is when the simulator consults the scheduler).
type NJNP struct{}

// Name implements Scheduler.
func (NJNP) Name() string { return "NJNP" }

// Next implements Scheduler.
func (NJNP) Next(q *Queue, chargerPos geom.Point, _ float64) (Request, bool) {
	p := q.Pending()
	if len(p) == 0 {
		return Request{}, false
	}
	best := 0
	bestD := chargerPos.Dist2(p[0].Pos)
	for i := 1; i < len(p); i++ {
		if d := chargerPos.Dist2(p[i].Pos); d < bestD {
			best, bestD = i, d
		}
	}
	return p[best], true
}

// EDF serves the request with the earliest deadline (soonest projected
// death) first, the lifetime-maximizing greedy.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "EDF" }

// Next implements Scheduler.
func (EDF) Next(q *Queue, _ geom.Point, _ float64) (Request, bool) {
	p := q.Pending()
	if len(p) == 0 {
		return Request{}, false
	}
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i].Deadline < p[best].Deadline {
			best = i
		}
	}
	return p[best], true
}

// PeriodicTSP is the tour-based policy of the periodic-charging
// literature: when the queue has accumulated, plan one travel-efficient
// tour over every pending request (nearest-neighbor construction plus
// 2-opt) and serve it in order; re-plan when the tour is exhausted.
// Compared to NJNP it trades response latency for travel energy.
//
// PeriodicTSP is stateful (it remembers its current tour); use one
// instance per charger.
type PeriodicTSP struct {
	// MinBatch defers planning until this many requests are pending (the
	// "periodic" accumulation); non-positive plans immediately.
	MinBatch int

	tour []wrsn.NodeID
}

// Name implements Scheduler.
func (*PeriodicTSP) Name() string { return "PeriodicTSP" }

// Next implements Scheduler: pop the next tour stop that is still
// pending; plan a fresh tour when the current one is spent.
func (p *PeriodicTSP) Next(q *Queue, chargerPos geom.Point, _ float64) (Request, bool) {
	// Serve the remainder of the current tour first.
	for len(p.tour) > 0 {
		id := p.tour[0]
		p.tour = p.tour[1:]
		if req, ok := q.Get(id); ok {
			return req, true
		}
	}
	pending := q.Pending()
	if len(pending) == 0 {
		return Request{}, false
	}
	if p.MinBatch > 0 && len(pending) < p.MinBatch {
		// Not enough accumulated: serve nothing yet (the caller idles).
		return Request{}, false
	}
	pts := make([]geom.Point, len(pending))
	for i, r := range pending {
		pts[i] = r.Pos
	}
	order := geom.NearestNeighborOrder(chargerPos, pts)
	route := geom.PermuteBy(pts, order)
	geom.TwoOpt(route, 6)
	// Map improved route positions back to requests. Positions are unique
	// per request in practice; duplicates fall back to order-of-pending.
	byPos := make(map[geom.Point][]wrsn.NodeID, len(pending))
	for _, r := range pending {
		byPos[r.Pos] = append(byPos[r.Pos], r.Node)
	}
	p.tour = p.tour[:0]
	for _, pt := range route {
		ids := byPos[pt]
		if len(ids) == 0 {
			continue
		}
		p.tour = append(p.tour, ids[0])
		byPos[pt] = ids[1:]
	}
	if len(p.tour) == 0 {
		return Request{}, false
	}
	id := p.tour[0]
	p.tour = p.tour[1:]
	req, ok := q.Get(id)
	return req, ok
}

// ByName returns the scheduler with the given policy name.
func ByName(name string) (Scheduler, error) {
	switch name {
	case "FCFS", "fcfs":
		return FCFS{}, nil
	case "NJNP", "njnp":
		return NJNP{}, nil
	case "EDF", "edf":
		return EDF{}, nil
	case "PeriodicTSP", "tsp":
		return &PeriodicTSP{}, nil
	default:
		return nil, fmt.Errorf("charging: unknown scheduler %q (want FCFS, NJNP, EDF, or PeriodicTSP)", name)
	}
}
