package charging

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// SessionKind distinguishes what the charger actually did during a visit.
type SessionKind int

// Session kinds.
const (
	// SessionFocus is a legitimate constructive-interference charge.
	SessionFocus SessionKind = iota + 1
	// SessionSpoof is a destructive-interference visit: carrier present,
	// (almost) no energy delivered.
	SessionSpoof
)

// String implements fmt.Stringer.
func (k SessionKind) String() string {
	switch k {
	case SessionFocus:
		return "focus"
	case SessionSpoof:
		return "spoof"
	default:
		return fmt.Sprintf("session(%d)", int(k))
	}
}

// Session records one completed charging visit, the unit detectors audit.
type Session struct {
	// Node is the visited node.
	Node wrsn.NodeID
	// Kind tells what the charger did. Detectors never see this field —
	// it is simulation ground truth.
	Kind SessionKind
	// Start and End bound the radiating interval in seconds.
	Start, End float64
	// RequestedJ is the energy the node asked for.
	RequestedJ float64
	// DeliveredJ is the DC energy the node actually harvested.
	DeliveredJ float64
	// MeterGainJ is the energy gain as the node's quantized meter reported
	// it; this, not DeliveredJ, is what telemetry carries.
	MeterGainJ float64
	// RFAtNodeW is the RF power at the node's rectenna during the session.
	RFAtNodeW float64
}

// Duration returns the session length in seconds.
func (s Session) Duration() float64 { return s.End - s.Start }

// Utility returns the session's charging utility: delivered energy capped
// at the requested amount. Serving beyond the request earns nothing, which
// makes total utility submodular in the set of served sessions.
func (s Session) Utility() float64 {
	if s.DeliveredJ < s.RequestedJ {
		return s.DeliveredJ
	}
	return s.RequestedJ
}
