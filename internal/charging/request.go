// Package charging implements the on-demand charging architecture a WRSN
// runs in steady state: nodes whose batteries fall below a threshold issue
// charging requests; a scheduler orders the pending queue; the mobile
// charger serves requests with focused (constructive) wireless power
// sessions. The spoofing attack reuses this machinery as its cover traffic.
package charging

import (
	"fmt"
	"sort"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Request is a node's plea for energy.
type Request struct {
	// Node identifies the requester.
	Node wrsn.NodeID
	// Pos is the requester's location (denormalized for scheduler use).
	Pos geom.Point
	// IssuedAt is the request time in seconds.
	IssuedAt float64
	// Deadline is the projected death time if never charged; schedulers
	// treat it as the request's hard deadline.
	Deadline float64
	// NeedJ is the energy required to refill the battery at issue time.
	NeedJ float64
}

// Validate reports whether the request is well formed.
func (r Request) Validate() error {
	if r.Deadline < r.IssuedAt {
		return fmt.Errorf("charging: request for node %d has deadline %v before issue %v", r.Node, r.Deadline, r.IssuedAt)
	}
	if r.NeedJ < 0 {
		return fmt.Errorf("charging: request for node %d has negative need %v", r.Node, r.NeedJ)
	}
	return nil
}

// Queue holds pending requests with at most one outstanding request per
// node; re-issuing replaces the older entry. The zero value is ready to
// use.
type Queue struct {
	pending []Request
	byNode  map[wrsn.NodeID]int
}

// Len returns the number of pending requests.
func (q *Queue) Len() int { return len(q.pending) }

// Add inserts or replaces the node's pending request.
func (q *Queue) Add(r Request) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if q.byNode == nil {
		q.byNode = make(map[wrsn.NodeID]int)
	}
	if i, ok := q.byNode[r.Node]; ok {
		q.pending[i] = r
		return nil
	}
	q.byNode[r.Node] = len(q.pending)
	q.pending = append(q.pending, r)
	return nil
}

// Remove drops the node's pending request if present and reports whether
// one was removed.
func (q *Queue) Remove(id wrsn.NodeID) bool {
	i, ok := q.byNode[id]
	if !ok {
		return false
	}
	last := len(q.pending) - 1
	moved := q.pending[last]
	q.pending[i] = moved
	q.byNode[moved.Node] = i
	q.pending = q.pending[:last]
	delete(q.byNode, id)
	// When i == last the moved element was the removed one; the map entry
	// re-added above must go. Guard against resurrecting it.
	if moved.Node == id {
		delete(q.byNode, id)
	}
	return true
}

// Has reports whether the node has a pending request.
func (q *Queue) Has(id wrsn.NodeID) bool {
	_, ok := q.byNode[id]
	return ok
}

// Get returns the node's pending request.
func (q *Queue) Get(id wrsn.NodeID) (Request, bool) {
	i, ok := q.byNode[id]
	if !ok {
		return Request{}, false
	}
	return q.pending[i], true
}

// Pending returns a copy of the pending requests in insertion-stable order
// (sorted by issue time, then node ID, for determinism).
func (q *Queue) Pending() []Request {
	out := append([]Request(nil), q.pending...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].IssuedAt != out[j].IssuedAt {
			return out[i].IssuedAt < out[j].IssuedAt
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Expire removes requests whose deadline has passed (the node died) and
// returns them.
func (q *Queue) Expire(now float64) []Request {
	var dead []Request
	for _, r := range q.Pending() {
		if r.Deadline <= now {
			dead = append(dead, r)
			q.Remove(r.Node)
		}
	}
	return dead
}
