package attack

import (
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// chainNetwork builds a sink-rooted chain whose interior nodes are all key
// nodes, with staggered initial charge so windows differ.
func chainNetwork(t *testing.T, n int) *wrsn.Network {
	t.Helper()
	specs := make([]wrsn.NodeSpec, n)
	for i := range specs {
		specs[i] = wrsn.NodeSpec{
			Pos:         geom.Pt(float64(i+1)*40, 0),
			InitialFrac: 0.6 + 0.05*float64(i%5),
		}
	}
	nw, err := wrsn.NewNetwork(specs, wrsn.Config{Sink: geom.Pt(0, 0), CommRange: 50})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildInstanceBasics(t *testing.T) {
	nw := chainNetwork(t, 6)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	keys := nw.KeyNodes()
	if got, want := len(in.Mandatories()), len(keys); got != want {
		t.Errorf("mandatory sites = %d, want %d key nodes", got, want)
	}
	if in.BudgetJ != ch.Remaining() {
		t.Errorf("budget = %v, want charger remaining %v", in.BudgetJ, ch.Remaining())
	}
	if in.SpeedMps != ch.Params().SpeedMps {
		t.Error("cost model not mirrored")
	}
}

func TestBuildInstanceWindows(t *testing.T) {
	nw := chainNetwork(t, 6)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	cfg := BuilderConfig{Now: 100, CooldownSec: 3600}
	in, err := BuildInstance(nw, ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range in.Sites {
		f, err := nw.ForecastAt(s.Node, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Window.D > f.DeathAt+1e-6 {
			t.Errorf("node %d window closes after death", s.Node)
		}
		if s.Window.R < 100 {
			t.Errorf("node %d window opens before now", s.Node)
		}
		if s.Mandatory {
			// Key windows open no earlier than death − cooldown.
			if s.Window.R < math.Max(f.RequestAt, f.DeathAt-3600)-1e-6 {
				t.Errorf("key node %d window [%v,%v] opens too early (req %v death %v)",
					s.Node, s.Window.R, s.Window.D, f.RequestAt, f.DeathAt)
			}
		} else {
			if s.UtilJ <= 0 {
				t.Errorf("cover %d has no utility", s.Node)
			}
		}
		if s.Dur <= 0 {
			t.Errorf("node %d has non-positive duration", s.Node)
		}
	}
}

func TestBuildInstanceHorizonFilter(t *testing.T) {
	nw := chainNetwork(t, 6)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	// A tiny horizon excludes slow-draining leaves.
	short, err := BuildInstance(nw, ch, BuilderConfig{HorizonSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	long, err := BuildInstance(nw, ch, BuilderConfig{HorizonSec: 60 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Sites) >= len(long.Sites) {
		t.Errorf("horizon filter inert: %d vs %d sites", len(short.Sites), len(long.Sites))
	}
}

func TestBuildInstanceBudgetOverride(t *testing.T) {
	nw := chainNetwork(t, 4)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{BudgetJ: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if in.BudgetJ != 12345 {
		t.Errorf("budget = %v", in.BudgetJ)
	}
}

func TestBuildInstanceMaxCovers(t *testing.T) {
	nw := chainNetwork(t, 8)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{MaxCovers: 1})
	if err != nil {
		t.Fatal(err)
	}
	covers := 0
	for _, s := range in.Sites {
		if !s.Mandatory {
			covers++
		}
	}
	if covers > 1 {
		t.Errorf("covers = %d, want ≤ 1", covers)
	}
}

func TestBuildInstanceMaxTargets(t *testing.T) {
	nw := chainNetwork(t, 8)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{MaxTargets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.Mandatories()); got > 2 {
		t.Errorf("targets = %d, want ≤ 2", got)
	}
}

func TestBuildInstanceSkipsDeadNodes(t *testing.T) {
	nw := chainNetwork(t, 5)
	leaf, err := nw.Node(4)
	if err != nil {
		t.Fatal(err)
	}
	leaf.Battery.SetLevel(0)
	nw.Recompute()
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range in.Sites {
		if s.Node == 4 {
			t.Error("dead node got a site")
		}
	}
}

// End-to-end: a CSA plan for a real network instance must be feasible and
// cover every reachable key node.
func TestBuildAndSolve(t *testing.T) {
	nw := chainNetwork(t, 10)
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := BuildInstance(nw, ch, BuilderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCSA(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedTargets) != 0 {
		t.Errorf("skipped targets on an easy chain: %v", res.SkippedTargets)
	}
	if res.Plan.SpoofCount != len(in.Mandatories()) {
		t.Errorf("spoofs = %d, want %d", res.Plan.SpoofCount, len(in.Mandatories()))
	}
}
