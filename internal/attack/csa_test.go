package attack

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

// attackInstance builds a random instance with mandatory targets, as the
// approximation experiments do.
func attackInstance(r *rng.Stream, sites, targets int) *Instance {
	in := randomTestInstance(r, sites)
	for i := 0; i < targets && i < sites; i++ {
		in.Sites[i].Mandatory = true
		in.Sites[i].Kind = VisitSpoof
		in.Sites[i].UtilJ = 0
		// Give targets generous windows so skeletons exist.
		in.Sites[i].Window.D = in.Sites[i].Window.R + 5e4
	}
	return in
}

func TestSolveCSAFeasible(t *testing.T) {
	r := rng.New(1).Split("csa")
	for trial := 0; trial < 40; trial++ {
		in := attackInstance(r, 14, 3)
		res, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		// The returned plan must re-evaluate cleanly.
		p, err := in.Evaluate(res.Plan.Order, false)
		if err != nil {
			t.Fatalf("trial %d: CSA plan infeasible: %v", trial, err)
		}
		if p.UtilityJ != res.Plan.UtilityJ {
			t.Fatalf("trial %d: utility mismatch", trial)
		}
		// Every non-skipped target must be in the plan.
		skipped := make(map[int]bool, len(res.SkippedTargets))
		for _, s := range res.SkippedTargets {
			skipped[s] = true
		}
		inPlan := make(map[int]bool, len(res.Plan.Order))
		for _, idx := range res.Plan.Order {
			inPlan[idx] = true
		}
		for _, m := range in.Mandatories() {
			if !skipped[m] && !inPlan[m] {
				t.Fatalf("trial %d: target %d neither planned nor skipped", trial, m)
			}
			if skipped[m] && inPlan[m] {
				t.Fatalf("trial %d: target %d both planned and skipped", trial, m)
			}
		}
	}
}

func TestSolveCSAEmptyInstance(t *testing.T) {
	in := simpleInstance()
	res, err := SolveCSA(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Order) != 0 || res.Plan.UtilityJ != 0 {
		t.Errorf("empty instance produced plan %+v", res.Plan)
	}
}

func TestSolveCSACoversOnly(t *testing.T) {
	// No targets: CSA degenerates to pure utility packing and must find
	// all easily-reachable covers under a loose budget.
	in := simpleInstance(
		site(10, 0, 1e6, 5),
		site(20, 0, 1e6, 5),
		site(30, 0, 1e6, 5),
	)
	res, err := SolveCSA(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UtilityJ != 3 {
		t.Errorf("utility = %v, want all 3 covers", res.Plan.UtilityJ)
	}
}

func TestSolveCSASkipsImpossibleTarget(t *testing.T) {
	impossible := Site{
		Pos: geom.Pt(1e6, 0), Window: Window{R: 0, D: 1}, Dur: 10,
		Mandatory: true, Kind: VisitSpoof,
	}
	in := simpleInstance(impossible, site(10, 0, 1e6, 5))
	res, err := SolveCSA(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedTargets) != 1 || res.SkippedTargets[0] != 0 {
		t.Errorf("skipped = %v", res.SkippedTargets)
	}
	if res.Plan.UtilityJ != 1 {
		t.Errorf("utility = %v", res.Plan.UtilityJ)
	}
}

// CSA's lexicographic objective: it schedules targets first. The EDF
// skeleton is itself a heuristic, so occasional instances exist where the
// exact solver fits one more target — but they must be rare, and CSA must
// never be more than one target behind.
func TestSolveCSASpoofsBeforeUtility(t *testing.T) {
	r := rng.New(2).Split("csa-lex")
	const trials = 30
	matches := 0
	for trial := 0; trial < trials; trial++ {
		in := attackInstance(r, 12, 4)
		res, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.SpoofCount >= opt.Plan.SpoofCount {
			matches++
		}
		if res.Plan.SpoofCount < opt.Plan.SpoofCount-1 {
			t.Fatalf("trial %d: CSA spoofs %d, OPT %d — more than one behind",
				trial, res.Plan.SpoofCount, opt.Plan.SpoofCount)
		}
	}
	if matches < trials*8/10 {
		t.Fatalf("CSA matched OPT's target coverage in only %d/%d trials", matches, trials)
	}
}

// The modified-greedy guarantee holds for the fixed skeleton; against the
// *global* optimum (which may pick a different skeleton) the bound is
// statistical: most instances must clear (1−1/e)/2 and the average must be
// far above it.
func TestSolveCSAApproximationBound(t *testing.T) {
	const bound = 0.316 // (1−1/e)/2
	r := rng.New(3).Split("csa-bound")
	checked, clearing := 0, 0
	var ratioSum float64
	for trial := 0; trial < 50; trial++ {
		in := attackInstance(r, 11, 2)
		res, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Plan.UtilityJ <= 0 || res.Plan.SpoofCount != opt.Plan.SpoofCount {
			continue
		}
		checked++
		ratio := res.Plan.UtilityJ / opt.Plan.UtilityJ
		ratioSum += ratio
		if ratio >= bound {
			clearing++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d comparable trials; generator too degenerate", checked)
	}
	if frac := float64(clearing) / float64(checked); frac < 0.9 {
		t.Fatalf("only %.0f%% of trials clear the bound", 100*frac)
	}
	if mean := ratioSum / float64(checked); mean < 0.75 {
		t.Fatalf("mean approximation ratio %.3f, want ≥ 0.75", mean)
	}
}

func TestInsertAt(t *testing.T) {
	s := insertAt([]int{1, 2, 3}, 1, 9)
	want := []int{1, 9, 2, 3}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertAt = %v", s)
		}
	}
	if got := insertAt(nil, 0, 5); len(got) != 1 || got[0] != 5 {
		t.Errorf("insertAt empty = %v", got)
	}
}

// The classic budgeted-greedy trap: one big cover the ratio greedy skips
// in favor of cheap trinkets. The best-single safeguard must save CSA.
func TestSafeguardAgainstGreedyTrap(t *testing.T) {
	// Budget fits EITHER the jackpot (utility 100, cost ~99) OR the
	// trinket (utility 2, cost ~1). Ratio greedy grabs the trinket first
	// (2/1 > 100/99) and then cannot afford the jackpot.
	jackpot := Site{Pos: geom.Pt(97, 0), Window: Window{R: 0, D: 1e9}, Dur: 1, UtilJ: 100, Kind: VisitCover}
	trinket := Site{Pos: geom.Pt(0.5, 0), Window: Window{R: 0, D: 1e9}, Dur: 0.3, UtilJ: 2, Kind: VisitCover}
	in := &Instance{
		Depot:     geom.Pt(0, 0),
		SpeedMps:  1,
		MoveJPerM: 1,
		RadiateW:  1,
		BudgetJ:   99,
		Sites:     []Site{jackpot, trinket},
	}
	res, err := SolveCSA(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UtilityJ < 100 {
		t.Fatalf("greedy trap sprung: utility %v, want the 100 J jackpot", res.Plan.UtilityJ)
	}
}
