package attack

import (
	"sort"

	"github.com/reprolab/wrsn-csa/internal/rng"
)

// Baseline attack planners the paper's evaluation compares CSA against.
// All share CSA's feasibility machinery (Evaluate), so differences in
// outcome are purely algorithmic.

// SolveRandom visits targets in a random feasible order and then inserts
// covers in random order at random feasible positions — the naive attacker
// with no planning. The stream makes it reproducible.
func SolveRandom(in *Instance, r *rng.Stream) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	in.EnsureDistIndex()
	res := Result{Solver: "Random"}
	targets := in.Mandatories()
	r.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	var route []int
	for _, t := range targets {
		// Random feasible position, if any.
		perm := r.Perm(len(route) + 1)
		placed := false
		for _, pos := range perm {
			cand := insertAt(append([]int(nil), route...), pos, t)
			if _, err := in.Evaluate(cand, false); err == nil {
				route = cand
				placed = true
				break
			}
		}
		if !placed {
			res.SkippedTargets = append(res.SkippedTargets, t)
		}
	}
	covers := make([]int, 0, len(in.Sites))
	for idx, s := range in.Sites {
		if !s.Mandatory && s.UtilJ > 0 {
			covers = append(covers, idx)
		}
	}
	r.Shuffle(len(covers), func(i, j int) { covers[i], covers[j] = covers[j], covers[i] })
	for _, c := range covers {
		perm := r.Perm(len(route) + 1)
		for _, pos := range perm {
			cand := insertAt(append([]int(nil), route...), pos, c)
			if _, err := in.Evaluate(cand, false); err == nil {
				route = cand
				break
			}
		}
	}
	p, err := in.Evaluate(route, false)
	if err != nil {
		return Result{}, err
	}
	res.Plan = p
	return res, nil
}

// SolveGreedyNearest is the spatial greedy: repeatedly travel to the
// nearest not-yet-visited site (targets and covers alike) whose service is
// still feasible, ignoring deadline ordering and utility. It captures the
// attacker who optimizes travel but not windows.
func SolveGreedyNearest(in *Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	in.EnsureDistIndex()
	res := Result{Solver: "GreedyNearest"}
	var route []int
	used := make(map[int]bool, len(in.Sites))
	pos := in.Depot
	for {
		best, bestD := -1, 0.0
		for idx, s := range in.Sites {
			if used[idx] {
				continue
			}
			if !s.Mandatory && s.UtilJ <= 0 {
				continue
			}
			d := pos.Dist2(s.Pos)
			if best < 0 || d < bestD {
				// Tentatively append; accept only if feasible.
				cand := append(append([]int(nil), route...), idx)
				if _, err := in.Evaluate(cand, false); err == nil {
					best, bestD = idx, d
				}
			}
		}
		if best < 0 {
			break
		}
		route = append(route, best)
		used[best] = true
		pos = in.Sites[best].Pos
	}
	for _, m := range in.Mandatories() {
		if !used[m] {
			res.SkippedTargets = append(res.SkippedTargets, m)
		}
	}
	sort.Ints(res.SkippedTargets)
	p, err := in.Evaluate(route, false)
	if err != nil {
		return Result{}, err
	}
	res.Plan = p
	return res, nil
}

// SolveDirect is the no-cover attacker: spoof the key nodes (EDF order,
// cheapest feasible insertion, compaction) and serve nothing else. It
// maximizes spoof coverage per joule but earns zero charging utility, so
// utility-based detectors flag it — the ablation showing why TIDE demands
// cover traffic.
func SolveDirect(in *Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	in.EnsureDistIndex()
	res := Result{Solver: "Direct"}
	skeleton, skipped := buildSkeleton(in)
	res.SkippedTargets = skipped
	compact(in, skeleton)
	p, err := in.Evaluate(skeleton, false)
	if err != nil {
		return Result{}, err
	}
	res.Plan = p
	return res, nil
}
