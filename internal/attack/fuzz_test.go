package attack

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// FuzzEvaluate drives Evaluate with adversarial instance parameters and
// orders: it must never panic, and any plan it accepts must satisfy the
// documented invariants (windows, budget, monotone schedule).
func FuzzEvaluate(f *testing.F) {
	f.Add(uint8(3), 10.0, 5.0, 100.0, 1e6, false)
	f.Add(uint8(5), -3.0, 0.0, 1.0, 10.0, true)
	f.Add(uint8(1), 1e9, 1e9, 1e9, 1e-9, false)
	f.Fuzz(func(t *testing.T, n uint8, x, release, dur, budget float64, reverse bool) {
		sites := int(n%8) + 1
		in := &Instance{
			Depot:     geom.Pt(0, 0),
			SpeedMps:  1,
			MoveJPerM: 1,
			RadiateW:  1,
			BudgetJ:   budget,
		}
		for i := 0; i < sites; i++ {
			in.Sites = append(in.Sites, Site{
				Pos:    geom.Pt(x+float64(i)*3, float64(i)),
				Window: Window{R: release, D: release + dur},
				Dur:    dur / 4,
				UtilJ:  1,
			})
		}
		if err := in.Validate(); err != nil {
			return // invalid instances are allowed to be rejected
		}
		ord := make([]int, sites)
		for i := range ord {
			if reverse {
				ord[i] = sites - 1 - i
			} else {
				ord[i] = i
			}
		}
		p, err := in.Evaluate(ord, false)
		if err != nil {
			return
		}
		// Accepted plans satisfy the invariants.
		if p.EnergyJ > in.BudgetJ {
			t.Fatalf("accepted plan over budget: %v > %v", p.EnergyJ, in.BudgetJ)
		}
		prevEnd := in.Start
		for _, stop := range p.Schedule {
			if stop.Begin < stop.Arrive || stop.End < stop.Begin {
				t.Fatalf("non-monotone stop %+v", stop)
			}
			if stop.Arrive < prevEnd {
				t.Fatalf("stop arrives before previous ends: %+v", stop)
			}
			s := in.Sites[stop.Site]
			if stop.Begin < s.Window.R || stop.End > s.Window.D {
				t.Fatalf("stop outside window: %+v vs %+v", stop, s.Window)
			}
			prevEnd = stop.End
		}
	})
}

// FuzzRouteOracle cross-checks the O(1) insertion oracle against the
// ground-truth Evaluate on fuzz-shaped instances.
func FuzzRouteOracle(f *testing.F) {
	f.Add(int64(1), uint8(6))
	f.Add(int64(99), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		sites := int(n%12) + 2
		in := fuzzInstance(seed, sites)
		var route []int
		for idx := range in.Sites {
			cand := append(append([]int(nil), route...), idx)
			if _, err := in.Evaluate(cand, false); err == nil {
				route = cand
			}
			if len(route) >= sites/2 {
				break
			}
		}
		rs := newRouteState(in)
		if !rs.Recompute(route) {
			t.Fatal("oracle rejected a feasible route")
		}
		used := make(map[int]bool, len(route))
		for _, idx := range route {
			used[idx] = true
		}
		for idx := range in.Sites {
			if used[idx] {
				continue
			}
			for pos := 0; pos <= len(route); pos++ {
				_, okOracle := rs.CheckInsert(pos, idx)
				cand := insertAt(append([]int(nil), route...), pos, idx)
				_, err := in.Evaluate(cand, false)
				if okOracle != (err == nil) {
					t.Fatalf("oracle=%v truth=%v (site %d pos %d, err %v)",
						okOracle, err == nil, idx, pos, err)
				}
			}
		}
	})
}

// fuzzInstance derives a deterministic instance from a fuzz seed using a
// SplitMix64 walk (no rng dependency keeps the corpus stable).
func fuzzInstance(seed int64, sites int) *Instance {
	x := uint64(seed)
	next := func() float64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64(z^(z>>31)) / (1 << 63)
	}
	in := &Instance{
		Depot:     geom.Pt(500, 500),
		SpeedMps:  5,
		MoveJPerM: 50,
		RadiateW:  50,
		BudgetJ:   1e5 + next()*2e6,
	}
	for i := 0; i < sites; i++ {
		release := next() * 5e4
		in.Sites = append(in.Sites, Site{
			Pos:    geom.Pt(next()*1000, next()*1000),
			Window: Window{R: release, D: release + 1e3 + next()*4e4},
			Dur:    300 + next()*2000,
			UtilJ:  100 + next()*10000,
		})
	}
	return in
}
