package attack

import (
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

// randomTestInstance builds an instance with randomized geometry, windows
// and durations for oracle-equivalence testing.
func randomTestInstance(r *rng.Stream, n int) *Instance {
	in := &Instance{
		Depot:     geom.Pt(500, 500),
		SpeedMps:  5,
		MoveJPerM: 50,
		RadiateW:  50,
		BudgetJ:   r.Uniform(1e5, 2e6),
	}
	for i := 0; i < n; i++ {
		release := r.Uniform(0, 5e4)
		in.Sites = append(in.Sites, Site{
			Node:   0,
			Pos:    geom.Pt(r.Uniform(0, 1000), r.Uniform(0, 1000)),
			Window: Window{R: release, D: release + r.Uniform(1e3, 4e4)},
			Dur:    r.Uniform(300, 2000),
			UtilJ:  r.Uniform(100, 10000),
		})
	}
	return in
}

// The O(1) insertion oracle must agree exactly with the ground-truth full
// Evaluate on feasibility, across random routes and candidates.
func TestRouteStateMatchesEvaluate(t *testing.T) {
	r := rng.New(99).Split("route-oracle")
	agree, feasibleSeen, infeasibleSeen := 0, 0, 0
	for trial := 0; trial < 60; trial++ {
		in := randomTestInstance(r, 12)
		// Grow a random feasible base route.
		var route []int
		for idx := range in.Sites {
			cand := append(append([]int(nil), route...), idx)
			if _, err := in.Evaluate(cand, false); err == nil {
				route = cand
			}
			if len(route) >= 6 {
				break
			}
		}
		rs := newRouteState(in)
		if !rs.Recompute(route) {
			t.Fatalf("trial %d: feasible base route rejected by oracle", trial)
		}
		base, err := in.Evaluate(route, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rs.EnergyJ()-base.EnergyJ) > 1e-6 {
			t.Fatalf("trial %d: oracle energy %v vs evaluate %v", trial, rs.EnergyJ(), base.EnergyJ)
		}
		used := make(map[int]bool, len(route))
		for _, idx := range route {
			used[idx] = true
		}
		for idx := range in.Sites {
			if used[idx] {
				continue
			}
			for pos := 0; pos <= len(route); pos++ {
				cost, okOracle := rs.CheckInsert(pos, idx)
				cand := insertAt(append([]int(nil), route...), pos, idx)
				p, err := in.Evaluate(cand, false)
				okTruth := err == nil
				if okOracle != okTruth {
					t.Fatalf("trial %d: insert site %d at %d: oracle=%v truth=%v (err=%v)",
						trial, idx, pos, okOracle, okTruth, err)
				}
				if okOracle {
					feasibleSeen++
					if truthCost := p.EnergyJ - base.EnergyJ; math.Abs(cost-truthCost) > 1e-6 {
						t.Fatalf("trial %d: cost %v vs truth %v", trial, cost, truthCost)
					}
				} else {
					infeasibleSeen++
				}
				agree++
			}
		}
	}
	if feasibleSeen == 0 || infeasibleSeen == 0 {
		t.Fatalf("degenerate coverage: %d feasible, %d infeasible of %d checks",
			feasibleSeen, infeasibleSeen, agree)
	}
}

func TestRouteStateRejectsInfeasibleRoute(t *testing.T) {
	in := simpleInstance(site(10, 0, 12, 5)) // cannot finish inside window
	rs := newRouteState(in)
	if rs.Recompute([]int{0}) {
		t.Error("oracle accepted a window-violating route")
	}
}

func TestRouteStateEmptyRoute(t *testing.T) {
	in := simpleInstance(site(10, 0, 100, 5))
	rs := newRouteState(in)
	if !rs.Recompute(nil) {
		t.Fatal("empty route rejected")
	}
	cost, ok := rs.CheckInsert(0, 0)
	if !ok {
		t.Fatal("insertion into empty route rejected")
	}
	// 10 m × 1 J/m + 5 s × 1 W.
	if math.Abs(cost-15) > 1e-9 {
		t.Errorf("cost = %v, want 15", cost)
	}
}

func TestRouteStateBudget(t *testing.T) {
	in := simpleInstance(site(10, 0, 100, 5), site(-10, 0, 100, 5))
	in.BudgetJ = 16 // first insertion costs 15; a second cannot fit
	rs := newRouteState(in)
	if !rs.Recompute([]int{0}) {
		t.Fatal("base route rejected")
	}
	if _, ok := rs.CheckInsert(1, 1); ok {
		t.Error("over-budget insertion accepted")
	}
}
