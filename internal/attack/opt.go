package attack

import (
	"fmt"
	"math/bits"
)

// MaxExactSites bounds the exact solver's instance size; the DP is
// exponential in the site count.
const MaxExactSites = 14

// SolveExact computes the optimal TIDE solution by dynamic programming
// over (visited subset, last site) states with Pareto frontiers of
// (finish time, travel distance). Both coordinates are monotone — finishing
// earlier can only help later windows, traveling less can only help the
// budget — so the frontier is lossless and the result is exact.
//
// The objective mirrors CSA's lexicographic goal: maximize the number of
// mandatory sites spoofed, then the cover utility. Instances larger than
// MaxExactSites are rejected.
func SolveExact(in *Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	in.EnsureDistIndex()
	n := len(in.Sites)
	if n > MaxExactSites {
		return Result{}, fmt.Errorf("attack: exact solver limited to %d sites, got %d", MaxExactSites, n)
	}
	res := Result{Solver: "OPT"}
	if n == 0 {
		p, err := in.Evaluate(nil, false)
		if err != nil {
			return Result{}, err
		}
		res.Plan = p
		return res, nil
	}

	// Precompute per-subset radiation energy and per-subset utility and
	// mandatory counts.
	radiate := make([]float64, 1<<n)
	util := make([]float64, 1<<n)
	mand := make([]int, 1<<n)
	for set := 1; set < 1<<n; set++ {
		low := set & (-set)
		i := bits.TrailingZeros(uint(set))
		prev := set &^ low
		pw := in.Sites[i].PowerW
		if pw == 0 {
			pw = in.RadiateW
		}
		radiate[set] = radiate[prev] + in.Sites[i].Dur*pw
		if in.Sites[i].Mandatory {
			mand[set] = mand[prev] + 1
			util[set] = util[prev]
		} else {
			mand[set] = mand[prev]
			util[set] = util[prev] + in.Sites[i].UtilJ
		}
	}

	type state struct {
		time, travel float64
		prevSet      int
		prevLast     int8
	}
	// frontier[set][last] holds non-dominated states.
	frontier := make([][][]state, 1<<n)
	for set := range frontier {
		frontier[set] = make([][]state, n)
	}

	dominatesOrEq := func(a, b state) bool {
		return a.time <= b.time && a.travel <= b.travel
	}
	addState := func(set, last int, st state) bool {
		fr := frontier[set][last]
		for _, ex := range fr {
			if dominatesOrEq(ex, st) {
				return false
			}
		}
		out := fr[:0]
		for _, ex := range fr {
			if !dominatesOrEq(st, ex) {
				out = append(out, ex)
			}
		}
		frontier[set][last] = append(out, st)
		return true
	}

	// Seed: depot → each site.
	for j, s := range in.Sites {
		d := in.Depot.Dist(s.Pos)
		begin := max(in.Start+d/in.SpeedMps, s.Window.R)
		end := begin + s.Dur
		if end > s.Window.D {
			continue
		}
		set := 1 << j
		if d*in.MoveJPerM+radiate[set] > in.BudgetJ {
			continue
		}
		addState(set, j, state{time: end, travel: d, prevSet: 0, prevLast: -1})
	}

	// Expand subsets in increasing popcount order (any increasing-set
	// iteration works since transitions only grow the set).
	for set := 1; set < 1<<n; set++ {
		for last := 0; last < n; last++ {
			if set&(1<<last) == 0 {
				continue
			}
			for _, st := range frontier[set][last] {
				for j := 0; j < n; j++ {
					if set&(1<<j) != 0 {
						continue
					}
					sj := in.Sites[j]
					d := in.Sites[last].Pos.Dist(sj.Pos)
					begin := max(st.time+d/in.SpeedMps, sj.Window.R)
					end := begin + sj.Dur
					if end > sj.Window.D {
						continue
					}
					nset := set | 1<<j
					travel := st.travel + d
					if travel*in.MoveJPerM+radiate[nset] > in.BudgetJ {
						continue
					}
					addState(nset, j, state{time: end, travel: travel, prevSet: set, prevLast: int8(last)})
				}
			}
		}
	}

	// Pick the lexicographically best feasible terminal subset.
	bestSet, bestLast := -1, -1
	var bestState state
	better := func(set int, cand state, curSet int) bool {
		if curSet < 0 {
			return true
		}
		if mand[set] != mand[curSet] {
			return mand[set] > mand[curSet]
		}
		if util[set] != util[curSet] {
			return util[set] > util[curSet]
		}
		// Tie-break on energy for determinism.
		return cand.travel < bestState.travel
	}
	for set := 1; set < 1<<n; set++ {
		for last := 0; last < n; last++ {
			for _, st := range frontier[set][last] {
				if better(set, st, bestSet) {
					bestSet, bestLast, bestState = set, last, st
				}
			}
		}
	}
	if bestSet < 0 {
		// Nothing schedulable at all; the empty plan is optimal.
		p, err := in.Evaluate(nil, false)
		if err != nil {
			return Result{}, err
		}
		res.Plan = p
		for _, m := range in.Mandatories() {
			res.SkippedTargets = append(res.SkippedTargets, m)
		}
		return res, nil
	}

	// Reconstruct the route. The stored state may not be the exact one on
	// the best frontier chain (addState prunes), so walk back via
	// prevSet/prevLast which we kept per state.
	order := make([]int, 0, bits.OnesCount(uint(bestSet)))
	set, last, st := bestSet, bestLast, bestState
	for last >= 0 {
		order = append(order, last)
		pSet, pLast := st.prevSet, int(st.prevLast)
		if pLast < 0 {
			break
		}
		// Find the predecessor state that produced st. Any state on the
		// predecessor frontier that reproduces st's timing works.
		found := false
		for _, cand := range frontier[pSet][pLast] {
			d := in.Sites[pLast].Pos.Dist(in.Sites[last].Pos)
			begin := max(cand.time+d/in.SpeedMps, in.Sites[last].Window.R)
			if begin+in.Sites[last].Dur == st.time && cand.travel+d == st.travel {
				set, last, st = pSet, pLast, cand
				found = true
				break
			}
		}
		if !found {
			// Fall back to the first predecessor state; route subset is
			// still correct and Evaluate re-derives exact timing.
			set, last, st = pSet, pLast, frontier[pSet][pLast][0]
		}
	}
	_ = set
	// Reverse into visit order.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	p, err := in.Evaluate(order, false)
	if err != nil {
		return Result{}, fmt.Errorf("attack: exact solver reconstruction: %w", err)
	}
	res.Plan = p
	for _, m := range in.Mandatories() {
		if bestSet&(1<<m) == 0 {
			res.SkippedTargets = append(res.SkippedTargets, m)
		}
	}
	return res, nil
}
