package attack

import (
	"fmt"
	"sort"
)

// Result is a solved TIDE instance: the plan plus solver bookkeeping.
type Result struct {
	Plan Plan
	// SkippedTargets lists mandatory sites the solver could not fit
	// (window or budget conflicts make full coverage impossible); the
	// plan spoofs every other key node.
	SkippedTargets []int
	// Solver names the algorithm for reports.
	Solver string
}

// SolveCSA runs the paper's CSA approximation algorithm:
//
//  1. Skeleton — insert the mandatory (key-node) stops in
//     earliest-deadline-first order, each at its cheapest window-feasible
//     position; unfittable targets are skipped (recorded), never silently
//     dropped mid-plan.
//  2. Compaction — relocate single stops (or-opt) while feasibility holds
//     to shed travel energy, freeing budget for cover traffic.
//  3. Cover packing — cost-benefit greedy: repeatedly insert the optional
//     request with the best marginal utility per marginal joule at its
//     best feasible position, until nothing fits.
//  4. Safeguard — compare against the best single-cover plan and keep the
//     better, the classic modified greedy that turns the ratio heuristic
//     into a constant-factor guarantee for budgeted coverage.
//
// The returned plan spoofs the maximum-cardinality prefix of targets the
// skeleton could schedule and earns at least a constant fraction of the
// optimal cover utility for that skeleton (≥ (1−1/e)/2 in the budgeted
// analysis; measured empirically against OPT in the evaluation).
func SolveCSA(in *Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	in.EnsureDistIndex()
	res := Result{Solver: "CSA"}

	skeleton, skipped := buildSkeleton(in)
	res.SkippedTargets = skipped
	compact(in, skeleton)

	greedyOrd := packCovers(in, append([]int(nil), skeleton...))
	greedyPlan, err := in.Evaluate(greedyOrd, false)
	if err != nil {
		return Result{}, fmt.Errorf("attack: CSA produced invalid plan: %w", err)
	}

	// Modified-greedy safeguard: best single cover appended to the bare
	// skeleton can beat the ratio greedy when one huge request exists.
	if single, ok := bestSingleCover(in, skeleton); ok && single.UtilityJ > greedyPlan.UtilityJ {
		greedyPlan = single
	}
	res.Plan = greedyPlan
	return res, nil
}

// buildSkeleton inserts mandatory sites EDF-first at cheapest feasible
// positions. It returns the route and the indices it could not place.
func buildSkeleton(in *Instance) (route []int, skipped []int) {
	targets := in.Mandatories()
	sort.Slice(targets, func(a, b int) bool {
		wa, wb := in.Sites[targets[a]].Window, in.Sites[targets[b]].Window
		if wa.D != wb.D {
			return wa.D < wb.D
		}
		return targets[a] < targets[b]
	})
	route = make([]int, 0, len(targets))
	for _, t := range targets {
		if pos, ok := cheapestFeasibleInsertion(in, route, t); ok {
			route = insertAt(route, pos, t)
		} else {
			skipped = append(skipped, t)
		}
	}
	return route, skipped
}

// cheapestFeasibleInsertion finds the position (0..len(route)) where
// inserting site idx keeps the route feasible at minimal added energy.
func cheapestFeasibleInsertion(in *Instance, route []int, idx int) (int, bool) {
	baseEnergy := 0.0
	if len(route) > 0 {
		if p, err := in.Evaluate(route, false); err == nil {
			baseEnergy = p.EnergyJ
		}
	}
	bestPos, bestCost, found := 0, 0.0, false
	cand := make([]int, 0, len(route)+1)
	for pos := 0; pos <= len(route); pos++ {
		cand = cand[:0]
		cand = append(cand, route[:pos]...)
		cand = append(cand, idx)
		cand = append(cand, route[pos:]...)
		p, err := in.Evaluate(cand, false)
		if err != nil {
			continue
		}
		cost := p.EnergyJ - baseEnergy
		if !found || cost < bestCost {
			bestPos, bestCost, found = pos, cost, true
		}
	}
	return bestPos, found
}

// compact applies or-opt relocation: move single stops to cheaper feasible
// positions until no improving move remains (bounded passes).
func compact(in *Instance, route []int) {
	if len(route) < 3 {
		return
	}
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		cur, err := in.Evaluate(route, false)
		if err != nil {
			return
		}
		for i := 0; i < len(route); i++ {
			moved := route[i]
			rest := append(append([]int(nil), route[:i]...), route[i+1:]...)
			for pos := 0; pos <= len(rest); pos++ {
				if pos == i {
					continue
				}
				cand := insertAt(append([]int(nil), rest...), pos, moved)
				p, err := in.Evaluate(cand, false)
				if err == nil && p.EnergyJ < cur.EnergyJ-1e-9 {
					copy(route, cand)
					cur = p
					improved = true
					break
				}
			}
		}
		if !improved {
			return
		}
	}
}

// packCovers greedily inserts optional sites by marginal utility per
// marginal joule. The routeState oracle makes each candidate check O(1),
// keeping the whole pack O(C²·L) instead of O(C²·L²).
func packCovers(in *Instance, route []int) []int {
	used := make(map[int]bool, len(route))
	for _, idx := range route {
		used[idx] = true
	}
	rs := newRouteState(in)
	for {
		if !rs.Recompute(route) {
			return route
		}
		bestIdx, bestPos, bestRatio := -1, 0, 0.0
		for idx := range in.Sites {
			s := &in.Sites[idx]
			if s.Mandatory || used[idx] || s.UtilJ <= 0 {
				continue
			}
			for pos := 0; pos <= len(route); pos++ {
				cost, ok := rs.CheckInsert(pos, idx)
				if !ok {
					continue
				}
				if cost <= 0 {
					cost = 1e-9 // free insertion: effectively infinite ratio
				}
				ratio := s.UtilJ / cost
				if ratio > bestRatio {
					bestIdx, bestPos, bestRatio = idx, pos, ratio
				}
			}
		}
		if bestIdx < 0 {
			return route
		}
		route = insertAt(route, bestPos, bestIdx)
		used[bestIdx] = true
	}
}

// bestSingleCover returns the best plan consisting of the skeleton plus
// exactly one cover, or ok=false when no cover fits.
func bestSingleCover(in *Instance, skeleton []int) (Plan, bool) {
	rs := newRouteState(in)
	if !rs.Recompute(skeleton) {
		return Plan{}, false
	}
	bestIdx, bestPos := -1, 0
	var bestUtil float64
	for idx := range in.Sites {
		s := &in.Sites[idx]
		if s.Mandatory || s.UtilJ <= 0 || s.UtilJ <= bestUtil {
			continue
		}
		for pos := 0; pos <= len(skeleton); pos++ {
			if _, ok := rs.CheckInsert(pos, idx); ok {
				bestIdx, bestPos, bestUtil = idx, pos, s.UtilJ
				break
			}
		}
	}
	if bestIdx < 0 {
		return Plan{}, false
	}
	cand := insertAt(append([]int(nil), skeleton...), bestPos, bestIdx)
	p, err := in.Evaluate(cand, false)
	if err != nil {
		return Plan{}, false
	}
	return p, true
}

func insertAt(s []int, pos, v int) []int {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}
