package attack

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

// bruteForce enumerates every permutation of every subset and returns the
// lexicographically best (spoofs, utility) plan — the reference the DP is
// validated against. Exponential; callers keep n ≤ 7.
func bruteForce(t *testing.T, in *Instance) Plan {
	t.Helper()
	n := len(in.Sites)
	var best Plan
	found := false
	var rec func(remaining, route []int)
	rec = func(remaining, route []int) {
		if p, err := in.Evaluate(route, false); err == nil {
			if !found ||
				p.SpoofCount > best.SpoofCount ||
				(p.SpoofCount == best.SpoofCount && p.UtilityJ > best.UtilityJ) {
				best, found = p, true
			}
		}
		for i, idx := range remaining {
			rest := make([]int, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			rec(rest, append(route, idx))
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(all, nil)
	return best
}

func TestSolveExactMatchesBruteForce(t *testing.T) {
	r := rng.New(4).Split("opt-brute")
	for trial := 0; trial < 12; trial++ {
		in := attackInstance(r, 6, 2)
		opt, err := SolveExact(in)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, in)
		if opt.Plan.SpoofCount != want.SpoofCount {
			t.Fatalf("trial %d: DP spoofs %d, brute force %d", trial, opt.Plan.SpoofCount, want.SpoofCount)
		}
		if diff := opt.Plan.UtilityJ - want.UtilityJ; diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("trial %d: DP utility %v, brute force %v", trial, opt.Plan.UtilityJ, want.UtilityJ)
		}
		// The DP's own plan must re-evaluate feasibly.
		if _, err := in.Evaluate(opt.Plan.Order, false); err != nil {
			t.Fatalf("trial %d: OPT plan infeasible: %v", trial, err)
		}
	}
}

func TestSolveExactSizeLimit(t *testing.T) {
	r := rng.New(5).Split("opt-limit")
	in := randomTestInstance(r, MaxExactSites+1)
	if _, err := SolveExact(in); err == nil {
		t.Error("oversize instance accepted")
	}
}

func TestSolveExactEmpty(t *testing.T) {
	in := simpleInstance()
	res, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Order) != 0 {
		t.Errorf("empty instance plan = %v", res.Plan.Order)
	}
}

func TestSolveExactNothingSchedulable(t *testing.T) {
	in := simpleInstance(Site{
		Pos: geom.Pt(1e5, 0), Window: Window{R: 0, D: 1}, Dur: 5,
		Mandatory: true, Kind: VisitSpoof,
	})
	res, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Order) != 0 || len(res.SkippedTargets) != 1 {
		t.Errorf("unschedulable instance: plan=%v skipped=%v", res.Plan.Order, res.SkippedTargets)
	}
}

func TestSolveExactKnownOptimum(t *testing.T) {
	// Two covers, budget fits only one; the bigger must win.
	small := site(10, 0, 1e6, 5)
	small.UtilJ = 1
	big := site(-10, 0, 1e6, 5)
	big.UtilJ = 10
	in := simpleInstance(small, big)
	in.BudgetJ = 16 // one visit = 10 travel + 5 radiate = 15
	res, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UtilityJ != 10 {
		t.Errorf("utility = %v, want 10", res.Plan.UtilityJ)
	}
}
