package attack

import (
	"errors"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

// simpleInstance builds a hand-checkable instance: depot at origin, sites
// on the x-axis, 1 m/s, 1 J/m, 1 W radiation.
func simpleInstance(sites ...Site) *Instance {
	return &Instance{
		Depot:     geom.Pt(0, 0),
		SpeedMps:  1,
		MoveJPerM: 1,
		RadiateW:  1,
		BudgetJ:   1e9,
		Sites:     sites,
	}
}

func site(x float64, r, d, dur float64) Site {
	return Site{Pos: geom.Pt(x, 0), Window: Window{R: r, D: d}, Dur: dur, Kind: VisitCover, UtilJ: 1}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{R: 10, D: 30}
	if !w.Contains(10, 20) {
		t.Error("exact fit rejected")
	}
	if w.Contains(9.99, 1) {
		t.Error("early start accepted")
	}
	if w.Contains(25, 10) {
		t.Error("late finish accepted")
	}
	if s := w.Slack(5); s != 15 {
		t.Errorf("slack = %v", s)
	}
}

func TestEvaluateTiming(t *testing.T) {
	in := simpleInstance(
		site(10, 0, 100, 5),  // arrive t=10, begin 10, end 15
		site(20, 30, 100, 5), // arrive 25, wait to 30, end 35
	)
	p, err := in.Evaluate([]int{0, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := p.Schedule[0], p.Schedule[1]
	if s0.Arrive != 10 || s0.Begin != 10 || s0.End != 15 || s0.WaitSec != 0 {
		t.Errorf("stop 0 = %+v", s0)
	}
	if s1.Arrive != 25 || s1.Begin != 30 || s1.End != 35 || s1.WaitSec != 5 {
		t.Errorf("stop 1 = %+v", s1)
	}
	if p.TravelM != 20 {
		t.Errorf("travel = %v", p.TravelM)
	}
	// Energy = 20 J travel + 10 s × 1 W radiation.
	if p.EnergyJ != 30 {
		t.Errorf("energy = %v", p.EnergyJ)
	}
	if p.UtilityJ != 2 {
		t.Errorf("utility = %v", p.UtilityJ)
	}
}

func TestEvaluateWindowViolation(t *testing.T) {
	in := simpleInstance(site(10, 0, 12, 5)) // arrives at 10, ends 15 > D=12
	_, err := in.Evaluate([]int{0}, false)
	if !errors.Is(err, ErrWindowViolated) {
		t.Errorf("err = %v, want ErrWindowViolated", err)
	}
}

func TestEvaluateBudget(t *testing.T) {
	in := simpleInstance(site(10, 0, 100, 5))
	in.BudgetJ = 14 // needs 10 travel + 5 radiate = 15
	_, err := in.Evaluate([]int{0}, false)
	if !errors.Is(err, ErrOverBudget) {
		t.Errorf("err = %v, want ErrOverBudget", err)
	}
}

func TestEvaluateDuplicates(t *testing.T) {
	in := simpleInstance(site(10, 0, 100, 1))
	_, err := in.Evaluate([]int{0, 0}, false)
	if !errors.Is(err, ErrDuplicateSite) {
		t.Errorf("err = %v, want ErrDuplicateSite", err)
	}
	if _, err := in.Evaluate([]int{5}, false); err == nil {
		t.Error("out-of-range site accepted")
	}
}

func TestEvaluateMandatoryCheck(t *testing.T) {
	s := site(10, 0, 100, 1)
	s.Mandatory = true
	s.Kind = VisitSpoof
	s.UtilJ = 0
	in := simpleInstance(s, site(20, 0, 100, 1))
	_, err := in.Evaluate([]int{1}, true)
	if !errors.Is(err, ErrMissingMandatory) {
		t.Errorf("err = %v, want ErrMissingMandatory", err)
	}
	p, err := in.Evaluate([]int{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.SpoofCount != 1 {
		t.Errorf("spoof count = %d", p.SpoofCount)
	}
	if !in.Feasible([]int{0, 1}) || in.Feasible([]int{1}) {
		t.Error("Feasible disagrees with Evaluate")
	}
}

func TestPerSitePower(t *testing.T) {
	s := site(10, 0, 100, 10)
	s.PowerW = 0.1 // cheap spoof-grade transmission
	in := simpleInstance(s)
	p, err := in.Evaluate([]int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	// 10 travel + 10 s × 0.1 W.
	if math.Abs(p.EnergyJ-11) > 1e-12 {
		t.Errorf("energy = %v, want 11", p.EnergyJ)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Instance{
		{SpeedMps: 0, BudgetJ: 1},
		{SpeedMps: 1, MoveJPerM: -1, BudgetJ: 1},
		{SpeedMps: 1, BudgetJ: 0},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
	in := simpleInstance(Site{Window: Window{R: 5, D: 1}})
	if err := in.Validate(); err == nil {
		t.Error("inverted window accepted")
	}
	in = simpleInstance(Site{Dur: -1, Window: Window{R: 0, D: 1}})
	if err := in.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestMandatories(t *testing.T) {
	a := site(1, 0, 10, 1)
	b := site(2, 0, 10, 1)
	b.Mandatory = true
	in := simpleInstance(a, b)
	m := in.Mandatories()
	if len(m) != 1 || m[0] != 1 {
		t.Errorf("mandatories = %v", m)
	}
}

func TestVisitKindString(t *testing.T) {
	if VisitSpoof.String() != "spoof" || VisitCover.String() != "cover" {
		t.Error("kind strings wrong")
	}
	if VisitKind(42).String() == "" {
		t.Error("unknown kind empty")
	}
}
