package attack

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/rng"
)

func TestPolishNeverWorsens(t *testing.T) {
	r := rng.New(21).Split("polish")
	for trial := 0; trial < 30; trial++ {
		in := attackInstance(r, 12, 3)
		plain, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		polished, err := SolveCSAPolished(in)
		if err != nil {
			t.Fatal(err)
		}
		if polished.Plan.SpoofCount < plain.Plan.SpoofCount {
			t.Fatalf("trial %d: polish lost targets: %d -> %d",
				trial, plain.Plan.SpoofCount, polished.Plan.SpoofCount)
		}
		if polished.Plan.UtilityJ < plain.Plan.UtilityJ-1e-9 {
			t.Fatalf("trial %d: polish lost utility: %v -> %v",
				trial, plain.Plan.UtilityJ, polished.Plan.UtilityJ)
		}
		// The polished plan must re-evaluate cleanly.
		if _, err := in.Evaluate(polished.Plan.Order, false); err != nil {
			t.Fatalf("trial %d: polished plan infeasible: %v", trial, err)
		}
	}
}

func TestPolishImprovesSomething(t *testing.T) {
	// Across a batch, the local search should find at least one strict
	// improvement (either lower energy at equal utility, or more covers).
	r := rng.New(22).Split("polish-gain")
	improvedUtility, improvedEnergy := 0, 0
	for trial := 0; trial < 40; trial++ {
		in := attackInstance(r, 14, 3)
		plain, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		polished, err := SolveCSAPolished(in)
		if err != nil {
			t.Fatal(err)
		}
		if polished.Plan.UtilityJ > plain.Plan.UtilityJ+1e-9 {
			improvedUtility++
		} else if polished.Plan.EnergyJ < plain.Plan.EnergyJ-1e-9 {
			improvedEnergy++
		}
	}
	if improvedUtility+improvedEnergy == 0 {
		t.Error("polish never improved anything across 40 instances")
	}
}

func TestPolishPlanOnInfeasibleRoute(t *testing.T) {
	in := simpleInstance(site(10, 0, 12, 5)) // inherently infeasible stop
	out := PolishPlan(in, []int{0})
	if len(out) != 1 || out[0] != 0 {
		t.Errorf("polish mangled an infeasible route: %v", out)
	}
}

func TestPolishEmpty(t *testing.T) {
	in := simpleInstance()
	if out := PolishPlan(in, nil); len(out) != 0 {
		t.Errorf("polish invented stops: %v", out)
	}
}
