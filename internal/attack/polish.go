package attack

// Plan polishing: a local-search post-pass over the full route (targets
// and covers alike). Or-opt relocations shed travel energy; the savings
// are immediately reinvested by another cover-packing pass. This is the
// natural "improve until no move helps" extension of the paper's
// construct-only algorithm.

// PolishPlan improves the route by single-stop relocations that strictly
// reduce energy while keeping every window and the budget satisfied, then
// re-packs covers with whatever budget the shorter route freed. It
// returns the improved route (the input slice is not modified).
func PolishPlan(in *Instance, route []int) []int {
	in.EnsureDistIndex()
	best := append([]int(nil), route...)
	rs := newRouteState(in)
	cur, err := in.Evaluate(best, false)
	if err != nil {
		return best // not a feasible route; nothing to polish
	}
	const maxPasses = 6
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < len(best); i++ {
			moved := best[i]
			without := make([]int, 0, len(best)-1)
			without = append(without, best[:i]...)
			without = append(without, best[i+1:]...)
			if !rs.Recompute(without) {
				continue // cannot happen for window constraints, but stay safe
			}
			withoutEnergy := rs.EnergyJ()
			bestPos, bestCost, found := -1, 0.0, false
			for pos := 0; pos <= len(without); pos++ {
				cost, ok := rs.CheckInsert(pos, moved)
				if !ok {
					continue
				}
				if !found || cost < bestCost {
					bestPos, bestCost, found = pos, cost, true
				}
			}
			if !found {
				continue
			}
			if withoutEnergy+bestCost < cur.EnergyJ-1e-9 {
				cand := insertAt(without, bestPos, moved)
				p, err := in.Evaluate(cand, false)
				if err != nil {
					continue
				}
				best, cur = cand, p
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Reinvest the savings: the shorter route may admit covers that did
	// not fit before.
	return packCovers(in, best)
}

// SolveCSAPolished runs CSA and then the local-search polish. Same
// guarantees as SolveCSA (polish only ever improves the objective); the
// extra cost is a handful of O(L²) passes.
func SolveCSAPolished(in *Instance) (Result, error) {
	res, err := SolveCSA(in)
	if err != nil {
		return Result{}, err
	}
	polished := PolishPlan(in, res.Plan.Order)
	p, err := in.Evaluate(polished, false)
	if err != nil {
		// Polish produced something Evaluate rejects (should not happen);
		// fall back to the unpolished plan.
		return res, nil
	}
	if p.UtilityJ >= res.Plan.UtilityJ && p.SpoofCount >= res.Plan.SpoofCount {
		res.Plan = p
		res.Solver = "CSA+polish"
	}
	return res, nil
}
