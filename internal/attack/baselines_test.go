package attack

import (
	"testing"

	"github.com/reprolab/wrsn-csa/internal/rng"
)

func TestSolveRandomFeasibleAndDeterministic(t *testing.T) {
	r := rng.New(6).Split("rand-base")
	for trial := 0; trial < 20; trial++ {
		in := attackInstance(r, 10, 3)
		res, err := SolveRandom(in, rng.New(7).Split("solver"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Evaluate(res.Plan.Order, false); err != nil {
			t.Fatalf("trial %d: random plan infeasible: %v", trial, err)
		}
		// Same seed → same plan.
		res2, err := SolveRandom(in, rng.New(7).Split("solver"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.Plan.Order) != len(res.Plan.Order) {
			t.Fatalf("trial %d: random solver nondeterministic", trial)
		}
		for i := range res.Plan.Order {
			if res.Plan.Order[i] != res2.Plan.Order[i] {
				t.Fatalf("trial %d: random solver nondeterministic at %d", trial, i)
			}
		}
	}
}

func TestSolveGreedyNearestFeasible(t *testing.T) {
	r := rng.New(8).Split("greedy-base")
	for trial := 0; trial < 20; trial++ {
		in := attackInstance(r, 10, 3)
		res, err := SolveGreedyNearest(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Evaluate(res.Plan.Order, false); err != nil {
			t.Fatalf("trial %d: greedy plan infeasible: %v", trial, err)
		}
	}
}

func TestSolveDirectHasNoCovers(t *testing.T) {
	r := rng.New(9).Split("direct-base")
	for trial := 0; trial < 20; trial++ {
		in := attackInstance(r, 10, 3)
		res, err := SolveDirect(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.UtilityJ != 0 {
			t.Fatalf("trial %d: Direct earned utility %v", trial, res.Plan.UtilityJ)
		}
		for _, idx := range res.Plan.Order {
			if !in.Sites[idx].Mandatory {
				t.Fatalf("trial %d: Direct visited cover %d", trial, idx)
			}
		}
		if _, err := in.Evaluate(res.Plan.Order, false); err != nil {
			t.Fatalf("trial %d: Direct plan infeasible: %v", trial, err)
		}
	}
}

// CSA must dominate the baselines on its own objective across a batch of
// instances (allowing ties).
func TestCSADominatesBaselines(t *testing.T) {
	r := rng.New(10).Split("dominate")
	var csaWins, total int
	for trial := 0; trial < 25; trial++ {
		in := attackInstance(r, 12, 2)
		csa, err := SolveCSA(in)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := SolveGreedyNearest(in)
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := SolveRandom(in, rng.New(uint64(trial)).Split("s"))
		if err != nil {
			t.Fatal(err)
		}
		total++
		better := func(a, b Plan) bool {
			if a.SpoofCount != b.SpoofCount {
				return a.SpoofCount > b.SpoofCount
			}
			return a.UtilityJ >= b.UtilityJ
		}
		if better(csa.Plan, grd.Plan) && better(csa.Plan, rnd.Plan) {
			csaWins++
		}
	}
	if csaWins < total*7/10 {
		t.Fatalf("CSA dominated baselines in only %d/%d trials", csaWins, total)
	}
}
