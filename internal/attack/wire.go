package attack

import (
	"encoding/json"
	"math"
)

// windowWire is Window's JSON form. Cover sites carry open service
// windows whose deadline is +Inf, which encoding/json cannot represent,
// so D rides as a pointer that is omitted when the deadline is infinite.
type windowWire struct {
	R float64  `json:"r"`
	D *float64 `json:"d,omitempty"`
}

// MarshalJSON encodes the window with an omitted deadline meaning +Inf.
func (w Window) MarshalJSON() ([]byte, error) {
	ww := windowWire{R: w.R}
	if !math.IsInf(w.D, 1) {
		d := w.D
		ww.D = &d
	}
	return json.Marshal(ww)
}

// UnmarshalJSON decodes the window, mapping an absent deadline to +Inf.
func (w *Window) UnmarshalJSON(data []byte) error {
	var ww windowWire
	if err := json.Unmarshal(data, &ww); err != nil {
		return err
	}
	w.R = ww.R
	w.D = math.Inf(1)
	if ww.D != nil {
		w.D = *ww.D
	}
	return nil
}
