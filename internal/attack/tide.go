// Package attack implements the paper's contribution: the charging
// spoofing attack (CSA) planner. The planner solves TIDE — charging
// uTility optImization with key noDe timE window constraints:
//
//	Given a mobile charger with an energy budget, a set of key nodes that
//	must each receive a spoofed "charging" visit inside its time window
//	(after it requests charging, before it dies), and a set of ordinary
//	charging requests whose genuine service earns charging utility (the
//	cover that keeps network-side detectors quiet) — find a route and
//	schedule that spoofs every key node in its window while maximizing the
//	cover utility served, within the budget.
//
// TIDE contains the TSP with time windows and the orienteering problem, so
// it is NP-hard; CSA is the paper's approximation algorithm. This package
// also provides the baselines it is evaluated against and an exact solver
// for small instances used to measure the empirical approximation ratio.
package attack

import (
	"errors"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// VisitKind says why the charger stops at a site.
type VisitKind int

// Visit kinds.
const (
	// VisitSpoof is a mandatory key-node spoofing stop.
	VisitSpoof VisitKind = iota + 1
	// VisitCover is an optional genuine charging stop serving an ordinary
	// request.
	VisitCover
)

// String implements fmt.Stringer.
func (k VisitKind) String() string {
	switch k {
	case VisitSpoof:
		return "spoof"
	case VisitCover:
		return "cover"
	default:
		return fmt.Sprintf("visit(%d)", int(k))
	}
}

// Site is one candidate stop in a TIDE instance.
type Site struct {
	// Node identifies the sensor node at the site.
	Node wrsn.NodeID
	// Pos is the docking position for the stop.
	Pos geom.Point
	// Window is the service window: service must start at or after
	// Window.R and finish by Window.D. The charger may arrive early and
	// wait.
	Window Window
	// Dur is the on-site radiating duration in seconds. For spoof stops
	// this matches the length of a genuine recharge so the visit looks
	// normal; for cover stops it is the time to deliver the request.
	Dur float64
	// PowerW is the electrical power drawn while serving this site; zero
	// means the instance-wide RadiateW. Spoof stops draw a small fraction
	// of a genuine session's power (the null is transmitted at reduced
	// gain), which the builder reflects here.
	PowerW float64
	// UtilJ is the charging utility earned by serving the site: the
	// request's energy need for cover stops, 0 for spoof stops (spoofing
	// delivers nothing).
	UtilJ float64
	// Mandatory marks key-node stops that every feasible plan must
	// include.
	Mandatory bool
	// Kind tags the stop.
	Kind VisitKind
}

// Window is a service time window [R, D] in absolute seconds.
type Window struct {
	R, D float64
}

// Contains reports whether a service of length dur starting at t fits.
func (w Window) Contains(t, dur float64) bool {
	return t >= w.R && t+dur <= w.D
}

// Slack returns D − R − dur, the scheduling freedom of a service of length
// dur; negative means the window can never fit it.
func (w Window) Slack(dur float64) float64 { return w.D - w.R - dur }

// Instance is a complete TIDE problem.
type Instance struct {
	// Depot is where (and when) the charger starts.
	Depot geom.Point
	// Start is the plan epoch in absolute seconds.
	Start float64
	// SpeedMps, MoveJPerM, RadiateW mirror the charger's cost model.
	SpeedMps, MoveJPerM, RadiateW float64
	// BudgetJ is the tour energy budget.
	BudgetJ float64
	// Sites lists all candidate stops: spoof targets (mandatory) and cover
	// requests (optional).
	Sites []Site

	// dists is a lazily built flattened (1+len(Sites))² distance matrix;
	// row and column 0 are the depot, row i+1 is site i. Solvers build it
	// once on entry; while nil every distance query falls back to direct
	// computation, so an Instance works unmodified without it. The matrix
	// holds exactly the values Point.Dist would return, so indexed and
	// direct evaluation are bit-identical.
	dists []float64
	dn    int
}

// EnsureDistIndex precomputes the site-to-site distance matrix used by
// the solvers. Insertion-heavy planning probes the same legs thousands
// of times; the matrix turns each probe's Hypot into an array read.
// Calling it is optional and idempotent; positions never change after
// construction.
func (in *Instance) EnsureDistIndex() {
	n := len(in.Sites) + 1
	if in.dists != nil && in.dn == n {
		return
	}
	pts := make([]geom.Point, n)
	pts[0] = in.Depot
	for i, s := range in.Sites {
		pts[i+1] = s.Pos
	}
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := pts[i].Dist(pts[j])
			d[i*n+j] = v
			d[j*n+i] = v
		}
	}
	in.dists, in.dn = d, n
}

// dist returns the distance between endpoints i and j, where -1 denotes
// the depot and 0..len(Sites)-1 a site index.
func (in *Instance) dist(i, j int) float64 {
	if in.dists != nil {
		return in.dists[(i+1)*in.dn+(j+1)]
	}
	return in.pointOf(i).Dist(in.pointOf(j))
}

// pointOf maps a dist endpoint to its position (-1 is the depot).
func (in *Instance) pointOf(i int) geom.Point {
	if i < 0 {
		return in.Depot
	}
	return in.Sites[i].Pos
}

// Validate reports whether the instance is well formed.
func (in *Instance) Validate() error {
	switch {
	case in.SpeedMps <= 0:
		return fmt.Errorf("attack: SpeedMps must be positive, got %v", in.SpeedMps)
	case in.MoveJPerM < 0:
		return fmt.Errorf("attack: MoveJPerM must be non-negative, got %v", in.MoveJPerM)
	case in.RadiateW < 0:
		return fmt.Errorf("attack: RadiateW must be non-negative, got %v", in.RadiateW)
	case in.BudgetJ <= 0:
		return fmt.Errorf("attack: BudgetJ must be positive, got %v", in.BudgetJ)
	}
	for i, s := range in.Sites {
		if s.Dur < 0 {
			return fmt.Errorf("attack: site %d (node %d) has negative duration", i, s.Node)
		}
		if s.Window.D < s.Window.R {
			return fmt.Errorf("attack: site %d (node %d) has inverted window [%v,%v]", i, s.Node, s.Window.R, s.Window.D)
		}
		if s.UtilJ < 0 {
			return fmt.Errorf("attack: site %d (node %d) has negative utility", i, s.Node)
		}
	}
	return nil
}

// Mandatories returns the indices of mandatory sites.
func (in *Instance) Mandatories() []int {
	var out []int
	for i, s := range in.Sites {
		if s.Mandatory {
			out = append(out, i)
		}
	}
	return out
}

// Plan is an ordered route over site indices with its simulated schedule.
type Plan struct {
	// Order lists site indices in visiting order.
	Order []int
	// Schedule holds per-stop timing aligned with Order; filled by
	// Evaluate.
	Schedule []Stop
	// TravelM is the total travel distance in meters.
	TravelM float64
	// EnergyJ is the total energy (locomotion + radiation).
	EnergyJ float64
	// UtilityJ is the total cover utility earned.
	UtilityJ float64
	// SpoofCount is the number of mandatory stops served.
	SpoofCount int
}

// Stop is the realized timing of one visit.
type Stop struct {
	Site    int
	Arrive  float64
	Begin   float64 // max(Arrive, Window.R)
	End     float64 // Begin + Dur
	WaitSec float64
}

// Errors returned by plan evaluation.
var (
	// ErrWindowViolated reports a stop whose service cannot fit its window.
	ErrWindowViolated = errors.New("attack: time window violated")
	// ErrOverBudget reports a plan exceeding the energy budget.
	ErrOverBudget = errors.New("attack: energy budget exceeded")
	// ErrMissingMandatory reports a plan that skips a key-node stop.
	ErrMissingMandatory = errors.New("attack: mandatory site not visited")
	// ErrDuplicateSite reports a site visited twice.
	ErrDuplicateSite = errors.New("attack: site visited twice")
)

// Evaluate simulates the route in ord and returns the realized plan. The
// charger departs the depot at in.Start, travels at SpeedMps, waits when
// early, and must start each service inside its window. Evaluation fails
// on the first window violation, on duplicate visits, or if total energy
// exceeds the budget; checkMandatory additionally requires every mandatory
// site to appear.
func (in *Instance) Evaluate(ord []int, checkMandatory bool) (Plan, error) {
	p := Plan{Order: append([]int(nil), ord...)}
	p.Schedule = make([]Stop, 0, len(ord))
	seen := make([]bool, len(in.Sites))
	prev := -1 // depot
	t := in.Start
	var radiateJ float64
	for _, idx := range ord {
		if idx < 0 || idx >= len(in.Sites) {
			return p, fmt.Errorf("attack: site index %d out of range", idx)
		}
		if seen[idx] {
			return p, fmt.Errorf("%w: site %d", ErrDuplicateSite, idx)
		}
		seen[idx] = true
		s := in.Sites[idx]
		d := in.dist(prev, idx)
		arrive := t + d/in.SpeedMps
		begin := max(arrive, s.Window.R)
		end := begin + s.Dur
		if end > s.Window.D {
			return p, fmt.Errorf("%w: site %d (node %d) service [%v,%v] outside [%v,%v]",
				ErrWindowViolated, idx, s.Node, begin, end, s.Window.R, s.Window.D)
		}
		p.TravelM += d
		pw := s.PowerW
		if pw == 0 {
			pw = in.RadiateW
		}
		radiateJ += s.Dur * pw
		p.Schedule = append(p.Schedule, Stop{
			Site: idx, Arrive: arrive, Begin: begin, End: end, WaitSec: begin - arrive,
		})
		if s.Mandatory {
			p.SpoofCount++
		} else {
			p.UtilityJ += s.UtilJ
		}
		prev = idx
		t = end
	}
	p.EnergyJ = p.TravelM*in.MoveJPerM + radiateJ
	if p.EnergyJ > in.BudgetJ {
		return p, fmt.Errorf("%w: %.0f J > %.0f J", ErrOverBudget, p.EnergyJ, in.BudgetJ)
	}
	if checkMandatory {
		for _, m := range in.Mandatories() {
			if !seen[m] {
				return p, fmt.Errorf("%w: site %d (node %d)", ErrMissingMandatory, m, in.Sites[m].Node)
			}
		}
	}
	return p, nil
}

// Feasible reports whether the route is valid (windows, budget, and all
// mandatory sites).
func (in *Instance) Feasible(ord []int) bool {
	_, err := in.Evaluate(ord, true)
	return err == nil
}
