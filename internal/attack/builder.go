package attack

import (
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// BuilderConfig parameterizes BuildInstance.
type BuilderConfig struct {
	// Now is the plan epoch in absolute seconds.
	Now float64
	// RequestFrac is the battery fraction that triggers charging requests;
	// out-of-range values get wrsn.DefaultRequestFraction.
	RequestFrac float64
	// CooldownSec is the node-side re-request suppression period after a
	// charging session — the protocol feature the spoof window exploits:
	// spoofing inside the final CooldownSec before a node's death
	// guarantees it never asks again. Non-positive gets DefaultCooldownSec.
	CooldownSec float64
	// HorizonSec bounds the plan: only requests forecast to be issued
	// within [Now, Now+HorizonSec] become sites. Non-positive gets
	// DefaultHorizonSec.
	HorizonSec float64
	// MaxCovers caps the optional-site count (largest-utility-first) to
	// keep planning tractable; non-positive means no cap.
	MaxCovers int
	// MaxTargets caps the mandatory-site count (highest-severance-first);
	// non-positive means all key nodes.
	MaxTargets int
	// BudgetJ overrides the instance energy budget; non-positive uses the
	// charger's remaining budget. Budget-sweep experiments set this.
	BudgetJ float64
}

// Builder defaults.
const (
	DefaultCooldownSec = 4 * 3600.0
	DefaultHorizonSec  = 14 * 24 * 3600.0
)

func (c *BuilderConfig) applyDefaults() {
	if c.RequestFrac <= 0 || c.RequestFrac >= 1 {
		c.RequestFrac = wrsn.DefaultRequestFraction
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = DefaultCooldownSec
	}
	if c.HorizonSec <= 0 {
		c.HorizonSec = DefaultHorizonSec
	}
}

// BuildInstance derives a TIDE instance from the live network state:
//
//   - Every key node (sink separator) becomes a mandatory spoof site. Its
//     window opens at max(request time, death − cooldown) — the visit must
//     look solicited *and* leave no time for a re-request — and closes at
//     its projected death. Spoof duration equals a genuine recharge so the
//     stop is indistinguishable by length.
//   - Every other node forecast to request charging within the horizon
//     becomes an optional cover site whose utility is the energy it needs.
//
// The instance's cost model mirrors the charger's parameters and remaining
// budget.
func BuildInstance(nw *wrsn.Network, ch *mc.Charger, cfg BuilderConfig) (*Instance, error) {
	cfg.applyDefaults()
	in := &Instance{
		Depot:     ch.Pos(),
		Start:     cfg.Now,
		SpeedMps:  ch.Params().SpeedMps,
		MoveJPerM: ch.Params().MoveJPerM,
		RadiateW:  ch.Params().RadiateW,
		BudgetJ:   ch.Remaining(),
	}
	if cfg.BudgetJ > 0 {
		in.BudgetJ = cfg.BudgetJ
	}
	// Every sink separator is a target. Many will fall to the cascade —
	// an upstream target's death strands them — but they must still be
	// withheld from genuine service, so they stay in the instance; the
	// executor spoofs whichever windows materialize.
	keys := nw.KeyNodes()
	if cfg.MaxTargets > 0 && len(keys) > cfg.MaxTargets {
		keys = keys[:cfg.MaxTargets]
	}
	isKey := make(map[wrsn.NodeID]bool, len(keys))
	for _, k := range keys {
		isKey[k.ID] = true
	}

	for _, k := range keys {
		site, ok, err := buildSite(nw, ch, cfg, k.ID, true)
		if err != nil {
			return nil, err
		}
		if ok {
			in.Sites = append(in.Sites, site)
		}
	}
	covers := make([]Site, 0, nw.Len())
	for _, n := range nw.Nodes() {
		if isKey[n.ID] || !n.Alive() {
			continue
		}
		site, ok, err := buildSite(nw, ch, cfg, n.ID, false)
		if err != nil {
			return nil, err
		}
		if ok {
			covers = append(covers, site)
		}
	}
	if cfg.MaxCovers > 0 && len(covers) > cfg.MaxCovers {
		// Keep the highest-utility covers; insertion sort by descending
		// utility is fine at these sizes and deterministic.
		for i := 1; i < len(covers); i++ {
			for j := i; j > 0 && covers[j].UtilJ > covers[j-1].UtilJ; j-- {
				covers[j], covers[j-1] = covers[j-1], covers[j]
			}
		}
		covers = covers[:cfg.MaxCovers]
	}
	in.Sites = append(in.Sites, covers...)
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("attack: built invalid instance: %w", err)
	}
	return in, nil
}

// buildSite constructs one site, reporting ok=false when the node never
// requests within the horizon or its window cannot fit its service.
func buildSite(nw *wrsn.Network, ch *mc.Charger, cfg BuilderConfig, id wrsn.NodeID, key bool) (Site, bool, error) {
	f, err := nw.ForecastAt(id, cfg.Now, cfg.RequestFrac)
	if err != nil {
		return Site{}, false, err
	}
	if math.IsInf(f.RequestAt, 1) || f.RequestAt > cfg.Now+cfg.HorizonSec {
		return Site{}, false, nil
	}
	node, err := nw.Node(id)
	if err != nil {
		return Site{}, false, err
	}
	// Service fills the battery from the request threshold: the energy a
	// genuine session at this node is expected to deliver.
	needJ := node.Battery.Capacity() * (1 - cfg.RequestFrac)
	rate, err := chargeRateAt(ch, node)
	if err != nil {
		return Site{}, false, fmt.Errorf("attack: node %d unreachable for charging: %w", id, err)
	}
	dur := needJ / rate

	var w Window
	if key {
		w = Window{R: math.Max(cfg.Now, math.Max(f.RequestAt, f.DeathAt-cfg.CooldownSec)), D: f.DeathAt}
	} else {
		w = Window{R: math.Max(cfg.Now, f.RequestAt), D: f.DeathAt}
	}
	if w.Slack(dur) < 0 {
		// The node dies too fast for a full-length session; shorten the
		// stop to what fits (a partial charge/spoof), never skip silently.
		dur = math.Max(0, w.D-w.R)
		if key {
			// A zero-length spoof is meaningless; drop such targets.
			if dur <= 0 {
				return Site{}, false, nil
			}
		} else if dur <= 0 {
			return Site{}, false, nil
		}
	}
	s := Site{
		Node:      id,
		Pos:       node.Pos,
		Window:    w,
		Dur:       dur,
		Mandatory: key,
	}
	if key {
		// A spoof is transmitted at full drive (see wpt.SteerSpoof), so
		// its electrical cost matches a genuine session's (PowerW zero
		// value means the instance-wide RadiateW).
		s.Kind = VisitSpoof
	} else {
		s.Kind = VisitCover
		s.UtilJ = math.Min(needJ, rate*dur)
	}
	return s, true, nil
}

// chargeRateAt returns the DC power the charger delivers to the node when
// docked and focused.
func chargeRateAt(ch *mc.Charger, node *wrsn.Node) (float64, error) {
	// The delivered rate is position-independent because the docking
	// distance is fixed; DeliveredPower is a pure query.
	p, err := ch.DeliveredPower(node.Pos)
	if err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("attack: zero deliverable power at node %d", node.ID)
	}
	return p, nil
}
