package attack

import (
	"math"
)

// routeState is the incremental feasibility oracle for insertion-heavy
// planning. A full Evaluate of a candidate route costs O(L); routeState
// answers "can site s be inserted at position p" in O(1) after an O(L)
// Recompute, using the classic time-window slack propagation: each stop
// caches how much extra delay it can absorb (waiting eats delay) before
// any downstream window breaks.
type routeState struct {
	in    *Instance
	route []int
	// Per-stop timing, aligned with route.
	arrive, begin, end []float64
	// slack[i] is the largest delay that can hit stop i's arrival without
	// violating window i or any later window.
	slack []float64
	// travelM and radiateJ are the route's current cost components.
	travelM  float64
	radiateJ float64
}

// newRouteState builds the oracle for the given route, which must be
// feasible with respect to windows (budget is checked per query).
func newRouteState(in *Instance) *routeState {
	return &routeState{in: in}
}

// Recompute refreshes all cached state for the route. It returns false if
// the route violates a window (the oracle is then unusable).
func (rs *routeState) Recompute(route []int) bool {
	rs.route = route
	n := len(route)
	rs.arrive = resize(rs.arrive, n)
	rs.begin = resize(rs.begin, n)
	rs.end = resize(rs.end, n)
	rs.slack = resize(rs.slack, n)
	rs.travelM, rs.radiateJ = 0, 0

	prev := -1 // depot
	t := rs.in.Start
	for i, idx := range route {
		s := rs.in.Sites[idx]
		d := rs.in.dist(prev, idx)
		rs.travelM += d
		rs.radiateJ += s.Dur * rs.sitePower(idx)
		rs.arrive[i] = t + d/rs.in.SpeedMps
		rs.begin[i] = max(rs.arrive[i], s.Window.R)
		rs.end[i] = rs.begin[i] + s.Dur
		if rs.end[i] > s.Window.D {
			return false
		}
		prev = idx
		t = rs.end[i]
	}
	// Backward slack propagation: delay δ at stop i's arrival shifts its
	// begin by max(0, arrive+δ−begin)… conservatively, waiting absorbs
	// (begin−arrive) of any delay before it propagates.
	for i := n - 1; i >= 0; i-- {
		s := rs.in.Sites[rs.route[i]]
		own := (s.Window.D - s.Dur) - rs.begin[i] // delay stop i itself tolerates
		down := math.Inf(1)
		if i+1 < n {
			down = rs.slack[i+1] + (rs.begin[i+1] - rs.arrive[i+1])
		}
		rs.slack[i] = min(own, down)
	}
	return true
}

func (rs *routeState) sitePower(idx int) float64 {
	if pw := rs.in.Sites[idx].PowerW; pw != 0 {
		return pw
	}
	return rs.in.RadiateW
}

// EnergyJ returns the current route's total energy.
func (rs *routeState) EnergyJ() float64 {
	return rs.travelM*rs.in.MoveJPerM + rs.radiateJ
}

// CheckInsert reports whether inserting site idx at position pos
// (0 ≤ pos ≤ len(route)) keeps every window and the budget satisfied, and
// if so returns the marginal energy cost. It runs in O(1).
func (rs *routeState) CheckInsert(pos, idx int) (float64, bool) {
	s := rs.in.Sites[idx]
	from := -1 // depot
	prevEnd := rs.in.Start
	if pos > 0 {
		from = rs.route[pos-1]
		prevEnd = rs.end[pos-1]
	}
	dIn := rs.in.dist(from, idx)
	arrive := prevEnd + dIn/rs.in.SpeedMps
	begin := max(arrive, s.Window.R)
	end := begin + s.Dur
	if end > s.Window.D {
		return 0, false
	}
	var addTravel float64
	if pos < len(rs.route) {
		next := rs.route[pos]
		dOut := rs.in.dist(idx, next)
		oldLeg := rs.in.dist(from, next)
		addTravel = dIn + dOut - oldLeg
		// Delay imposed on the old stop at position pos, measured at its
		// arrival; its own waiting buffer absorbs delay before the begin
		// shifts, so the tolerance is slack (begin-relative) plus wait.
		newArriveNext := end + dOut/rs.in.SpeedMps
		delay := newArriveNext - rs.arrive[pos]
		wait := rs.begin[pos] - rs.arrive[pos]
		if delay > rs.slack[pos]+wait+1e-9 {
			return 0, false
		}
	} else {
		addTravel = dIn
	}
	addEnergy := addTravel*rs.in.MoveJPerM + s.Dur*rs.sitePower(idx)
	if rs.EnergyJ()+addEnergy > rs.in.BudgetJ {
		return 0, false
	}
	return addEnergy, true
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
