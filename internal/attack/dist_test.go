package attack

import (
	"math/rand"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func randomInstance(rng *rand.Rand, n int) *Instance {
	in := &Instance{
		Depot:     geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		SpeedMps:  2,
		MoveJPerM: 1.5,
		RadiateW:  5,
		BudgetJ:   1e6,
	}
	for i := 0; i < n; i++ {
		r := rng.Float64() * 500
		in.Sites = append(in.Sites, Site{
			Pos:       geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			Window:    Window{R: r, D: r + 200 + rng.Float64()*400},
			Dur:       10 + rng.Float64()*30,
			UtilJ:     rng.Float64() * 100,
			Mandatory: i%3 == 0,
			Kind:      VisitCover,
		})
	}
	return in
}

// TestDistIndexBitIdentical checks every indexed distance, including the
// depot row/column, equals the direct Point.Dist computation exactly.
func TestDistIndexBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := randomInstance(rng, 25)
	in.EnsureDistIndex()
	for i := -1; i < len(in.Sites); i++ {
		for j := -1; j < len(in.Sites); j++ {
			got := in.dist(i, j)
			want := in.pointOf(i).Dist(in.pointOf(j))
			if got != want {
				t.Fatalf("dist(%d,%d) = %v, want %v (must be bit-identical)", i, j, got, want)
			}
		}
	}
}

// TestEvaluateWithAndWithoutIndex proves the nil-fallback path and the
// indexed path produce byte-identical plans for the same route.
func TestEvaluateWithAndWithoutIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		plain := randomInstance(rng, 12)
		indexed := &Instance{}
		*indexed = *plain
		indexed.Sites = append([]Site(nil), plain.Sites...)
		indexed.EnsureDistIndex()
		if plain.dists != nil {
			t.Fatal("plain instance unexpectedly has a distance index")
		}
		ord := rng.Perm(len(plain.Sites))[:6]
		p1, err1 := plain.Evaluate(ord, false)
		p2, err2 := indexed.Evaluate(ord, false)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if p1.TravelM != p2.TravelM || p1.EnergyJ != p2.EnergyJ || p1.UtilityJ != p2.UtilityJ {
			t.Fatalf("trial %d: plans diverge: %+v vs %+v", trial, p1, p2)
		}
		for i := range p1.Schedule {
			if p1.Schedule[i] != p2.Schedule[i] {
				t.Fatalf("trial %d: stop %d diverges: %+v vs %+v", trial, i, p1.Schedule[i], p2.Schedule[i])
			}
		}
	}
}

// TestEnsureDistIndexIdempotent verifies rebuilds are skipped while the
// site count is unchanged.
func TestEnsureDistIndexIdempotent(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(5)), 8)
	in.EnsureDistIndex()
	first := &in.dists[0]
	in.EnsureDistIndex()
	if &in.dists[0] != first {
		t.Fatal("EnsureDistIndex rebuilt an up-to-date index")
	}
}
