// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events with deterministic
// tie-breaking, so runs replay identically under a fixed seed.
package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/reprolab/wrsn-csa/internal/obs"
)

// ErrPast is returned when an event is scheduled before the current clock.
var ErrPast = errors.New("sim: event scheduled in the past")

// Handler is an event callback. It runs with the engine clock set to the
// event's timestamp and may schedule further events.
type Handler func(e *Engine)

// KeyedHandler is the registry-bound form of Handler: the event carries a
// kind (resolved through the engine's handler registry at execution time)
// and an integer argument instead of a closure. Keyed events are the unit
// of live checkpointing — (t, seq, kind, arg, name) serializes, a closure
// does not — and late binding means a restored engine re-binds handlers
// once and the restored queue finds them.
type KeyedHandler func(e *Engine, arg int)

// Engine drives a single-threaded discrete-event simulation. It is not
// safe for concurrent use; all handlers run on the caller's goroutine.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	// processed counts events executed, for runaway-simulation guards.
	processed uint64
	// probe receives engine telemetry (events processed, queue depth,
	// per-handler timing); nil means disabled. Telemetry never feeds back
	// into scheduling, so instrumented runs replay identically.
	probe obs.Probe
	// handlers is the keyed-event registry: kind → handler. Binding is
	// late — the handler is looked up when the event pops, so a restored
	// queue executes against freshly bound handlers.
	handlers map[string]KeyedHandler
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Instrument attaches a telemetry probe: every executed event counts
// into "sim.events", the post-pop queue depth lands in the
// "sim.queue_depth" gauge, and each handler's wall-clock cost is
// observed into the "sim.handler_sec.<name>" histogram. A nil probe
// disables instrumentation. Timing uses the wall clock, so it is
// observability only — never part of deterministic outputs.
func (e *Engine) Instrument(p obs.Probe) {
	e.probe = obs.Or(p)
	if !e.probe.Enabled() {
		e.probe = nil
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Grow pre-allocates queue capacity for at least n additional events, so
// a run with a known event population reaches steady state without any
// queue reallocation.
func (e *Engine) Grow(n int) {
	e.queue = slices.Grow(e.queue, n)
}

// At schedules fn at absolute time t. Scheduling at the current time is
// allowed (the event runs after the current handler returns).
func (e *Engine) At(t float64, name string, fn Handler) error {
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v (%s)", ErrPast, t, e.now, name)
	}
	if math.IsNaN(t) {
		return fmt.Errorf("sim: NaN timestamp for event %q", name)
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, name: name, fn: fn})
	return nil
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, name string, fn Handler) error {
	return e.At(e.now+dt, name, fn)
}

// Bind registers the handler for a keyed-event kind. Rebinding a kind
// replaces the previous handler; queued events of that kind execute the
// new one (late binding). There is no unbind: a bound kind stays valid
// for the life of the engine, so queued keyed events can always execute.
func (e *Engine) Bind(kind string, fn KeyedHandler) {
	if kind == "" || fn == nil {
		panic("sim: Bind requires a non-empty kind and a non-nil handler")
	}
	if e.handlers == nil {
		e.handlers = make(map[string]KeyedHandler)
	}
	e.handlers[kind] = fn
}

// AtKeyed schedules a keyed event at absolute time t: kind selects the
// bound handler, arg is its integer payload, and name is the display
// label probes and PendingEvents report. The kind must already be bound.
func (e *Engine) AtKeyed(t float64, kind string, arg int, name string) error {
	if _, ok := e.handlers[kind]; !ok {
		return fmt.Errorf("sim: AtKeyed: kind %q not bound (event %q)", kind, name)
	}
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v (%s)", ErrPast, t, e.now, name)
	}
	if math.IsNaN(t) {
		return fmt.Errorf("sim: NaN timestamp for event %q", name)
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, name: name, fn: nil, kind: kind, arg: arg})
	return nil
}

// AfterKeyed schedules a keyed event dt seconds from now.
func (e *Engine) AfterKeyed(dt float64, kind string, arg int, name string) error {
	return e.AtKeyed(e.now+dt, kind, arg, name)
}

// Serializable reports whether every queued event is keyed — i.e. the
// pending queue round-trips through PendingEvents/RestorePending without
// losing work. Closure-scheduled events (At/After) are not serializable.
func (e *Engine) Serializable() bool {
	for i := range e.queue {
		if e.queue[i].kind == "" {
			return false
		}
	}
	return true
}

// HasPendingKind reports whether any queued event has the given kind.
// The scan is linear; campaign queues stay small (one step-chain event,
// a handful of fault and fleet events).
func (e *Engine) HasPendingKind(kind string) bool {
	for i := range e.queue {
		if e.queue[i].kind == kind {
			return true
		}
	}
	return false
}

// ResumeAt sets the clock of an empty engine to a captured time, the
// first half of restoring a snapshot (RestorePending is the second).
func (e *Engine) ResumeAt(t float64) error {
	if len(e.queue) != 0 {
		return fmt.Errorf("sim: ResumeAt requires an empty queue, have %d pending", len(e.queue))
	}
	if math.IsNaN(t) || t < e.now {
		return fmt.Errorf("sim: ResumeAt(%v) before current clock %v", t, e.now)
	}
	e.now = t
	return nil
}

// RestorePending re-schedules a captured pending queue. Events are
// inserted in (T, Seq) order with fresh sequence numbers, so relative
// tie-break order — and therefore execution order — is preserved exactly.
// Every event must be keyed and its kind already bound.
func (e *Engine) RestorePending(evs []PendingEvent) error {
	sorted := append([]PendingEvent(nil), evs...)
	slices.SortFunc(sorted, comparePending)
	for _, ev := range sorted {
		if ev.Kind == "" {
			return fmt.Errorf("sim: restore: event %q at t=%v is not keyed", ev.Name, ev.T)
		}
		if err := e.AtKeyed(ev.T, ev.Kind, ev.Arg, ev.Name); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}
	return nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the timestamp of the next event, or +Inf when the queue
// is empty.
func (e *Engine) PeekTime() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].t
}

// PendingEvent describes one queued event: its timestamp, scheduling
// sequence number, display name, and — for keyed events — the registry
// kind and integer argument. A keyed event (Kind != "") round-trips
// through a snapshot: RestorePending re-schedules it against the same
// kind on a freshly bound engine. A closure event (Kind == "") cannot be
// serialized; snapshot code uses PendingEvents to see — and refuse —
// such in-flight work rather than to capture it.
type PendingEvent struct {
	T    float64 `json:"t"`
	Seq  uint64  `json:"seq"`
	Name string  `json:"name"`
	Kind string  `json:"kind,omitempty"`
	Arg  int     `json:"arg,omitempty"`
}

// comparePending orders events by (T, Seq) — execution order.
func comparePending(a, b PendingEvent) int {
	if a.T != b.T {
		if a.T < b.T {
			return -1
		}
		return 1
	}
	switch {
	case a.Seq < b.Seq:
		return -1
	case a.Seq > b.Seq:
		return 1
	}
	return 0
}

// PendingEvents returns descriptions of all queued events in execution
// order (by timestamp, then scheduling sequence). The engine is not
// modified.
func (e *Engine) PendingEvents() []PendingEvent {
	if len(e.queue) == 0 {
		return nil
	}
	evs := make([]PendingEvent, len(e.queue))
	for i, ev := range e.queue {
		evs[i] = PendingEvent{T: ev.t, Seq: ev.seq, Name: ev.name, Kind: ev.kind, Arg: ev.arg}
	}
	slices.SortFunc(evs, comparePending)
	return evs
}

// Step executes the next event and returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.t
	e.processed++
	if p := e.probe; p != nil {
		start := time.Now()
		e.exec(ev)
		p.Observe("sim.handler_sec."+ev.name, time.Since(start).Seconds())
		p.Add("sim.events", 1)
		p.Set("sim.queue_depth", float64(len(e.queue)))
		return true
	}
	e.exec(ev)
	return true
}

// exec dispatches one popped event: keyed events resolve through the
// registry (AtKeyed guarantees the kind is bound and Bind never removes
// entries), closure events call their captured handler.
func (e *Engine) exec(ev event) {
	if ev.kind != "" {
		e.handlers[ev.kind](e, ev.arg)
		return
	}
	ev.fn(e)
}

// RunUntil executes events until the clock would pass deadline or the
// queue empties; the clock is left at min(deadline, last event time)…
// precisely: after the call, Now() ≤ deadline and no executed event had
// t > deadline. Events beyond the deadline remain queued. maxEvents guards
// against runaway self-scheduling loops; 0 means no guard.
func (e *Engine) RunUntil(deadline float64, maxEvents uint64) error {
	start := e.processed
	for len(e.queue) > 0 && e.queue[0].t <= deadline {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events before deadline %v (now %v)", maxEvents, deadline, e.now)
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// RunUntilHook is RunUntil with a checkpoint hook: after each executed
// event the hook is called with the event's kind and name. The clock sits
// at the event's timestamp and no handler is mid-flight, so the hook sees
// a consistent world — this is the fleet-path checkpoint barrier. A
// non-nil hook error aborts the pump immediately and is returned; queued
// events remain queued and the clock is not advanced to the deadline.
func (e *Engine) RunUntilHook(deadline float64, maxEvents uint64, hook func(kind, name string) error) error {
	if hook == nil {
		return e.RunUntil(deadline, maxEvents)
	}
	start := e.processed
	for len(e.queue) > 0 && e.queue[0].t <= deadline {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events before deadline %v (now %v)", maxEvents, deadline, e.now)
		}
		kind, name := e.queue[0].kind, e.queue[0].name
		e.Step()
		if err := hook(kind, name); err != nil {
			return err
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Run executes events until the queue empties. maxEvents guards against
// runaway loops; 0 means no guard.
func (e *Engine) Run(maxEvents uint64) error {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events (now %v)", maxEvents, e.now)
		}
	}
	return nil
}

// event is a queued callback. seq breaks timestamp ties in scheduling
// order, making execution deterministic. Exactly one of fn (closure
// event) or kind (keyed event, fn nil) is set.
type event struct {
	t    float64
	seq  uint64
	name string
	fn   Handler
	kind string
	arg  int
}

// eventHeap is a binary min-heap of events ordered by timestamp, then
// scheduling sequence. Events are stored by value and sifted manually,
// so the queue performs zero heap allocations at steady state (push
// reuses capacity freed by earlier pops). Because (t, seq) is a total
// order — seq is unique — the pop sequence is identical to any other
// correct heap over the same comparator, including the previous
// container/heap implementation.
type eventHeap []event

// less reports whether the event at i sorts before the event at j.
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push inserts an event maintaining heap order.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	ev := old[n]
	// Zero the vacated slot so the queue does not pin the handler closure
	// (and its captures) past execution.
	old[n] = event{}
	*h = old[:n]
	h.siftDown(0)
	return ev
}

// siftUp restores heap order after appending at index i.
func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores heap order after replacing the value at index i.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
