// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events with deterministic
// tie-breaking, so runs replay identically under a fixed seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/reprolab/wrsn-csa/internal/obs"
)

// ErrPast is returned when an event is scheduled before the current clock.
var ErrPast = errors.New("sim: event scheduled in the past")

// Handler is an event callback. It runs with the engine clock set to the
// event's timestamp and may schedule further events.
type Handler func(e *Engine)

// Engine drives a single-threaded discrete-event simulation. It is not
// safe for concurrent use; all handlers run on the caller's goroutine.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	// processed counts events executed, for runaway-simulation guards.
	processed uint64
	// probe receives engine telemetry (events processed, queue depth,
	// per-handler timing); nil means disabled. Telemetry never feeds back
	// into scheduling, so instrumented runs replay identically.
	probe obs.Probe
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Instrument attaches a telemetry probe: every executed event counts
// into "sim.events", the post-pop queue depth lands in the
// "sim.queue_depth" gauge, and each handler's wall-clock cost is
// observed into the "sim.handler_sec.<name>" histogram. A nil probe
// disables instrumentation. Timing uses the wall clock, so it is
// observability only — never part of deterministic outputs.
func (e *Engine) Instrument(p obs.Probe) {
	e.probe = obs.Or(p)
	if !e.probe.Enabled() {
		e.probe = nil
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn at absolute time t. Scheduling at the current time is
// allowed (the event runs after the current handler returns).
func (e *Engine) At(t float64, name string, fn Handler) error {
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v (%s)", ErrPast, t, e.now, name)
	}
	if math.IsNaN(t) {
		return fmt.Errorf("sim: NaN timestamp for event %q", name)
	}
	e.seq++
	e.queue.push(&event{t: t, seq: e.seq, name: name, fn: fn})
	return nil
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, name string, fn Handler) error {
	return e.At(e.now+dt, name, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// PeekTime returns the timestamp of the next event, or +Inf when the queue
// is empty.
func (e *Engine) PeekTime() float64 {
	if e.queue.Len() == 0 {
		return math.Inf(1)
	}
	return e.queue[0].t
}

// Step executes the next event and returns false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.t
	e.processed++
	if p := e.probe; p != nil {
		start := time.Now()
		ev.fn(e)
		p.Observe("sim.handler_sec."+ev.name, time.Since(start).Seconds())
		p.Add("sim.events", 1)
		p.Set("sim.queue_depth", float64(e.queue.Len()))
		return true
	}
	ev.fn(e)
	return true
}

// RunUntil executes events until the clock would pass deadline or the
// queue empties; the clock is left at min(deadline, last event time)…
// precisely: after the call, Now() ≤ deadline and no executed event had
// t > deadline. Events beyond the deadline remain queued. maxEvents guards
// against runaway self-scheduling loops; 0 means no guard.
func (e *Engine) RunUntil(deadline float64, maxEvents uint64) error {
	start := e.processed
	for e.queue.Len() > 0 && e.queue[0].t <= deadline {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events before deadline %v (now %v)", maxEvents, deadline, e.now)
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Run executes events until the queue empties. maxEvents guards against
// runaway loops; 0 means no guard.
func (e *Engine) Run(maxEvents uint64) error {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events (now %v)", maxEvents, e.now)
		}
	}
	return nil
}

// event is a queued callback. seq breaks timestamp ties in scheduling
// order, making execution deterministic.
type event struct {
	t    float64
	seq  uint64
	name string
	fn   Handler
}

// eventHeap orders events by timestamp, then scheduling sequence. It
// satisfies heap.Interface (whose Push/Pop trade in `any`); engine code
// uses the typed push/pop helpers below instead of the raw interface.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push is heap.Interface plumbing; use push.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

// Pop is heap.Interface plumbing; use pop.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// push inserts an event maintaining heap order — the typed front door.
func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

// pop removes and returns the earliest event — the typed front door.
func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }
