// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a priority queue of timestamped events with deterministic
// tie-breaking, so runs replay identically under a fixed seed.
package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/reprolab/wrsn-csa/internal/obs"
)

// ErrPast is returned when an event is scheduled before the current clock.
var ErrPast = errors.New("sim: event scheduled in the past")

// Handler is an event callback. It runs with the engine clock set to the
// event's timestamp and may schedule further events.
type Handler func(e *Engine)

// Engine drives a single-threaded discrete-event simulation. It is not
// safe for concurrent use; all handlers run on the caller's goroutine.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	// processed counts events executed, for runaway-simulation guards.
	processed uint64
	// probe receives engine telemetry (events processed, queue depth,
	// per-handler timing); nil means disabled. Telemetry never feeds back
	// into scheduling, so instrumented runs replay identically.
	probe obs.Probe
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Instrument attaches a telemetry probe: every executed event counts
// into "sim.events", the post-pop queue depth lands in the
// "sim.queue_depth" gauge, and each handler's wall-clock cost is
// observed into the "sim.handler_sec.<name>" histogram. A nil probe
// disables instrumentation. Timing uses the wall clock, so it is
// observability only — never part of deterministic outputs.
func (e *Engine) Instrument(p obs.Probe) {
	e.probe = obs.Or(p)
	if !e.probe.Enabled() {
		e.probe = nil
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Grow pre-allocates queue capacity for at least n additional events, so
// a run with a known event population reaches steady state without any
// queue reallocation.
func (e *Engine) Grow(n int) {
	e.queue = slices.Grow(e.queue, n)
}

// At schedules fn at absolute time t. Scheduling at the current time is
// allowed (the event runs after the current handler returns).
func (e *Engine) At(t float64, name string, fn Handler) error {
	if t < e.now {
		return fmt.Errorf("%w: t=%v now=%v (%s)", ErrPast, t, e.now, name)
	}
	if math.IsNaN(t) {
		return fmt.Errorf("sim: NaN timestamp for event %q", name)
	}
	e.seq++
	e.queue.push(event{t: t, seq: e.seq, name: name, fn: fn})
	return nil
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, name string, fn Handler) error {
	return e.At(e.now+dt, name, fn)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the timestamp of the next event, or +Inf when the queue
// is empty.
func (e *Engine) PeekTime() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].t
}

// PendingEvent describes one queued event: its timestamp, scheduling
// sequence number, and name. Handlers are closures and cannot be
// serialized, so snapshot code uses PendingEvents to see — and refuse —
// in-flight work rather than to capture it.
type PendingEvent struct {
	T    float64 `json:"t"`
	Seq  uint64  `json:"seq"`
	Name string  `json:"name"`
}

// PendingEvents returns descriptions of all queued events in execution
// order (by timestamp, then scheduling sequence). The engine is not
// modified.
func (e *Engine) PendingEvents() []PendingEvent {
	if len(e.queue) == 0 {
		return nil
	}
	evs := make([]PendingEvent, len(e.queue))
	for i, ev := range e.queue {
		evs[i] = PendingEvent{T: ev.t, Seq: ev.seq, Name: ev.name}
	}
	slices.SortFunc(evs, func(a, b PendingEvent) int {
		if a.T != b.T {
			if a.T < b.T {
				return -1
			}
			return 1
		}
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	return evs
}

// Step executes the next event and returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.t
	e.processed++
	if p := e.probe; p != nil {
		start := time.Now()
		ev.fn(e)
		p.Observe("sim.handler_sec."+ev.name, time.Since(start).Seconds())
		p.Add("sim.events", 1)
		p.Set("sim.queue_depth", float64(len(e.queue)))
		return true
	}
	ev.fn(e)
	return true
}

// RunUntil executes events until the clock would pass deadline or the
// queue empties; the clock is left at min(deadline, last event time)…
// precisely: after the call, Now() ≤ deadline and no executed event had
// t > deadline. Events beyond the deadline remain queued. maxEvents guards
// against runaway self-scheduling loops; 0 means no guard.
func (e *Engine) RunUntil(deadline float64, maxEvents uint64) error {
	start := e.processed
	for len(e.queue) > 0 && e.queue[0].t <= deadline {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events before deadline %v (now %v)", maxEvents, deadline, e.now)
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Run executes events until the queue empties. maxEvents guards against
// runaway loops; 0 means no guard.
func (e *Engine) Run(maxEvents uint64) error {
	start := e.processed
	for e.Step() {
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events (now %v)", maxEvents, e.now)
		}
	}
	return nil
}

// event is a queued callback. seq breaks timestamp ties in scheduling
// order, making execution deterministic.
type event struct {
	t    float64
	seq  uint64
	name string
	fn   Handler
}

// eventHeap is a binary min-heap of events ordered by timestamp, then
// scheduling sequence. Events are stored by value and sifted manually,
// so the queue performs zero heap allocations at steady state (push
// reuses capacity freed by earlier pops). Because (t, seq) is a total
// order — seq is unique — the pop sequence is identical to any other
// correct heap over the same comparator, including the previous
// container/heap implementation.
type eventHeap []event

// less reports whether the event at i sorts before the event at j.
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push inserts an event maintaining heap order.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	ev := old[n]
	// Zero the vacated slot so the queue does not pin the handler closure
	// (and its captures) past execution.
	old[n] = event{}
	*h = old[:n]
	h.siftDown(0)
	return ev
}

// siftUp restores heap order after appending at index i.
func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores heap order after replacing the value at index i.
func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
