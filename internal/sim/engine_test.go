package sim

import (
	"errors"
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	add := func(at float64, id int) {
		if err := e.At(at, "evt", func(*Engine) { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3, 3)
	add(1, 1)
	add(2, 2)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.At(7, "tie", func(*Engine) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ties executed out of scheduling order: %v", order)
		}
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	e := New()
	if err := e.At(5, "x", func(*Engine) {}); err != nil {
		t.Fatal(err)
	}
	e.Step()
	if err := e.At(4, "late", func(*Engine) {}); !errors.Is(err, ErrPast) {
		t.Errorf("err = %v, want ErrPast", err)
	}
	// Scheduling exactly at now is allowed.
	if err := e.At(e.Now(), "now", func(*Engine) {}); err != nil {
		t.Errorf("at-now rejected: %v", err)
	}
	if err := e.At(math.NaN(), "nan", func(*Engine) {}); err == nil {
		t.Error("NaN timestamp accepted")
	}
}

func TestHandlersScheduleMore(t *testing.T) {
	e := New()
	count := 0
	var tick Handler
	tick = func(en *Engine) {
		count++
		if count < 10 {
			if err := en.After(1, "tick", tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.At(0, "tick", tick); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 10 || e.Now() != 9 {
		t.Errorf("count=%d now=%v", count, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		if err := e.At(at, "evt", func(*Engine) { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntil(5, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %v, want events ≤5 only", fired)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5 (advanced to deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if pt := e.PeekTime(); pt != 10 {
		t.Errorf("peek = %v", pt)
	}
}

func TestRunawayGuard(t *testing.T) {
	e := New()
	var loop Handler
	loop = func(en *Engine) {
		_ = en.After(0.001, "loop", loop)
	}
	if err := e.At(0, "loop", loop); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err == nil {
		t.Error("runaway loop not caught")
	}
	if err := New().Run(100); err != nil {
		t.Errorf("empty run errored: %v", err)
	}
}

func TestRunUntilGuard(t *testing.T) {
	e := New()
	var loop Handler
	loop = func(en *Engine) {
		_ = en.After(0.0001, "loop", loop)
	}
	if err := e.At(0, "loop", loop); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1, 50); err == nil {
		t.Error("runaway loop not caught before deadline")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 4; i++ {
		if err := e.After(float64(i), "e", func(*Engine) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 4 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestClockNeverRewinds(t *testing.T) {
	e := New()
	last := -1.0
	for i := 100; i > 0; i-- {
		at := float64(i % 17)
		if err := e.At(at, "e", func(en *Engine) {
			if en.Now() < last {
				t.Fatalf("clock rewound: %v after %v", en.Now(), last)
			}
			last = en.Now()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}
