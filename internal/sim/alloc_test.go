package sim

import (
	"testing"
)

// TestSteadyStateAllocFree proves the event loop performs zero heap
// allocations once the queue has reached its working capacity: a
// self-rescheduling handler (the shape of the campaign world's step
// chain) pushes and pops through a pre-grown value-typed heap without
// boxing events or reallocating the queue.
func TestSteadyStateAllocFree(t *testing.T) {
	e := New()
	e.Grow(4)
	var tick Handler
	tick = func(en *Engine) {
		_ = en.After(1, "tick", tick)
	}
	if err := e.At(0, "tick", tick); err != nil {
		t.Fatal(err)
	}
	// Warm up so the queue is at steady-state occupancy.
	for i := 0; i < 8; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %v times per event, want 0", allocs)
	}
}

// TestMixedLoadAllocFree exercises a steady state with several handlers
// interleaved at different periods, matching the real campaign mix
// (poll, sample, audit, depletion watch).
func TestMixedLoadAllocFree(t *testing.T) {
	e := New()
	e.Grow(16)
	mk := func(period float64, name string) Handler {
		var h Handler
		h = func(en *Engine) { _ = en.After(period, name, h) }
		return h
	}
	for i, period := range []float64{1, 2.5, 7, 30} {
		name := []string{"poll", "sample", "audit", "watch"}[i]
		if err := e.At(0, name, mk(period, name)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("mixed steady-state Step allocates %v times per event, want 0", allocs)
	}
}

// TestGrowPreallocates verifies Grow reserves capacity so the first
// burst of scheduling does not reallocate mid-run.
func TestGrowPreallocates(t *testing.T) {
	e := New()
	e.Grow(64)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			if err := e.After(float64(i), "burst", func(*Engine) {}); err != nil {
				t.Fatal(err)
			}
		}
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("pre-grown schedule burst allocates %v times per run, want 0", allocs)
	}
}
