package mc

import (
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/geom"
)

func TestDefaults(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{})
	p := c.Params()
	def := DefaultParams()
	if p != def {
		t.Errorf("zero params not defaulted: %+v", p)
	}
	if c.Pos() != c.Depot() {
		t.Error("charger not at depot")
	}
	if c.Remaining() != def.BudgetJ {
		t.Errorf("remaining = %v", c.Remaining())
	}
}

func TestTravelAccounting(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{SpeedMps: 10, MoveJPerM: 100, BudgetJ: 1e6})
	dst := geom.Pt(30, 40) // 50 m away
	if tt := c.TravelTime(dst); tt != 5 {
		t.Errorf("travel time = %v, want 5", tt)
	}
	if te := c.TravelEnergy(dst); te != 5000 {
		t.Errorf("travel energy = %v, want 5000", te)
	}
	if err := c.Travel(dst); err != nil {
		t.Fatal(err)
	}
	if c.Pos() != dst {
		t.Errorf("pos = %v", c.Pos())
	}
	if c.Spent() != 5000 {
		t.Errorf("spent = %v", c.Spent())
	}
	// The array chassis follows.
	if cd := c.Array().Centroid().Dist(dst); cd > 1e-9 {
		t.Errorf("array centroid %v m from charger", cd)
	}
}

func TestTravelBudgetEnforced(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{MoveJPerM: 100, BudgetJ: 100})
	before := c.Pos()
	if err := c.Travel(geom.Pt(10, 0)); err == nil {
		t.Error("over-budget travel accepted")
	}
	if c.Pos() != before || c.Spent() != 0 {
		t.Error("failed travel mutated state")
	}
}

func TestSpendEnergy(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{BudgetJ: 100})
	if err := c.SpendEnergy(-1); err == nil {
		t.Error("negative spend accepted")
	}
	if err := c.SpendEnergy(60); err != nil {
		t.Fatal(err)
	}
	if err := c.SpendEnergy(60); err == nil {
		t.Error("over-budget spend accepted")
	}
	if c.Remaining() != 40 {
		t.Errorf("remaining = %v", c.Remaining())
	}
}

func TestSpendRadiation(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{RadiateW: 10, BudgetJ: 100})
	if err := c.SpendRadiation(5); err != nil {
		t.Fatal(err)
	}
	if c.Spent() != 50 {
		t.Errorf("spent = %v", c.Spent())
	}
}

func TestServicePoint(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{ServiceDist: 0.5})
	node := geom.Pt(10, 0)
	dock := c.ServicePoint(node)
	if d := dock.Dist(node); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("dock distance = %v", d)
	}
	// Already docked: stay put.
	if err := c.Travel(dock); err != nil {
		t.Fatal(err)
	}
	if again := c.ServicePoint(node); again != dock {
		t.Errorf("re-dock moved: %v", again)
	}
}

func TestDeliveredPowerPositionIndependent(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{})
	p1, err := c.DeliveredPower(geom.Pt(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 {
		t.Fatalf("delivered power = %v", p1)
	}
	if err := c.Travel(geom.Pt(50, 50)); err != nil {
		t.Fatal(err)
	}
	p2, err := c.DeliveredPower(geom.Pt(-30, 70))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2) > 1e-9 {
		t.Errorf("delivered power depends on geometry: %v vs %v", p1, p2)
	}
	// The query must not mutate the array.
	if cd := c.Array().Centroid().Dist(geom.Pt(50, 50)); cd > 1e-9 {
		t.Error("DeliveredPower moved the array")
	}
}

func TestFullRechargeTime(t *testing.T) {
	c := New(geom.Pt(0, 0), Params{})
	rate, err := c.DeliveredPower(geom.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	tt, err := c.FullRechargeTime(geom.Pt(10, 10), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt-1000/rate) > 1e-9 {
		t.Errorf("recharge time = %v, want %v", tt, 1000/rate)
	}
}

func TestReset(t *testing.T) {
	c := New(geom.Pt(5, 5), Params{BudgetJ: 1000, MoveJPerM: 1})
	if err := c.Travel(geom.Pt(50, 5)); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Pos() != geom.Pt(5, 5) || c.Spent() != 0 {
		t.Errorf("reset state: pos=%v spent=%v", c.Pos(), c.Spent())
	}
}
