// Package mc models the mobile charger: a vehicle with its own energy
// budget that travels between nodes and radiates wireless power through a
// coherent emitter array. The same chassis serves both roles in the paper —
// legitimate on-demand charger and, when compromised, the spoofing
// attacker; only the array steering differs.
package mc

import (
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// Params configures a charger. Zero-valued fields get defaults from
// DefaultParams.
type Params struct {
	// SpeedMps is the travel speed in m/s.
	SpeedMps float64
	// MoveJPerM is the locomotion energy per meter.
	MoveJPerM float64
	// RadiateW is the electrical power drawn while the array transmits.
	RadiateW float64
	// BudgetJ is the onboard energy budget per tour.
	BudgetJ float64
	// ServiceDist is the charger-to-node distance during a charging
	// session, in meters; docking is never exact contact.
	ServiceDist float64
	// ElementSpacing is the separation of the two array elements on the
	// chassis, in meters.
	ElementSpacing float64
}

// DefaultParams returns the evaluation defaults: a 5 m/s charger spending
// 50 J/m to move, drawing 50 W electrical while radiating at full power,
// docking at 0.5 m, elements 0.6 m apart. The 50 MJ budget covers roughly
// two weeks of on-demand service for a few hundred nodes; experiments that
// stress the budget constraint override it per TIDE instance.
func DefaultParams() Params {
	return Params{
		SpeedMps:       5,
		MoveJPerM:      50,
		RadiateW:       50,
		BudgetJ:        5e7,
		ServiceDist:    0.5,
		ElementSpacing: 0.6,
	}
}

func (p *Params) applyDefaults() {
	def := DefaultParams()
	if p.SpeedMps <= 0 {
		p.SpeedMps = def.SpeedMps
	}
	if p.MoveJPerM <= 0 {
		p.MoveJPerM = def.MoveJPerM
	}
	if p.RadiateW <= 0 {
		p.RadiateW = def.RadiateW
	}
	if p.BudgetJ <= 0 {
		p.BudgetJ = def.BudgetJ
	}
	if p.ServiceDist <= 0 {
		p.ServiceDist = def.ServiceDist
	}
	if p.ElementSpacing <= 0 {
		p.ElementSpacing = def.ElementSpacing
	}
}

// Charger is a mobile charger instance. It tracks position and remaining
// budget; all mutation is explicit (Travel, SpendRadiation) so planners can
// also use the pure cost queries. Charger is not safe for concurrent use.
type Charger struct {
	params Params
	pos    geom.Point
	depot  geom.Point
	spent  float64
	array  *wpt.Array
	rect   wpt.Rectifier
	// probe receives charger telemetry (travel distance/energy, radiated
	// energy); always non-nil (the no-op probe when uninstrumented).
	probe obs.Probe

	// steered memoizes the docked, focus-steered scratch array that
	// DeliveredPower and RadiatedPowerAt evaluate. SteerFocus fully
	// overwrites every emitter's gain and phase and the dock depends only
	// on (charger position, node position), so the steered state is a pure
	// function of those two points while the chassis is parked; the memo
	// is dropped whenever the charger moves (Travel, Reset). Witness scans
	// that probe the same session's field dozens of times re-steer once.
	steered    wpt.Array
	steeredEm  []wpt.Emitter
	steeredFor geom.Point
	steeredOK  bool
}

// New returns a charger parked at depot.
func New(depot geom.Point, params Params) *Charger {
	params.applyDefaults()
	half := params.ElementSpacing / 2
	arr := wpt.NewArray(
		geom.Pt(depot.X-half, depot.Y),
		geom.Pt(depot.X+half, depot.Y),
	)
	return &Charger{
		params: params,
		pos:    depot,
		depot:  depot,
		array:  arr,
		rect:   wpt.DefaultRectifier(),
		probe:  obs.Nop(),
	}
}

// Instrument attaches a telemetry probe: travel accumulates into the
// "charger.travel_m" and "charger.travel_j" counters, every energy spend
// (radiation, spoof transmission) into "charger.spend_j", and tour
// resets into "charger.resets". A nil probe disables instrumentation.
// Telemetry never alters charger behavior.
func (c *Charger) Instrument(p obs.Probe) { c.probe = obs.Or(p) }

// Params returns the charger's configuration.
func (c *Charger) Params() Params { return c.params }

// Pos returns the charger's current position.
func (c *Charger) Pos() geom.Point { return c.pos }

// Depot returns the charger's home position.
func (c *Charger) Depot() geom.Point { return c.depot }

// Array exposes the emitter array for steering. The array tracks the
// charger chassis; do not reposition it directly — use Travel.
func (c *Charger) Array() *wpt.Array { return c.array }

// Rectifier returns the node-side rectifier model the charger assumes when
// predicting delivered power.
func (c *Charger) Rectifier() wpt.Rectifier { return c.rect }

// Spent returns the energy consumed so far this tour.
func (c *Charger) Spent() float64 { return c.spent }

// Remaining returns the unspent budget.
func (c *Charger) Remaining() float64 { return c.params.BudgetJ - c.spent }

// TravelTime returns the time to reach dst from the current position.
func (c *Charger) TravelTime(dst geom.Point) float64 {
	return c.pos.Dist(dst) / c.params.SpeedMps
}

// TravelEnergy returns the locomotion energy to reach dst.
func (c *Charger) TravelEnergy(dst geom.Point) float64 {
	return c.pos.Dist(dst) * c.params.MoveJPerM
}

// RadiationEnergy returns the electrical energy to radiate for dt seconds.
func (c *Charger) RadiationEnergy(dt float64) float64 {
	return c.params.RadiateW * dt
}

// Travel moves the charger (and its array) to dst, deducting locomotion
// energy. It fails without moving when the budget cannot cover the trip.
func (c *Charger) Travel(dst geom.Point) error {
	cost := c.TravelEnergy(dst)
	if cost > c.Remaining() {
		return fmt.Errorf("mc: travel to %v needs %.0f J, only %.0f J remain", dst, cost, c.Remaining())
	}
	if c.probe.Enabled() {
		c.probe.Add("charger.travel_m", c.pos.Dist(dst))
		c.probe.Add("charger.travel_j", cost)
	}
	c.spent += cost
	c.pos = dst
	c.array.MoveTo(dst)
	c.dropSteered()
	return nil
}

// SpendRadiation deducts the electrical energy for dt seconds of
// transmission. It fails without deducting when the budget is short.
func (c *Charger) SpendRadiation(dt float64) error {
	return c.SpendEnergy(c.RadiationEnergy(dt))
}

// SpendEnergy deducts an explicit energy amount (e.g. reduced-gain spoof
// transmission). It fails without deducting when the budget is short.
func (c *Charger) SpendEnergy(j float64) error {
	if j < 0 {
		return fmt.Errorf("mc: negative energy spend %v", j)
	}
	if j > c.Remaining() {
		return fmt.Errorf("mc: spending %.0f J exceeds remaining %.0f J", j, c.Remaining())
	}
	c.probe.Add("charger.spend_j", j)
	c.spent += j
	return nil
}

// ServicePoint returns the docking position for charging a node at
// nodePos: ServiceDist meters from the node, approached from the charger's
// current direction (or due west when already at the node).
func (c *Charger) ServicePoint(nodePos geom.Point) geom.Point {
	d := c.pos.Dist(nodePos)
	if d <= c.params.ServiceDist {
		return c.pos
	}
	t := (d - c.params.ServiceDist) / d
	return c.pos.Lerp(nodePos, t)
}

// steeredArray returns the scratch array docked at nodePos's service point
// and focus-steered on the node, serving repeat queries for the same node
// from the memo. The scratch is rebuilt from the live array's geometry, so
// steering mutations on the live array (SteerSpoof) never leak in.
func (c *Charger) steeredArray(nodePos geom.Point) (*wpt.Array, error) {
	if c.steeredOK && nodePos == c.steeredFor {
		return &c.steered, nil
	}
	c.steeredOK = false
	dock := c.ServicePoint(nodePos)
	c.steeredEm = append(c.steeredEm[:0], c.array.Emitters...)
	c.steered = *c.array
	c.steered.Emitters = c.steeredEm
	c.steered.MoveTo(dock)
	if err := wpt.SteerFocus(&c.steered, nodePos); err != nil {
		return nil, fmt.Errorf("mc: focus at %v: %w", nodePos, err)
	}
	c.steeredFor, c.steeredOK = nodePos, true
	return &c.steered, nil
}

// dropSteered discards the steered-array memo; called whenever the chassis
// (and with it the dock geometry) moves.
func (c *Charger) dropSteered() { c.steeredOK = false }

// DeliveredPower returns the DC power a node at nodePos harvests while the
// charger, docked at its service point, focuses its array on the node.
// This is the legitimate charging rate.
func (c *Charger) DeliveredPower(nodePos geom.Point) (float64, error) {
	arr, err := c.steeredArray(nodePos)
	if err != nil {
		return 0, err
	}
	return c.rect.DCOutput(arr.RFPowerAt(nodePos)), nil
}

// RadiatedPowerAt returns the RF power an observer at `at` measures while
// the charger, docked for a session at nodePos, focuses its array on the
// node — what a neighbor witness sees during a genuine charge. The query
// does not disturb the charger's state.
func (c *Charger) RadiatedPowerAt(nodePos, at geom.Point) (float64, error) {
	arr, err := c.steeredArray(nodePos)
	if err != nil {
		return 0, err
	}
	return arr.RFPowerAt(at), nil
}

// RadiatedPowerAtAll is the batch form of RadiatedPowerAt: the session
// array is steered once and evaluated at every probe point, which is what
// witness scans over a neighborhood want. When dst has sufficient capacity
// the result reuses it.
func (c *Charger) RadiatedPowerAtAll(nodePos geom.Point, dst []float64, pts []geom.Point) ([]float64, error) {
	arr, err := c.steeredArray(nodePos)
	if err != nil {
		return nil, err
	}
	return arr.RFPowerAtAll(dst, pts), nil
}

// FullRechargeTime returns how long a focused session must last to deliver
// joules of DC energy to a node at nodePos.
func (c *Charger) FullRechargeTime(nodePos geom.Point, joules float64) (float64, error) {
	p, err := c.DeliveredPower(nodePos)
	if err != nil {
		return 0, err
	}
	if p <= 0 {
		return math.Inf(1), fmt.Errorf("mc: no deliverable power at %v", nodePos)
	}
	return joules / p, nil
}

// Reset returns the charger to its depot with a full budget, beginning a
// new tour. Position and array follow.
func (c *Charger) Reset() {
	c.probe.Add("charger.resets", 1)
	c.pos = c.depot
	c.spent = 0
	c.array.MoveTo(c.depot)
	c.dropSteered()
}
