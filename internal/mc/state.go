package mc

import (
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// ArrayState is the serializable form of the charger's emitter array:
// model constants plus per-element position/gain/phase. The field cache is
// derived state and is not captured.
type ArrayState struct {
	Model          wpt.ChargeModel `json:"model"`
	Carrier        wpt.Carrier     `json:"carrier"`
	Emitters       []wpt.Emitter   `json:"emitters"`
	MaxGain        float64         `json:"max_gain"`
	PhaseJitterRad float64         `json:"phase_jitter_rad"`
}

// State is the serializable form of a Charger: configuration, position,
// spent budget, the full array (including any steering applied), and the
// assumed rectifier. Telemetry probes and the steered-array memo are
// runtime-only and are not captured.
type State struct {
	Params    Params        `json:"params"`
	Pos       geom.Point    `json:"pos"`
	Depot     geom.Point    `json:"depot"`
	SpentJ    float64       `json:"spent_j"`
	Array     ArrayState    `json:"array"`
	Rectifier wpt.Rectifier `json:"rectifier"`
}

// State captures the charger's current state. The result is self-contained:
// mutating the charger afterwards does not alter it.
func (c *Charger) State() State {
	return State{
		Params: c.params,
		Pos:    c.pos,
		Depot:  c.depot,
		SpentJ: c.spent,
		Array: ArrayState{
			Model:          c.array.Model,
			Carrier:        c.array.Carrier,
			Emitters:       append([]wpt.Emitter(nil), c.array.Emitters...),
			MaxGain:        c.array.MaxGain,
			PhaseJitterRad: c.array.PhaseJitterRad,
		},
		Rectifier: c.rect,
	}
}

// FromState reconstructs a charger from captured state. The restored
// charger carries the no-op telemetry probe; attach one with Instrument if
// needed. Probes never alter charger behavior, so a restored run replays
// identically regardless.
func FromState(st State) (*Charger, error) {
	arr := &wpt.Array{
		Model:          st.Array.Model,
		Carrier:        st.Array.Carrier,
		Emitters:       append([]wpt.Emitter(nil), st.Array.Emitters...),
		MaxGain:        st.Array.MaxGain,
		PhaseJitterRad: st.Array.PhaseJitterRad,
	}
	if err := arr.Validate(); err != nil {
		return nil, fmt.Errorf("mc: restoring charger array: %w", err)
	}
	if err := st.Rectifier.Validate(); err != nil {
		return nil, fmt.Errorf("mc: restoring charger rectifier: %w", err)
	}
	return &Charger{
		params: st.Params,
		pos:    st.Pos,
		depot:  st.Depot,
		spent:  st.SpentJ,
		array:  arr,
		rect:   st.Rectifier,
		probe:  obs.Nop(),
	}, nil
}

// Fork returns an independent copy of the charger: the array is
// deep-cloned so steering one copy never disturbs the other, and the fork
// starts with the no-op probe and a cold steered-array memo. Fork performs
// only pure reads of the receiver, so a shared template charger may be
// forked concurrently as long as nothing mutates it.
func (c *Charger) Fork() *Charger {
	return &Charger{
		params: c.params,
		pos:    c.pos,
		depot:  c.depot,
		spent:  c.spent,
		array:  c.array.Clone(),
		rect:   c.rect,
		probe:  obs.Nop(),
	}
}
