package campaign

// Sharded-stepping determinism harness: the world's Shards knob must be
// purely a wall-clock lever — the Outcome digest at every shard count
// must equal the sequential (Shards=1) digest bit for bit, for legit
// service, the full attack, and fault plans with request loss (whose RNG
// draw order is the most fragile thing the sharded scan preserves).
// These tests run under -race in CI (the verify-scale target), so they
// double as the data-race fence for the parallel per-tick fan-out.

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// shardCounts covers sequential, small, and deliberately excessive
// partitions (32 shards of a 150-node field stresses tiny shards).
var shardCounts = []int{1, 2, 4, 8, 32}

func digestAtShards(t *testing.T, shards int, attack bool, withFaults bool) string {
	t.Helper()
	const seed, n = 42, 150
	nw, _, err := trace.DefaultScenario(seed, n).Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	cfg := Config{
		Seed:           seed,
		Shards:         shards,
		SampleEverySec: 6 * 3600, // exercise the sharded sample tally
	}
	if withFaults {
		spec := faults.DefaultSpec(seed, 0)
		spec.HorizonSec = 14 * 24 * 3600
		spec.NodeFailures = 6
		spec.RequestLossProb = 0.2 // heavy loss pins the draw order
		cfg.Faults = faults.New(spec, n)
	}
	var o any
	if attack {
		o, err = RunAttack(context.Background(), nw, ch, cfg)
	} else {
		o, err = RunLegit(context.Background(), nw, ch, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return digestOf(t, o)
}

// TestShardedSteppingDigestInvariant pins byte-identical outcomes across
// shard counts for the three most state-entangled run flavors.
func TestShardedSteppingDigestInvariant(t *testing.T) {
	flavors := []struct {
		name       string
		attack     bool
		withFaults bool
	}{
		{"legit", false, false},
		{"attack", true, false},
		{"attack-faults", true, true},
	}
	for _, f := range flavors {
		t.Run(f.name, func(t *testing.T) {
			want := digestAtShards(t, 1, f.attack, f.withFaults)
			for _, k := range shardCounts[1:] {
				if got := digestAtShards(t, k, f.attack, f.withFaults); got != want {
					t.Fatalf("shards=%d: digest %s, want %s (sequential)", k, got, want)
				}
			}
		})
	}
}

// TestShardedScaleSmoke runs a 10k-node legit campaign with automatic
// sharding over a short horizon — the large-N configuration the scale
// work exists for. It asserts completion and that the run produced real
// dynamics (deaths and requests), not silence.
func TestShardedScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node campaign is too heavy for -short")
	}
	const seed, n = 7, 10_000
	nw, _, err := trace.DefaultScenario(seed, n).Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	o, err := RunLegit(context.Background(), nw, ch, Config{
		Seed: seed,
		// Explicit: automatic sizing degenerates to sequential on
		// single-core runners, and the point here is the sharded path.
		Shards:     4,
		HorizonSec: 2 * 24 * 3600,
		PollSec:    1800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.RequestsIssued == 0 {
		t.Fatal("10k-node run issued no charging requests")
	}
}
