package campaign

import (
	"context"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
)

func TestTimelineMergesAndSorts(t *testing.T) {
	o := &Outcome{
		Sessions: []charging.Session{
			{Node: 1, Kind: charging.SessionFocus, Start: 300, End: 400, RequestedJ: 100, DeliveredJ: 100},
			{Node: 2, Kind: charging.SessionSpoof, Start: 100, End: 200, RequestedJ: 100, RFAtNodeW: 1e-5},
		},
		Audit: detect.Audit{Deaths: []detect.DeathObs{
			{Node: 2, Time: 250, Reachable: true},
		}},
		Exposures: []defense.Exposure{{By: "harvest-verification", At: 150, Victim: 2}},
		Caught:    true,
		CaughtAt:  160,
		CaughtBy:  "harvest-verification",
	}
	events := Timeline(o)
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	// Chronological: spoof(100), exposure(150), impound(160), death(250),
	// session(300).
	wantKinds := []string{"spoof", "exposure", "impound", "death", "session"}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Errorf("event %d = %q, want %q (order %v)", i, events[i].Kind, k, events)
		}
	}
	if !strings.Contains(events[0].Text, "SPOOF") {
		t.Errorf("spoof text = %q", events[0].Text)
	}
}

func TestFormatTimeline(t *testing.T) {
	lines := FormatTimeline([]TimelineEvent{
		{T: 86400 + 3*3600 + 150, Kind: "death", Node: 4, Text: "node 4 EXHAUSTED"},
	})
	if len(lines) != 1 {
		t.Fatal("line count")
	}
	if !strings.HasPrefix(lines[0], "day  1 03:02") {
		t.Errorf("formatted line = %q", lines[0])
	}
}

// Integration: a real attack outcome's timeline is internally consistent.
func TestTimelineFromRealCampaign(t *testing.T) {
	nw, ch := buildScenario(t, 42, 100)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	events := Timeline(o)
	if len(events) < len(o.Sessions) {
		t.Fatalf("timeline shorter than session record")
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	spoofs := 0
	for _, e := range events {
		if e.Kind == "spoof" {
			spoofs++
		}
	}
	if spoofs == 0 {
		t.Error("no spoof events in an attack timeline")
	}
}
