package campaign

// Live checkpoint/resume. A CheckpointPlan on the Config arms barrier
// hooks in the drive loop (single-charger) or after every engine event
// (fleet): each firing captures a version-2 snapshot — network, charger,
// engine clock and keyed pending events, ledger, world, policy phase
// machine, RNG position — and hands it to the plan's Sink. Capture is
// pure reads, so a checkpointed run produces a byte-identical Outcome to
// an unhooked one; Resume/ResumeFleet rebuild the run from the snapshot
// and continue to the same Outcome the uninterrupted run would have
// produced. The golden checkpoint fence pins this for every flavor.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/policy"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// ErrStopped is returned by a run whose CheckpointPlan.Stop fired: the
// final checkpoint was captured and sunk, and the run exited at the
// barrier instead of completing. The daemon's drain path uses it to park
// in-flight jobs resumably.
var ErrStopped = errors.New("campaign: run stopped at checkpoint")

// CheckpointPlan arms live checkpointing on a run.
type CheckpointPlan struct {
	// Scenario is recorded into each snapshot as provenance (resume
	// rebuilds nothing from it, but sweep tooling keys on it).
	Scenario trace.Scenario
	// Every is the minimum wall-clock interval between captures;
	// non-positive captures at every barrier. The gate is wall-clock, not
	// sim-clock: checkpoint cost should track real time at risk.
	Every time.Duration
	// Sink receives each captured snapshot. A non-nil error aborts the
	// run with that error. Required.
	Sink func(*snapshot.Snapshot) error
	// Stop, when non-nil and returning true at a barrier, forces a final
	// capture (bypassing Every) and ends the run with ErrStopped.
	Stop func() bool
}

// worldParams maps the run config onto the world layer (shared by the
// fresh-run and resume constructors so they can never drift apart).
func worldParams(cfg Config) world.Params {
	return world.Params{
		PollSec:          cfg.PollSec,
		RequestFrac:      cfg.RequestFrac,
		SampleEverySec:   cfg.SampleEverySec,
		AuditEverySec:    cfg.AuditEverySec,
		MinAuditSessions: cfg.MinAuditSessions,
		PendingGraceSec:  cfg.PendingGraceSec,
		Detectors:        cfg.Detectors,
		Faults:           cfg.Faults,
		Shards:           cfg.Shards,
	}
}

// checkpointer drives single-charger captures at policy barriers.
type checkpointer struct {
	plan *CheckpointPlan
	nw   *wrsn.Network
	ch   *mc.Charger
	w    *world.W
	led  *ledger.L
	env  *policy.Env
	pol  policy.Policy
	keys []wrsn.KeyNode
	r    *rng.Stream
	last time.Time
}

// barrier is the Env.Checkpoint hook.
func (c *checkpointer) barrier(b policy.Barrier) error {
	stop := c.plan.Stop != nil && c.plan.Stop()
	if !stop && c.plan.Every > 0 && time.Since(c.last) < c.plan.Every {
		return nil
	}
	ps, err := policy.CaptureState(c.pol, c.env, b)
	if err != nil {
		return err
	}
	cs := &snapshot.CampaignState{
		World:  c.w.State(),
		Ledger: ledger.StateOf(c.led),
		Rand:   c.r.State(),
		Keys:   append([]wrsn.KeyNode(nil), c.keys...),
		Policy: ps,
	}
	snap, err := snapshot.CaptureLive(c.plan.Scenario, c.nw, c.ch, c.w.Engine(), cs)
	if err != nil {
		return err
	}
	if err := c.plan.Sink(snap); err != nil {
		return err
	}
	c.last = time.Now()
	if stop {
		return ErrStopped
	}
	return nil
}

// Resume continues a single-charger campaign from a live checkpoint. The
// cfg must carry the same run parameters as the original (a jobspec
// regenerates them from the spec); in particular cfg.Faults must be a
// fresh plan built from the same faults.Spec — New is pure, so the event
// list is identical, and the snapshot's loss-stream cursor repositions
// the only incrementally consumed stream. The resumed run executes the
// exact event and draw sequence the uninterrupted run would have, so its
// Outcome digest matches byte-for-byte.
func Resume(ctx context.Context, snap *snapshot.Snapshot, cfg Config) (*Outcome, error) {
	if snap == nil || !snap.Live() {
		return nil, fmt.Errorf("campaign: Resume needs a live (version-%d) snapshot", snapshot.VersionLive)
	}
	cs := snap.Campaign()
	if cs.Fleet != nil {
		return nil, fmt.Errorf("campaign: snapshot holds a fleet run; use ResumeFleet")
	}
	if cs.Policy == nil {
		return nil, fmt.Errorf("campaign: snapshot lacks policy state")
	}
	cfg.applyDefaults()
	nw, ch, _, err := snap.Fork()
	if err != nil {
		return nil, err
	}
	if ch == nil {
		return nil, fmt.Errorf("campaign: single-charger checkpoint has no charger")
	}
	led := ledger.FromState(cs.Ledger)
	w, err := world.Resume(ctx, nw, led, worldParams(cfg), cfg.Probe, cs.World)
	if err != nil {
		return nil, err
	}
	if err := w.Engine().RestorePending(snap.PendingEvents()); err != nil {
		return nil, err
	}
	r := rng.FromState(cs.Rand)
	a := session.NewActor(w, ch, led, r, session.Params{
		Band:           cfg.Band,
		BenignFailRate: cfg.BenignFailRate,
		SingleEmitter:  cfg.SingleEmitter,
		CooldownSec:    cfg.CooldownSec,
		Defense:        cfg.Defense,
	}, cfg.Probe)
	env := &policy.Env{
		W: w, A: a, L: led,
		Horizon:         cfg.HorizonSec,
		PollSec:         cfg.PollSec,
		RequestFrac:     cfg.RequestFrac,
		CooldownSec:     cfg.CooldownSec,
		PendingGraceSec: cfg.PendingGraceSec,
		NoFill:          cfg.NoFill,
		Progressive:     cfg.Progressive,
		MaxCovers:       cfg.MaxCovers,
		InstanceBudgetJ: cfg.InstanceBudgetJ,
		AuditEverySec:   cfg.AuditEverySec,
		Scheduler:       cfg.Scheduler,
		Rand:            r,
		Probe:           cfg.Probe,
		Targets:         make(map[wrsn.NodeID]bool),
		Blocked:         make(map[wrsn.NodeID]bool),
	}
	pol, rp, err := policy.FromState(cs.Policy, env)
	if err != nil {
		return nil, err
	}
	keys := append([]wrsn.KeyNode(nil), cs.Keys...)
	for _, k := range keys {
		w.MarkKey(k.ID)
	}
	if cfg.Checkpoint != nil {
		ck := &checkpointer{
			plan: cfg.Checkpoint, nw: nw, ch: ch, w: w, led: led,
			env: env, pol: pol, keys: keys, r: r, last: time.Now(),
		}
		env.Checkpoint = ck.barrier
	}
	if err := policy.DriveResume(env, pol, rp); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return finish(led, w, ch, cfg, pol.Name(), keys, pol.Planned()), nil
}
