package ledger

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
)

// State is the ledger's serializable checkpoint form. Fields mirror L
// one-for-one except FirstDeath, which rides as a pointer so the +Inf
// "nobody has died yet" sentinel survives JSON (absent on the wire means
// +Inf).
type State struct {
	Sessions       []charging.Session `json:"sessions,omitempty"`
	Audit          detect.Audit       `json:"audit"`
	Issued         int                `json:"issued,omitempty"`
	Served         int                `json:"served,omitempty"`
	Samples        []Sample           `json:"samples,omitempty"`
	Exposures      []defense.Exposure `json:"exposures,omitempty"`
	FalseAlarms    int                `json:"false_alarms,omitempty"`
	WitnessSamples int                `json:"witness_samples,omitempty"`
	ExtraTargets   int                `json:"extra_targets,omitempty"`
	WaitSum        float64            `json:"wait_sum,omitempty"`
	WaitN          int                `json:"wait_n,omitempty"`
	Faults         faults.Report      `json:"faults"`
	FirstDeath     *float64           `json:"first_death,omitempty"`
	Caught         bool               `json:"caught,omitempty"`
	CaughtAt       float64            `json:"caught_at,omitempty"`
	CaughtBy       string             `json:"caught_by,omitempty"`
}

// StateOf captures the ledger. All slices are deep-copied, so the state
// is immutable with respect to the continuing run.
func StateOf(l *L) State {
	st := State{
		Sessions: append([]charging.Session(nil), l.Sessions...),
		Audit: detect.Audit{
			Sessions: append([]detect.SessionObs(nil), l.Audit.Sessions...),
			Deaths:   append([]detect.DeathObs(nil), l.Audit.Deaths...),
			Unserved: append([]detect.RequestObs(nil), l.Audit.Unserved...),
		},
		Issued:         l.Issued,
		Served:         l.Served,
		Samples:        append([]Sample(nil), l.Samples...),
		Exposures:      append([]defense.Exposure(nil), l.Exposures...),
		FalseAlarms:    l.FalseAlarms,
		WitnessSamples: l.WitnessSamples,
		ExtraTargets:   l.ExtraTargets,
		WaitSum:        l.WaitSum,
		WaitN:          l.WaitN,
		Faults:         l.Faults,
		Caught:         l.Caught,
		CaughtAt:       l.CaughtAt,
		CaughtBy:       l.CaughtBy,
	}
	st.Faults.SinkWindows = append([]faults.Window(nil), l.Faults.SinkWindows...)
	if !math.IsInf(l.FirstDeath, 1) {
		fd := l.FirstDeath
		st.FirstDeath = &fd
	}
	return st
}

// FromState reconstructs a ledger from a captured state.
func FromState(st State) *L {
	l := &L{
		Sessions: append([]charging.Session(nil), st.Sessions...),
		Audit: detect.Audit{
			Sessions: append([]detect.SessionObs(nil), st.Audit.Sessions...),
			Deaths:   append([]detect.DeathObs(nil), st.Audit.Deaths...),
			Unserved: append([]detect.RequestObs(nil), st.Audit.Unserved...),
		},
		Issued:         st.Issued,
		Served:         st.Served,
		Samples:        append([]Sample(nil), st.Samples...),
		Exposures:      append([]defense.Exposure(nil), st.Exposures...),
		FalseAlarms:    st.FalseAlarms,
		WitnessSamples: st.WitnessSamples,
		ExtraTargets:   st.ExtraTargets,
		WaitSum:        st.WaitSum,
		WaitN:          st.WaitN,
		Faults:         st.Faults,
		FirstDeath:     math.Inf(1),
		Caught:         st.Caught,
		CaughtAt:       st.CaughtAt,
		CaughtBy:       st.CaughtBy,
	}
	l.Faults.SinkWindows = append([]faults.Window(nil), st.Faults.SinkWindows...)
	if st.FirstDeath != nil {
		l.FirstDeath = *st.FirstDeath
	}
	return l
}
