// Package ledger is the bookkeeping layer of a campaign: it accumulates
// everything a run produces — sessions, sink-side audit evidence, lifetime
// samples, countermeasure exposures, queueing-delay statistics, the
// caught-charger record — and nothing else. The world, session, and policy
// layers write into one shared L; the campaign composition root reads it
// back out to assemble the public Outcome. The ledger never advances time,
// touches the network, or draws randomness, which is what keeps the
// accumulation order (and therefore byte-identical Outcomes) entirely in
// the hands of the layers above.
package ledger

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
)

// Sample is one point of the lifetime time series.
type Sample struct {
	T         float64
	Alive     int
	Connected int
	KeyAlive  int
}

// L accumulates the ground truth and observations of one campaign run.
// Fields are exported for the composition root; mutation during a run goes
// through the world/session layers so ordering stays deterministic.
type L struct {
	// Sessions is the full session record (simulation ground truth).
	Sessions []charging.Session
	// Audit is what the sink observed: sessions, unserved requests, deaths.
	Audit detect.Audit
	// Issued / Served tally the demand the chargers saw.
	Issued int
	Served int
	// Samples is the lifetime time series (empty unless sampling is on).
	Samples []Sample
	// Exposures lists countermeasure catches; FalseAlarms counts
	// countermeasure alerts raised on genuine sessions.
	Exposures   []defense.Exposure
	FalseAlarms int
	// WitnessSamples counts neighbor-witness measurements taken.
	WitnessSamples int
	// ExtraTargets counts emergent key nodes a Progressive attacker
	// engaged beyond the plan-time set.
	ExtraTargets int
	// WaitSum/WaitN aggregate queueing delay over served requests.
	WaitSum float64
	WaitN   int
	// Faults is the fault ledger: what the plan injected, what the run
	// absorbed, what stuck. All-zero on fault-free runs.
	Faults faults.Report
	// FirstDeath is the earliest node death, +Inf when none died.
	FirstDeath float64
	// Caught records a live impoundment: when and by which detector.
	Caught   bool
	CaughtAt float64
	CaughtBy string
}

// New returns an empty ledger.
func New() *L { return &L{FirstDeath: math.Inf(1)} }

// Catch records the charger's impoundment; only the first catch counts.
func (l *L) Catch(at float64, by string) {
	if l.Caught {
		return
	}
	l.Caught, l.CaughtAt, l.CaughtBy = true, at, by
}

// NoteDeath folds a death time into the first-death statistic.
func (l *L) NoteDeath(at float64) {
	if at < l.FirstDeath {
		l.FirstDeath = at
	}
}

// NoteWait folds one request→session queueing delay into the mean.
func (l *L) NoteWait(sec float64) {
	l.WaitSum += sec
	l.WaitN++
}

// MeanWaitSec returns the average queueing delay over served requests,
// 0 when nothing was served.
func (l *L) MeanWaitSec() float64 {
	if l.WaitN == 0 {
		return 0
	}
	return l.WaitSum / float64(l.WaitN)
}
