// Package session is the charging-session layer of a campaign: an Actor
// wraps one mobile charger and performs genuine (focus) and
// destructive-interference (spoof) sessions against nodes of the shared
// world, including travel, the rectifier's harvest, benign failure noise,
// cooldown bookkeeping, and the countermeasure checks (harvest
// verification, neighbor witnessing) that run against every completed
// session. The Actor advances the world clock through the world layer
// while it acts and writes results into the shared ledger; it makes no
// scheduling decisions — policies do.
package session

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Params fixes the session-physics knobs for one run.
type Params struct {
	// Band is the spoofing RF band.
	Band wpt.SpoofBand
	// BenignFailRate is the probability a genuine session delivers
	// nothing (misdocking, obstruction).
	BenignFailRate float64
	// SingleEmitter ablates the superposition primitive: spoof sessions
	// degenerate into genuine charges.
	SingleEmitter bool
	// CooldownSec is the post-session re-request suppression.
	CooldownSec float64
	// Defense enables the countermeasure extensions.
	Defense defense.Config
}

// Actor performs charging sessions with one charger against the shared
// world, drawing session randomness (benign failures, phase jitter,
// countermeasure duty cycles) from the campaign's stream in a fixed order.
type Actor struct {
	W     *world.W
	Ch    *mc.Charger
	L     *ledger.L
	R     *rng.Stream
	P     Params
	rect  wpt.Rectifier
	probe obs.Probe

	// Witness-scan scratch, reused across sessions.
	witnessBuf []*wrsn.Node
	witnessPts []geom.Point
	witnessRF  []float64
}

// NewActor wires an actor over the world, ledger, and charger.
func NewActor(w *world.W, ch *mc.Charger, led *ledger.L, r *rng.Stream, p Params, probe obs.Probe) *Actor {
	return &Actor{W: w, Ch: ch, L: led, R: r, P: p, rect: ch.Rectifier(), probe: obs.Or(probe)}
}

// Focus performs a genuine charge of the node for up to dur seconds
// (clamped so the victim cannot die mid-session), returning the session.
// The caller must already have positioned the charger at the node's dock.
func (a *Actor) Focus(node *wrsn.Node, dur float64) (charging.Session, error) {
	rate, err := a.Ch.DeliveredPower(node.Pos)
	if err != nil {
		return charging.Session{}, err
	}
	drain := a.W.Network().DrainWatts(node.ID)
	if net := rate - drain; net > 0 {
		// Clamp to topping the battery off at the *net* fill rate.
		if fill := (node.Battery.Capacity() - node.Battery.Level()) / net; fill < dur {
			dur = fill
		}
	}
	if drain > 0 {
		if life := node.Battery.Level() / drain; dur > 0.95*life && rate <= drain {
			dur = 0.95 * life
		}
	}
	if err := a.Ch.SpendRadiation(dur); err != nil {
		return charging.Session{}, err
	}
	solicited := a.W.Queue().Has(node.ID)
	requested, meterBefore := a.PendingNeed(node), node.Battery.MeterRead()
	start := a.W.Now()
	// Benign session failure: the charger misdocks or is obstructed and
	// the session delivers nothing — the background noise real detectors
	// must tolerate (which is why the gain detector needs consecutive
	// zeros to fire).
	nominalRate := rate
	if a.R.Bool(a.P.BenignFailRate) {
		rate = 0
	}
	// The victim drains with everyone else during the session; the charge
	// lands continuously but is applied at session end (the clamp above
	// guarantees survival). Charger breakdowns suspend delivery: only the
	// actively-radiating seconds charge the battery.
	active := a.advance(dur)
	delivered := node.Battery.Charge(rate * active)
	s := charging.Session{
		Node:       node.ID,
		Kind:       charging.SessionFocus,
		Start:      start,
		End:        a.W.Now(),
		RequestedJ: requested,
		DeliveredJ: delivered,
		MeterGainJ: node.Battery.MeterRead() - meterBefore,
		RFAtNodeW:  4 * a.Ch.Array().Model.Power(a.Ch.Params().ServiceDist),
	}
	a.Complete(node.ID, s, true, solicited)
	a.applyDefenses(node, s, nominalRate, rate, false, func(dst []float64, pts []geom.Point) []float64 {
		out, err := a.Ch.RadiatedPowerAtAll(node.Pos, dst, pts)
		if err != nil {
			// An unsteerable session measures zero everywhere, matching
			// the scalar query's per-point error fallback.
			if cap(dst) < len(pts) {
				dst = make([]float64, len(pts))
			}
			dst = dst[:len(pts)]
			for i := range dst {
				dst[i] = 0
			}
			return dst
		}
		return out
	})
	return s, nil
}

// Spoof performs a destructive-interference visit: the charger steers a
// null at the victim and radiates — at full drive, so external observers
// see a normal charging session — while the victim harvests (almost)
// nothing. With the SingleEmitter ablation the null is physically
// impossible and the "spoof" degenerates into a genuine charge.
func (a *Actor) Spoof(node *wrsn.Node, dur float64) (charging.Session, error) {
	if a.P.SingleEmitter {
		// One coherent element cannot cancel itself; to keep up
		// appearances it must radiate, and radiating charges the victim.
		return a.Focus(node, dur)
	}
	arr := a.Ch.Array()
	scale, err := wpt.SteerSpoof(arr, node.Pos, a.P.Band)
	if err != nil {
		return charging.Session{}, err
	}
	errs := []float64{
		a.R.NormMeanStd(0, arr.PhaseJitterRad),
		a.R.NormMeanStd(0, arr.PhaseJitterRad),
	}
	rf, err := arr.RFPowerAtWithJitter(node.Pos, errs)
	if err != nil {
		return charging.Session{}, err
	}
	spoofPower := a.Ch.Params().RadiateW * scale * scale
	if err := a.Ch.SpendEnergy(spoofPower * dur); err != nil {
		return charging.Session{}, err
	}
	solicited := a.W.Queue().Has(node.ID)
	requested, meterBefore := a.PendingNeed(node), node.Battery.MeterRead()
	start := a.W.Now()
	active := a.advance(dur)
	delivered := node.Battery.Charge(a.rect.DCOutput(rf) * active)
	s := charging.Session{
		Node:       node.ID,
		Kind:       charging.SessionSpoof,
		Start:      start,
		End:        a.W.Now(),
		RequestedJ: requested,
		DeliveredJ: delivered,
		MeterGainJ: node.Battery.MeterRead() - meterBefore,
		RFAtNodeW:  rf,
	}
	// Cooldown applies only when the victim's carrier detector saw an
	// active charger; a failed spoof (null too deep) leaves the node free
	// to re-request immediately.
	a.Complete(node.ID, s, rf >= a.P.Band.CarrierDetectW, solicited)
	claimed, err := a.Ch.DeliveredPower(node.Pos)
	if err != nil {
		claimed = 0
	}
	a.applyDefenses(node, s, claimed, a.rect.DCOutput(rf), true, arr.RFPowerAtAll)
	return s, nil
}

// advance moves the world clock until the session has accumulated dur
// seconds of *active* (charger-operational) time, suspending across any
// charger breakdown windows that open mid-session and resuming after
// repair. It returns the active seconds achieved — exactly dur on the
// normal path (so fault-free delivered energy is bit-identical to the
// pre-fault code), less when the run is canceled or the breakdown never
// repairs within the bounded retries.
func (a *Actor) advance(dur float64) float64 {
	start := a.W.Now()
	base := a.W.ChargerDownSecTotal()
	target := start + dur
	active := 0.0
	// Bounded resume attempts: each iteration either completes the
	// session or extends past one breakdown window; plans with more
	// than 8 windows inside one session are beyond the model.
	for i := 0; i < 8; i++ {
		a.W.AdvanceTo(target)
		down := a.W.ChargerDownSecTotal() - base
		active = a.W.Now() - start - down
		if short := dur - active; short <= 1e-6 {
			return dur
		} else if a.W.Canceled() {
			break
		} else {
			target = a.W.Now() + short
			if until := a.W.ChargerDownUntil(); until > a.W.Now() {
				target = until + short
			}
		}
	}
	return math.Max(0, math.Min(active, dur))
}

// PendingNeed returns the node's pending requested energy, or its current
// shortfall when no request is pending (an unsolicited session still
// claims a requested amount in telemetry).
func (a *Actor) PendingNeed(node *wrsn.Node) float64 {
	if req, ok := a.W.Queue().Get(node.ID); ok {
		return req.NeedJ
	}
	return node.Battery.Capacity() - node.Battery.Level()
}

// Complete records a finished session: ground truth, the sink's
// observation, wait statistics, request clearing, and the cooldown (only
// when the victim's carrier detector saw an active charger). The fleet's
// engine-scheduled sessions use it directly.
func (a *Actor) Complete(id wrsn.NodeID, s charging.Session, carrierSeen, solicited bool) {
	a.L.Sessions = append(a.L.Sessions, s)
	a.L.Audit.Sessions = append(a.L.Audit.Sessions, detect.SessionObs{
		Node: id, Start: s.Start, End: s.End,
		RequestedJ: s.RequestedJ, MeterGainJ: s.MeterGainJ,
		Solicited: solicited,
	})
	if req, ok := a.W.Queue().Get(id); ok {
		a.L.NoteWait(s.Start - req.IssuedAt)
		a.probe.Observe("campaign.wait_sec", s.Start-req.IssuedAt)
	}
	if a.W.Queue().Remove(id) {
		a.L.Served++
		a.probe.Add("campaign.requests.served", 1)
	}
	if carrierSeen {
		a.W.SetCooldown(id, s.End+a.P.CooldownSec)
	}
	if a.probe.Enabled() {
		kind := "session.focus"
		if s.Kind == charging.SessionSpoof {
			kind = "session.spoof"
		}
		a.probe.Add("campaign."+kind, 1)
		a.probe.Observe("campaign.session_sec", s.End-s.Start)
		a.probe.Event(obs.Event{T: s.Start, Kind: kind, Node: int(id), Value: s.MeterGainJ})
	}
}

// TravelTo moves the charger to the node's dock, advancing the world by
// the travel time.
func (a *Actor) TravelTo(node *wrsn.Node) error {
	dock := a.Ch.ServicePoint(node.Pos)
	dt := a.Ch.TravelTime(dock)
	if a.probe.Enabled() {
		a.probe.Event(obs.Event{T: a.W.Now(), Kind: "charger.travel", Node: int(node.ID), Value: a.Ch.Pos().Dist(dock)})
	}
	if err := a.Ch.Travel(dock); err != nil {
		return err
	}
	a.W.AdvanceTo(a.W.Now() + dt)
	return nil
}

// applyDefenses runs the enabled countermeasures against a just-completed
// session. claimedRateW is the DC rate the session purported to deliver;
// actualDCW what the victim's rectifier truly produced; fieldAt evaluates
// the charger's RF field at a batch of points for witnesses (RFPowerAtAll
// shaped); spoofed is simulation ground truth deciding exposure vs false
// alarm.
func (a *Actor) applyDefenses(node *wrsn.Node, s charging.Session, claimedRateW, actualDCW float64, spoofed bool, fieldAt func([]float64, []geom.Point) []float64) {
	def := a.P.Defense
	if !def.Enabled() {
		return
	}
	expose := func(by string, dc, rf float64) {
		e := defense.Exposure{
			By: by, At: a.W.Now(), Victim: int(node.ID),
			MeasuredDCW: dc, WitnessRFW: rf,
		}
		if spoofed {
			a.L.Exposures = append(a.L.Exposures, e)
			a.probe.Add("campaign.defense.exposures", 1)
			a.probe.Event(obs.Event{T: a.W.Now(), Kind: "defense.exposure", Node: int(node.ID), Value: dc, Detail: by})
			if a.W.Auditing() {
				a.L.Catch(a.W.Now(), by)
			}
		} else {
			// A benign dead session looks exactly like a spoof to the
			// measurement; the operator investigates and finds a misdock.
			a.L.FalseAlarms++
			a.probe.Add("campaign.defense.false_alarms", 1)
			a.probe.Event(obs.Event{T: a.W.Now(), Kind: "defense.false_alarm", Node: int(node.ID), Value: dc, Detail: by})
		}
	}

	// Harvest verification: the victim samples its own DC mid-session.
	if def.VerifyProb > 0 && node.Alive() && a.R.Bool(def.VerifyProb) {
		cost := def.VerifyCostJ
		if cost <= 0 {
			cost = defense.DefaultVerifyCostJ
		}
		a.drainForDefense(node, cost)
		if def.Judge(claimedRateW, actualDCW) == defense.VerifyFail {
			expose("harvest-verification", actualDCW, 0)
		}
	}

	// Neighbor witnessing: nodes inside the charger's RF range sample the
	// field. A strong attested field plus a zero-gain session is the
	// spoof's remote signature — the null is local to the victim.
	if def.WitnessDutyCycle > 0 {
		gainLow := s.MeterGainJ <= 1
		rangeM := a.Ch.Array().Model.Range
		pos := a.Ch.Pos()
		// The spatial index yields exactly the alive in-range nodes the
		// full scan filtered to, in the same ascending ID order, so the
		// per-witness duty-cycle draws consume the stream identically.
		wit := a.W.Network().NodesNear(a.witnessBuf[:0], pos, rangeM)
		a.witnessBuf = wit
		if len(wit) > 0 {
			// Prefetch the field at every candidate in one batch: the
			// evaluation is deterministic (no stream draws), so computing
			// it up front — including for witnesses the duty cycle then
			// skips — changes nothing observable.
			pts := a.witnessPts[:0]
			for _, w := range wit {
				pts = append(pts, w.Pos)
			}
			a.witnessPts = pts
			a.witnessRF = fieldAt(a.witnessRF[:0], pts)
		}
		for i, w := range wit {
			if w.ID == node.ID {
				continue
			}
			if !a.R.Bool(def.WitnessDutyCycle) {
				continue
			}
			a.L.WitnessSamples++
			a.probe.Add("campaign.defense.witness_samples", 1)
			cost := def.WitnessCostJ
			if cost <= 0 {
				cost = defense.DefaultWitnessCostJ
			}
			a.drainForDefense(w, cost)
			rf := a.witnessRF[i]
			if rf >= def.WitnessThreshold() && gainLow {
				expose("neighbor-witness", actualDCW, rf)
				break
			}
		}
	}
}

// drainForDefense charges a node the energy of a countermeasure action,
// recording the (rare) death it can cause — the drain bypasses the
// world-advance path that normally notices deaths.
func (a *Actor) drainForDefense(node *wrsn.Node, cost float64) {
	if !node.Alive() {
		return
	}
	node.Battery.Drain(cost)
	if node.Battery.Depleted() {
		a.W.RecordDeath(node.ID)
		a.W.Network().Recompute()
	}
}
