package campaign

import (
	"context"
	"errors"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/mc"
)

// A pre-canceled context must abort every campaign entry point with
// context.Canceled before any meaningful simulation work happens.
func TestCampaignCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	nw, ch := buildScenario(t, 42, 60)
	if _, err := RunLegit(ctx, nw, ch, Config{Seed: 42}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunLegit err = %v, want context.Canceled", err)
	}

	nw, ch = buildScenario(t, 42, 60)
	if _, err := RunAttack(ctx, nw, ch, Config{Seed: 42}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAttack err = %v, want context.Canceled", err)
	}

	nw, ch = buildScenario(t, 42, 60)
	chargers := []*mc.Charger{ch, mc.New(nw.Sink(), mc.DefaultParams())}
	if _, err := RunLegitFleet(ctx, nw, chargers, Config{Seed: 42}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunLegitFleet err = %v, want context.Canceled", err)
	}
}

// The background-context wrappers must behave exactly as before the
// context redesign: run to completion with no error.
func TestBackgroundWrappersStillComplete(t *testing.T) {
	nw, ch := buildScenario(t, 7, 60)
	if _, err := RunLegit(context.Background(), nw, ch, Config{Seed: 7, HorizonSec: 6 * 3600}); err != nil {
		t.Fatalf("RunLegit: %v", err)
	}
}
