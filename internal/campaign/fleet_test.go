package campaign

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func runFleet(t *testing.T, seed uint64, n, k int) *FleetOutcome {
	t.Helper()
	nw, _, err := trace.DefaultScenario(seed, n).Build()
	if err != nil {
		t.Fatal(err)
	}
	chargers := make([]*mc.Charger, k)
	for i := range chargers {
		chargers[i] = mc.New(nw.Sink(), mc.DefaultParams())
	}
	o, err := RunLegitFleet(context.Background(), nw, chargers, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFleetKeepsNetworkAlive(t *testing.T) {
	o := runFleet(t, 42, 300, 2)
	if o.DeadTotal != 0 {
		t.Errorf("fleet of 2 lost %d nodes", o.DeadTotal)
	}
	if o.RequestsServed < o.RequestsIssued*95/100 {
		t.Errorf("served %d/%d", o.RequestsServed, o.RequestsIssued)
	}
	if o.CoverUtilityJ <= 0 || o.EnergySpentJ <= 0 {
		t.Error("fleet did no work")
	}
}

func TestFleetSharesLoad(t *testing.T) {
	one := runFleet(t, 42, 300, 1)
	three := runFleet(t, 42, 300, 3)
	// With more chargers each is proportionally less busy.
	if three.BusyFrac >= one.BusyFrac {
		t.Errorf("busy fraction did not drop: k=1 %.2f vs k=3 %.2f", one.BusyFrac, three.BusyFrac)
	}
	if three.BusyFrac > one.BusyFrac/2 {
		t.Errorf("load not shared: k=1 %.2f vs k=3 %.2f", one.BusyFrac, three.BusyFrac)
	}
	// Serving everything either way at this size.
	if three.RequestsServed < three.RequestsIssued-5 {
		t.Errorf("fleet missed requests: %d/%d", three.RequestsServed, three.RequestsIssued)
	}
}

func TestFleetAuditClean(t *testing.T) {
	o := runFleet(t, 7, 200, 2)
	for _, s := range o.Audit.Sessions {
		if !s.Solicited {
			t.Error("fleet performed unsolicited session")
		}
	}
	if len(o.Audit.Sessions) != o.RequestsServed {
		t.Errorf("audited sessions %d vs served %d", len(o.Audit.Sessions), o.RequestsServed)
	}
}

func TestFleetValidation(t *testing.T) {
	nw, _, err := trace.DefaultScenario(1, 50).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLegitFleet(context.Background(), nw, nil, Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestFleetDeterminism(t *testing.T) {
	a := runFleet(t, 11, 200, 2)
	b := runFleet(t, 11, 200, 2)
	if a.RequestsServed != b.RequestsServed || a.CoverUtilityJ != b.CoverUtilityJ ||
		a.EnergySpentJ != b.EnergySpentJ || a.DeadTotal != b.DeadTotal {
		t.Errorf("fleet runs nondeterministic:\n%+v\n%+v", a, b)
	}
}
