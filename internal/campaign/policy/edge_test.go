package policy

// Edge-case tests against the extracted policy implementations: the live
// audit impounding the charger mid-campaign, progressive recruiting of
// emergent separators, and a target whose spoof window is irrecoverably
// missed. They wire the world/session/ledger layers directly, the same
// way the campaign composition root does.

import (
	"context"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// testEnv wires the four layers for a policy test, mirroring the
// campaign composition root with its defaults. wpMut adjusts the world
// parameters and envMut the Env before anything runs.
func testEnv(t *testing.T, seed uint64, n int, chp mc.Params, wpMut func(*world.Params), envMut func(*Env)) *Env {
	t.Helper()
	nw, _, err := trace.DefaultScenario(seed, n).Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := mc.New(nw.Sink(), chp)
	led := ledger.New()
	wp := world.Params{
		PollSec:          900,
		RequestFrac:      wrsn.DefaultRequestFraction,
		AuditEverySec:    24 * 3600,
		MinAuditSessions: 10,
		PendingGraceSec:  48 * 3600,
		Detectors:        detect.Suite(),
	}
	if wpMut != nil {
		wpMut(&wp)
	}
	w := world.New(context.Background(), nw, led, wp, nil)
	r := rng.New(seed).Split("campaign")
	a := session.NewActor(w, ch, led, r, session.Params{
		Band:           wpt.DefaultSpoofBand(),
		BenignFailRate: 0.005,
		CooldownSec:    attack.DefaultCooldownSec,
	}, nil)
	env := &Env{
		W: w, A: a, L: led,
		Horizon:         attack.DefaultHorizonSec,
		PollSec:         wp.PollSec,
		RequestFrac:     wp.RequestFrac,
		CooldownSec:     attack.DefaultCooldownSec,
		PendingGraceSec: wp.PendingGraceSec,
		AuditEverySec:   wp.AuditEverySec,
		Scheduler:       charging.NJNP{},
		Rand:            r,
		Probe:           obs.Or(nil),
		Targets:         make(map[wrsn.NodeID]bool),
		Blocked:         make(map[wrsn.NodeID]bool),
	}
	if envMut != nil {
		envMut(env)
	}
	return env
}

// flagAfter is a deterministic test detector: it flags as soon as the
// audit holds at least n sessions.
type flagAfter struct{ n int }

func (flagAfter) Name() string                   { return "flag-after" }
func (d flagAfter) Score(a detect.Audit) float64 { return float64(len(a.Sessions)) }
func (d flagAfter) Threshold() float64           { return float64(d.n) }

// TestAttackerCaughtMidCampaign impounds the charger with a hair-trigger
// detector and checks the hand-over: auditing stops, the honest
// replacement takes over, and no spoof session starts after the catch.
func TestAttackerCaughtMidCampaign(t *testing.T) {
	env := testEnv(t, 42, 120, mc.DefaultParams(),
		func(wp *world.Params) {
			wp.AuditEverySec = 6 * 3600
			wp.MinAuditSessions = 1
			wp.Detectors = []detect.Detector{flagAfter{n: 3}}
		},
		func(e *Env) { e.AuditEverySec = 6 * 3600 })
	p := NewAttacker(SolverCSA)
	if err := Drive(env, p); err != nil {
		t.Fatal(err)
	}
	if !env.L.Caught {
		t.Fatal("hair-trigger detector never caught the attacker")
	}
	if env.L.CaughtBy != "flag-after" {
		t.Errorf("CaughtBy = %q, want flag-after", env.L.CaughtBy)
	}
	if env.L.CaughtAt >= env.Horizon {
		t.Errorf("CaughtAt = %v, want before the horizon %v", env.L.CaughtAt, env.Horizon)
	}
	if env.W.Auditing() {
		t.Error("auditing still armed after the impoundment")
	}
	if !p.honest {
		t.Error("attacker never flipped to the honest replacement")
	}
	after := 0
	for _, s := range env.L.Sessions {
		if s.Start < env.L.CaughtAt {
			continue
		}
		after++
		if s.Kind == charging.SessionSpoof {
			t.Errorf("spoof session at t=%v after the catch at t=%v", s.Start, env.L.CaughtAt)
		}
	}
	if after == 0 {
		t.Error("honest replacement served nothing after the catch")
	}
}

// TestProgressiveRecruitsEmergentTargets runs the window-aware attacker
// in Progressive mode and checks that separators emerging mid-campaign
// join the target list (and are counted in the ledger).
func TestProgressiveRecruitsEmergentTargets(t *testing.T) {
	env := testEnv(t, 42, 150, mc.DefaultParams(), nil,
		func(e *Env) { e.Progressive = true })
	p := NewAttacker(SolverCSA)
	if err := Drive(env, p); err != nil {
		t.Fatal(err)
	}
	if env.L.ExtraTargets == 0 {
		t.Fatal("progressive attacker recruited no emergent targets")
	}
	planTargets := 0
	for _, stop := range p.res.Plan.Schedule {
		if p.in.Sites[stop.Site].Mandatory {
			planTargets++
		}
	}
	if len(p.engaged) != planTargets+env.L.ExtraTargets {
		t.Errorf("engaged %d targets, want plan-time %d + recruited %d",
			len(p.engaged), planTargets, env.L.ExtraTargets)
	}
}

// TestMissedWindowDropsTarget checks the irrecoverably-late branch: when
// travel can no longer beat the victim's projected death, the target is
// abandoned and unblocked so ordinary service gets it back.
func TestMissedWindowDropsTarget(t *testing.T) {
	// A crawling charger makes every travel time astronomically larger
	// than any depletion forecast.
	chp := mc.DefaultParams()
	chp.SpeedMps = 1e-6
	env := testEnv(t, 42, 120, chp, nil, nil)

	// Pick a node with a finite projected death — a loaded relay.
	var site attack.Site
	found := false
	for _, n := range env.W.Network().Nodes() {
		f, err := env.W.Network().ForecastAt(n.ID, 0, env.RequestFrac)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(f.DeathAt, 1) {
			site = attack.Site{Node: n.ID, Pos: n.Pos, Dur: 4 * 3600, Mandatory: true, Kind: attack.VisitSpoof}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("scenario has no node with a finite depletion forecast")
	}

	p := NewAttacker(SolverCSA)
	p.pending = []attack.Site{site}
	p.engaged = map[wrsn.NodeID]bool{site.Node: true}
	env.Targets[site.Node] = true
	env.Blocked[site.Node] = true

	act, err := p.targetsAction(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := act.(Noop); !ok {
		t.Errorf("action = %T, want Noop", act)
	}
	if len(p.pending) != 0 {
		t.Errorf("pending = %d targets, want the missed window dropped", len(p.pending))
	}
	if env.Blocked[site.Node] {
		t.Error("dropped target still blocked from genuine service")
	}
	if p.phase != phCoverGuard {
		t.Errorf("phase = %d, want phCoverGuard", p.phase)
	}
}
