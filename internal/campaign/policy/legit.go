package policy

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Legit is the uncompromised on-demand service: the charger serves
// requests under the configured scheduler until the horizon or budget
// exhaustion. It is both the lifetime baseline and the negative sample
// for detector ROC curves.
type Legit struct{}

// NewLegit returns the legitimate service policy.
func NewLegit() *Legit { return &Legit{} }

// Name labels the baseline.
func (*Legit) Name() string { return "legit" }

// Bootstrap is empty: honest service plans nothing.
func (*Legit) Bootstrap(*Env) error { return nil }

// Planned returns nil: there is no attack plan.
func (*Legit) Planned() *attack.Result { return nil }

// OnRequest accepts everything: honest service has no blocklist.
func (*Legit) OnRequest(*Env, charging.Request) bool { return true }

// OnArrival always charges genuinely.
func (*Legit) OnArrival(*Env, *wrsn.Node) charging.SessionKind {
	return charging.SessionFocus
}

// NextAction serves the scheduler's pick off the live queue, waits a poll
// step when the queue is empty, and finishes at the horizon or on budget
// exhaustion. A broken-down charger parks until its scheduled repair.
func (*Legit) NextAction(e *Env, prev Result) (Action, error) {
	if prev == Stopped || e.W.Now() >= e.Horizon {
		return Done{}, nil
	}
	if act, ok := e.breakdownWait(); ok {
		return act, nil
	}
	req, ok := e.PickLive()
	if !ok {
		return Wait{Until: math.Min(e.Horizon, e.W.Now()+e.PollSec)}, nil
	}
	return Serve{Req: req, Strict: true}, nil
}
