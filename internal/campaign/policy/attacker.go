package policy

// The TIDE attacker as a phase machine. Window-aware planners (CSA, and
// Direct's skeleton) re-derive their windows live during execution: node
// deaths shift relay loads, so plan-time forecasts drift by hours over a
// multi-day campaign and a static schedule would miss. The window-unaware
// baselines execute their schedule as planned and handle re-requests
// naively — exactly the behavioral difference the detectors exploit.
//
// Phases: targets (aware) or static (unaware) executes the plan; cover
// keeps on-demand service running for the remaining horizon; wrap checks
// whether a live audit impounded the charger, in which case the honest
// phase simulates the operator's replacement serving everyone.

import (
	"math"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// appeaseMarginSec is how far before a pending request goes stale the
// attacker acts on it, covering travel plus a session.
const appeaseMarginSec = 3 * 3600

// appeaseFraction sizes the token charge relative to a full session: long
// enough to read as a genuine (if poor) service, short enough to barely
// postpone the victim's death.
const appeaseFraction = 0.15

type phase int

const (
	phTargets phase = iota // window-aware adaptive target execution
	phStatic               // window-unaware literal schedule execution
	phCoverGuard
	phCover
	phWrap
	phHonest
)

// Attacker executes a TIDE plan produced by the named solver.
type Attacker struct {
	solver      string
	windowAware bool

	in  *attack.Instance
	res attack.Result

	phase   phase
	pending []attack.Site
	engaged map[wrsn.NodeID]bool
	idx     int // next schedule stop (window-unaware)
	// honest flips when the impounded charger's replacement takes over:
	// spoof-on-request stops and every request is served genuinely.
	honest bool
}

// NewAttacker returns the attack policy for the named solver; whether it
// tracks windows live follows from the solver family.
func NewAttacker(solver string) *Attacker {
	p := &Attacker{solver: solver, windowAware: WindowAware(solver)}
	if p.windowAware {
		p.phase = phTargets
	} else {
		p.phase = phStatic
	}
	return p
}

// Name reports the solver driving this attacker.
func (p *Attacker) Name() string { return p.solver }

// Planned returns the executed TIDE plan.
func (p *Attacker) Planned() *attack.Result { return &p.res }

// Bootstrap plans the TIDE instance and primes the phase machine.
func (p *Attacker) Bootstrap(e *Env) error {
	in, res, err := BootstrapAttack(e, p.solver)
	if err != nil {
		return err
	}
	p.in, p.res = in, res
	if p.windowAware {
		targets := make([]attack.Site, 0, len(res.Plan.Schedule))
		for _, stop := range res.Plan.Schedule {
			if site := in.Sites[stop.Site]; site.Mandatory {
				targets = append(targets, site)
			}
		}
		p.pending = append([]attack.Site(nil), targets...)
		p.engaged = make(map[wrsn.NodeID]bool, len(targets))
		for _, s := range targets {
			p.engaged[s.Node] = true
		}
	}
	return nil
}

// OnRequest rejects blocked targets during the window-aware cover phase
// (their kills are pending); everything else may be served. The
// window-unaware attacker accepts target requests — OnArrival turns them
// into spoofs.
func (p *Attacker) OnRequest(e *Env, req charging.Request) bool {
	if p.windowAware && !p.honest {
		return !e.Blocked[req.Node]
	}
	return true
}

// OnArrival answers a window-unaware attacker's target re-requests with
// yet another spoof; every other docking charges genuinely.
func (p *Attacker) OnArrival(e *Env, node *wrsn.Node) charging.SessionKind {
	if !p.windowAware && !p.honest && e.Targets[node.ID] {
		return charging.SessionSpoof
	}
	return charging.SessionFocus
}

// NextAction advances the phase machine.
func (p *Attacker) NextAction(e *Env, prev Result) (Action, error) {
	switch p.phase {
	case phTargets:
		return p.targetsAction(e)
	case phStatic:
		return p.staticAction(e, prev)
	case phCoverGuard:
		// Plan handled: keep the cover by running on-demand service for
		// the remaining horizon — unless filling is ablated off or the
		// charger is already impounded.
		if !e.NoFill && !caught(e) {
			p.phase = phCover
		} else {
			p.phase = phWrap
		}
		return Noop{}, nil
	case phCover:
		if prev == Stopped || e.W.Now() >= e.Horizon || caught(e) {
			p.phase = phWrap
			return Noop{}, nil
		}
		if act, ok := e.breakdownWait(); ok {
			return act, nil
		}
		req, ok := e.PickFiltered(func(r charging.Request) bool { return p.OnRequest(e, r) })
		if !ok {
			return Wait{Until: math.Min(e.Horizon, e.W.Now()+e.PollSec)}, nil
		}
		return Serve{Req: req}, nil
	case phWrap:
		if caught(e) {
			// The flagged charger is impounded; the operator deploys an
			// honest replacement that serves everyone, including
			// surviving targets.
			e.W.StopAuditing()
			p.honest = true
			e.A.Ch.Reset()
			p.phase = phHonest
			return Noop{}, nil
		}
		return Done{}, nil
	case phHonest:
		if prev == Stopped || e.W.Now() >= e.Horizon {
			return Done{}, nil
		}
		if act, ok := e.breakdownWait(); ok {
			return act, nil
		}
		req, ok := e.PickFiltered(nil)
		if !ok {
			return Wait{Until: math.Min(e.Horizon, e.W.Now()+e.PollSec)}, nil
		}
		return Serve{Req: req}, nil
	}
	return Done{}, nil
}

// targetsAction executes the spoof targets adaptively: at every step it
// picks the target with the most urgent live window (last CooldownSec
// before its *current* projected death), serves cover requests while no
// window is due, and spoofs each target inside its window. Targets that
// drift out of danger (their relay load vanished with an upstream death)
// or die early are dropped.
func (p *Attacker) targetsAction(e *Env) (Action, error) {
	if !(len(p.pending) > 0 || e.Progressive) || caught(e) {
		p.phase = phCoverGuard
		return Noop{}, nil
	}
	// A broken-down charger can neither spoof nor cover: park until
	// repair and re-derive every window against the post-repair world.
	if act, ok := e.breakdownWait(); ok {
		return act, nil
	}
	if e.Progressive {
		added := p.recruitEmergentTargets(e)
		e.L.ExtraTargets += added
		if len(p.pending) == 0 {
			if e.W.Now() >= e.Horizon {
				p.phase = phCoverGuard
				return Noop{}, nil
			}
			// Nothing to kill right now: serve covers and wait for the
			// topology to yield new separators.
			return Fill{Deadline: e.W.Now() + e.PollSec, ReturnPos: e.A.Ch.Pos(), FallbackCap: e.Horizon}, nil
		}
	}
	bestIdx := -1
	var bestDepart float64
	bestAppease := false
	alivePending := p.pending[:0]
	for _, s := range p.pending {
		node, err := e.W.Network().Node(s.Node)
		if err != nil {
			return nil, err
		}
		if !node.Alive() {
			continue // died before we got to it; still exhausted
		}
		f, err := e.W.Network().ForecastAt(s.Node, e.W.Now(), e.RequestFrac)
		if err != nil {
			return nil, err
		}
		if math.IsInf(f.DeathAt, 1) {
			// Drift saved it: no longer dies. Drop the target and let
			// ordinary service have it again.
			delete(e.Blocked, s.Node)
			continue
		}
		travel := e.A.Ch.TravelTime(e.A.Ch.ServicePoint(node.Pos))
		if e.W.Now()+travel >= f.DeathAt-s.Dur/2 {
			// Irrecoverably late: a spoof can no longer complete before
			// death. Give the kill up — a genuine serve on its pending
			// request keeps the telemetry clean, whereas letting it die
			// starved is exactly what the died-awaiting-charge detector
			// looks for.
			delete(e.Blocked, s.Node)
			continue
		}
		alivePending = append(alivePending, s)
		// Strike as late as safely possible: the cooldown trick needs the
		// spoof after death−cooldown, but a late spoof also shrinks the
		// window in which post-spoof load drift could let the victim
		// outlive its cooldown and re-request.
		finalAt := math.Max(f.RequestAt, f.DeathAt-e.CooldownSec/2)
		appease := false
		// Slow-draining targets request long before they die; letting the
		// request age past the sink's patience is starvation evidence.
		// Appease such a request with a token partial charge before it
		// goes stale.
		if req, ok := e.W.Queue().Get(s.Node); ok {
			staleAt := req.IssuedAt + e.PendingGraceSec - appeaseMarginSec
			if staleAt < finalAt {
				finalAt = staleAt
				appease = true
			}
		}
		depart := finalAt - travel
		if bestIdx < 0 || depart < bestDepart {
			bestIdx, bestDepart, bestAppease = len(alivePending)-1, depart, appease
		}
	}
	p.pending = alivePending
	if bestIdx < 0 {
		if !e.Progressive {
			p.phase = phCoverGuard
			return Noop{}, nil
		}
		// Progressive mode: no viable target right now; the next pass
		// waits for the topology to yield new separators.
		return Noop{}, nil
	}
	if e.W.Now() < bestDepart {
		// No window due yet: keep the cover going, but stay free to make
		// the next departure.
		return Fill{Deadline: bestDepart, ReturnPos: p.pending[bestIdx].Pos, FallbackCap: bestDepart}, nil
	}
	site := p.pending[bestIdx]
	if bestAppease {
		// Token service: clears the pending request and restarts its
		// cooldown; the victim's death slips a little, and the target
		// stays on the list for its real (final) spoof.
		return appeaseAction{site: site}, nil
	}
	p.pending = append(p.pending[:bestIdx], p.pending[bestIdx+1:]...)
	return spoofAction{site: site}, nil
}

// staticAction executes the plan literally: travel to each stop, wait for
// its scheduled begin when early, and serve or spoof on arrival — no live
// window tracking, no waiting for solicitation. This is how a
// window-unaware attacker behaves, and it is what forecast drift and the
// provenance/zero-gain detectors punish.
func (p *Attacker) staticAction(e *Env, prev Result) (Action, error) {
	if prev == Stopped || p.idx >= len(p.res.Plan.Schedule) || caught(e) {
		p.phase = phCoverGuard
		return Noop{}, nil
	}
	// Even the window-unaware attacker cannot execute a stop on a
	// broken-down charger; it resumes the literal schedule after repair.
	if act, ok := e.breakdownWait(); ok {
		return act, nil
	}
	stop := p.res.Plan.Schedule[p.idx]
	p.idx++
	return staticStop{site: p.in.Sites[stop.Site], begin: stop.Begin}, nil
}

// recruitEmergentTargets (Progressive mode) recomputes the alive
// topology's separators and adds any not yet engaged to the pending list,
// blocked from genuine service like the originals. It returns how many
// joined.
func (p *Attacker) recruitEmergentTargets(e *Env) int {
	added := 0
	for _, k := range e.W.Network().KeyNodes() {
		if p.engaged[k.ID] {
			continue
		}
		node, err := e.W.Network().Node(k.ID)
		if err != nil || !node.Alive() {
			continue
		}
		rate, err := e.A.Ch.DeliveredPower(node.Pos)
		if err != nil || rate <= 0 {
			continue
		}
		p.engaged[k.ID] = true
		e.Blocked[k.ID] = true
		e.Targets[k.ID] = true
		e.Probe.Event(obs.Event{T: e.W.Now(), Kind: "target.recruited", Node: int(k.ID), Value: float64(k.Severed)})
		p.pending = append(p.pending, attack.Site{
			Node:      k.ID,
			Pos:       node.Pos,
			Dur:       node.Battery.Capacity() * (1 - e.RequestFrac) / rate,
			Mandatory: true,
			Kind:      attack.VisitSpoof,
		})
		added++
	}
	return added
}

// appeaseAction performs a short genuine charge at a target whose pending
// request is about to look ignored: the request clears, the meter shows a
// real (small) gain, and the kill is merely postponed.
type appeaseAction struct{ site attack.Site }

// Exec travels and runs the token charge.
func (a appeaseAction) Exec(e *Env, _ Policy) (Result, error) {
	node, err := e.W.Network().Node(a.site.Node)
	if err != nil {
		return Stopped, err
	}
	if err := e.A.TravelTo(node); err != nil {
		return OK, nil // budget exhausted
	}
	if caught(e) || !node.Alive() {
		return OK, nil
	}
	if _, err := e.A.Focus(node, a.site.Dur*appeaseFraction); err != nil {
		return Stopped, err
	}
	return OK, nil
}

// spoofAction travels to the victim and runs the spoof session, waiting
// for the victim's request first if forecast drift made the charger early
// (an uninvited session is what the unsolicited-session detector catches).
type spoofAction struct{ site attack.Site }

// Exec runs the spoof; on any conclusive outcome the target unblocks so a
// post-drift re-request gets a genuine charge instead of starving.
func (a spoofAction) Exec(e *Env, _ Policy) (Result, error) {
	if err := spoofTarget(e, a.site); err != nil {
		return Stopped, err
	}
	// Spoofed (or conclusively missed): if drift lets the victim
	// re-request, serve it genuinely rather than leave evidence.
	delete(e.Blocked, a.site.Node)
	return OK, nil
}

func spoofTarget(e *Env, site attack.Site) error {
	node, err := e.W.Network().Node(site.Node)
	if err != nil {
		return err
	}
	if err := e.A.TravelTo(node); err != nil {
		return nil // budget exhausted: the attack fizzles out
	}
	for !caught(e) && !e.W.Canceled() && node.Alive() && !e.W.Queue().Has(site.Node) {
		f, err := e.W.Network().ForecastAt(site.Node, e.W.Now(), e.RequestFrac)
		if err != nil {
			return err
		}
		if math.IsInf(f.DeathAt, 1) || e.W.Now() >= f.DeathAt {
			return nil
		}
		e.W.AdvanceTo(math.Min(f.DeathAt, e.W.Now()+e.PollSec))
	}
	if caught(e) || !node.Alive() {
		return nil
	}
	// Session length: as long as a genuine recharge (the claim must look
	// right) but never outliving the victim's projected death.
	dur := site.Dur
	if drain := e.W.Network().DrainWatts(site.Node); drain > 0 {
		if life := node.Battery.Level() / drain; life < dur {
			dur = life
		}
	}
	_, err = e.A.Spoof(node, dur)
	return err
}

// staticStop is one literal plan stop of the window-unaware attacker.
type staticStop struct {
	site  attack.Site
	begin float64
}

// Exec travels, waits for the scheduled begin, and serves or spoofs.
func (a staticStop) Exec(e *Env, _ Policy) (Result, error) {
	node, err := e.W.Network().Node(a.site.Node)
	if err != nil {
		return Stopped, err
	}
	if !node.Alive() {
		return OK, nil
	}
	if err := e.A.TravelTo(node); err != nil {
		return Stopped, nil // budget exhausted
	}
	if e.W.Now() < a.begin {
		e.W.AdvanceTo(a.begin)
	}
	if caught(e) || !node.Alive() {
		return OK, nil
	}
	dur := a.site.Dur
	if drain := e.W.Network().DrainWatts(a.site.Node); drain > 0 && a.site.Mandatory {
		if life := node.Battery.Level() / drain; life < dur {
			dur = life
		}
	}
	if a.site.Mandatory {
		if _, err := e.A.Spoof(node, dur); err != nil {
			return Stopped, nil
		}
	} else {
		if _, err := e.A.Focus(node, dur); err != nil {
			return Stopped, nil
		}
	}
	return OK, nil
}
