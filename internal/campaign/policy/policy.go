// Package policy is the decision layer of a campaign: a Policy decides,
// one action at a time, what the charger does next — wait, serve a
// request, opportunistically fill, appease or spoof a target, execute a
// static plan stop, or finish — while the world, session, and ledger
// layers carry the mechanics. Three policies ship: the legitimate
// on-demand server (the no-attack baseline), the window-aware TIDE
// attacker (live window tracking, cover service, appeasement), and the
// window-unaware attacker (literal schedule execution, spoof-on-request).
//
// Extension contract: a Policy is a deterministic state machine.
// Bootstrap plans once at time zero; NextAction inspects the world and
// returns the next Action, receiving the previous action's result so
// budget exhaustion (Stopped) can drive phase changes; OnRequest filters
// which pending requests the serve path may pick; OnArrival chooses the
// session kind once the charger is docked. Policies must draw randomness
// only from Env.Rand (and only in a fixed order) to keep runs replayable.
package policy

import (
	"errors"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Solver names accepted by the attack policies.
const (
	SolverCSA           = "CSA"
	SolverCSAPolished   = "CSA+polish"
	SolverRandom        = "Random"
	SolverGreedyNearest = "GreedyNearest"
	SolverDirect        = "Direct"
)

// ErrUnknownSolver reports an unrecognized solver name.
var ErrUnknownSolver = errors.New("campaign: unknown solver")

// Solve dispatches to the named attack planner.
func Solve(in *attack.Instance, solver string, r *rng.Stream) (attack.Result, error) {
	switch solver {
	case SolverCSA:
		return attack.SolveCSA(in)
	case SolverCSAPolished:
		return attack.SolveCSAPolished(in)
	case SolverRandom:
		return attack.SolveRandom(in, r)
	case SolverGreedyNearest:
		return attack.SolveGreedyNearest(in)
	case SolverDirect:
		return attack.SolveDirect(in)
	default:
		return attack.Result{}, fmt.Errorf("%w: %q", ErrUnknownSolver, solver)
	}
}

// WindowAware reports whether the solver's policy re-derives target
// windows live during execution (CSA and Direct's skeleton do; the
// baselines execute their schedule as planned).
func WindowAware(solver string) bool {
	return solver == SolverCSA || solver == SolverCSAPolished || solver == SolverDirect
}

// Env is the execution environment a policy acts in: the three lower
// layers plus the run's configuration and shared target bookkeeping.
type Env struct {
	W *world.W
	A *session.Actor
	L *ledger.L

	Horizon         float64
	PollSec         float64
	RequestFrac     float64
	CooldownSec     float64
	PendingGraceSec float64
	NoFill          bool
	Progressive     bool
	MaxCovers       int
	InstanceBudgetJ float64
	AuditEverySec   float64
	Scheduler       charging.Scheduler
	Rand            *rng.Stream
	Probe           obs.Probe

	// Targets holds the attack's spoof targets (empty for legit runs);
	// the opportunistic fill never genuinely serves them. Blocked holds
	// targets the attacker must not genuinely serve yet; a target leaves
	// the set once spoofed (a post-drift re-request gets a genuine charge
	// — the kill is lost, stealth is not) or once its window is
	// irrecoverably missed.
	Targets map[wrsn.NodeID]bool
	Blocked map[wrsn.NodeID]bool

	// Checkpoint, when set, is invoked at every handler-safe barrier of
	// the drive loop — the top of each action-loop iteration and after
	// each world step inside Wait advances (including the trailing
	// advance to the horizon). The hook must only read; a non-nil error
	// aborts the drive and propagates out of Drive/DriveResume. Nil
	// disables barriers with zero overhead on the action path.
	Checkpoint func(Barrier) error
}

// Barrier describes where in the drive loop a checkpoint hook fires, and
// carries exactly the loop position needed to resume there: the pending
// action result (loop barriers), the wait target (mid-wait barriers), or
// the final-advance flag.
type Barrier struct {
	// Prev is the Result that feeds the next NextAction call.
	Prev Result
	// InWait marks a barrier inside a hooked Wait advance; WaitUntil is
	// the advance target.
	InWait    bool
	WaitUntil float64
	// Final marks a barrier inside the trailing advance to the horizon.
	Final bool
}

// Stage names for ResumePoint (the serialized form of a Barrier position).
const (
	StageLoop  = "loop"
	StageWait  = "wait"
	StageFinal = "final"
)

// Stage returns the barrier's resume-stage name.
func (b Barrier) Stage() string {
	switch {
	case b.Final:
		return StageFinal
	case b.InWait:
		return StageWait
	default:
		return StageLoop
	}
}

// ResumePoint is the drive-loop position a checkpoint captured; it tells
// DriveResume where to re-enter.
type ResumePoint struct {
	Stage     string
	Prev      Result
	WaitUntil float64
}

// breakdownWait parks the charger through an open breakdown window: the
// policy waits for the scheduled repair (bounded by the horizon) before
// planning anything else. ok is false when the charger is operational or
// the horizon has been reached — the phase machine's own terminal logic
// must then run, or a never-repaired window would spin the action loop.
func (e *Env) breakdownWait() (Action, bool) {
	until := e.W.ChargerDownUntil()
	if until <= e.W.Now() || e.W.Now() >= e.Horizon {
		return nil, false
	}
	return Wait{Until: math.Min(until, e.Horizon)}, true
}

// PickLive runs the scheduler over the live queue (legit service mutates
// nothing, so the view is the queue itself).
func (e *Env) PickLive() (charging.Request, bool) {
	return e.Scheduler.Next(e.W.Queue(), e.A.Ch.Pos(), e.W.Now())
}

// PickFiltered runs the scheduler over a queue view without requests the
// policy's OnRequest hook rejects.
func (e *Env) PickFiltered(keep func(charging.Request) bool) (charging.Request, bool) {
	var view charging.Queue
	for _, req := range e.W.Queue().Pending() {
		if keep != nil && !keep(req) {
			continue
		}
		// Requests in the live queue are already validated.
		if err := view.Add(req); err != nil {
			continue
		}
	}
	return e.Scheduler.Next(&view, e.A.Ch.Pos(), e.W.Now())
}

// Result is what an executed Action reports back into NextAction.
type Result int

const (
	// OK: the action ran (possibly as a no-op); pick the next one.
	OK Result = iota
	// Stopped: the action could not proceed (budget exhaustion, a failed
	// session) and the current service phase is over. Policies translate
	// Stopped into a phase change or Done.
	Stopped
)

// Policy decides a campaign's actions. See the package comment for the
// extension contract.
type Policy interface {
	// Name identifies the policy in the Outcome ("legit" or the solver).
	Name() string
	// Bootstrap plans at time zero, before the first request scan.
	Bootstrap(e *Env) error
	// NextAction returns the next action, or Done to finish. prev is the
	// result of the previously executed action (OK initially).
	NextAction(e *Env, prev Result) (Action, error)
	// OnRequest reports whether the serve path may pick this request.
	OnRequest(e *Env, req charging.Request) bool
	// OnArrival chooses the session kind once the charger is docked at
	// the node; the serve executor honors it.
	OnArrival(e *Env, node *wrsn.Node) charging.SessionKind
	// Planned returns the TIDE plan executed, nil for legit service.
	Planned() *attack.Result
}

// An Action is one unit of charger behavior; Exec runs it against the Env.
type Action interface {
	Exec(e *Env, pol Policy) (Result, error)
}

// Done finishes the policy; Drive stops issuing actions.
type Done struct{}

// Exec never runs — Drive intercepts Done.
func (Done) Exec(*Env, Policy) (Result, error) { return OK, nil }

// Noop yields back to the driver without acting, re-entering NextAction
// (used by phase transitions that must re-check cancellation first).
type Noop struct{}

// Exec does nothing.
func (Noop) Exec(*Env, Policy) (Result, error) { return OK, nil }

// Wait advances the world clock to Until.
type Wait struct{ Until float64 }

// Exec advances the world.
func (a Wait) Exec(e *Env, _ Policy) (Result, error) {
	e.W.AdvanceTo(a.Until)
	return OK, nil
}

// Serve travels to the request's node and runs a full session there, of
// the kind the policy's OnArrival picks. Strict marks the legit baseline,
// where a vanished node or a power-model error is a run-aborting fault
// rather than a reason to move on.
type Serve struct {
	Req    charging.Request
	Strict bool
}

// Exec performs the serve skeleton shared by every on-demand loop.
func (a Serve) Exec(e *Env, pol Policy) (Result, error) {
	node, err := e.W.Network().Node(a.Req.Node)
	if err != nil {
		if a.Strict {
			return Stopped, err
		}
		e.W.Queue().Remove(a.Req.Node)
		return OK, nil
	}
	if !node.Alive() {
		e.W.Queue().Remove(a.Req.Node)
		return OK, nil
	}
	if err := e.A.TravelTo(node); err != nil {
		// Budget exhausted: the phase is over.
		return Stopped, nil
	}
	if !node.Alive() { // died while we were driving over
		e.W.Queue().Remove(a.Req.Node)
		return OK, nil
	}
	rate, err := e.A.Ch.DeliveredPower(node.Pos)
	if err != nil {
		if a.Strict {
			return Stopped, err
		}
		return Stopped, nil
	}
	need := node.Battery.Capacity() - node.Battery.Level()
	if pol.OnArrival(e, node) == charging.SessionSpoof {
		if _, err := e.A.Spoof(node, need/rate); err != nil {
			return Stopped, nil
		}
		return OK, nil
	}
	if _, err := e.A.Focus(node, need/rate); err != nil {
		return Stopped, nil
	}
	return OK, nil
}

// Fill serves the nearest pending non-blocked request that can be fully
// served in time to reach ReturnPos by Deadline; when no such request
// exists (or filling is disabled), the world advances one poll step
// bounded by FallbackCap instead.
type Fill struct {
	Deadline    float64
	ReturnPos   geom.Point
	FallbackCap float64
}

// Exec attempts one opportunistic fill, else waits a poll step.
func (a Fill) Exec(e *Env, _ Policy) (Result, error) {
	if e.NoFill || !fillOne(e, a.Deadline, a.ReturnPos) {
		// The fallback bound uses the post-attempt clock: a failed fill
		// may still have spent travel time.
		e.W.AdvanceTo(math.Min(a.FallbackCap, e.W.Now()+e.PollSec))
	}
	return OK, nil
}

// fillOne serves the nearest pending non-target request that can be fully
// served in time to reach returnPos by the deadline. It reports whether a
// session happened.
func fillOne(e *Env, deadline float64, returnPos geom.Point) bool {
	best := charging.Request{}
	found := false
	bestD := math.Inf(1)
	for _, req := range e.W.Queue().Pending() {
		node, err := e.W.Network().Node(req.Node)
		if err != nil || !node.Alive() || e.Blocked[req.Node] {
			continue
		}
		rate, err := e.A.Ch.DeliveredPower(node.Pos)
		if err != nil || rate <= 0 {
			continue
		}
		dock := e.A.Ch.ServicePoint(node.Pos)
		serveDur := (node.Battery.Capacity() - node.Battery.Level()) / rate
		finish := e.W.Now() + e.A.Ch.TravelTime(dock) + serveDur
		back := finish + node.Pos.Dist(returnPos)/e.A.Ch.Params().SpeedMps
		if back > deadline {
			continue
		}
		if d := e.A.Ch.Pos().Dist2(req.Pos); d < bestD {
			best, bestD, found = req, d, true
		}
	}
	if !found {
		return false
	}
	node, err := e.W.Network().Node(best.Node)
	if err != nil || !node.Alive() {
		e.W.Queue().Remove(best.Node)
		return false
	}
	if err := e.A.TravelTo(node); err != nil {
		return false
	}
	if !node.Alive() {
		e.W.Queue().Remove(best.Node)
		return false
	}
	rate, err := e.A.Ch.DeliveredPower(node.Pos)
	if err != nil {
		return false
	}
	need := node.Battery.Capacity() - node.Battery.Level()
	_, err = e.A.Focus(node, need/rate)
	return err == nil
}

// Drive executes a policy to completion: bootstrap, the initial request
// scan and sample, then the action loop until Done, an error, or
// cancellation, then the trailing advance to the horizon. The caller
// checks ctx.Err() afterwards and assembles the Outcome from the ledger.
//
// With Env.Checkpoint set, the loop additionally fires the hook at every
// barrier; a nil-returning hook leaves the executed action and event
// sequence identical to an unhooked drive, so checkpointing can never
// move a digest.
func Drive(e *Env, pol Policy) error {
	if err := pol.Bootstrap(e); err != nil {
		return err
	}
	e.W.ScanRequests()
	e.W.Sample()
	if err := driveLoop(e, pol, OK); err != nil {
		return err
	}
	return finalAdvance(e)
}

// DriveResume re-enters the drive loop of a restored run at the captured
// barrier: mid-final-advance runs only the trailing advance; mid-wait
// finishes the interrupted Wait then continues the loop; a loop barrier
// continues the loop with the captured pending result. Bootstrap and the
// initial scan/sample are never re-run — their effects are part of the
// restored state.
func DriveResume(e *Env, pol Policy, rp ResumePoint) error {
	switch rp.Stage {
	case StageFinal:
		return finalAdvance(e)
	case StageWait:
		if err := advanceHooked(e, rp.WaitUntil, rp.Prev); err != nil {
			return err
		}
		if err := driveLoop(e, pol, OK); err != nil {
			return err
		}
		return finalAdvance(e)
	case StageLoop:
		if err := driveLoop(e, pol, rp.Prev); err != nil {
			return err
		}
		return finalAdvance(e)
	default:
		return fmt.Errorf("policy: unknown resume stage %q", rp.Stage)
	}
}

// driveLoop is the action loop shared by Drive and DriveResume.
func driveLoop(e *Env, pol Policy, prev Result) error {
	for !e.W.Canceled() {
		if e.Checkpoint != nil {
			if err := e.Checkpoint(Barrier{Prev: prev}); err != nil {
				return err
			}
		}
		act, err := pol.NextAction(e, prev)
		if err != nil {
			return err
		}
		if _, done := act.(Done); done {
			break
		}
		if wait, ok := act.(Wait); ok && e.Checkpoint != nil {
			// Hook the wait's world steps so multi-hour idle advances
			// stay checkpointable; Wait.Exec always returns OK.
			if err := advanceHooked(e, wait.Until, prev); err != nil {
				return err
			}
			prev = OK
			continue
		}
		prev, err = act.Exec(e, pol)
		if err != nil {
			return err
		}
	}
	return nil
}

// advanceHooked advances the world to until, firing mid-wait barriers
// after each world step. prev is the result the interrupted loop will
// resume NextAction with — it rides in the barrier so a checkpoint taken
// here can re-enter exactly.
func advanceHooked(e *Env, until float64, prev Result) error {
	if e.Checkpoint == nil {
		e.W.AdvanceTo(until)
		return nil
	}
	return e.W.AdvanceToHook(until, func() error {
		return e.Checkpoint(Barrier{Prev: prev, InWait: true, WaitUntil: until})
	})
}

// finalAdvance runs the trailing advance to the horizon, hooked when a
// checkpoint hook is armed.
func finalAdvance(e *Env) error {
	if e.Checkpoint == nil {
		e.W.AdvanceTo(e.Horizon)
		return nil
	}
	return e.W.AdvanceToHook(e.Horizon, func() error {
		return e.Checkpoint(Barrier{Final: true})
	})
}

// BootstrapAttack is the shared planning step of both attack policies:
// build the TIDE instance against the time-zero topology, solve it with
// the named planner, mark every mandatory site as a blocked target, and
// arm the sink's live audit.
func BootstrapAttack(e *Env, solver string) (*attack.Instance, attack.Result, error) {
	in, err := attack.BuildInstance(e.W.Network(), e.A.Ch, attack.BuilderConfig{
		Now:         0,
		RequestFrac: e.RequestFrac,
		CooldownSec: e.CooldownSec,
		HorizonSec:  e.Horizon,
		MaxCovers:   e.MaxCovers,
		BudgetJ:     e.InstanceBudgetJ,
	})
	if err != nil {
		return nil, attack.Result{}, err
	}
	res, err := Solve(in, solver, e.Rand.Split("solver"))
	if err != nil {
		return nil, attack.Result{}, err
	}
	for _, s := range in.Sites {
		if s.Mandatory {
			e.Targets[s.Node] = true
		}
	}
	for id := range e.Targets {
		e.Blocked[id] = true
	}
	e.W.StartAuditing(e.AuditEverySec)
	return in, res, nil
}

// caught is the ledger shorthand the attack policies branch on.
func caught(e *Env) bool { return e.L.Caught }
