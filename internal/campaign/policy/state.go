package policy

import (
	"fmt"
	"slices"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// State is a policy's serializable checkpoint form: the phase-machine
// fields of the concrete policy, the Env's shared target bookkeeping
// (sorted, so capture order never depends on map iteration), and the
// drive-loop position the barrier carried. The legit policy is stateless
// and contributes only its name and the loop position.
type State struct {
	// Policy is "legit" or the attack solver name.
	Policy string `json:"policy"`
	// Stage/Prev/WaitUntil record the drive-loop barrier (see ResumePoint).
	Stage     string  `json:"stage"`
	Prev      int     `json:"prev,omitempty"`
	WaitUntil float64 `json:"wait_until,omitempty"`

	// Attacker phase machine; zero for legit.
	Phase    int              `json:"phase,omitempty"`
	Honest   bool             `json:"honest,omitempty"`
	Idx      int              `json:"idx,omitempty"`
	Pending  []attack.Site    `json:"pending,omitempty"`
	Engaged  []wrsn.NodeID    `json:"engaged,omitempty"`
	Instance *attack.Instance `json:"instance,omitempty"`
	Result   *attack.Result   `json:"result,omitempty"`

	// Env bookkeeping.
	Targets []wrsn.NodeID `json:"targets,omitempty"`
	Blocked []wrsn.NodeID `json:"blocked,omitempty"`
}

// sortedIDs flattens a node-ID set deterministically.
func sortedIDs(set map[wrsn.NodeID]bool) []wrsn.NodeID {
	if len(set) == 0 {
		return nil
	}
	ids := make([]wrsn.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// CaptureState snapshots the policy's phase machine, the Env's target
// sets, and the barrier's loop position. Slices are copied; the Instance
// and Result pointers are shared, which is safe because both are
// immutable after Bootstrap.
func CaptureState(pol Policy, e *Env, b Barrier) (*State, error) {
	st := &State{
		Policy:    pol.Name(),
		Stage:     b.Stage(),
		Prev:      int(b.Prev),
		WaitUntil: b.WaitUntil,
		Targets:   sortedIDs(e.Targets),
		Blocked:   sortedIDs(e.Blocked),
	}
	switch p := pol.(type) {
	case *Legit:
	case *Attacker:
		st.Phase = int(p.phase)
		st.Honest = p.honest
		st.Idx = p.idx
		st.Pending = append([]attack.Site(nil), p.pending...)
		st.Engaged = sortedIDs(p.engaged)
		st.Instance = p.in
		res := p.res
		st.Result = &res
	default:
		return nil, fmt.Errorf("policy: %T does not support checkpointing", pol)
	}
	return st, nil
}

// FromState rebuilds the policy and refills the Env's target sets. It
// returns the restored policy and the drive-loop resume point.
func FromState(st *State, e *Env) (Policy, ResumePoint, error) {
	rp := ResumePoint{Stage: st.Stage, Prev: Result(st.Prev), WaitUntil: st.WaitUntil}
	switch rp.Stage {
	case StageLoop, StageWait, StageFinal:
	default:
		return nil, rp, fmt.Errorf("policy: state has unknown stage %q", st.Stage)
	}
	for _, id := range st.Targets {
		e.Targets[id] = true
	}
	for _, id := range st.Blocked {
		e.Blocked[id] = true
	}
	if st.Policy == "legit" {
		return NewLegit(), rp, nil
	}
	switch st.Policy {
	case SolverCSA, SolverCSAPolished, SolverRandom, SolverGreedyNearest, SolverDirect:
	default:
		return nil, rp, fmt.Errorf("%w: %q in checkpoint state", ErrUnknownSolver, st.Policy)
	}
	p := NewAttacker(st.Policy)
	p.phase = phase(st.Phase)
	p.honest = st.Honest
	p.idx = st.Idx
	p.pending = append([]attack.Site(nil), st.Pending...)
	if st.Engaged != nil || p.windowAware {
		p.engaged = make(map[wrsn.NodeID]bool, len(st.Engaged))
		for _, id := range st.Engaged {
			p.engaged[id] = true
		}
	}
	p.in = st.Instance
	if st.Result != nil {
		p.res = *st.Result
	}
	return p, rp, nil
}
