package campaign

import (
	"fmt"
	"sort"

	"github.com/reprolab/wrsn-csa/internal/charging"
)

// TimelineEvent is one entry of a campaign's chronological narrative.
type TimelineEvent struct {
	// T is the event time in seconds.
	T float64
	// Kind tags the event: "session", "spoof", "death", "exposure",
	// "impound".
	Kind string
	// Node is the subject node, or -1 for charger-level events.
	Node int
	// Text is the human-readable line.
	Text string
}

// Timeline merges an outcome's sessions, deaths, exposures and the
// impoundment into one chronological narrative — the debugging and
// presentation view of a campaign.
func Timeline(o *Outcome) []TimelineEvent {
	events := make([]TimelineEvent, 0, len(o.Sessions)+len(o.Audit.Deaths)+4)
	for _, s := range o.Sessions {
		kind := "session"
		text := fmt.Sprintf("charge node %d: %.0f J requested, %.0f J delivered (%.0f min)",
			s.Node, s.RequestedJ, s.DeliveredJ, s.Duration()/60)
		if s.Kind == charging.SessionSpoof {
			kind = "spoof"
			text = fmt.Sprintf("SPOOF node %d: carrier %.2g W at rectenna, %.1f J harvested over %.0f min",
				s.Node, s.RFAtNodeW, s.DeliveredJ, s.Duration()/60)
		}
		events = append(events, TimelineEvent{T: s.Start, Kind: kind, Node: int(s.Node), Text: text})
	}
	for _, d := range o.Audit.Deaths {
		where := "reachable"
		if !d.Reachable {
			where = "inside a partition"
		}
		events = append(events, TimelineEvent{
			T: d.Time, Kind: "death", Node: int(d.Node),
			Text: fmt.Sprintf("node %d EXHAUSTED (%s)", d.Node, where),
		})
	}
	for _, e := range o.Exposures {
		events = append(events, TimelineEvent{
			T: e.At, Kind: "exposure", Node: e.Victim,
			Text: e.String(),
		})
	}
	if o.Caught {
		events = append(events, TimelineEvent{
			T: o.CaughtAt, Kind: "impound", Node: -1,
			Text: fmt.Sprintf("charger IMPOUNDED by %s; honest replacement deployed", o.CaughtBy),
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}

// FormatTimeline renders events as "day HH:MM  text" lines.
func FormatTimeline(events []TimelineEvent) []string {
	out := make([]string, len(events))
	for i, e := range events {
		day := int(e.T / 86400)
		rem := e.T - float64(day)*86400
		hh := int(rem / 3600)
		mm := int(rem/60) % 60
		out[i] = fmt.Sprintf("day %2d %02d:%02d  %s", day, hh, mm, e.Text)
	}
	return out
}
