package campaign

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// BenchmarkCampaignRun exercises the hot path of a full campaign — the
// event-hosted world advance plus the policy serve loop — for both the
// honest baseline and the window-aware attack. Network construction is
// excluded from the timed region (runs mutate node state, so each
// iteration needs a fresh build).
func BenchmarkCampaignRun(b *testing.B) {
	bench := func(attack bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nw, _, err := trace.DefaultScenario(42, 120).Build()
				if err != nil {
					b.Fatal(err)
				}
				ch := mc.New(nw.Sink(), mc.DefaultParams())
				cfg := Config{Seed: 42}
				b.StartTimer()
				if attack {
					_, err = RunAttack(context.Background(), nw, ch, cfg)
				} else {
					_, err = RunLegit(context.Background(), nw, ch, cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("legit", bench(false))
	b.Run("attack", bench(true))
}
