package campaign

import (
	"context"
	"fmt"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/campaign/policy"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// BenchmarkCampaignRun exercises the hot path of a full campaign — the
// event-hosted world advance plus the policy serve loop — for both the
// honest baseline and the window-aware attack. Network construction is
// excluded from the timed region (runs mutate node state, so each
// iteration needs a fresh build).
func BenchmarkCampaignRun(b *testing.B) {
	bench := func(attack bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nw, _, err := trace.DefaultScenario(42, 120).Build()
				if err != nil {
					b.Fatal(err)
				}
				ch := mc.New(nw.Sink(), mc.DefaultParams())
				cfg := Config{Seed: 42}
				b.StartTimer()
				if attack {
					_, err = RunAttack(context.Background(), nw, ch, cfg)
				} else {
					_, err = RunLegit(context.Background(), nw, ch, cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("legit", bench(false))
	b.Run("attack", bench(true))
	// large10k is the scale gate: a death-heavy 10k-node service run.
	// Batteries start low enough that a steady stream of nodes dies over
	// the horizon, so the per-death routing recompute — the cost the
	// incremental shortest-path-tree work targets — dominates the run.
	b.Run("large10k", func(b *testing.B) { benchLargeCampaign(b, 10_000, false) })
	// The same run with incremental routing maintenance switched off —
	// the pre-refactor full-Dijkstra-per-death cost, kept on the gate so
	// the incremental speedup stays measured, not remembered.
	b.Run("large10k-fullrebuild", func(b *testing.B) { benchLargeCampaign(b, 10_000, true) })
}

// benchLargeCampaign runs one death-heavy legit campaign per iteration at
// the given network size (build excluded from the timed region) and
// reports the death count so the "death-heavy" premise stays observable
// in the bench output.
func benchLargeCampaign(b *testing.B, n int, fullRebuild bool) {
	b.ReportAllocs()
	var deaths int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc := trace.DefaultScenario(42, n)
		sc.Deploy.InitialFracMin, sc.Deploy.InitialFracMax = 0.12, 0.5
		nw, _, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		nw.SetIncrementalRouting(!fullRebuild)
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		cfg := Config{Seed: 42, HorizonSec: 2 * 24 * 3600, PollSec: 900}
		b.StartTimer()
		o, err := RunLegit(context.Background(), nw, ch, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		deaths += o.DeadTotal
		b.StartTimer()
	}
	b.ReportMetric(float64(deaths)/float64(b.N), "deaths/op")
}

// BenchmarkCheckpointCapture measures one live-checkpoint capture — the
// full barrier path a checkpointing daemon pays per interval: policy
// phase capture, world/ledger/RNG state reads, and snapshot assembly —
// at the evaluation scale and the 10k scale gate. Capture cost bounds
// how aggressive -checkpoint-every can be, so it gates in CI.
func BenchmarkCheckpointCapture(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sc := trace.DefaultScenario(42, n)
			nw, _, err := sc.Build()
			if err != nil {
				b.Fatal(err)
			}
			ch := mc.New(nw.Sink(), mc.DefaultParams())
			cfg := Config{Seed: 42}
			cfg.applyDefaults()
			env, led, w := layers(context.Background(), nw, ch, cfg)
			ck := &checkpointer{
				plan: &CheckpointPlan{
					Scenario: sc,
					Sink:     func(*snapshot.Snapshot) error { return nil },
				},
				nw: nw, ch: ch, w: w, led: led, env: env,
				pol: policy.NewLegit(), keys: nw.KeyNodes(), r: env.Rand,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ck.barrier(policy.Barrier{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignScale100k is the headroom probe at two further orders
// of magnitude past the evaluation sizes. Deliberately named so the CI
// bench gate's pattern does not match it: at this size run-to-run noise
// on shared runners would make a 15% regression gate flap.
func BenchmarkCampaignScale100k(b *testing.B) {
	benchLargeCampaign(b, 100_000, false)
}
