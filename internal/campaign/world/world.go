// Package world is the environment layer of a campaign: it owns the
// virtual clock, battery drain, death recording, routing recomputation,
// charging-request scanning, lifetime sampling, and the sink's live
// detector audits. Time advancement is hosted on the discrete-event
// engine in internal/sim: AdvanceTo schedules a self-rescheduling chain
// of "world.step" events (each landing on the next poll boundary or
// battery-depletion instant, whichever is sooner) and pumps the engine,
// so single-charger campaigns and the multi-charger fleet share one
// event-driven clock. Handlers that already run inside the engine use
// CatchUp, the re-entrant-safe synchronous form of the same stepping.
//
// The world writes what it observes into the shared ledger; it never
// decides anything — policies do that one layer up.
package world

import (
	"context"
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Request retransmission backoff: a node whose charging request was lost
// retries at the next step boundary after retxBaseSec·2^attempt seconds,
// capped at retxCapSec — the deadline-driven charging literature's
// standard answer to unreliable request delivery.
const (
	retxBaseSec = 900.0
	retxCapSec  = 4 * 3600.0
)

// Params fixes the world's cadences and audit rules for one run.
type Params struct {
	// PollSec bounds the step granularity of the clock.
	PollSec float64
	// RequestFrac is the battery fraction that triggers charging requests.
	RequestFrac float64
	// SampleEverySec is the lifetime-sampling cadence; non-positive off.
	SampleEverySec float64
	// AuditEverySec is the live-audit cadence; negative disables live
	// audits entirely (judgment happens only at the horizon).
	AuditEverySec float64
	// MinAuditSessions delays live audits until enough evidence exists.
	MinAuditSessions int
	// PendingGraceSec is how long a pending request may age before a live
	// audit counts it as ignored.
	PendingGraceSec float64
	// Detectors is the audit suite consulted by live audits.
	Detectors []detect.Detector
	// Faults is the fault plan to compile onto the engine; nil or empty
	// leaves the run byte-identical to a fault-free one.
	Faults *faults.Plan
	// Shards sets the per-tick scan parallelism: 0 sizes automatically
	// from GOMAXPROCS and network size, 1 forces sequential stepping, and
	// k > 1 splits the node set into k grid-region shards. The outcome is
	// byte-identical at any value — sharding only changes wall-clock.
	Shards int
}

// W is the mutable world of one campaign run.
type W struct {
	ctx   context.Context
	eng   *sim.Engine
	nw    *wrsn.Network
	led   *ledger.L
	p     Params
	probe obs.Probe

	now float64
	qu  charging.Queue
	// sh is the parallel tick stepper; nil steps sequentially.
	sh *shardRunner
	// cool and keySet are dense per-node tables (node IDs are the
	// contiguous 0..n-1 range); zero values mean "no cooldown" / "not a
	// key node", exactly matching the missing-key semantics of the maps
	// they replaced.
	cool       []float64
	keySet     []bool
	nextSample float64
	nextAudit  float64
	auditing   bool

	// stepTarget is where the in-flight step chain is headed; the chain's
	// single keyed handler (bound under stepKind at construction) re-reads
	// it on every event, so re-targeting is a field write.
	stepTarget float64

	// Fault state. plan is nil on fault-free runs; every field below then
	// stays zero and costs nothing on the hot path.
	plan        *faults.Plan
	chDown      bool
	chDownSince float64
	chDownUntil float64
	chDownTotal float64
	sinkDown    bool
	sinkSince   float64
	// retxAttempt/retxNext are dense per-node tables, nil on fault-free
	// runs so the hot path stays a nil check.
	retxAttempt []int
	retxNext    []float64
}

// New builds a world over the network, writing into led. The world owns a
// fresh event engine; callers needing engine telemetry instrument it via
// Engine(). A non-empty fault plan in p compiles onto the engine here, so
// fault events carry lower sequence numbers than any world step scheduled
// later — at equal timestamps the fault applies first.
func New(ctx context.Context, nw *wrsn.Network, led *ledger.L, p Params, probe obs.Probe) *W {
	n := len(nw.Nodes())
	w := &W{
		ctx:    ctx,
		eng:    sim.New(),
		nw:     nw,
		led:    led,
		p:      p,
		probe:  obs.Or(probe),
		cool:   make([]float64, n),
		keySet: make([]bool, n),
	}
	w.sh = newShardRunner(nw, p.Shards)
	w.bindStep()
	if !p.Faults.Empty() {
		w.plan = p.Faults
		w.retxAttempt = make([]int, n)
		w.retxNext = make([]float64, n)
		// ErrPast is impossible here: the engine clock is zero and plan
		// events are non-negative.
		_ = faults.Compile(w.plan, w.eng, faults.Hooks{
			Sync:        w.CatchUp,
			NodeDown:    w.failNode,
			NodeUp:      w.repairNode,
			ChargerDown: w.chargerDown,
			ChargerUp:   w.chargerUp,
			SinkDown:    w.sinkOutage,
			SinkUp:      w.sinkRestore,
		})
	}
	return w
}

// stepKind is the keyed-event kind of the world's step chain. Keyed
// scheduling makes a pending step serializable into a live snapshot and
// re-bindable on resume.
const stepKind = "world.step"

// bindStep registers the step-chain handler. CatchUp, not a bare step: a
// same-pump fault handler may already have advanced the world past this
// event's boundary (its Sync hook calls CatchUp), and after any such
// re-entrancy the world clock must land exactly on engine-now before
// rescheduling, or the next At would be in the past and kill the chain.
// With no faults w.now is exactly one step behind e.Now() and CatchUp
// performs the identical single step.
func (w *W) bindStep() {
	w.eng.Bind(stepKind, func(e *sim.Engine, _ int) {
		w.CatchUp(e.Now())
		w.scheduleStep(w.stepTarget)
	})
}

// Now returns the world clock in seconds.
func (w *W) Now() float64 { return w.now }

// Engine exposes the event engine (the fleet schedules its charger
// handlers on it; tests and telemetry instrument it).
func (w *W) Engine() *sim.Engine { return w.eng }

// Network returns the live network.
func (w *W) Network() *wrsn.Network { return w.nw }

// Queue returns the live request queue.
func (w *W) Queue() *charging.Queue { return &w.qu }

// Canceled reports whether the run's context has been canceled; the
// stepping loops treat it as an immediate stop signal.
func (w *W) Canceled() bool { return w.ctx.Err() != nil }

// MarkKey registers a plan-time key node for lifetime sampling.
func (w *W) MarkKey(id wrsn.NodeID) { w.keySet[id] = true }

// SetCooldown suppresses re-requests from id until the given time.
func (w *W) SetCooldown(id wrsn.NodeID, until float64) { w.cool[id] = until }

// StartAuditing arms the sink's periodic live audit with its first
// boundary at firstAt.
func (w *W) StartAuditing(firstAt float64) {
	w.auditing = true
	w.nextAudit = firstAt
}

// StopAuditing disarms live audits (the impounded charger's honest
// replacement is beyond suspicion).
func (w *W) StopAuditing() { w.auditing = false }

// Auditing reports whether live audits are armed.
func (w *W) Auditing() bool { return w.auditing }

// step moves the clock one boundary toward target: the next poll tick or
// the next battery depletion, whichever is sooner. Batteries drain, deaths
// are recorded, routing recomputes on topology change, and new requests,
// samples, and audits are taken at the boundary.
func (w *W) step(target float64) {
	step := min(target, w.now+w.p.PollSec)
	if dt, _ := w.nextDepletion(); dt > w.now && dt < step {
		step = dt
	}
	died := w.advanceEnergy(step - w.now)
	w.now = step
	if len(died) > 0 {
		for _, id := range died {
			w.RecordDeath(id)
		}
		w.nw.Recompute()
	}
	w.ScanRequests()
	w.Sample()
	w.audit()
	// Energy-aware routing responds to battery levels, not just deaths;
	// refresh it at step granularity so load actually shifts off draining
	// relays.
	if w.nw.Policy() == wrsn.PolicyEnergyAware {
		w.nw.Recompute()
	}
}

// nextDepletion forecasts the soonest death from the current clock,
// sharded when a runner is armed.
func (w *W) nextDepletion() (float64, wrsn.NodeID) {
	if w.sh == nil {
		return w.nw.NextDepletion(w.now)
	}
	return w.sh.nextDepletion(w.now)
}

// advanceEnergy drains the network for dt and returns deaths in ascending
// ID order, sharded when a runner is armed.
func (w *W) advanceEnergy(dt float64) []wrsn.NodeID {
	if w.sh == nil {
		return w.nw.AdvanceEnergy(dt)
	}
	return w.sh.advanceEnergy(dt)
}

// AdvanceTo moves the world clock to t through the event engine: each
// step boundary is an engine event, and the engine is pumped until t. A
// canceled context stops the advance at the current boundary. AdvanceTo
// must not be called from inside an engine handler — use CatchUp there.
func (w *W) AdvanceTo(t float64) {
	if t <= w.now {
		return
	}
	w.armStep(t)
	_ = w.eng.RunUntil(t, 0)
}

// AdvanceToHook is AdvanceTo with a checkpoint hook invoked after every
// executed world-step event — the points where no handler is mid-flight
// and the world clock equals the engine clock. A non-nil hook error
// aborts the advance and is returned; with a nil-returning hook the
// executed event sequence is identical to AdvanceTo.
func (w *W) AdvanceToHook(t float64, hook func() error) error {
	if t <= w.now {
		return nil
	}
	w.armStep(t)
	return w.eng.RunUntilHook(t, 0, func(kind, _ string) error {
		if kind != stepKind {
			return nil
		}
		return hook()
	})
}

// armStep points the step chain at target. On a fresh advance no chain
// event is pending and one is scheduled; on the first advance after a
// resume the restored queue already carries the chain's next event, so
// only the target field needs to move (scheduling a second event would
// fork a duplicate chain and diverge later snapshots).
func (w *W) armStep(target float64) {
	if w.eng.HasPendingKind(stepKind) {
		w.stepTarget = target
		return
	}
	w.scheduleStep(target)
}

// scheduleStep queues the next step boundary toward target, and
// re-schedules itself from inside the handler until the target is reached
// or the context is canceled.
func (w *W) scheduleStep(target float64) {
	if w.now >= target || w.Canceled() {
		return
	}
	next := min(target, w.now+w.p.PollSec)
	if dt, _ := w.nextDepletion(); dt > w.now && dt < next {
		next = dt
	}
	// AdvanceTo cannot be called from inside a handler, so at most one
	// step chain is in flight and a single target field suffices.
	w.stepTarget = target
	if err := w.eng.AtKeyed(next, stepKind, 0, stepKind); err != nil {
		// The engine clock can sit past w.now only after a canceled run's
		// drained RunUntil; stepping is over either way.
		return
	}
}

// CatchUp advances the world clock to t synchronously, without scheduling
// engine events. It is the form safe to call from inside engine handlers,
// where the engine is already mid-pump (the fleet's dispatch/arrival
// handlers sync the world this way).
func (w *W) CatchUp(t float64) {
	for w.now < t && !w.Canceled() {
		w.step(t)
	}
}

// RecordDeath logs a node death into the audit trail: its reachability as
// it died, the first-death statistic, and the cancellation of any pending
// request it had.
func (w *W) RecordDeath(id wrsn.NodeID) {
	reachable := w.nw.Connected(id)
	w.led.Audit.Deaths = append(w.led.Audit.Deaths, detect.DeathObs{
		Node: id, Time: w.now,
		// Routing still reflects the pre-death topology here (Recompute
		// runs after the batch), so this is the node's state as it died.
		Reachable: reachable,
	})
	if w.probe.Enabled() {
		detail := "partitioned"
		if reachable {
			detail = "reachable"
		}
		w.probe.Add("campaign.deaths", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "node.death", Node: int(id), Detail: detail})
	}
	w.led.NoteDeath(w.now)
	if req, ok := w.qu.Get(id); ok {
		w.led.Audit.Unserved = append(w.led.Audit.Unserved, detect.RequestObs{
			Node: id, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
		w.qu.Remove(id)
	}
}

// ScanRequests issues charging requests for alive, connected,
// below-threshold nodes that are outside their cooldown and have nothing
// pending. Under a fault plan, a sink outage defers issuance entirely
// (requests cannot reach the sink), each transmission may be lost, and a
// node whose request was lost retries with capped exponential backoff.
func (w *W) ScanRequests() {
	if w.sinkDown {
		return
	}
	if w.sh != nil {
		// Eligibility is a pure read per node, so shards evaluate it in
		// parallel; the mutating tail (the loss draw onward) applies
		// sequentially in ascending ID order — issuing one node's request
		// never changes another's eligibility, so the split reproduces the
		// sequential scan exactly, RNG draw order included.
		for _, id := range w.sh.gatherWanting(w.wantsCharge) {
			w.issueRequest(id)
		}
		return
	}
	for _, n := range w.nw.Nodes() {
		if w.wantsCharge(n.ID) {
			w.issueRequest(n.ID)
		}
	}
}

// wantsCharge is the request-eligibility predicate: alive, connected,
// nothing pending, outside cooldown and retransmission backoff, and below
// the request threshold. It only reads world state, so the sharded scan
// may evaluate it concurrently across disjoint nodes.
func (w *W) wantsCharge(id wrsn.NodeID) bool {
	n := w.nw.Nodes()[id]
	if !n.Alive() || !w.nw.Connected(id) || w.qu.Has(id) {
		return false
	}
	if w.now < w.cool[id] {
		return false
	}
	if w.retxNext != nil && w.now < w.retxNext[id] {
		return false
	}
	return n.Battery.Level() <= w.p.RequestFrac*n.Battery.Capacity()
}

// issueRequest runs the mutating tail of the scan for one eligible node:
// the fault plan's loss draw, then the queue insert and ledger write.
// Callers must invoke it in ascending node-ID order so the loss stream is
// consumed exactly as the sequential scan would.
func (w *W) issueRequest(id wrsn.NodeID) {
	if w.plan.LoseRequest() {
		w.noteRequestLost(id)
		return
	}
	n := w.nw.Nodes()[id]
	cap := n.Battery.Capacity()
	drain := w.nw.DrainWatts(id)
	deadline := math.Inf(1)
	if drain > 0 {
		deadline = w.now + n.Battery.Level()/drain
	}
	need := cap - n.Battery.Level()
	err := w.qu.Add(charging.Request{
		Node:     id,
		Pos:      n.Pos,
		IssuedAt: w.now,
		Deadline: deadline,
		NeedJ:    need,
	})
	if err == nil {
		w.led.Issued++
		if w.retxAttempt != nil && w.retxAttempt[id] > 0 {
			// The request finally got through after one or more losses.
			w.led.Faults.RequestsRecovered++
			w.retxAttempt[id] = 0
			w.retxNext[id] = 0
		}
		if w.probe.Enabled() {
			w.probe.Add("campaign.requests.issued", 1)
			w.probe.Event(obs.Event{T: w.now, Kind: "request", Node: int(id), Value: need})
		}
	}
}

// noteRequestLost records one lost request transmission and arms the
// node's retransmission backoff: retxBaseSec doubled per consecutive
// loss, capped at retxCapSec. The retry happens at the first step
// boundary past the backoff — request timing stays on the world's
// deterministic step grid.
func (w *W) noteRequestLost(id wrsn.NodeID) {
	attempt := w.retxAttempt[id]
	backoff := retxBaseSec * math.Pow(2, float64(attempt))
	if backoff > retxCapSec {
		backoff = retxCapSec
	}
	w.retxAttempt[id] = attempt + 1
	w.retxNext[id] = w.now + backoff
	w.led.Faults.RequestsLost++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.requests_lost", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.request.lost", Node: int(id), Value: backoff})
	}
}

// Sample records lifetime samples at the configured cadence.
func (w *W) Sample() {
	if w.p.SampleEverySec <= 0 {
		return
	}
	for w.nextSample <= w.now {
		s := ledger.Sample{T: w.nextSample}
		if w.sh != nil {
			// Integer counts sum exactly, so the sharded tally is not
			// merely digest-identical but trivially so.
			s.Alive, s.Connected, s.KeyAlive = w.sh.sampleCounts(w.keySet)
		} else {
			for _, n := range w.nw.Nodes() {
				if !n.Alive() {
					continue
				}
				s.Alive++
				if w.nw.Connected(n.ID) {
					s.Connected++
				}
				if w.keySet[n.ID] {
					s.KeyAlive++
				}
			}
		}
		w.led.Samples = append(w.led.Samples, s)
		w.nextSample += w.p.SampleEverySec
	}
}

// AuditView returns the evidence a live audit sees: everything recorded
// so far, plus pending requests old enough (past the grace age) to count
// as ignored — the sink knows what it dispatched and what has been
// waiting suspiciously long.
func (w *W) AuditView() detect.Audit {
	view := w.led.Audit
	stale := make([]detect.RequestObs, 0, 4)
	for _, req := range w.qu.Pending() {
		if w.now-req.IssuedAt >= w.p.PendingGraceSec {
			stale = append(stale, detect.RequestObs{
				Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
			})
		}
	}
	if len(stale) > 0 {
		view.Unserved = append(append([]detect.RequestObs(nil), w.led.Audit.Unserved...), stale...)
	}
	return view
}

// audit runs the sink's cumulative detector audit at its cadence. Once
// any detector fires, the ledger records the catch — the policy layer
// observes it and hands the network back to honest service.
func (w *W) audit() {
	if !w.auditing || w.led.Caught || w.p.AuditEverySec < 0 {
		return
	}
	for w.nextAudit <= w.now {
		w.nextAudit += w.p.AuditEverySec
		if w.sinkDown {
			// The sink is out: it cannot judge, but its audit clock keeps
			// ticking so the cadence realigns on restore.
			continue
		}
		view := w.AuditView()
		if len(view.Sessions)+len(view.Unserved) < w.p.MinAuditSessions {
			continue
		}
		w.probe.Add("campaign.audits", 1)
		for _, v := range detect.JudgeProbed(view, w.p.Detectors, w.probe, w.now) {
			if v.Flagged {
				w.led.Catch(w.now, v.Detector)
				w.probe.Event(obs.Event{T: w.now, Kind: "charger.impounded", Node: -1, Value: v.Score, Detail: v.Detector})
				return
			}
		}
	}
}

// ---- fault handlers (invoked by compiled plan events) ----

// failNode applies a node hardware fault: the node powers off — out of
// routing, not draining, its pending request withdrawn (the sink treats
// the dropout as maintenance, not an ignored request). A draw landing on
// an already-dead or already-failed node is a no-op.
func (w *W) failNode(id int) {
	n, err := w.nw.Node(wrsn.NodeID(id))
	if err != nil || !n.Alive() {
		return
	}
	n.Fail()
	w.qu.Remove(n.ID)
	if w.retxAttempt != nil {
		w.retxAttempt[n.ID] = 0
		w.retxNext[n.ID] = 0
	}
	w.nw.Recompute()
	w.led.Faults.NodeFailures++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.node_failures", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.node.down", Node: id})
	}
}

// repairNode returns a hardware-failed node to service with whatever
// charge its battery kept.
func (w *W) repairNode(id int) {
	n, err := w.nw.Node(wrsn.NodeID(id))
	if err != nil || !n.Failed() {
		return
	}
	n.Repair()
	w.nw.Recompute()
	w.led.Faults.NodeRecoveries++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.node_recoveries", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.node.up", Node: id})
	}
}

// chargerDown opens a charger breakdown window until the given time.
func (w *W) chargerDown(until float64) {
	if w.chDown {
		return
	}
	w.chDown = true
	w.chDownSince = w.now
	w.chDownUntil = until
	w.led.Faults.ChargerBreakdowns++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.charger_breakdowns", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.charger.down", Node: -1, Value: until - w.now})
	}
}

// chargerUp closes the breakdown window and accounts its downtime.
func (w *W) chargerUp() {
	if !w.chDown {
		return
	}
	w.chDown = false
	w.chDownTotal += w.now - w.chDownSince
	w.chDownUntil = 0
	w.led.Faults.ChargerRepairs++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.charger_repairs", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.charger.up", Node: -1})
	}
}

// sinkOutage opens a sink outage window: no requests reach the sink and
// audits pass judgment-free until restore.
func (w *W) sinkOutage(until float64) {
	if w.sinkDown {
		return
	}
	w.sinkDown = true
	w.sinkSince = w.now
	w.led.Faults.SinkOutages++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.sink_outages", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.sink.down", Node: -1, Value: until - w.now})
	}
}

// sinkRestore closes the outage window, recording the interval.
func (w *W) sinkRestore() {
	if !w.sinkDown {
		return
	}
	w.sinkDown = false
	w.led.Faults.SinkDownSec += w.now - w.sinkSince
	w.led.Faults.SinkWindows = append(w.led.Faults.SinkWindows, faults.Window{From: w.sinkSince, To: w.now})
	w.led.Faults.SinkRestores++
	if w.probe.Enabled() {
		w.probe.Add("campaign.faults.sink_restores", 1)
		w.probe.Event(obs.Event{T: w.now, Kind: "fault.sink.up", Node: -1})
	}
}

// ---- fault queries (read by the session and policy layers) ----

// ChargerDownUntil returns the scheduled repair time of an open charger
// breakdown window, or 0 when the charger is operational. Sessions
// suspend and policies park until then.
func (w *W) ChargerDownUntil() float64 {
	if !w.chDown {
		return 0
	}
	return w.chDownUntil
}

// ChargerDownSecTotal returns cumulative charger downtime including any
// window still open at the current clock; sessions difference it across
// an advance to measure suspended time.
func (w *W) ChargerDownSecTotal() float64 {
	if w.chDown {
		return w.chDownTotal + (w.now - w.chDownSince)
	}
	return w.chDownTotal
}

// SinkDown reports whether a sink outage window is open.
func (w *W) SinkDown() bool { return w.sinkDown }

// CloseFaultWindows accounts fault windows still open when the run ends:
// their downtime is added to the ledger (a sink window is recorded) but
// no repair or restore is counted — an unrepaired fault stays fatal in
// the report. Call once at campaign finish.
func (w *W) CloseFaultWindows() {
	if w.chDown {
		w.chDown = false
		w.chDownTotal += w.now - w.chDownSince
		w.chDownUntil = 0
	}
	w.led.Faults.ChargerDownSec = w.chDownTotal
	if w.sinkDown {
		w.sinkDown = false
		w.led.Faults.SinkDownSec += w.now - w.sinkSince
		w.led.Faults.SinkWindows = append(w.led.Faults.SinkWindows, faults.Window{From: w.sinkSince, To: w.now})
	}
}
