package world

import (
	"context"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// RequestState is charging.Request in wire-safe form: Deadline rides as
// a pointer because a zero-drain node's "never dies" projection is +Inf,
// which JSON cannot carry (absent means +Inf).
type RequestState struct {
	Node     wrsn.NodeID `json:"node"`
	IssuedAt float64     `json:"issued_at"`
	Deadline *float64    `json:"deadline,omitempty"`
	NeedJ    float64     `json:"need_j"`
}

// requestState converts one queue entry.
func requestState(r charging.Request) RequestState {
	rs := RequestState{Node: r.Node, IssuedAt: r.IssuedAt, NeedJ: r.NeedJ}
	if !math.IsInf(r.Deadline, 1) {
		d := r.Deadline
		rs.Deadline = &d
	}
	return rs
}

// RequestStateOf converts a queue entry to its wire form; the fleet
// layer uses it to checkpoint an in-flight assignment.
func RequestStateOf(r charging.Request) RequestState { return requestState(r) }

// Request rebuilds the queue entry; the node position is re-resolved
// from the network (positions are immutable, so this is exact).
func (rs RequestState) Request(nw *wrsn.Network) (charging.Request, error) {
	n, err := nw.Node(rs.Node)
	if err != nil {
		return charging.Request{}, err
	}
	req := charging.Request{Node: rs.Node, Pos: n.Pos, IssuedAt: rs.IssuedAt, Deadline: math.Inf(1), NeedJ: rs.NeedJ}
	if rs.Deadline != nil {
		req.Deadline = *rs.Deadline
	}
	return req, nil
}

// State is the world's serializable mid-run form: the clock, the pending
// request queue (in the canonical sorted order every consumer reads),
// cadence cursors, fault-window state, and the fault plan's incremental
// loss-stream position. Key-node marks are not here — the campaign layer
// re-marks them from its own captured list on resume. Derived network
// state (routing, drains) is not here either: wrsn.FromState recomputes
// it bit-identically from primary state.
type State struct {
	Now        float64        `json:"now"`
	Requests   []RequestState `json:"requests,omitempty"`
	Cool       []float64      `json:"cool,omitempty"`
	NextSample float64        `json:"next_sample,omitempty"`
	NextAudit  float64        `json:"next_audit,omitempty"`
	Auditing   bool           `json:"auditing,omitempty"`
	StepTarget float64        `json:"step_target,omitempty"`

	ChDown      bool    `json:"ch_down,omitempty"`
	ChDownSince float64 `json:"ch_down_since,omitempty"`
	ChDownUntil float64 `json:"ch_down_until,omitempty"`
	ChDownTotal float64 `json:"ch_down_total,omitempty"`
	SinkDown    bool    `json:"sink_down,omitempty"`
	SinkSince   float64 `json:"sink_since,omitempty"`

	RetxAttempt []int     `json:"retx_attempt,omitempty"`
	RetxNext    []float64 `json:"retx_next,omitempty"`

	FaultLoss *[4]uint64 `json:"fault_loss,omitempty"`
}

// State captures the world at a checkpoint barrier. Capture is pure
// reads: the continuing run is not perturbed.
func (w *W) State() State {
	st := State{
		Now:         w.now,
		Cool:        append([]float64(nil), w.cool...),
		NextSample:  w.nextSample,
		NextAudit:   w.nextAudit,
		Auditing:    w.auditing,
		StepTarget:  w.stepTarget,
		ChDown:      w.chDown,
		ChDownSince: w.chDownSince,
		ChDownUntil: w.chDownUntil,
		ChDownTotal: w.chDownTotal,
		SinkDown:    w.sinkDown,
		SinkSince:   w.sinkSince,
		RetxAttempt: append([]int(nil), w.retxAttempt...),
		RetxNext:    append([]float64(nil), w.retxNext...),
		FaultLoss:   w.plan.LossState(),
	}
	for _, req := range w.qu.Pending() {
		st.Requests = append(st.Requests, requestState(req))
	}
	return st
}

// Resume rebuilds a world from a captured state. The caller provides the
// same Params the original run used (in particular a freshly built fault
// plan from the same Spec — New(spec, nodes) is pure, so the event list
// is identical; the loss cursor is then repositioned from the state).
// Fault handlers and the step chain are bound but nothing is scheduled:
// the caller restores the captured pending events into the engine, which
// carries both the step chain and the not-yet-fired fault events.
func Resume(ctx context.Context, nw *wrsn.Network, led *ledger.L, p Params, probe obs.Probe, st State) (*W, error) {
	n := len(nw.Nodes())
	w := &W{
		ctx:    ctx,
		eng:    sim.New(),
		nw:     nw,
		led:    led,
		p:      p,
		probe:  obs.Or(probe),
		cool:   make([]float64, n),
		keySet: make([]bool, n),
	}
	w.sh = newShardRunner(nw, p.Shards)
	w.bindStep()
	if !p.Faults.Empty() {
		w.plan = p.Faults
		w.retxAttempt = make([]int, n)
		w.retxNext = make([]float64, n)
		faults.Bind(w.plan, w.eng, faults.Hooks{
			Sync:        w.CatchUp,
			NodeDown:    w.failNode,
			NodeUp:      w.repairNode,
			ChargerDown: w.chargerDown,
			ChargerUp:   w.chargerUp,
			SinkDown:    w.sinkOutage,
			SinkUp:      w.sinkRestore,
		})
		if st.FaultLoss != nil {
			w.plan.RestoreLoss(*st.FaultLoss)
		}
	}
	if len(st.Cool) > n {
		return nil, fmt.Errorf("world: resume: cooldown table has %d entries for %d nodes", len(st.Cool), n)
	}
	copy(w.cool, st.Cool)
	if w.retxAttempt != nil {
		copy(w.retxAttempt, st.RetxAttempt)
		copy(w.retxNext, st.RetxNext)
	}
	w.now = st.Now
	w.nextSample = st.NextSample
	w.nextAudit = st.NextAudit
	w.auditing = st.Auditing
	w.stepTarget = st.StepTarget
	w.chDown = st.ChDown
	w.chDownSince = st.ChDownSince
	w.chDownUntil = st.ChDownUntil
	w.chDownTotal = st.ChDownTotal
	w.sinkDown = st.SinkDown
	w.sinkSince = st.SinkSince
	for _, rs := range st.Requests {
		req, err := rs.Request(nw)
		if err != nil {
			return nil, fmt.Errorf("world: resume: request for node %d: %w", rs.Node, err)
		}
		if err := w.qu.Add(req); err != nil {
			return nil, fmt.Errorf("world: resume: re-queue node %d: %w", rs.Node, err)
		}
	}
	if err := w.eng.ResumeAt(st.Now); err != nil {
		return nil, fmt.Errorf("world: resume: %w", err)
	}
	return w, nil
}
