package world

import (
	"context"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// testWorld builds a small world over the default scenario with the
// given hand-built fault plan.
func testWorld(t *testing.T, ctx context.Context, plan *faults.Plan) (*W, *ledger.L, *wrsn.Network) {
	t.Helper()
	nw, _, err := trace.DefaultScenario(7, 60).Build()
	if err != nil {
		t.Fatal(err)
	}
	led := ledger.New()
	w := New(ctx, nw, led, Params{
		PollSec:     900,
		RequestFrac: wrsn.DefaultRequestFraction,
		Faults:      plan,
	}, nil)
	return w, led, nw
}

// TestCatchUpReentrancy: fault handlers run inside engine events and
// their Sync hook calls CatchUp mid-pump, while the world.step chain is
// itself advancing via CatchUp. Fault times deliberately land off the
// poll grid so every fault event interleaves with a step event at a
// different timestamp. The chain must survive and land exactly on the
// advance target.
func TestCatchUpReentrancy(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{
		{T: 1234.5, Kind: faults.NodeDown, Node: 3, Until: 5000.5},
		{T: 2000.1, Kind: faults.ChargerDown, Node: -1, Until: 3500.9},
		{T: 3500.9, Kind: faults.ChargerUp, Node: -1},
		{T: 5000.5, Kind: faults.NodeUp, Node: 3},
		{T: 6100.3, Kind: faults.SinkDown, Node: -1, Until: 7200.7},
		{T: 7200.7, Kind: faults.SinkUp, Node: -1},
	}}
	w, led, nw := testWorld(t, context.Background(), plan)

	// Advance in two legs, the first stopping inside the outage window.
	w.AdvanceTo(6500)
	if got := w.Now(); got != 6500 {
		t.Fatalf("Now() = %v after AdvanceTo(6500)", got)
	}
	if !w.SinkDown() {
		t.Error("sink outage window not open at t=6500")
	}
	w.AdvanceTo(10000)
	if got := w.Now(); got != 10000 {
		t.Fatalf("Now() = %v after AdvanceTo(10000)", got)
	}
	if w.SinkDown() {
		t.Error("sink outage window still open after its SinkUp event")
	}
	if led.Faults.NodeFailures != 1 || led.Faults.NodeRecoveries != 1 {
		t.Errorf("node fault counts = %d/%d, want 1/1",
			led.Faults.NodeFailures, led.Faults.NodeRecoveries)
	}
	if led.Faults.ChargerBreakdowns != 1 || led.Faults.ChargerRepairs != 1 {
		t.Errorf("charger fault counts = %d/%d, want 1/1",
			led.Faults.ChargerBreakdowns, led.Faults.ChargerRepairs)
	}
	if want := 3500.9 - 2000.1; math.Abs(w.ChargerDownSecTotal()-want) > 1e-9 {
		t.Errorf("ChargerDownSecTotal = %v, want %v", w.ChargerDownSecTotal(), want)
	}
	n, err := nw.Node(3)
	if err != nil {
		t.Fatal(err)
	}
	if n.Failed() {
		t.Error("node 3 still hardware-failed after its NodeUp event")
	}
	w.CloseFaultWindows()
	if want := 7200.7 - 6100.3; math.Abs(led.Faults.SinkDownSec-want) > 1e-9 {
		t.Errorf("SinkDownSec = %v, want %v", led.Faults.SinkDownSec, want)
	}
}

// TestCatchUpReentrantCall: CatchUp called from inside an engine handler
// (the fleet's dispatch pattern) while fault events are in flight must
// not double-step or stall the step chain.
func TestCatchUpReentrantCall(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{
		{T: 950.5, Kind: faults.ChargerDown, Node: -1, Until: 1800.5},
		{T: 1800.5, Kind: faults.ChargerUp, Node: -1},
	}}
	w, led, _ := testWorld(t, context.Background(), plan)
	var sawDown bool
	err := w.Engine().At(1000, "test.reentrant", func(e *sim.Engine) {
		w.CatchUp(e.Now())
		sawDown = w.ChargerDownUntil() > 0
	})
	if err != nil {
		t.Fatal(err)
	}
	w.AdvanceTo(3000)
	if got := w.Now(); got != 3000 {
		t.Fatalf("Now() = %v after AdvanceTo(3000)", got)
	}
	if !sawDown {
		t.Error("handler-side CatchUp did not observe the already-applied breakdown")
	}
	if led.Faults.ChargerBreakdowns != 1 || led.Faults.ChargerRepairs != 1 {
		t.Errorf("charger fault counts = %d/%d, want 1/1",
			led.Faults.ChargerBreakdowns, led.Faults.ChargerRepairs)
	}
}

// TestCancelMidFaultWindow: a context canceled while a fault window is
// open stops the advance at the next boundary, and CloseFaultWindows
// still accounts the open window's downtime up to the stopped clock.
func TestCancelMidFaultWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	plan := &faults.Plan{Events: []faults.Event{
		{T: 1000.5, Kind: faults.ChargerDown, Node: -1, Until: 90000},
		{T: 2000.5, Kind: faults.SinkDown, Node: -1, Until: 90000},
	}}
	w, led, _ := testWorld(t, ctx, plan)
	w.AdvanceTo(1500)
	if w.ChargerDownUntil() != 90000 {
		t.Fatalf("breakdown window not open: until = %v", w.ChargerDownUntil())
	}
	cancel()
	w.AdvanceTo(50000)
	if !w.Canceled() {
		t.Fatal("Canceled() = false after cancel")
	}
	if w.Now() > 2400 {
		t.Errorf("Now() = %v; canceled advance ran on", w.Now())
	}
	stopped := w.Now()
	w.CloseFaultWindows()
	if want := stopped - 1000.5; math.Abs(led.Faults.ChargerDownSec-want) > 1e-9 {
		t.Errorf("ChargerDownSec = %v, want %v (downtime up to the stopped clock)",
			led.Faults.ChargerDownSec, want)
	}
	// The never-repaired window stays fatal: injected but not survived.
	if led.Faults.ChargerRepairs != 0 {
		t.Errorf("ChargerRepairs = %d for a window that never closed", led.Faults.ChargerRepairs)
	}
	if led.Faults.Fatal() == 0 {
		t.Error("open windows at cancel must count as fatal")
	}
}

// TestCatchUpAfterCancelIsNoOp: CatchUp on a canceled world must return
// immediately without moving the clock.
func TestCatchUpAfterCancelIsNoOp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w, _, _ := testWorld(t, ctx, nil)
	w.AdvanceTo(3000)
	cancel()
	before := w.Now()
	w.CatchUp(9000)
	if w.Now() != before {
		t.Errorf("CatchUp moved a canceled world: %v -> %v", before, w.Now())
	}
}
