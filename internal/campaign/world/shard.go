package world

import (
	"math"
	"runtime"
	"sync"

	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Sharded tick stepping. The per-tick work that scales with network size
// — battery drain, depletion forecasting, request-eligibility scanning,
// lifetime sampling — is embarrassingly parallel over nodes: each node's
// contribution reads and writes only its own dense-storage slots. The
// shard runner partitions the node set once (by grid region, so a shard
// streams neighboring rows of the struct-of-arrays storage), fans each
// tick's scan across shards, and merges per-shard results under rules
// that reproduce the sequential scan exactly:
//
//   - deaths: each shard's list is ascending by ID (shards hold ascending
//     IDs and AdvanceEnergyIn preserves input order), so an ascending-ID
//     k-way merge yields precisely the full ascending scan's list —
//     RecordDeath order, and through it the ledger, is unchanged;
//   - next depletion: per-shard minima merge by (time, ID) lex order,
//     matching the full scan's strict-< lowest-ID tie rule;
//   - request scanning: eligibility is a pure read per node, so shards
//     gather candidates in parallel and the mutating tail (the loss draw,
//     the queue insert, the ledger write) applies sequentially in
//     ascending ID order — the RNG consumes draws in exactly the
//     sequential scan's order;
//   - samples: per-shard counts are integers; addition is exact and
//     order-free.
//
// Anything that touches shared mutable state (routing recompute, ledger,
// queue, probe) stays on the caller's goroutine. The outcome is therefore
// byte-identical at any shard count, which the campaign digest tests pin
// at several explicit counts.

// autoShardMinNodes is the per-shard node floor under automatic sharding:
// below ~4k nodes per shard the goroutine fan-out costs more than the
// scan it splits.
const autoShardMinNodes = 4096

// shardRunner owns the partition and the per-shard scratch for one world.
// A nil *shardRunner means sequential stepping.
type shardRunner struct {
	nw     *wrsn.Network
	shards [][]wrsn.NodeID

	// Per-shard scratch, indexed by shard. Slices are written only by the
	// owning shard's goroutine during a fan-out.
	died  [][]wrsn.NodeID
	cands [][]wrsn.NodeID
	depT  []float64
	depID []wrsn.NodeID
	alive []int
	conn  []int
	key   []int

	merged   []wrsn.NodeID // merge output, reused across ticks
	headsBuf []int         // k-way merge cursors, reused across ticks
}

// newShardRunner builds the partition for k-way stepping. k == 0 sizes
// automatically from GOMAXPROCS and the node count; k <= 1 (or a network
// too small to split) returns nil, selecting the sequential path.
func newShardRunner(nw *wrsn.Network, k int) *shardRunner {
	n := len(nw.Nodes())
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
		if byNodes := n / autoShardMinNodes; byNodes < k {
			k = byNodes
		}
	}
	if k <= 1 || n < 2 {
		return nil
	}
	shards := nw.RegionShards(k)
	if len(shards) <= 1 {
		return nil
	}
	k = len(shards)
	sh := &shardRunner{
		nw:     nw,
		shards: shards,
		died:   make([][]wrsn.NodeID, k),
		cands:  make([][]wrsn.NodeID, k),
		depT:   make([]float64, k),
		depID:  make([]wrsn.NodeID, k),
		alive:  make([]int, k),
		conn:   make([]int, k),
		key:    make([]int, k),
	}
	for s := range shards {
		sh.died[s] = make([]wrsn.NodeID, 0, 16)
		sh.cands[s] = make([]wrsn.NodeID, 0, 64)
	}
	return sh
}

// run fans fn across shards, keeping shard 0 on the caller's goroutine,
// and barriers until every shard returns.
func (sh *shardRunner) run(fn func(s int)) {
	var wg sync.WaitGroup
	for s := 1; s < len(sh.shards); s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	fn(0)
	wg.Wait()
}

// advanceEnergy drains all shards in parallel and returns the dead nodes
// in ascending ID order — the exact list the sequential full scan
// produces. The returned slice is owned by the runner and valid until the
// next call.
func (sh *shardRunner) advanceEnergy(dt float64) []wrsn.NodeID {
	sh.run(func(s int) {
		sh.died[s] = sh.nw.AdvanceEnergyIn(sh.shards[s], dt, sh.died[s][:0])
	})
	return sh.mergeAscending(sh.died)
}

// nextDepletion merges per-shard depletion forecasts under the full
// scan's (time, lowest ID) rule.
func (sh *shardRunner) nextDepletion(now float64) (float64, wrsn.NodeID) {
	sh.run(func(s int) {
		sh.depT[s], sh.depID[s] = sh.nw.NextDepletionIn(sh.shards[s], now)
	})
	best, who := math.Inf(1), wrsn.ParentNone
	for s := range sh.depT {
		if sh.depT[s] < best || (sh.depT[s] == best && sh.depID[s] < who) {
			best, who = sh.depT[s], sh.depID[s]
		}
	}
	return best, who
}

// gatherWanting evaluates the pure eligibility predicate across shards in
// parallel and returns the passing IDs in ascending order, ready for the
// sequential mutating apply. wants must only read world state.
func (sh *shardRunner) gatherWanting(wants func(wrsn.NodeID) bool) []wrsn.NodeID {
	sh.run(func(s int) {
		out := sh.cands[s][:0]
		for _, id := range sh.shards[s] {
			if wants(id) {
				out = append(out, id)
			}
		}
		sh.cands[s] = out
	})
	return sh.mergeAscending(sh.cands)
}

// sampleCounts tallies alive / connected / key-alive across shards.
func (sh *shardRunner) sampleCounts(keySet []bool) (alive, connected, keyAlive int) {
	nw := sh.nw
	nodes := nw.Nodes()
	sh.run(func(s int) {
		var a, c, k int
		for _, id := range sh.shards[s] {
			if !nodes[id].Alive() {
				continue
			}
			a++
			if nw.Connected(id) {
				c++
			}
			if keySet[id] {
				k++
			}
		}
		sh.alive[s], sh.conn[s], sh.key[s] = a, c, k
	})
	for s := range sh.alive {
		alive += sh.alive[s]
		connected += sh.conn[s]
		keyAlive += sh.key[s]
	}
	return alive, connected, keyAlive
}

// mergeAscending k-way merges per-shard ascending ID lists into one
// ascending list (IDs are disjoint across shards). The result is reused
// scratch, valid until the next merge.
func (sh *shardRunner) mergeAscending(lists [][]wrsn.NodeID) []wrsn.NodeID {
	out := sh.merged[:0]
	heads := headsScratch(&sh.headsBuf, len(lists))
	for {
		pick := -1
		var min wrsn.NodeID
		for s, l := range lists {
			if heads[s] >= len(l) {
				continue
			}
			if id := l[heads[s]]; pick < 0 || id < min {
				pick, min = s, id
			}
		}
		if pick < 0 {
			break
		}
		out = append(out, min)
		heads[pick]++
	}
	sh.merged = out
	return out
}

// headsBuf backs mergeAscending's per-call head cursors.
func headsScratch(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	h := (*buf)[:n]
	for i := range h {
		h[i] = 0
	}
	return h
}
