package campaign

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/defense"
)

// Harvest verification at a meaningful rate exposes the attacker: the
// spoofed sessions physically cannot pass a precise DC check.
func TestVerificationExposesCSA(t *testing.T) {
	exposedRuns := 0
	const seeds = 3
	for s := 0; s < seeds; s++ {
		seed := uint64(100 + s)
		nw, ch := buildScenario(t, seed, 150)
		o, err := RunAttack(context.Background(), nw, ch, Config{
			Seed:    seed,
			Defense: defense.Config{VerifyProb: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Exposures) > 0 {
			exposedRuns++
			e := o.Exposures[0]
			if e.By != "harvest-verification" {
				t.Errorf("exposed by %q", e.By)
			}
			if !o.Caught || o.CaughtBy != "harvest-verification" {
				t.Error("exposure did not impound the charger")
			}
		}
	}
	if exposedRuns < 2 {
		t.Errorf("only %d/%d runs exposed at 50%% verification", exposedRuns, seeds)
	}
}

// Verification never fingers an honest charger for spoofing — benign dead
// sessions surface as false alarms, not exposures.
func TestVerificationOnLegit(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunLegit(context.Background(), nw, ch, Config{
		Seed:    42,
		Defense: defense.Config{VerifyProb: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Exposures) != 0 {
		t.Errorf("legit run produced exposures: %v", o.Exposures)
	}
	if o.Detected {
		t.Error("legit run detected")
	}
	// Nodes paid for their checks.
	if o.DeadTotal != 0 {
		t.Errorf("verification cost killed %d nodes", o.DeadTotal)
	}
}

// Witnessing at standard density has almost no coverage and never
// exposes — the geometric limitation.
func TestWitnessSparseDeployment(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunAttack(context.Background(), nw, ch, Config{
		Seed:    42,
		Defense: defense.Config{WitnessDutyCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	perSession := float64(o.WitnessSamples) / float64(len(o.Sessions))
	if perSession > 0.5 {
		t.Errorf("unexpectedly dense witnessing: %.2f samples/session", perSession)
	}
	for _, e := range o.Exposures {
		if e.By == "neighbor-witness" {
			t.Error("witness exposure at standard density")
		}
	}
}

// Defenses off by default: zero config leaves outcomes untouched.
func TestDefenseDisabledByDefault(t *testing.T) {
	nw, ch := buildScenario(t, 42, 120)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Exposures) != 0 || o.FalseAlarms != 0 || o.WitnessSamples != 0 {
		t.Errorf("defense bookkeeping nonzero with defenses off: %+v", o)
	}
}
