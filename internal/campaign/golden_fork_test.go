package campaign

// Snapshot fork fence: every pinned golden case re-run on a world forked
// from a snapshot — and on a world forked from an encoded-then-decoded
// snapshot — must reproduce the recorded digest byte for byte. This is
// the correctness contract that lets seed sweeps replace N scenario
// builds with one build plus N forks: if forking (or the wire format)
// perturbed any observable state, the drift would land here, named
// after the responsible campaign flavor.

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// forkSpec is one golden case expressed as data rather than a closure,
// so the same case can run on any world source (direct build in
// golden_test.go, snapshot forks here).
type forkSpec struct {
	name   string
	seed   uint64
	n      int
	kind   string // "attack", "legit", "fleet"
	fleet  int
	mutate func(*Config)
	faults *faults.Spec
}

// forkSpecs mirrors goldenCases one for one;
// TestForkSpecsCoverAllGoldenCases enforces the correspondence.
func forkSpecs() []forkSpec {
	specs := []forkSpec{}
	for _, seed := range []uint64{42, 1000, 8919} {
		specs = append(specs,
			forkSpec{name: nameOf("legit/seed", seed), seed: seed, n: 120, kind: "legit"},
			forkSpec{name: nameOf("csa/seed", seed), seed: seed, n: 120, kind: "attack"},
			forkSpec{name: nameOf("greedy/seed", seed), seed: seed, n: 120, kind: "attack",
				mutate: func(c *Config) { c.Solver = SolverGreedyNearest }},
		)
	}
	specs = append(specs,
		forkSpec{name: "random/seed42", seed: 42, n: 120, kind: "attack",
			mutate: func(c *Config) { c.Solver = SolverRandom }},
		forkSpec{name: "polished/seed42", seed: 42, n: 120, kind: "attack",
			mutate: func(c *Config) { c.Solver = SolverCSAPolished }},
		forkSpec{name: "direct-nofill/seed42", seed: 42, n: 120, kind: "attack",
			mutate: func(c *Config) { c.Solver = SolverDirect; c.NoFill = true }},
		forkSpec{name: "progressive/seed42", seed: 42, n: 150, kind: "attack",
			mutate: func(c *Config) { c.Progressive = true }},
		forkSpec{name: "defense-verify/seed100", seed: 100, n: 120, kind: "attack",
			mutate: func(c *Config) { c.Defense = defense.Config{VerifyProb: 0.5} }},
		forkSpec{name: "defense-witness/seed42", seed: 42, n: 120, kind: "attack",
			mutate: func(c *Config) { c.Defense = defense.Config{WitnessDutyCycle: 1} }},
		forkSpec{name: "sampled/seed42", seed: 42, n: 100, kind: "attack",
			mutate: func(c *Config) { c.SampleEverySec = 6 * 3600 }},
		forkSpec{name: "legit-edf/seed42", seed: 42, n: 120, kind: "legit",
			mutate: func(c *Config) { c.Scheduler = charging.EDF{} }},
		forkSpec{name: "fleet2/seed42", seed: 42, n: 150, kind: "fleet", fleet: 2},
		forkSpec{name: "fleet3/seed11", seed: 11, n: 150, kind: "fleet", fleet: 3},
		forkSpec{name: "faults-node/seed42", seed: 42, n: 120, kind: "attack",
			faults: &faults.Spec{Seed: 42, HorizonSec: attack.DefaultHorizonSec, NodeFailures: 5}},
		forkSpec{name: "faults-loss/seed42", seed: 42, n: 120, kind: "attack",
			faults: &faults.Spec{Seed: 42, HorizonSec: attack.DefaultHorizonSec, RequestLossProb: 0.3}},
		forkSpec{name: "faults-breakdown/seed42", seed: 42, n: 120, kind: "attack",
			faults: &faults.Spec{Seed: 42, HorizonSec: attack.DefaultHorizonSec, ChargerBreakdowns: 3}},
	)
	return specs
}

func nameOf(prefix string, seed uint64) string {
	switch seed {
	case 42:
		return prefix + "42"
	case 1000:
		return prefix + "1000"
	case 8919:
		return prefix + "8919"
	}
	panic("unpinned seed")
}

// runForked executes one spec on a fork of snap and returns the outcome.
func runForked(t *testing.T, snap *snapshot.Snapshot, fs forkSpec) any {
	t.Helper()
	nw, ch, _, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: fs.seed}
	if fs.mutate != nil {
		fs.mutate(&cfg)
	}
	if fs.faults != nil {
		cfg.Faults = faults.New(*fs.faults, nw.Len())
	}
	switch fs.kind {
	case "legit":
		o, err := RunLegit(context.Background(), nw, ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	case "fleet":
		chargers := make([]*mc.Charger, fs.fleet)
		chargers[0] = ch
		for i := 1; i < fs.fleet; i++ {
			chargers[i] = ch.Fork()
		}
		o, err := RunLegitFleet(context.Background(), nw, chargers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	default:
		o, err := RunAttack(context.Background(), nw, ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

// forkWorlds caches one snapshot per distinct scenario so the suite pays
// each scenario build once — exactly the economics forking exists for.
func forkWorlds(t *testing.T, decode bool) func(seed uint64, n int) *snapshot.Snapshot {
	t.Helper()
	cache := map[trace.Scenario]*snapshot.Snapshot{}
	return func(seed uint64, n int) *snapshot.Snapshot {
		sc := trace.DefaultScenario(seed, n)
		if s, ok := cache[sc]; ok {
			return s
		}
		s, err := snapshot.Build(sc, mc.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if decode {
			b, err := s.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if s, err = snapshot.Decode(b); err != nil {
				t.Fatal(err)
			}
		}
		cache[sc] = s
		return s
	}
}

// TestGoldenForkedDigests re-runs every pinned golden case on a forked
// world: the digests must match the direct-build goldens bit for bit.
func TestGoldenForkedDigests(t *testing.T) {
	want := loadGolden(t)
	snapFor := forkWorlds(t, false)
	for _, fs := range forkSpecs() {
		fs := fs
		t.Run(fs.name, func(t *testing.T) {
			d := digestOf(t, runForked(t, snapFor(fs.seed, fs.n), fs))
			if exp := want[fs.name]; d != exp {
				t.Errorf("forked digest %s != golden %s; forking perturbed the world", d, exp)
			}
		})
	}
}

// TestGoldenDecodedForkDigests is the wire-format half of the fence: the
// snapshot crosses Encode→Decode before forking, so any lossy or
// order-unstable field in the serialization breaks the digest.
func TestGoldenDecodedForkDigests(t *testing.T) {
	want := loadGolden(t)
	snapFor := forkWorlds(t, true)
	for _, fs := range forkSpecs() {
		fs := fs
		t.Run(fs.name, func(t *testing.T) {
			d := digestOf(t, runForked(t, snapFor(fs.seed, fs.n), fs))
			if exp := want[fs.name]; d != exp {
				t.Errorf("decoded-fork digest %s != golden %s; the wire format lost state", d, exp)
			}
		})
	}
}

// TestForkSpecsCoverAllGoldenCases pins the mirror: every golden case
// has a fork spec of the same name, and nothing extra.
func TestForkSpecsCoverAllGoldenCases(t *testing.T) {
	golden := map[string]bool{}
	for _, gc := range goldenCases() {
		golden[gc.name] = true
	}
	seen := map[string]bool{}
	for _, fs := range forkSpecs() {
		if !golden[fs.name] {
			t.Errorf("fork spec %q has no golden case", fs.name)
		}
		if seen[fs.name] {
			t.Errorf("duplicate fork spec %q", fs.name)
		}
		seen[fs.name] = true
	}
	for name := range golden {
		if !seen[name] {
			t.Errorf("golden case %q has no fork spec; the fork fence misses it", name)
		}
	}
}
