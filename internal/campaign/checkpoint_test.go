package campaign

// Checkpoint/resume fence: for every golden flavor, a run stopped at a
// pseudo-randomly chosen barrier, serialized to bytes, decoded, and
// resumed must reproduce the exact golden Outcome digest. The stop
// ordinal is derived deterministically from the case name so each flavor
// interrupts at a different, reproducible point. Plain `go test` fences a
// representative subset; the full 22-flavor sweep runs under
// WRSN_VERIFY_CHECKPOINT=1 (wired as `make verify-checkpoint`, with
// -race, in CI).

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/snapshot"
)

// stopOrdinal maps a case name to a barrier ordinal in [1, 512]. The
// ordinal is pinned by the name (not by math/rand) so a failure replays
// identically; 512 keeps every flavor's stop inside its first simulated
// day while still spreading stops across loop, wait, and fleet barriers.
func stopOrdinal(name string) int {
	h := sha256.Sum256([]byte(name))
	return 1 + int(binary.BigEndian.Uint64(h[:8])%512)
}

// fenceCase interrupts gc at its pinned barrier and resumes from the
// serialized checkpoint; both the stopped run's capture and the resumed
// run must land on the golden digest `want`.
func fenceCase(t *testing.T, gc goldenCase, want string) {
	t.Helper()
	k := stopOrdinal(gc.name)
	var (
		barriers int
		captured *snapshot.Snapshot
	)
	plan := &CheckpointPlan{
		// Every: an hour of wall clock, so the periodic path captures
		// nothing and the single capture comes from Stop (which bypasses
		// the interval gate).
		Every: time.Hour,
		Sink: func(s *snapshot.Snapshot) error {
			captured = s
			return nil
		},
		Stop: func() bool {
			barriers++
			return barriers == k
		},
	}
	o, err := gc.runPlan(t, nil, plan)
	if err == nil {
		// The run finished before barrier k — short flavors can have
		// fewer than 512 barriers. The checkpointed (but never stopped)
		// run must still match its golden exactly.
		if barriers >= k {
			t.Fatalf("run completed but Stop fired (%d barriers, stop at %d)", barriers, k)
		}
		if captured != nil {
			t.Fatal("interval capture fired despite the hour-long gate")
		}
		if d := digestOf(t, o); d != want {
			t.Errorf("checkpoint-armed run drifted from golden:\n got %s\nwant %s", d, want)
		}
		t.Logf("run ended after %d barriers, before stop ordinal %d; resume not exercised", barriers, k)
		return
	}
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped run: err = %v, want ErrStopped", err)
	}
	if o != nil {
		t.Fatalf("stopped run returned an outcome: %+v", o)
	}
	if captured == nil {
		t.Fatal("ErrStopped without a captured snapshot")
	}

	// Kill: only the serialized bytes survive.
	b, err := captured.Encode()
	if err != nil {
		t.Fatalf("encode checkpoint: %v", err)
	}
	snap, err := snapshot.Decode(b)
	if err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	if !snap.Live() {
		t.Fatal("decoded checkpoint is not live")
	}

	// Resume with a fresh config (and, for fault flavors, a fresh fault
	// plan from the same spec — exactly what a daemon restart does).
	cfg := gc.config(nil)
	var resumed any
	if gc.kind == kindFleet {
		resumed, err = ResumeFleet(context.Background(), snap, cfg)
	} else {
		resumed, err = Resume(context.Background(), snap, cfg)
	}
	if err != nil {
		t.Fatalf("resume after %d barriers: %v", k, err)
	}
	if d := digestOf(t, resumed); d != want {
		t.Errorf("resumed run diverged from uninterrupted golden (stopped at barrier %d):\n got %s\nwant %s", k, d, want)
	}
}

// TestCheckpointResumeGolden is the kill-and-resume fence. The subset
// covers every mechanism (legit loop, attacker phase machine, defense,
// fault loss stream, fleet); WRSN_VERIFY_CHECKPOINT=1 sweeps all flavors.
func TestCheckpointResumeGolden(t *testing.T) {
	want := loadGolden(t)
	full := os.Getenv("WRSN_VERIFY_CHECKPOINT") != ""
	subset := map[string]bool{
		"legit/seed42":           true,
		"csa/seed42":             true,
		"progressive/seed42":     true,
		"defense-witness/seed42": true,
		"faults-loss/seed42":     true,
		"fleet2/seed42":          true,
	}
	for _, gc := range goldenCases() {
		gc := gc
		if !full && !subset[gc.name] {
			continue
		}
		t.Run(gc.name, func(t *testing.T) {
			if full {
				t.Parallel()
			}
			exp, ok := want[gc.name]
			if !ok {
				t.Fatalf("no pinned digest for %q", gc.name)
			}
			fenceCase(t, gc, exp)
		})
	}
}

// TestCheckpointResumeShardInvariance pins that a checkpoint taken at one
// shard count resumes byte-identically at any other: sharding is a
// wall-clock knob, and the checkpoint carries no shard state.
func TestCheckpointResumeShardInvariance(t *testing.T) {
	want := loadGolden(t)
	gc := func() goldenCase {
		for _, c := range goldenCases() {
			if c.name == "csa/seed42" {
				return c
			}
		}
		t.Fatal("csa/seed42 not in golden table")
		panic("unreachable")
	}()
	k := stopOrdinal(gc.name)
	var (
		barriers int
		captured *snapshot.Snapshot
	)
	plan := &CheckpointPlan{
		Every: time.Hour,
		Sink:  func(s *snapshot.Snapshot) error { captured = s; return nil },
		Stop:  func() bool { barriers++; return barriers == k },
	}
	if _, err := gc.runPlan(t, nil, plan); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	b, err := captured.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		snap, err := snapshot.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		cfg := gc.config(nil)
		cfg.Shards = shards
		o, err := Resume(context.Background(), snap, cfg)
		if err != nil {
			t.Fatalf("resume with %d shards: %v", shards, err)
		}
		if d := digestOf(t, o); d != want[gc.name] {
			t.Errorf("resume with %d shards diverged: %s != %s", shards, d, want[gc.name])
		}
	}
}

// TestCheckpointPeriodicCapture exercises the interval path: with a zero
// Every, every barrier captures, each snapshot is live and serializable,
// and the run's outcome stays on the golden digest — capture is pure
// reads.
func TestCheckpointPeriodicCapture(t *testing.T) {
	want := loadGolden(t)
	for _, name := range []string{"legit/seed42", "fleet2/seed42"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var gc goldenCase
			for _, c := range goldenCases() {
				if c.name == name {
					gc = c
				}
			}
			captures := 0
			plan := &CheckpointPlan{
				Sink: func(s *snapshot.Snapshot) error {
					captures++
					if !s.Live() {
						t.Fatal("captured snapshot not live")
					}
					return nil
				},
			}
			o, err := gc.runPlan(t, nil, plan)
			if err != nil {
				t.Fatal(err)
			}
			if captures == 0 {
				t.Fatal("no captures at Every=0")
			}
			if d := digestOf(t, o); d != want[name] {
				t.Errorf("per-barrier capture perturbed the run: %s != %s", d, want[name])
			}
			t.Logf("%d captures", captures)
		})
	}
}
