package campaign

// Golden determinism harness: every representative campaign flavor —
// legit service, window-aware and window-unaware attacks, the caught
// path, progressive recruiting, defenses, lifetime sampling, and the
// fleet — is run at pinned seeds and its Outcome reduced to a SHA-256
// digest of a canonical JSON form. The digests in
// testdata/outcome_digests.json were recorded from the pre-refactor
// monolithic runner; any behavioral drift in a later decomposition of
// the campaign shows up here as a digest mismatch long before a
// statistical test would notice.
//
// To re-pin after an INTENTIONAL behavior change, run:
//
//	WRSN_REGEN_GOLDEN=1 go test ./internal/campaign -run TestGoldenOutcomeDigests
//
// and commit the rewritten testdata file together with an explanation of
// why byte-identical outcomes could not be preserved.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

const goldenPath = "testdata/outcome_digests.json"

// digestOf reduces any outcome-like value to a hex SHA-256 over its
// canonical JSON form via the shared digest package — the same
// canonicalization the campaign service reports to clients, so a daemon
// digest is directly comparable against these goldens.
func digestOf(t *testing.T, v any) string {
	t.Helper()
	d, err := digest.Sum(v)
	if err != nil {
		t.Fatalf("digest outcome: %v", err)
	}
	return d
}

// caseKind selects the campaign entry point a golden case exercises.
type caseKind int

const (
	kindLegit caseKind = iota
	kindAttack
	kindFleet
)

// goldenCase is one pinned campaign configuration in data form — enough
// for the digest harness to run it and for the checkpoint fence to run,
// interrupt, and resume it. probe is attached to both the chargers and
// the campaign when non-nil; the digest must not move either way —
// telemetry is strictly observational.
type goldenCase struct {
	name   string
	kind   caseKind
	seed   uint64
	n      int
	fleetK int
	// spec, when non-nil, compiles a fresh fault plan per run (plans are
	// single-use, so regen, probed re-runs, and resumes each build one).
	spec   *faults.Spec
	mutate func(*Config)
}

// scenario is the case's pinned world recipe; it also rides along as
// checkpoint provenance.
func (gc goldenCase) scenario() trace.Scenario {
	return trace.DefaultScenario(gc.seed, gc.n)
}

// config assembles the run Config, building a fresh fault plan when the
// case has one.
func (gc goldenCase) config(probe obs.Probe) Config {
	cfg := Config{Seed: gc.seed, Probe: probe}
	if gc.spec != nil {
		cfg.Faults = faults.New(*gc.spec, gc.n)
	}
	if gc.mutate != nil {
		gc.mutate(&cfg)
	}
	return cfg
}

// runPlan executes the case once, optionally with a checkpoint plan
// armed, and returns the raw outcome and error — the checkpoint fence
// needs ErrStopped back, so nothing is t.Fatal'd here.
func (gc goldenCase) runPlan(t *testing.T, probe obs.Probe, plan *CheckpointPlan) (any, error) {
	t.Helper()
	nw, _, err := gc.scenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := gc.config(probe)
	if plan != nil {
		plan.Scenario = gc.scenario()
		cfg.Checkpoint = plan
	}
	ctx := context.Background()
	if gc.kind == kindFleet {
		chargers := make([]*mc.Charger, gc.fleetK)
		for i := range chargers {
			chargers[i] = mc.New(nw.Sink(), mc.DefaultParams())
			if probe != nil {
				chargers[i].Instrument(probe)
			}
		}
		o, err := RunLegitFleet(ctx, nw, chargers, cfg)
		if o == nil {
			return nil, err // a typed nil inside `any` would defeat == nil checks
		}
		return o, err
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	if probe != nil {
		ch.Instrument(probe)
	}
	var o *Outcome
	if gc.kind == kindLegit {
		o, err = RunLegit(ctx, nw, ch, cfg)
	} else {
		o, err = RunAttack(ctx, nw, ch, cfg)
	}
	if o == nil {
		return nil, err
	}
	return o, err
}

// run executes the case once and fails the test on error.
func (gc goldenCase) run(t *testing.T, probe obs.Probe) any {
	t.Helper()
	o, err := gc.runPlan(t, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func attackCase(seed uint64, n int, mutate func(*Config)) goldenCase {
	return goldenCase{kind: kindAttack, seed: seed, n: n, mutate: mutate}
}

func legitCase(seed uint64, n int, mutate func(*Config)) goldenCase {
	return goldenCase{kind: kindLegit, seed: seed, n: n, mutate: mutate}
}

func faultCase(seed uint64, n int, spec faults.Spec) goldenCase {
	return goldenCase{kind: kindAttack, seed: seed, n: n, spec: &spec}
}

func fleetCase(seed uint64, n, k int) goldenCase {
	return goldenCase{kind: kindFleet, seed: seed, n: n, fleetK: k}
}

// goldenCases is the pinned behavioral surface: three seeds per solver
// family per the acceptance bar, plus one case for every special code
// path (impoundment + honest replacement, progressive recruiting,
// countermeasures, lifetime sampling, the no-fill ablation, fleet).
func goldenCases() []goldenCase {
	named := func(name string, gc goldenCase) goldenCase {
		gc.name = name
		return gc
	}
	cases := []goldenCase{}
	for _, seed := range []uint64{42, 1000, 8919} {
		seed := seed
		cases = append(cases,
			named(fmt.Sprintf("legit/seed%d", seed), legitCase(seed, 120, nil)),
			named(fmt.Sprintf("csa/seed%d", seed), attackCase(seed, 120, nil)),
			named(fmt.Sprintf("greedy/seed%d", seed), attackCase(seed, 120, func(c *Config) { c.Solver = SolverGreedyNearest })),
		)
	}
	cases = append(cases,
		named("random/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverRandom })),
		named("polished/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverCSAPolished })),
		named("direct-nofill/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverDirect; c.NoFill = true })),
		named("progressive/seed42", attackCase(42, 150, func(c *Config) { c.Progressive = true })),
		named("defense-verify/seed100", attackCase(100, 120, func(c *Config) { c.Defense = defense.Config{VerifyProb: 0.5} })),
		named("defense-witness/seed42", attackCase(42, 120, func(c *Config) { c.Defense = defense.Config{WitnessDutyCycle: 1} })),
		named("sampled/seed42", attackCase(42, 100, func(c *Config) { c.SampleEverySec = 6 * 3600 })),
		named("legit-edf/seed42", legitCase(42, 120, func(c *Config) { c.Scheduler = charging.EDF{} })),
		named("fleet2/seed42", fleetCase(42, 150, 2)),
		named("fleet3/seed11", fleetCase(11, 150, 3)),
		// Fault-injection flavors, one per fault family, pinned at the
		// default horizon. Each isolates its family so a digest drift
		// points at the responsible mechanism.
		named("faults-node/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, NodeFailures: 5})),
		named("faults-loss/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, RequestLossProb: 0.3})),
		named("faults-breakdown/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, ChargerBreakdowns: 3})),
	)
	return cases
}

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden digests missing (%v); regenerate with WRSN_REGEN_GOLDEN=1", err)
	}
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return m
}

// TestGoldenOutcomeDigests is the refactor safety net: Outcomes at every
// pinned seed must be byte-identical to the recorded pre-refactor values.
func TestGoldenOutcomeDigests(t *testing.T) {
	regen := os.Getenv("WRSN_REGEN_GOLDEN") != ""
	var want map[string]string
	if !regen {
		want = loadGolden(t)
	}
	got := make(map[string]string)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			d := digestOf(t, gc.run(t, nil))
			got[gc.name] = d
			if regen {
				return
			}
			exp, ok := want[gc.name]
			if !ok {
				t.Fatalf("no pinned digest for %q; regenerate goldens", gc.name)
			}
			if d != exp {
				t.Errorf("outcome digest drifted:\n got %s\nwant %s\nthe campaign's behavior changed at this seed", d, exp)
			}
		})
	}
	if regen {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d digests to %s", len(got), goldenPath)
	}
}

// TestGoldenProbeInvariance re-runs representative cases with a recording
// probe attached everywhere a probe can attach: the digests must match
// the unprobed goldens bit for bit.
func TestGoldenProbeInvariance(t *testing.T) {
	want := loadGolden(t)
	for _, name := range []string{"legit/seed42", "csa/seed42", "greedy/seed42", "fleet2/seed42"} {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, gc := range goldenCases() {
				if gc.name != name {
					continue
				}
				rec := obs.NewRecorder()
				d := digestOf(t, gc.run(t, rec))
				if exp := want[name]; d != exp {
					t.Errorf("probed outcome digest %s != unprobed golden %s; telemetry perturbed the run", d, exp)
				}
				if len(rec.Snapshot().Counters) == 0 {
					t.Error("recorder stayed empty; probe was not attached")
				}
				return
			}
			t.Fatalf("case %q not found", name)
		})
	}
}
