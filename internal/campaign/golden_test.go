package campaign

// Golden determinism harness: every representative campaign flavor —
// legit service, window-aware and window-unaware attacks, the caught
// path, progressive recruiting, defenses, lifetime sampling, and the
// fleet — is run at pinned seeds and its Outcome reduced to a SHA-256
// digest of a canonical JSON form. The digests in
// testdata/outcome_digests.json were recorded from the pre-refactor
// monolithic runner; any behavioral drift in a later decomposition of
// the campaign shows up here as a digest mismatch long before a
// statistical test would notice.
//
// To re-pin after an INTENTIONAL behavior change, run:
//
//	WRSN_REGEN_GOLDEN=1 go test ./internal/campaign -run TestGoldenOutcomeDigests
//
// and commit the rewritten testdata file together with an explanation of
// why byte-identical outcomes could not be preserved.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

const goldenPath = "testdata/outcome_digests.json"

// digestOf reduces any outcome-like value to a hex SHA-256 over its
// canonical JSON form via the shared digest package — the same
// canonicalization the campaign service reports to clients, so a daemon
// digest is directly comparable against these goldens.
func digestOf(t *testing.T, v any) string {
	t.Helper()
	d, err := digest.Sum(v)
	if err != nil {
		t.Fatalf("digest outcome: %v", err)
	}
	return d
}

// goldenCase runs one pinned campaign configuration. probe is attached to
// both the charger and the campaign when non-nil; the digest must not
// move either way — telemetry is strictly observational.
type goldenCase struct {
	name string
	run  func(t *testing.T, probe obs.Probe) any
}

func attackCase(seed uint64, n int, mutate func(*Config)) func(t *testing.T, probe obs.Probe) any {
	return func(t *testing.T, probe obs.Probe) any {
		t.Helper()
		nw, _, err := trace.DefaultScenario(seed, n).Build()
		if err != nil {
			t.Fatal(err)
		}
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		if probe != nil {
			ch.Instrument(probe)
		}
		cfg := Config{Seed: seed, Probe: probe}
		if mutate != nil {
			mutate(&cfg)
		}
		o, err := RunAttack(context.Background(), nw, ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

func legitCase(seed uint64, n int, mutate func(*Config)) func(t *testing.T, probe obs.Probe) any {
	return func(t *testing.T, probe obs.Probe) any {
		t.Helper()
		nw, _, err := trace.DefaultScenario(seed, n).Build()
		if err != nil {
			t.Fatal(err)
		}
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		if probe != nil {
			ch.Instrument(probe)
		}
		cfg := Config{Seed: seed, Probe: probe}
		if mutate != nil {
			mutate(&cfg)
		}
		o, err := RunLegit(context.Background(), nw, ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

// faultCase is attackCase with a fault plan compiled from spec. The plan
// is built inside the run (plans are single-use) so regen and probed
// re-runs each get a fresh one.
func faultCase(seed uint64, n int, spec faults.Spec) func(t *testing.T, probe obs.Probe) any {
	return func(t *testing.T, probe obs.Probe) any {
		t.Helper()
		nw, _, err := trace.DefaultScenario(seed, n).Build()
		if err != nil {
			t.Fatal(err)
		}
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		if probe != nil {
			ch.Instrument(probe)
		}
		cfg := Config{Seed: seed, Probe: probe, Faults: faults.New(spec, nw.Len())}
		o, err := RunAttack(context.Background(), nw, ch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

func fleetCase(seed uint64, n, k int) func(t *testing.T, probe obs.Probe) any {
	return func(t *testing.T, probe obs.Probe) any {
		t.Helper()
		nw, _, err := trace.DefaultScenario(seed, n).Build()
		if err != nil {
			t.Fatal(err)
		}
		chargers := make([]*mc.Charger, k)
		for i := range chargers {
			chargers[i] = mc.New(nw.Sink(), mc.DefaultParams())
			if probe != nil {
				chargers[i].Instrument(probe)
			}
		}
		o, err := RunLegitFleet(context.Background(), nw, chargers, Config{Seed: seed, Probe: probe})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

// goldenCases is the pinned behavioral surface: three seeds per solver
// family per the acceptance bar, plus one case for every special code
// path (impoundment + honest replacement, progressive recruiting,
// countermeasures, lifetime sampling, the no-fill ablation, fleet).
func goldenCases() []goldenCase {
	cases := []goldenCase{}
	for _, seed := range []uint64{42, 1000, 8919} {
		seed := seed
		cases = append(cases,
			goldenCase{fmt.Sprintf("legit/seed%d", seed), legitCase(seed, 120, nil)},
			goldenCase{fmt.Sprintf("csa/seed%d", seed), attackCase(seed, 120, nil)},
			goldenCase{fmt.Sprintf("greedy/seed%d", seed), attackCase(seed, 120, func(c *Config) { c.Solver = SolverGreedyNearest })},
		)
	}
	cases = append(cases,
		goldenCase{"random/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverRandom })},
		goldenCase{"polished/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverCSAPolished })},
		goldenCase{"direct-nofill/seed42", attackCase(42, 120, func(c *Config) { c.Solver = SolverDirect; c.NoFill = true })},
		goldenCase{"progressive/seed42", attackCase(42, 150, func(c *Config) { c.Progressive = true })},
		goldenCase{"defense-verify/seed100", attackCase(100, 120, func(c *Config) { c.Defense = defense.Config{VerifyProb: 0.5} })},
		goldenCase{"defense-witness/seed42", attackCase(42, 120, func(c *Config) { c.Defense = defense.Config{WitnessDutyCycle: 1} })},
		goldenCase{"sampled/seed42", attackCase(42, 100, func(c *Config) { c.SampleEverySec = 6 * 3600 })},
		goldenCase{"legit-edf/seed42", legitCase(42, 120, func(c *Config) { c.Scheduler = charging.EDF{} })},
		goldenCase{"fleet2/seed42", fleetCase(42, 150, 2)},
		goldenCase{"fleet3/seed11", fleetCase(11, 150, 3)},
		// Fault-injection flavors, one per fault family, pinned at the
		// default horizon. Each isolates its family so a digest drift
		// points at the responsible mechanism.
		goldenCase{"faults-node/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, NodeFailures: 5})},
		goldenCase{"faults-loss/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, RequestLossProb: 0.3})},
		goldenCase{"faults-breakdown/seed42", faultCase(42, 120, faults.Spec{
			Seed: 42, HorizonSec: attack.DefaultHorizonSec, ChargerBreakdowns: 3})},
	)
	return cases
}

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden digests missing (%v); regenerate with WRSN_REGEN_GOLDEN=1", err)
	}
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return m
}

// TestGoldenOutcomeDigests is the refactor safety net: Outcomes at every
// pinned seed must be byte-identical to the recorded pre-refactor values.
func TestGoldenOutcomeDigests(t *testing.T) {
	regen := os.Getenv("WRSN_REGEN_GOLDEN") != ""
	var want map[string]string
	if !regen {
		want = loadGolden(t)
	}
	got := make(map[string]string)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			d := digestOf(t, gc.run(t, nil))
			got[gc.name] = d
			if regen {
				return
			}
			exp, ok := want[gc.name]
			if !ok {
				t.Fatalf("no pinned digest for %q; regenerate goldens", gc.name)
			}
			if d != exp {
				t.Errorf("outcome digest drifted:\n got %s\nwant %s\nthe campaign's behavior changed at this seed", d, exp)
			}
		})
	}
	if regen {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d digests to %s", len(got), goldenPath)
	}
}

// TestGoldenProbeInvariance re-runs representative cases with a recording
// probe attached everywhere a probe can attach: the digests must match
// the unprobed goldens bit for bit.
func TestGoldenProbeInvariance(t *testing.T) {
	want := loadGolden(t)
	for _, name := range []string{"legit/seed42", "csa/seed42", "greedy/seed42", "fleet2/seed42"} {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, gc := range goldenCases() {
				if gc.name != name {
					continue
				}
				rec := obs.NewRecorder()
				d := digestOf(t, gc.run(t, rec))
				if exp := want[name]; d != exp {
					t.Errorf("probed outcome digest %s != unprobed golden %s; telemetry perturbed the run", d, exp)
				}
				if len(rec.Snapshot().Counters) == 0 {
					t.Error("recorder stayed empty; probe was not attached")
				}
				return
			}
			t.Fatalf("case %q not found", name)
		})
	}
}
