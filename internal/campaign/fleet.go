package campaign

// Multi-charger fleet service — the capacity extension the WRSN charging
// literature motivates: beyond what one mobile charger can sustain, the
// operator deploys K chargers sharing the request queue. The fleet runs
// on the same world layer as the single-charger campaigns: the world owns
// the event engine, a self-ticking world event advances batteries,
// deaths, and requests, and each charger's dispatch/arrive/session-end
// handlers interleave on the engine. Handlers sync the world with
// CatchUp, the re-entrant-safe advance.
//
// Fleet events are keyed (kind + charger index) rather than closures, so
// the pending queue serializes into a live checkpoint and a restored
// engine re-binds the handlers and continues — see fleetRun, which holds
// exactly the per-charger state a closure used to capture.

import (
	"context"
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Fleet event kinds. The display names riding on the events
// ("world-tick", "dispatch", "idle-poll", "arrive", ...) are unchanged
// from the closure era so telemetry histograms keep their labels.
const (
	fleetTickKind     = "fleet.tick"
	fleetDispatchKind = "fleet.dispatch"
	fleetArriveKind   = "fleet.arrive"
	fleetEndKind      = "fleet.end"
)

// FleetOutcome reports a fleet run.
type FleetOutcome struct {
	// Chargers is the fleet size.
	Chargers int
	// DeadTotal, FirstDeathAt, RequestsIssued/Served and CoverUtilityJ
	// mirror the single-charger Outcome fields.
	DeadTotal      int
	FirstDeathAt   float64
	RequestsIssued int
	RequestsServed int
	CoverUtilityJ  float64
	// EnergySpentJ is the fleet's total energy use.
	EnergySpentJ float64
	// Audit carries the sink-side evidence (fleet-aggregated).
	Audit detect.Audit
	// BusyFrac is the mean fraction of the horizon each charger spent
	// traveling or radiating — the capacity-utilization statistic.
	BusyFrac float64

	// faults is the run's fault ledger, nil on fault-free runs;
	// unexported to keep fault-free digests byte-identical (see Outcome).
	faults *faults.Report
}

// FaultReport returns the fleet run's fault ledger, or nil when the run
// had no fault plan.
func (o *FleetOutcome) FaultReport() *faults.Report { return o.faults }

// fleetCh is one charger's in-flight assignment state — the fields the
// old closure handlers captured, now addressable so they checkpoint.
// Fields other than phase/req are meaningful only while EnRoute or
// Serving; they keep their last values while Idle (and checkpoint as
// such, which keeps resumed runs byte-identical to uninterrupted ones).
type fleetCh struct {
	phase       int // snapshot.FleetIdle / FleetEnRoute / FleetServing
	req         charging.Request
	rate        float64
	dur         float64
	start       float64
	meterBefore float64
	travelT     float64
	solicited   bool
}

// fleetRun is the fleet's runtime: the world, the chargers, their
// actors, and the shared dispatch bookkeeping.
type fleetRun struct {
	cfg      Config
	nw       *wrsn.Network
	w        *world.W
	led      *ledger.L
	r        *rng.Stream
	chargers []*mc.Charger
	actors   []*session.Actor
	st       []fleetCh
	// reserved prevents two chargers from chasing one request.
	reserved map[wrsn.NodeID]bool
	busy     float64
}

// newFleetRun wires actors and binds the keyed fleet handlers on the
// world's engine. It schedules nothing: a fresh run seeds the tick and
// dispatch events itself, a resumed run restores the captured queue.
func newFleetRun(nw *wrsn.Network, chargers []*mc.Charger, cfg Config, led *ledger.L, w *world.W, r *rng.Stream) *fleetRun {
	sp := session.Params{
		Band:           cfg.Band,
		BenignFailRate: cfg.BenignFailRate,
		SingleEmitter:  cfg.SingleEmitter,
		CooldownSec:    cfg.CooldownSec,
		Defense:        cfg.Defense,
	}
	f := &fleetRun{
		cfg: cfg, nw: nw, w: w, led: led, r: r,
		chargers: chargers,
		actors:   make([]*session.Actor, len(chargers)),
		st:       make([]fleetCh, len(chargers)),
		reserved: make(map[wrsn.NodeID]bool),
	}
	for i, ch := range chargers {
		f.actors[i] = session.NewActor(w, ch, led, r, sp, cfg.Probe)
	}
	eng := w.Engine()
	eng.Instrument(cfg.Probe)
	eng.Bind(fleetTickKind, func(e *sim.Engine, _ int) { f.tick(e) })
	eng.Bind(fleetDispatchKind, f.dispatch)
	eng.Bind(fleetArriveKind, f.arrive)
	eng.Bind(fleetEndKind, f.end)
	return f
}

// pick returns the scheduler's choice among unreserved requests.
func (f *fleetRun) pick(ch *mc.Charger) (charging.Request, bool) {
	var view charging.Queue
	for _, req := range f.w.Queue().Pending() {
		if f.reserved[req.Node] {
			continue
		}
		if err := view.Add(req); err != nil {
			continue
		}
	}
	return f.cfg.Scheduler.Next(&view, ch.Pos(), f.w.Now())
}

// tick advances batteries, deaths, and requests between fleet events.
func (f *fleetRun) tick(e *sim.Engine) {
	if f.w.Canceled() {
		return
	}
	f.w.CatchUp(e.Now())
	if e.Now() < f.cfg.HorizonSec {
		dt := math.Min(f.cfg.PollSec, f.cfg.HorizonSec-e.Now())
		_ = e.AfterKeyed(dt, fleetTickKind, 0, "world-tick")
	}
}

// dispatch executes one assignment attempt for charger idx.
func (f *fleetRun) dispatch(e *sim.Engine, idx int) {
	if f.w.Canceled() {
		return
	}
	w, ch := f.w, f.chargers[idx]
	w.CatchUp(e.Now())
	// A breakdown window grounds the whole depot: dispatch stands
	// down until the scheduled repair (in-flight sessions already
	// started are not suspended on the fleet path — only new
	// dispatches are gated).
	if until := w.ChargerDownUntil(); until > e.Now() {
		at := math.Min(until, f.cfg.HorizonSec)
		if at <= e.Now() {
			return // never repaired within the horizon: parked
		}
		_ = e.AtKeyed(at, fleetDispatchKind, idx, "breakdown-standby")
		return
	}
	req, ok := f.pick(ch)
	if !ok {
		_ = e.AfterKeyed(f.cfg.PollSec, fleetDispatchKind, idx, "idle-poll")
		return
	}
	node, err := f.nw.Node(req.Node)
	if err != nil || !node.Alive() {
		w.Queue().Remove(req.Node)
		_ = e.AfterKeyed(1, fleetDispatchKind, idx, "retry")
		return
	}
	f.reserved[req.Node] = true
	dock := ch.ServicePoint(node.Pos)
	travelT := ch.TravelTime(dock)
	if err := ch.Travel(dock); err != nil {
		// This charger is out of budget; it parks forever.
		delete(f.reserved, req.Node)
		return
	}
	s := &f.st[idx]
	s.phase = snapshot.FleetEnRoute
	s.req = req
	s.travelT = travelT
	_ = e.AfterKeyed(travelT, fleetArriveKind, idx, "arrive")
}

// arrive starts the charging session charger idx traveled for.
func (f *fleetRun) arrive(e *sim.Engine, idx int) {
	w, ch, s := f.w, f.chargers[idx], &f.st[idx]
	w.CatchUp(e.Now())
	s.phase = snapshot.FleetIdle // back to idle unless the session starts
	node, err := f.nw.Node(s.req.Node)
	if err != nil {
		delete(f.reserved, s.req.Node)
		return
	}
	if !node.Alive() {
		delete(f.reserved, s.req.Node)
		w.Queue().Remove(s.req.Node)
		_ = e.AfterKeyed(1, fleetDispatchKind, idx, "next")
		return
	}
	rate, err := ch.DeliveredPower(node.Pos)
	if err != nil || rate <= 0 {
		delete(f.reserved, s.req.Node)
		return
	}
	need := node.Battery.Capacity() - node.Battery.Level()
	dur := need / rate
	if err := ch.SpendRadiation(dur); err != nil {
		delete(f.reserved, s.req.Node) // out of budget: parked
		return
	}
	f.busy += s.travelT + dur
	s.solicited = w.Queue().Has(node.ID)
	s.meterBefore = node.Battery.MeterRead()
	s.start = e.Now()
	s.rate = rate
	s.dur = dur
	s.phase = snapshot.FleetServing
	_ = e.AfterKeyed(dur, fleetEndKind, idx, "session-end")
}

// end closes charger idx's session and recycles the charger.
func (f *fleetRun) end(e *sim.Engine, idx int) {
	w, s := f.w, &f.st[idx]
	w.CatchUp(e.Now())
	delete(f.reserved, s.req.Node)
	s.phase = snapshot.FleetIdle
	node, err := f.nw.Node(s.req.Node)
	if err != nil {
		return
	}
	if !node.Alive() {
		// Died mid-session (was nearly empty on arrival);
		// nothing to record beyond the death itself.
		_ = e.AfterKeyed(1, fleetDispatchKind, idx, "next")
		return
	}
	delivered := node.Battery.Charge(s.rate * s.dur)
	sess := charging.Session{
		Node: node.ID, Kind: charging.SessionFocus,
		Start: s.start, End: e.Now(),
		RequestedJ: s.req.NeedJ, DeliveredJ: delivered,
		MeterGainJ: node.Battery.MeterRead() - s.meterBefore,
	}
	f.actors[idx].Complete(node.ID, sess, true, s.solicited)
	_ = e.AfterKeyed(1, fleetDispatchKind, idx, "next")
}

// captureState assembles the fleet half of a live checkpoint. Pure
// reads; charger order is slice order, reservations sort by node ID.
func (f *fleetRun) captureState() *snapshot.CampaignState {
	fs := &snapshot.FleetState{Busy: f.busy}
	if len(f.reserved) > 0 {
		ids := make([]wrsn.NodeID, 0, len(f.reserved))
		for id := range f.reserved {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		fs.Reserved = ids
	}
	fs.Chargers = make([]snapshot.FleetCharger, len(f.chargers))
	for i, ch := range f.chargers {
		s := f.st[i]
		fc := snapshot.FleetCharger{
			Charger: ch.State(), Phase: s.phase,
			Rate: s.rate, Dur: s.dur, Start: s.start,
			MeterBefore: s.meterBefore, TravelT: s.travelT,
			Solicited: s.solicited,
		}
		if s.phase != snapshot.FleetIdle {
			rs := world.RequestStateOf(s.req)
			fc.Req = &rs
		}
		fs.Chargers[i] = fc
	}
	return &snapshot.CampaignState{
		World:  f.w.State(),
		Ledger: ledger.StateOf(f.led),
		Rand:   f.r.State(),
		Fleet:  fs,
	}
}

// fleetCheckpointer captures after engine events; the fleet has no
// policy drive loop, so every executed event is a barrier (handlers
// CatchUp first, so the world clock equals the engine clock).
type fleetCheckpointer struct {
	plan *CheckpointPlan
	f    *fleetRun
	last time.Time
}

func (c *fleetCheckpointer) afterEvent() error {
	if c.f.w.Canceled() {
		// A canceled handler returns without CatchUp; the world may lag
		// the engine, so this is not a capturable barrier. The pump
		// drains and the run reports ctx.Err().
		return nil
	}
	stop := c.plan.Stop != nil && c.plan.Stop()
	if !stop && c.plan.Every > 0 && time.Since(c.last) < c.plan.Every {
		return nil
	}
	snap, err := snapshot.CaptureLive(c.plan.Scenario, c.f.nw, nil, c.f.w.Engine(), c.f.captureState())
	if err != nil {
		return err
	}
	if err := c.plan.Sink(snap); err != nil {
		return err
	}
	c.last = time.Now()
	if stop {
		return ErrStopped
	}
	return nil
}

// pump runs the engine to the horizon, hooked when checkpointing.
func (f *fleetRun) pump() error {
	eng := f.w.Engine()
	if f.cfg.Checkpoint == nil {
		return eng.RunUntil(f.cfg.HorizonSec, 50_000_000)
	}
	ck := &fleetCheckpointer{plan: f.cfg.Checkpoint, f: f, last: time.Now()}
	return eng.RunUntilHook(f.cfg.HorizonSec, 50_000_000, func(string, string) error {
		return ck.afterEvent()
	})
}

// finish assembles the FleetOutcome after the pump drains.
func (f *fleetRun) finish(ctx context.Context) (*FleetOutcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg, w, led := f.cfg, f.w, f.led
	out := &FleetOutcome{Chargers: len(f.chargers), FirstDeathAt: math.Inf(1)}
	w.CatchUp(cfg.HorizonSec)
	if !cfg.Faults.Empty() {
		w.CloseFaultWindows()
		rep := led.Faults
		out.faults = &rep
	}

	for _, req := range w.Queue().Pending() {
		led.Audit.Unserved = append(led.Audit.Unserved, detect.RequestObs{
			Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
	}
	out.Audit = led.Audit
	out.RequestsIssued = led.Issued
	out.RequestsServed = led.Served
	out.FirstDeathAt = led.FirstDeath
	for _, s := range led.Sessions {
		out.CoverUtilityJ += s.Utility()
	}
	for _, ch := range f.chargers {
		out.EnergySpentJ += ch.Spent()
	}
	for _, n := range f.nw.Nodes() {
		// Dead means battery-exhausted; a hardware-failed node counts in
		// the fault report instead (identical on fault-free runs).
		if n.Battery.Depleted() {
			out.DeadTotal++
		}
	}
	out.BusyFrac = f.busy / (cfg.HorizonSec * float64(len(f.chargers)))
	if cfg.Probe.Enabled() {
		cfg.Probe.Set("fleet.chargers", float64(out.Chargers))
		cfg.Probe.Set("fleet.busy_frac", out.BusyFrac)
		cfg.Probe.Set("fleet.energy_spent_j", out.EnergySpentJ)
	}
	return out, nil
}

// RunLegitFleet simulates K honest chargers sharing the on-demand queue
// under the configured scheduler. Each charger, when free, takes the
// scheduler's pick, travels, serves the full recharge, and frees again;
// the event engine interleaves the fleet correctly. Deaths, requests and
// audits follow the same rules as the single-charger runs.
//
// The context is first-class: event handlers stop scheduling follow-up
// events once ctx is canceled, the event engine drains, and ctx.Err()
// is returned.
func RunLegitFleet(ctx context.Context, nw *wrsn.Network, chargers []*mc.Charger, cfg Config) (*FleetOutcome, error) {
	if len(chargers) == 0 {
		return nil, fmt.Errorf("campaign: fleet needs at least one charger")
	}
	cfg.applyDefaults()
	led := ledger.New()
	w := world.New(ctx, nw, led, worldParams(cfg), cfg.Probe)
	r := rng.New(cfg.Seed).Split("campaign")
	f := newFleetRun(nw, chargers, cfg, led, w, r)
	eng := w.Engine()
	if err := eng.AtKeyed(0, fleetTickKind, 0, "world-tick"); err != nil {
		return nil, err
	}
	for i := range chargers {
		if err := eng.AtKeyed(0, fleetDispatchKind, i, "dispatch"); err != nil {
			return nil, err
		}
	}
	if err := f.pump(); err != nil {
		return nil, err
	}
	return f.finish(ctx)
}

// ResumeFleet continues a fleet campaign from a live checkpoint. As with
// Resume, cfg must carry the original run parameters (with a fresh fault
// plan built from the same faults.Spec); the restored run executes the
// exact event and draw sequence the uninterrupted run would have.
func ResumeFleet(ctx context.Context, snap *snapshot.Snapshot, cfg Config) (*FleetOutcome, error) {
	if snap == nil || !snap.Live() {
		return nil, fmt.Errorf("campaign: ResumeFleet needs a live (version-%d) snapshot", snapshot.VersionLive)
	}
	cs := snap.Campaign()
	if cs.Fleet == nil {
		return nil, fmt.Errorf("campaign: snapshot holds a single-charger run; use Resume")
	}
	if len(cs.Fleet.Chargers) == 0 {
		return nil, fmt.Errorf("campaign: fleet checkpoint has no chargers")
	}
	cfg.applyDefaults()
	nw, _, _, err := snap.Fork()
	if err != nil {
		return nil, err
	}
	led := ledger.FromState(cs.Ledger)
	w, err := world.Resume(ctx, nw, led, worldParams(cfg), cfg.Probe, cs.World)
	if err != nil {
		return nil, err
	}
	chargers := make([]*mc.Charger, len(cs.Fleet.Chargers))
	for i, fc := range cs.Fleet.Chargers {
		ch, err := mc.FromState(fc.Charger)
		if err != nil {
			return nil, fmt.Errorf("campaign: resume charger %d: %w", i, err)
		}
		chargers[i] = ch
	}
	f := newFleetRun(nw, chargers, cfg, led, w, rng.FromState(cs.Rand))
	f.busy = cs.Fleet.Busy
	for _, id := range cs.Fleet.Reserved {
		f.reserved[id] = true
	}
	for i, fc := range cs.Fleet.Chargers {
		s := &f.st[i]
		s.phase = fc.Phase
		s.rate, s.dur, s.start = fc.Rate, fc.Dur, fc.Start
		s.meterBefore, s.travelT = fc.MeterBefore, fc.TravelT
		s.solicited = fc.Solicited
		if fc.Req != nil {
			req, err := fc.Req.Request(nw)
			if err != nil {
				return nil, fmt.Errorf("campaign: resume charger %d assignment: %w", i, err)
			}
			s.req = req
		} else if fc.Phase != snapshot.FleetIdle {
			return nil, fmt.Errorf("campaign: charger %d checkpointed in phase %d without its assignment", i, fc.Phase)
		}
	}
	if err := w.Engine().RestorePending(snap.PendingEvents()); err != nil {
		return nil, err
	}
	if err := f.pump(); err != nil {
		return nil, err
	}
	return f.finish(ctx)
}
