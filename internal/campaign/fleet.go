package campaign

// Multi-charger fleet service — the capacity extension the WRSN charging
// literature motivates: beyond what one mobile charger can sustain, the
// operator deploys K chargers sharing the request queue. The fleet runs
// on the same world layer as the single-charger campaigns: the world owns
// the event engine, a self-ticking world event advances batteries,
// deaths, and requests, and each charger's dispatch/arrive/session-end
// handlers interleave on the engine. Handlers sync the world with
// CatchUp, the re-entrant-safe advance.

import (
	"context"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/sim"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// FleetOutcome reports a fleet run.
type FleetOutcome struct {
	// Chargers is the fleet size.
	Chargers int
	// DeadTotal, FirstDeathAt, RequestsIssued/Served and CoverUtilityJ
	// mirror the single-charger Outcome fields.
	DeadTotal      int
	FirstDeathAt   float64
	RequestsIssued int
	RequestsServed int
	CoverUtilityJ  float64
	// EnergySpentJ is the fleet's total energy use.
	EnergySpentJ float64
	// Audit carries the sink-side evidence (fleet-aggregated).
	Audit detect.Audit
	// BusyFrac is the mean fraction of the horizon each charger spent
	// traveling or radiating — the capacity-utilization statistic.
	BusyFrac float64

	// faults is the run's fault ledger, nil on fault-free runs;
	// unexported to keep fault-free digests byte-identical (see Outcome).
	faults *faults.Report
}

// FaultReport returns the fleet run's fault ledger, or nil when the run
// had no fault plan.
func (o *FleetOutcome) FaultReport() *faults.Report { return o.faults }

// RunLegitFleet simulates K honest chargers sharing the on-demand queue
// under the configured scheduler. Each charger, when free, takes the
// scheduler's pick, travels, serves the full recharge, and frees again;
// the event engine interleaves the fleet correctly. Deaths, requests and
// audits follow the same rules as the single-charger runs.
//
// The context is first-class: event handlers stop scheduling follow-up
// events once ctx is canceled, the event engine drains, and ctx.Err()
// is returned.
func RunLegitFleet(ctx context.Context, nw *wrsn.Network, chargers []*mc.Charger, cfg Config) (*FleetOutcome, error) {
	if len(chargers) == 0 {
		return nil, fmt.Errorf("campaign: fleet needs at least one charger")
	}
	cfg.applyDefaults()
	led := ledger.New()
	w := world.New(ctx, nw, led, world.Params{
		PollSec:          cfg.PollSec,
		RequestFrac:      cfg.RequestFrac,
		SampleEverySec:   cfg.SampleEverySec,
		AuditEverySec:    cfg.AuditEverySec,
		MinAuditSessions: cfg.MinAuditSessions,
		PendingGraceSec:  cfg.PendingGraceSec,
		Detectors:        cfg.Detectors,
		Faults:           cfg.Faults,
		Shards:           cfg.Shards,
	}, cfg.Probe)
	r := rng.New(cfg.Seed).Split("campaign")
	sp := session.Params{
		Band:           cfg.Band,
		BenignFailRate: cfg.BenignFailRate,
		SingleEmitter:  cfg.SingleEmitter,
		CooldownSec:    cfg.CooldownSec,
		Defense:        cfg.Defense,
	}
	actors := make(map[*mc.Charger]*session.Actor, len(chargers))
	for _, ch := range chargers {
		actors[ch] = session.NewActor(w, ch, led, r, sp, cfg.Probe)
	}
	eng := w.Engine()
	eng.Instrument(cfg.Probe)

	out := &FleetOutcome{Chargers: len(chargers), FirstDeathAt: math.Inf(1)}
	var busy float64

	// reserved prevents two chargers from chasing one request.
	reserved := make(map[wrsn.NodeID]bool)

	// pick returns the scheduler's choice among unreserved requests.
	pick := func(ch *mc.Charger) (charging.Request, bool) {
		var view charging.Queue
		for _, req := range w.Queue().Pending() {
			if reserved[req.Node] {
				continue
			}
			if err := view.Add(req); err != nil {
				continue
			}
		}
		return cfg.Scheduler.Next(&view, ch.Pos(), w.Now())
	}

	// serve executes one assignment for a charger inside the engine; the
	// single-charger AdvanceTo is replaced by engine time, so battery
	// dynamics are driven by the world ticker below.
	var dispatch func(ch *mc.Charger) sim.Handler
	dispatch = func(ch *mc.Charger) sim.Handler {
		return func(e *sim.Engine) {
			if w.Canceled() {
				return
			}
			w.CatchUp(e.Now())
			// A breakdown window grounds the whole depot: dispatch stands
			// down until the scheduled repair (in-flight sessions already
			// started are not suspended on the fleet path — only new
			// dispatches are gated).
			if until := w.ChargerDownUntil(); until > e.Now() {
				at := math.Min(until, cfg.HorizonSec)
				if at <= e.Now() {
					return // never repaired within the horizon: parked
				}
				_ = e.At(at, "breakdown-standby", dispatch(ch))
				return
			}
			req, ok := pick(ch)
			if !ok {
				_ = e.After(cfg.PollSec, "idle-poll", dispatch(ch))
				return
			}
			node, err := nw.Node(req.Node)
			if err != nil || !node.Alive() {
				w.Queue().Remove(req.Node)
				_ = e.After(1, "retry", dispatch(ch))
				return
			}
			reserved[req.Node] = true
			dock := ch.ServicePoint(node.Pos)
			travelT := ch.TravelTime(dock)
			if err := ch.Travel(dock); err != nil {
				// This charger is out of budget; it parks forever.
				delete(reserved, req.Node)
				return
			}
			arriveEvt := func(e *sim.Engine) {
				w.CatchUp(e.Now())
				if !node.Alive() {
					delete(reserved, req.Node)
					w.Queue().Remove(req.Node)
					_ = e.After(1, "next", dispatch(ch))
					return
				}
				rate, err := ch.DeliveredPower(node.Pos)
				if err != nil || rate <= 0 {
					delete(reserved, req.Node)
					return
				}
				need := node.Battery.Capacity() - node.Battery.Level()
				dur := need / rate
				if err := ch.SpendRadiation(dur); err != nil {
					delete(reserved, req.Node) // out of budget: parked
					return
				}
				busy += travelT + dur
				solicited := w.Queue().Has(node.ID)
				meterBefore := node.Battery.MeterRead()
				start := e.Now()
				endEvt := func(e *sim.Engine) {
					w.CatchUp(e.Now())
					delete(reserved, req.Node)
					if !node.Alive() {
						// Died mid-session (was nearly empty on arrival);
						// nothing to record beyond the death itself.
						_ = e.After(1, "next", dispatch(ch))
						return
					}
					delivered := node.Battery.Charge(rate * dur)
					s := charging.Session{
						Node: node.ID, Kind: charging.SessionFocus,
						Start: start, End: e.Now(),
						RequestedJ: req.NeedJ, DeliveredJ: delivered,
						MeterGainJ: node.Battery.MeterRead() - meterBefore,
					}
					actors[ch].Complete(node.ID, s, true, solicited)
					_ = e.After(1, "next", dispatch(ch))
				}
				_ = e.After(dur, "session-end", endEvt)
			}
			_ = e.After(travelT, "arrive", arriveEvt)
		}
	}

	// World ticker: advances batteries, deaths, requests between events.
	var tick sim.Handler
	tick = func(e *sim.Engine) {
		if w.Canceled() {
			return
		}
		w.CatchUp(e.Now())
		if e.Now() < cfg.HorizonSec {
			dt := math.Min(cfg.PollSec, cfg.HorizonSec-e.Now())
			_ = e.After(dt, "world-tick", tick)
		}
	}
	if err := eng.At(0, "world-tick", tick); err != nil {
		return nil, err
	}
	for _, ch := range chargers {
		ch := ch
		if err := eng.At(0, "dispatch", dispatch(ch)); err != nil {
			return nil, err
		}
	}
	if err := eng.RunUntil(cfg.HorizonSec, 50_000_000); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.CatchUp(cfg.HorizonSec)
	if !cfg.Faults.Empty() {
		w.CloseFaultWindows()
		rep := led.Faults
		out.faults = &rep
	}

	for _, req := range w.Queue().Pending() {
		led.Audit.Unserved = append(led.Audit.Unserved, detect.RequestObs{
			Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
	}
	out.Audit = led.Audit
	out.RequestsIssued = led.Issued
	out.RequestsServed = led.Served
	out.FirstDeathAt = led.FirstDeath
	for _, s := range led.Sessions {
		out.CoverUtilityJ += s.Utility()
	}
	for _, ch := range chargers {
		out.EnergySpentJ += ch.Spent()
	}
	for _, n := range nw.Nodes() {
		// Dead means battery-exhausted; a hardware-failed node counts in
		// the fault report instead (identical on fault-free runs).
		if n.Battery.Depleted() {
			out.DeadTotal++
		}
	}
	out.BusyFrac = busy / (cfg.HorizonSec * float64(len(chargers)))
	if cfg.Probe.Enabled() {
		cfg.Probe.Set("fleet.chargers", float64(out.Chargers))
		cfg.Probe.Set("fleet.busy_frac", out.BusyFrac)
		cfg.Probe.Set("fleet.energy_spent_j", out.EnergySpentJ)
	}
	return out, nil
}
