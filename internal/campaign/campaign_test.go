package campaign

import (
	"context"
	"math"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func buildScenario(t *testing.T, seed uint64, n int) (*wrsn.Network, *mc.Charger) {
	t.Helper()
	nw, _, err := trace.DefaultScenario(seed, n).Build()
	if err != nil {
		t.Fatal(err)
	}
	return nw, mc.New(nw.Sink(), mc.DefaultParams())
}

// The no-attack baseline: an honest charger keeps the whole network alive
// for the full horizon and the detector suite stays quiet.
func TestLegitBaseline(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunLegit(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if o.DeadTotal != 0 {
		t.Errorf("legit run lost %d nodes", o.DeadTotal)
	}
	if o.Detected {
		t.Errorf("legit run flagged: %+v", o.Verdicts)
	}
	if !math.IsInf(o.FirstDeathAt, 1) {
		t.Errorf("first death at %v", o.FirstDeathAt)
	}
	if o.RequestsServed < o.RequestsIssued*9/10 {
		t.Errorf("served only %d/%d requests", o.RequestsServed, o.RequestsIssued)
	}
	if o.CoverUtilityJ <= 0 || o.EnergySpentJ <= 0 {
		t.Error("no work recorded")
	}
}

// The headline reproduction: CSA exhausts ≥80% of key nodes undetected
// (the paper's aggregate claim), and no individual run collapses.
func TestCSAHeadline(t *testing.T) {
	seeds := []uint64{42, 1000, 8919}
	var sum float64
	for _, seed := range seeds {
		nw, ch := buildScenario(t, seed, 150)
		o, err := RunAttack(context.Background(), nw, ch, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(o.KeyNodes) == 0 {
			t.Fatalf("seed %d: no key nodes in scenario", seed)
		}
		r := o.KeyExhaustRatio()
		sum += r
		if r < 0.7 {
			t.Errorf("seed %d: exhaustion %.2f < 0.7", seed, r)
		}
		if o.Detected {
			t.Errorf("seed %d: CSA detected (caught=%v by %q)", seed, o.Caught, o.CaughtBy)
		}
	}
	if mean := sum / float64(len(seeds)); mean < 0.8 {
		t.Errorf("mean exhaustion %.2f < 0.8", mean)
	}
}

// The naive attacker gets impounded.
func TestDirectAttackerCaught(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, Solver: SolverDirect, NoFill: true})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Detected {
		t.Error("Direct attacker went undetected")
	}
	if !o.Caught {
		t.Error("Direct attacker never impounded by a live audit")
	}
	if o.CaughtBy == "" || o.CaughtAt <= 0 {
		t.Errorf("caught metadata incomplete: %q at %v", o.CaughtBy, o.CaughtAt)
	}
}

// Without the superposition primitive the attack cannot kill: spoof stops
// degenerate to genuine charges.
func TestSingleEmitterAblation(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, SingleEmitter: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := o.KeyExhaustRatio(); r > 0.35 {
		t.Errorf("single-emitter attack still exhausted %.2f", r)
	}
	for _, s := range o.Sessions {
		if s.Kind == charging.SessionSpoof && s.DeliveredJ <= 0 {
			// A "spoof" that delivered nothing with one emitter would
			// mean the null happened anyway.
			t.Error("single-emitter session delivered nothing")
		}
	}
}

// Same seed, same scenario, same outcome — campaigns are deterministic.
func TestDeterminism(t *testing.T) {
	run := func() *Outcome {
		nw, ch := buildScenario(t, 7, 120)
		o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := run(), run()
	if a.KeyDead != b.KeyDead || len(a.Sessions) != len(b.Sessions) ||
		a.CoverUtilityJ != b.CoverUtilityJ || a.EnergySpentJ != b.EnergySpentJ ||
		a.DeadTotal != b.DeadTotal {
		t.Errorf("nondeterministic outcomes:\n%+v\n%+v", a, b)
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}

// Spoofed sessions must sit in the spoofing band: carrier present, below
// the rectifier dead zone, and deliver essentially nothing.
func TestSpoofSessionPhysics(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	spoofs := 0
	for _, s := range o.Sessions {
		if s.Kind != charging.SessionSpoof {
			continue
		}
		spoofs++
		if s.DeliveredJ > 1 {
			t.Errorf("spoof at node %d delivered %.1f J", s.Node, s.DeliveredJ)
		}
		if s.RFAtNodeW >= 1e-4 {
			t.Errorf("spoof RF %v above dead zone", s.RFAtNodeW)
		}
	}
	if spoofs == 0 {
		t.Fatal("no spoof sessions executed")
	}
}

// The audit the detectors judge must be consistent with ground truth.
func TestAuditConsistency(t *testing.T) {
	nw, ch := buildScenario(t, 42, 120)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Audit.Sessions) != len(o.Sessions) {
		t.Errorf("audit sessions %d vs ground truth %d", len(o.Audit.Sessions), len(o.Sessions))
	}
	for i, obs := range o.Audit.Sessions {
		truth := o.Sessions[i]
		if obs.Node != truth.Node || obs.Start != truth.Start || obs.End != truth.End {
			t.Fatalf("audit session %d mismatches ground truth", i)
		}
		if obs.MeterGainJ != truth.MeterGainJ {
			t.Fatalf("audit gain %v vs truth %v", obs.MeterGainJ, truth.MeterGainJ)
		}
	}
	if o.DeadTotal != len(o.Audit.Deaths) {
		t.Errorf("dead %d vs audited deaths %d", o.DeadTotal, len(o.Audit.Deaths))
	}
}

// Lifetime samples are well-formed and monotone in time.
func TestSamples(t *testing.T) {
	nw, ch := buildScenario(t, 42, 100)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, SampleEverySec: 6 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Samples) < 50 {
		t.Fatalf("samples = %d", len(o.Samples))
	}
	for i, s := range o.Samples {
		if i > 0 && s.T <= o.Samples[i-1].T {
			t.Fatalf("sample times not increasing at %d", i)
		}
		if s.Connected > s.Alive || s.Alive > nw.Len() {
			t.Fatalf("sample %d inconsistent: %+v", i, s)
		}
	}
	first, last := o.Samples[0], o.Samples[len(o.Samples)-1]
	if first.KeyAlive != len(o.KeyNodes) {
		t.Errorf("initial keys alive = %d, want %d", first.KeyAlive, len(o.KeyNodes))
	}
	if last.KeyAlive != len(o.KeyNodes)-o.KeyDead {
		t.Errorf("final keys alive = %d", last.KeyAlive)
	}
}

func TestUnknownSolver(t *testing.T) {
	nw, ch := buildScenario(t, 1, 60)
	if _, err := RunAttack(context.Background(), nw, ch, Config{Seed: 1, Solver: "Bogus"}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestSchedulerVariants(t *testing.T) {
	for _, sched := range []charging.Scheduler{charging.FCFS{}, charging.NJNP{}, charging.EDF{}} {
		nw, ch := buildScenario(t, 42, 100)
		o, err := RunLegit(context.Background(), nw, ch, Config{Seed: 42, Scheduler: sched})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if o.Detected {
			t.Errorf("%s: legit run flagged", sched.Name())
		}
		if o.DeadTotal > 5 {
			t.Errorf("%s: %d deaths under legit service", sched.Name(), o.DeadTotal)
		}
	}
}

// Attack outcomes respect the audit cadence switch: with live audits off,
// nothing is ever impounded mid-run.
func TestAuditDisabled(t *testing.T) {
	nw, ch := buildScenario(t, 42, 120)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, Solver: SolverDirect, NoFill: true, AuditEverySec: -1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Caught {
		t.Error("impounded despite disabled live audits")
	}
	if !o.Detected {
		t.Error("horizon audit missed the Direct attacker")
	}
}

func TestKeyExhaustRatioEdge(t *testing.T) {
	o := &Outcome{}
	if o.KeyExhaustRatio() != 0 {
		t.Error("no-keys ratio not zero")
	}
}

// Progressive mode: the attacker keeps watching for emergent separators
// and engages them; total damage (dead + stranded) must not drop, and
// stealth must hold.
func TestProgressiveAttack(t *testing.T) {
	nw, ch := buildScenario(t, 42, 200)
	base, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	nw2, ch2 := buildScenario(t, 42, 200)
	prog, err := RunAttack(context.Background(), nw2, ch2, Config{Seed: 42, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Detected {
		t.Errorf("progressive attack detected (by %q)", prog.CaughtBy)
	}
	if prog.ExtraTargets == 0 {
		t.Error("progressive attack engaged no emergent targets")
	}
	baseDamage := base.DeadTotal + base.Disconnected
	progDamage := prog.DeadTotal + prog.Disconnected
	if progDamage < baseDamage-5 {
		t.Errorf("progressive damage %d below static %d", progDamage, baseDamage)
	}
	if prog.KeyExhaustRatio() < 0.8 {
		t.Errorf("progressive exhaustion %.2f", prog.KeyExhaustRatio())
	}
}

// The window-unaware baselines execute their static schedules; their runs
// must complete, produce sessions, and (as the evaluation shows) get
// caught by the live audits.
func TestStaticBaselineExecution(t *testing.T) {
	for _, solver := range []string{SolverRandom, SolverGreedyNearest} {
		nw, ch := buildScenario(t, 42, 150)
		o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, Solver: solver})
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if len(o.Sessions) == 0 {
			t.Errorf("%s: no sessions executed", solver)
		}
		if !o.Detected {
			t.Errorf("%s: window-unaware attacker went undetected", solver)
		}
		spoofs := 0
		for _, s := range o.Sessions {
			if s.Kind == charging.SessionSpoof {
				spoofs++
			}
		}
		// A baseline can be impounded before reaching its first spoof
		// stop; otherwise it must have spoofed something.
		if spoofs == 0 && !o.Caught {
			t.Errorf("%s: static plan executed no spoofs yet ran to completion", solver)
		}
	}
}

// CSA+polish runs through the campaign exactly like CSA (window-aware).
func TestPolishedSolverCampaign(t *testing.T) {
	nw, ch := buildScenario(t, 42, 150)
	o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, Solver: SolverCSAPolished})
	if err != nil {
		t.Fatal(err)
	}
	if o.Detected {
		t.Error("CSA+polish detected")
	}
	if o.KeyExhaustRatio() < 0.7 {
		t.Errorf("CSA+polish exhaustion %.2f", o.KeyExhaustRatio())
	}
}
