// Package campaign orchestrates end-to-end simulations on a live network:
// the legitimate on-demand charging service (the no-attack baseline) and
// the full charging spoofing attack, in which a compromised mobile charger
// executes a TIDE plan — spoofing key nodes inside their windows — while
// opportunistically serving every other request to keep network-side
// detectors quiet. Runs are deterministic under a seed.
//
// The package is a thin composition root over four layers:
//
//	policy  — decides the charger's next action (internal/campaign/policy)
//	session — charging-session physics, travel, defenses (…/session)
//	world   — clock, drain, deaths, requests, audits on the sim engine (…/world)
//	ledger  — accumulates everything a run produces (…/ledger)
//
// RunLegit, RunAttack, and RunLegitFleet wire the layers together and
// assemble the public Outcome from the ledger.
package campaign

import (
	"context"
	"time"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign/ledger"
	"github.com/reprolab/wrsn-csa/internal/campaign/policy"
	"github.com/reprolab/wrsn-csa/internal/campaign/session"
	"github.com/reprolab/wrsn-csa/internal/campaign/world"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Solver names accepted by Config.Solver.
const (
	SolverCSA           = policy.SolverCSA
	SolverCSAPolished   = policy.SolverCSAPolished
	SolverRandom        = policy.SolverRandom
	SolverGreedyNearest = policy.SolverGreedyNearest
	SolverDirect        = policy.SolverDirect
)

// ErrUnknownSolver reports an unrecognized Config.Solver.
var ErrUnknownSolver = policy.ErrUnknownSolver

// Config parameterizes a campaign run.
type Config struct {
	// Seed drives jitter sampling and randomized baselines.
	Seed uint64
	// HorizonSec is the simulated duration; non-positive gets the builder
	// default (14 days).
	HorizonSec float64
	// RequestFrac is the battery fraction that triggers requests;
	// out-of-range gets the wrsn default.
	RequestFrac float64
	// CooldownSec is the post-session re-request suppression;
	// non-positive gets the builder default (4 h).
	CooldownSec float64
	// PollSec bounds the request-scan granularity; non-positive gets 900 s.
	PollSec float64
	// Solver picks the attack planner (RunAttack only); empty gets CSA.
	Solver string
	// Scheduler picks the on-demand policy for legitimate service and for
	// the attacker's opportunistic fill; nil gets charging.NJNP.
	Scheduler charging.Scheduler
	// Detectors is the audit suite; nil gets detect.Suite().
	Detectors []detect.Detector
	// MaxCovers caps the TIDE instance's optional sites; see attack.
	MaxCovers int
	// InstanceBudgetJ overrides the TIDE instance budget (sweeps);
	// non-positive uses the charger's remaining energy.
	InstanceBudgetJ float64
	// Band is the spoofing RF band; the zero value gets the default.
	Band wpt.SpoofBand
	// OpportunisticFill, when disabled, makes the attacker execute only
	// the planned stops and ignore emergent requests — the ablation
	// showing why live cover service matters.
	NoFill bool
	// SingleEmitter ablates the superposition primitive: with one coherent
	// element no null exists, so "spoof" stops degenerate into genuine
	// focused charges. Shows the attack is impossible without the
	// nonlinear superposition effect.
	SingleEmitter bool
	// Progressive lets the attacker re-derive key nodes as the topology
	// degrades: nodes that become articulation points only after earlier
	// kills join the target list mid-campaign. Off by default (the paper's
	// CSA plans against the initial topology).
	Progressive bool
	// SampleEverySec records a (time, alive, connected) sample at this
	// cadence for lifetime figures; non-positive disables sampling.
	SampleEverySec float64
	// AuditEverySec is the cadence of the sink's cumulative detector
	// audit during attack runs. A flagged charger is impounded on the
	// spot and replaced by an honest one, so early detection saves the
	// remaining targets. Non-positive gets 24 h; negative one disables
	// live audits (judgment happens only at the horizon).
	AuditEverySec float64
	// MinAuditSessions delays live audits until enough evidence exists;
	// non-positive gets 10.
	MinAuditSessions int
	// PendingGraceSec is how long a request may sit in the queue before a
	// live audit counts it as ignored — queueing delays of a day or two
	// are normal for a single busy charger. Non-positive gets 48 h.
	PendingGraceSec float64
	// BenignFailRate is the probability that a genuine charging session
	// delivers nothing (misdocking, obstruction) — the background noise
	// that forces detectors to tolerate isolated zero-gain sessions. A
	// failed node re-requests right after its cooldown, so failures at
	// one node cluster in time; the default 0.005 reflects the net rate
	// after the operator's own redocking procedures. Non-positive gets
	// the default; negative disables failures entirely.
	BenignFailRate float64
	// Defense enables the countermeasure extensions (harvest
	// verification, neighbor witnessing); the zero value disables both.
	Defense defense.Config
	// Probe receives campaign telemetry (sessions, spoofs, deaths,
	// audits, defense exposures, charger travel, queueing delays); nil
	// gets the no-op probe. Telemetry is strictly observational: a run
	// with a recording probe produces a byte-identical Outcome to one
	// without.
	Probe obs.Probe
	// Faults is the fault plan to inject (node hardware failures,
	// request loss, charger breakdowns, sink outages); nil or empty
	// leaves the run byte-identical to a fault-free one. Plans carry a
	// consumed loss stream and are single-use: build a fresh plan (same
	// faults.Spec) per run.
	Faults *faults.Plan
	// Shards sets the world's per-tick scan parallelism: 0 sizes
	// automatically from GOMAXPROCS and network size, 1 forces sequential
	// stepping, k > 1 splits the node set into k grid-region shards. The
	// Outcome is byte-identical at any value — sharding is purely a
	// wall-clock knob for large networks.
	Shards int
	// Checkpoint arms live checkpointing: at handler-safe barriers the
	// run captures a version-2 snapshot and hands it to the plan's Sink.
	// Capture is pure reads — a checkpointed run's Outcome is
	// byte-identical to an unhooked one. Nil disables checkpointing.
	Checkpoint *CheckpointPlan
}

// Sample is one point of the lifetime time series.
type Sample = ledger.Sample

func (c *Config) applyDefaults() {
	if c.HorizonSec <= 0 {
		c.HorizonSec = attack.DefaultHorizonSec
	}
	if c.RequestFrac <= 0 || c.RequestFrac >= 1 {
		c.RequestFrac = wrsn.DefaultRequestFraction
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = attack.DefaultCooldownSec
	}
	if c.PollSec <= 0 {
		c.PollSec = 900
	}
	if c.Solver == "" {
		c.Solver = SolverCSA
	}
	if c.Scheduler == nil {
		c.Scheduler = charging.NJNP{}
	}
	if c.Detectors == nil {
		c.Detectors = detect.Suite()
	}
	if c.Band == (wpt.SpoofBand{}) {
		c.Band = wpt.DefaultSpoofBand()
	}
	if c.AuditEverySec == 0 {
		c.AuditEverySec = 24 * 3600
	}
	if c.MinAuditSessions <= 0 {
		c.MinAuditSessions = 10
	}
	if c.PendingGraceSec <= 0 {
		c.PendingGraceSec = 48 * 3600
	}
	switch {
	case c.BenignFailRate == 0:
		c.BenignFailRate = 0.005
	case c.BenignFailRate < 0:
		c.BenignFailRate = 0
	}
	c.Probe = obs.Or(c.Probe)
}

// Outcome is the result of one campaign run.
type Outcome struct {
	// Solver names the planner ("legit" for the no-attack baseline).
	Solver string
	// KeyNodes is the plan-time key-node set.
	KeyNodes []wrsn.KeyNode
	// KeyDead counts plan-time key nodes dead at the horizon.
	KeyDead int
	// SkippedTargets counts key nodes the planner could not schedule.
	SkippedTargets int
	// Sessions is the full session record (ground truth).
	Sessions []charging.Session
	// Audit is what the sink observed.
	Audit detect.Audit
	// Verdicts holds each detector's judgment; Detected is their OR.
	Verdicts []detect.Verdict
	Detected bool
	// CoverUtilityJ is delivered-capped-at-requested energy over genuine
	// sessions.
	CoverUtilityJ float64
	// EnergySpentJ is the charger's total energy use.
	EnergySpentJ float64
	// DeadTotal counts all dead nodes at the horizon; Disconnected counts
	// alive nodes without a sink route.
	DeadTotal    int
	Disconnected int
	// RequestsIssued / RequestsServed tally the demand the charger saw.
	RequestsIssued int
	RequestsServed int
	// Caught reports whether a live audit impounded the charger mid-run;
	// CaughtAt is when and CaughtBy names the detector (zero values when
	// not caught). Detected additionally covers the final horizon audit.
	Caught   bool
	CaughtAt float64
	CaughtBy string
	// FirstDeathAt is the earliest node death, or +Inf when none died.
	FirstDeathAt float64
	// Planned is the TIDE plan the attacker executed (nil for legit runs).
	Planned *attack.Result
	// Samples is the lifetime time series (empty unless SampleEverySec
	// was set).
	Samples []Sample
	// Exposures lists countermeasure catches (attack runs) and
	// FalseAlarms counts countermeasure alerts on genuine sessions
	// (benign failures look exactly like spoofs to a harvest check).
	Exposures   []defense.Exposure
	FalseAlarms int
	// ExtraTargets counts emergent key nodes a Progressive attacker
	// engaged beyond the plan-time set.
	ExtraTargets int
	// MeanWaitSec is the average queueing delay between a request and the
	// start of its session, over served requests (0 when nothing was
	// served).
	MeanWaitSec float64
	// WitnessSamples counts neighbor-witness measurements taken, the
	// coverage statistic of the witnessing countermeasure.
	WitnessSamples int

	// faults is the run's fault ledger, nil on fault-free runs. It is
	// unexported (read it via FaultReport) so the canonical-JSON digest
	// of a fault-free Outcome — which walks exported fields only — stays
	// byte-identical to builds that predate fault injection.
	faults *faults.Report
}

// FaultReport returns the run's fault ledger — injected vs. survived vs.
// fatal counts, downtime accounting, sink outage windows — or nil when
// the run had no fault plan.
func (o *Outcome) FaultReport() *faults.Report { return o.faults }

// KeyExhaustRatio returns KeyDead / len(KeyNodes), the paper's headline
// metric; 0 when the network had no key nodes.
func (o *Outcome) KeyExhaustRatio() float64 {
	if len(o.KeyNodes) == 0 {
		return 0
	}
	return float64(o.KeyDead) / float64(len(o.KeyNodes))
}

// layers wires the four layers for one single-charger run. The returned
// Env carries the run configuration into the policy driver.
func layers(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) (*policy.Env, *ledger.L, *world.W) {
	led := ledger.New()
	w := world.New(ctx, nw, led, worldParams(cfg), cfg.Probe)
	// The campaign stream must be split before any draw so solver and
	// session randomness stay on the pre-refactor sequence.
	r := rng.New(cfg.Seed).Split("campaign")
	a := session.NewActor(w, ch, led, r, session.Params{
		Band:           cfg.Band,
		BenignFailRate: cfg.BenignFailRate,
		SingleEmitter:  cfg.SingleEmitter,
		CooldownSec:    cfg.CooldownSec,
		Defense:        cfg.Defense,
	}, cfg.Probe)
	env := &policy.Env{
		W: w, A: a, L: led,
		Horizon:         cfg.HorizonSec,
		PollSec:         cfg.PollSec,
		RequestFrac:     cfg.RequestFrac,
		CooldownSec:     cfg.CooldownSec,
		PendingGraceSec: cfg.PendingGraceSec,
		NoFill:          cfg.NoFill,
		Progressive:     cfg.Progressive,
		MaxCovers:       cfg.MaxCovers,
		InstanceBudgetJ: cfg.InstanceBudgetJ,
		AuditEverySec:   cfg.AuditEverySec,
		Scheduler:       cfg.Scheduler,
		Rand:            r,
		Probe:           cfg.Probe,
		Targets:         make(map[wrsn.NodeID]bool),
		Blocked:         make(map[wrsn.NodeID]bool),
	}
	return env, led, w
}

// run drives one single-charger campaign under the given policy and
// assembles its Outcome.
func run(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config, pol policy.Policy) (*Outcome, error) {
	env, led, w := layers(ctx, nw, ch, cfg)
	keys := nw.KeyNodes()
	for _, k := range keys {
		w.MarkKey(k.ID)
	}
	if cfg.Checkpoint != nil {
		ck := &checkpointer{
			plan: cfg.Checkpoint, nw: nw, ch: ch, w: w, led: led,
			env: env, pol: pol, keys: keys, r: env.Rand, last: time.Now(),
		}
		env.Checkpoint = ck.barrier
	}
	if err := policy.Drive(env, pol); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return finish(led, w, ch, cfg, pol.Name(), keys, pol.Planned()), nil
}

// RunLegit simulates the uncompromised network: the charger serves
// requests under the configured scheduler until the horizon or budget
// exhaustion. It is both the lifetime baseline and the negative sample
// for detector ROC curves.
//
// The context is first-class: the simulation checks ctx at every
// world-step and scheduling boundary and returns ctx.Err() (typically
// context.Canceled or context.DeadlineExceeded) as soon as it observes a
// canceled context. Callers without cancellation needs pass
// context.Background(); the wrsncsa package keeps no-ctx convenience
// wrappers.
func RunLegit(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	return run(ctx, nw, ch, cfg, policy.NewLegit())
}

// RunAttack simulates the compromised charger: it plans a TIDE solution at
// time zero (key nodes from the live topology, windows from depletion
// forecasts), executes the stops at their scheduled times, and — unless
// NoFill is set — serves emergent requests opportunistically between stops
// to keep its cover. Key-node requests are never genuinely served.
//
// The context is first-class: the campaign checks ctx at every
// world-step, target-selection, and service boundary, and returns
// ctx.Err() promptly once the context is canceled.
func RunAttack(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	return run(ctx, nw, ch, cfg, policy.NewAttacker(cfg.Solver))
}

// finish assembles the outcome after the horizon.
func finish(led *ledger.L, w *world.W, ch *mc.Charger, cfg Config, solver string, keys []wrsn.KeyNode, planned *attack.Result) *Outcome {
	if !cfg.Faults.Empty() {
		w.CloseFaultWindows()
	}
	// Requests still pending at the horizon were never served.
	for _, req := range w.Queue().Pending() {
		led.Audit.Unserved = append(led.Audit.Unserved, detect.RequestObs{
			Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
	}
	o := &Outcome{
		Solver:         solver,
		KeyNodes:       keys,
		Sessions:       led.Sessions,
		Audit:          led.Audit,
		EnergySpentJ:   ch.Spent(),
		RequestsIssued: led.Issued,
		RequestsServed: led.Served,
		FirstDeathAt:   led.FirstDeath,
		Planned:        planned,
		Samples:        led.Samples,
		Caught:         led.Caught,
		CaughtAt:       led.CaughtAt,
		CaughtBy:       led.CaughtBy,
		Exposures:      led.Exposures,
		FalseAlarms:    led.FalseAlarms,
		WitnessSamples: led.WitnessSamples,
		ExtraTargets:   led.ExtraTargets,
		MeanWaitSec:    led.MeanWaitSec(),
	}
	if planned != nil {
		o.SkippedTargets = len(planned.SkippedTargets)
	}
	nw := w.Network()
	// Death means battery exhaustion; a node hardware-failed at the
	// horizon is out of service but not dead (identical predicates on
	// fault-free runs, where nothing is ever hardware-failed).
	for _, k := range keys {
		n, err := nw.Node(k.ID)
		if err == nil && n.Battery.Depleted() {
			o.KeyDead++
		}
	}
	for _, s := range led.Sessions {
		if s.Kind == charging.SessionFocus {
			o.CoverUtilityJ += s.Utility()
		}
	}
	for _, n := range nw.Nodes() {
		switch {
		case n.Battery.Depleted():
			o.DeadTotal++
		case !n.Alive():
			// Hardware-failed: out of service, counted in the fault
			// report rather than as dead or disconnected.
		case !nw.Connected(n.ID):
			o.Disconnected++
		}
	}
	o.Verdicts = detect.JudgeProbed(led.Audit, cfg.Detectors, cfg.Probe, w.Now())
	o.Detected = led.Caught || detect.AnyFlagged(o.Verdicts)
	if !cfg.Faults.Empty() {
		rep := led.Faults
		o.faults = &rep
	}
	if cfg.Probe.Enabled() {
		cfg.Probe.Set("campaign.key_dead", float64(o.KeyDead))
		cfg.Probe.Set("campaign.dead_total", float64(o.DeadTotal))
		cfg.Probe.Set("campaign.energy_spent_j", o.EnergySpentJ)
		cfg.Probe.Set("campaign.mean_wait_sec", o.MeanWaitSec)
	}
	return o
}
